module groupsafe

go 1.22
