package gsdb_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestImportBoundary enforces the public-API layering: nothing under cmd/ or
// examples/ may import groupsafe/internal/... (they must go through gsdb),
// and the gsdb packages themselves — the deliberate bridge — may only import
// the specific internal packages they wrap, so new internals cannot leak
// into the public surface by accident.
func TestImportBoundary(t *testing.T) {
	root := repoRoot(t)

	// Consumers: no internal imports at all.
	for _, dir := range []string{"cmd", "examples"} {
		walkGoFiles(t, filepath.Join(root, dir), func(file string, imports []string) {
			for _, imp := range imports {
				if strings.HasPrefix(imp, "groupsafe/internal/") {
					t.Errorf("%s imports %s: cmd/ and examples/ must use the public gsdb API", rel(root, file), imp)
				}
			}
		})
	}

	// The bridge: per-package whitelist of wrapped internals.
	allowed := map[string][]string{
		"gsdb": {
			"groupsafe/internal/core",
			"groupsafe/internal/partition",
			"groupsafe/internal/workload",
			"groupsafe/internal/tuning",
			"groupsafe/internal/gcs/fd",
			"groupsafe/internal/netproto",
		},
		"gsdb/server":      {"groupsafe/internal/server"},
		"gsdb/stats":       {"groupsafe/internal/stats"},
		"gsdb/experiments": {"groupsafe/internal/experiments"},
		"gsdb/sim":         {"groupsafe/internal/simrep"},
		"gsdb/fuzz":        {"groupsafe/internal/sim/fuzz"},
	}
	for pkgDir, whitelist := range allowed {
		walkGoFiles(t, filepath.Join(root, pkgDir), func(file string, imports []string) {
			if filepath.Dir(file) != filepath.Join(root, pkgDir) {
				return // subpackages have their own entry
			}
			for _, imp := range imports {
				if !strings.HasPrefix(imp, "groupsafe/internal/") {
					continue
				}
				ok := false
				for _, w := range whitelist {
					if imp == w {
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("%s imports %s, which is not in the %s whitelist — widen the surface deliberately or route through an existing wrapper", rel(root, file), imp, pkgDir)
				}
			}
		})
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd() // the gsdb package directory when run under go test
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(wd)
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found from %s: %v", wd, err)
	}
	return root
}

func rel(root, file string) string {
	r, err := filepath.Rel(root, file)
	if err != nil {
		return file
	}
	return r
}

// walkGoFiles parses the imports of every non-test .go file under dir.
func walkGoFiles(t *testing.T, dir string, visit func(file string, imports []string)) {
	t.Helper()
	fset := token.NewFileSet()
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		imports := make([]string, 0, len(f.Imports))
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return err
			}
			imports = append(imports, p)
		}
		visit(path, imports)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
