package gsdb_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"groupsafe/gsdb"
)

// ExampleOpen opens a three-server group-safe cluster, commits a transaction
// at the cluster level and one with a per-transaction very-safe override,
// and shows the async commit handle's response and durability points.
func ExampleOpen() {
	ctx := context.Background()
	client, err := gsdb.Open(ctx,
		gsdb.WithReplicas(3),
		gsdb.WithItems(100),
		gsdb.WithSafetyLevel(gsdb.GroupSafe),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// A group-safe transaction: answered at guaranteed delivery, disk force
	// off the response path.
	res, err := client.Execute(ctx, gsdb.Request{Ops: []gsdb.Op{
		{Item: 1, Write: true, Value: 42},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("group-safe txn:", res.Outcome, "at", res.Level)

	// One transaction can demand more: very-safe waits until EVERY server
	// has logged and forced it.
	res, err = client.Execute(ctx, gsdb.Request{Ops: []gsdb.Op{
		{Item: 2, Write: true, Value: 7},
	}}, gsdb.WithSafety(gsdb.VerySafe))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("override txn:  ", res.Outcome, "at", res.Level)

	// The async handle separates the response point from local durability.
	commit, err := client.Submit(ctx, gsdb.Request{Ops: []gsdb.Op{
		{Item: 3, Write: true, Value: 9},
	}})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := commit.Responded(ctx); err != nil {
		log.Fatal(err)
	}
	if err := commit.Durable(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("submitted txn: responded, then durable")

	waitCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := client.WaitConsistent(waitCtx); err != nil {
		log.Fatal(err)
	}
	v, _ := client.Value(2, 1)
	fmt.Println("replica 2 reads item 1 =", v)

	// Output:
	// group-safe txn: committed at group-safe
	// override txn:   committed at very-safe
	// submitted txn: responded, then durable
	// replica 2 reads item 1 = 42
}
