package gsdb

import (
	"context"
	"fmt"
)

// Commit is the asynchronous handle returned by Client.Submit.  It separates
// the two moments the paper distinguishes for every safety level:
//
//   - Responded resolves at the transaction's RESPONSE point — the moment a
//     synchronous Execute would have returned (group-safe delivery, the
//     delegate's forced log for group-1-safe, every server's acknowledgement
//     for very-safe, ...);
//   - Durable resolves once the transaction's commit record is forced to the
//     delegate's local stable storage, forcing it on demand when the level
//     left durability asynchronous.
//
// For the force-on-commit levels (group-1-safe, 2-safe, very-safe) Durable
// resolves immediately after Responded; for group-safe the gap between the
// two IS the paper's response-vs-durability window.  Durable never resolves
// before Responded.
type Commit struct {
	client *Client
	done   chan struct{}
	res    Result
	err    error
}

// Responded blocks until the transaction's response point (or ctx expiry)
// and returns the result a synchronous Execute would have returned.  It may
// be called any number of times, concurrently.
func (cm *Commit) Responded(ctx context.Context) (Result, error) {
	select {
	case <-cm.done:
		return cm.res, cm.err
	case <-ctx.Done():
		return Result{}, fmt.Errorf("gsdb: waiting for the response point: %w", ctx.Err())
	}
}

// Durable blocks until the transaction's commit record is durable in the
// delegate's local log, forcing the log on demand.  It returns ErrAborted
// when the transaction did not commit, the submission error when the
// transaction failed outright, and nil for read-only transactions (which
// log nothing).  Durable never resolves before Responded.
func (cm *Commit) Durable(ctx context.Context) error {
	res, err := cm.Responded(ctx)
	if err != nil {
		return err
	}
	if !res.Committed() {
		return fmt.Errorf("%w: txn %d", ErrAborted, res.TxnID)
	}
	if res.CommitLSN == 0 {
		return nil // read-only: nothing was logged
	}
	return cm.client.cluster.WaitDurable(ctx, res)
}
