package gsdb_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"groupsafe/gsdb"
)

// TestSessionReadYourWrites: a Session threads the freshness token by itself —
// every query after a committed write sees that write, from whatever replica
// the router picks, with no manual WithFreshness plumbing.
func TestSessionReadYourWrites(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithItems(64))
	s := client.NewSession()

	var last uint64
	for i := 0; i < 10; i++ {
		res, err := s.Execute(ctx, write(7, int64(100+i)))
		if err != nil || !res.Committed() {
			t.Fatalf("write %d: %+v, %v", i, res, err)
		}
		if s.Token() <= last {
			t.Fatalf("write %d: token %d did not grow past %d", i, s.Token(), last)
		}
		last = s.Token()
		read, err := s.Execute(ctx, gsdb.Query(7))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got := read.ReadValues[7]; got != int64(100+i) {
			t.Fatalf("session read %d = %d, want %d", i, got, 100+i)
		}
		if s.Token() < last {
			t.Fatalf("read %d regressed the token: %d < %d", i, s.Token(), last)
		}
		last = s.Token()
	}
}

// TestSessionMonotonicAcrossFailover is the failover half of the session
// contract: when the replica that has been serving the session crashes
// mid-session, the router moves the session to the survivors and the token
// keeps growing — reads never travel backwards in time.
func TestSessionMonotonicAcrossFailover(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithItems(64))
	s := client.NewSession()

	var last uint64
	check := func(stage string, wantVal int64) {
		t.Helper()
		for q := 0; q < 6; q++ {
			read, err := s.Execute(ctx, gsdb.Query(3))
			if err != nil {
				t.Fatalf("%s query %d: %v", stage, q, err)
			}
			if got := read.ReadValues[3]; got != wantVal {
				t.Fatalf("%s query %d read %d, want %d", stage, q, got, wantVal)
			}
			if s.Token() < last {
				t.Fatalf("%s query %d regressed the token: %d < %d", stage, q, s.Token(), last)
			}
			last = s.Token()
		}
	}

	if res, err := s.Execute(ctx, write(3, 30)); err != nil || !res.Committed() {
		t.Fatalf("%+v, %v", res, err)
	}
	check("pre-crash", 30)

	// Take down replica 2 (the survivors suspect it so updates keep
	// committing); the session must route around it without ever handing
	// back a pre-token snapshot.
	client.Crash(2)
	client.Suspect(0, 2)
	client.Suspect(1, 2)
	check("post-crash", 30)

	if res, err := s.Execute(ctx, write(3, 31)); err != nil || !res.Committed() {
		t.Fatalf("post-crash write: %+v, %v", res, err)
	}
	if s.Token() <= last {
		t.Fatalf("post-crash write token %d did not grow past %d", s.Token(), last)
	}
	last = s.Token()
	check("post-crash-write", 31)
}

// TestSessionFlooredReadDoesNotBlock: right after a committed write at least
// one replica (the delegate that answered) has applied the session's token,
// so the freshness-aware router must find it and the floored read must come
// back promptly instead of parking on a lagging replica's freshness gate.
func TestSessionFlooredReadDoesNotBlock(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(4), gsdb.WithItems(64))
	s := client.NewSession()
	for i := 0; i < 20; i++ {
		if res, err := s.Execute(ctx, write(9, int64(i))); err != nil || !res.Committed() {
			t.Fatalf("write %d: %+v, %v", i, res, err)
		}
		readCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
		read, err := s.Execute(readCtx, gsdb.Query(9))
		cancel()
		if err != nil {
			t.Fatalf("floored read %d should have routed to a fresh replica: %v", i, err)
		}
		if read.Freshness < s.Token() {
			t.Fatalf("read %d freshness %d below session floor %d", i, read.Freshness, s.Token())
		}
	}
}

// TestSessionConcurrentUse: a Session is safe for concurrent goroutines; the
// token only ever grows.
func TestSessionConcurrentUse(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithItems(64))
	s := client.NewSession()
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			for i := 0; i < 10; i++ {
				before := s.Token()
				var err error
				if g%2 == 0 {
					_, err = s.Execute(ctx, write(g, int64(i)))
				} else {
					_, err = s.Execute(ctx, gsdb.Query(g))
				}
				if err != nil {
					done <- err
					return
				}
				if s.Token() < before {
					done <- errors.New("session token regressed under concurrency")
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionOnPartitionedCluster: the session's per-partition freshness
// vector gives read-your-writes across independent total orders.
func TestSessionOnPartitionedCluster(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithItems(64), gsdb.WithPartitions(4))
	s := client.NewSession()
	for i := 0; i < 8; i++ {
		item := i % 4 // one item per partition
		if res, err := s.Execute(ctx, write(item, int64(50+i))); err != nil || !res.Committed() {
			t.Fatalf("write %d: %+v, %v", i, res, err)
		}
		read, err := s.Execute(ctx, gsdb.Query(item))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got := read.ReadValues[item]; got != int64(50+i) {
			t.Fatalf("partitioned session read %d = %d, want %d", i, got, 50+i)
		}
	}
	if vec := s.TokenVec(); len(vec) == 0 {
		t.Fatal("partitioned session never accumulated a freshness vector")
	}
}
