package server_test

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"groupsafe/gsdb"
)

// TestChaosKillMinusNineAcrossProcesses is the multi-process proof of the
// robustness contract: it builds the real gsdb-server binary, launches a
// three-replica 2-safe cluster as child OS processes, drives concurrent load
// through gsdb.Dial, kills one replica with SIGKILL mid-batch, restarts it,
// and asserts across the process boundary that
//
//   - no transaction acknowledged at 2-safe was lost (per-item values are
//     written strictly increasing, so the final value must be >= the last
//     acknowledged one),
//   - the survivors' membership views excluded the dead replica and
//     re-admitted it after restart,
//   - freshness tokens never regressed for any sequential client session,
//   - all three replicas converge to identical store contents, and
//   - SIGTERM shuts every process down cleanly (exit code 0).
//
// Child stdout/stderr go to per-replica log files; set CHAOS_ARTIFACT_DIR to
// keep them (CI uploads that directory on failure).  Set GSDB_CHAOS_RACE=1 to
// build the server binary with -race.
func TestChaosKillMinusNineAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos test skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	bin := buildServerBinary(t, ctx)
	artifactDir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if artifactDir == "" {
		artifactDir = t.TempDir()
	} else if err := os.MkdirAll(artifactDir, 0o755); err != nil {
		t.Fatal(err)
	}

	const n = 3
	peerAddrs := freePorts(t, n)
	clientAddrs := freePorts(t, n)
	walDirs := make([]string, n)
	for i := range walDirs {
		walDirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("r%d", i))
	}

	procs := make([]*replicaProc, n)
	for i := 0; i < n; i++ {
		procs[i] = launchReplica(t, ctx, bin, artifactDir, i, peerAddrs, clientAddrs[i], walDirs[i])
	}
	defer func() {
		for _, p := range procs {
			p.killIfRunning()
		}
	}()

	client, err := gsdb.Dial(ctx, clientAddrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitServing(t, ctx, client, clientAddrs)

	// Load: one sequential session per item, writing strictly increasing
	// values.  Each session records its last acknowledged value and asserts
	// its freshness tokens never regress.
	const writers = 4
	var (
		wg        sync.WaitGroup
		stopLoad  = make(chan struct{})
		lastAcked [writers]atomic.Int64
		loadErr   atomic.Value
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(item int) {
			defer wg.Done()
			var value int64
			var freshness uint64
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				value++
				tctx, tcancel := context.WithTimeout(ctx, 30*time.Second)
				// Read-modify-write, not a blind write: the read version
				// makes certification abort a zombie retry (a txn this
				// client gave up on that is still in flight), so committed
				// values per item are monotone and final >= last-acked is a
				// sound loss check.  Blind writes would allow a zombie to
				// legally re-install an older value after a newer acked one.
				res, err := client.Execute(tctx, gsdb.Request{Ops: []gsdb.Op{
					{Item: item},
					{Item: item, Write: true, Value: value},
				}})
				tcancel()
				if err != nil || !res.Committed() {
					// A retry-exhausted or aborted transaction was never
					// acknowledged — not a safety violation.  (Aborts can
					// happen even with one writer per item: a re-issued
					// transaction may conflict with its own zombie
					// predecessor that committed after the client gave up.)
					// Re-issue the same value; the store stays monotone.
					value--
					continue
				}
				if res.Freshness < freshness {
					loadErr.Store(fmt.Errorf("writer %d: freshness regressed %d -> %d", item, freshness, res.Freshness))
					return
				}
				freshness = res.Freshness
				lastAcked[item].Store(value)
			}
		}(w)
	}

	waitAcked := func(min int64) {
		t.Helper()
		for {
			ready := true
			for w := 0; w < writers; w++ {
				if lastAcked[w].Load() < min {
					ready = false
				}
			}
			if ready {
				return
			}
			if err := ctx.Err(); err != nil {
				t.Fatalf("load never reached %d acked writes per item: %v", min, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Phase 1: healthy cluster commits.
	waitAcked(5)

	// Phase 2: kill -9 one replica mid-batch.  The survivors must exclude
	// it from their view and keep serving the load.
	victim := 2
	procs[victim].kill(t)
	t.Logf("killed replica %d (pid %d) with SIGKILL", victim, procs[victim].cmd.Process.Pid)
	waitInfo(t, ctx, client, clientAddrs[0], func(info gsdb.ServerInfo) bool {
		return len(info.ViewMembers) == n-1
	}, "survivor never excluded the killed replica from its view")
	ackedAtKill := snapshotAcked(&lastAcked)
	waitAcked(ackedAtKill[0] + 5) // progress continues without the victim

	// Phase 3: restart the victim — same WAL dir, same ports, a genuinely
	// new OS process.  It must be re-admitted and catch up.
	procs[victim] = launchReplica(t, ctx, bin, artifactDir, victim, peerAddrs, clientAddrs[victim], walDirs[victim])
	waitInfo(t, ctx, client, clientAddrs[0], func(info gsdb.ServerInfo) bool {
		return len(info.ViewMembers) == n
	}, "survivors never re-admitted the restarted replica")
	waitAcked(snapshotAcked(&lastAcked)[0] + 5)

	// Stop the load and let in-flight transactions settle.
	close(stopLoad)
	wg.Wait()
	if err, _ := loadErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	finalAcked := snapshotAcked(&lastAcked)

	// Phase 4: all three replicas must converge to identical stores, and no
	// acknowledged write may be lost: values per item are strictly
	// increasing, so final >= last acked proves zero acked-txn loss through
	// a kill -9 at 2-safe.
	waitInfo(t, ctx, client, clientAddrs[victim], func(info gsdb.ServerInfo) bool {
		return len(info.Items) > 0
	}, "restarted replica never answered Info")
	deadline := time.Now().Add(60 * time.Second)
	for {
		infos := make([]gsdb.ServerInfo, n)
		ok := true
		for i, addr := range clientAddrs {
			info, err := client.Info(ctx, addr)
			if err != nil {
				ok = false
				break
			}
			infos[i] = info
		}
		if ok && storesEqual(infos) {
			for w := 0; w < writers; w++ {
				if got, want := infos[0].Items[w].Value, finalAcked[w]; got < want {
					t.Fatalf("acked-txn loss on item %d: final value %d < last acked %d", w, got, want)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			for i := range infos {
				t.Logf("replica %d: seq=%d items[:4]=%v", i, infos[i].LastAppliedSeq, infos[i].Items[:writers])
			}
			t.Fatal("replicas did not converge after restart")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Phase 5: graceful shutdown — SIGTERM, exit 0, within the deadline.
	for i, p := range procs {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM replica %d: %v", i, err)
		}
	}
	for i, p := range procs {
		if err := p.waitExit(30 * time.Second); err != nil {
			t.Errorf("replica %d did not shut down cleanly: %v", i, err)
		}
	}
}

// replicaProc is one child gsdb-server process.
type replicaProc struct {
	cmd    *exec.Cmd
	logF   *os.File
	done   chan error
	killed atomic.Bool
}

func buildServerBinary(t *testing.T, ctx context.Context) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gsdb-server")
	args := []string{"build"}
	if os.Getenv("GSDB_CHAOS_RACE") == "1" {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "groupsafe/cmd/gsdb-server")
	cmd := exec.CommandContext(ctx, "go", args...)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build gsdb-server: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for dir := wd; ; dir = filepath.Dir(dir) {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		if dir == filepath.Dir(dir) {
			t.Fatalf("go.mod not found above %s", wd)
		}
	}
}

func launchReplica(t *testing.T, ctx context.Context, bin, artifactDir string, idx int, peers []string, clientAddr, walDir string) *replicaProc {
	t.Helper()
	logPath := filepath.Join(artifactDir, fmt.Sprintf("replica%d.pid%d.log", idx, os.Getpid()))
	logF, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	peerList := ""
	for i, p := range peers {
		if i > 0 {
			peerList += ","
		}
		peerList += p
	}
	cmd := exec.Command(bin,
		"-listen", peers[idx],
		"-client-listen", clientAddr,
		"-peers", peerList,
		"-wal-dir", walDir,
		"-level", "2-safe",
		"-items", "64",
		"-fd-interval", "25ms",
		"-fd-timeout", "150ms",
		"-resync-interval", "250ms",
	)
	cmd.Stdout = logF
	cmd.Stderr = logF
	if err := cmd.Start(); err != nil {
		logF.Close()
		t.Fatalf("start replica %d: %v", idx, err)
	}
	p := &replicaProc{cmd: cmd, logF: logF, done: make(chan error, 1)}
	go func() {
		p.done <- cmd.Wait()
		logF.Close()
	}()
	t.Logf("replica %d: pid %d, peers %s, clients %s, log %s", idx, cmd.Process.Pid, peers[idx], clientAddr, logPath)
	return p
}

// kill sends SIGKILL — the point of the exercise.
func (p *replicaProc) kill(t *testing.T) {
	t.Helper()
	p.killed.Store(true)
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	<-p.done
}

func (p *replicaProc) killIfRunning() {
	select {
	case <-p.done:
	default:
		p.killed.Store(true)
		p.cmd.Process.Kill()
	}
}

// waitExit waits for the process to exit cleanly (exit code 0).
func (p *replicaProc) waitExit(d time.Duration) error {
	select {
	case err := <-p.done:
		return err
	case <-time.After(d):
		return fmt.Errorf("still running after %v", d)
	}
}

func snapshotAcked(acked *[4]atomic.Int64) [4]int64 {
	var out [4]int64
	for i := range out {
		out[i] = acked[i].Load()
	}
	return out
}

// waitServing polls until every replica answers Info.
func waitServing(t *testing.T, ctx context.Context, client *gsdb.RemoteClient, addrs []string) {
	t.Helper()
	for _, addr := range addrs {
		waitInfo(t, ctx, client, addr, func(gsdb.ServerInfo) bool { return true },
			"replica never started serving")
	}
}

func waitInfo(t *testing.T, ctx context.Context, client *gsdb.RemoteClient, addr string, ok func(gsdb.ServerInfo) bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		ictx, icancel := context.WithTimeout(ctx, 3*time.Second)
		info, err := client.Info(ictx, addr)
		icancel()
		if err == nil && ok(info) {
			return
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			t.Fatalf("%s (%s): lastErr=%v", msg, addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// storesEqual reports whether all replicas expose identical item states.
func storesEqual(infos []gsdb.ServerInfo) bool {
	ref := infos[0].Items
	if len(ref) == 0 {
		return false
	}
	for _, info := range infos[1:] {
		if len(info.Items) != len(ref) {
			return false
		}
		for i := range ref {
			if info.Items[i] != ref[i] {
				return false
			}
		}
	}
	return true
}
