package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"groupsafe/gsdb"
	"groupsafe/gsdb/server"
)

// End-to-end tests of the networked stack through the public surface only:
// gsdb/server processes (in-process here; the multi-process form is the chaos
// test) serving gsdb.Dial clients over real TCP sockets.

func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func startCluster(t *testing.T, n int, level gsdb.SafetyLevel) ([]*server.Server, []string) {
	t.Helper()
	peers := freePorts(t, n)
	servers := make([]*server.Server, n)
	clientAddrs := make([]string, n)
	for i := range servers {
		srv, err := server.Start(server.Config{
			ID:                peers[i],
			Members:           peers,
			ClientAddr:        "127.0.0.1:0",
			WALDir:            filepath.Join(t.TempDir(), fmt.Sprintf("r%d", i)),
			Level:             level,
			Items:             64,
			ExecTimeout:       5 * time.Second,
			HeartbeatInterval: 20 * time.Millisecond,
			ResyncInterval:    200 * time.Millisecond,
			Logf:              t.Logf,
		})
		if err != nil {
			t.Fatalf("start server %d: %v", i, err)
		}
		servers[i] = srv
		clientAddrs[i] = srv.ClientAddr()
		t.Cleanup(func() { srv.Close() })
	}
	return servers, clientAddrs
}

func TestDialExecuteAndQuery(t *testing.T) {
	_, addrs := startCluster(t, 3, gsdb.GroupSafe)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	client, err := gsdb.Dial(ctx, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Updates round-robin across replicas.
	var freshness uint64
	for i := 0; i < 9; i++ {
		res, err := client.Execute(ctx, gsdb.Request{Ops: []gsdb.Op{
			{Item: i % 4, Write: true, Value: int64(1000 + i)},
		}})
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		if !res.Committed() {
			t.Fatalf("txn %d aborted", i)
		}
		if res.Freshness > freshness {
			freshness = res.Freshness
		}
	}

	// A freshness-floored query reads our own writes from any replica.
	res, err := client.Execute(ctx, gsdb.Query(0, 1, 2, 3), gsdb.WithFreshness(freshness))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadValues[0] != 1008 || res.ReadValues[1] != 1005 {
		t.Fatalf("query read %v, want items 0..3 = 1008,1005,1006,1007", res.ReadValues)
	}

	// Per-transaction safety override rides the wire.
	res, err = client.Execute(ctx, gsdb.Request{Ops: []gsdb.Op{
		{Item: 9, Write: true, Value: 7},
	}}, gsdb.WithSafety(gsdb.VerySafe))
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != gsdb.VerySafe {
		t.Fatalf("override executed at level %v, want very-safe", res.Level)
	}

	// Info reports identity, view and progress.
	info, err := client.Info(ctx, addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(info.ViewMembers) != 3 || info.LastAppliedSeq == 0 || len(info.Items) != 64 {
		t.Fatalf("info = %+v", info)
	}
}

// TestDialComputeRejected: closures cannot cross the network and fail fast
// client-side.
func TestDialComputeRejected(t *testing.T) {
	_, addrs := startCluster(t, 1, gsdb.GroupSafe)
	ctx := context.Background()
	client, err := gsdb.Dial(ctx, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = client.Execute(ctx, gsdb.Request{
		Compute: func(reads map[int]int64) []gsdb.Op { return nil },
	})
	if !errors.Is(err, gsdb.ErrComputeNotReplicable) {
		t.Fatalf("err = %v", err)
	}
}

// TestDialSurvivesReplicaLoss: with one of three servers gone, a client
// dialled at all three still completes transactions against the majority —
// bounded retry, no hang.
func TestDialSurvivesReplicaLoss(t *testing.T) {
	servers, addrs := startCluster(t, 3, gsdb.GroupSafe)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	client, err := gsdb.Dial(ctx, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Execute(ctx, gsdb.Request{Ops: []gsdb.Op{{Item: 1, Write: true, Value: 1}}}); err != nil {
		t.Fatal(err)
	}

	servers[2].Close()

	// Every one of these may round-robin onto the dead address first; the
	// client must fail over within its retry budget every time.
	for i := 0; i < 6; i++ {
		tctx, tcancel := context.WithTimeout(ctx, 10*time.Second)
		res, err := client.Execute(tctx, gsdb.Request{Ops: []gsdb.Op{
			{Item: 2 + i, Write: true, Value: int64(i)},
		}})
		tcancel()
		if err != nil {
			t.Fatalf("txn %d with one replica down: %v", i, err)
		}
		if !res.Committed() {
			t.Fatalf("txn %d aborted", i)
		}
	}

	// Reads served by survivors, too.
	res, err := client.Execute(ctx, gsdb.Query(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadValues[1] != 1 {
		t.Fatalf("read %v", res.ReadValues)
	}
}

// TestDialErrorIdentityAcrossWire: engine sentinels survive the network, so
// callers' errors.Is logic is transport-agnostic.
func TestDialErrorIdentityAcrossWire(t *testing.T) {
	_, addrs := startCluster(t, 3, gsdb.GroupSafe)
	ctx := context.Background()
	client, err := gsdb.Dial(ctx, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// A declared-read-only request carrying a write is rejected server-side;
	// the sentinel must match across the wire.
	_, err = client.Execute(ctx, gsdb.Request{
		ReadOnly: true,
		Ops:      []gsdb.Op{{Item: 1, Write: true, Value: 2}},
	})
	if !errors.Is(err, gsdb.ErrReadOnlyWrites) {
		t.Fatalf("err = %v, want ErrReadOnlyWrites identity", err)
	}

	// A safety override the cluster cannot provide (2-safe without the
	// end-to-end log) is rejected with its sentinel intact.
	_, err = client.Execute(ctx, gsdb.Request{
		Ops: []gsdb.Op{{Item: 1, Write: true, Value: 2}},
	}, gsdb.WithSafety(gsdb.Safety2))
	if !errors.Is(err, gsdb.ErrSafetyUnavailable) {
		t.Fatalf("err = %v, want ErrSafetyUnavailable identity", err)
	}
}

// TestDialSessionReadYourWrites: the Session abstraction behaves identically
// over TCP — the freshness token and floor ride the wire protocol, so every
// session query sees the session's own committed writes no matter which
// server the remote router picks.
func TestDialSessionReadYourWrites(t *testing.T) {
	_, addrs := startCluster(t, 3, gsdb.GroupSafe)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	client, err := gsdb.Dial(ctx, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	s := client.NewSession()
	var last uint64
	for i := 0; i < 6; i++ {
		res, err := s.Execute(ctx, gsdb.Request{Ops: []gsdb.Op{
			{Item: 2, Write: true, Value: int64(200 + i)},
		}})
		if err != nil || !res.Committed() {
			t.Fatalf("write %d: %+v, %v", i, res, err)
		}
		if s.Token() <= last {
			t.Fatalf("write %d: token %d did not grow past %d", i, s.Token(), last)
		}
		last = s.Token()
		read, err := s.Execute(ctx, gsdb.Query(2))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got := read.ReadValues[2]; got != int64(200+i) {
			t.Fatalf("session read %d = %d, want %d", i, got, 200+i)
		}
		if s.Token() < last {
			t.Fatalf("read %d regressed the token: %d < %d", i, s.Token(), last)
		}
		last = s.Token()
	}

	// A bounded-staleness query succeeds against a live cluster: the freshest
	// server always satisfies its own lease, and a server that rejects with
	// ErrTooStale makes the client redirect rather than fail.
	if _, err := s.Execute(ctx, gsdb.Query(2), gsdb.WithMaxStaleness(time.Hour)); err != nil {
		t.Fatalf("bounded-staleness query: %v", err)
	}
}
