// Package server is the public embedding API for running one gsdb replica as
// a standalone server process: the process form of the cluster that gsdb.Open
// runs in-memory.  The cmd/gsdb-server binary is a thin flag wrapper around
// this package; programs that want a replica inside their own process (custom
// supervision, tests, embedding) use it directly:
//
//	srv, err := server.Start(server.Config{
//		ID:         "10.0.0.1:7000",
//		Members:    []string{"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"},
//		ClientAddr: "10.0.0.1:8000",
//		WALDir:     "/var/lib/gsdb",
//		Level:      gsdb.GroupSafe,
//	})
//	if err != nil { ... }
//	defer srv.Close()
//
// Clients connect with gsdb.Dial to the ClientAddr of any replica.  See
// docs/OPERATIONS.md for topology, tuning and failure-handling guidance.
package server

import (
	"time"

	"groupsafe/gsdb"
	"groupsafe/internal/server"
)

// Config configures one replica server process.
type Config struct {
	// ID is this replica's peer address (host:port for replica-to-replica
	// traffic); it must appear in Members, which must be identical and
	// identically ordered on every replica.
	ID      string
	Members []string
	// ClientAddr is where gsdb.Dial clients connect (host:port; port 0 picks
	// a free port, see Server.ClientAddr).
	ClientAddr string
	// WALDir holds this replica's durable state (database WAL, message WAL,
	// incarnation counter).  Each replica needs its own directory.
	WALDir string
	// Technique selects the replication technique (default certification).
	Technique gsdb.TechniqueID
	// Level is the safety criterion (default group-safe).
	Level gsdb.SafetyLevel
	// Items is the database size (default 1024).
	Items int
	// ExecTimeout bounds one client transaction (default 10s).
	ExecTimeout time.Duration
	// HeartbeatInterval and SuspectTimeout tune the failure detector
	// (defaults 50ms / 4× the interval; raise both on WAN links).
	HeartbeatInterval time.Duration
	SuspectTimeout    time.Duration
	// ResyncInterval is how often a stalled replica re-pulls peer state to
	// close delivery gaps after a restart (default 1s).
	ResyncInterval time.Duration
	// Batching tunes the broadcast pipeline (see gsdb.WithBatching).  With
	// BatchAdaptive the co-traveller wait adapts to each sender's arrival
	// rate (BatchDelay is ignored, BatchDelayCap bounds the wait — see
	// gsdb.WithAdaptiveBatching).
	BatchSize     int
	BatchDelay    time.Duration
	BatchAdaptive bool
	BatchDelayCap time.Duration
	// PipelinedSequencer overlaps ORDER assignment with DATA reception and
	// coalesces ACK fan-in (see gsdb.WithPipelinedSequencer);
	// RotateSequencerEvery rotates the ordering role after that many
	// assignments (see gsdb.WithRotatingSequencer).
	PipelinedSequencer   bool
	RotateSequencerEvery int
	// Logf receives operational log lines (default stderr).
	Logf func(format string, args ...interface{})
}

// Server is one running replica process.
type Server struct {
	inner *server.Server
}

// Start launches the replica: WAL replay, peer and client listeners, failure
// detection, membership and state transfer.  The returned server runs until
// Close.
func Start(cfg Config) (*Server, error) {
	inner, err := server.Start(toInternal(cfg))
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner}, nil
}

// ClientAddr returns the bound client address (port 0 resolved).
func (s *Server) ClientAddr() string { return s.inner.ClientAddr() }

// PeerAddr returns the replica's peer address.
func (s *Server) PeerAddr() string { return s.inner.PeerAddr() }

// ViewID returns the identifier of the current membership view.
func (s *Server) ViewID() uint64 { return s.inner.View().ID }

// ViewMembers returns the members of the current membership view.
func (s *Server) ViewMembers() []string { return s.inner.View().Members }

// Close shuts the replica down gracefully: the client listener stops
// accepting, in-flight transactions finish (bounded by ExecTimeout), the
// write-ahead logs are forced, then the replica and its transports close.
func (s *Server) Close() error { return s.inner.Close() }
