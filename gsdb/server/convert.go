package server

import "groupsafe/internal/server"

// toInternal maps the public configuration onto the engine's server config.
// The public struct exists so embedding programs depend only on gsdb types;
// field semantics are identical.
func toInternal(cfg Config) server.Config {
	return server.Config{
		ID:                   cfg.ID,
		Members:              cfg.Members,
		ClientAddr:           cfg.ClientAddr,
		WALDir:               cfg.WALDir,
		Technique:            cfg.Technique,
		Level:                cfg.Level,
		Items:                cfg.Items,
		ExecTimeout:          cfg.ExecTimeout,
		HeartbeatInterval:    cfg.HeartbeatInterval,
		SuspectTimeout:       cfg.SuspectTimeout,
		ResyncInterval:       cfg.ResyncInterval,
		BatchSize:            cfg.BatchSize,
		BatchDelay:           cfg.BatchDelay,
		BatchAdaptive:        cfg.BatchAdaptive,
		BatchDelayCap:        cfg.BatchDelayCap,
		PipelinedSequencer:   cfg.PipelinedSequencer,
		RotateSequencerEvery: cfg.RotateSequencerEvery,
		Logf:                 cfg.Logf,
	}
}
