package gsdb

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"groupsafe/internal/netproto"
)

// ServerInfo is the status report of one gsdb-server process: its identity,
// current membership view, replication progress and committed store
// fingerprint.  See RemoteClient.Info.
type ServerInfo = netproto.ServerInfo

// ItemState is one item's committed value and version inside a ServerInfo.
type ItemState = netproto.ItemState

// Dial connects to a cluster of gsdb-server processes and returns a network
// client.  Each address is one replica's client port.  The client speaks the
// compact binary protocol of internal/netproto over one multiplexed TCP
// connection per replica (established lazily), picks delegates round-robin,
// and degrades gracefully: a dead or crashed replica is skipped with jittered
// backoff, an ErrNotPrimary rejection from a lazy primary-copy secondary
// rotates to the next replica, and a request fails — it never hangs — once
// its bounded retry budget or its context is exhausted.  An endpoint whose
// dial or handshake fails repeatedly is suspended from the round-robin for an
// exponentially growing window (100ms doubling to a 15s cap), so a dead
// server costs one probe per window instead of one timeout per transaction;
// any successful connection clears the suspension.
//
// The same per-transaction options work as with the embedded client; only
// Compute hooks are rejected (a Go closure cannot cross the network — fetch
// the reads and issue the writes in a second transaction, or keep such logic
// in-process).
func Dial(ctx context.Context, addrs ...string) (*RemoteClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("gsdb: dial: at least one server address is required")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("gsdb: dial: %w", err)
	}
	c := &RemoteClient{
		addrs:   append([]string(nil), addrs...),
		addrIdx: make(map[string]int, len(addrs)),
		advert:  make([]atomic.Uint64, len(addrs)),
		load:    make([]atomic.Int64, len(addrs)),
		conns:   make(map[string]*remoteConn),
		health:  make(map[string]endpointHealth),
		now:     time.Now,
	}
	for i, a := range addrs {
		c.addrIdx[a] = i
	}
	return c, nil
}

// RemoteClient is a client for a cluster of gsdb-server processes.  All
// methods are safe for concurrent use.
type RemoteClient struct {
	addrs   []string
	addrIdx map[string]int  // addr -> index in addrs (immutable after Dial)
	advert  []atomic.Uint64 // per-endpoint last advertised applied sequence
	load    []atomic.Int64  // per-endpoint in-flight requests
	closed  atomic.Bool
	rr      atomic.Uint64

	mu     sync.Mutex
	conns  map[string]*remoteConn
	health map[string]endpointHealth
	now    func() time.Time // injectable clock for the health tests
}

// endpointHealth is the rotation-skipping state of one server address: an
// endpoint whose dial or handshake keeps failing is suspended from the
// round-robin for an exponentially growing window (capped), so a dead server
// costs one probe per window instead of one timeout per transaction.  Any
// successful connection resets the state; an expired window means the next
// rotation pass probes the endpoint again (the decay path).
type endpointHealth struct {
	fails int       // consecutive connection/handshake failures
	until time.Time // suspended from rotation while now < until
}

// Close closes every server connection.  Calls after Close fail with
// ErrClosed.
func (c *RemoteClient) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.mu.Lock()
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()
	for _, rc := range conns {
		rc.close(ErrClosed)
	}
	return nil
}

// Addrs returns the configured server addresses.
func (c *RemoteClient) Addrs() []string { return append([]string(nil), c.addrs...) }

// retry tuning for the remote execution path.
const (
	remoteDialTimeout = 3 * time.Second
	remoteBackoffMin  = 25 * time.Millisecond
	remoteBackoffMax  = 1 * time.Second

	// Per-endpoint suspension windows after repeated connection/handshake
	// failures: 100ms after the first failure, doubling to a 15s cap.
	endpointSuspendMin = 100 * time.Millisecond
	endpointSuspendMax = 15 * time.Second
)

// noteEndpointFailure records one connection or handshake failure against
// addr and extends its suspension window exponentially.
func (c *RemoteClient) noteEndpointFailure(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.health[addr]
	h.fails++
	window := endpointSuspendMin << (h.fails - 1)
	if h.fails > 8 || window > endpointSuspendMax {
		window = endpointSuspendMax // also guards shift overflow
	}
	h.until = c.now().Add(window)
	c.health[addr] = h
}

// noteEndpointOK clears addr's failure history after a successful connection.
func (c *RemoteClient) noteEndpointOK(addr string) {
	c.mu.Lock()
	delete(c.health, addr)
	c.mu.Unlock()
}

// endpointSuspended reports whether addr is inside its suspension window.
func (c *RemoteClient) endpointSuspended(addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now().Before(c.health[addr].until)
}

// noteAdvert folds a freshness token observed from endpoint idx into its
// advertised applied sequence (monotone: stale observations are ignored).
// Every successful Execute and Info refreshes the advertisement, so the
// router learns each server's progress from traffic it pays for anyway.
func (c *RemoteClient) noteAdvert(idx int, seq uint64) {
	if idx < 0 || idx >= len(c.advert) {
		return
	}
	for {
		cur := c.advert[idx].Load()
		if seq <= cur || c.advert[idx].CompareAndSwap(cur, seq) {
			return
		}
	}
}

// routeSlot picks the rotation start for one transaction.  With a freshness
// floor: the least-loaded endpoint whose last advertised applied sequence
// satisfies the floor, falling back to the most-advanced advertisement when
// none does.  Without a floor: the least-loaded endpoint.  Round-robin
// breaks ties.  Advertisements lag reality (they come from previous results
// and Info calls), so the floor is only a routing hint — the serving replica
// re-checks it, and a wrong guess costs one rotation, never correctness.
func (c *RemoteClient) routeSlot(o *txnOptions) int {
	n := len(c.addrs)
	start := int(c.rr.Add(1)-1) % n
	floor := o.freshness
	for _, f := range o.freshnessVec {
		if f > floor {
			floor = f
		}
	}
	best, freshest := -1, start
	var bestLoad int64
	var freshestSeq uint64
	haveLive := false
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if c.endpointSuspended(c.addrs[i]) {
			continue
		}
		seq := c.advert[i].Load()
		if !haveLive || seq > freshestSeq {
			freshest, freshestSeq, haveLive = i, seq, true
		}
		if seq < floor {
			continue
		}
		if load := c.load[i].Load(); best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best >= 0 {
		return best
	}
	return freshest
}

// pickAddr selects the delegate for one rotation slot, skipping forward past
// suspended endpoints.  When every endpoint is suspended the slot's own
// endpoint is probed anyway — total suspension must never starve the client,
// and the probe is what discovers recovery.
func (c *RemoteClient) pickAddr(slot int) string {
	addr := c.addrs[slot%len(c.addrs)]
	if !c.endpointSuspended(addr) {
		return addr
	}
	for off := 1; off < len(c.addrs); off++ {
		if cand := c.addrs[(slot+off)%len(c.addrs)]; !c.endpointSuspended(cand) {
			return cand
		}
	}
	return addr
}

// Execute runs one transaction against the cluster and blocks until its
// safety level's notification condition holds at the serving replica, or
// until the retry budget or ctx is exhausted.  Engine error sentinels
// (ErrCrashed, ErrNotPrimary, ErrSafetyUnavailable, ...) keep their
// errors.Is identity across the wire.
func (c *RemoteClient) Execute(ctx context.Context, req Request, opts ...TxnOption) (Result, error) {
	if c.closed.Load() {
		return Result{}, ErrClosed
	}
	o := newTxnOptions(opts)
	o.apply(&req)
	if req.Compute != nil {
		return Result{}, fmt.Errorf("%w: Compute hooks cannot cross the network", ErrComputeNotReplicable)
	}

	pinned := -1
	if o.delegate >= 0 {
		if o.delegate >= len(c.addrs) {
			return Result{}, fmt.Errorf("%w: replica index %d of %d servers", ErrNotFound, o.delegate, len(c.addrs))
		}
		pinned = o.delegate
	}
	start := c.routeSlot(&o)

	// Budget: every replica gets a few chances; a pinned delegate gets the
	// whole budget itself.  The budget bounds work, the context bounds time.
	budget := 3 * len(c.addrs)
	backoff := remoteBackoffMin
	var lastErr error
	for attempt := 0; attempt < budget; attempt++ {
		if c.closed.Load() {
			return Result{}, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return Result{}, c.exhausted(err, lastErr)
		}
		addr := c.pickAddr(start + attempt)
		if pinned >= 0 {
			addr = c.addrs[pinned] // a pinned delegate is never skipped
		}

		idx := c.addrIdx[addr]
		c.load[idx].Add(1)
		res, err := c.roundTrip(ctx, addr, netproto.Frame{Type: netproto.MsgExec, Payload: netproto.AppendRequest(nil, req)})
		c.load[idx].Add(-1)
		if err == nil {
			result, derr := netproto.DecodeResult(res.Payload)
			if derr != nil {
				return Result{}, fmt.Errorf("gsdb: server %s: %w", addr, derr)
			}
			c.noteAdvert(idx, result.Freshness)
			return result, nil
		}
		lastErr = fmt.Errorf("server %s: %w", addr, err)
		if !retryable(err, pinned >= 0) {
			return Result{}, fmt.Errorf("gsdb: %w", lastErr)
		}
		// Transport failures and crashed/non-primary replicas: rotate (or,
		// pinned, re-try the same replica) after a jittered backoff.
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		if backoff *= 2; backoff > remoteBackoffMax {
			backoff = remoteBackoffMax
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return Result{}, c.exhausted(ctx.Err(), lastErr)
		}
	}
	return Result{}, c.exhausted(nil, lastErr)
}

// Info fetches the status of the server at addr (which must be one of the
// dialled addresses, or any reachable gsdb-server client port).
func (c *RemoteClient) Info(ctx context.Context, addr string) (ServerInfo, error) {
	if c.closed.Load() {
		return ServerInfo{}, ErrClosed
	}
	f, err := c.roundTrip(ctx, addr, netproto.Frame{Type: netproto.MsgInfo})
	if err != nil {
		return ServerInfo{}, fmt.Errorf("gsdb: info %s: %w", addr, err)
	}
	info, err := netproto.DecodeInfo(f.Payload)
	if err != nil {
		return ServerInfo{}, fmt.Errorf("gsdb: info %s: %w", addr, err)
	}
	if idx, ok := c.addrIdx[addr]; ok {
		c.noteAdvert(idx, info.LastAppliedSeq)
	}
	return info, nil
}

// retryable reports whether a failed attempt should be retried elsewhere (or,
// for a pinned delegate, retried at all).
func retryable(err error, pinnedDelegate bool) bool {
	var re *netproto.RemoteError
	if errors.As(err, &re) {
		// The server answered: only "this replica cannot serve you right
		// now" answers are worth retrying — a crashed replica may recover,
		// a non-primary rejection means another replica is the primary
		// (pointless to re-ask the same secondary), and a too-stale lease
		// rejection means this replica lags while a fresher one may qualify
		// (the redirect half of the bounded-staleness contract).
		if errors.Is(err, ErrNotPrimary) || errors.Is(err, ErrTooStale) {
			return !pinnedDelegate
		}
		return errors.Is(err, ErrCrashed)
	}
	// No protocol answer: connection-level failure, worth another replica.
	return true
}

// exhausted shapes the terminal error of a retry loop.
func (c *RemoteClient) exhausted(ctxErr, lastErr error) error {
	switch {
	case ctxErr != nil && lastErr != nil:
		if errors.Is(ctxErr, context.DeadlineExceeded) {
			return fmt.Errorf("gsdb: %w (%w); last attempt: %w", ErrTimeout, ctxErr, lastErr)
		}
		return fmt.Errorf("gsdb: %w; last attempt: %w", ctxErr, lastErr)
	case ctxErr != nil:
		if errors.Is(ctxErr, context.DeadlineExceeded) {
			return fmt.Errorf("gsdb: %w (%w)", ErrTimeout, ctxErr)
		}
		return fmt.Errorf("gsdb: %w", ctxErr)
	case lastErr != nil:
		return fmt.Errorf("gsdb: retry budget exhausted: %w", lastErr)
	default:
		return errors.New("gsdb: retry budget exhausted")
	}
}

// roundTrip sends one frame to addr and waits for its response, dialling or
// re-dialling the connection as needed.  Server-reported errors come back as
// *netproto.RemoteError; transport failures as plain errors.
func (c *RemoteClient) roundTrip(ctx context.Context, addr string, f netproto.Frame) (netproto.Frame, error) {
	rc, err := c.conn(ctx, addr)
	if err != nil {
		return netproto.Frame{}, err
	}
	resp, err := rc.call(ctx, f)
	if err != nil {
		c.drop(addr, rc)
		return netproto.Frame{}, err
	}
	if resp.Type == netproto.MsgError {
		return netproto.Frame{}, netproto.DecodeError(resp.Payload)
	}
	return resp, nil
}

// conn returns the live connection to addr, dialling one if needed.
func (c *RemoteClient) conn(ctx context.Context, addr string) (*remoteConn, error) {
	c.mu.Lock()
	if c.conns == nil {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if rc := c.conns[addr]; rc != nil && !rc.isDead() {
		c.mu.Unlock()
		return rc, nil
	}
	c.mu.Unlock()

	dctx, cancel := context.WithTimeout(ctx, remoteDialTimeout)
	defer cancel()
	var d net.Dialer
	nc, err := d.DialContext(dctx, "tcp", addr)
	if err != nil {
		c.noteEndpointFailure(addr)
		return nil, err
	}
	if err := netproto.WriteHandshake(nc); err != nil {
		nc.Close()
		c.noteEndpointFailure(addr)
		return nil, err
	}
	br := bufio.NewReader(nc)
	nc.SetReadDeadline(time.Now().Add(remoteDialTimeout))
	if err := netproto.ReadHandshake(br); err != nil {
		nc.Close()
		c.noteEndpointFailure(addr)
		return nil, err
	}
	nc.SetReadDeadline(time.Time{})
	c.noteEndpointOK(addr)

	rc := &remoteConn{
		conn:    nc,
		br:      br,
		pending: make(map[uint64]chan netproto.Frame),
		dead:    make(chan struct{}),
	}
	go rc.readLoop()

	c.mu.Lock()
	if c.conns == nil {
		c.mu.Unlock()
		rc.close(ErrClosed)
		return nil, ErrClosed
	}
	if old := c.conns[addr]; old != nil && !old.isDead() {
		// Another goroutine won the dial race; use its connection.
		c.mu.Unlock()
		rc.close(errors.New("gsdb: duplicate connection"))
		return old, nil
	}
	c.conns[addr] = rc
	c.mu.Unlock()
	return rc, nil
}

// drop discards a failed connection so the next attempt re-dials.
func (c *RemoteClient) drop(addr string, rc *remoteConn) {
	rc.close(errors.New("gsdb: connection dropped"))
	c.mu.Lock()
	if c.conns != nil && c.conns[addr] == rc {
		delete(c.conns, addr)
	}
	c.mu.Unlock()
}

// remoteConn is one multiplexed protocol connection: concurrent calls are
// matched to responses by correlation ID, so slow transactions (a 2-safe
// commit forcing disks everywhere) never head-of-line-block fast local
// queries sharing the connection.
type remoteConn struct {
	conn net.Conn
	br   *bufio.Reader

	mu       sync.Mutex // guards writes, pending, corr, err
	corr     uint64
	pending  map[uint64]chan netproto.Frame
	err      error
	deadOnce sync.Once
	dead     chan struct{}
}

func (rc *remoteConn) isDead() bool {
	select {
	case <-rc.dead:
		return true
	default:
		return false
	}
}

// call sends one frame and waits for the matching response.
func (rc *remoteConn) call(ctx context.Context, f netproto.Frame) (netproto.Frame, error) {
	ch := make(chan netproto.Frame, 1)
	rc.mu.Lock()
	if rc.err != nil {
		err := rc.err
		rc.mu.Unlock()
		return netproto.Frame{}, err
	}
	rc.corr++
	f.CorrID = rc.corr
	rc.pending[f.CorrID] = ch
	err := netproto.WriteFrame(rc.conn, f)
	rc.mu.Unlock()
	if err != nil {
		rc.forget(f.CorrID)
		return netproto.Frame{}, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-rc.dead:
		rc.mu.Lock()
		err := rc.err
		rc.mu.Unlock()
		return netproto.Frame{}, err
	case <-ctx.Done():
		rc.forget(f.CorrID)
		return netproto.Frame{}, ctx.Err()
	}
}

func (rc *remoteConn) forget(corr uint64) {
	rc.mu.Lock()
	delete(rc.pending, corr)
	rc.mu.Unlock()
}

// readLoop dispatches inbound frames to their waiting calls until the
// connection fails.
func (rc *remoteConn) readLoop() {
	for {
		f, err := netproto.ReadFrame(rc.br)
		if err != nil {
			rc.close(fmt.Errorf("gsdb: connection lost: %w", err))
			return
		}
		rc.mu.Lock()
		ch := rc.pending[f.CorrID]
		delete(rc.pending, f.CorrID)
		rc.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

// close fails the connection: every in-flight and future call gets err.
func (rc *remoteConn) close(err error) {
	rc.deadOnce.Do(func() {
		rc.mu.Lock()
		rc.err = err
		rc.pending = make(map[uint64]chan netproto.Frame)
		rc.mu.Unlock()
		rc.conn.Close()
		close(rc.dead)
	})
}
