// Package sim exposes the paper's Sect. 6 performance evaluation on the
// discrete-event simulator (the source of the paper's own Fig. 9 numbers):
// the response-time-versus-load sweep across safety levels and replication
// techniques under the Table 4 parameters.  It is the public face of the
// module's internal simulator package.
package sim

import (
	"groupsafe/gsdb"
	"groupsafe/internal/simrep"
)

// Config holds the Table 4 simulator parameters plus the technique, level
// sweep and tuning knobs.
type Config = simrep.Config

// Result is one simulated (level, load) data point.
type Result = simrep.Result

// DefaultConfig returns the paper's Table 4 parameters.
func DefaultConfig() Config { return simrep.DefaultConfig() }

// Run simulates one safety level at one offered load.
func Run(cfg Config, level gsdb.SafetyLevel, loadTPS float64) (Result, error) {
	return simrep.Run(cfg, level, loadTPS)
}

// Figure9Levels returns the level trio of the paper's Fig. 9.
func Figure9Levels() []gsdb.SafetyLevel { return simrep.Figure9Levels() }

// Figure9Loads returns the Fig. 9 load sweep (20..40 tps).
func Figure9Loads() []float64 { return simrep.Figure9Loads() }

// RunFigure9 sweeps the given levels over the given loads (nil selects the
// defaults for the configured technique).
func RunFigure9(cfg Config, levels []gsdb.SafetyLevel, loads []float64) ([]Result, error) {
	return simrep.RunFigure9(cfg, levels, loads)
}

// CrossoverLoad returns the lowest load at which level a's response time
// overtakes level b's (0 when it never does).
func CrossoverLoad(results []Result, a, b gsdb.SafetyLevel) float64 {
	return simrep.CrossoverLoad(results, a, b)
}

// FormatFigure9 renders the sweep as the Fig. 9 table.
func FormatFigure9(results []Result) string { return simrep.FormatFigure9(results) }
