package gsdb

import (
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/gcs/fd"
	"groupsafe/internal/tuning"
)

// Option configures Open.
type Option func(*core.ClusterConfig)

func defaultConfig() core.ClusterConfig {
	return core.ClusterConfig{
		Replicas: 3,
		Items:    1024,
		Level:    core.GroupSafe,
	}
}

// WithReplicas sets the number of replica servers (default 3; the paper
// assumes n >= 3).
func WithReplicas(n int) Option {
	return func(cfg *core.ClusterConfig) { cfg.Replicas = n }
}

// WithItems sets the database size in items (default 1024).
func WithItems(n int) Option {
	return func(cfg *core.ClusterConfig) { cfg.Items = n }
}

// WithSafetyLevel sets the cluster's default safety level (default
// GroupSafe).  Individual transactions may strengthen their own level with
// WithSafety; 2-safe and very-safe per-transaction overrides need the
// machinery of the cluster level they ride on (see WithSafety).
func WithSafetyLevel(l SafetyLevel) Option {
	return func(cfg *core.ClusterConfig) { cfg.Level = l }
}

// WithTechnique selects the replication technique (default
// TechCertification).  The technique may canonicalise the safety level:
// active replication promotes the zero level to group-safe, lazy
// primary-copy pins to 1-safe-lazy.
func WithTechnique(t TechniqueID) Option {
	return func(cfg *core.ClusterConfig) { cfg.Technique = t }
}

// WithDiskSyncDelay emulates the latency of forcing a log to disk (the
// paper's setting: 4-12ms, far above the 0.07ms network message).
func WithDiskSyncDelay(d time.Duration) Option {
	return func(cfg *core.ClusterConfig) { cfg.DiskSyncDelay = d }
}

// WithNetworkLatency emulates the one-way LAN latency.
func WithNetworkLatency(d time.Duration) Option {
	return func(cfg *core.ClusterConfig) { cfg.NetworkLatency = d }
}

// WithNetworkJitter adds random jitter on top of the network latency.
func WithNetworkJitter(d time.Duration) Option {
	return func(cfg *core.ClusterConfig) { cfg.NetworkJitter = d }
}

// WithExecTimeout sets the DEFAULT bound on Execute calls, used only when
// the caller's context carries no deadline of its own (default 10s).  A
// context deadline always wins.
func WithExecTimeout(d time.Duration) Option {
	return func(cfg *core.ClusterConfig) { cfg.ExecTimeout = d }
}

// WithLazyPropagationDelay postpones the asynchronous write-set propagation
// of the lazy modes, widening the crash window the failure-injection
// experiments measure.
func WithLazyPropagationDelay(d time.Duration) Option {
	return func(cfg *core.ClusterConfig) { cfg.LazyPropagationDelay = d }
}

// WithFailureDetectors runs a heartbeat failure detector on every replica,
// wired to the atomic broadcast's suspect mechanism (without it, crashed
// peers must be reported manually via Client.Suspect).
func WithFailureDetectors() Option {
	return func(cfg *core.ClusterConfig) {
		cfg.StartDetectors = true
		cfg.Detector = fd.Config{}
	}
}

// WithPartitions splits the keyspace into n hash partitions (default 1),
// each replicated by its own group — its own total order, certification and
// write-ahead logs — with every server hosting one replica of every
// partition over one shared wire.  Transactions touching a single partition
// run exactly like today's unpartitioned path; cross-partition updates are
// decomposed by a router into per-partition sub-transactions committed with
// an ordered two-phase commit, and results carry a per-partition freshness
// vector (Result.FreshnessVec, WithFreshnessVec).  Partitioned operation
// requires the certification technique and a group-communication safety
// level.  n <= 1 selects the unpartitioned fast path.
func WithPartitions(n int) Option {
	return func(cfg *core.ClusterConfig) { cfg.Partitions = n }
}

// WithMaxPinAge caps how far (in applied broadcast sequences) a pinned MVCC
// snapshot may lag behind the replica's visible watermark before it is
// evicted.  Long-running queries normally pin their version chains for as
// long as they run, so one slow reader under a write storm makes every hot
// item's chain grow without bound; the cap trades that memory for a
// late-read failure: a reader whose snapshot was evicted gets
// ErrSnapshotTooOld on its next read and must restart on a fresh snapshot.
// Zero (the default) means pins never expire.
func WithMaxPinAge(seqs uint64) Option {
	return func(cfg *core.ClusterConfig) { cfg.MaxPinAge = seqs }
}

// WithSeed seeds the cluster's network randomness (default 1).
func WithSeed(seed int64) Option {
	return func(cfg *core.ClusterConfig) { cfg.Seed = seed }
}

// WithBatching coalesces up to size concurrent broadcasts into one network
// message, waiting at most delay for co-travellers (size <= 1 disables
// sender batching).
func WithBatching(size int, delay time.Duration) Option {
	return func(cfg *core.ClusterConfig) {
		cfg.BatchSize = size
		cfg.BatchDelay = delay
	}
}

// WithAdaptiveBatching coalesces up to size concurrent broadcasts like
// WithBatching, but sizes the co-traveller wait adaptively from each sender's
// arrival rate: an idle sender's payload flushes immediately (batching costs
// no latency at low load) and a busy sender waits just long enough to fill
// the batch, never more than delayCap (<= 0 selects the default cap).
func WithAdaptiveBatching(size int, delayCap time.Duration) Option {
	return func(cfg *core.ClusterConfig) {
		cfg.BatchSize = size
		cfg.BatchDelay = 0
		cfg.Mode = tuning.Adaptive
		cfg.DelayCap = delayCap
	}
}

// WithPipelinedSequencer overlaps the sequencer's ORDER assignment with DATA
// reception (back-to-back batches coalesce into wider ORDER ranges) and
// range-merges contiguous acknowledgements within a short adaptive window,
// shrinking the all-to-all ACK fan-in on loaded clusters.
func WithPipelinedSequencer() Option {
	return func(cfg *core.ClusterConfig) { cfg.Pipelined = true }
}

// WithRotatingSequencer rotates the ordering role to the next replica after
// every sequence assignments (a planned, gather-free epoch handoff), so the
// sequencer's CPU and fan-in load is spread across the group instead of
// pinned to one member.  Implies the pipelined sequencer.
func WithRotatingSequencer(every int) Option {
	return func(cfg *core.ClusterConfig) { cfg.RotateEvery = every }
}

// WithApplyWorkers sets the number of concurrent write-set installs per
// replica (<= 1 keeps the apply stage serial).
func WithApplyWorkers(n int) Option {
	return func(cfg *core.ClusterConfig) { cfg.ApplyWorkers = n }
}

// TxnOption configures a single Execute or Submit call.
type TxnOption func(*txnOptions)

type txnOptions struct {
	delegate     int
	safety       *SafetyLevel
	readOnly     bool
	freshness    uint64
	freshnessVec []uint64
	maxStaleness time.Duration
}

func newTxnOptions(opts []TxnOption) txnOptions {
	o := txnOptions{delegate: -1}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// apply copies the per-call options into the outgoing request.
func (o *txnOptions) apply(req *Request) {
	if o.safety != nil {
		s := *o.safety
		req.Safety = &s
	}
	if o.readOnly {
		req.ReadOnly = true
	}
	if o.freshness > 0 {
		req.MinFreshness = o.freshness
	}
	if len(o.freshnessVec) > 0 {
		req.MinFreshnessVec = o.freshnessVec
	}
	if o.maxStaleness > 0 {
		req.MaxStaleness = o.maxStaleness
	}
}

// WithSafety overrides the safety level of this one transaction: the
// requested level rides in the transaction's payload and every replica
// externalises it at that level's force/ack/delivery point, so mixed-safety
// workloads share a single cluster.  Levels below the cluster's machinery
// floor are canonicalised up (on a group-communication cluster everything
// rides the broadcast, so the floor is GroupSafe); very-safe is honoured on
// any group-communication cluster via explicit per-replica acknowledgements;
// 2-safe needs a cluster opened at 2-safe or very-safe (the end-to-end
// message log) and fails with ErrSafetyUnavailable otherwise.
//
// Very-safe liveness caveat: the wait ends only when EVERY member has
// acknowledged, so it blocks while any replica is down (the paper's
// definition).  On a cluster opened at 2-safe or very-safe a recovering
// replica replays its logged deliveries and the wait completes; on a
// classical-broadcast cluster (e.g. group-safe) a replica that crashed
// before delivery catches up by state transfer without replaying, its
// acknowledgement never arrives, and the override ends in ErrTimeout even
// though the transaction committed cluster-wide.
func WithSafety(l SafetyLevel) TxnOption {
	return func(o *txnOptions) { o.safety = &l }
}

// Via pins the delegate replica (by index) instead of the default
// round-robin over live replicas.
func Via(delegate int) TxnOption {
	return func(o *txnOptions) { o.delegate = delegate }
}

// ReadOnly declares this transaction a query: it executes on a local MVCC
// snapshot of one replica — no locks, no group communication, no aborts — and
// its Result carries a Freshness token (see WithFreshness).  Requests without
// writes take the same fast path automatically; the declaration makes the
// intent explicit and fails the call with ErrReadOnlyWrites if a write (or a
// Compute hook, which could emit one) sneaks in.  Under lazy primary-copy a
// query served by a secondary is flagged Result.Stale.
func ReadOnly() TxnOption {
	return func(o *txnOptions) { o.readOnly = true }
}

// WithFreshness sets a freshness floor for a read-only transaction on the
// totally-ordered techniques (certification, active): the serving replica
// waits until it has applied at least the given broadcast sequence before
// taking its snapshot.  Feeding back the largest Result.Freshness seen so far
// gives monotonic session reads — including "read your own writes" across
// replicas, since a committed update's Result.Freshness is its own position
// in the total order.  On clusters without a comparable sequence (lazy
// primary-copy, 0-safe, 1-safe-lazy) a non-zero floor fails with
// ErrSafetyUnavailable.
func WithFreshness(token uint64) TxnOption {
	return func(o *txnOptions) { o.freshness = token }
}

// WithFreshnessVec sets per-partition freshness floors on a partitioned
// cluster: entry p floors partition p's applied sequence before that
// partition serves its share of the transaction's reads.  Feeding back the
// element-wise maximum of the Result.FreshnessVec values seen so far gives
// monotonic session reads — including reading your own cross-partition
// writes — without forcing untouched partitions to catch up the way a scalar
// WithFreshness floor would.  Entries beyond the partition count are
// ignored; on an unpartitioned cluster entry 0 degenerates to WithFreshness.
func WithFreshnessVec(vec []uint64) TxnOption {
	return func(o *txnOptions) {
		v := make([]uint64, len(vec))
		copy(v, vec)
		o.freshnessVec = v
	}
}

// WithMaxStaleness bounds how stale a read-only transaction's snapshot may
// be in wall-clock terms: the serving replica answers only when it can prove
// its applied state is within d of the freshest state advertised anywhere in
// the cluster (it maps the duration to a sequence floor using its measured
// delivery rate), and otherwise fails fast with ErrTooStale — it never
// waits.  This is the bounded-staleness lease: unlike WithFreshness, which
// names an exact sequence floor and blocks until reached, a staleness bound
// is a promise about time, checked against the replica's own progress
// estimate, and a lagging replica rejects immediately so the client can
// redirect to a fresher one (RemoteClient does this automatically).  On
// clusters without a comparable sequence a non-zero bound fails with
// ErrSafetyUnavailable.
func WithMaxStaleness(d time.Duration) TxnOption {
	return func(o *txnOptions) { o.maxStaleness = d }
}

// Pipe bundles the batching and apply-worker knobs into a Pipeline value,
// as used by the experiments subpackage's configurations.
func Pipe(batchSize int, batchDelay time.Duration, applyWorkers int) Pipeline {
	return tuning.Pipe(batchSize, batchDelay, applyWorkers)
}

// AdaptivePipe is Pipe with adaptive batching: payloads flush immediately
// when their sender is idle and wait up to delayCap under sustained load.
func AdaptivePipe(batchSize int, delayCap time.Duration, applyWorkers int) Pipeline {
	return tuning.AdaptivePipe(batchSize, delayCap, applyWorkers)
}
