// Package gsdb is the public client API of the group-safe replicated
// database.  It is the supported surface of this module: everything under
// internal/ is implementation detail and may change without notice, while
// the identifiers exported here follow the stability policy below.
//
// The package exposes the system of Wiesmann & Schiper's "Beyond 1-Safety
// and 2-Safety for Replicated Databases: Group-Safety" as a context-first
// embedded database client:
//
//	client, err := gsdb.Open(ctx,
//		gsdb.WithReplicas(3),
//		gsdb.WithSafetyLevel(gsdb.GroupSafe),
//	)
//	if err != nil { ... }
//	defer client.Close()
//
//	res, err := client.Execute(ctx, gsdb.Request{Ops: []gsdb.Op{
//		{Item: 1, Write: true, Value: 42},
//	}})
//
// # Safety as a per-transaction, end-to-end guarantee
//
// The paper's safety criteria (0-safe, 1-safe, group-safe, group-1-safe,
// 2-safe, very safe) describe what is guaranteed about a transaction at the
// moment the client is notified.  gsdb makes that choice per transaction,
// not only per cluster: a single Execute may strengthen its own response
// point with WithSafety, and the requested level rides inside the broadcast
// payload so every replica forces and acknowledges that one transaction at
// its level:
//
//	res, err := client.Execute(ctx, req, gsdb.WithSafety(gsdb.VerySafe))
//
// Levels weaker than the cluster's machinery floor are canonicalised up;
// levels needing machinery the cluster was not built with (2-safe on a
// classical-broadcast cluster) fail with ErrSafetyUnavailable.
//
// # Local queries and freshness
//
// The paper's split between transaction classes is first-class: update
// transactions ride the total-order broadcast, while read-only transactions
// execute at a single replica on a local MVCC snapshot — no locks, no group
// communication, no aborts — so every replica is a query server and query
// capacity scales with the cluster:
//
//	res, err := client.Execute(ctx, gsdb.Query(1, 2, 3))
//
// Each result carries a Freshness token (the replica's position in the total
// order).  Passing the largest token seen back via WithFreshness yields
// monotonic session reads, including reading your own committed writes from
// any replica.  Under lazy primary-copy, queries served by a secondary are
// flagged Result.Stale instead (no comparable sequence exists).
//
// # Response versus durability
//
// Group-safety's central trade is answering the client at message delivery
// while the disk force happens later.  Submit makes the two points visible
// in the type system: it returns a *Commit whose Responded resolves at the
// transaction's response point (e.g. group-safe delivery) and whose Durable
// resolves only once the commit record is forced to the delegate's local
// log.
//
// # Contexts and timeouts
//
// Every blocking call takes a context.Context and honours its deadline and
// cancellation; cancelling an Execute mid-flight deregisters its waiter
// promptly (the transaction itself may still commit group-wide — only the
// notification is abandoned).  A context without a deadline falls back to
// the cluster's ExecTimeout (WithExecTimeout).  Deadline expiries surface as
// errors matching both ErrTimeout and context.DeadlineExceeded.
//
// # Stability policy
//
// The gsdb package (and its subpackages experiments, sim and stats) is the
// module's public API:
//
//   - identifiers exported by gsdb are append-only: they may gain new
//     functions, options and struct fields, but existing signatures, option
//     semantics and error identities (errors.Is) are kept compatible;
//   - the CI pipeline diffs `go doc -all ./gsdb` against the committed
//     gsdb/api.txt, so every surface change is explicit in review;
//   - packages under internal/ carry no compatibility promise at all — no
//     code outside this module can import them, and no code inside cmd/ or
//     examples/ does either (enforced by a test).
package gsdb

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"groupsafe/internal/partition"
)

// Open builds and starts an in-process replicated database cluster (one
// replica per simulated server, connected by an in-memory network with
// failure injection) and returns a client for it.  The default cluster is
// three replicas at the group-safe level running the certification-based
// technique; see the With* options.
func Open(ctx context.Context, opts ...Option) (*Client, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("gsdb: open: %w", err)
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	cluster, err := partition.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("gsdb: open: %w", err)
	}
	return &Client{cluster: cluster, inflight: make([]atomic.Int64, cluster.Size())}, nil
}

// Client is a handle on a running replicated database cluster.  All methods
// are safe for concurrent use.
type Client struct {
	cluster  *partition.Cluster
	closed   atomic.Bool
	rr       atomic.Uint64
	inflight []atomic.Int64 // per-replica requests currently being served
}

// Close shuts every replica down.  Calls after Close fail with ErrClosed.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.cluster.Close()
	return nil
}

// Execute runs one transaction and blocks until the notification condition
// of its safety level holds (the cluster's level, or a WithSafety override),
// or until ctx is done.  Aborted transactions are reported through
// Result.Outcome, not through the error.  The delegate replica is picked
// round-robin over the live replicas unless pinned with Via.
func (c *Client) Execute(ctx context.Context, req Request, opts ...TxnOption) (Result, error) {
	if c.closed.Load() {
		return Result{}, ErrClosed
	}
	o := newTxnOptions(opts)
	o.apply(&req)
	delegate := c.pickDelegate(&o)
	done := c.track(delegate)
	defer done()
	return c.cluster.Execute(ctx, delegate, req)
}

// Submit starts one transaction asynchronously and returns a Commit handle
// for its response and durability points.  ctx governs the whole in-flight
// transaction: cancelling it resolves the handle with the cancellation
// error.  See Commit.
func (c *Client) Submit(ctx context.Context, req Request, opts ...TxnOption) (*Commit, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	o := newTxnOptions(opts)
	o.apply(&req)
	delegate := c.pickDelegate(&o)
	doneTracking := c.track(delegate)
	cm := &Commit{client: c, done: make(chan struct{})}
	go func() {
		defer close(cm.done)
		defer doneTracking()
		cm.res, cm.err = c.cluster.Execute(ctx, delegate, req)
	}()
	return cm, nil
}

// track counts one in-flight request against replica i for the load-aware
// routing, returning the matching decrement (a no-op for an out-of-range
// pinned delegate — Execute surfaces ErrNotFound for those).
func (c *Client) track(i int) func() {
	if i < 0 || i >= len(c.inflight) {
		return func() {}
	}
	c.inflight[i].Add(1)
	return func() { c.inflight[i].Add(-1) }
}

// pickDelegate routes one call: the pinned delegate when Via was given;
// otherwise the least-loaded live replica whose applied sequences already
// satisfy the call's freshness floor, so a floored session read lands on a
// replica that can answer without blocking whenever one exists.  When no
// live replica satisfies the floor, the least-lagging live replica is picked
// and its read path parks on the freshness gate until the floor is applied —
// waiting is the fallback, not the routing default.  Ties rotate round-robin
// so equally idle replicas share the query load.
func (c *Client) pickDelegate(o *txnOptions) int {
	if o.delegate >= 0 {
		return o.delegate
	}
	n := c.cluster.Size()
	start := int(c.rr.Add(1)-1) % n
	best := -1
	var bestLoad int64
	closest, closestLag := start, uint64(math.MaxUint64)
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if c.cluster.ReplicaCrashed(i) {
			continue
		}
		lag := c.floorLag(i, o)
		if lag < closestLag {
			closest, closestLag = i, lag
		}
		if lag > 0 {
			continue
		}
		if load := c.inflight[i].Load(); best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best >= 0 {
		return best
	}
	// No qualifying replica (or none live): the least-lagging live replica,
	// or the raw round-robin slot when everything is down, so the caller
	// still gets a meaningful ErrCrashed.
	return closest
}

// floorLag returns how far replica i's applied sequences fall short of the
// call's freshness floor, summed across partitions; 0 means the replica can
// serve the floored read without waiting.
func (c *Client) floorLag(i int, o *txnOptions) uint64 {
	if o.freshness == 0 && len(o.freshnessVec) == 0 {
		return 0
	}
	var lag uint64
	for p := 0; p < c.cluster.NumPartitions(); p++ {
		floor := o.freshness
		if p < len(o.freshnessVec) && o.freshnessVec[p] > floor {
			floor = o.freshnessVec[p]
		}
		if applied := c.cluster.AppliedSeq(i, p); applied < floor {
			lag += floor - applied
		}
	}
	return lag
}

// WaitConsistent blocks until every live replica holds identical committed
// state, or until ctx is done.  On failure the returned error names the
// first replica pair and item that diverged (see DivergenceError) and wraps
// ctx.Err().
func (c *Client) WaitConsistent(ctx context.Context) error {
	if c.closed.Load() {
		return ErrClosed
	}
	return c.cluster.WaitConsistent(ctx)
}

// Consistent reports whether every live replica currently has identical
// committed state.
func (c *Client) Consistent() bool { return c.cluster.Consistent() }

// Size returns the number of replicas.
func (c *Client) Size() int { return c.cluster.Size() }

// Level returns the cluster's configured (canonicalised) safety level.
func (c *Client) Level() SafetyLevel { return c.cluster.Level() }

// Technique returns the cluster's replication technique.
func (c *Client) Technique() TechniqueID { return c.cluster.Technique() }

// LiveCount returns the number of non-crashed replicas.
func (c *Client) LiveCount() int { return c.cluster.LiveCount() }

// TotalStats aggregates the per-replica counters.
func (c *Client) TotalStats() Stats { return c.cluster.TotalStats() }

// Value returns the committed value of item at replica i.
func (c *Client) Value(i, item int) (int64, error) { return c.cluster.Value(i, item) }

// Partitions returns the number of keyspace partitions the cluster runs
// (1 unless opened with WithPartitions).
func (c *Client) Partitions() int { return c.cluster.NumPartitions() }

// ReplicaID returns the network address of replica i ("" when out of range).
func (c *Client) ReplicaID(i int) string { return c.cluster.ReplicaID(i) }

// ReplicaCrashed reports whether replica i is currently crashed (false when
// i is out of range).
func (c *Client) ReplicaCrashed(i int) bool { return c.cluster.ReplicaCrashed(i) }

// Crash crash-stops server i: its endpoint goes silent and all volatile
// state (buffers, unsynced logs, queued lazy propagations) is lost.  On a
// partitioned cluster the whole server goes down — replica i of every
// partition crashes together.
func (c *Client) Crash(i int) { c.cluster.Crash(i) }

// Recover restarts crashed replica i, installing a state-transfer checkpoint
// from the most advanced live replica when one exists and replaying
// logged-but-unacknowledged end-to-end messages.  It returns the number of
// replayed messages.
func (c *Client) Recover(i int) (int, error) { return c.cluster.Recover(i) }

// Suspect tells replica observer to treat replica suspect as crashed (the
// manual stand-in for a failure detector; see WithFailureDetectors for the
// automatic one).
func (c *Client) Suspect(observer, suspect int) {
	c.cluster.Suspect(observer, suspect)
}
