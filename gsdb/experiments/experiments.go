// Package experiments exposes the runnable reproductions of the paper's
// tables, figures and claims on the real replication stack: the Fig. 5/7
// lost-transaction schedules, the Table 1-3 safety classifications, the
// Fig. 2 vs Fig. 8 response-time breakdown, the Sect. 6 disk-vs-broadcast
// comparison, the Sect. 7 scaling model, and the cross-technique comparison.
// It is the public face of the module's internal experiments package.
package experiments

import (
	"time"

	iexp "groupsafe/internal/experiments"
)

// Result and configuration types (aliases of the internal runners' own, so
// values pass through unchanged).
type (
	// FailureScenarioResult describes the outcome of a Fig. 5 / Fig. 7
	// style crash schedule.
	FailureScenarioResult = iexp.FailureScenarioResult
	// Table1Row is one row of the paper's Table 1 classification.
	Table1Row = iexp.Table1Row
	// Table2Row is the operational verification of Table 2.
	Table2Row = iexp.Table2Row
	// Table3Row compares group-safe and group-1-safe loss conditions.
	Table3Row = iexp.Table3Row
	// TraceResult is the Fig. 2 vs Fig. 8 response-time breakdown.
	TraceResult = iexp.TraceResult
	// DiskVsBroadcastResult quantifies the Sect. 6 disk-vs-broadcast claim.
	DiskVsBroadcastResult = iexp.DiskVsBroadcastResult
	// ScalingPoint is one point of the Sect. 7 scaling comparison.
	ScalingPoint = iexp.ScalingPoint
	// ScalingConfig parameterises the Sect. 7 model.
	ScalingConfig = iexp.ScalingConfig
	// TechniqueComparisonConfig parameterises the real-stack replication
	// technique comparison.
	TechniqueComparisonConfig = iexp.TechniqueComparisonConfig
	// TechniqueResult is one technique's measured behaviour.
	TechniqueResult = iexp.TechniqueResult
)

// RunFigure5 reproduces Fig. 5: classical atomic broadcast loses an
// acknowledged transaction after a total failure in which only the
// non-delegates recover.
func RunFigure5() (FailureScenarioResult, error) { return iexp.RunFigure5() }

// RunFigure7 reproduces Fig. 7: the same schedule on end-to-end atomic
// broadcast (2-safe) replays the logged message and the transaction
// survives.
func RunFigure7() (FailureScenarioResult, error) { return iexp.RunFigure7() }

// RunTable1 produces the Table 1 classification for a group of n servers.
func RunTable1(n int) []Table1Row { return iexp.RunTable1(n) }

// RunTable2 runs the crash-tolerance experiments for every safety level on a
// cluster of n replicas (n >= 3).
func RunTable2(n int) ([]Table2Row, error) { return iexp.RunTable2(n) }

// RunTable3 runs the three loss conditions of Table 3 for group-safe and
// group-1-safe.
func RunTable3() ([]Table3Row, error) { return iexp.RunTable3() }

// RunFig2VsFig8Trace measures the single-transaction response time of the
// group-1-safe (Fig. 2) and group-safe (Fig. 8) protocol variants.
func RunFig2VsFig8Trace(diskSync, netLatency time.Duration, txns int) (TraceResult, error) {
	return iexp.RunFig2VsFig8Trace(diskSync, netLatency, txns)
}

// RunDiskVsBroadcast measures a forced log write against a full uniform
// atomic broadcast round over an n-member group (Sect. 6).
func RunDiskVsBroadcast(diskSync, netLatency time.Duration, n int) (DiskVsBroadcastResult, error) {
	return iexp.RunDiskVsBroadcast(diskSync, netLatency, n)
}

// RunSection7Scaling evaluates the Sect. 7 argument: lazy replication's
// violation probability grows with the number of servers, group-safety's
// shrinks.
func RunSection7Scaling(cfg ScalingConfig) []ScalingPoint { return iexp.RunSection7Scaling(cfg) }

// RunTechniqueComparison drives the same seeded workload through a real
// cluster per replication technique and reports response time, abort rate
// and messages per transaction for each.
func RunTechniqueComparison(cfg TechniqueComparisonConfig) ([]TechniqueResult, error) {
	return iexp.RunTechniqueComparison(cfg)
}

// FormatTechniqueComparison renders the comparison as a table.
func FormatTechniqueComparison(results []TechniqueResult) string {
	return iexp.FormatTechniqueComparison(results)
}
