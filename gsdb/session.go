package gsdb

import (
	"context"
	"sync"
)

// executor is the surface a Session rides on — satisfied by both the
// embedded Client and the network RemoteClient, so session semantics are
// identical in-process and across TCP (the freshness token and floor ride
// the wire protocol unchanged).
type executor interface {
	Execute(ctx context.Context, req Request, opts ...TxnOption) (Result, error)
}

// Session threads the freshness token automatically: every Execute carries
// the largest token (and, on partitioned clusters, the element-wise-largest
// freshness vector) observed by any previous call in the session as its
// MinFreshness floor, and merges the result's token back in.  The guarantees
// are the paper's session properties built from the total order: monotonic
// reads, and read-your-own-writes across replicas — a committed update's
// token is its position in the total order, so the next read waits (or is
// routed to a replica that already applied it, which the freshness-aware
// delegate picker prefers) before taking its snapshot.
//
//	s := client.NewSession()
//	s.Execute(ctx, gsdb.Request{Ops: []gsdb.Op{{Item: 1, Write: true, Value: 7}}})
//	res, _ := s.Execute(ctx, gsdb.Query(1)) // sees value 7, from any replica
//
// The token only ever grows, never resets — even across replica crashes and
// failovers the session keeps reading forward.  Additional options combine
// as usual; a WithFreshness/WithFreshnessVec floor stronger than the
// session's is honoured.  A Session is safe for concurrent use; concurrent
// calls may observe each other's tokens in any order, but each call's floor
// is at least the largest token merged before it started.
type Session struct {
	exec executor

	mu    sync.Mutex
	token uint64
	vec   []uint64
}

// NewSession starts a session on the embedded client.
func (c *Client) NewSession() *Session { return &Session{exec: c} }

// NewSession starts a session on the network client.
func (c *RemoteClient) NewSession() *Session { return &Session{exec: c} }

// Execute runs one transaction with the session's freshness floor applied
// and merges the resulting token back into the session.
func (s *Session) Execute(ctx context.Context, req Request, opts ...TxnOption) (Result, error) {
	token, vec := s.floor()
	floored := make([]TxnOption, 0, len(opts)+2)
	if token > 0 {
		floored = append(floored, WithFreshness(token))
	}
	if len(vec) > 0 {
		floored = append(floored, WithFreshnessVec(vec))
	}
	floored = append(floored, opts...)
	res, err := s.exec.Execute(ctx, req, floored...)
	if err == nil {
		s.merge(res)
	}
	return res, err
}

// Token returns the session's current freshness token (the largest observed
// so far; 0 before the first successful call).  On a partitioned cluster the
// session tracks per-partition sequences instead — see TokenVec.
func (s *Session) Token() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.token
}

// TokenVec returns a copy of the session's per-partition freshness vector
// (nil before the first successful call on a partitioned cluster).
func (s *Session) TokenVec() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vec) == 0 {
		return nil
	}
	return append([]uint64(nil), s.vec...)
}

// floor snapshots the session's current floor for one outgoing call.
func (s *Session) floor() (uint64, []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var vec []uint64
	if len(s.vec) > 0 {
		vec = append([]uint64(nil), s.vec...)
	}
	return s.token, vec
}

// merge folds a result's freshness information into the session; tokens are
// monotone, so merging is element-wise max.  A result carrying a freshness
// vector comes from a partitioned cluster, where the scalar Freshness is just
// the vector's maximum and sequences are NOT comparable across partitions —
// folding it into the scalar token would impose one partition's sequence as a
// floor on every other partition's independent total order.  Partitioned
// sessions therefore live entirely in the vector (Token stays 0; see
// TokenVec).
func (s *Session) merge(res Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(res.FreshnessVec) == 0 && res.Freshness > s.token {
		s.token = res.Freshness
	}
	if len(res.FreshnessVec) > len(s.vec) {
		s.vec = append(s.vec, make([]uint64, len(res.FreshnessVec)-len(s.vec))...)
	}
	for p, seq := range res.FreshnessVec {
		if seq > s.vec[p] {
			s.vec[p] = seq
		}
	}
}
