package gsdb

import (
	"groupsafe/internal/core"
	"groupsafe/internal/tuning"
	"groupsafe/internal/workload"
)

// The client-facing types are aliases of the engine's own types, so values
// cross the gsdb boundary with no conversion and errors.Is/errors.As work
// across it; consumers never need to (and, outside this module, cannot)
// import the internal packages.
type (
	// Op is one read or write operation of a transaction.
	Op = workload.Op
	// Request is a client transaction: an operation list, an optional
	// Compute hook deriving further operations from the values read, and an
	// optional per-transaction safety override (set via WithSafety).
	Request = core.Request
	// Result is the transaction outcome returned at the safety level's
	// notification point.
	Result = core.Result
	// Outcome is the terminal state of a transaction.
	Outcome = core.Outcome
	// SafetyLevel is the paper's safety criterion (Table 1): what is
	// guaranteed about a transaction when the client is notified.
	SafetyLevel = core.SafetyLevel
	// TechniqueID selects the replication technique a cluster runs.
	TechniqueID = core.TechniqueID
	// Stats are cumulative per-replica counters (Client.TotalStats sums
	// them across the cluster).
	Stats = core.ReplicaStats
	// DivergenceError is returned by WaitConsistent when the context
	// expires first: it names the first replica pair and item that
	// disagreed and wraps the context error.
	DivergenceError = core.DivergenceError
	// Pipeline carries the shared tuning knobs (BatchSize, BatchDelay,
	// ApplyWorkers) used by the experiments subpackage; clusters opened
	// with Open configure them via WithBatching and WithApplyWorkers.
	Pipeline = tuning.Pipeline
	// Workload generates the paper's Table 4 transaction mix.
	Workload = workload.Generator
	// WorkloadConfig parameterises a Workload.
	WorkloadConfig = workload.Config
	// Transaction is one generated workload transaction (see
	// RequestFromWorkload).
	Transaction = workload.Transaction
)

// The safety criteria, in increasing order of guarantees (Table 1 and
// Table 2 of the paper).
const (
	// Safety0 (0-safe): notified after local execution only; a single crash
	// can lose the transaction.
	Safety0 = core.Safety0
	// Safety1Lazy (1-safe, lazy): notified once logged at the delegate;
	// write sets propagate lazily after the response.
	Safety1Lazy = core.Safety1Lazy
	// GroupSafe: notified once the transaction's message is guaranteed
	// delivered at all available servers and the decision is known; disk
	// forces happen off the response path.
	GroupSafe = core.GroupSafe
	// Group1Safe: GroupSafe plus a forced log at the delegate before the
	// response.
	Group1Safe = core.Group1Safe
	// Safety2 (2-safe): on stable storage at every available server (via
	// the end-to-end message log) before the response.
	Safety2 = core.Safety2
	// VerySafe: logged at every server, available or not, before the
	// response; a single unreachable server blocks termination.
	VerySafe = core.VerySafe
)

// The replication techniques (all run behind the same client API).
const (
	// TechCertification is the certification-based database state machine —
	// the paper's own protocol: optimistic delegate execution, one atomic
	// broadcast, deterministic first-updater-wins certification everywhere.
	TechCertification = core.TechCertification
	// TechActive is active replication: the full operation list is
	// broadcast and every replica executes it in total order; no aborts.
	TechActive = core.TechActive
	// TechLazyPrimary is lazy primary-copy (1-safe): updates run at the
	// primary only, write sets ship asynchronously after the response.
	TechLazyPrimary = core.TechLazyPrimary
)

// Transaction outcomes.
const (
	OutcomePending   = core.OutcomePending
	OutcomeCommitted = core.OutcomeCommitted
	OutcomeAborted   = core.OutcomeAborted
)

// AllLevels lists every safety level, in increasing order of guarantees.
func AllLevels() []SafetyLevel { return core.AllLevels() }

// ParseLevel resolves a safety level name (as printed by its String method,
// e.g. "group-safe").
func ParseLevel(s string) (SafetyLevel, error) { return core.ParseLevel(s) }

// AllTechniques lists every replication technique.
func AllTechniques() []TechniqueID { return core.AllTechniques() }

// ParseTechnique resolves a technique name (as printed by its String method,
// e.g. "certification").
func ParseTechnique(s string) (TechniqueID, error) { return core.ParseTechnique(s) }

// CanonicalLevel validates a safety level against a technique and returns
// the level the technique actually runs (e.g. active replication promotes
// the zero level to group-safe; lazy primary-copy pins to 1-safe-lazy).
func CanonicalLevel(tech TechniqueID, level SafetyLevel) (SafetyLevel, error) {
	return core.CanonicalLevel(tech, level)
}

// NewWorkload builds a transaction generator for the given configuration and
// seed; it is safe for concurrent use.
func NewWorkload(cfg WorkloadConfig, seed int64) *Workload {
	return workload.NewGenerator(cfg, seed)
}

// DefaultWorkloadConfig returns the paper's Table 4 workload parameters.
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// RequestFromWorkload converts one generated workload transaction into an
// executable Request (pure queries are marked ReadOnly and take the snapshot
// fast path).
func RequestFromWorkload(t Transaction) Request {
	return core.RequestFromWorkload(t)
}

// Query builds a read-only request over the given items.  It executes
// locally at one replica on an MVCC snapshot — zero group communication, no
// locks, never aborts — and returns the values in Result.ReadValues plus a
// Freshness token for monotonic session reads:
//
//	res, _ := client.Execute(ctx, gsdb.Query(1, 2, 3))
//	later, _ := client.Execute(ctx, gsdb.Query(1), gsdb.WithFreshness(res.Freshness))
func Query(items ...int) Request {
	ops := make([]Op, len(items))
	for i, it := range items {
		ops[i] = Op{Item: it}
	}
	return Request{Ops: ops, ReadOnly: true}
}
