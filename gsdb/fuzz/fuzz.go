// Package fuzz is the public face of the deterministic fault-injection
// scenario fuzzer (internal/sim/fuzz): seed-driven adversary schedules over a
// simulated cluster, a post-run invariant suite for the paper's safety
// claims, a ddmin schedule shrinker, and a replayable trace codec.  The
// gsdb-fuzz command is a thin shell over this package.
package fuzz

import (
	internal "groupsafe/internal/sim/fuzz"
)

// Core types, re-exported by alias so gsdb-fuzz and external harnesses can
// use them without reaching into internal/.
type (
	// Config parameterises one fuzz run; the zero Config plus a Seed is the
	// common case (everything else derives from the seed).
	Config = internal.Config
	// Scenario is a resolved config plus the adversary schedule.
	Scenario = internal.Scenario
	// Step is one entry of the adversary schedule.
	Step = internal.Step
	// StepKind enumerates the schedule's step types.
	StepKind = internal.StepKind
	// RunRecord is everything a finished run recorded for the checkers.
	RunRecord = internal.RunRecord
	// TxnRec is the record of one submitted transaction.
	TxnRec = internal.TxnRec
	// CrashEvent records one injected crash with its durable frontier.
	CrashEvent = internal.CrashEvent
	// FaultSummary lists the destructive fault classes a schedule contains.
	FaultSummary = internal.FaultSummary
	// Violation is one invariant failure.
	Violation = internal.Violation
	// ShrinkResult is the outcome of a schedule minimisation.
	ShrinkResult = internal.ShrinkResult
)

// TraceExt is the corpus trace file extension.
const TraceExt = internal.TraceExt

// Profiles lists the supported adversary profiles.
func Profiles() []string { return internal.Profiles() }

// Generate expands a config into its scenario (a pure function of the
// resolved config).
func Generate(cfg Config) (*Scenario, error) { return internal.Generate(cfg) }

// Run executes a scenario against a real in-process cluster.
func Run(sc *Scenario) (*RunRecord, error) { return internal.Run(sc) }

// CheckAll runs the invariant suite over a finished run.
func CheckAll(rec *RunRecord) []Violation { return internal.CheckAll(rec) }

// Shrink minimises a failing schedule while the invariant suite keeps
// failing.
func Shrink(sc *Scenario, violations []Violation, maxRuns int) *ShrinkResult {
	return internal.Shrink(sc, violations, maxRuns)
}

// ReportViolations renders a violation list for logs.
func ReportViolations(vs []Violation) string { return internal.ReportViolations(vs) }

// ParseScenario parses a marshalled trace.
func ParseScenario(data []byte) (*Scenario, error) { return internal.ParseScenario(data) }

// ReadTrace parses the trace file at path.
func ReadTrace(path string) (*Scenario, error) { return internal.ReadTrace(path) }

// WriteTrace writes a scenario's canonical trace to path.
func WriteTrace(path string, sc *Scenario) error { return internal.WriteTrace(path, sc) }

// CorpusTraces lists the trace files under dir.
func CorpusTraces(dir string) ([]string, error) { return internal.CorpusTraces(dir) }
