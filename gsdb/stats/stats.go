// Package stats is the public measurement toolkit of the gsdb API: response
// time samples with percentiles and confidence intervals, as used by the
// examples and command-line tools.  It re-exports the module's internal
// statistics package, which stays an implementation detail.
package stats

import istats "groupsafe/internal/stats"

// Sample accumulates scalar observations (typically response times in
// milliseconds via AddDuration) and reports mean, min/max, percentiles and a
// 95% confidence interval.
type Sample = istats.Sample

// NewSample returns an empty sample.
func NewSample() *Sample { return istats.NewSample() }

// Breakdown groups observations by transaction class (typically "query" vs
// "update"), one Sample per class, so per-class latency percentiles come from
// the same toolkit — the measurement side of the paper's local-queries versus
// ordered-updates split.
type Breakdown = istats.Breakdown

// NewBreakdown returns an empty per-class collector.
func NewBreakdown() *Breakdown { return istats.NewBreakdown() }
