package gsdb

import (
	"errors"

	"groupsafe/internal/core"
)

// The unified error taxonomy of the public API.  Every sentinel is
// errors.Is-able against the errors returned by Client and Commit methods;
// the engine-originated sentinels share identity with the engine's own, so
// matching works no matter how deep the wrapping.  Context expiries
// additionally keep their context sentinel: a deadline expiry matches BOTH
// ErrTimeout and context.DeadlineExceeded, a cancellation matches
// context.Canceled.
var (
	// ErrClosed is returned by Execute, Submit and WaitConsistent after
	// Close.  The inspection helpers (Value, Consistent, stats, crash
	// control) stay callable so post-mortem checks keep working.
	ErrClosed = errors.New("gsdb: client is closed")
	// ErrAborted is returned by Commit.Durable (and useful for callers'
	// own signalling) when the transaction did not commit — a certification
	// conflict, or a local abort (deadlock victim) on the lazy paths:
	// there is nothing to make durable.
	ErrAborted = errors.New("gsdb: transaction aborted")
	// ErrTimeout marks an Execute that gave up waiting for its notification
	// condition — a context deadline, or the default ExecTimeout.
	ErrTimeout = core.ErrTimeout
	// ErrCrashed is returned when the delegate replica is (or crashes
	// while) serving the transaction.
	ErrCrashed = core.ErrCrashed
	// ErrNotPrimary is returned by the lazy primary-copy technique when an
	// update transaction is submitted directly to a secondary replica.
	ErrNotPrimary = core.ErrNotPrimary
	// ErrNotFound is returned for out-of-range replica indexes.
	ErrNotFound = core.ErrNotFound
	// ErrSafetyUnavailable is returned when a WithSafety override asks for
	// a level this cluster's technique or machinery cannot provide.
	ErrSafetyUnavailable = core.ErrSafetyUnavailable
	// ErrComputeNotReplicable is returned by active replication for
	// requests carrying a Compute hook (closures cannot be broadcast), and
	// by RemoteClient.Execute for any Compute hook (closures cannot cross
	// the network).
	ErrComputeNotReplicable = core.ErrComputeNotReplicable
	// ErrReadOnlyWrites is returned when a request declared ReadOnly
	// carries a write operation (or a Compute hook, which could emit one).
	ErrReadOnlyWrites = core.ErrReadOnlyWrites
	// ErrTooStale is returned for a WithMaxStaleness query when the serving
	// replica cannot prove its applied state is within the requested bound
	// of the freshest advertised state.  The lease never waits: redirect to
	// a fresher replica (RemoteClient retries elsewhere automatically) or
	// relax the bound.
	ErrTooStale = core.ErrTooStale
	// ErrSnapshotTooOld is returned by a read when its pinned MVCC snapshot
	// outlived the cluster's WithMaxPinAge cap and was evicted; restart the
	// transaction on a fresh snapshot.
	ErrSnapshotTooOld = core.ErrSnapshotTooOld
)
