package gsdb

import (
	"context"
	"net"
	"testing"
	"time"
)

// fakeClock drives the endpoint-health windows without real sleeps.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newHealthClient(t *testing.T, addrs ...string) (*RemoteClient, *fakeClock) {
	t.Helper()
	c, err := Dial(context.Background(), addrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c.now = clk.now
	return c, clk
}

// TestEndpointSuspensionGrowsAndDecays: each consecutive failure doubles the
// suspension window up to the cap, an expired window re-admits the endpoint
// (the probe path), and one success clears the history entirely.
func TestEndpointSuspensionGrowsAndDecays(t *testing.T) {
	c, clk := newHealthClient(t, "a:1", "b:1")

	c.noteEndpointFailure("a:1")
	if !c.endpointSuspended("a:1") {
		t.Fatal("one failure should suspend the endpoint")
	}
	if c.endpointSuspended("b:1") {
		t.Fatal("healthy endpoint suspended")
	}
	clk.advance(endpointSuspendMin + time.Millisecond)
	if c.endpointSuspended("a:1") {
		t.Fatal("first window should have expired")
	}

	// Second consecutive failure: double window.
	c.noteEndpointFailure("a:1")
	clk.advance(endpointSuspendMin + time.Millisecond)
	if !c.endpointSuspended("a:1") {
		t.Fatal("second failure should have doubled the window")
	}
	clk.advance(endpointSuspendMin)
	if c.endpointSuspended("a:1") {
		t.Fatal("second window should have expired")
	}

	// Many failures: window capped, not overflowed.
	for i := 0; i < 40; i++ {
		c.noteEndpointFailure("a:1")
	}
	clk.advance(endpointSuspendMax - time.Millisecond)
	if !c.endpointSuspended("a:1") {
		t.Fatal("capped window ended early")
	}
	clk.advance(2 * time.Millisecond)
	if c.endpointSuspended("a:1") {
		t.Fatal("window exceeded the cap")
	}

	// Success resets: the next failure starts at the minimum window again.
	c.noteEndpointFailure("a:1")
	c.noteEndpointOK("a:1")
	if c.endpointSuspended("a:1") {
		t.Fatal("success should clear the suspension")
	}
	c.noteEndpointFailure("a:1")
	clk.advance(endpointSuspendMin + time.Millisecond)
	if c.endpointSuspended("a:1") {
		t.Fatal("failure count should have decayed to zero after a success")
	}
}

// TestPickAddrSkipsSuspendedEndpoints: the rotation walks past suspended
// endpoints to the next healthy one, and probes the slot's own endpoint when
// every endpoint is suspended (no starvation).
func TestPickAddrSkipsSuspendedEndpoints(t *testing.T) {
	c, clk := newHealthClient(t, "a:1", "b:1", "c:1")

	if got := c.pickAddr(0); got != "a:1" {
		t.Fatalf("healthy slot 0 = %s, want a:1", got)
	}
	c.noteEndpointFailure("a:1")
	if got := c.pickAddr(0); got != "b:1" {
		t.Fatalf("slot 0 with a:1 suspended = %s, want b:1", got)
	}
	c.noteEndpointFailure("b:1")
	if got := c.pickAddr(0); got != "c:1" {
		t.Fatalf("slot 0 with a:1,b:1 suspended = %s, want c:1", got)
	}
	if got := c.pickAddr(1); got != "c:1" {
		t.Fatalf("slot 1 with b:1 suspended = %s, want c:1", got)
	}

	// All suspended: the slot's own endpoint is probed anyway.
	c.noteEndpointFailure("c:1")
	if got := c.pickAddr(1); got != "b:1" {
		t.Fatalf("slot 1 with all suspended = %s, want its own b:1", got)
	}

	// The earliest window to expire rejoins the rotation first.
	clk.advance(endpointSuspendMin + time.Millisecond)
	if got := c.pickAddr(0); got != "a:1" {
		t.Fatalf("slot 0 after a:1's window expired = %s, want a:1", got)
	}
}

// TestHandshakeFailureSuspendsEndpoint: a listener speaking the wrong
// protocol (it answers the handshake with garbage) gets its endpoint
// suspended after the failed connection attempt — the real-socket path of the
// bookkeeping the tests above drive directly.
func TestHandshakeFailureSuspendsEndpoint(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Write([]byte("NOT-THE-PROTOCOL-YOU-EXPECT\n"))
			conn.Close()
		}
	}()

	addr := ln.Addr().String()
	c, err := Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.conn(ctx, addr); err == nil {
		t.Fatal("handshake against a garbage server should fail")
	}
	if !c.endpointSuspended(addr) {
		t.Fatal("failed handshake should suspend the endpoint")
	}
}
