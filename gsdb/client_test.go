package gsdb_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"groupsafe/gsdb"
)

func openTest(t *testing.T, opts ...gsdb.Option) *gsdb.Client {
	t.Helper()
	client, err := gsdb.Open(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return client
}

func write(item int, value int64) gsdb.Request {
	return gsdb.Request{Ops: []gsdb.Op{{Item: item, Write: true, Value: value}}}
}

func TestExecuteAndWaitConsistent(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithItems(128))
	res, err := client.Execute(ctx, write(1, 11), gsdb.Via(0))
	if err != nil || !res.Committed() {
		t.Fatalf("%+v, %v", res, err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	if err := client.WaitConsistent(waitCtx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < client.Size(); i++ {
		if v, err := client.Value(i, 1); err != nil || v != 11 {
			t.Fatalf("replica %d: %d, %v", i, v, err)
		}
	}
}

// TestSubmitRespondedThenDurable is the acceptance check on the async commit
// handle: Responded resolves strictly no later than Durable for the
// force-on-commit levels, and both resolve for group-safe (where Durable
// forces the log on demand).
func TestSubmitRespondedThenDurable(t *testing.T) {
	ctx := context.Background()
	for _, level := range []gsdb.SafetyLevel{gsdb.GroupSafe, gsdb.Safety2, gsdb.VerySafe} {
		t.Run(level.String(), func(t *testing.T) {
			client := openTest(t,
				gsdb.WithReplicas(3),
				gsdb.WithItems(128),
				gsdb.WithSafetyLevel(level),
				gsdb.WithDiskSyncDelay(time.Millisecond),
			)
			commit, err := client.Submit(ctx, write(2, 22))
			if err != nil {
				t.Fatal(err)
			}
			res, err := commit.Responded(ctx)
			respondedAt := time.Now()
			if err != nil || !res.Committed() {
				t.Fatalf("%+v, %v", res, err)
			}
			if res.Level != level {
				t.Fatalf("level = %v, want %v", res.Level, level)
			}
			if err := commit.Durable(ctx); err != nil {
				t.Fatal(err)
			}
			durableAt := time.Now()
			if durableAt.Before(respondedAt) {
				t.Fatal("Durable resolved before Responded")
			}
			// Both points are idempotent.
			if _, err := commit.Responded(ctx); err != nil {
				t.Fatal(err)
			}
			if err := commit.Durable(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSubmitReadOnlyDurableIsNil(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithItems(64))
	commit, err := client.Submit(ctx, gsdb.Request{Ops: []gsdb.Op{{Item: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := commit.Responded(ctx); err != nil || !res.Committed() {
		t.Fatalf("%+v, %v", res, err)
	}
	if err := commit.Durable(ctx); err != nil {
		t.Fatalf("read-only Durable: %v", err)
	}
}

func TestSubmitCancelledResolvesHandle(t *testing.T) {
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithItems(64))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	commit, err := client.Submit(ctx, write(3, 33))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := commit.Responded(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit resolved with: %v", err)
	}
	if err := commit.Durable(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit Durable: %v", err)
	}
}

// TestPerTxnVerySafeOverride is the black-box face of the acceptance
// criterion: WithSafety(VerySafe) on a group-safe cluster waits for the
// remote acknowledgements (message count, not timing).
func TestPerTxnVerySafeOverride(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithItems(64), gsdb.WithSafetyLevel(gsdb.GroupSafe))
	res, err := client.Execute(ctx, write(4, 44), gsdb.WithSafety(gsdb.VerySafe))
	if err != nil || !res.Committed() {
		t.Fatalf("%+v, %v", res, err)
	}
	if res.Level != gsdb.VerySafe {
		t.Fatalf("level = %v, want very-safe", res.Level)
	}
	if got := client.TotalStats().AcksSent; got != uint64(client.Size()-1) {
		t.Fatalf("very-safe acks on the wire = %d, want %d", got, client.Size()-1)
	}
}

func TestPerTxnSafetyUnavailable(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithItems(64), gsdb.WithSafetyLevel(gsdb.GroupSafe))
	_, err := client.Execute(ctx, write(5, 55), gsdb.WithSafety(gsdb.Safety2))
	if !errors.Is(err, gsdb.ErrSafetyUnavailable) {
		t.Fatalf("2-safe on a classical cluster: %v", err)
	}
}

func TestClosedClient(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithItems(64))
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Execute(ctx, write(1, 1)); !errors.Is(err, gsdb.ErrClosed) {
		t.Fatalf("Execute after Close: %v", err)
	}
	if _, err := client.Submit(ctx, write(1, 1)); !errors.Is(err, gsdb.ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
	if err := client.WaitConsistent(ctx); !errors.Is(err, gsdb.ErrClosed) {
		t.Fatalf("WaitConsistent after Close: %v", err)
	}
	if err := client.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

// TestRoundRobinAvoidsCrashedReplicas: unpinned Executes keep committing
// after a minority crash, because the default delegate choice skips crashed
// replicas.
func TestRoundRobinAvoidsCrashedReplicas(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithItems(64))
	client.Crash(2)
	client.Suspect(0, 2)
	client.Suspect(1, 2)
	for i := 0; i < 6; i++ {
		res, err := client.Execute(ctx, write(i, int64(i)))
		if err != nil || !res.Committed() {
			t.Fatalf("txn %d with a crashed replica: %+v, %v", i, res, err)
		}
	}
	if client.LiveCount() != 2 {
		t.Fatalf("LiveCount = %d", client.LiveCount())
	}
}

// TestDeadlineMatchesTimeoutAndContext: the acceptance check on the error
// taxonomy — a deadline expiry matches ErrTimeout AND context.DeadlineExceeded
// through the public API.
func TestDeadlineMatchesTimeoutAndContext(t *testing.T) {
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithItems(64), gsdb.WithSafetyLevel(gsdb.VerySafe))
	client.Crash(2)
	client.Suspect(0, 2)
	client.Suspect(1, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, err := client.Execute(ctx, write(1, 1), gsdb.Via(0))
	if !errors.Is(err, gsdb.ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline expiry should match ErrTimeout and DeadlineExceeded: %v", err)
	}
}

func TestQueryMonotonicSessionReads(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithItems(128))

	var session uint64 // largest freshness token seen so far
	for i := 0; i < 10; i++ {
		res, err := client.Execute(ctx, write(5, int64(100+i)), gsdb.Via(0))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Committed() {
			continue
		}
		if res.Freshness == 0 {
			t.Fatal("committed update without freshness token")
		}
		if res.Freshness > session {
			session = res.Freshness
		}
		// Read-your-writes from a DIFFERENT replica via the session token.
		read, err := client.Execute(ctx, gsdb.Query(5), gsdb.Via(1+i%2), gsdb.WithFreshness(session))
		if err != nil {
			t.Fatal(err)
		}
		if got := read.ReadValues[5]; got != int64(100+i) {
			t.Fatalf("session read = %d, want %d", got, 100+i)
		}
		if read.Stale {
			t.Fatal("query flagged stale on certification cluster")
		}
		if read.Freshness > session {
			session = read.Freshness
		}
	}
	if q := client.TotalStats().Queries; q == 0 {
		t.Fatal("Queries counter did not move")
	}
}

func TestReadOnlyOptionRejectsWrites(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(3))
	_, err := client.Execute(ctx, write(1, 1), gsdb.ReadOnly())
	if err == nil {
		t.Fatal("write under ReadOnly() accepted")
	}
}

func TestLazyQueryStaleFlag(t *testing.T) {
	ctx := context.Background()
	client := openTest(t, gsdb.WithReplicas(3), gsdb.WithTechnique(gsdb.TechLazyPrimary), gsdb.WithSafetyLevel(gsdb.Safety1Lazy))
	if _, err := client.Execute(ctx, write(2, 22), gsdb.Via(0)); err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	if err := client.WaitConsistent(waitCtx); err != nil {
		t.Fatal(err)
	}
	primary, err := client.Execute(ctx, gsdb.Query(2), gsdb.Via(0))
	if err != nil || primary.Stale {
		t.Fatalf("primary query: %+v, %v", primary, err)
	}
	secondary, err := client.Execute(ctx, gsdb.Query(2), gsdb.Via(1))
	if err != nil || !secondary.Stale {
		t.Fatalf("secondary query not flagged stale: %+v, %v", secondary, err)
	}
	// Freshness floors have no meaning without a total order.
	_, err = client.Execute(ctx, gsdb.Query(2), gsdb.Via(1), gsdb.WithFreshness(1))
	if !errors.Is(err, gsdb.ErrSafetyUnavailable) {
		t.Fatalf("freshness on lazy cluster: %v", err)
	}
}
