// Failover: demonstrates the failure semantics that motivate the paper,
// through the public gsdb API.
//
//  1. A group-safe cluster keeps serving transactions while a minority of the
//     servers is crashed, and the crashed server catches up through state
//     transfer when it recovers.
//
//  2. The Fig. 5 / Fig. 7 schedules are replayed: with classical atomic
//     broadcast an acknowledged transaction is lost after a total failure,
//     with end-to-end atomic broadcast (2-safe) it is recovered.
//
//     go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"groupsafe/gsdb"
	"groupsafe/gsdb/experiments"
)

func main() {
	minorityCrashDemo()
	totalFailureDemo()
}

func minorityCrashDemo() {
	fmt.Println("=== group-safe replication under a minority crash ===")
	ctx := context.Background()
	client, err := gsdb.Open(ctx,
		gsdb.WithReplicas(3),
		gsdb.WithItems(1000),
		gsdb.WithSafetyLevel(gsdb.GroupSafe),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	write := func(delegate, item int, value int64) {
		res, err := client.Execute(ctx, gsdb.Request{Ops: []gsdb.Op{
			{Item: item, Write: true, Value: value},
		}}, gsdb.Via(delegate))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote item %d = %d via %s (%s)\n", item, value, res.Delegate, res.Outcome)
	}
	waitConsistent := func(timeout time.Duration) error {
		waitCtx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		return client.WaitConsistent(waitCtx)
	}

	write(0, 1, 11)
	_ = waitConsistent(2 * time.Second)

	fmt.Printf("  crashing %s\n", client.ReplicaID(2))
	client.Crash(2)
	client.Suspect(0, 2)
	client.Suspect(1, 2)

	// The group keeps accepting transactions with one server down.
	write(0, 2, 22)
	write(1, 3, 33)

	replayed, err := client.Recover(2)
	if err != nil {
		log.Fatal(err)
	}
	if err := waitConsistent(5 * time.Second); err != nil {
		log.Fatalf("recovered replica did not catch up: %v", err)
	}
	v, _ := client.Value(2, 3)
	fmt.Printf("  recovered %s via state transfer (%d replayed messages); item3=%d on the recovered replica\n\n",
		client.ReplicaID(2), replayed, v)
}

func totalFailureDemo() {
	fmt.Println("=== total failure: classical vs end-to-end atomic broadcast ===")
	fig5, err := experiments.RunFigure5()
	if err != nil {
		log.Fatal(err)
	}
	fig7, err := experiments.RunFigure7()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Fig. 5 (classical abcast, group-1-safe): client notified=%v, transaction lost=%v\n",
		fig5.ClientNotified, fig5.TransactionLost)
	fmt.Printf("  Fig. 7 (end-to-end abcast, 2-safe):      client notified=%v, transaction lost=%v (replayed %d messages)\n",
		fig7.ClientNotified, fig7.TransactionLost, fig7.ReplayedMessages)
	fmt.Println("  => classical group communication cannot give 2-safety; end-to-end atomic broadcast can")
}
