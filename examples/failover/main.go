// Failover: demonstrates the failure semantics that motivate the paper.
//
//  1. A group-safe cluster keeps serving transactions while a minority of the
//     servers is crashed, and the crashed server catches up through state
//     transfer when it recovers.
//  2. The Fig. 5 / Fig. 7 schedules are replayed: with classical atomic
//     broadcast an acknowledged transaction is lost after a total failure,
//     with end-to-end atomic broadcast (2-safe) it is recovered.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/experiments"
	"groupsafe/internal/workload"
)

func main() {
	minorityCrashDemo()
	totalFailureDemo()
}

func minorityCrashDemo() {
	fmt.Println("=== group-safe replication under a minority crash ===")
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas: 3,
		Items:    1000,
		Level:    core.GroupSafe,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	write := func(delegate, item int, value int64) {
		res, err := cluster.Execute(delegate, core.Request{Ops: []workload.Op{
			{Item: item, Write: true, Value: value},
		}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote item %d = %d via %s (%s)\n", item, value, res.Delegate, res.Outcome)
	}

	write(0, 1, 11)
	cluster.WaitConsistent(2 * time.Second)

	crashed := cluster.Replica(2)
	fmt.Printf("  crashing %s\n", crashed.ID())
	cluster.Crash(2)
	cluster.Replica(0).Suspect(crashed.ID())
	cluster.Replica(1).Suspect(crashed.ID())

	// The group keeps accepting transactions with one server down.
	write(0, 2, 22)
	write(1, 3, 33)

	replayed, err := cluster.Recover(2)
	if err != nil {
		log.Fatal(err)
	}
	if !cluster.WaitConsistent(5 * time.Second) {
		log.Fatal("recovered replica did not catch up")
	}
	v, _ := cluster.Value(2, 3)
	fmt.Printf("  recovered %s via state transfer (%d replayed messages); item3=%d on the recovered replica\n\n",
		crashed.ID(), replayed, v)
}

func totalFailureDemo() {
	fmt.Println("=== total failure: classical vs end-to-end atomic broadcast ===")
	fig5, err := experiments.RunFigure5()
	if err != nil {
		log.Fatal(err)
	}
	fig7, err := experiments.RunFigure7()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Fig. 5 (classical abcast, group-1-safe): client notified=%v, transaction lost=%v\n",
		fig5.ClientNotified, fig5.TransactionLost)
	fmt.Printf("  Fig. 7 (end-to-end abcast, 2-safe):      client notified=%v, transaction lost=%v (replayed %d messages)\n",
		fig7.ClientNotified, fig7.TransactionLost, fig7.ReplayedMessages)
	fmt.Println("  => classical group communication cannot give 2-safety; end-to-end atomic broadcast can")
}
