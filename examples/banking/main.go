// Banking: account transfers on an update-everywhere replicated database.
// Concurrent transfers are submitted to different delegate servers; the
// certification step aborts the conflicting ones deterministically on every
// replica, so the total amount of money is conserved and all replicas agree.
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/workload"
)

const (
	accounts       = 50
	initialBalance = 1000
	transfers      = 300
)

func main() {
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas: 3,
		Items:    accounts,
		Level:    core.GroupSafe,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Fund the accounts through server 0.
	ops := make([]workload.Op, accounts)
	for i := range ops {
		ops[i] = workload.Op{Item: i, Write: true, Value: initialBalance}
	}
	if _, err := cluster.Execute(0, core.Request{Ops: ops}); err != nil {
		log.Fatal(err)
	}
	cluster.WaitConsistent(2 * time.Second)
	fmt.Printf("funded %d accounts with %d each (total %d)\n", accounts, initialBalance, accounts*initialBalance)

	// Run concurrent transfers from three clients, one per delegate server.
	var wg sync.WaitGroup
	var mu sync.Mutex
	commits, aborts := 0, 0
	for client := 0; client < 3; client++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(client) + 1))
			for i := 0; i < transfers/3; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				committed, err := transfer(cluster, client, from, to, int64(1+rng.Intn(50)))
				if err != nil {
					log.Printf("client %d: %v", client, err)
					return
				}
				mu.Lock()
				if committed {
					commits++
				} else {
					aborts++
				}
				mu.Unlock()
			}
		}(client)
	}
	wg.Wait()

	if !cluster.WaitConsistent(5 * time.Second) {
		log.Fatal("replicas diverged")
	}
	fmt.Printf("transfers: %d committed, %d aborted by certification\n", commits, aborts)

	// Money conservation on every replica.
	for i := 0; i < cluster.Size(); i++ {
		var total int64
		for acc := 0; acc < accounts; acc++ {
			v, _ := cluster.Value(i, acc)
			total += v
		}
		fmt.Printf("  replica %s: total balance = %d\n", cluster.Replica(i).ID(), total)
		if total != accounts*initialBalance {
			log.Fatalf("money was created or destroyed on replica %d", i)
		}
	}
	fmt.Println("all replicas conserve the total balance: one-copy serialisability holds")
}

// transfer moves amount from one account to another as a single replicated
// read-modify-write transaction: the balances are read at the delegate, the
// new balances are computed from those reads, and the certification step
// aborts the transaction if a concurrent transfer touched either account
// between the reads and the delivery of the write set.
func transfer(cluster *core.Cluster, delegate, from, to int, amount int64) (bool, error) {
	res, err := cluster.Execute(delegate, core.Request{
		Ops: []workload.Op{{Item: from}, {Item: to}},
		Compute: func(reads map[int]int64) []workload.Op {
			if reads[from] < amount {
				return nil // insufficient funds: a read-only no-op
			}
			return []workload.Op{
				{Item: from, Write: true, Value: reads[from] - amount},
				{Item: to, Write: true, Value: reads[to] + amount},
			}
		},
	})
	if err != nil {
		return false, err
	}
	return res.Committed(), nil
}
