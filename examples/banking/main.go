// Banking: account transfers on an update-everywhere replicated database,
// driven through the public gsdb API.  Concurrent transfers are submitted to
// different delegate servers; the certification step aborts the conflicting
// ones deterministically on every replica, so the total amount of money is
// conserved and all replicas agree.
//
//	go run ./examples/banking
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"groupsafe/gsdb"
)

const (
	accounts       = 50
	initialBalance = 1000
	transfers      = 300
)

func main() {
	ctx := context.Background()
	client, err := gsdb.Open(ctx,
		gsdb.WithReplicas(3),
		gsdb.WithItems(accounts),
		gsdb.WithSafetyLevel(gsdb.GroupSafe),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Fund the accounts through server 0.
	ops := make([]gsdb.Op, accounts)
	for i := range ops {
		ops[i] = gsdb.Op{Item: i, Write: true, Value: initialBalance}
	}
	if _, err := client.Execute(ctx, gsdb.Request{Ops: ops}, gsdb.Via(0)); err != nil {
		log.Fatal(err)
	}
	waitConsistent(ctx, client, 2*time.Second)
	fmt.Printf("funded %d accounts with %d each (total %d)\n", accounts, initialBalance, accounts*initialBalance)

	// Run concurrent transfers from three clients, one per delegate server.
	var wg sync.WaitGroup
	var mu sync.Mutex
	commits, aborts := 0, 0
	for delegate := 0; delegate < 3; delegate++ {
		wg.Add(1)
		go func(delegate int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(delegate) + 1))
			for i := 0; i < transfers/3; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				committed, err := transfer(ctx, client, delegate, from, to, int64(1+rng.Intn(50)))
				if err != nil {
					log.Printf("client %d: %v", delegate, err)
					return
				}
				mu.Lock()
				if committed {
					commits++
				} else {
					aborts++
				}
				mu.Unlock()
			}
		}(delegate)
	}
	wg.Wait()

	waitConsistent(ctx, client, 5*time.Second)
	fmt.Printf("transfers: %d committed, %d aborted by certification\n", commits, aborts)

	// Money conservation on every replica.
	for i := 0; i < client.Size(); i++ {
		var total int64
		for acc := 0; acc < accounts; acc++ {
			v, _ := client.Value(i, acc)
			total += v
		}
		fmt.Printf("  replica %s: total balance = %d\n", client.ReplicaID(i), total)
		if total != accounts*initialBalance {
			log.Fatalf("money was created or destroyed on replica %d", i)
		}
	}
	fmt.Println("all replicas conserve the total balance: one-copy serialisability holds")
}

func waitConsistent(ctx context.Context, client *gsdb.Client, timeout time.Duration) {
	waitCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	// On failure the error names the diverging replica pair and item.
	if err := client.WaitConsistent(waitCtx); err != nil {
		log.Fatal(err)
	}
}

// transfer moves amount from one account to another as a single replicated
// read-modify-write transaction: the balances are read at the delegate, the
// new balances are computed from those reads, and the certification step
// aborts the transaction if a concurrent transfer touched either account
// between the reads and the delivery of the write set.
func transfer(ctx context.Context, client *gsdb.Client, delegate, from, to int, amount int64) (bool, error) {
	res, err := client.Execute(ctx, gsdb.Request{
		Ops: []gsdb.Op{{Item: from}, {Item: to}},
		Compute: func(reads map[int]int64) []gsdb.Op {
			if reads[from] < amount {
				return nil // insufficient funds: a read-only no-op
			}
			return []gsdb.Op{
				{Item: from, Write: true, Value: reads[from] - amount},
				{Item: to, Write: true, Value: reads[to] + amount},
			}
		},
	}, gsdb.Via(delegate))
	if err != nil {
		return false, err
	}
	return res.Committed(), nil
}
