// Quickstart: open a three-server group-safe replicated database through the
// public gsdb API, run transactions at different safety levels — including a
// per-transaction very-safe override and an async commit handle that
// separates the response point from the durability point — and verify that
// every replica converged to the same state.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"groupsafe/gsdb"
)

func main() {
	ctx := context.Background()

	// A cluster of three replicas connected by an in-memory network, using
	// the group-safe criterion: the client is answered as soon as the
	// transaction's message is guaranteed to be delivered everywhere and the
	// commit/abort decision is known — no disk force on the response path.
	client, err := gsdb.Open(ctx,
		gsdb.WithReplicas(3),
		gsdb.WithItems(1000),
		gsdb.WithSafetyLevel(gsdb.GroupSafe),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Write through server 0.
	res, err := client.Execute(ctx, gsdb.Request{Ops: []gsdb.Op{
		{Item: 1, Write: true, Value: 100},
		{Item: 2, Write: true, Value: 200},
	}}, gsdb.Via(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("txn %d via %s: %s (level %s)\n", res.TxnID, res.Delegate, res.Outcome, res.Level)

	// A single transaction can strengthen its own safety level: this one is
	// not acknowledged until EVERY server has logged and forced it.
	res, err = client.Execute(ctx, gsdb.Request{Ops: []gsdb.Op{
		{Item: 3, Write: true, Value: 300},
	}}, gsdb.WithSafety(gsdb.VerySafe))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("txn %d: %s at %s (waited for every server's ack)\n", res.TxnID, res.Outcome, res.Level)

	// Submit returns an async handle that makes the paper's
	// response-vs-durability gap visible: Responded resolves at group-safe
	// delivery, Durable only once the delegate's log is forced.
	commit, err := client.Submit(ctx, gsdb.Request{Ops: []gsdb.Op{
		{Item: 4, Write: true, Value: 400},
	}})
	if err != nil {
		log.Fatal(err)
	}
	if res, err = commit.Responded(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("txn %d responded (group-safe: durability still pending)\n", res.TxnID)
	if err := commit.Durable(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("txn %d now durable on the delegate's stable storage\n", res.TxnID)

	// Read through server 2 (a different delegate).
	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := client.WaitConsistent(waitCtx); err != nil {
		log.Fatal(err)
	}
	res, err = client.Execute(ctx, gsdb.Request{Ops: []gsdb.Op{{Item: 1}, {Item: 2}}}, gsdb.Via(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read via %s: item1=%d item2=%d\n", res.Delegate, res.ReadValues[1], res.ReadValues[2])

	// Every replica holds the same committed state (one-copy equivalence).
	fmt.Printf("replicas consistent: %v\n", client.Consistent())
	for i := 0; i < client.Size(); i++ {
		v, _ := client.Value(i, 1)
		fmt.Printf("  replica %s: item1=%d\n", client.ReplicaID(i), v)
	}
}
