// Quickstart: build a three-server group-safe replicated database, run a few
// transactions through different delegate servers, and verify that every
// replica converged to the same state.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/workload"
)

func main() {
	// A cluster of three replicas connected by an in-memory network, using
	// the group-safe criterion: the client is answered as soon as the
	// transaction's message is guaranteed to be delivered everywhere and the
	// commit/abort decision is known — no disk force on the response path.
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas: 3,
		Items:    1000,
		Level:    core.GroupSafe,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Write through server 0.
	res, err := cluster.Execute(0, core.Request{Ops: []workload.Op{
		{Item: 1, Write: true, Value: 100},
		{Item: 2, Write: true, Value: 200},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("txn %d via %s: %s\n", res.TxnID, res.Delegate, res.Outcome)

	// Read through server 2 (a different delegate).
	cluster.WaitConsistent(2 * time.Second)
	res, err = cluster.Execute(2, core.Request{Ops: []workload.Op{
		{Item: 1}, {Item: 2},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read via %s: item1=%d item2=%d\n", res.Delegate, res.ReadValues[1], res.ReadValues[2])

	// Every replica holds the same committed state (one-copy equivalence).
	fmt.Printf("replicas consistent: %v\n", cluster.Consistent())
	for i := 0; i < cluster.Size(); i++ {
		v, _ := cluster.Value(i, 1)
		fmt.Printf("  replica %s: item1=%d\n", cluster.Replica(i).ID(), v)
	}
}
