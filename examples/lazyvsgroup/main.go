// Lazy vs group-safe: runs the same workload under 1-safe lazy replication
// and group-safe replication with a realistic (emulated) disk-force latency,
// and compares client-visible response times, guarantees and convergence —
// the qualitative content of Fig. 9 and Sect. 7, on the real stack rather
// than the simulator.
//
//	go run ./examples/lazyvsgroup
package main

import (
	"fmt"
	"log"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/stats"
	"groupsafe/internal/workload"
)

const transactions = 100

func main() {
	for _, level := range []core.SafetyLevel{core.Safety1Lazy, core.GroupSafe, core.Group1Safe} {
		runLevel(level)
	}
	fmt.Println("group-safe answers the client without forcing the log, which is why it beats")
	fmt.Println("lazy replication at moderate loads while also guaranteeing that the transaction")
	fmt.Println("is delivered at every available server (Table 1, Fig. 9 of the paper).")
}

func runLevel(level core.SafetyLevel) {
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas:      3,
		Items:         5000,
		Level:         level,
		DiskSyncDelay: 4 * time.Millisecond, // emulated log-force cost
		ExecTimeout:   20 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	gen := workload.NewGenerator(workload.Config{Items: 5000, MinOps: 5, MaxOps: 10, WriteProb: 0.5}, 7)
	sample := stats.NewSample()
	commits, aborts := 0, 0
	for i := 0; i < transactions; i++ {
		delegate := i % cluster.Size()
		start := time.Now()
		res, err := cluster.Execute(delegate, core.RequestFromWorkload(gen.Next(0, delegate)))
		if err != nil {
			log.Fatal(err)
		}
		sample.AddDuration(time.Since(start))
		if res.Committed() {
			commits++
		} else {
			aborts++
		}
	}
	consistent := cluster.WaitConsistent(5 * time.Second)
	fmt.Printf("%-14s mean=%6.2f ms  p95=%6.2f ms  commits=%d aborts=%d  delivered-everywhere=%-5v consistent=%v\n",
		level, sample.Mean(), sample.Percentile(95), commits, aborts,
		level.UsesGroupCommunication(), consistent)
}
