// Lazy vs group-safe, by technique: runs the same workload under the three
// pluggable replication techniques — lazy primary-copy (1-safe), the
// certification-based database state machine (group-safe), and active
// replication — with a realistic (emulated) disk-force latency, and compares
// client-visible response times, abort rates, guarantees and convergence.
// This is the qualitative content of Fig. 9 and Sect. 7 on the real stack
// rather than the simulator, driven through the public gsdb API.
//
//	go run ./examples/lazyvsgroup
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"groupsafe/gsdb"
	"groupsafe/gsdb/stats"
)

const transactions = 100

func main() {
	for _, tech := range gsdb.AllTechniques() {
		runTechnique(tech)
	}
	fmt.Println()
	fmt.Println("lazy primary-copy (1-safe) pays the disk force on the response path AND can")
	fmt.Println("lose acknowledged transactions when the primary crashes.  The group-safe")
	fmt.Println("techniques move the force off the response path — an atomic broadcast is")
	fmt.Println("cheaper than a disk force (Sect. 6) — while guaranteeing delivery at every")
	fmt.Println("available server (Table 1, Fig. 9); active replication additionally never")
	fmt.Println("aborts, paying with execution of every transaction on every replica.")
}

func runTechnique(tech gsdb.TechniqueID) {
	ctx := context.Background()
	level := gsdb.GroupSafe
	if tech == gsdb.TechLazyPrimary {
		level = gsdb.Safety1Lazy
	}
	client, err := gsdb.Open(ctx,
		gsdb.WithReplicas(3),
		gsdb.WithItems(5000),
		gsdb.WithSafetyLevel(level),
		gsdb.WithTechnique(tech),
		gsdb.WithDiskSyncDelay(4*time.Millisecond), // emulated log-force cost
		gsdb.WithExecTimeout(20*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	gen := gsdb.NewWorkload(gsdb.WorkloadConfig{Items: 5000, MinOps: 5, MaxOps: 10, WriteProb: 0.5}, 7)
	sample := stats.NewSample()
	commits, aborts := 0, 0
	for i := 0; i < transactions; i++ {
		delegate := i % client.Size()
		start := time.Now()
		res, err := client.Execute(ctx, gsdb.RequestFromWorkload(gen.Next(0, delegate)), gsdb.Via(delegate))
		if err != nil {
			log.Fatal(err)
		}
		sample.AddDuration(time.Since(start))
		if res.Committed() {
			commits++
		} else {
			aborts++
		}
	}
	waitCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	consistent := client.WaitConsistent(waitCtx) == nil
	cancel()
	fmt.Printf("%-14s (%-12s) mean=%6.2f ms  p95=%6.2f ms  commits=%d aborts=%d  delivered-everywhere=%-5v consistent=%v\n",
		tech, client.Level(), sample.Mean(), sample.Percentile(95), commits, aborts,
		client.Level().UsesGroupCommunication(), consistent)
}
