// Lazy vs group-safe, by technique: runs the same workload under the three
// pluggable replication techniques — lazy primary-copy (1-safe), the
// certification-based database state machine (group-safe), and active
// replication — with a realistic (emulated) disk-force latency, and compares
// client-visible response times, abort rates, guarantees and convergence.
// This is the qualitative content of Fig. 9 and Sect. 7 on the real stack
// rather than the simulator.
//
//	go run ./examples/lazyvsgroup
package main

import (
	"fmt"
	"log"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/stats"
	"groupsafe/internal/workload"
)

const transactions = 100

func main() {
	for _, tech := range core.AllTechniques() {
		runTechnique(tech)
	}
	fmt.Println()
	fmt.Println("lazy primary-copy (1-safe) pays the disk force on the response path AND can")
	fmt.Println("lose acknowledged transactions when the primary crashes.  The group-safe")
	fmt.Println("techniques move the force off the response path — an atomic broadcast is")
	fmt.Println("cheaper than a disk force (Sect. 6) — while guaranteeing delivery at every")
	fmt.Println("available server (Table 1, Fig. 9); active replication additionally never")
	fmt.Println("aborts, paying with execution of every transaction on every replica.")
}

func runTechnique(tech core.TechniqueID) {
	level := core.GroupSafe
	if tech == core.TechLazyPrimary {
		level = core.Safety1Lazy
	}
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas:      3,
		Items:         5000,
		Level:         level,
		Technique:     tech,
		DiskSyncDelay: 4 * time.Millisecond, // emulated log-force cost
		ExecTimeout:   20 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	gen := workload.NewGenerator(workload.Config{Items: 5000, MinOps: 5, MaxOps: 10, WriteProb: 0.5}, 7)
	sample := stats.NewSample()
	commits, aborts := 0, 0
	for i := 0; i < transactions; i++ {
		delegate := i % cluster.Size()
		start := time.Now()
		res, err := cluster.Execute(delegate, core.RequestFromWorkload(gen.Next(0, delegate)))
		if err != nil {
			log.Fatal(err)
		}
		sample.AddDuration(time.Since(start))
		if res.Committed() {
			commits++
		} else {
			aborts++
		}
	}
	consistent := cluster.WaitConsistent(5 * time.Second)
	fmt.Printf("%-14s (%-12s) mean=%6.2f ms  p95=%6.2f ms  commits=%d aborts=%d  delivered-everywhere=%-5v consistent=%v\n",
		tech, cluster.Level(), sample.Mean(), sample.Percentile(95), commits, aborts,
		cluster.Level().UsesGroupCommunication(), consistent)
}
