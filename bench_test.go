// Package groupsafe contains the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see EXPERIMENTS.md for the
// experiment index and DESIGN.md for the system inventory).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the reproduced data as b.ReportMetric custom metrics
// and (for the figures) relies on the cmd/gsdb-sim and cmd/gsdb-safety tools
// for the full human-readable tables.
package groupsafe

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"groupsafe/internal/apply"
	"groupsafe/internal/core"
	"groupsafe/internal/db"
	"groupsafe/internal/experiments"
	"groupsafe/internal/gcs"
	"groupsafe/internal/gcs/abcast"
	"groupsafe/internal/gcs/transport"
	"groupsafe/internal/simrep"
	"groupsafe/internal/storage"
	"groupsafe/internal/tuning"
	"groupsafe/internal/wal"
	"groupsafe/internal/workload"
)

// benchSimConfig keeps the simulated runs short enough for a benchmark
// iteration while preserving the Table 4 resource model.
func benchSimConfig() simrep.Config {
	cfg := simrep.DefaultConfig()
	cfg.Duration = 20 * time.Second
	return cfg
}

// benchmarkFigure9Point runs one (technique, load) point of Fig. 9 per
// iteration and reports the measured response time and abort rate.
func benchmarkFigure9Point(b *testing.B, level core.SafetyLevel, load float64) {
	b.Helper()
	cfg := benchSimConfig()
	var last simrep.Result
	for i := 0; i < b.N; i++ {
		r, err := simrep.Run(cfg, level, load)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.ResponseMeanMs, "response-ms")
	b.ReportMetric(last.ResponseP95Ms, "p95-ms")
	b.ReportMetric(100*last.AbortRate, "abort-%")
	b.ReportMetric(last.ThroughputTPS, "tps")
}

// BenchmarkFigure9 regenerates the three curves of Fig. 9 (response time vs
// load for group-safe, lazy/1-safe and group-1-safe replication) at the left
// edge, the middle and the right edge of the paper's load axis.
func BenchmarkFigure9(b *testing.B) {
	for _, level := range simrep.Figure9Levels() {
		for _, load := range []float64{20, 30, 40} {
			b.Run(level.String()+"/load-"+itoa(int(load)), func(b *testing.B) {
				benchmarkFigure9Point(b, level, load)
			})
		}
	}
}

// BenchmarkFigure9Extensions covers the levels the paper discusses but does
// not plot (0-safe, 2-safe, very-safe) as an ablation of the safety/latency
// trade-off.
func BenchmarkFigure9Extensions(b *testing.B) {
	for _, level := range []core.SafetyLevel{core.Safety0, core.Safety2, core.VerySafe} {
		b.Run(level.String(), func(b *testing.B) {
			benchmarkFigure9Point(b, level, 20)
		})
	}
}

// BenchmarkTable1SafetyMatrix regenerates the Table 1 classification.
func BenchmarkTable1SafetyMatrix(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunTable1(9)
	}
	b.ReportMetric(float64(len(rows)), "levels")
}

// BenchmarkTable2CrashTolerance runs the operational crash-tolerance matrix
// of Table 2 (delegate crash, minority crash, total failure for every level).
func BenchmarkTable2CrashTolerance(b *testing.B) {
	lost := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable2(3)
		if err != nil {
			b.Fatal(err)
		}
		lost = 0
		for _, r := range rows {
			if r.LostAfterDelegate {
				lost++
			}
			if r.LostAfterTotalFail {
				lost++
			}
		}
	}
	b.ReportMetric(float64(lost), "loss-scenarios")
}

// BenchmarkTable3LossConditions runs the group-safe versus group-1-safe loss
// matrix of Table 3.
func BenchmarkTable3LossConditions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5LostTransaction replays the unrecoverable-failure scenario
// of Fig. 5 (classical atomic broadcast loses an acknowledged transaction).
func BenchmarkFigure5LostTransaction(b *testing.B) {
	lost := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure5()
		if err != nil {
			b.Fatal(err)
		}
		if res.TransactionLost {
			lost = 1
		}
	}
	b.ReportMetric(lost, "transaction-lost")
}

// BenchmarkFigure7EndToEndRecovery replays the same schedule on end-to-end
// atomic broadcast (the transaction survives).
func BenchmarkFigure7EndToEndRecovery(b *testing.B) {
	lost := 0.0
	replayed := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure7()
		if err != nil {
			b.Fatal(err)
		}
		if res.TransactionLost {
			lost = 1
		}
		replayed = float64(res.ReplayedMessages)
	}
	b.ReportMetric(lost, "transaction-lost")
	b.ReportMetric(replayed, "replayed-msgs")
}

// BenchmarkFigure2vs8Breakdown measures the single-transaction response-time
// difference between the Fig. 2 (group-1-safe) and Fig. 8 (group-safe)
// protocol variants on the real stack.
func BenchmarkFigure2vs8Breakdown(b *testing.B) {
	var res experiments.TraceResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig2VsFig8Trace(8*time.Millisecond, 70*time.Microsecond, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Group1SafeResponse)/1e6, "group1safe-ms")
	b.ReportMetric(float64(res.GroupSafeResponse)/1e6, "groupsafe-ms")
	b.ReportMetric(float64(res.ResponseTimeSavings)/1e6, "savings-ms")
}

// BenchmarkDiskVsBroadcast quantifies the Sect. 6 claim that an atomic
// broadcast (~1 ms) is much cheaper than a disk force (~8 ms).
func BenchmarkDiskVsBroadcast(b *testing.B) {
	var res experiments.DiskVsBroadcastResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunDiskVsBroadcast(8*time.Millisecond, 70*time.Microsecond, 9)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.DiskForce)/1e6, "disk-ms")
	b.ReportMetric(float64(res.AtomicBroadcast)/1e6, "abcast-ms")
	b.ReportMetric(res.Ratio, "ratio")
}

// BenchmarkSection7Scaling evaluates the Sect. 7 argument (ACID-violation
// probability versus the number of servers for lazy and group-safe).
func BenchmarkSection7Scaling(b *testing.B) {
	var points []experiments.ScalingPoint
	for i := 0; i < b.N; i++ {
		points = experiments.RunSection7Scaling(experiments.ScalingConfig{Trials: 10000})
	}
	first, last := points[0], points[len(points)-1]
	b.ReportMetric(last.LazyViolationProb-first.LazyViolationProb, "lazy-growth")
	b.ReportMetric(first.GroupSafeViolateProb-last.GroupSafeViolateProb, "groupsafe-drop")
}

// --- substrate micro-benchmarks (ablation of the building blocks) ---

// BenchmarkAtomicBroadcast measures the end-to-end latency of one uniform
// atomic broadcast over a 9-member in-memory group.
func BenchmarkAtomicBroadcast(b *testing.B) {
	network := transport.NewMemNetwork()
	members := make([]string, 9)
	for i := range members {
		members[i] = "n" + itoa(i)
	}
	type node struct {
		router *gcs.Router
		bc     *abcast.Broadcaster
	}
	nodes := make([]*node, len(members))
	for i, m := range members {
		router := gcs.NewRouter(network.Endpoint(m))
		bc, err := abcast.New(abcast.Config{Self: m, Members: members}, router)
		if err != nil {
			b.Fatal(err)
		}
		router.Start()
		nodes[i] = &node{router: router, bc: bc}
	}
	defer func() {
		for _, n := range nodes {
			n.bc.Close()
			n.router.Stop()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nodes[0].bc.Broadcast([]byte("bench")); err != nil {
			b.Fatal(err)
		}
		<-nodes[0].bc.Deliveries()
	}
	b.StopTimer()
	for _, n := range nodes[1:] {
		for len(n.bc.Deliveries()) > 0 {
			<-n.bc.Deliveries()
		}
	}
}

// benchmarkAbcastBatching measures uniform atomic broadcast throughput under
// concurrent producers at one batch size, reporting the per-broadcast
// protocol message count (the O(3n) → O(3n/B) reduction) and the achieved
// mean batch size.
func benchmarkAbcastBatching(b *testing.B, batch int) {
	network := transport.NewMemNetwork()
	members := make([]string, 5)
	for i := range members {
		members[i] = "n" + itoa(i)
	}
	type node struct {
		router *gcs.Router
		bc     *abcast.Broadcaster
	}
	nodes := make([]*node, len(members))
	for i, m := range members {
		router := gcs.NewRouter(network.Endpoint(m))
		bc, err := abcast.New(abcast.Config{
			Self:     m,
			Members:  members,
			Batching: tuning.Batching{BatchSize: batch, BatchDelay: 200 * time.Microsecond},
		}, router)
		if err != nil {
			b.Fatal(err)
		}
		router.Start()
		nodes[i] = &node{router: router, bc: bc}
	}
	stop := make(chan struct{})
	defer func() {
		close(stop)
		for _, n := range nodes {
			n.bc.Close()
			n.router.Stop()
		}
	}()

	// Node 0 counts deliveries; the other members drain in the background.
	// The producers run under a bounded in-flight window (released as node 0
	// delivers): the in-memory transport drops on inbox overflow and the
	// broadcast has no retransmission, so clients must apply backpressure —
	// exactly like the replica layer, where every client waits for its
	// transaction outcome.
	const window = 256
	inflight := make(chan struct{}, window)
	delivered := make(chan struct{})
	go func() {
		for i := 0; i < b.N; i++ {
			<-nodes[0].bc.Deliveries()
			<-inflight
		}
		close(delivered)
	}()
	for _, n := range nodes[1:] {
		n := n
		go func() {
			for {
				select {
				case <-n.bc.Deliveries():
				case <-stop:
					return
				}
			}
		}()
	}

	b.ReportAllocs()
	b.ResetTimer()
	var next int64
	const producers = 32
	errCh := make(chan error, producers)
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		sender := nodes[g%len(nodes)].bc
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if atomic.AddInt64(&next, 1) > int64(b.N) {
					return
				}
				inflight <- struct{}{}
				if _, err := sender.Broadcast([]byte("bench")); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case <-delivered:
	case err := <-errCh:
		// A failed producer means the delivery count can never be reached;
		// fail instead of waiting forever.
		b.Fatal(err)
	}
	b.StopTimer()

	var sent, bcasts, batches uint64
	for _, n := range nodes {
		st := n.bc.Stats()
		sent += st.MsgsSent
		bcasts += st.Broadcast
		batches += st.DataBatches
	}
	b.ReportMetric(float64(sent)/float64(b.N), "msgs/txn")
	if batches > 0 {
		b.ReportMetric(float64(bcasts)/float64(batches), "batch-size")
	}
}

// BenchmarkAbcastBatching compares unbatched and batched atomic broadcast
// under concurrent load (the tentpole claim: batching cuts the message count
// from O(3n) per transaction toward O(3n/B) and lifts throughput).
func BenchmarkAbcastBatching(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run("batch-"+itoa(batch), func(b *testing.B) {
			benchmarkAbcastBatching(b, batch)
		})
	}
}

// benchmarkLatencySweep runs one (config, load) point of the latency-versus-
// throughput sweep: each operation broadcasts and waits for its own message's
// delivery, so per-op latency is the real broadcast-to-delivery time under
// that offered load.  The load shape comes from the shared harness
// (bench_load_test.go): closed-loop client counts or an open-loop Poisson
// arrival rate.  Reported metrics: p50/p99 latency, protocol messages per
// broadcast, and the sequencer's inbound messages per broadcast (the
// ACK-coalescing win).
func benchmarkLatencySweep(b *testing.B, mode loadMode, batching tuning.Batching, seqCfg tuning.Sequencer) {
	network := transport.NewMemNetwork()
	members := make([]string, 5)
	for i := range members {
		members[i] = "n" + itoa(i)
	}
	type node struct {
		router *gcs.Router
		bc     *abcast.Broadcaster
	}
	nodes := make([]*node, len(members))
	for i, m := range members {
		router := gcs.NewRouter(network.Endpoint(m))
		bc, err := abcast.New(abcast.Config{Self: m, Members: members, Batching: batching, Sequencer: seqCfg}, router)
		if err != nil {
			b.Fatal(err)
		}
		router.Start()
		nodes[i] = &node{router: router, bc: bc}
	}
	stop := make(chan struct{})
	defer func() {
		close(stop)
		for _, n := range nodes {
			n.bc.Close()
			n.router.Stop()
		}
	}()

	// Node 0 dispatches deliveries to per-message waiters; the other members
	// drain in the background.  A delivery can land before its producer has
	// registered (the id is only known once Broadcast returns), so those are
	// parked in `delivered` for the producer to claim.
	var mu sync.Mutex
	waiters := make(map[string]chan struct{})
	delivered := make(map[string]bool)
	go func() {
		for {
			select {
			case d := <-nodes[0].bc.Deliveries():
				mu.Lock()
				if ch, ok := waiters[d.MsgID]; ok {
					delete(waiters, d.MsgID)
					close(ch)
				} else {
					delivered[d.MsgID] = true
				}
				mu.Unlock()
			case <-stop:
				return
			}
		}
	}()
	for _, n := range nodes[1:] {
		n := n
		go func() {
			for {
				select {
				case <-n.bc.Deliveries():
				case <-stop:
					return
				}
			}
		}()
	}

	op := func(g int) error {
		sender := nodes[g%len(nodes)].bc
		done := make(chan struct{})
		id, err := sender.Broadcast([]byte("sweep"))
		if err != nil {
			return err
		}
		mu.Lock()
		if delivered[id] {
			delete(delivered, id)
			mu.Unlock()
			return nil
		}
		waiters[id] = done
		mu.Unlock()
		<-done
		return nil
	}

	b.ResetTimer()
	all := mode.run(b, op)
	b.StopTimer()
	reportLatencyDistribution(b, all)

	var sent uint64
	for _, n := range nodes {
		sent += n.bc.Stats().MsgsSent
	}
	b.ReportMetric(float64(sent)/float64(b.N), "msgs/txn")
	// Every protocol message fans out to all members, so the sequencer's
	// inbound count is the total sent divided by the group size.
	b.ReportMetric(float64(sent)/float64(len(members))/float64(b.N), "seq-in/txn")
}

// BenchmarkLatencyThroughputSweep is the adaptive-batching acceptance sweep:
// load points (closed-loop producer counts) crossed with batching configs.
// The claim under test: adaptive stays within a few percent of the best
// fixed config at EVERY load point — idle-flush latency at low load, fixed-32
// batching efficiency at high load — where each fixed config is only good at
// one end.  CI uploads the output as the bench-sweep artifact; compare the
// p50/p99 columns per load point.
func BenchmarkLatencyThroughputSweep(b *testing.B) {
	configs := []struct {
		name     string
		batching tuning.Batching
		seq      tuning.Sequencer
	}{
		{"fixed-1", tuning.Batching{BatchSize: 1}, tuning.Sequencer{}},
		{"fixed-8", tuning.Batching{BatchSize: 8, BatchDelay: 200 * time.Microsecond}, tuning.Sequencer{}},
		{"fixed-32", tuning.Batching{BatchSize: 32, BatchDelay: 200 * time.Microsecond}, tuning.Sequencer{}},
		{"adaptive", tuning.Batching{BatchSize: 32, Mode: tuning.Adaptive}, tuning.Sequencer{Pipelined: true}},
	}
	for _, cfg := range configs {
		for _, producers := range []int{1, 4, 32} {
			cfg, producers := cfg, producers
			b.Run(cfg.name+"/load-"+itoa(producers), func(b *testing.B) {
				benchmarkLatencySweep(b, closedLoop(producers), cfg.batching, cfg.seq)
			})
		}
	}
}

// BenchmarkLatencyThroughputSweepOpenLoop is the open-loop companion of the
// sweep above: Poisson arrivals at fixed offered rates instead of closed-loop
// clients, so a config that falls behind shows the backlog as p99 latency
// rather than silently slowing the offered load (coordinated omission).  Same
// harness, same metrics — compare the p99 column between the fixed and
// adaptive configs at the high rate.
func BenchmarkLatencyThroughputSweepOpenLoop(b *testing.B) {
	configs := []struct {
		name     string
		batching tuning.Batching
		seq      tuning.Sequencer
	}{
		{"fixed-1", tuning.Batching{BatchSize: 1}, tuning.Sequencer{}},
		{"adaptive", tuning.Batching{BatchSize: 32, Mode: tuning.Adaptive}, tuning.Sequencer{Pipelined: true}},
	}
	for _, cfg := range configs {
		for _, mean := range []time.Duration{500 * time.Microsecond, 100 * time.Microsecond} {
			cfg, mean := cfg, mean
			b.Run(cfg.name+"/"+openLoop(mean).name(), func(b *testing.B) {
				benchmarkLatencySweep(b, openLoop(mean), cfg.batching, cfg.seq)
			})
		}
	}
}

// benchmarkBatchedReplication measures full-stack replicated transaction
// throughput (optimistic execution, batched atomic broadcast, certification,
// batched apply with one force per batch, conflict-scheduled parallel
// install when applyWorkers > 1) with concurrent clients.
func benchmarkBatchedReplication(b *testing.B, level core.SafetyLevel, batch, applyWorkers int) {
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas:      3,
		Items:         8192,
		Level:         level,
		DiskSyncDelay: 100 * time.Microsecond,
		Pipeline:      tuning.Pipe(batch, 200*time.Microsecond, applyWorkers),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()

	var clientSeq uint64
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		seed := atomic.AddUint64(&clientSeq, 1)
		delegate := int(seed) % cluster.Size()
		gen := workload.NewGenerator(workload.Config{Items: 8192, MinOps: 2, MaxOps: 4, WriteProb: 0.5}, int64(seed))
		for pb.Next() {
			if _, err := cluster.Execute(context.Background(), delegate, core.RequestFromWorkload(gen.Next(0, delegate))); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()

	var sent uint64
	for _, r := range cluster.Replicas() {
		sent += r.BroadcastStats().MsgsSent
	}
	b.ReportMetric(float64(sent)/float64(b.N), "msgs/txn")
}

// BenchmarkBatchedReplication compares batched and unbatched pipelines at
// every group-communication safety level; for the forcing levels the batched
// apply loop additionally amortises the commit force.  The batch-8 point is
// additionally run with a 4-worker parallel apply stage (the workers-4
// variants need >= 4 cores to show their speed-up; on fewer cores they bound
// the scheduler overhead instead).
func BenchmarkBatchedReplication(b *testing.B) {
	for _, level := range []core.SafetyLevel{core.GroupSafe, core.Group1Safe, core.Safety2} {
		for _, batch := range []int{1, 8} {
			b.Run(level.String()+"/batch-"+itoa(batch), func(b *testing.B) {
				benchmarkBatchedReplication(b, level, batch, 1)
			})
		}
		b.Run(level.String()+"/batch-8/workers-4", func(b *testing.B) {
			benchmarkBatchedReplication(b, level, 8, 4)
		})
	}
}

// benchmarkParallelApply measures the apply stage in isolation: batches of
// pre-staged, low-conflict write sets installed through the conflict-graph
// scheduler at a given worker count.  It reports allocations to pin the
// zero-allocation claim of the install path (the scheduler reuses its graph
// buffers; the only steady-state allocations are the per-batch worker
// goroutines).
func benchmarkParallelApply(b *testing.B, workers int) {
	const (
		items     = 10000 // Table 4 database size
		batchTxns = 256   // maxApplyBatch
		writesPer = 16
	)
	store := storage.NewStore(items)
	sched := apply.New(workers)
	// Pre-generate a handful of low-conflict batches (distinct pseudo-random
	// items per write set), reused round-robin.
	rng := rand.New(rand.NewSource(1))
	batches := make([][][]storage.Write, 8)
	for bi := range batches {
		tasks := make([][]storage.Write, batchTxns)
		for ti := range tasks {
			ws := make([]storage.Write, 0, writesPer)
			used := make(map[int]bool, writesPer)
			for len(ws) < writesPer {
				item := rng.Intn(items)
				if used[item] {
					continue
				}
				used[item] = true
				ws = append(ws, storage.Write{Item: item, Value: int64(ti)})
			}
			sort.Slice(ws, func(i, j int) bool { return ws[i].Item < ws[j].Item })
			tasks[ti] = ws
		}
		batches[bi] = tasks
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tasks := batches[i%len(batches)]
		if err := sched.Run(tasks, func(t int) error {
			return store.ApplyWrites(tasks[t])
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(batchTxns), "txns/batch")
}

// BenchmarkParallelApply compares the conflict-scheduled apply stage at
// worker counts 1, 4 and 16 on one drained batch of low-conflict write sets
// (the intra-batch parallelism the total order permits).
func BenchmarkParallelApply(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			benchmarkParallelApply(b, workers)
		})
	}
}

// BenchmarkLocalCommitSync measures a forced local commit (the cost the
// group-safe level removes from the response path).
func BenchmarkLocalCommitSync(b *testing.B) {
	d, err := db.Open(db.Config{Items: 1024, Policy: db.SyncOnCommit})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn, err := d.Begin(0)
		if err != nil {
			b.Fatal(err)
		}
		if err := txn.Write(i%1024, int64(i)); err != nil {
			b.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyWriteSet measures the remote apply path (certified write-set
// installation with exactly-once bookkeeping).
func BenchmarkApplyWriteSet(b *testing.B) {
	d, err := db.Open(db.Config{Items: 4096, Policy: db.AsyncCommit})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	ws := storage.WriteSet{1: 10, 2: 20, 3: 30, 4: 40}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ApplyWriteSet(uint64(i+1), ws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend measures raw write-ahead-log append throughput.
func BenchmarkWALAppend(b *testing.B) {
	log := wal.NewMemLog()
	rec := wal.Record{Kind: wal.KindUpdate, TxnID: 1, Item: 2, Value: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := log.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicatedTransaction measures one full group-safe transaction on
// the real three-replica stack (optimistic execution, atomic broadcast,
// certification, apply).
func BenchmarkReplicatedTransaction(b *testing.B) {
	cluster, err := core.NewCluster(core.ClusterConfig{Replicas: 3, Items: 4096, Level: core.GroupSafe})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	gen := workload.NewGenerator(workload.Config{Items: 4096, MinOps: 5, MaxOps: 10, WriteProb: 0.5}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Execute(context.Background(), i%3, core.RequestFromWorkload(gen.Next(0, i%3))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGenerator measures Table 4 transaction generation.
func BenchmarkWorkloadGenerator(b *testing.B) {
	gen := workload.NewGenerator(workload.DefaultConfig(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.Next(0, i%9)
	}
}

// itoa avoids importing strconv just for benchmark names.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

// benchmarkQueryVsUpdate measures one transaction class in isolation on the
// full three-replica stack: "query" drives read-only snapshot transactions
// (broadcast-free local path), "update" drives single-write transactions
// through the total order.  The ns/op gap is the read path's win.
func benchmarkQueryVsUpdate(b *testing.B, readOnly bool) {
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas:      3,
		Items:         8192,
		Level:         core.GroupSafe,
		DiskSyncDelay: 100 * time.Microsecond,
		Pipeline:      tuning.Pipe(8, 200*time.Microsecond, 1),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	// Warm the stores so queries read real data.
	for i := 0; i < 64; i++ {
		if _, err := cluster.Execute(context.Background(), i%3, core.Request{
			Ops: []workload.Op{{Item: i, Write: true, Value: int64(i)}},
		}); err != nil {
			b.Fatal(err)
		}
	}

	sentBefore := uint64(0)
	for _, r := range cluster.Replicas() {
		sentBefore += r.BroadcastStats().MsgsSent
	}

	var clientSeq uint64
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		seed := atomic.AddUint64(&clientSeq, 1)
		delegate := int(seed) % cluster.Size()
		i := 0
		for pb.Next() {
			i++
			var req core.Request
			if readOnly {
				req = core.Request{ReadOnly: true, Ops: []workload.Op{
					{Item: (i * 31) % 8192}, {Item: (i*31 + 1) % 8192}, {Item: (i*31 + 2) % 8192},
				}}
			} else {
				req = core.Request{Ops: []workload.Op{
					{Item: (i * 31) % 8192, Write: true, Value: int64(i)},
				}}
			}
			if _, err := cluster.Execute(context.Background(), delegate, req); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()

	var sent uint64
	for _, r := range cluster.Replicas() {
		sent += r.BroadcastStats().MsgsSent
	}
	b.ReportMetric(float64(sent-sentBefore)/float64(b.N), "msgs/txn")
	b.ReportMetric(float64(cluster.TotalStats().Queries), "queries")
}

// BenchmarkQueryVsUpdate compares the broadcast-free snapshot read path with
// the totally-ordered update path on the same cluster configuration.
func BenchmarkQueryVsUpdate(b *testing.B) {
	b.Run("query", func(b *testing.B) { benchmarkQueryVsUpdate(b, true) })
	b.Run("update", func(b *testing.B) { benchmarkQueryVsUpdate(b, false) })
}

// benchmarkReadMix drives the full stack with the workload generator's
// read-mix knob at a given read fraction and reports wire cost per
// transaction plus the achieved class split.
func benchmarkReadMix(b *testing.B, readFraction float64) {
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas:      3,
		Items:         8192,
		Level:         core.GroupSafe,
		DiskSyncDelay: 100 * time.Microsecond,
		Pipeline:      tuning.Pipe(8, 200*time.Microsecond, 1),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()

	var clientSeq uint64
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		seed := atomic.AddUint64(&clientSeq, 1)
		delegate := int(seed) % cluster.Size()
		gen := workload.NewGenerator(workload.Config{
			Items: 8192, MinOps: 2, MaxOps: 4, WriteProb: 0.5,
			ReadFraction: readFraction, QueryMinOps: 2, QueryMaxOps: 4,
		}, int64(seed))
		for pb.Next() {
			if _, err := cluster.Execute(context.Background(), delegate, core.RequestFromWorkload(gen.Next(0, delegate))); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()

	var sent uint64
	for _, r := range cluster.Replicas() {
		sent += r.BroadcastStats().MsgsSent
	}
	total := cluster.TotalStats()
	b.ReportMetric(float64(sent)/float64(b.N), "msgs/txn")
	if total.Executed > 0 {
		b.ReportMetric(100*float64(total.Queries)/float64(total.Executed), "query-%")
	}
}

// BenchmarkReadMix sweeps the query/update mix from the paper's write-heavy
// Table 4 character to a read-heavy 90/10 web mix: wire cost per transaction
// falls with the read fraction because queries never touch the broadcast.
func BenchmarkReadMix(b *testing.B) {
	b.Run("reads-0", func(b *testing.B) { benchmarkReadMix(b, 0) })
	b.Run("reads-50", func(b *testing.B) { benchmarkReadMix(b, 0.5) })
	b.Run("reads-90", func(b *testing.B) { benchmarkReadMix(b, 0.9) })
}

// benchmarkReadScalingReal drives a pure-query closed loop against the real
// stack at a given cluster size: every client reads three items from its
// delegate's local MVCC snapshot, clients spread round-robin over the
// replicas, and the reported reads/sec is the aggregate snapshot-read rate.
// Queries never touch the broadcast, so each replica added is an independent
// read server and throughput scales with the replica count — on a host with
// enough cores to run the replicas concurrently.  (On a single-core host the
// replicas time-share one CPU and the wall-clock ratio flattens toward 1; the
// companion model variant below shows the scaling in virtual time on any
// host, and CI runs this one on the multicore runner.)
func benchmarkReadScalingReal(b *testing.B, replicas int) {
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas: replicas,
		Items:    8192,
		Level:    core.GroupSafe,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	// Warm the stores so queries read installed data, and give every replica
	// time to apply the last write before the clock starts.
	var last core.Result
	for i := 0; i < 64; i++ {
		res, err := cluster.Execute(context.Background(), i%replicas, core.Request{
			Ops: []workload.Op{{Item: i, Write: true, Value: int64(i)}},
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for i := 0; i < replicas; i++ {
		for deadline := time.Now().Add(2 * time.Second); cluster.Replica(i).LastAppliedSeq() < last.Freshness; {
			if time.Now().After(deadline) {
				b.Fatalf("replica %d never warmed up", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	var clientSeq uint64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		seed := atomic.AddUint64(&clientSeq, 1)
		delegate := int(seed) % replicas
		i := 0
		for pb.Next() {
			i++
			req := core.Request{ReadOnly: true, Ops: []workload.Op{
				{Item: (i * 31) % 8192}, {Item: (i*31 + 1) % 8192}, {Item: (i*31 + 2) % 8192},
			}}
			if _, err := cluster.Execute(context.Background(), delegate, req); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/sec")
}

// benchmarkReadScalingModel runs the paper's simulator at a saturating
// offered load with a 95% read mix and reports the virtual-time throughput:
// the model charges every query to its delegate's own CPUs and disks and
// nothing else, so completed work per simulated second grows with the server
// count no matter how many host cores execute the simulation.  This is the
// portable form of the read scale-out claim (the simulator floor is 3
// servers, so the sweep runs 3/6/12 — the ratio per doubling is the figure
// of merit).
func benchmarkReadScalingModel(b *testing.B, servers int) {
	cfg := benchSimConfig()
	cfg.Servers = servers
	cfg.ClientsPerServer = 8
	cfg.ReadFraction = 0.95
	cfg.QueryMinOps = 2
	cfg.QueryMaxOps = 4
	cfg.MinOps = 2
	cfg.MaxOps = 4
	cfg.Duration = 5 * time.Second
	var last simrep.Result
	for i := 0; i < b.N; i++ {
		// Offered load above every sweep point's capacity: the measured
		// throughput is the cluster's saturated completion rate, not the
		// arrival rate.
		r, err := simrep.Run(cfg, core.GroupSafe, 2000)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.ThroughputTPS, "tps")
	b.ReportMetric(last.QueryMeanMs, "query-ms")
}

// BenchmarkReadScaling is the read scale-out acceptance benchmark: aggregate
// read throughput versus replica count.  The real/ variants measure the
// actual stack (wall-clock, needs cores >= replicas to show the ratio); the
// model/ variants measure the Table 4 simulator in virtual time (host-core
// independent).  CI's bench-read-scaling job uploads the output; BENCH.md
// keeps the reference table.
func BenchmarkReadScaling(b *testing.B) {
	for _, replicas := range []int{1, 2, 4} {
		b.Run("real/replicas-"+itoa(replicas), func(b *testing.B) {
			benchmarkReadScalingReal(b, replicas)
		})
	}
	for _, servers := range []int{3, 6, 12} {
		b.Run("model/servers-"+itoa(servers), func(b *testing.B) {
			benchmarkReadScalingModel(b, servers)
		})
	}
}
