package groupsafe

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/partition"
	"groupsafe/internal/tuning"
	"groupsafe/internal/workload"
)

// This file holds the shared load harness of the macro benchmarks: one
// driver that offers load either closed-loop (a fixed number of clients, each
// waiting for its own completion — throughput adapts to latency) or open-loop
// (Poisson arrivals at a fixed offered rate — latency absorbs the backlog,
// the honest model of independent clients who do not coordinate their
// submissions).  Both the abcast latency/throughput sweep (bench_test.go) and
// the partition scaling sweep below drive their operations through it.

// loadMode selects how the harness offers load.  Exactly one field is set:
// producers > 0 runs that many closed-loop clients; arrival > 0 dispatches
// open-loop with exponentially distributed interarrival times of that mean
// (a Poisson process, seeded deterministically).
type loadMode struct {
	producers int
	arrival   time.Duration
}

func closedLoop(producers int) loadMode    { return loadMode{producers: producers} }
func openLoop(mean time.Duration) loadMode { return loadMode{arrival: mean} }

func (m loadMode) name() string {
	if m.producers > 0 {
		return "load-" + itoa(m.producers)
	}
	return "rate-" + itoa(int(time.Second/m.arrival)) + "ps"
}

// run drives exactly b.N invocations of op and returns their latencies.  op
// receives a driver index: the producer id under closed loop (stable per
// client, so ops can partition key ranges), the operation index under open
// loop.  The caller wraps the call in b.ResetTimer/b.StopTimer.
func (m loadMode) run(b *testing.B, op func(g int) error) []time.Duration {
	b.Helper()
	if m.producers > 0 {
		return runClosedLoop(b, m.producers, op)
	}
	return runOpenLoop(b, m.arrival, op)
}

func runClosedLoop(b *testing.B, producers int, op func(g int) error) []time.Duration {
	b.Helper()
	var next int64
	latencies := make([][]time.Duration, producers)
	errCh := make(chan error, producers)
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if atomic.AddInt64(&next, 1) > int64(b.N) {
					return
				}
				start := time.Now()
				if err := op(g); err != nil {
					errCh <- err
					return
				}
				latencies[g] = append(latencies[g], time.Since(start))
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		b.Fatal(err)
	default:
	}
	all := make([]time.Duration, 0, b.N)
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	return all
}

// runOpenLoop dispatches b.N operations on a Poisson arrival process: the
// dispatcher never waits for a completion before starting the next operation,
// so when the system falls behind the offered rate the backlog shows up as
// latency — the coordinated-omission-free measurement a closed loop cannot
// give.
func runOpenLoop(b *testing.B, mean time.Duration, op func(g int) error) []time.Duration {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	var mu sync.Mutex
	latencies := make([]time.Duration, 0, b.N)
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	next := time.Now()
	for i := 0; i < b.N; i++ {
		next = next.Add(time.Duration(rng.ExpFloat64() * float64(mean)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			if err := op(i); err != nil {
				select {
				case errCh <- err:
				default:
				}
				return
			}
			d := time.Since(start)
			mu.Lock()
			latencies = append(latencies, d)
			mu.Unlock()
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		b.Fatal(err)
	default:
	}
	return latencies
}

// reportLatencyDistribution reports the p50/p99 of a latency sample in
// microseconds.
func reportLatencyDistribution(b *testing.B, all []time.Duration) {
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Microsecond)
	}
	b.ReportMetric(pct(0.50), "p50-µs")
	b.ReportMetric(pct(0.99), "p99-µs")
}

// benchmarkPartitionScaling measures ordered-update throughput against the
// partition count on a disjoint-keyspace update workload: every client writes
// single items from its own private slice of the keyspace, so there are no
// certification conflicts and no cross-partition transactions — exactly the
// workload whose throughput a partitioned deployment must multiply, because
// each partition orders its updates through its own sequencer instead of one
// global total order.
//
// The ordering site is given an emulated per-payload service cost
// (tuning.Sequencer.OrderDelay), the same way the simulated disks are given
// a force cost (DiskSyncDelay): without it the in-memory sequencer is so
// cheap that a single total order never saturates on a small host and the
// sweep would measure only scheduler overhead.  With it, each partition's
// ordering throughput is capped at 1/OrderDelay and the sweep measures what
// the paper's argument is about — splitting one serial total order into P
// independent ones.
func benchmarkPartitionScaling(b *testing.B, parts int) {
	const items = 8192
	pipe := tuning.Pipe(8, 200*time.Microsecond, 1)
	pipe.OrderDelay = 150 * time.Microsecond
	cluster, err := partition.New(core.ClusterConfig{
		Replicas:      3,
		Items:         items,
		Level:         core.GroupSafe,
		Technique:     core.TechCertification,
		Partitions:    parts,
		DiskSyncDelay: 100 * time.Microsecond,
		Pipeline:      pipe,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()

	const producers = 32
	slice := items / producers
	var seqs [producers]int64
	op := func(g int) error {
		i := int(atomic.AddInt64(&seqs[g], 1))
		item := g*slice + i%slice
		_, err := cluster.Execute(context.Background(), g%cluster.Size(), core.Request{
			Ops: []workload.Op{{Item: item, Write: true, Value: int64(i)}},
		})
		return err
	}

	b.ResetTimer()
	lats := closedLoop(producers).run(b, op)
	elapsed := b.Elapsed()
	b.StopTimer()
	reportLatencyDistribution(b, lats)
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "tps")
	}
}

// BenchmarkPartitionScaling is the partitioned-keyspace acceptance sweep:
// partitions ∈ {1, 2, 4} under the same update-heavy disjoint workload.  The
// claim under test: ordered-update throughput at 4 partitions is at least 2×
// the 1-partition baseline, because the single sequencer bottleneck is split
// into 4 independent total orders.  CI publishes the output as part of the
// bench artifact; compare the tps column.
func BenchmarkPartitionScaling(b *testing.B) {
	for _, parts := range []int{1, 2, 4} {
		parts := parts
		b.Run("partitions-"+itoa(parts), func(b *testing.B) {
			benchmarkPartitionScaling(b, parts)
		})
	}
}
