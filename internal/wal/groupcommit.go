package wal

import "sync"

// GroupCommitter batches concurrent durability requests into a smaller number
// of Sync calls (group commit).  Group-safe replication moves the disk force
// out of the transaction response path entirely; group commit is the
// complementary optimisation for the levels that keep it (1-safe,
// group-1-safe, 2-safe): many transactions share one force.
type GroupCommitter struct {
	log Log

	mu        sync.Mutex
	cond      *sync.Cond
	syncedLSN LSN
	syncing   bool
	err       error
}

// NewGroupCommitter wraps the given log.
func NewGroupCommitter(log Log) *GroupCommitter {
	g := &GroupCommitter{log: log}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// WaitDurable blocks until every record with an LSN <= lsn is durable.  It
// triggers at most one Sync at a time; callers arriving while a Sync is in
// flight piggyback on the next one.
func (g *GroupCommitter) WaitDurable(lsn LSN) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.syncedLSN < lsn {
		if g.err != nil {
			return g.err
		}
		if g.syncing {
			g.cond.Wait()
			continue
		}
		// Become the leader of this group commit.
		g.syncing = true
		target := g.log.LastLSN()
		g.mu.Unlock()
		err := g.log.Sync()
		g.mu.Lock()
		g.syncing = false
		if err != nil {
			g.err = err
			g.cond.Broadcast()
			return err
		}
		if target > g.syncedLSN {
			g.syncedLSN = target
		}
		g.cond.Broadcast()
	}
	return g.err
}

// SyncedLSN returns the highest LSN known to be durable.
func (g *GroupCommitter) SyncedLSN() LSN {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.syncedLSN
}

// Reset clears the committer state after a simulated crash and recovery of
// the underlying log.
func (g *GroupCommitter) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.syncedLSN = 0
	g.err = nil
	g.syncing = false
}
