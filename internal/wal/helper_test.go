package wal

import "os"

// osOpenAppend opens path in append mode; kept in a separate file so the main
// test file stays free of direct os plumbing.
func osOpenAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}
