package wal

import (
	"sync"
	"time"
)

// MemLog is an in-memory stable-storage simulation.  Records become durable
// when Sync is called; Crash discards everything appended since the last
// Sync, modelling the loss of volatile buffers on a server crash.  A
// configurable SyncDelay models the latency of forcing the log to disk
// (the paper's setting: a disk write takes 4–12 ms, far more than the 0.07 ms
// network message).
type MemLog struct {
	mu        sync.Mutex
	records   []Record
	synced    int // number of durable records
	nextLSN   LSN
	closed    bool
	syncDelay time.Duration

	syncs   uint64
	appends uint64
}

// NewMemLog creates an empty in-memory log with no artificial sync latency.
func NewMemLog() *MemLog { return &MemLog{nextLSN: 1} }

// NewMemLogWithDelay creates an in-memory log whose Sync blocks for d,
// emulating the cost of a disk force.
func NewMemLogWithDelay(d time.Duration) *MemLog {
	return &MemLog{nextLSN: 1, syncDelay: d}
}

// Append implements Log.
func (l *MemLog) Append(r Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	r.LSN = l.nextLSN
	l.nextLSN++
	// Copy the data slice so later caller mutations cannot corrupt the log.
	if r.Data != nil {
		data := make([]byte, len(r.Data))
		copy(data, r.Data)
		r.Data = data
	}
	l.records = append(l.records, r)
	l.appends++
	return r.LSN, nil
}

// Sync implements Log: all appended records become durable.
func (l *MemLog) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	delay := l.syncDelay
	l.synced = len(l.records)
	l.syncs++
	l.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

// Replay implements Log: it iterates over durable (synced) records only.
func (l *MemLog) Replay(fn func(Record) error) error {
	l.mu.Lock()
	durable := make([]Record, l.synced)
	copy(durable, l.records[:l.synced])
	l.mu.Unlock()
	for _, r := range durable {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// LastLSN implements Log.
func (l *MemLog) LastLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Close implements Log.
func (l *MemLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// Crash simulates a server crash: every record appended after the last Sync
// is lost.  The log can keep being used afterwards (recovery).
func (l *MemLog) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = l.records[:l.synced]
	if len(l.records) == 0 {
		l.nextLSN = 1
	} else {
		l.nextLSN = l.records[len(l.records)-1].LSN + 1
	}
	l.closed = false
}

// Len returns the total number of records currently in the log (durable and
// volatile).
func (l *MemLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// DurableLen returns the number of durable records.
func (l *MemLog) DurableLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// DurableLSN returns the LSN of the last durable (synced) record, zero when
// nothing is durable yet.  It is what a crash at this instant would preserve.
func (l *MemLog) DurableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.synced == 0 {
		return 0
	}
	return l.records[l.synced-1].LSN
}

// Syncs returns the number of Sync calls, used by the group-commit tests.
func (l *MemLog) Syncs() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// SetSyncDelay changes the simulated disk-force latency.
func (l *MemLog) SetSyncDelay(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncDelay = d
}
