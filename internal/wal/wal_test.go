package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindBegin: "begin", KindUpdate: "update", KindCommit: "commit",
		KindAbort: "abort", KindMessage: "message", KindAck: "ack",
		KindCheckpoint: "checkpoint", Kind(200): "kind(200)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func replayAll(t *testing.T, l Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(r Record) error { out = append(out, r); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestMemLogAppendSyncReplay(t *testing.T) {
	l := NewMemLog()
	lsn1, err := l.Append(Record{Kind: KindBegin, TxnID: 1})
	if err != nil || lsn1 != 1 {
		t.Fatalf("append = %d, %v", lsn1, err)
	}
	lsn2, _ := l.Append(Record{Kind: KindCommit, TxnID: 1})
	if lsn2 != 2 {
		t.Fatalf("lsn2 = %d", lsn2)
	}
	// Nothing durable before Sync.
	if got := replayAll(t, l); len(got) != 0 {
		t.Fatalf("replay before sync returned %d records", len(got))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l)
	if len(got) != 2 || got[0].Kind != KindBegin || got[1].Kind != KindCommit {
		t.Fatalf("replay = %+v", got)
	}
	if l.LastLSN() != 2 || l.Len() != 2 || l.DurableLen() != 2 {
		t.Fatalf("counters wrong: last=%d len=%d durable=%d", l.LastLSN(), l.Len(), l.DurableLen())
	}
}

func TestMemLogCrashDropsUnsynced(t *testing.T) {
	l := NewMemLog()
	l.Append(Record{Kind: KindCommit, TxnID: 1})
	l.Sync()
	l.Append(Record{Kind: KindCommit, TxnID: 2})
	l.Append(Record{Kind: KindCommit, TxnID: 3})
	l.Crash()
	got := replayAll(t, l)
	if len(got) != 1 || got[0].TxnID != 1 {
		t.Fatalf("after crash, replay = %+v, want only txn 1", got)
	}
	// LSNs continue after the surviving prefix.
	lsn, _ := l.Append(Record{Kind: KindCommit, TxnID: 4})
	if lsn != 2 {
		t.Fatalf("post-crash LSN = %d, want 2", lsn)
	}
}

func TestMemLogCrashOnEmpty(t *testing.T) {
	l := NewMemLog()
	l.Append(Record{Kind: KindCommit, TxnID: 1})
	l.Crash()
	if l.Len() != 0 {
		t.Fatal("crash with no sync should lose everything")
	}
	lsn, _ := l.Append(Record{Kind: KindCommit, TxnID: 2})
	if lsn != 1 {
		t.Fatalf("LSN restarts at %d, want 1", lsn)
	}
}

func TestMemLogClosed(t *testing.T) {
	l := NewMemLog()
	l.Close()
	if _, err := l.Append(Record{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed log: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync on closed log: %v", err)
	}
}

func TestMemLogDataIsCopied(t *testing.T) {
	l := NewMemLog()
	data := []byte{1, 2, 3}
	l.Append(Record{Kind: KindMessage, Data: data})
	data[0] = 99
	l.Sync()
	got := replayAll(t, l)
	if got[0].Data[0] != 1 {
		t.Fatal("log did not copy record data")
	}
}

func TestMemLogSyncDelay(t *testing.T) {
	l := NewMemLogWithDelay(20 * time.Millisecond)
	l.Append(Record{Kind: KindCommit})
	start := time.Now()
	l.Sync()
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("sync returned after %v, want >= ~20ms", elapsed)
	}
	l.SetSyncDelay(0)
	start = time.Now()
	l.Sync()
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("sync with zero delay took %v", elapsed)
	}
	if l.Syncs() != 2 {
		t.Fatalf("syncs = %d", l.Syncs())
	}
}

func TestFileLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Path() != path {
		t.Fatalf("Path() = %q", l.Path())
	}
	records := []Record{
		{Kind: KindBegin, TxnID: 7},
		{Kind: KindUpdate, TxnID: 7, Item: 42, Value: -12345},
		{Kind: KindCommit, TxnID: 7, Data: []byte("payload")},
	}
	for _, r := range records {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l)
	if len(got) != 3 {
		t.Fatalf("replay returned %d records", len(got))
	}
	if got[1].Item != 42 || got[1].Value != -12345 {
		t.Fatalf("negative value did not round-trip: %+v", got[1])
	}
	if string(got[2].Data) != "payload" {
		t.Fatalf("data did not round-trip: %q", got[2].Data)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify persistence plus LSN continuation.
	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got = replayAll(t, l2)
	if len(got) != 3 {
		t.Fatalf("replay after reopen returned %d records", len(got))
	}
	if l2.LastLSN() != 3 {
		t.Fatalf("LastLSN after reopen = %d, want 3", l2.LastLSN())
	}
	lsn, err := l2.Append(Record{Kind: KindAbort, TxnID: 8})
	if err != nil || lsn != 4 {
		t.Fatalf("append after reopen = %d, %v", lsn, err)
	}
}

func TestFileLogTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: KindCommit, TxnID: 1})
	l.Append(Record{Kind: KindCommit, TxnID: 2})
	l.Sync()
	l.Close()

	// Corrupt the file by appending garbage bytes (a torn record).
	f, err := openAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 2 {
		t.Fatalf("replay with torn tail returned %d records, want 2", len(got))
	}
	// Appending after the torn tail was truncated must still work.
	if _, err := l2.Append(Record{Kind: KindCommit, TxnID: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l2); len(got) != 3 {
		t.Fatalf("replay after repair returned %d records, want 3", len(got))
	}
}

func TestFileLogClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.wal")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append(Record{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed log: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync on closed log: %v", err)
	}
	if err := l.Replay(func(Record) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("replay on closed log: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestFileLogReplayError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "err.wal")
	l, _ := OpenFileLog(path)
	defer l.Close()
	l.Append(Record{Kind: KindCommit})
	l.Sync()
	sentinel := errors.New("stop")
	if err := l.Replay(func(Record) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("replay error not propagated: %v", err)
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(kind uint8, txn uint64, item, value int64, data []byte) bool {
		r := Record{LSN: 1, Kind: Kind(kind), TxnID: txn, Item: item, Value: value, Data: data}
		decoded, err := decodeRecord(encodeRecord(r))
		if err != nil {
			return false
		}
		if decoded.Kind != r.Kind || decoded.TxnID != r.TxnID || decoded.Item != r.Item || decoded.Value != r.Value {
			return false
		}
		if len(decoded.Data) != len(r.Data) {
			return false
		}
		for i := range r.Data {
			if decoded.Data[i] != r.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	if _, err := decodeRecord([]byte{1, 2, 3}); err == nil {
		t.Fatal("short record should not decode")
	}
	r := encodeRecord(Record{Kind: KindCommit, Data: []byte("abc")})
	if _, err := decodeRecord(r[:len(r)-1]); err == nil {
		t.Fatal("truncated data should not decode")
	}
}

func TestGroupCommitterBatchesSyncs(t *testing.T) {
	l := NewMemLogWithDelay(5 * time.Millisecond)
	g := NewGroupCommitter(l)
	const n = 16
	lsns := make([]LSN, n)
	for i := 0; i < n; i++ {
		lsn, err := l.Append(Record{Kind: KindCommit, TxnID: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		lsns[i] = lsn
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(lsn LSN) {
			defer wg.Done()
			if err := g.WaitDurable(lsn); err != nil {
				t.Errorf("WaitDurable: %v", err)
			}
		}(lsns[i])
	}
	wg.Wait()
	if l.DurableLen() != n {
		t.Fatalf("durable = %d, want %d", l.DurableLen(), n)
	}
	if syncs := l.Syncs(); syncs > n/2 {
		t.Fatalf("group commit used %d syncs for %d waiters, expected batching", syncs, n)
	}
	if g.SyncedLSN() < lsns[n-1] {
		t.Fatalf("SyncedLSN = %d, want >= %d", g.SyncedLSN(), lsns[n-1])
	}
}

func TestGroupCommitterAlreadyDurable(t *testing.T) {
	l := NewMemLog()
	g := NewGroupCommitter(l)
	lsn, _ := l.Append(Record{Kind: KindCommit})
	if err := g.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	before := l.Syncs()
	if err := g.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if l.Syncs() != before {
		t.Fatal("WaitDurable on already-durable LSN should not sync again")
	}
	g.Reset()
	if g.SyncedLSN() != 0 {
		t.Fatal("Reset should clear synced LSN")
	}
}

func TestGroupCommitterError(t *testing.T) {
	l := NewMemLog()
	g := NewGroupCommitter(l)
	lsn, _ := l.Append(Record{Kind: KindCommit})
	l.Close()
	if err := g.WaitDurable(lsn); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
	// The error is sticky for later waiters.
	if err := g.WaitDurable(lsn + 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected sticky error, got %v", err)
	}
}

// openAppend opens a file for appending raw bytes (test helper for torn-tail
// simulation).
func openAppend(path string) (f interface {
	Write([]byte) (int, error)
	Close() error
}, err error) {
	return osOpenAppend(path)
}

func TestLogInterfaceCompliance(t *testing.T) {
	var _ Log = NewMemLog()
	path := filepath.Join(t.TempDir(), fmt.Sprintf("iface-%d.wal", time.Now().UnixNano()))
	fl, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	var _ Log = fl
}
