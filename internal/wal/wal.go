// Package wal implements the write-ahead log / stable-storage abstraction
// used by both the database component (transaction logging, redo recovery)
// and the end-to-end atomic broadcast (message logging and acknowledgement
// records).
//
// Two implementations are provided:
//
//   - MemLog: an in-memory "stable storage" with explicit crash semantics
//     (records appended after the last Sync are lost by Crash) and an optional
//     synthetic sync latency, used by the simulated clusters and by the
//     failure-injection experiments of Figs. 5 and 7;
//   - FileLog: a real file-backed log with a CRC-checked binary record format,
//     used by the TCP cluster binaries and the durability tests.
package wal

import (
	"errors"
	"fmt"
)

// LSN is a log sequence number; the first record of a log has LSN 1.
type LSN uint64

// Kind identifies the type of a log record.
type Kind uint8

// Record kinds used by the database component and the group-communication
// component.
const (
	KindInvalid Kind = iota
	// Database component records.
	KindBegin
	KindUpdate
	KindCommit
	KindAbort
	// Group-communication component records (end-to-end atomic broadcast).
	KindMessage
	KindAck
	// KindCheckpoint marks a state snapshot boundary.
	KindCheckpoint
	// KindPrepare marks a cross-partition transaction as prepared (voted yes
	// in the ordered two-phase commit): its staged KindUpdate records are
	// in-doubt until a later KindCommit or KindAbort decides them.  Data
	// carries the coordinator partition id and the transaction's read items
	// (shared locks).  Appended at the end of the enum so persisted record
	// kinds keep their numbering.
	KindPrepare
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindUpdate:
		return "update"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	case KindMessage:
		return "message"
	case KindAck:
		return "ack"
	case KindCheckpoint:
		return "checkpoint"
	case KindPrepare:
		return "prepare"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is a single write-ahead-log entry.
type Record struct {
	LSN   LSN
	Kind  Kind
	TxnID uint64
	Item  int64
	Value int64
	Data  []byte
}

// Log is the stable-storage interface shared by the in-memory and file-backed
// implementations.
type Log interface {
	// Append adds a record to the log and returns its LSN.  Appended records
	// are durable only after the next successful Sync.
	Append(Record) (LSN, error)
	// Sync makes all appended records durable.
	Sync() error
	// Replay invokes fn on every durable record in LSN order.  Implementations
	// replay only what would survive a crash (i.e. synced records for MemLog,
	// records physically in the file for FileLog).
	Replay(fn func(Record) error) error
	// LastLSN returns the LSN of the most recently appended record (0 if the
	// log is empty).
	LastLSN() LSN
	// Close releases resources held by the log.
	Close() error
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")
