package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// FileLog is a file-backed write-ahead log.  Each record is stored as:
//
//	uint32 length of the encoded record (little endian)
//	uint32 CRC-32 (IEEE) of the encoded record
//	[]byte encoded record
//
// A torn tail (partial record at the end of the file, e.g. after a crash in
// the middle of a write) is detected by the length/CRC check and ignored
// during replay.
type FileLog struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	w       *bufio.Writer
	nextLSN LSN
	closed  bool
	// encBuf is the reusable append-path encode buffer (guarded by mu):
	// header plus record are staged here so an Append performs no
	// per-record allocation.
	encBuf []byte
}

const fileLogHeaderSize = 8

// OpenFileLog opens (or creates) the log at path and scans it to find the
// next LSN.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &FileLog{path: path, f: f, w: bufio.NewWriter(f), nextLSN: 1}
	// Determine the next LSN and the valid prefix length by scanning.
	validEnd, last, err := l.scan(func(Record) error { return nil })
	if err != nil {
		f.Close()
		return nil, err
	}
	l.nextLSN = last + 1
	// Truncate a torn tail so new appends start at a clean boundary.
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return l, nil
}

// Path returns the file path of the log.
func (l *FileLog) Path() string { return l.path }

func encodeRecord(r Record) []byte {
	return appendRecord(make([]byte, 0, 41+len(r.Data)), r)
}

// appendRecord appends the binary encoding of r to buf and returns the
// extended slice; it is the allocation-free core of encodeRecord.
func appendRecord(buf []byte, r Record) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(r.LSN))
	buf = append(buf, tmp[:]...)
	buf = append(buf, byte(r.Kind))
	binary.LittleEndian.PutUint64(tmp[:], r.TxnID)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(r.Item))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(r.Value))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(r.Data)))
	buf = append(buf, tmp[:]...)
	buf = append(buf, r.Data...)
	return buf
}

func decodeRecord(b []byte) (Record, error) {
	if len(b) < 41 {
		return Record{}, fmt.Errorf("wal: record too short: %d bytes", len(b))
	}
	var r Record
	r.LSN = LSN(binary.LittleEndian.Uint64(b[0:8]))
	r.Kind = Kind(b[8])
	r.TxnID = binary.LittleEndian.Uint64(b[9:17])
	r.Item = int64(binary.LittleEndian.Uint64(b[17:25]))
	r.Value = int64(binary.LittleEndian.Uint64(b[25:33]))
	n := binary.LittleEndian.Uint64(b[33:41])
	if uint64(len(b)-41) != n {
		return Record{}, fmt.Errorf("wal: data length mismatch: header %d, actual %d", n, len(b)-41)
	}
	if n > 0 {
		r.Data = make([]byte, n)
		copy(r.Data, b[41:])
	}
	return r, nil
}

// Append implements Log.
func (l *FileLog) Append(r Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	r.LSN = l.nextLSN
	// Stage header + payload in the reusable buffer: zero per-record
	// allocations on the append path (the header is patched in after the
	// payload is encoded, when its length and checksum are known).
	var zeroHdr [fileLogHeaderSize]byte
	buf := append(l.encBuf[:0], zeroHdr[:]...)
	buf = appendRecord(buf, r)
	payload := buf[fileLogHeaderSize:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	l.encBuf = buf
	if _, err := l.w.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: append record: %w", err)
	}
	l.nextLSN++
	return r.LSN, nil
}

// Sync implements Log: it flushes buffered records and forces them to disk.
func (l *FileLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// scan reads the file from the beginning, calling fn for every valid record,
// and returns the byte offset of the end of the valid prefix and the last
// valid LSN.
func (l *FileLog) scan(fn func(Record) error) (int64, LSN, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("wal: seek: %w", err)
	}
	r := bufio.NewReader(l.f)
	var offset int64
	var last LSN
	for {
		var hdr [fileLogHeaderSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			// EOF or a torn header: the valid prefix ends here.
			return offset, last, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		checksum := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return offset, last, nil
		}
		if crc32.ChecksumIEEE(payload) != checksum {
			return offset, last, nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return offset, last, nil
		}
		if err := fn(rec); err != nil {
			return 0, 0, err
		}
		last = rec.LSN
		offset += int64(fileLogHeaderSize) + int64(length)
	}
}

// Replay implements Log.
func (l *FileLog) Replay(fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush before replay: %w", err)
	}
	pos, err := l.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("wal: tell: %w", err)
	}
	_, _, err = l.scan(fn)
	if err != nil {
		return err
	}
	if _, err := l.f.Seek(pos, io.SeekStart); err != nil {
		return fmt.Errorf("wal: restore position: %w", err)
	}
	return nil
}

// LastLSN implements Log.
func (l *FileLog) LastLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Close implements Log.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: flush on close: %w", err)
	}
	return l.f.Close()
}
