package sim

import "time"

// Resource is a FIFO multi-server queueing resource (e.g. a pair of disks, a
// pair of CPUs, or a shared network link).  A process acquires one of the
// resource's servers, holds it for a service time, and releases it.  Waiting
// processes are served in arrival order.
type Resource struct {
	eng     *Engine
	name    string
	servers int
	busy    int
	waiters []*waiter

	// statistics
	totalBusy   time.Duration
	totalWait   time.Duration
	completions uint64
	maxQueue    int
}

type waiter struct {
	proc    *Process
	arrived time.Duration
}

// NewResource creates a resource with the given number of identical servers.
func NewResource(eng *Engine, name string, servers int) *Resource {
	if servers < 1 {
		servers = 1
	}
	return &Resource{eng: eng, name: name, servers: servers}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Servers returns the number of servers in the resource.
func (r *Resource) Servers() int { return r.servers }

// QueueLen returns the number of processes currently waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// InUse returns the number of busy servers.
func (r *Resource) InUse() int { return r.busy }

// Acquire grabs one server of the resource, waiting in FIFO order if all
// servers are busy.  It must be called from within a simulated process.
func (r *Resource) Acquire(p *Process) {
	arrived := r.eng.now
	if r.busy < r.servers && len(r.waiters) == 0 {
		r.busy++
		return
	}
	r.waiters = append(r.waiters, &waiter{proc: p, arrived: arrived})
	if len(r.waiters) > r.maxQueue {
		r.maxQueue = len(r.waiters)
	}
	p.block()
	r.totalWait += r.eng.now - arrived
}

// Release frees one server of the resource and hands it to the oldest waiter,
// if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		// The server slot is transferred to the waiter; busy count is
		// unchanged.
		r.eng.scheduleWake(w.proc, 0)
		return
	}
	if r.busy > 0 {
		r.busy--
	}
}

// Use acquires the resource, holds it for the service time d and releases it.
func (r *Resource) Use(p *Process, d time.Duration) {
	r.Acquire(p)
	p.Hold(d)
	r.totalBusy += d
	r.completions++
	r.Release()
}

// Utilization returns the fraction of server-time spent busy since the start
// of the simulation (0 if no time has elapsed).
func (r *Resource) Utilization() float64 {
	elapsed := r.eng.now
	if elapsed <= 0 {
		return 0
	}
	return float64(r.totalBusy) / (float64(elapsed) * float64(r.servers))
}

// AvgWait returns the average time spent waiting in the queue per completed
// service.
func (r *Resource) AvgWait() time.Duration {
	if r.completions == 0 {
		return 0
	}
	return r.totalWait / time.Duration(r.completions)
}

// Completions returns the number of completed services.
func (r *Resource) Completions() uint64 { return r.completions }

// MaxQueue returns the largest observed queue length.
func (r *Resource) MaxQueue() int { return r.maxQueue }
