package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("Now() = %v, want 30ms", e.Now())
	}
}

func TestScheduleSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run(0)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestScheduleNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(-time.Second, func() { ran = true })
	e.Run(0)
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine(1)
	var fired []time.Duration
	for i := 1; i <= 10; i++ {
		d := time.Duration(i) * time.Second
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.Run(5 * time.Second)
	if len(fired) != 5 {
		t.Fatalf("fired %d events before horizon, want 5", len(fired))
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 100; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 10 {
				e.Stop()
			}
		})
	}
	e.Run(0)
	if count != 10 {
		t.Fatalf("processed %d events after Stop, want 10", count)
	}
}

func TestProcessHold(t *testing.T) {
	e := NewEngine(1)
	var wake time.Duration
	e.Spawn("sleeper", 0, func(p *Process) {
		p.Hold(42 * time.Millisecond)
		wake = p.Now()
	})
	e.Run(0)
	if wake != 42*time.Millisecond {
		t.Fatalf("process woke at %v, want 42ms", wake)
	}
}

func TestProcessSpawnDelay(t *testing.T) {
	e := NewEngine(1)
	var started time.Duration
	e.Spawn("late", 100*time.Millisecond, func(p *Process) { started = p.Now() })
	e.Run(0)
	if started != 100*time.Millisecond {
		t.Fatalf("process started at %v, want 100ms", started)
	}
}

func TestProcessInterleaving(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	e.Spawn("a", 0, func(p *Process) {
		trace = append(trace, "a0")
		p.Hold(10 * time.Millisecond)
		trace = append(trace, "a10")
		p.Hold(20 * time.Millisecond)
		trace = append(trace, "a30")
	})
	e.Spawn("b", 5*time.Millisecond, func(p *Process) {
		trace = append(trace, "b5")
		p.Hold(10 * time.Millisecond)
		trace = append(trace, "b15")
	})
	e.Run(0)
	want := []string{"a0", "b5", "a10", "b15", "a30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := NewEngine(7)
		r := NewResource(e, "disk", 2)
		var completions []time.Duration
		for i := 0; i < 20; i++ {
			e.Spawn("w", time.Duration(e.Rand().Intn(50))*time.Millisecond, func(p *Process) {
				r.Use(p, UniformDuration(e.Rand(), 4*time.Millisecond, 12*time.Millisecond))
				completions = append(completions, p.Now())
			})
		}
		e.Run(0)
		return completions
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEngineNestedSchedule(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var last time.Duration
	var rec func()
	rec = func() {
		depth++
		last = e.Now()
		if depth < 5 {
			e.Schedule(time.Millisecond, rec)
		}
	}
	e.Schedule(0, rec)
	e.Run(0)
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if last != 4*time.Millisecond {
		t.Fatalf("last = %v, want 4ms", last)
	}
}

func TestQuickEventOrderMonotonic(t *testing.T) {
	// Property: regardless of the order in which events are scheduled, they
	// execute in non-decreasing virtual time.
	f := func(delays []uint16) bool {
		e := NewEngine(3)
		var times []time.Duration
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Microsecond, func() {
				times = append(times, e.Now())
			})
		}
		e.Run(0)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformDurationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lo, hi := 4*time.Millisecond, 12*time.Millisecond
	for i := 0; i < 1000; i++ {
		d := UniformDuration(rng, lo, hi)
		if d < lo || d > hi {
			t.Fatalf("UniformDuration out of range: %v", d)
		}
	}
	if got := UniformDuration(rng, hi, lo); got != hi {
		t.Fatalf("inverted bounds should return lo bound, got %v", got)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mean := 50 * time.Millisecond
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += Exponential(rng, mean)
	}
	got := sum / n
	if got < 45*time.Millisecond || got > 55*time.Millisecond {
		t.Fatalf("empirical mean %v too far from %v", got, mean)
	}
	if Exponential(rng, 0) != 0 {
		t.Fatal("zero mean should yield zero duration")
	}
}

func TestBernoulli(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if Bernoulli(rng, 0.2) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.17 || frac > 0.23 {
		t.Fatalf("Bernoulli(0.2) frequency %v out of tolerance", frac)
	}
}

func TestUniformIntBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := UniformInt(rng, 10, 20)
		if v < 10 || v > 20 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 11 {
		t.Fatalf("expected all 11 values to appear, got %d", len(seen))
	}
	if UniformInt(rng, 7, 7) != 7 {
		t.Fatal("degenerate range should return lo")
	}
}
