// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is used by the performance simulator (internal/simrep) that
// reproduces the evaluation of the Group-Safety paper (Sect. 6, Fig. 9).
// It offers a virtual clock, an event queue, goroutine-backed simulated
// processes, FIFO multi-server resources (CPUs, disks, network links) and
// mailboxes for inter-process messages.
//
// Determinism: events are ordered by (time, insertion sequence).  Processes
// are resumed one at a time; the engine never advances while a process is
// runnable.  Given the same seed and the same program, a simulation run is
// fully reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// event is a single entry in the engine's event queue.  Either fn is called
// inline (callback events) or proc is resumed (process wake-up events).
type event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	proc *Process
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine with a virtual clock.
type Engine struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	seed    int64
	rng     *rand.Rand
	blocked chan struct{}
	procs   int
	stopped bool
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
		blocked: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Seed returns the seed the engine was created with, so harnesses built on
// the kernel can report it on failure and replay the run deterministically.
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule registers fn to run after delay of virtual time.  The callback is
// executed on the engine goroutine and must not block; it may schedule
// further events or spawn processes.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.push(&event{at: e.now + delay, fn: fn})
}

func (e *Engine) push(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
}

func (e *Engine) scheduleWake(p *Process, delay time.Duration) {
	if delay < 0 {
		delay = 0
	}
	e.push(&event{at: e.now + delay, proc: p})
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until the queue is empty, the optional horizon is
// reached, or Stop is called.  A zero horizon means "no limit".
func (e *Engine) Run(horizon time.Duration) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		if horizon > 0 && ev.at > horizon {
			e.now = horizon
			return
		}
		e.now = ev.at
		switch {
		case ev.proc != nil:
			if ev.proc.finished {
				continue
			}
			ev.proc.wake <- struct{}{}
			<-e.blocked
		case ev.fn != nil:
			ev.fn()
		}
	}
}

// Process is a simulated thread of control backed by a goroutine.  All of its
// blocking methods (Hold, resource acquisition, mailbox reads) must only be
// called from within the process's own function.
type Process struct {
	eng      *Engine
	name     string
	wake     chan struct{}
	finished bool
}

// Name returns the process name given at Spawn time.
func (p *Process) Name() string { return p.name }

// Engine returns the engine that owns the process.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Process) Now() time.Duration { return p.eng.now }

// Spawn creates a new simulated process running fn.  The process starts at
// the current virtual time plus delay.
func (e *Engine) Spawn(name string, delay time.Duration, fn func(p *Process)) *Process {
	p := &Process{eng: e, name: name, wake: make(chan struct{})}
	e.procs++
	go func() {
		<-p.wake
		fn(p)
		p.finished = true
		e.procs--
		e.blocked <- struct{}{}
	}()
	e.scheduleWake(p, delay)
	return p
}

// Hold advances the process's local time by d (the process sleeps for d of
// virtual time).
func (p *Process) Hold(d time.Duration) {
	p.eng.scheduleWake(p, d)
	p.block()
}

// block parks the process and hands control back to the engine.  The process
// resumes when the engine delivers a wake-up.
func (p *Process) block() {
	p.eng.blocked <- struct{}{}
	<-p.wake
}

// String implements fmt.Stringer.
func (p *Process) String() string { return fmt.Sprintf("proc(%s)", p.name) }
