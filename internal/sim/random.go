package sim

import (
	"math"
	"math/rand"
	"time"
)

// UniformDuration returns a duration drawn uniformly from [lo, hi].
func UniformDuration(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)+1))
}

// Exponential returns an exponentially distributed duration with the given
// mean, used for Poisson arrival processes.
func Exponential(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return time.Duration(-math.Log(u) * float64(mean))
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// UniformInt returns an integer drawn uniformly from [lo, hi].
func UniformInt(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// SplitMix64 advances a SplitMix64 generator state in place and returns the
// next 64-bit output.  It is the standard seed-expansion mixer (Steele,
// Lea & Flood): tiny, stateless apart from the caller-owned word, and good
// enough to decorrelate derived streams.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed derives an independent child seed from a root seed and a stream
// label, so one user-facing 64-bit seed can deterministically seed many
// sub-generators (scenario generation, per-session workloads, the network)
// without handing them correlated streams.  Deterministic: the same
// (root, stream) pair always yields the same child seed.
func DeriveSeed(root int64, stream uint64) int64 {
	state := uint64(root)
	SplitMix64(&state) // decorrelate nearby roots before mixing the label in
	state ^= (stream + 1) * 0x9e3779b97f4a7c15
	return int64(SplitMix64(&state))
}
