package sim

import (
	"math"
	"math/rand"
	"time"
)

// UniformDuration returns a duration drawn uniformly from [lo, hi].
func UniformDuration(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)+1))
}

// Exponential returns an exponentially distributed duration with the given
// mean, used for Poisson arrival processes.
func Exponential(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return time.Duration(-math.Log(u) * float64(mean))
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// UniformInt returns an integer drawn uniformly from [lo, hi].
func UniformInt(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}
