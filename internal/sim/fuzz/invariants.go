package fuzz

import (
	"fmt"
	"strconv"
	"strings"

	"groupsafe/internal/core"
)

// The invariant suite checks a finished run against the paper's correctness
// claims.  Every check is written to hold for EVERY interleaving of the
// schedule: it never assumes a particular timing, only the event-counter
// ordering and the durable frontiers the runner recorded.  A check that
// cannot be decided soundly for a run (no never-crashed reference replica,
// sequence numbers made incomparable by a total failure) is skipped, never
// guessed.

// Violation is one invariant failure.
type Violation struct {
	// Invariant names the failed check ("durability", "one-copy", ...).
	Invariant string
	// Detail is a human-readable account of the failure.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

func violationf(list *[]Violation, invariant, format string, args ...interface{}) {
	*list = append(*list, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// CheckAll runs the full invariant suite over a run record.
func CheckAll(rec *RunRecord) []Violation {
	var out []Violation
	checkDurability(rec, &out)
	checkRefDurability(rec, &out)
	checkOneCopy(rec, &out)
	checkOneCopyPartitioned(rec, &out)
	checkAtomicCommit(rec, &out)
	checkFreshness(rec, &out)
	checkFreshnessVec(rec, &out)
	checkSessionRouting(rec, &out)
	checkTimeline(rec, &out)
	checkStale(rec, &out)
	checkConvergence(rec, &out)
	return out
}

// replicaIndex parses a replica address ("s3" -> 2); -1 when unknown.
func replicaIndex(id string) int {
	if !strings.HasPrefix(id, "s") {
		return -1
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 1 {
		return -1
	}
	return n - 1
}

// checkDurability is the no-lost-acknowledged-transaction invariant, with the
// loss window graded exactly by safety level (the core claim of the paper):
//
//   - 2-safe and very-safe: an acknowledged committed update survives ANY
//     combination of crashes, total failure included.
//   - group-safe and group-1-safe: loss is excused only when every replica
//     that externalised the transaction crashed afterwards (the
//     responded-but-not-durable window group-safety deliberately leaves open).
//   - 0-safe, lazy (1-safe) and lazy primary-copy: loss is excused only when
//     the delegate crashed after acknowledging.
//
// "Lost" means: applied at no live replica after the rescue phase.
func checkDurability(rec *RunRecord, out *[]Violation) {
	for _, t := range allTxns(rec) {
		if !t.Committed() || !t.Update() {
			continue
		}
		if presentAnywhere(rec, t.TxnID) {
			continue
		}
		delegate := replicaIndex(t.DelegateID)
		delegateCrashed := delegate >= 0 && delegate < len(rec.EverCrashed) && rec.EverCrashed[delegate]
		switch t.Level {
		case core.Safety2, core.VerySafe:
			violationf(out, "durability",
				"txn %#x (session %d, step %d, level %v) was acknowledged committed but is applied at no live replica",
				t.TxnID, t.Session, t.StepIdx, t.Level)
		case core.GroupSafe, core.Group1Safe:
			if delegateCrashed && allHoldersCrashed(rec, t.TxnID) {
				continue // the group-safe loss window: every holder died
			}
			violationf(out, "durability",
				"txn %#x (session %d, level %v) lost although a replica that externalised it never crashed",
				t.TxnID, t.Session, t.Level)
		default: // Safety0, Safety1Lazy (certification-lazy and lazy primary-copy)
			if delegateCrashed {
				continue // the 1-safe window: the delegate died before propagating
			}
			violationf(out, "durability",
				"txn %#x (session %d, level %v) lost although its delegate %s never crashed",
				t.TxnID, t.Session, t.Level, t.DelegateID)
		}
	}
}

func allTxns(rec *RunRecord) []*TxnRec {
	var all []*TxnRec
	for _, s := range rec.Sessions {
		all = append(all, s...)
	}
	return all
}

func presentAnywhere(rec *RunRecord, txnID uint64) bool {
	for i, applied := range rec.FinalApplied {
		if !rec.FinalCrashed[i] && applied[txnID] {
			return true
		}
	}
	return false
}

// allHoldersCrashed reports whether every replica whose applied log contains
// txnID crashed at some point.  The applied logs are harness-side observers
// that survive crashes, so a replica that externalised the transaction and
// never crashed must still hold it — if it does not, the loss is real.
func allHoldersCrashed(rec *RunRecord, txnID uint64) bool {
	for i, log := range rec.AppliedLogs {
		for _, e := range log {
			if e.TxnID == txnID && !rec.EverCrashed[i] {
				return false
			}
		}
	}
	return true
}

// checkRefDurability: a replica that never crashed can never lose anything —
// every transaction it externalised as committed must be in its applied set.
// Prepare votes are skipped: a yes vote with no decision resolves by presumed
// abort, so "externalised committed" only counts decide and certify records.
func checkRefDurability(rec *RunRecord, out *[]Violation) {
	if rec.RefReplica < 0 {
		return
	}
	applied := rec.FinalApplied[rec.RefReplica]
	for _, e := range rec.AppliedLogs[rec.RefReplica] {
		if !e.Vote && e.Outcome == core.OutcomeCommitted && !applied[e.TxnID] {
			violationf(out, "durability",
				"replica %d never crashed but txn %#x (committed at seq %d in its own applied log) is missing from its applied set",
				rec.RefReplica, e.TxnID, e.Seq)
		}
	}
}

// committedHistory is the deduplicated committed history of one applied log:
// for each transaction, its FIRST non-vote externalisation (re-deliveries
// after a peer's end-to-end replay are idempotent — only the first occurrence
// installed writes; a 2PC prepare vote installs nothing, the decide record
// with the same TxnID is the install point).
func committedHistory(log []core.AppliedRecord) []core.AppliedRecord {
	seen := make(map[uint64]bool)
	var hist []core.AppliedRecord
	for _, e := range log {
		if e.Vote || seen[e.TxnID] {
			continue
		}
		seen[e.TxnID] = true
		if e.Outcome == core.OutcomeCommitted {
			hist = append(hist, e)
		}
	}
	return hist
}

func refHistory(rec *RunRecord) []core.AppliedRecord { return committedHistory(rec.RefLog) }

// checkOneCopy replays the committed write sets in the total order a
// never-crashed replica recorded and compares the resulting one-copy database
// (values AND versions) against that replica's actual final store.  This is
// one-copy serializability made mechanical: every certification decision the
// cluster took must be explainable by the serial execution of the committed
// history.
func checkOneCopy(rec *RunRecord, out *[]Violation) {
	if rec.RefReplica < 0 || len(rec.RefLog) == 0 {
		return
	}
	items := len(rec.FinalItems[rec.RefReplica])
	values := make([]int64, items)
	versions := make([]uint64, items)
	for _, e := range refHistory(rec) {
		t := rec.TxnByID[e.TxnID]
		if t == nil {
			// A transaction the harness did not submit: nothing to replay
			// against, so the check would be guessing.
			return
		}
		for item, v := range t.Writes {
			if item < items {
				values[item] = v
				versions[item]++
			}
		}
	}
	final := rec.FinalItems[rec.RefReplica]
	for i := 0; i < items; i++ {
		if final[i].Value != values[i] || final[i].Version != versions[i] {
			violationf(out, "one-copy",
				"replica %d item %d: serial replay of its committed history gives value=%d version=%d, store holds value=%d version=%d",
				rec.RefReplica, i, values[i], versions[i], final[i].Value, final[i].Version)
		}
	}
}

// checkOneCopyPartitioned is the one-copy replay for partitioned runs, per
// partition: each partition's total order is an independent sequence, so each
// is replayed separately against the reference server's per-partition store.
// A cross-partition transaction installs at its decide position in each
// participant's order (committedHistory skips its prepare vote), with the
// write set filtered to the items the partition owns.
func checkOneCopyPartitioned(rec *RunRecord, out *[]Violation) {
	if rec.Partitions <= 1 || rec.RefReplica < 0 {
		return
	}
	for p, log := range rec.RefLogs {
		final := rec.FinalItemsByPart[p][rec.RefReplica]
		values := make([]int64, len(final))
		versions := make([]uint64, len(final))
		for _, e := range committedHistory(log) {
			t := rec.TxnByID[e.TxnID]
			if t == nil {
				return // not a harness transaction: the replay would be guessing
			}
			for g, v := range t.Writes {
				if rec.PMap.Owner(g) != p {
					continue
				}
				if local := rec.PMap.Local(g); local < len(final) {
					values[local] = v
					versions[local]++
				}
			}
		}
		for i := range final {
			if final[i].Value != values[i] || final[i].Version != versions[i] {
				violationf(out, "one-copy",
					"partition %d server %d item %d (global %d): serial replay of the partition's committed history gives value=%d version=%d, store holds value=%d version=%d",
					p, rec.RefReplica, i, rec.PMap.Global(p, i), values[i], versions[i], final[i].Value, final[i].Version)
			}
		}
	}
}

// writePartitions returns the sorted partitions owning any item of t's write
// set.
func writePartitions(rec *RunRecord, t *TxnRec) []int {
	seen := make([]bool, rec.Partitions)
	for g := range t.Writes {
		if g < rec.PMap.Items() {
			seen[rec.PMap.Owner(g)] = true
		}
	}
	var out []int
	for p, s := range seen {
		if s {
			out = append(out, p)
		}
	}
	return out
}

// partHoldersAllCrashed reports whether every server that externalised the
// COMMIT of txnID through partition q's total order (decide or certify record,
// votes excluded) crashed at some point.  A never-crashed holder must still
// have the install — if partition q lost it anyway, the loss is real.
func partHoldersAllCrashed(rec *RunRecord, q int, txnID uint64) bool {
	for i, log := range rec.AppliedLogsByPart[q] {
		if rec.EverCrashed[i] {
			continue
		}
		for _, e := range log {
			if e.TxnID == txnID && !e.Vote && e.Outcome == core.OutcomeCommitted {
				return false
			}
		}
	}
	return true
}

// checkAtomicCommit is the cross-partition atomicity invariant: a transaction
// writing several partitions installs at ALL of them or at NONE.
//
//   - An acknowledged ABORT must be installed nowhere, unconditionally: the
//     abort decision is recorded at the coordinator before the client learns
//     it, and the first decision wins against every later prepare or resolve.
//   - A transaction installed at SOME write partition must be installed at
//     every other write partition too.  At 2-safe and very-safe there is no
//     excuse: the prepare and the decide are forced durable, so recovery plus
//     the presumed-abort resolver always completes the commit.  At the
//     group-safe levels a partition's prepare or the coordinator's decide
//     record can die with its holders (the same responded-but-not-durable
//     window the durability check grades), so the missing partition is excused
//     only when every server that externalised the commit there crashed.
//
// "Installed" is judged at live servers after the rescue phase resolved every
// in-doubt transaction.
func checkAtomicCommit(rec *RunRecord, out *[]Violation) {
	if rec.Partitions <= 1 {
		return
	}
	for _, t := range allTxns(rec) {
		if !t.Update() {
			continue
		}
		parts := writePartitions(rec, t)
		if len(parts) < 2 {
			continue
		}
		present := make(map[int]bool)
		for _, q := range parts {
			for i, applied := range rec.FinalAppliedByPart[q] {
				if !rec.FinalCrashed[i] && applied[t.TxnID] {
					present[q] = true
					break
				}
			}
		}
		if t.Acked && t.Outcome == core.OutcomeAborted {
			for _, q := range parts {
				if present[q] {
					violationf(out, "atomic-commit",
						"txn %#x (session %d, step %d) was acknowledged aborted but partition %d installed its writes",
						t.TxnID, t.Session, t.StepIdx, q)
				}
			}
			continue
		}
		if len(present) == 0 {
			continue // installed nowhere: total loss is the durability check's business
		}
		level := rec.Level
		if t.Acked {
			level = t.Level
		}
		for _, q := range parts {
			if present[q] {
				continue
			}
			if level != core.Safety2 && level != core.VerySafe && partHoldersAllCrashed(rec, q, t.TxnID) {
				continue // the group-safe loss window, per partition
			}
			violationf(out, "atomic-commit",
				"txn %#x (session %d, step %d, level %v) installed its writes at %d of %d write partitions but is missing from partition %d at every live server",
				t.TxnID, t.Session, t.StepIdx, level, len(present), len(parts), q)
		}
	}
}

// tfBetween reports whether a total failure was stamped in (a, b): across
// such a point the broadcast sequence may have restarted, so freshness tokens
// on either side are not comparable.
func tfBetween(rec *RunRecord, a, b uint64) bool {
	for _, tf := range rec.TotalFailures {
		if tf > a && tf < b {
			return true
		}
	}
	return false
}

// checkFreshness checks the session-freshness claims: a floored query is
// never answered below its floor, and the freshness tokens of one session's
// committed updates are strictly monotone (each update is a distinct position
// in the total order, and the session submits them one at a time).  The
// monotonicity claim is scalar-only: a partitioned result's scalar token is
// the max over independent per-partition sequences, so two updates touching
// different partitions are legally non-monotone (checkFreshnessVec holds the
// per-partition claim instead).
func checkFreshness(rec *RunRecord, out *[]Violation) {
	for _, session := range rec.Sessions {
		var prev *TxnRec
		for _, t := range session {
			if !t.Acked {
				continue
			}
			if t.Floor > 0 && t.Freshness < t.Floor {
				violationf(out, "freshness-floor",
					"session %d txn %#x asked for freshness >= %d but was served token %d",
					t.Session, t.TxnID, t.Floor, t.Freshness)
			}
			if rec.Partitions == 1 && t.Committed() && t.Update() && t.Freshness > 0 {
				if prev != nil && !tfBetween(rec, prev.AckIdx, t.AckIdx) && t.Freshness <= prev.Freshness {
					violationf(out, "freshness-monotonic",
						"session %d: update %#x has token %d, not above the session's earlier update %#x at token %d",
						t.Session, t.TxnID, t.Freshness, prev.TxnID, prev.Freshness)
				}
				prev = t
			}
		}
	}
}

// checkFreshnessVec checks vector floors on partitioned runs: a query carrying
// a per-partition floor must be served, on every partition it actually read
// from, at or above that partition's floor entry (untouched partitions impose
// nothing — their vector entries stay zero).
func checkFreshnessVec(rec *RunRecord, out *[]Violation) {
	if rec.Partitions <= 1 {
		return
	}
	for _, t := range allTxns(rec) {
		if !t.Acked || len(t.FloorVec) == 0 {
			continue
		}
		for item := range t.ReadValues {
			if item >= rec.PMap.Items() {
				continue
			}
			p := rec.PMap.Owner(item)
			if p >= len(t.FloorVec) || t.FloorVec[p] == 0 {
				continue
			}
			served := uint64(0)
			if p < len(t.FreshnessVec) {
				served = t.FreshnessVec[p]
			}
			if served < t.FloorVec[p] {
				violationf(out, "freshness-floor",
					"session %d txn %#x read item %d from partition %d asking for freshness >= %d but was served token %d",
					t.Session, t.TxnID, item, p, t.FloorVec[p], served)
			}
		}
	}
}

// checkSessionRouting is the read scale-out claim: within one session, the
// freshness tokens served to FLOORED queries never move backwards — even as
// the freshness-aware router moves the session between replicas (crash,
// recovery, load), a later floored read is never handed an older snapshot
// than an earlier one.  Unfloored queries are exempt by design (they accept
// any snapshot and the session deliberately sends no floor), and on
// partitioned runs the comparison is per partition, only where both queries
// actually read (an untouched partition's vector entry stays zero and says
// nothing).  Runs containing a total failure are skipped entirely: the
// broadcast sequence may restart across it and the session loop resets its
// floor on a schedule the checker cannot reconstruct soundly.
func checkSessionRouting(rec *RunRecord, out *[]Violation) {
	if len(rec.TotalFailures) > 0 {
		return
	}
	for _, session := range rec.Sessions {
		var prev *TxnRec
		for _, t := range session {
			if !t.Acked || !t.Query || (t.Floor == 0 && len(t.FloorVec) == 0) {
				continue
			}
			if prev != nil {
				if rec.Partitions == 1 && t.Freshness < prev.Freshness {
					violationf(out, "session-routing",
						"session %d: floored query %#x (served by %s) returned token %d, below the session's earlier floored query %#x (served by %s) at token %d — the session travelled backwards in time across replicas",
						t.Session, t.TxnID, t.DelegateID, t.Freshness, prev.TxnID, prev.DelegateID, prev.Freshness)
				}
				for p, f := range prev.FreshnessVec {
					if f == 0 || p >= len(t.FreshnessVec) || t.FreshnessVec[p] == 0 {
						continue
					}
					if t.FreshnessVec[p] < f {
						violationf(out, "session-routing",
							"session %d: floored query %#x read partition %d at token %d, below the session's earlier floored query %#x at token %d",
							t.Session, t.TxnID, p, t.FreshnessVec[p], prev.TxnID, f)
					}
				}
			}
			prev = t
		}
	}
}

// checkTimeline validates every floored read value against the item's
// committed timeline: the value must be one the item actually held in some
// state at or after the query's token.  Needs the reference history (which
// also implies the run had no total failure, so tokens are comparable
// cluster-wide).  The check is per item on purpose: two live replicas may
// install disjoint transactions in different real-time order around the
// snapshot cut, so a cross-item prefix intersection would reject legal MVCC
// snapshots.
func checkTimeline(rec *RunRecord, out *[]Violation) {
	if rec.RefReplica < 0 || len(rec.RefLog) == 0 {
		return
	}
	type write struct {
		seq uint64
		val int64
	}
	timelines := make(map[int][]write)
	for _, e := range refHistory(rec) {
		t := rec.TxnByID[e.TxnID]
		if t == nil {
			return
		}
		for item, v := range t.Writes {
			timelines[item] = append(timelines[item], write{seq: e.Seq, val: v})
		}
	}
	for _, t := range allTxns(rec) {
		if !t.Acked || t.Floor == 0 {
			continue
		}
		token := t.Freshness
		for item, v := range t.ReadValues {
			tl := timelines[item]
			valid := false
			if v == 0 && (len(tl) == 0 || tl[0].seq > token) {
				valid = true // the initial value, still visible at the token
			}
			for k, w := range tl {
				if w.val != v {
					continue
				}
				if k == len(tl)-1 || tl[k+1].seq > token {
					valid = true // value held in [w.seq, next.seq), which reaches past the token
					break
				}
			}
			if !valid {
				violationf(out, "timeline",
					"session %d txn %#x read item %d = %d at token %d, but the committed timeline never holds that value at or after the token",
					t.Session, t.TxnID, item, v, token)
			}
		}
	}
}

// checkStale: the Stale flag is set exactly on lazy primary-copy reads served
// by a secondary, and never anywhere else.  "Read" means the request carried
// no writes: a nominal update whose operations all turned out to be reads
// takes the same snapshot fast path as a declared query.
func checkStale(rec *RunRecord, out *[]Violation) {
	lazy := rec.Technique == core.TechLazyPrimary
	for _, t := range allTxns(rec) {
		if !t.Acked {
			continue
		}
		want := lazy && !t.Update() && replicaIndex(t.DelegateID) != 0
		if t.Stale != want {
			violationf(out, "stale-flag",
				"txn %#x (query=%t, served by %s, technique %v): Stale=%t, want %t",
				t.TxnID, t.Query, t.DelegateID, rec.Technique, t.Stale, want)
		}
	}
}

// checkConvergence: after the rescue phase healed every fault and recovered
// every replica, the group-communication configurations must reach identical
// stores (delivery in one total order plus checkpoint state transfer leaves
// no legitimate way to stay apart).  Lazy primary-copy has a single update
// site and therefore also converges, but only for runs whose schedule
// destroyed no message (a lost propagation diverges forever — exactly the
// trade-off the paper charges 1-safety with).  The multi-master lazy
// baselines (certification at 0-safe/1-safe-lazy) are never asserted:
// conflicting commits at different delegates can legally diverge even on a
// fault-free run.
func checkConvergence(rec *RunRecord, out *[]Violation) {
	groupComm := rec.Level.UsesGroupCommunication()
	destructive := rec.Faults.Crash || rec.Faults.Partition || rec.Faults.Loss || rec.Faults.Block
	switch {
	case groupComm:
		// always asserted
	case rec.Technique == core.TechLazyPrimary && !destructive:
		// single-master lazy on an undisturbed network must converge
	default:
		return
	}
	if !rec.Converged {
		violationf(out, "convergence",
			"live replicas did not converge after the rescue phase (technique %v, level %v): %v",
			rec.Technique, rec.Level, rec.ConvergeErr)
	}
}
