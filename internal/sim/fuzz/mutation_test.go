//go:build simmutation

package fuzz

import (
	"testing"
	"time"
)

// TestMutationSelfTest proves the harness has teeth.  Under -tags simmutation
// the engine deliberately skips the 2-safe commit force
// (core/mutation_simmutation.go): a 2-safe transaction is acknowledged while
// its commit record is still volatile, so a total failure loses it — exactly
// the failure 2-safety exists to rule out.  The fuzzer, pinned to
// certification at 2-safe with the storm profile (whose tail is a drained
// total failure), must observe an invariant violation within a bounded seed
// sweep.  If this test ever fails, the invariant suite has gone blind.
func TestMutationSelfTest(t *testing.T) {
	const maxSeeds = 200
	for seed := int64(1); seed <= maxSeeds; seed++ {
		sc, err := Generate(Config{
			Seed:       seed,
			Technique:  "certification",
			Level:      "2-safe",
			Profile:    "storm",
			Steps:      28,
			TxnTimeout: 150 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if violations := CheckAll(rec); len(violations) > 0 {
			t.Logf("mutation caught at seed %d after %d run(s):\n%s", seed, seed, ReportViolations(violations))
			return
		}
	}
	t.Fatalf("planted 2-safe durability bug survived %d seeds — the invariant suite is blind", maxSeeds)
}
