package fuzz

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/partition"
	"groupsafe/internal/sim"
	"groupsafe/internal/storage"
	"groupsafe/internal/tuning"
)

// The runner executes a scenario against a real cluster.  The schedule is
// deterministic; the execution is not (real goroutines, real timers), so
// everything the runner records is designed to support invariants that hold
// for EVERY interleaving: a global event counter orders client
// acknowledgements against injected faults, the durable frontier is sampled
// just before each crash, and total failures (no live replica) are marked
// because they are the one point where the broadcast sequence may restart.

// TxnRec is the runner's record of one submitted transaction.
type TxnRec struct {
	// Session and StepIdx locate the originating schedule step.
	Session int
	StepIdx int
	// TxnID is the pre-assigned transaction identifier.
	TxnID uint64
	// Delegate is the replica index the request was submitted to.
	Delegate int
	// Query marks read-only requests.
	Query bool
	// Floor is the MinFreshness actually sent (0: none).
	Floor uint64
	// FloorVec is the per-partition freshness floor actually sent (nil:
	// none; partitioned runs use vector floors instead of the scalar).
	FloorVec []uint64
	// Writes is the transaction's effective write set (last write per item
	// wins, matching both the certification write set and active replication's
	// in-order execution).  Empty for queries and read-only updates.
	Writes map[int]int64
	// Acked is true when Execute returned a Result (the client was answered).
	Acked bool
	// Err is the submission error when Acked is false.
	Err error
	// The remaining fields copy the Result of an acked transaction.
	Outcome    core.Outcome
	Level      core.SafetyLevel
	DelegateID string
	Freshness  uint64
	// FreshnessVec is the per-partition freshness vector of the result
	// (partitioned runs only; global item keys in ReadValues).
	FreshnessVec []uint64
	Stale        bool
	ReadValues   map[int]int64
	// SubmitIdx and AckIdx are global event-counter stamps taken immediately
	// before submission and after the response.
	SubmitIdx uint64
	AckIdx    uint64
}

// Committed reports whether the transaction was acknowledged as committed.
func (t *TxnRec) Committed() bool { return t.Acked && t.Outcome == core.OutcomeCommitted }

// Update reports whether the transaction carries writes.
func (t *TxnRec) Update() bool { return len(t.Writes) > 0 }

// CrashEvent records one injected crash.
type CrashEvent struct {
	// Replica is the crashed replica's index.
	Replica int
	// Idx is the global event-counter stamp (taken after the crash landed).
	Idx uint64
	// DurableLSN is the replica's database-log durable frontier sampled just
	// before the crash: everything at or below it survives.
	DurableLSN uint64
	// TotalFailure is true when this crash took the last live replica down.
	TotalFailure bool
}

// FaultSummary says which destructive fault classes the schedule contained
// (computed statically from the steps; the lazy convergence invariant only
// applies to runs with none of them).
type FaultSummary struct {
	Crash     bool
	Partition bool
	Loss      bool
	Block     bool
}

// RunRecord is everything the invariant suite needs about one finished run.
type RunRecord struct {
	Scenario  *Scenario
	Level     core.SafetyLevel
	Technique core.TechniqueID
	Faults    FaultSummary
	// Partitions is the keyspace partition count (1: unpartitioned) and PMap
	// the item→partition map the router used.
	Partitions int
	PMap       partition.Map

	// Sessions holds the per-session transaction records in submission order.
	Sessions [][]*TxnRec
	// TxnByID indexes every submitted transaction.
	TxnByID map[uint64]*TxnRec
	// Crashes lists the injected crashes in injection order (rescue-phase
	// crashes included: they can lose state like any other).
	Crashes []CrashEvent
	// TotalFailures holds the event stamps of the crashes that left no live
	// replica; between two stamps the broadcast sequence is comparable.
	TotalFailures []uint64
	// EverCrashed[i] is true when replica i crashed at least once.
	EverCrashed []bool

	// Converged reports whether the final WaitConsistent succeeded;
	// ConvergeErr carries the divergence detail when it did not.
	Converged   bool
	ConvergeErr error

	// RefReplica is the index of a server that never crashed (-1 when the
	// run had none): its AppliedLog (RefLog) is a complete record of the
	// delivered total order, the reference for the one-copy replay.  RefLog
	// is only set for unpartitioned runs; partitioned runs keep the
	// reference server's per-partition logs in RefLogs (one independent
	// total order each — there is no single comparable sequence).
	RefReplica int
	RefLog     []core.AppliedRecord
	RefLogs    [][]core.AppliedRecord

	// Final state per server, collected after the rescue phase.  FinalItems
	// is the stitched global keyspace view; FinalApplied the union of the
	// per-partition applied sets.
	FinalItems   [][]storage.Item
	FinalApplied []map[uint64]bool
	FinalCrashed []bool
	// Per-partition final state, indexed [partition][server]: the store in
	// the partition's local item space, and the partition's own applied set
	// (a committed cross-partition transaction must appear in EVERY write
	// partition's set — the atomic-commit invariant).
	FinalItemsByPart   [][][]storage.Item
	FinalAppliedByPart [][]map[uint64]bool
	// AppliedLogs holds every server's harness-side applied log (the
	// observer survives simulated crashes, so for server i it records every
	// transaction any incarnation of i externalised; for partitioned runs it
	// is the concatenation of the per-partition logs).  AppliedLogsByPart
	// keeps the same logs separated per partition, indexed
	// [partition][server] — the atomic-commit check needs to know WHICH
	// partition's decide record a never-crashed server externalised.
	AppliedLogs       [][]core.AppliedRecord
	AppliedLogsByPart [][][]core.AppliedRecord
}

// faultSummary scans the schedule for destructive faults.
func faultSummary(steps []Step) FaultSummary {
	var f FaultSummary
	for _, s := range steps {
		switch s.Kind {
		case StepCrash:
			f.Crash = true
		case StepPartition:
			f.Partition = true
		case StepLoss:
			if s.Loss > 0 {
				f.Loss = true
			}
		case StepBlock:
			f.Block = true
		}
	}
	return f
}

// runnerIDBase tags fuzzer-assigned transaction IDs.  Replicas assign
// uint64(index+1)<<40 | n, so a base far above any replica index can never
// collide while keeping the IDs of timed-out submissions known to the
// harness.
const runnerIDBase = uint64(0xF5) << 40

// sessionCmd is one unit of work for a session goroutine.
type sessionCmd struct {
	step    Step
	stepIdx int
	barrier chan struct{} // non-nil: drain marker, close when reached
}

// Run executes the scenario and returns the run record.  The error return is
// reserved for harness failures (bad config, cluster startup); invariant
// violations are the checker's business, not Run's.
func Run(s *Scenario) (*RunRecord, error) {
	cfg, err := s.Cfg.resolve()
	if err != nil {
		return nil, err
	}
	tech, err := core.ParseTechnique(cfg.Technique)
	if err != nil {
		return nil, err
	}
	level, err := core.ParseLevel(cfg.Level)
	if err != nil {
		return nil, err
	}

	cluster, err := partition.New(core.ClusterConfig{
		Replicas:      cfg.Replicas,
		Items:         cfg.Items,
		Level:         level,
		Technique:     tech,
		Partitions:    cfg.Partitions,
		ExecTimeout:   cfg.TxnTimeout,
		RecordApplied: true,
		Pipeline:      pipelineFor(cfg),
		Seed:          sim.DeriveSeed(cfg.Seed, streamNetwork),
	})
	if err != nil {
		return nil, fmt.Errorf("fuzz: start cluster: %w", err)
	}
	defer cluster.Close()

	rec := &RunRecord{
		Scenario:    s,
		Level:       cluster.Level(),
		Technique:   cluster.Technique(),
		Faults:      faultSummary(s.Steps),
		Partitions:  cluster.NumPartitions(),
		PMap:        cluster.Map(),
		Sessions:    make([][]*TxnRec, cfg.Sessions),
		TxnByID:     make(map[uint64]*TxnRec),
		EverCrashed: make([]bool, cfg.Replicas),
		RefReplica:  -1,
	}

	r := &runner{
		cfg:     cfg,
		cluster: cluster,
		rec:     rec,
		crashed: make(map[int]bool),
	}
	r.drive(s.Steps)
	r.rescue()
	r.collect()
	return rec, nil
}

// pipelineFor maps the scenario's broadcast-lane knobs onto the tuning
// pipeline: Adaptive runs adaptive batching with the pipelined sequencer,
// RotateEvery adds planned sequencer rotation (which implies pipelining).
func pipelineFor(cfg Config) tuning.Pipeline {
	var p tuning.Pipeline
	if cfg.Adaptive {
		p.BatchSize = 4
		p.Mode = tuning.Adaptive
		p.Pipelined = true
	}
	if cfg.RotateEvery > 0 {
		p.RotateEvery = cfg.RotateEvery
		p.Pipelined = true
	}
	return p
}

type runner struct {
	cfg     Config
	cluster *partition.Cluster
	rec     *RunRecord

	events  atomic.Uint64 // global event counter (ack/fault ordering)
	idGen   atomic.Uint64 // transaction ID counter
	tfCount atomic.Uint64 // total failures so far (sessions reset floors on change)

	crashed map[int]bool // driver-side crash bookkeeping (driver goroutine only)

	mu sync.Mutex // guards rec.Crashes/TotalFailures/EverCrashed
}

func (r *runner) addr(i int) string { return fmt.Sprintf("s%d", i+1) }

// drive feeds the schedule: transactions go to their session goroutine's
// queue (sessions run concurrently with fault injection, which is the point),
// faults are injected inline.
func (r *runner) drive(steps []Step) {
	queues := make([]chan sessionCmd, r.cfg.Sessions)
	var wg sync.WaitGroup
	for i := range queues {
		queues[i] = make(chan sessionCmd, len(steps)+1)
		wg.Add(1)
		go func(session int, q chan sessionCmd) {
			defer wg.Done()
			r.sessionLoop(session, q)
		}(i, queues[i])
	}

	for idx, st := range steps {
		switch st.Kind {
		case StepTxn:
			queues[st.Session%r.cfg.Sessions] <- sessionCmd{step: st, stepIdx: idx}
		case StepCrash:
			r.crash(st.Replica)
		case StepRecover:
			r.recover(st.Replica)
		case StepPartition:
			r.partition(st.Group)
		case StepHeal:
			r.cluster.BaseNetwork().Heal()
		case StepDelay:
			r.cluster.BaseNetwork().SetLatency(st.Latency)
			r.cluster.BaseNetwork().SetJitter(st.Jitter)
		case StepLoss:
			r.cluster.BaseNetwork().SetLoss(st.Loss)
		case StepBlock:
			if st.From != st.To && st.From < r.cfg.Replicas && st.To < r.cfg.Replicas {
				r.cluster.BaseNetwork().BlockLink(r.addr(st.From), r.addr(st.To))
			}
		case StepUnblock:
			r.cluster.BaseNetwork().UnblockAllLinks()
		case StepSleep:
			time.Sleep(st.Dur)
		case StepBarrier:
			r.barrier(queues)
		}
	}
	for _, q := range queues {
		close(q)
	}
	wg.Wait()
}

// barrier waits until every session drained its queue.
func (r *runner) barrier(queues []chan sessionCmd) {
	done := make([]chan struct{}, len(queues))
	for i, q := range queues {
		done[i] = make(chan struct{})
		q <- sessionCmd{barrier: done[i]}
	}
	for _, ch := range done {
		<-ch
	}
}

// crash injects a crash of server i (replica i of every partition goes down
// together).  Ill-formed schedules (the shrinker produces them) are tolerated:
// crashing a crashed server is a no-op.
func (r *runner) crash(i int) {
	if i < 0 || i >= r.cfg.Replicas || r.crashed[i] {
		return
	}
	lsn := r.cluster.DurableLSN(i)
	r.cluster.Crash(i)
	r.crashed[i] = true
	total := r.cluster.LiveCount() == 0
	idx := r.events.Add(1)
	if total {
		r.tfCount.Add(1)
	}

	r.mu.Lock()
	r.rec.Crashes = append(r.rec.Crashes, CrashEvent{Replica: i, Idx: idx, DurableLSN: lsn, TotalFailure: total})
	if total {
		r.rec.TotalFailures = append(r.rec.TotalFailures, idx)
	}
	r.rec.EverCrashed[i] = true
	r.mu.Unlock()

	// The crash model has no failure detectors in the fuzzer (their timers
	// would fight the schedule); the driver plays the detector's role so the
	// broadcast does not wait forever for a dead member.
	for j := 0; j < r.cfg.Replicas; j++ {
		if j != i && !r.crashed[j] {
			r.cluster.Suspect(j, i)
		}
	}
}

// recover injects a recovery of replica i (no-op when it is not crashed).
func (r *runner) recover(i int) {
	if i < 0 || i >= r.cfg.Replicas || !r.crashed[i] {
		return
	}
	if _, err := r.cluster.Recover(i); err != nil {
		return // still crashed; leave the bookkeeping as is
	}
	delete(r.crashed, i)
	// Reconciliation of the suspicion bookkeeping: the survivors take the
	// recovered replica back, and its fresh incarnation learns who is dead.
	for j := 0; j < r.cfg.Replicas; j++ {
		if j == i {
			continue
		}
		if r.crashed[j] {
			r.cluster.Suspect(i, j)
		} else {
			r.cluster.Unsuspect(j, i)
		}
	}
}

func (r *runner) partition(group []int) {
	inGroup := make(map[int]bool, len(group))
	var a, b []string
	for _, g := range group {
		if g >= 0 && g < r.cfg.Replicas && !inGroup[g] {
			inGroup[g] = true
			a = append(a, r.addr(g))
		}
	}
	for i := 0; i < r.cfg.Replicas; i++ {
		if !inGroup[i] {
			b = append(b, r.addr(i))
		}
	}
	if len(a) == 0 || len(b) == 0 {
		return
	}
	r.cluster.BaseNetwork().Partition(a, b)
}

// sessionLoop is one client session: it executes its transactions strictly in
// order and maintains the session freshness floor (largest token seen, reset
// when a total failure may have restarted the sequence).  Partitioned runs
// track one floor per partition — the partitions' total orders are independent
// sequences, so a scalar floor (which floorFor applies to EVERY touched
// partition) could demand a token a short partition order never reaches.
func (r *runner) sessionLoop(session int, q chan sessionCmd) {
	var recs []*TxnRec
	var maxFresh uint64
	var tfSeen uint64
	useFloors := r.rec.Level.UsesGroupCommunication()
	parts := r.rec.Partitions
	var maxVec []uint64
	if parts > 1 {
		maxVec = make([]uint64, parts)
	}

	for cmd := range q {
		if cmd.barrier != nil {
			close(cmd.barrier)
			continue
		}
		st := cmd.step
		if tf := r.tfCount.Load(); tf != tfSeen {
			// A total failure may restart the broadcast sequence; the old
			// floor could be unreachable forever.
			tfSeen = tf
			maxFresh = 0
			for p := range maxVec {
				maxVec[p] = 0
			}
		}

		t := &TxnRec{
			Session:  session,
			StepIdx:  cmd.stepIdx,
			TxnID:    runnerIDBase | r.idGen.Add(1),
			Delegate: st.Delegate % r.cfg.Replicas,
			Query:    st.Query,
			Writes:   make(map[int]int64),
		}
		req := core.Request{ID: t.TxnID, Ops: st.Ops, ReadOnly: st.Query}
		for _, op := range st.Ops {
			if op.Write {
				t.Writes[op.Item] = op.Value
			}
		}
		if st.Query && st.Floor && useFloors {
			if parts > 1 {
				if vecAnyPositive(maxVec) {
					t.FloorVec = append([]uint64(nil), maxVec...)
					req.MinFreshnessVec = append([]uint64(nil), maxVec...)
				}
			} else if maxFresh > 0 {
				t.Floor = maxFresh
				req.MinFreshness = maxFresh
			}
		}

		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.TxnTimeout)
		t.SubmitIdx = r.events.Add(1)
		res, err := r.cluster.Execute(ctx, t.Delegate, req)
		cancel()
		t.AckIdx = r.events.Add(1)
		if err != nil {
			t.Err = err
		} else {
			t.Acked = true
			t.Outcome = res.Outcome
			t.Level = res.Level
			t.DelegateID = res.Delegate
			t.Freshness = res.Freshness
			t.FreshnessVec = res.FreshnessVec
			t.Stale = res.Stale
			t.ReadValues = res.ReadValues
			if res.Freshness > maxFresh {
				maxFresh = res.Freshness
			}
			for p, f := range res.FreshnessVec {
				if p < len(maxVec) && f > maxVec[p] {
					maxVec[p] = f
				}
			}
		}
		recs = append(recs, t)
	}

	r.mu.Lock()
	r.rec.Sessions[session] = recs
	for _, t := range recs {
		r.rec.TxnByID[t.TxnID] = t
	}
	r.mu.Unlock()
}

// rescue heals every fault, recovers every crashed replica (most durable
// first, so the first recovery — the one with no live donor after a total
// failure — starts from the longest durable log) and drives the cluster to
// convergence.  For the group-communication techniques a replica stranded
// behind a dropped message cannot catch up by waiting (the transport has no
// retransmission), so non-convergence is repaired the way the paper's
// checkpoint recovery does: crash and recover the stragglers, which pulls a
// state snapshot from the most advanced peer.
func (r *runner) rescue() {
	net := r.cluster.BaseNetwork()
	net.Heal()
	net.UnblockAllLinks()
	net.SetLatency(0)
	net.SetJitter(0)
	net.SetLoss(0)
	// Let in-flight delayed deliveries land before state transfer starts.
	time.Sleep(20 * time.Millisecond)

	for len(r.crashed) > 0 {
		best, bestLSN := -1, uint64(0)
		for i := range r.crashed {
			if lsn := r.cluster.DurableLSN(i); best == -1 || lsn > bestLSN {
				best, bestLSN = i, lsn
			}
		}
		r.recover(best)
		if r.crashed[best] {
			delete(r.crashed, best) // recovery failed; don't loop forever
		}
	}
	r.resolveInDoubt()

	groupComm := r.rec.Technique != core.TechLazyPrimary && r.rec.Level.UsesGroupCommunication()
	deadline := 1500 * time.Millisecond
	for round := 0; ; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		err := r.cluster.WaitConsistent(ctx)
		cancel()
		if err == nil {
			r.rec.Converged = true
			r.rec.ConvergeErr = nil
			return
		}
		r.rec.ConvergeErr = err
		if !groupComm || round >= 2 {
			return
		}
		// Straggler repair: cycle every replica through checkpoint recovery;
		// each pulls state from the currently most advanced live peer.
		for i := 0; i < r.cfg.Replicas; i++ {
			r.crash(i)
			r.recover(i)
		}
		r.resolveInDoubt()
		time.Sleep(10 * time.Millisecond)
		deadline = 2500 * time.Millisecond
	}
}

// resolveInDoubt settles orphaned cross-partition prepares (the coordinator's
// client died mid-2PC): presumed abort asks each coordinator partition for the
// authoritative decision and propagates it, releasing the certification locks
// that would otherwise abort every conflicting transaction forever.  A real
// deployment runs this resolver periodically; the rescue phase runs it once
// after recovery (and once per straggler-repair round, which can replay a
// prepare from a donor's snapshot).
func (r *runner) resolveInDoubt() {
	if r.rec.Partitions <= 1 {
		return
	}
	// A round can miss (the bounded context expires under a long in-doubt
	// backlog); retry a few times — each round gets a fresh budget and the
	// backlog only shrinks.
	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		n, err := r.cluster.ResolveInDoubt(ctx)
		cancel()
		if n == 0 && err == nil {
			return
		}
	}
}

// collect gathers the final state and the reference logs: per-partition state
// as the partitions hold it, plus the stitched global view (FinalItems in
// global item order, FinalApplied as the union) the scalar invariants consume.
func (r *runner) collect() {
	rec := r.rec
	parts := rec.Partitions
	rec.FinalItems = make([][]storage.Item, r.cfg.Replicas)
	rec.FinalApplied = make([]map[uint64]bool, r.cfg.Replicas)
	rec.FinalCrashed = make([]bool, r.cfg.Replicas)
	rec.AppliedLogs = make([][]core.AppliedRecord, r.cfg.Replicas)
	rec.FinalItemsByPart = make([][][]storage.Item, parts)
	rec.FinalAppliedByPart = make([][]map[uint64]bool, parts)
	rec.AppliedLogsByPart = make([][][]core.AppliedRecord, parts)
	for p := 0; p < parts; p++ {
		rec.FinalItemsByPart[p] = make([][]storage.Item, r.cfg.Replicas)
		rec.FinalAppliedByPart[p] = make([]map[uint64]bool, r.cfg.Replicas)
		rec.AppliedLogsByPart[p] = make([][]core.AppliedRecord, r.cfg.Replicas)
	}

	for i := 0; i < r.cfg.Replicas; i++ {
		rec.FinalCrashed[i] = r.cluster.ReplicaCrashed(i)
		global := make([]storage.Item, rec.PMap.Items())
		union := make(map[uint64]bool)
		for p := 0; p < parts; p++ {
			rep := r.cluster.Part(p).Replica(i)
			items := rep.StoreItems()
			rec.FinalItemsByPart[p][i] = items
			for local, it := range items {
				if g := rec.PMap.Global(p, local); g < len(global) {
					global[g] = it
				}
			}
			pApplied := make(map[uint64]bool)
			for _, id := range rep.DB().AppliedTxns() {
				pApplied[id] = true
				union[id] = true
			}
			rec.FinalAppliedByPart[p][i] = pApplied
			rec.AppliedLogsByPart[p][i] = rep.AppliedLog()
			rec.AppliedLogs[i] = append(rec.AppliedLogs[i], rec.AppliedLogsByPart[p][i]...)
		}
		rec.FinalItems[i] = global
		rec.FinalApplied[i] = union
		if !rec.EverCrashed[i] && rec.RefReplica == -1 {
			rec.RefReplica = i
		}
	}
	if rec.RefReplica >= 0 {
		if parts == 1 {
			rec.RefLog = rec.AppliedLogs[rec.RefReplica]
		} else {
			rec.RefLogs = make([][]core.AppliedRecord, parts)
			for p := 0; p < parts; p++ {
				rec.RefLogs[p] = r.cluster.Part(p).Replica(rec.RefReplica).AppliedLog()
			}
		}
	}
}

// vecAnyPositive reports whether any entry of a freshness vector is set.
func vecAnyPositive(vec []uint64) bool {
	for _, v := range vec {
		if v > 0 {
			return true
		}
	}
	return false
}
