package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The corpus is a directory of marshalled traces (corpus/*.trace).  Each file
// is a complete, self-contained scenario: replaying it needs no seed
// bookkeeping beyond the file itself.  Traces found by a fuzz sweep are
// written with WriteTrace; committed corpus entries replay as ordinary
// regression cases in TestCorpusReplay.

// TraceExt is the corpus file extension.
const TraceExt = ".trace"

// WriteTrace writes the scenario's canonical trace to path.
func WriteTrace(path string, sc *Scenario) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("fuzz: write trace: %w", err)
	}
	return os.WriteFile(path, sc.Marshal(), 0o644)
}

// ReadTrace parses the trace file at path.
func ReadTrace(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fuzz: read trace: %w", err)
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("fuzz: %s: %w", path, err)
	}
	return sc, nil
}

// CorpusTraces lists the trace files under dir, sorted by name.
func CorpusTraces(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), TraceExt) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}
