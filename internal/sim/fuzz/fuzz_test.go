//go:build !simmutation

package fuzz

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// sweepConfig is the PR-sized sweep shape: short transactions keep a fully
// partitioned or crashed cluster from stretching the run, and 36 steps are
// enough for several fault/heal cycles.
func sweepConfig(seed int64) Config {
	return Config{Seed: seed, Steps: 36, TxnTimeout: 150 * time.Millisecond}
}

// checkRun runs one scenario through the invariant suite; on a violation it
// shrinks the schedule and writes a replayable trace artifact before failing
// the test with the seed.
func checkRun(t *testing.T, sc *Scenario) {
	t.Helper()
	t.Logf("fuzz: seed=%d technique=%s level=%s replicas=%d profile=%s",
		sc.Cfg.Seed, sc.Cfg.Technique, sc.Cfg.Level, sc.Cfg.Replicas, sc.Cfg.Profile)
	rec, err := Run(sc)
	if err != nil {
		t.Fatalf("seed %d: run: %v", sc.Cfg.Seed, err)
	}
	violations := CheckAll(rec)
	if len(violations) == 0 {
		return
	}
	res := Shrink(sc, violations, 24)
	path := failureArtifact(t, res.Scenario)
	t.Fatalf("seed %d: %d invariant violation(s):\n%sminimised to %d steps (%d shrink runs), replayable trace: %s",
		sc.Cfg.Seed, len(violations), ReportViolations(res.Violations), len(res.Scenario.Steps), res.Runs, path)
}

// failureArtifact writes a failing trace where CI can pick it up
// ($FUZZ_ARTIFACT_DIR, or the system temp directory).
func failureArtifact(t *testing.T, sc *Scenario) string {
	t.Helper()
	dir := os.Getenv("FUZZ_ARTIFACT_DIR")
	if dir == "" {
		dir = os.TempDir()
	}
	path := filepath.Join(dir, fmt.Sprintf("fuzz-failure-seed%d%s", sc.Cfg.Seed, TraceExt))
	if err := WriteTrace(path, sc); err != nil {
		t.Logf("could not write failure trace: %v", err)
		return "(trace write failed)"
	}
	return path
}

// TestFuzzSweep runs a small seed sweep with fully derived configurations —
// the PR-gate slice of the nightly sweep.  FUZZ_SEED_START/FUZZ_SEED_COUNT
// widen it without a code change.
func TestFuzzSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep skipped in -short mode")
	}
	start, count := int64(1), int64(4)
	if v := os.Getenv("FUZZ_SEED_START"); v != "" {
		fmt.Sscanf(v, "%d", &start)
	}
	if v := os.Getenv("FUZZ_SEED_COUNT"); v != "" {
		fmt.Sscanf(v, "%d", &count)
	}
	for seed := start; seed < start+count; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc, err := Generate(sweepConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			checkRun(t, sc)
		})
	}
}

// TestFuzzPinned pins one configuration per technique family so every
// replication path is exercised on every test run regardless of what the
// derived sweep drew.
func TestFuzzPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep skipped in -short mode")
	}
	cases := []struct {
		technique, level, profile string
		seed                      int64
		adaptive                  bool
		rotateEvery               int
		partitions                int
	}{
		{"certification", "group-safe", "mixed", 11, false, 0, 0},
		{"certification", "2-safe", "storm", 12, false, 0, 0},
		{"certification", "very-safe", "partition", 13, false, 0, 0},
		{"active", "group-safe", "mixed", 14, false, 0, 0},
		{"lazy-primary", "", "mixed", 15, false, 0, 0},
		// The broadcast hot-path variants: adaptive batching + pipelined
		// sequencer under the certification technique, planned sequencer
		// rotation under active replication.  Same invariant suite — the
		// ordering optimisations must be invisible to safety.
		{"certification", "group-safe", "mixed", 16, true, 0, 0},
		{"active", "group-safe", "storm", 17, false, 6, 0},
		// The partitioned keyspace: cross-partition 2PC under the full fault
		// mix (crashes hit every co-located partition replica at once), at a
		// group-safe level where the coordinator's decide record can die with
		// its holders, and at 2-safe where atomicity has no excuse.
		{"certification", "group-safe", "sharded", 18, false, 0, 2},
		{"certification", "2-safe", "sharded", 19, false, 0, 3},
		// The read scale-out sweep: floored queries dominate while crashes
		// and recoveries move the session routing between replicas — the
		// session-routing invariant (tokens never travel backwards) bites.
		{"certification", "group-safe", "readheavy", 20, false, 0, 0},
	}
	for _, c := range cases {
		c := c
		name := c.technique + "-" + c.level + "-" + c.profile
		if c.adaptive {
			name += "-adaptive"
		}
		if c.rotateEvery > 0 {
			name += "-rotating"
		}
		if c.partitions > 0 {
			name += fmt.Sprintf("-p%d", c.partitions)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := sweepConfig(c.seed)
			cfg.Technique, cfg.Level, cfg.Profile = c.technique, c.level, c.profile
			cfg.Adaptive, cfg.RotateEvery = c.adaptive, c.rotateEvery
			cfg.Partitions = c.partitions
			sc, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkRun(t, sc)
		})
	}
}

// TestTraceHotPathHeaderRoundTrip pins the trace codec for the new header
// lines: they are emitted only when non-default (so committed corpus traces
// keep their exact bytes) and survive a marshal/parse/marshal cycle.
func TestTraceHotPathHeaderRoundTrip(t *testing.T) {
	cfg := sweepConfig(31)
	cfg.Adaptive, cfg.RotateEvery = true, 5
	sc, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := sc.Marshal()
	if !bytes.Contains(data, []byte("adaptive true\n")) || !bytes.Contains(data, []byte("rotate-every 5\n")) {
		t.Fatalf("hot-path header lines missing from trace:\n%s", data[:200])
	}
	parsed, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Cfg.Adaptive || parsed.Cfg.RotateEvery != 5 {
		t.Fatalf("parsed config lost the hot-path knobs: %+v", parsed.Cfg)
	}
	if !bytes.Equal(parsed.Marshal(), data) {
		t.Fatal("marshal/parse/marshal is not byte-stable with hot-path headers")
	}

	// Default knobs must not add header lines (corpus byte-stability).
	plain, err := Generate(sweepConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain.Marshal(), []byte("adaptive")) || bytes.Contains(plain.Marshal(), []byte("rotate-every")) {
		t.Fatal("default config leaked hot-path header lines into the trace")
	}
}

// TestTracePartitionsHeaderRoundTrip pins the trace codec for the partitioned
// keyspace: the partitions header is emitted only when >1 (committed
// unpartitioned corpus traces keep their exact bytes) and survives a
// marshal/parse/marshal cycle.
func TestTracePartitionsHeaderRoundTrip(t *testing.T) {
	cfg := sweepConfig(32)
	cfg.Profile = "sharded"
	sc, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cfg.Partitions < 2 {
		t.Fatalf("sharded profile derived %d partitions, want >= 2", sc.Cfg.Partitions)
	}
	data := sc.Marshal()
	if !bytes.Contains(data, []byte(fmt.Sprintf("partitions %d\n", sc.Cfg.Partitions))) {
		t.Fatalf("partitions header line missing from trace:\n%s", data[:200])
	}
	parsed, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Cfg.Partitions != sc.Cfg.Partitions {
		t.Fatalf("parsed config lost the partition count: %+v", parsed.Cfg)
	}
	if !bytes.Equal(parsed.Marshal(), data) {
		t.Fatal("marshal/parse/marshal is not byte-stable with the partitions header")
	}

	// Unpartitioned configs must not add the header line (corpus stability).
	plain, err := Generate(sweepConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain.Marshal(), []byte("partitions")) {
		t.Fatal("unpartitioned config leaked a partitions header line into the trace")
	}
}

// TestSessionRoutingInvariant exercises the checker on synthetic records: a
// floored read travelling backwards is flagged, equal tokens and unfloored
// dips are legal, total-failure runs are skipped, and the partitioned
// comparison only bites where both queries actually read the partition.
func TestSessionRoutingInvariant(t *testing.T) {
	mk := func(floor, fresh uint64) *TxnRec {
		return &TxnRec{Query: true, Acked: true, Floor: floor, Freshness: fresh}
	}
	check := func(rec *RunRecord) []Violation {
		var out []Violation
		checkSessionRouting(rec, &out)
		return out
	}
	bad := &RunRecord{Partitions: 1, Sessions: [][]*TxnRec{{mk(1, 5), mk(5, 5), mk(5, 3)}}}
	if out := check(bad); len(out) != 1 || out[0].Invariant != "session-routing" {
		t.Fatalf("backwards floored read not flagged: %v", out)
	}
	// An unfloored query may legally dip — it accepts any snapshot.
	ok := &RunRecord{Partitions: 1, Sessions: [][]*TxnRec{
		{mk(1, 5), {Query: true, Acked: true, Freshness: 2}, mk(5, 5)},
	}}
	if out := check(ok); len(out) != 0 {
		t.Fatalf("legal run flagged: %v", out)
	}
	// Across a total failure the sequence may restart: skipped, not guessed.
	tf := &RunRecord{Partitions: 1, TotalFailures: []uint64{9},
		Sessions: [][]*TxnRec{{mk(1, 5), mk(5, 3)}}}
	if out := check(tf); len(out) != 0 {
		t.Fatalf("total-failure run not skipped: %v", out)
	}
	// Partitioned: disjoint reads say nothing, a shared partition moving
	// backwards is a violation.
	mkv := func(vec ...uint64) *TxnRec {
		return &TxnRec{Query: true, Acked: true, FloorVec: []uint64{1}, FreshnessVec: vec}
	}
	disjoint := &RunRecord{Partitions: 2, Sessions: [][]*TxnRec{{mkv(5, 0), mkv(0, 7)}}}
	if out := check(disjoint); len(out) != 0 {
		t.Fatalf("disjoint partitioned reads flagged: %v", out)
	}
	shared := &RunRecord{Partitions: 2, Sessions: [][]*TxnRec{{mkv(5, 0), mkv(3, 7)}}}
	if out := check(shared); len(out) != 1 {
		t.Fatalf("backwards partitioned read not flagged: %v", out)
	}
}

// TestLazyCalmConvergence: on a fault-free schedule the lazy primary-copy
// propagation must drain to identical replicas — the convergence invariant is
// asserted, not just tolerated, on this path.
func TestLazyCalmConvergence(t *testing.T) {
	cfg := sweepConfig(21)
	cfg.Technique, cfg.Profile = "lazy-primary", "calm"
	sc, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckAll(rec); len(v) > 0 {
		t.Fatalf("invariant violations on calm lazy run:\n%s", ReportViolations(v))
	}
	if !rec.Converged {
		t.Fatalf("calm lazy run did not converge: %v", rec.ConvergeErr)
	}
}

// TestCorpusReplay replays every committed trace as a regression case: the
// trace must regenerate byte-identically from its seed (the determinism
// contract, end to end) and the run must satisfy every invariant.
func TestCorpusReplay(t *testing.T) {
	traces, err := CorpusTraces("corpus")
	if err != nil {
		t.Fatalf("corpus directory: %v", err)
	}
	if len(traces) == 0 {
		t.Fatal("corpus is empty — the regression net is gone")
	}
	for _, path := range traces {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			sc, err := ReadTrace(path)
			if err != nil {
				t.Fatal(err)
			}
			if sc.Generated {
				regen, err := Generate(sc.Cfg)
				if err != nil {
					t.Fatalf("regenerate: %v", err)
				}
				if !bytes.Equal(regen.Marshal(), sc.Marshal()) {
					t.Fatalf("%s does not regenerate byte-identically from seed %d — the generator drifted; regenerate the corpus deliberately or fix the drift", path, sc.Cfg.Seed)
				}
			}
			checkRun(t, sc)
		})
	}
}
