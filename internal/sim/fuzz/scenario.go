package fuzz

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/sim"
	"groupsafe/internal/workload"
)

// Config parameterises one fuzz run.  Zero values are derived from the seed
// (cluster shape) or defaulted (sizes, timeouts), so the common caller passes
// nothing but a seed; pinning Technique/Level narrows a sweep onto one
// configuration (the mutation self-test pins certification at 2-safe).
type Config struct {
	// Seed is the single 64-bit root of the run: cluster shape, workload and
	// adversary schedule are all pure functions of it.
	Seed int64
	// Technique pins the replication technique by name ("certification",
	// "active", "lazy-primary"); empty derives it from the seed.
	Technique string
	// Level pins the safety level by name (core.ParseLevel); empty derives a
	// level admissible for the technique from the seed.
	Level string
	// Replicas is the cluster size (0: derived, 3–5).
	Replicas int
	// Items is the database size (0: 48; small on purpose — conflicts and
	// convergence checks need collisions, not realism).
	Items int
	// Sessions is the number of concurrent client sessions (0: 3).
	Sessions int
	// Steps is the length of the generated schedule (0: 48).
	Steps int
	// Profile shapes the adversary mix: "mixed" (default), "storm"
	// (crash-recover heavy, always ends in a total-failure storm),
	// "partition" (split-brain heavy), "calm" (delay/sleep only — every
	// message still arrives, which is what the lazy convergence invariant
	// needs), "sharded" (the mixed fault mix over a PARTITIONED keyspace:
	// Partitions derives to >1, pinning the certification technique and a
	// group-communication level, so cross-partition 2PC runs under fire) or
	// "readheavy" (query-dominated with session freshness floors under
	// crash/recover churn — the read scale-out sweep; the technique and
	// level draws are constrained to group-communication configurations so
	// the floors, and the session-routing invariant, are meaningful).
	Profile string
	// TxnTimeout bounds each transaction submission (0: 300ms).  Scenario
	// generation does not depend on it, so tests may stretch it without
	// changing the trace... except that it is part of the marshalled header,
	// so corpus entries replay with the timeout they were found under.
	TxnTimeout time.Duration
	// Adaptive runs the cluster's broadcast lane in adaptive-batching +
	// pipelined-sequencer mode (default fixed/unbatched).  Marshalled only
	// when set, so pre-existing corpus traces keep their exact bytes.
	Adaptive bool
	// RotateEvery enables planned sequencer rotation after that many
	// assignments (0: fixed sequencer).  Marshalled only when non-zero.
	RotateEvery int
	// Partitions splits the keyspace into that many hash partitions routed
	// through internal/partition (0 or 1: unpartitioned, today's exact code
	// path).  More than one partition requires the certification technique
	// and a group-communication level; the "sharded" profile derives a count
	// from the seed.  Marshalled only when > 1, so pre-existing corpus
	// traces keep their exact bytes.
	Partitions int
}

// Profiles lists the supported adversary profiles.
func Profiles() []string {
	return []string{"mixed", "storm", "partition", "calm", "sharded", "readheavy"}
}

// resolve fills defaults and derives the free cluster parameters from the
// seed.  The returned config is fully concrete: resolving it again is the
// identity, which is what makes a marshalled trace self-contained.
func (c Config) resolve() (Config, error) {
	if c.Items == 0 {
		c.Items = 48
	}
	if c.Sessions == 0 {
		c.Sessions = 3
	}
	if c.Steps == 0 {
		c.Steps = 48
	}
	if c.Profile == "" {
		c.Profile = "mixed"
	}
	if c.TxnTimeout == 0 {
		c.TxnTimeout = 300 * time.Millisecond
	}
	okProfile := false
	for _, p := range Profiles() {
		if p == c.Profile {
			okProfile = true
		}
	}
	if !okProfile {
		return c, fmt.Errorf("fuzz: unknown profile %q (want one of %v)", c.Profile, Profiles())
	}
	// Cluster-shape derivation consumes its own random stream, so pinning a
	// field never shifts the draws of the others.
	if c.Replicas == 0 {
		rng := rand.New(rand.NewSource(sim.DeriveSeed(c.Seed, streamReplicas)))
		c.Replicas = 3 + rng.Intn(3)
	}
	// The sharded profile is the partitioned-keyspace sweep: the partition
	// count derives from its own stream, and the technique/level draws are
	// constrained to what partitioned operation supports.
	if c.Profile == "sharded" {
		if c.Technique == "" {
			c.Technique = core.TechCertification.String()
		}
		if c.Partitions == 0 {
			rng := rand.New(rand.NewSource(sim.DeriveSeed(c.Seed, streamPartitions)))
			c.Partitions = 2 + rng.Intn(2)
		}
	}
	if c.Partitions < 1 {
		c.Partitions = 1
	}
	// The readheavy profile is the read scale-out sweep: floored queries are
	// only meaningful on a totally-ordered cross-replica sequence, so the
	// technique draw is constrained to the group-communication techniques
	// (the level draw below is constrained to match).
	if c.Profile == "readheavy" && c.Technique == "" {
		rng := rand.New(rand.NewSource(sim.DeriveSeed(c.Seed, streamTechnique)))
		if rng.Intn(3) == 2 {
			c.Technique = core.TechActive.String()
		} else {
			c.Technique = core.TechCertification.String()
		}
	}
	if c.Technique == "" {
		rng := rand.New(rand.NewSource(sim.DeriveSeed(c.Seed, streamTechnique)))
		switch rng.Intn(4) {
		case 0, 1:
			c.Technique = core.TechCertification.String()
		case 2:
			c.Technique = core.TechActive.String()
		default:
			c.Technique = core.TechLazyPrimary.String()
		}
	}
	tech, err := core.ParseTechnique(c.Technique)
	if err != nil {
		return c, err
	}
	if c.Level == "" {
		rng := rand.New(rand.NewSource(sim.DeriveSeed(c.Seed, streamLevel)))
		switch {
		case c.Partitions > 1:
			c.Level = pick(rng, []core.SafetyLevel{
				core.GroupSafe, core.GroupSafe, core.GroupSafe,
				core.Group1Safe, core.Group1Safe,
				core.Safety2, core.Safety2,
				core.VerySafe,
			}).String()
		case c.Profile == "readheavy" && tech != core.TechLazyPrimary:
			c.Level = pick(rng, []core.SafetyLevel{
				core.GroupSafe, core.GroupSafe, core.GroupSafe,
				core.Group1Safe,
				core.Safety2,
				core.VerySafe,
			}).String()
		case tech == core.TechActive:
			c.Level = pick(rng, []core.SafetyLevel{core.GroupSafe, core.GroupSafe, core.Group1Safe, core.Safety2, core.Safety2, core.VerySafe}).String()
		case tech == core.TechLazyPrimary:
			c.Level = core.Safety1Lazy.String()
		default:
			c.Level = pick(rng, []core.SafetyLevel{
				core.GroupSafe, core.GroupSafe, core.GroupSafe,
				core.Group1Safe, core.Group1Safe,
				core.Safety2, core.Safety2,
				core.VerySafe,
				core.Safety0, core.Safety1Lazy,
			}).String()
		}
	}
	level, err := core.ParseLevel(c.Level)
	if err != nil {
		return c, err
	}
	if level, err = core.CanonicalLevel(tech, level); err != nil {
		return c, err
	}
	c.Level = level.String()
	if c.Partitions > 1 {
		if tech != core.TechCertification {
			return c, fmt.Errorf("fuzz: %d partitions require the certification technique (got %s)", c.Partitions, c.Technique)
		}
		if !level.UsesGroupCommunication() {
			return c, fmt.Errorf("fuzz: %d partitions require a group-communication level (got %s)", c.Partitions, c.Level)
		}
	}
	return c, nil
}

func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// Random stream labels for sim.DeriveSeed: each consumer of the root seed
// gets its own decorrelated child stream.
const (
	streamReplicas uint64 = iota + 1
	streamTechnique
	streamLevel
	streamSteps
	streamNetwork
	streamPartitions
)

// StepKind enumerates the adversary schedule's step types.
type StepKind int

const (
	// StepTxn submits one transaction on a session.
	StepTxn StepKind = iota
	// StepCrash crashes a replica (volatile state lost).
	StepCrash
	// StepRecover recovers a crashed replica (state transfer from the most
	// advanced live donor, plus end-to-end replay where configured).
	StepRecover
	// StepPartition splits the network: Group on one side, the rest on the
	// other.
	StepPartition
	// StepHeal removes any partition.
	StepHeal
	// StepDelay retunes the network's latency and jitter.
	StepDelay
	// StepLoss retunes the network's message-loss probability.
	StepLoss
	// StepBlock blocks the one-way link From→To.
	StepBlock
	// StepUnblock removes every one-way link block.
	StepUnblock
	// StepSleep lets the cluster run undisturbed for Dur.
	StepSleep
	// StepBarrier waits until every session has drained its queued
	// transactions (the storm profile synchronises on it before a total
	// failure, so the set of acknowledged transactions is stable).
	StepBarrier
)

// Step is one entry of the adversary schedule.  Which fields are meaningful
// depends on Kind; see the StepKind constants.
type Step struct {
	Kind     StepKind
	Session  int
	Delegate int
	Query    bool
	Floor    bool
	Ops      []workload.Op
	Replica  int
	Group    []int
	Latency  time.Duration
	Jitter   time.Duration
	Loss     float64
	From, To int
	Dur      time.Duration
}

// Scenario is a fully resolved run description: a concrete config plus the
// adversary schedule.  Generated marks schedules that came verbatim from
// Generate(Cfg) — for those, Marshal output is a pure function of Cfg.Seed
// and the corpus replay test asserts byte-identical regeneration.
type Scenario struct {
	Cfg       Config
	Generated bool
	Steps     []Step
}

// Generate expands a config into its scenario.  Everything is drawn from
// random streams derived from cfg.Seed, so the result is a pure function of
// the (resolved) config.
func Generate(cfg Config) (*Scenario, error) {
	cfg, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	g := &stepGen{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(sim.DeriveSeed(cfg.Seed, streamSteps))),
		crashed: make(map[int]bool),
	}
	g.lazy = cfg.Technique == core.TechLazyPrimary.String()
	steps := make([]Step, 0, cfg.Steps+16)
	for len(steps) < cfg.Steps {
		steps = append(steps, g.next())
	}
	// The storm profile always ends in a drained total-failure storm (and
	// the mixed profile sometimes does): every live replica crashes after a
	// barrier stabilised the acknowledged set, then everything recovers and
	// a few more transactions exercise the rebuilt cluster.
	storm := cfg.Profile == "storm" || (cfg.Profile == "mixed" && g.rng.Float64() < 0.3)
	if storm {
		steps = append(steps, Step{Kind: StepBarrier})
		for i := 0; i < cfg.Replicas; i++ {
			if !g.crashed[i] {
				steps = append(steps, Step{Kind: StepCrash, Replica: i})
				g.crashed[i] = true
			}
		}
		steps = append(steps, Step{Kind: StepSleep, Dur: 5 * time.Millisecond})
		for i := 0; i < cfg.Replicas; i++ {
			steps = append(steps, Step{Kind: StepRecover, Replica: i})
			delete(g.crashed, i)
		}
		for i := 0; i < 4; i++ {
			steps = append(steps, g.txnStep())
		}
	}
	return &Scenario{Cfg: cfg, Generated: true, Steps: steps}, nil
}

// stepGen tracks a model of the cluster while drawing steps, so the schedule
// stays well-formed (recover only what crashed, heal only open partitions,
// keep a quorum alive outside deliberate total failures).
type stepGen struct {
	cfg         Config
	rng         *rand.Rand
	lazy        bool
	crashed     map[int]bool
	partitioned bool
	blocks      int
	delayed     bool
	lossy       bool
}

func (g *stepGen) next() Step {
	txnProb := map[string]float64{"mixed": 0.72, "storm": 0.58, "partition": 0.66, "calm": 0.9, "sharded": 0.72, "readheavy": 0.86}[g.cfg.Profile]
	if g.rng.Float64() < txnProb {
		return g.txnStep()
	}
	return g.faultStep()
}

func (g *stepGen) txnStep() Step {
	// The readheavy profile inverts the mix: queries dominate and almost all
	// of them carry the session floor, so the schedule keeps exercising the
	// freshness-aware routing (a few updates remain to move the tokens).
	queryProb, floorProb := 0.35, 0.6
	if g.cfg.Profile == "readheavy" {
		queryProb, floorProb = 0.82, 0.88
	}
	s := Step{
		Kind:     StepTxn,
		Session:  g.rng.Intn(g.cfg.Sessions),
		Delegate: g.rng.Intn(g.cfg.Replicas),
		Query:    g.rng.Float64() < queryProb,
	}
	if s.Query {
		s.Floor = g.rng.Float64() < floorProb
		n := 1 + g.rng.Intn(3)
		for i := 0; i < n; i++ {
			s.Ops = append(s.Ops, workload.Op{Item: g.rng.Intn(g.cfg.Items)})
		}
		return s
	}
	n := 1 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		op := workload.Op{Item: g.rng.Intn(g.cfg.Items)}
		if g.rng.Float64() < 0.7 {
			op.Write = true
			op.Value = int64(g.rng.Intn(1 << 16))
		}
		s.Ops = append(s.Ops, op)
	}
	return s
}

// faultWeights returns the per-profile fault mix as (kind, weight) pairs.
func (g *stepGen) faultWeights() ([]StepKind, []float64) {
	switch g.cfg.Profile {
	case "storm":
		return []StepKind{StepCrash, StepRecover, StepSleep, StepDelay, StepPartition, StepHeal},
			[]float64{0.42, 0.30, 0.10, 0.08, 0.05, 0.05}
	case "partition":
		return []StepKind{StepPartition, StepHeal, StepBlock, StepUnblock, StepCrash, StepRecover, StepDelay, StepSleep},
			[]float64{0.28, 0.20, 0.14, 0.10, 0.08, 0.08, 0.06, 0.06}
	case "calm":
		return []StepKind{StepDelay, StepSleep}, []float64{0.5, 0.5}
	case "readheavy":
		// Crash/recover churn moves the session routing between replicas
		// mid-stream (the interesting case for token monotonicity); delays
		// skew the freshness race without destroying messages.
		return []StepKind{StepCrash, StepRecover, StepDelay, StepSleep},
			[]float64{0.26, 0.36, 0.20, 0.18}
	default: // mixed, sharded
		return []StepKind{StepCrash, StepRecover, StepPartition, StepHeal, StepDelay, StepLoss, StepBlock, StepUnblock, StepSleep},
			[]float64{0.26, 0.20, 0.12, 0.08, 0.10, 0.07, 0.07, 0.04, 0.06}
	}
}

func (g *stepGen) faultStep() Step {
	kinds, weights := g.faultWeights()
	x := g.rng.Float64()
	var total float64
	for _, w := range weights {
		total += w
	}
	x *= total
	kind := kinds[len(kinds)-1]
	for i, w := range weights {
		if x < w {
			kind = kinds[i]
			break
		}
		x -= w
	}
	switch kind {
	case StepCrash:
		alive := g.aliveList()
		if len(alive) == 0 {
			return g.sleepStep()
		}
		// A crash that takes the last live replica down is a total failure;
		// outside the storm-profile tail it is only drawn occasionally.
		if len(alive) == 1 {
			limit := 0.0
			if g.cfg.Profile == "storm" {
				limit = 0.5
			} else if g.cfg.Profile == "mixed" {
				limit = 0.15
			}
			if g.rng.Float64() >= limit {
				return g.recoverStep()
			}
		}
		r := pick(g.rng, alive)
		g.crashed[r] = true
		return Step{Kind: StepCrash, Replica: r}
	case StepRecover:
		return g.recoverStep()
	case StepPartition:
		if g.partitioned {
			g.partitioned = false
			return Step{Kind: StepHeal}
		}
		n := g.cfg.Replicas
		size := 1 + g.rng.Intn(n/2)
		perm := g.rng.Perm(n)[:size]
		group := append([]int(nil), perm...)
		sortInts(group)
		g.partitioned = true
		return Step{Kind: StepPartition, Group: group}
	case StepHeal:
		if !g.partitioned {
			return g.sleepStep()
		}
		g.partitioned = false
		return Step{Kind: StepHeal}
	case StepDelay:
		if g.delayed && g.rng.Float64() < 0.4 {
			g.delayed = false
			return Step{Kind: StepDelay}
		}
		g.delayed = true
		return Step{
			Kind:    StepDelay,
			Latency: time.Duration(g.rng.Intn(1500)) * time.Microsecond,
			Jitter:  time.Duration(g.rng.Intn(2500)) * time.Microsecond,
		}
	case StepLoss:
		if g.lossy && g.rng.Float64() < 0.5 {
			g.lossy = false
			return Step{Kind: StepLoss}
		}
		g.lossy = true
		return Step{Kind: StepLoss, Loss: 0.02 + 0.13*g.rng.Float64()}
	case StepBlock:
		if g.blocks > 2 {
			g.blocks = 0
			return Step{Kind: StepUnblock}
		}
		from := g.rng.Intn(g.cfg.Replicas)
		to := g.rng.Intn(g.cfg.Replicas - 1)
		if to >= from {
			to++
		}
		g.blocks++
		return Step{Kind: StepBlock, From: from, To: to}
	case StepUnblock:
		g.blocks = 0
		return Step{Kind: StepUnblock}
	default:
		return g.sleepStep()
	}
}

func (g *stepGen) recoverStep() Step {
	crashed := make([]int, 0, len(g.crashed))
	for r := range g.crashed {
		crashed = append(crashed, r)
	}
	if len(crashed) == 0 {
		return g.sleepStep()
	}
	sortInts(crashed)
	r := pick(g.rng, crashed)
	delete(g.crashed, r)
	return Step{Kind: StepRecover, Replica: r}
}

func (g *stepGen) aliveList() []int {
	alive := make([]int, 0, g.cfg.Replicas)
	for i := 0; i < g.cfg.Replicas; i++ {
		if !g.crashed[i] {
			alive = append(alive, i)
		}
	}
	return alive
}

func (g *stepGen) sleepStep() Step {
	return Step{Kind: StepSleep, Dur: time.Duration(2+g.rng.Intn(18)) * time.Millisecond}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// --- trace codec -----------------------------------------------------------

// traceMagic is the first line of every marshalled scenario.
const traceMagic = "groupsafe-fuzz-trace v1"

// Marshal renders the scenario as its canonical replayable trace.  The
// format is line-based and byte-stable: for a Generated scenario the bytes
// are a pure function of the resolved config, which the corpus replay test
// asserts.
func (s *Scenario) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", traceMagic)
	fmt.Fprintf(&b, "seed %d\n", s.Cfg.Seed)
	fmt.Fprintf(&b, "technique %s\n", s.Cfg.Technique)
	fmt.Fprintf(&b, "level %s\n", s.Cfg.Level)
	fmt.Fprintf(&b, "replicas %d\n", s.Cfg.Replicas)
	fmt.Fprintf(&b, "items %d\n", s.Cfg.Items)
	fmt.Fprintf(&b, "sessions %d\n", s.Cfg.Sessions)
	fmt.Fprintf(&b, "steps %d\n", s.Cfg.Steps)
	fmt.Fprintf(&b, "profile %s\n", s.Cfg.Profile)
	fmt.Fprintf(&b, "txn-timeout %s\n", s.Cfg.TxnTimeout)
	// Emitted only when non-default: older traces stay byte-identical.
	if s.Cfg.Adaptive {
		fmt.Fprintf(&b, "adaptive %t\n", s.Cfg.Adaptive)
	}
	if s.Cfg.RotateEvery != 0 {
		fmt.Fprintf(&b, "rotate-every %d\n", s.Cfg.RotateEvery)
	}
	if s.Cfg.Partitions > 1 {
		fmt.Fprintf(&b, "partitions %d\n", s.Cfg.Partitions)
	}
	fmt.Fprintf(&b, "generated %t\n", s.Generated)
	fmt.Fprintf(&b, "schedule %d\n", len(s.Steps))
	for _, st := range s.Steps {
		b.WriteString(marshalStep(st))
		b.WriteByte('\n')
	}
	b.WriteString("end\n")
	return []byte(b.String())
}

func marshalStep(s Step) string {
	switch s.Kind {
	case StepTxn:
		ops := make([]string, len(s.Ops))
		for i, op := range s.Ops {
			if op.Write {
				ops[i] = fmt.Sprintf("w%d:%d", op.Item, op.Value)
			} else {
				ops[i] = fmt.Sprintf("r%d", op.Item)
			}
		}
		return fmt.Sprintf("txn session=%d delegate=%d query=%t floor=%t ops=%s",
			s.Session, s.Delegate, s.Query, s.Floor, strings.Join(ops, ","))
	case StepCrash:
		return fmt.Sprintf("crash replica=%d", s.Replica)
	case StepRecover:
		return fmt.Sprintf("recover replica=%d", s.Replica)
	case StepPartition:
		group := make([]string, len(s.Group))
		for i, r := range s.Group {
			group[i] = strconv.Itoa(r)
		}
		return fmt.Sprintf("partition group=%s", strings.Join(group, ","))
	case StepHeal:
		return "heal"
	case StepDelay:
		return fmt.Sprintf("delay latency=%s jitter=%s", s.Latency, s.Jitter)
	case StepLoss:
		return fmt.Sprintf("loss p=%s", strconv.FormatFloat(s.Loss, 'g', -1, 64))
	case StepBlock:
		return fmt.Sprintf("block from=%d to=%d", s.From, s.To)
	case StepUnblock:
		return "unblock"
	case StepSleep:
		return fmt.Sprintf("sleep dur=%s", s.Dur)
	case StepBarrier:
		return "barrier"
	default:
		return fmt.Sprintf("unknown kind=%d", int(s.Kind))
	}
}

// ParseScenario parses a marshalled trace back into a scenario.
// Marshal(ParseScenario(b)) == b for every trace Marshal emitted.
func ParseScenario(data []byte) (*Scenario, error) {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != traceMagic {
		return nil, fmt.Errorf("fuzz: not a %s file", traceMagic)
	}
	s := &Scenario{}
	i := 1
	nSteps := -1
	for ; i < len(lines); i++ {
		key, val, _ := strings.Cut(lines[i], " ")
		var err error
		switch key {
		case "seed":
			s.Cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "technique":
			s.Cfg.Technique = val
		case "level":
			s.Cfg.Level = val
		case "replicas":
			s.Cfg.Replicas, err = strconv.Atoi(val)
		case "items":
			s.Cfg.Items, err = strconv.Atoi(val)
		case "sessions":
			s.Cfg.Sessions, err = strconv.Atoi(val)
		case "steps":
			s.Cfg.Steps, err = strconv.Atoi(val)
		case "profile":
			s.Cfg.Profile = val
		case "txn-timeout":
			s.Cfg.TxnTimeout, err = time.ParseDuration(val)
		case "adaptive":
			s.Cfg.Adaptive, err = strconv.ParseBool(val)
		case "rotate-every":
			s.Cfg.RotateEvery, err = strconv.Atoi(val)
		case "partitions":
			s.Cfg.Partitions, err = strconv.Atoi(val)
		case "generated":
			s.Generated, err = strconv.ParseBool(val)
		case "schedule":
			nSteps, err = strconv.Atoi(val)
		default:
			err = fmt.Errorf("unknown header line %q", lines[i])
		}
		if err != nil {
			return nil, fmt.Errorf("fuzz: trace line %d: %w", i+1, err)
		}
		if nSteps >= 0 {
			i++
			break
		}
	}
	for ; i < len(lines) && lines[i] != "end"; i++ {
		st, err := parseStep(lines[i])
		if err != nil {
			return nil, fmt.Errorf("fuzz: trace line %d: %w", i+1, err)
		}
		s.Steps = append(s.Steps, st)
	}
	if i >= len(lines) || lines[i] != "end" {
		return nil, fmt.Errorf("fuzz: trace is truncated (no end line)")
	}
	if nSteps != len(s.Steps) {
		return nil, fmt.Errorf("fuzz: trace declares %d steps but carries %d", nSteps, len(s.Steps))
	}
	return s, nil
}

func parseStep(line string) (Step, error) {
	kind, rest, _ := strings.Cut(line, " ")
	fields := map[string]string{}
	for _, f := range strings.Fields(rest) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Step{}, fmt.Errorf("malformed field %q", f)
		}
		fields[k] = v
	}
	atoi := func(k string) (int, error) { return strconv.Atoi(fields[k]) }
	var s Step
	var err error
	switch kind {
	case "txn":
		s.Kind = StepTxn
		if s.Session, err = atoi("session"); err != nil {
			return s, err
		}
		if s.Delegate, err = atoi("delegate"); err != nil {
			return s, err
		}
		if s.Query, err = strconv.ParseBool(fields["query"]); err != nil {
			return s, err
		}
		if s.Floor, err = strconv.ParseBool(fields["floor"]); err != nil {
			return s, err
		}
		for _, tok := range strings.Split(fields["ops"], ",") {
			if tok == "" {
				continue
			}
			var op workload.Op
			switch tok[0] {
			case 'w':
				op.Write = true
				itemStr, valStr, ok := strings.Cut(tok[1:], ":")
				if !ok {
					return s, fmt.Errorf("malformed write op %q", tok)
				}
				if op.Item, err = strconv.Atoi(itemStr); err != nil {
					return s, err
				}
				if op.Value, err = strconv.ParseInt(valStr, 10, 64); err != nil {
					return s, err
				}
			case 'r':
				if op.Item, err = strconv.Atoi(tok[1:]); err != nil {
					return s, err
				}
			default:
				return s, fmt.Errorf("malformed op %q", tok)
			}
			s.Ops = append(s.Ops, op)
		}
	case "crash":
		s.Kind = StepCrash
		s.Replica, err = atoi("replica")
	case "recover":
		s.Kind = StepRecover
		s.Replica, err = atoi("replica")
	case "partition":
		s.Kind = StepPartition
		for _, tok := range strings.Split(fields["group"], ",") {
			r, err := strconv.Atoi(tok)
			if err != nil {
				return s, err
			}
			s.Group = append(s.Group, r)
		}
	case "heal":
		s.Kind = StepHeal
	case "delay":
		s.Kind = StepDelay
		if s.Latency, err = time.ParseDuration(fields["latency"]); err != nil {
			return s, err
		}
		s.Jitter, err = time.ParseDuration(fields["jitter"])
	case "loss":
		s.Kind = StepLoss
		s.Loss, err = strconv.ParseFloat(fields["p"], 64)
	case "block":
		s.Kind = StepBlock
		if s.From, err = atoi("from"); err != nil {
			return s, err
		}
		s.To, err = atoi("to")
	case "unblock":
		s.Kind = StepUnblock
	case "sleep":
		s.Kind = StepSleep
		s.Dur, err = time.ParseDuration(fields["dur"])
	case "barrier":
		s.Kind = StepBarrier
	default:
		return s, fmt.Errorf("unknown step kind %q", kind)
	}
	return s, err
}
