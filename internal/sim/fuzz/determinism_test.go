package fuzz

import (
	"bytes"
	"testing"
)

// TestScenarioDeterminism is the replayability contract: the same seed always
// expands to the byte-identical trace, and the trace codec round-trips.
func TestScenarioDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		a, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ta, tb := a.Marshal(), b.Marshal()
		if !bytes.Equal(ta, tb) {
			t.Fatalf("seed %d: two generations disagree:\n--- first\n%s\n--- second\n%s", seed, ta, tb)
		}
		parsed, err := ParseScenario(ta)
		if err != nil {
			t.Fatalf("seed %d: parse own trace: %v", seed, err)
		}
		if got := parsed.Marshal(); !bytes.Equal(got, ta) {
			t.Fatalf("seed %d: codec round-trip not stable:\n--- marshalled\n%s\n--- reparsed\n%s", seed, ta, got)
		}
	}
}

// TestScenarioProfiles: every profile generates, and pinning cluster fields
// leaves them pinned after resolution.
func TestScenarioProfiles(t *testing.T) {
	for _, profile := range Profiles() {
		sc, err := Generate(Config{Seed: 7, Profile: profile})
		if err != nil {
			t.Fatalf("profile %s: %v", profile, err)
		}
		if len(sc.Steps) < sc.Cfg.Steps {
			t.Fatalf("profile %s: %d steps generated, want at least %d", profile, len(sc.Steps), sc.Cfg.Steps)
		}
	}
	sc, err := Generate(Config{Seed: 7, Technique: "certification", Level: "2-safe", Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cfg.Technique != "certification" || sc.Cfg.Level != "2-safe" || sc.Cfg.Replicas != 4 {
		t.Fatalf("pinned fields changed during resolution: %+v", sc.Cfg)
	}
}

// TestShrinkerTeeth drives the ddmin loop with a synthetic predicate (fails
// whenever the schedule still contains a crash step) and checks it reduces a
// full storm schedule to a single step.
func TestShrinkerTeeth(t *testing.T) {
	sc, err := Generate(Config{Seed: 3, Profile: "storm"})
	if err != nil {
		t.Fatal(err)
	}
	crashes := 0
	for _, s := range sc.Steps {
		if s.Kind == StepCrash {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("storm schedule generated no crash steps")
	}
	pred := func(cand *Scenario) ([]Violation, error) {
		for _, s := range cand.Steps {
			if s.Kind == StepCrash {
				return []Violation{{Invariant: "synthetic", Detail: "still crashes"}}, nil
			}
		}
		return nil, nil
	}
	seedViolations := []Violation{{Invariant: "synthetic", Detail: "original"}}
	res := shrinkWith(sc, seedViolations, 4096, pred)
	if len(res.Scenario.Steps) != 1 || res.Scenario.Steps[0].Kind != StepCrash {
		t.Fatalf("shrinker kept %d steps (want exactly the one crash step): %s",
			len(res.Scenario.Steps), res.Scenario.Marshal())
	}
	if len(res.Violations) == 0 {
		t.Fatal("shrinker lost the violation record")
	}
}
