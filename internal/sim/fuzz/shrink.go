package fuzz

import "fmt"

// The shrinker minimises a failing schedule with the classic ddmin chunk
// strategy: try dropping ever-smaller contiguous chunks of steps, keep a
// candidate whenever the invariant suite still fails on it.  The runner
// tolerates ill-formed schedules (recovering a live replica, healing an open
// network), so dropped steps never make a candidate unrunnable.
//
// Violations are interleaving-dependent — a reduced schedule may fail only
// sometimes.  The shrinker is deliberately conservative about that: a chunk
// is only dropped when the reduced schedule failed on an actual re-run, so
// the result is always a schedule that was OBSERVED to fail, never an
// extrapolation.

// ShrinkResult is the outcome of a shrink.
type ShrinkResult struct {
	// Scenario is the smallest schedule observed to fail.
	Scenario *Scenario
	// Violations is the invariant output of the last failing run of Scenario.
	Violations []Violation
	// Runs is the number of runs spent.
	Runs int
}

// Shrink minimises sc's schedule while CheckAll keeps failing, spending at
// most maxRuns runs.  sc itself must already be failing (pass the violations
// of the original run); if maxRuns <= 0 a default budget of 48 runs is used.
func Shrink(sc *Scenario, violations []Violation, maxRuns int) *ShrinkResult {
	return shrinkWith(sc, violations, maxRuns, func(cand *Scenario) ([]Violation, error) {
		rec, err := Run(cand)
		if err != nil {
			return nil, err
		}
		return CheckAll(rec), nil
	})
}

// shrinkWith is Shrink with the failure predicate injected (the shrinker's
// own tests use a synthetic predicate instead of a real cluster run).
func shrinkWith(sc *Scenario, violations []Violation, maxRuns int, fails func(*Scenario) ([]Violation, error)) *ShrinkResult {
	if maxRuns <= 0 {
		maxRuns = 48
	}
	res := &ShrinkResult{Scenario: sc, Violations: violations}
	steps := sc.Steps
	n := 2
	for len(steps) > 1 && n <= len(steps) && res.Runs < maxRuns {
		chunk := (len(steps) + n - 1) / n
		reduced := false
		for start := 0; start < len(steps) && res.Runs < maxRuns; start += chunk {
			end := start + chunk
			if end > len(steps) {
				end = len(steps)
			}
			candidate := make([]Step, 0, len(steps)-(end-start))
			candidate = append(candidate, steps[:start]...)
			candidate = append(candidate, steps[end:]...)
			if len(candidate) == 0 {
				continue
			}
			cs := &Scenario{Cfg: sc.Cfg, Generated: false, Steps: candidate}
			res.Runs++
			v, err := fails(cs)
			if err != nil {
				continue // unrunnable candidate: keep the chunk
			}
			if len(v) > 0 {
				steps = candidate
				res.Scenario = cs
				res.Violations = v
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if chunk == 1 {
				break // already at single-step granularity with nothing droppable
			}
			n *= 2
			if n > len(steps) {
				n = len(steps)
			}
		}
	}
	return res
}

// ReportViolations renders a violation list for logs and failure artifacts.
func ReportViolations(vs []Violation) string {
	out := ""
	for i, v := range vs {
		out += fmt.Sprintf("  [%d] %s\n", i+1, v.String())
	}
	return out
}
