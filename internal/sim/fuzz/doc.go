// Package fuzz is a deterministic fault-injection scenario fuzzer for the
// replicated database engine (internal/core).
//
// A single 64-bit seed deterministically expands into a complete scenario:
// the cluster shape (replica count, replication technique, safety level), a
// mixed read/write workload split over client sessions with per-session
// freshness floors, and an adversary schedule of network partitions and
// heals, message delay/loss within the transport's FIFO-per-channel
// contract, one-way link blocks, crash-recover storms and replica churn.
// The scenario — not the execution — is the unit of determinism: the same
// seed always yields the byte-identical trace (Scenario.Marshal), and the
// invariant suite is written to hold for EVERY goroutine interleaving of a
// scenario, so a replayed trace re-checks the same claims even though the
// wall-clock interleaving differs.
//
// After a run the invariant suite (invariants.go) checks the paper's
// correctness claims mechanically:
//
//   - one-copy serializability of the committed history, by replaying the
//     write sets in the total order recorded by a never-crashed replica and
//     comparing values and versions against its final store;
//   - no committed-and-acknowledged transaction lost at its safety level:
//     2-safe/very-safe survive any number of crashes, the group-safe levels
//     may lose a responded transaction only when every replica that applied
//     it crashed afterwards (exactly the paper's boundary), the lazy levels
//     only when the delegate crashed;
//   - freshness-token sanity per session: floored queries never answer below
//     their floor, tokens of a session's updates are monotone, and every
//     value read under a floor appears in the item's committed timeline at
//     or after the token;
//   - session routing: the tokens served to one session's floored queries
//     never move backwards, even as the freshness-aware router moves the
//     session between replicas across crashes and recoveries (the
//     "readheavy" profile — query-dominated, floors almost always on, under
//     crash/recover churn — is built to hammer exactly this claim);
//   - the Stale flag is set exactly on lazy secondary reads;
//   - post-heal convergence: after the rescue phase every live replica holds
//     identical state (WaitConsistent), for the lazy technique only when the
//     scenario contained no message-destroying fault.
//
// The "sharded" profile runs the same schedules against a PARTITIONED
// keyspace (internal/partition: 2-4 hash partitions, each its own replica
// group and total order, crashes hitting every co-located partition replica
// at once) and adds the partitioned claims:
//
//   - atomic commitment of cross-partition transactions: a transaction
//     writing several partitions installs at all of them or at none; an
//     acknowledged abort installs nowhere, unconditionally, and a partial
//     install is excused only in the group-safe window (every server that
//     externalised the commit on the missing partition crashed) — a
//     coordinator killed mid-2PC must never yield a partial install at
//     2-safe or above;
//   - per-partition one-copy serializability: each partition's committed
//     history (2PC installs at their decide positions) replays to the
//     reference server's per-partition store;
//   - vector freshness floors: a query carrying per-partition floors is
//     served at or above the floor entry of every partition it read from
//     (scalar token monotonicity is not asserted — the partitions' orders
//     are independent sequences).
//
// On a violation the greedy shrinker (shrink.go) minimises the adversary
// schedule while the violation reproduces, and the result is written as a
// replayable seed+trace file.  Committed traces under corpus/ replay as
// ordinary `go test` regression cases (corpus.go).
//
// The mutation self-test (mutation_test.go, build tag simmutation) proves
// the harness has teeth: built with -tags simmutation the engine skips the
// 2-safe commit force, and the test asserts the fuzzer catches the lost
// acknowledged transaction within a bounded seed sweep.
package fuzz
