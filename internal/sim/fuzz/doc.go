// Package fuzz is a deterministic fault-injection scenario fuzzer for the
// replicated database engine (internal/core).
//
// A single 64-bit seed deterministically expands into a complete scenario:
// the cluster shape (replica count, replication technique, safety level), a
// mixed read/write workload split over client sessions with per-session
// freshness floors, and an adversary schedule of network partitions and
// heals, message delay/loss within the transport's FIFO-per-channel
// contract, one-way link blocks, crash-recover storms and replica churn.
// The scenario — not the execution — is the unit of determinism: the same
// seed always yields the byte-identical trace (Scenario.Marshal), and the
// invariant suite is written to hold for EVERY goroutine interleaving of a
// scenario, so a replayed trace re-checks the same claims even though the
// wall-clock interleaving differs.
//
// After a run the invariant suite (invariants.go) checks the paper's
// correctness claims mechanically:
//
//   - one-copy serializability of the committed history, by replaying the
//     write sets in the total order recorded by a never-crashed replica and
//     comparing values and versions against its final store;
//   - no committed-and-acknowledged transaction lost at its safety level:
//     2-safe/very-safe survive any number of crashes, the group-safe levels
//     may lose a responded transaction only when every replica that applied
//     it crashed afterwards (exactly the paper's boundary), the lazy levels
//     only when the delegate crashed;
//   - freshness-token sanity per session: floored queries never answer below
//     their floor, tokens of a session's updates are monotone, and every
//     value read under a floor appears in the item's committed timeline at
//     or after the token;
//   - the Stale flag is set exactly on lazy secondary reads;
//   - post-heal convergence: after the rescue phase every live replica holds
//     identical state (WaitConsistent), for the lazy technique only when the
//     scenario contained no message-destroying fault.
//
// On a violation the greedy shrinker (shrink.go) minimises the adversary
// schedule while the violation reproduces, and the result is written as a
// replayable seed+trace file.  Committed traces under corpus/ replay as
// ordinary `go test` regression cases (corpus.go).
//
// The mutation self-test (mutation_test.go, build tag simmutation) proves
// the harness has teeth: built with -tags simmutation the engine skips the
// 2-safe commit force, and the test asserts the fuzzer catches the lost
// acknowledged transaction within a bounded seed sweep.
package fuzz
