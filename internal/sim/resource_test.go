package sim

import (
	"testing"
	"time"
)

func TestResourceSingleServerSerialises(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 1)
	var done []time.Duration
	for i := 0; i < 3; i++ {
		e.Spawn("w", 0, func(p *Process) {
			r.Use(p, 10*time.Millisecond)
			done = append(done, p.Now())
		})
	}
	e.Run(0)
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
}

func TestResourceTwoServersParallel(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cpu", 2)
	var done []time.Duration
	for i := 0; i < 4; i++ {
		e.Spawn("w", 0, func(p *Process) {
			r.Use(p, 10*time.Millisecond)
			done = append(done, p.Now())
		})
	}
	e.Run(0)
	// Two at a time: completions at 10,10,20,20.
	want := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("w", time.Duration(i)*time.Millisecond, func(p *Process) {
			r.Use(p, 10*time.Millisecond)
			order = append(order, i)
		})
	}
	e.Run(0)
	for i := range order {
		if order[i] != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestResourceStats(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 1)
	for i := 0; i < 2; i++ {
		e.Spawn("w", 0, func(p *Process) { r.Use(p, 10*time.Millisecond) })
	}
	e.Run(0)
	if r.Completions() != 2 {
		t.Fatalf("completions = %d, want 2", r.Completions())
	}
	if u := r.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v, want ~1.0", u)
	}
	// Second job waited 10ms.
	if w := r.AvgWait(); w != 5*time.Millisecond {
		t.Fatalf("avg wait = %v, want 5ms", w)
	}
	if r.MaxQueue() != 1 {
		t.Fatalf("max queue = %d, want 1", r.MaxQueue())
	}
	if r.InUse() != 0 || r.QueueLen() != 0 {
		t.Fatalf("resource should be idle at end: busy=%d queue=%d", r.InUse(), r.QueueLen())
	}
}

func TestResourceMinServers(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "x", 0)
	if r.Servers() != 1 {
		t.Fatalf("servers = %d, want clamp to 1", r.Servers())
	}
	if r.Name() != "x" {
		t.Fatalf("name = %q", r.Name())
	}
}

func TestMailboxFIFO(t *testing.T) {
	e := NewEngine(1)
	mb := NewMailbox[int](e, "q")
	var got []int
	e.Spawn("consumer", 0, func(p *Process) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Get(p))
		}
	})
	e.Spawn("producer", 5*time.Millisecond, func(p *Process) {
		for i := 1; i <= 3; i++ {
			mb.Put(i)
			p.Hold(time.Millisecond)
		}
	})
	e.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mailbox order = %v, want %v", got, want)
		}
	}
	if mb.Puts() != 3 || mb.Len() != 0 {
		t.Fatalf("puts=%d len=%d", mb.Puts(), mb.Len())
	}
}

func TestMailboxTryGet(t *testing.T) {
	e := NewEngine(1)
	mb := NewMailbox[string](e, "q")
	if _, ok := mb.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox should fail")
	}
	mb.Put("a")
	v, ok := mb.TryGet()
	if !ok || v != "a" {
		t.Fatalf("TryGet = %q,%v", v, ok)
	}
}

func TestMailboxMultipleWaiters(t *testing.T) {
	e := NewEngine(1)
	mb := NewMailbox[int](e, "q")
	got := map[int]int{}
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("c", 0, func(p *Process) { got[i] = mb.Get(p) })
	}
	e.Spawn("p", time.Millisecond, func(p *Process) {
		for i := 1; i <= 3; i++ {
			mb.Put(i * 100)
		}
	})
	e.Run(0)
	if len(got) != 3 {
		t.Fatalf("only %d consumers finished", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if !seen[100] || !seen[200] || !seen[300] {
		t.Fatalf("items lost or duplicated: %v", got)
	}
	if mb.MaxLen() < 1 {
		t.Fatalf("max len = %d", mb.MaxLen())
	}
}
