package sim

// Mailbox is an unbounded FIFO channel between simulated processes.  Put
// never blocks; Get blocks the calling process until an item is available.
type Mailbox[T any] struct {
	eng     *Engine
	name    string
	items   []T
	waiters []*Process

	puts   uint64
	gets   uint64
	maxLen int
}

// NewMailbox creates a mailbox attached to the engine.
func NewMailbox[T any](eng *Engine, name string) *Mailbox[T] {
	return &Mailbox[T]{eng: eng, name: name}
}

// Name returns the mailbox name.
func (m *Mailbox[T]) Name() string { return m.name }

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// MaxLen returns the largest observed backlog.
func (m *Mailbox[T]) MaxLen() int { return m.maxLen }

// Puts returns the total number of items ever put.
func (m *Mailbox[T]) Puts() uint64 { return m.puts }

// Put appends an item and wakes the oldest waiting reader, if any.  It may be
// called from a process or from a Schedule callback.
func (m *Mailbox[T]) Put(v T) {
	m.items = append(m.items, v)
	m.puts++
	if len(m.items) > m.maxLen {
		m.maxLen = len(m.items)
	}
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.eng.scheduleWake(w, 0)
	}
}

// Get removes and returns the oldest item, blocking the calling process until
// one is available.
func (m *Mailbox[T]) Get(p *Process) T {
	for len(m.items) == 0 {
		m.waiters = append(m.waiters, p)
		p.block()
	}
	v := m.items[0]
	m.items = m.items[1:]
	m.gets++
	return v
}

// TryGet removes and returns the oldest item without blocking.  The second
// return value reports whether an item was available.
func (m *Mailbox[T]) TryGet() (T, bool) {
	var zero T
	if len(m.items) == 0 {
		return zero, false
	}
	v := m.items[0]
	m.items = m.items[1:]
	m.gets++
	return v, true
}
