package workload

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesTable4(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Items != 10000 {
		t.Fatalf("Items = %d, want 10000 (Table 4)", cfg.Items)
	}
	if cfg.MinOps != 10 || cfg.MaxOps != 20 {
		t.Fatalf("op bounds = [%d,%d], want [10,20] (Table 4)", cfg.MinOps, cfg.MaxOps)
	}
	if cfg.WriteProb != 0.5 {
		t.Fatalf("WriteProb = %v, want 0.5 (Table 4)", cfg.WriteProb)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero items", func(c *Config) { c.Items = 0 }},
		{"zero min ops", func(c *Config) { c.MinOps = 0 }},
		{"max < min", func(c *Config) { c.MaxOps = c.MinOps - 1 }},
		{"negative write prob", func(c *Config) { c.WriteProb = -0.1 }},
		{"write prob > 1", func(c *Config) { c.WriteProb = 1.1 }},
		{"bad hotspot", func(c *Config) { c.HotSpotFraction = 2 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestGeneratorBounds(t *testing.T) {
	g := NewGenerator(DefaultConfig(), 1)
	for i := 0; i < 500; i++ {
		txn := g.Next(i%4, i%9)
		if len(txn.Ops) < 10 || len(txn.Ops) > 20 {
			t.Fatalf("transaction length %d out of [10,20]", len(txn.Ops))
		}
		for _, op := range txn.Ops {
			if op.Item < 0 || op.Item >= 10000 {
				t.Fatalf("item %d out of range", op.Item)
			}
		}
		if txn.Client != i%4 || txn.Delegate != i%9 {
			t.Fatalf("client/delegate not propagated")
		}
	}
}

func TestGeneratorIDsUniqueAndIncreasing(t *testing.T) {
	g := NewGenerator(DefaultConfig(), 2)
	var last uint64
	for i := 0; i < 100; i++ {
		txn := g.Next(0, 0)
		if txn.ID <= last {
			t.Fatalf("IDs not strictly increasing: %d after %d", txn.ID, last)
		}
		last = txn.ID
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(DefaultConfig(), 42)
	b := NewGenerator(DefaultConfig(), 42)
	for i := 0; i < 50; i++ {
		ta, tb := a.Next(0, 0), b.Next(0, 0)
		if len(ta.Ops) != len(tb.Ops) {
			t.Fatal("same seed produced different transactions")
		}
		for j := range ta.Ops {
			if ta.Ops[j] != tb.Ops[j] {
				t.Fatal("same seed produced different operations")
			}
		}
	}
}

func TestWriteMix(t *testing.T) {
	g := NewGenerator(DefaultConfig(), 3)
	writes, total := 0, 0
	for i := 0; i < 2000; i++ {
		txn := g.Next(0, 0)
		writes += txn.NumWrites()
		total += len(txn.Ops)
	}
	frac := float64(writes) / float64(total)
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("write fraction %v too far from 0.5", frac)
	}
}

func TestReadWriteSets(t *testing.T) {
	txn := Transaction{Ops: []Op{
		{Item: 5, Write: true},
		{Item: 3, Write: false},
		{Item: 5, Write: true},
		{Item: 1, Write: false},
		{Item: 3, Write: true},
	}}
	r := txn.ReadItems()
	w := txn.WriteItems()
	if len(r) != 2 || r[0] != 1 || r[1] != 3 {
		t.Fatalf("ReadItems = %v", r)
	}
	if len(w) != 2 || w[0] != 3 || w[1] != 5 {
		t.Fatalf("WriteItems = %v", w)
	}
	if txn.NumWrites() != 3 || txn.NumReads() != 2 {
		t.Fatalf("counts: %d writes, %d reads", txn.NumWrites(), txn.NumReads())
	}
	if txn.ReadOnly() {
		t.Fatal("transaction with writes reported as read-only")
	}
	if txn.String() == "" {
		t.Fatal("String should not be empty")
	}
	ro := Transaction{Ops: []Op{{Item: 1}}}
	if !ro.ReadOnly() {
		t.Fatal("read-only transaction not detected")
	}
}

func TestHotSpotSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotSpotFraction = 0.01
	cfg.HotSpotProb = 0.8
	g := NewGenerator(cfg, 7)
	hot := 0
	total := 0
	for i := 0; i < 500; i++ {
		txn := g.Next(0, 0)
		for _, op := range txn.Ops {
			total++
			if op.Item < 100 {
				hot++
			}
		}
	}
	frac := float64(hot) / float64(total)
	if frac < 0.7 {
		t.Fatalf("hot-spot fraction %v, want >= 0.7", frac)
	}
}

func TestQuickGeneratorAlwaysValid(t *testing.T) {
	f := func(seed int64, client, delegate uint8) bool {
		g := NewGenerator(DefaultConfig(), seed)
		txn := g.Next(int(client), int(delegate))
		if len(txn.Ops) < 10 || len(txn.Ops) > 20 {
			return false
		}
		for _, op := range txn.Ops {
			if op.Item < 0 || op.Item >= 10000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadMixKnob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadFraction = 0.9
	cfg.QueryMinOps = 2
	cfg.QueryMaxOps = 4
	g := NewGenerator(cfg, 42)
	queries, updates := 0, 0
	for i := 0; i < 2000; i++ {
		txn := g.Next(0, 0)
		if txn.ReadOnly() {
			queries++
			if n := len(txn.Ops); n < 2 || n > 4 {
				t.Fatalf("query length %d outside [2,4]", n)
			}
		} else {
			updates++
			if n := len(txn.Ops); n < 10 || n > 20 {
				t.Fatalf("update length %d outside [10,20]", n)
			}
		}
	}
	frac := float64(queries) / float64(queries+updates)
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("read fraction = %v, want ~0.9", frac)
	}
	// Query bounds fall back to MinOps/MaxOps when unset.
	cfg.QueryMinOps, cfg.QueryMaxOps = 0, 0
	g = NewGenerator(cfg, 42)
	for i := 0; i < 100; i++ {
		txn := g.Next(0, 0)
		if n := len(txn.Ops); n < 10 || n > 20 {
			t.Fatalf("fallback query length %d outside [10,20]", n)
		}
	}
}

func TestReadMixValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadFraction = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("ReadFraction > 1 accepted")
	}
	cfg = DefaultConfig()
	cfg.QueryMinOps = 5
	cfg.QueryMaxOps = 2
	if err := cfg.Validate(); err == nil {
		t.Fatal("inverted query bounds accepted")
	}
}
