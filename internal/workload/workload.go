// Package workload generates the transactional workload used throughout the
// reproduction.  The default configuration matches Table 4 of the paper:
// 10'000 items, transactions of 10–20 operations, each operation being a
// write with probability 50% and a query with probability 50%, items chosen
// uniformly at random (optionally skewed onto a hot spot for contention
// experiments).
//
// A Generator is deterministic for a given seed and safe for concurrent use,
// so one generator can feed many client goroutines of a cluster or
// benchmark.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Op is a single read or write of one database item.
type Op struct {
	Item  int
	Write bool
	// Value is the value written for write operations (ignored for reads).
	Value int64
}

// Transaction is a client transaction: an ordered list of operations executed
// on behalf of one client at one delegate server.
type Transaction struct {
	ID       uint64
	Client   int
	Delegate int
	Ops      []Op
}

// ReadItems returns the distinct items read by the transaction, sorted.
func (t Transaction) ReadItems() []int { return t.distinct(false) }

// WriteItems returns the distinct items written by the transaction, sorted.
func (t Transaction) WriteItems() []int { return t.distinct(true) }

func (t Transaction) distinct(write bool) []int {
	seen := make(map[int]bool)
	for _, op := range t.Ops {
		if op.Write == write {
			seen[op.Item] = true
		}
	}
	items := make([]int, 0, len(seen))
	for it := range seen {
		items = append(items, it)
	}
	sort.Ints(items)
	return items
}

// NumWrites returns the number of write operations.
func (t Transaction) NumWrites() int {
	n := 0
	for _, op := range t.Ops {
		if op.Write {
			n++
		}
	}
	return n
}

// NumReads returns the number of read operations.
func (t Transaction) NumReads() int { return len(t.Ops) - t.NumWrites() }

// ReadOnly reports whether the transaction contains no writes.
func (t Transaction) ReadOnly() bool { return t.NumWrites() == 0 }

// String implements fmt.Stringer.
func (t Transaction) String() string {
	return fmt.Sprintf("txn(%d, delegate=%d, ops=%d, writes=%d)", t.ID, t.Delegate, len(t.Ops), t.NumWrites())
}

// Config describes the workload mix.
type Config struct {
	// Items is the number of items in the database (Table 4: 10'000).
	Items int
	// MinOps and MaxOps bound the transaction length (Table 4: 10–20).
	MinOps int
	MaxOps int
	// WriteProb is the probability that an operation is a write (Table 4: 0.5).
	WriteProb float64
	// HotSpotFraction, if non-zero, directs HotSpotProb of the accesses to the
	// first HotSpotFraction of the items (an extension beyond the paper used
	// for contention experiments).
	HotSpotFraction float64
	HotSpotProb     float64
	// ReadFraction is the probability that a transaction is a pure read-only
	// query (the paper's query-vs-update workload axis: queries execute
	// locally at one replica with no group communication, updates ride the
	// total order).  Zero reproduces the classic Table 4 mix, where
	// transaction class is emergent from WriteProb alone.
	ReadFraction float64
	// QueryMinOps/QueryMaxOps bound the keys-per-query of read-only
	// transactions generated via ReadFraction; both zero falls back to
	// MinOps/MaxOps.
	QueryMinOps int
	QueryMaxOps int
}

// DefaultConfig returns the Table 4 workload parameters.
func DefaultConfig() Config {
	return Config{
		Items:     10000,
		MinOps:    10,
		MaxOps:    20,
		WriteProb: 0.5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Items <= 0 {
		return fmt.Errorf("workload: Items must be positive, got %d", c.Items)
	}
	if c.MinOps <= 0 || c.MaxOps < c.MinOps {
		return fmt.Errorf("workload: invalid op bounds [%d,%d]", c.MinOps, c.MaxOps)
	}
	if c.WriteProb < 0 || c.WriteProb > 1 {
		return fmt.Errorf("workload: WriteProb must be in [0,1], got %v", c.WriteProb)
	}
	if c.HotSpotFraction < 0 || c.HotSpotFraction > 1 || c.HotSpotProb < 0 || c.HotSpotProb > 1 {
		return fmt.Errorf("workload: hot-spot parameters out of range")
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		return fmt.Errorf("workload: ReadFraction must be in [0,1], got %v", c.ReadFraction)
	}
	if c.QueryMinOps != 0 || c.QueryMaxOps != 0 {
		if c.QueryMinOps <= 0 || c.QueryMaxOps < c.QueryMinOps {
			return fmt.Errorf("workload: invalid query op bounds [%d,%d]", c.QueryMinOps, c.QueryMaxOps)
		}
	}
	return nil
}

// Generator produces a deterministic stream of transactions.  It is safe for
// concurrent use: several clients may share one generator (the interleaving,
// not the stream, is then scheduling-dependent).
type Generator struct {
	cfg  Config
	seed int64

	mu     sync.Mutex
	rng    *rand.Rand
	nextID uint64
}

// NewGenerator creates a generator; it panics if the config is invalid (the
// config is programmer input, not user input).
func NewGenerator(cfg Config, seed int64) *Generator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Generator{cfg: cfg, seed: seed, rng: rand.New(rand.NewSource(seed)), nextID: 1}
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Seed returns the seed the generator was created with.  Randomized tests
// log it on failure so the exact transaction stream can be replayed.
func (g *Generator) Seed() int64 { return g.seed }

// Next produces the next transaction for the given client and delegate
// server.  With probability ReadFraction it is a pure query (QueryMinOps to
// QueryMaxOps read operations); otherwise the classic mix, each operation a
// write with probability WriteProb.
func (g *Generator) Next(client, delegate int) Transaction {
	g.mu.Lock()
	defer g.mu.Unlock()
	query := g.cfg.ReadFraction > 0 && g.rng.Float64() < g.cfg.ReadFraction
	lo, hi := g.cfg.MinOps, g.cfg.MaxOps
	if query && g.cfg.QueryMinOps > 0 {
		lo, hi = g.cfg.QueryMinOps, g.cfg.QueryMaxOps
	}
	n := lo
	if hi > lo {
		n += g.rng.Intn(hi - lo + 1)
	}
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{
			Item:  g.pickItem(),
			Write: !query && g.rng.Float64() < g.cfg.WriteProb,
			Value: g.rng.Int63(),
		}
	}
	t := Transaction{ID: g.nextID, Client: client, Delegate: delegate, Ops: ops}
	g.nextID++
	return t
}

func (g *Generator) pickItem() int {
	if g.cfg.HotSpotFraction > 0 && g.rng.Float64() < g.cfg.HotSpotProb {
		hot := int(float64(g.cfg.Items) * g.cfg.HotSpotFraction)
		if hot < 1 {
			hot = 1
		}
		return g.rng.Intn(hot)
	}
	return g.rng.Intn(g.cfg.Items)
}
