package server

import (
	"encoding/binary"
	"errors"

	"groupsafe/internal/core"
	"groupsafe/internal/storage"
)

// Varint codec for the state-transfer snapshot exchanged by srv.pull /
// srv.snap, in the same style as the replicated transaction payloads.

var errBadSnapshot = errors.New("server: malformed snapshot payload")

const snapMagic = 0xA9

func appendSnapshot(buf []byte, s core.StateSnapshot) []byte {
	buf = append(buf, snapMagic)
	buf = binary.AppendUvarint(buf, s.LastAppliedSeq)
	buf = binary.AppendUvarint(buf, uint64(len(s.Items)))
	for _, it := range s.Items {
		buf = binary.AppendVarint(buf, it.Value)
		buf = binary.AppendUvarint(buf, it.Version)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.AppliedTxns)))
	for _, id := range s.AppliedTxns {
		buf = binary.AppendUvarint(buf, id)
	}
	return buf
}

func decodeSnapshot(data []byte) (core.StateSnapshot, error) {
	var s core.StateSnapshot
	if len(data) == 0 || data[0] != snapMagic {
		return s, errBadSnapshot
	}
	pos := 1
	uvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	seq, ok := uvarint()
	if !ok {
		return s, errBadSnapshot
	}
	s.LastAppliedSeq = seq
	nItems, ok := uvarint()
	if !ok || nItems > uint64(len(data)) {
		return s, errBadSnapshot
	}
	s.Items = make([]storage.Item, 0, nItems)
	for i := uint64(0); i < nItems; i++ {
		v, n := binary.Varint(data[pos:])
		if n <= 0 {
			return s, errBadSnapshot
		}
		pos += n
		ver, ok := uvarint()
		if !ok {
			return s, errBadSnapshot
		}
		s.Items = append(s.Items, storage.Item{Value: v, Version: ver})
	}
	nTxns, ok := uvarint()
	if !ok || nTxns > uint64(len(data)) {
		return s, errBadSnapshot
	}
	s.AppliedTxns = make([]uint64, 0, nTxns)
	for i := uint64(0); i < nTxns; i++ {
		id, ok := uvarint()
		if !ok {
			return s, errBadSnapshot
		}
		s.AppliedTxns = append(s.AppliedTxns, id)
	}
	return s, nil
}
