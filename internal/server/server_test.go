package server

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/workload"
)

// freePorts reserves n distinct loopback ports by binding and immediately
// releasing them; the race window until the server re-binds is acceptable in
// tests.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// startCluster boots n server processes (in-process, but over real TCP
// sockets and file WALs) and returns them plus their peer addresses.
func startCluster(t *testing.T, n int, level core.SafetyLevel) ([]*Server, []string) {
	t.Helper()
	peers := freePorts(t, n)
	servers := make([]*Server, n)
	for i := range servers {
		srv, err := Start(Config{
			ID:                peers[i],
			Members:           peers,
			ClientAddr:        "127.0.0.1:0",
			WALDir:            filepath.Join(t.TempDir(), fmt.Sprintf("r%d", i)),
			Level:             level,
			Items:             64,
			ExecTimeout:       5 * time.Second,
			HeartbeatInterval: 20 * time.Millisecond,
			ResyncInterval:    200 * time.Millisecond,
			Logf:              t.Logf,
		})
		if err != nil {
			t.Fatalf("start server %d: %v", i, err)
		}
		servers[i] = srv
		t.Cleanup(func() { srv.Close() })
	}
	return servers, peers
}

// TestThreeServerCommitAndConvergence: a 3-server TCP cluster commits
// transactions submitted at different replicas and converges to identical
// state.
func TestThreeServerCommitAndConvergence(t *testing.T) {
	servers, _ := startCluster(t, 3, core.GroupSafe)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	for i := 0; i < 12; i++ {
		delegate := servers[i%3].Replica()
		res, err := delegate.Execute(ctx, core.Request{Ops: []workload.Op{
			{Item: i % 8, Write: true, Value: int64(100 + i)},
		}})
		if err != nil {
			t.Fatalf("txn %d at %s: %v", i, delegate.ID(), err)
		}
		if !res.Committed() {
			t.Fatalf("txn %d aborted", i)
		}
	}

	waitConverged(t, servers, 10*time.Second)
}

func waitConverged(t *testing.T, servers []*Server, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if converged(servers) {
			return
		}
		if time.Now().After(deadline) {
			for _, s := range servers {
				t.Logf("%s: seq=%d items=%v", s.PeerAddr(), s.Replica().LastAppliedSeq(), s.Replica().StoreItems()[:8])
			}
			t.Fatal("servers did not converge")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func converged(servers []*Server) bool {
	ref := servers[0].Replica().StoreItems()
	for _, s := range servers[1:] {
		items := s.Replica().StoreItems()
		if len(items) != len(ref) {
			return false
		}
		for i := range ref {
			if items[i] != ref[i] {
				return false
			}
		}
	}
	return true
}

// TestServerRestartRejoins: stop one server, keep committing on the
// survivors, restart it in a fresh process-equivalent (same WAL dir, fresh
// Server value) and assert it catches back up via WAL replay + snapshot pull,
// and that the survivors' views exclude and re-admit it.
func TestServerRestartRejoins(t *testing.T) {
	peers := freePorts(t, 3)
	walDirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	mk := func(i int) *Server {
		srv, err := Start(Config{
			ID:                peers[i],
			Members:           peers,
			ClientAddr:        "127.0.0.1:0",
			WALDir:            walDirs[i],
			Level:             core.GroupSafe,
			Items:             64,
			ExecTimeout:       5 * time.Second,
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectTimeout:    120 * time.Millisecond,
			ResyncInterval:    150 * time.Millisecond,
			Logf:              t.Logf,
		})
		if err != nil {
			t.Fatalf("start server %d: %v", i, err)
		}
		return srv
	}
	servers := []*Server{mk(0), mk(1), mk(2)}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	commit := func(delegate int, item int, value int64) {
		t.Helper()
		res, err := servers[delegate].Replica().Execute(ctx, core.Request{Ops: []workload.Op{
			{Item: item, Write: true, Value: value},
		}})
		if err != nil {
			t.Fatalf("commit at %d: %v", delegate, err)
		}
		if !res.Committed() {
			t.Fatalf("commit at %d aborted", delegate)
		}
	}

	commit(0, 1, 10)
	commit(1, 2, 20)

	// Take server 2 down; survivors must notice and keep committing.
	servers[2].Close()
	waitView(t, servers[0], func(members []string) bool { return len(members) == 2 }, 5*time.Second,
		"survivor never excluded the dead peer")
	commit(0, 3, 30)
	commit(1, 1, 11)

	// Restart it: same WAL dir and peer address, a brand-new Server (the
	// in-process stand-in for a restarted OS process).
	servers[2] = mk(2)
	waitView(t, servers[0], func(members []string) bool { return len(members) == 3 }, 5*time.Second,
		"survivor never re-admitted the restarted peer")
	commit(2, 4, 40)

	waitConverged(t, servers, 10*time.Second)
}

func waitView(t *testing.T, s *Server, ok func(members []string) bool, d time.Duration, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !ok(s.View().Members) {
		if time.Now().After(deadline) {
			t.Fatalf("%s: view=%v", msg, s.View())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRestartedDelegateWritesAreNotSilentlyLost: a restarted server must not
// reuse transaction ids from its previous life.  Every replica's applied set
// still contains the first life's ids, so a reissued id certifies and
// acknowledges normally but is skipped at install everywhere as a presumed
// re-delivery — the acknowledged write silently vanishes.  The persisted
// incarnation counter namespaces the id counter (core.ReplicaConfig.
// IncarnationBase) to rule this out; this test delegates transactions at the
// same server before and after a restart and asserts every acknowledged
// value is actually present.  (Convergence checks cannot catch the bug: all
// replicas skip the install equally.)
func TestRestartedDelegateWritesAreNotSilentlyLost(t *testing.T) {
	peers := freePorts(t, 3)
	walDirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	mk := func(i int) *Server {
		srv, err := Start(Config{
			ID:                peers[i],
			Members:           peers,
			ClientAddr:        "127.0.0.1:0",
			WALDir:            walDirs[i],
			Level:             core.GroupSafe,
			Items:             64,
			ExecTimeout:       5 * time.Second,
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectTimeout:    120 * time.Millisecond,
			ResyncInterval:    150 * time.Millisecond,
			Logf:              t.Logf,
		})
		if err != nil {
			t.Fatalf("start server %d: %v", i, err)
		}
		return srv
	}
	servers := []*Server{mk(0), mk(1), mk(2)}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	commit := func(item int, value int64) {
		t.Helper()
		res, err := servers[2].Replica().Execute(ctx, core.Request{Ops: []workload.Op{
			{Item: item, Write: true, Value: value},
		}})
		if err != nil {
			t.Fatalf("commit at restartee: %v", err)
		}
		if !res.Committed() {
			t.Fatalf("commit at restartee aborted")
		}
	}

	// First life: the restartee delegates three transactions, burning ids.
	for i := 0; i < 3; i++ {
		commit(i, int64(100+i))
	}

	servers[2].Close()
	waitView(t, servers[0], func(members []string) bool { return len(members) == 2 }, 5*time.Second,
		"survivor never excluded the dead peer")

	// Second life, same WAL dir: the id counter must resume past the first
	// life's range, not restart.
	servers[2] = mk(2)
	waitView(t, servers[0], func(members []string) bool { return len(members) == 3 }, 5*time.Second,
		"survivor never re-admitted the restarted peer")
	for i := 0; i < 3; i++ {
		commit(10+i, int64(200+i))
	}

	waitConverged(t, servers, 10*time.Second)
	for _, s := range servers {
		items := s.Replica().StoreItems()
		for i := 0; i < 3; i++ {
			if items[10+i].Value != int64(200+i) {
				t.Fatalf("%s: acknowledged post-restart write lost: item %d = %d, want %d",
					s.PeerAddr(), 10+i, items[10+i].Value, 200+i)
			}
		}
	}
}
