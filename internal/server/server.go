// Package server runs one replica of the replicated database as a standalone
// OS process: the in-process replica engine of internal/core attached to real
// TCP sockets (internal/gcs/transport.TCPNode), file-backed write-ahead logs
// that survive kill -9, a heartbeat failure detector driving group membership
// views, pull-based state transfer for rejoining replicas, and a client
// listener speaking the internal/netproto protocol to gsdb.Dial clients.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/gcs/fd"
	"groupsafe/internal/gcs/membership"
	"groupsafe/internal/gcs/transport"
	"groupsafe/internal/tuning"
	"groupsafe/internal/wal"
)

// Router message types of the server layer's pull-based state transfer.
const (
	// msgPull asks a peer for its current state snapshot.
	msgPull = "srv.pull"
	// msgSnap carries a peer's encoded snapshot back.
	msgSnap = "srv.snap"
)

// Config configures one server process.
type Config struct {
	// ID is this replica's peer address (host:port it listens on for
	// replica-to-replica traffic).  It must appear in Members.
	ID string
	// Members lists every replica's peer address, identically ordered on all
	// replicas.
	Members []string
	// ClientAddr is the address the client listener binds (host:port).
	ClientAddr string
	// WALDir holds the durable state: the database WAL, the end-to-end
	// message WAL and the incarnation counter.  Created if missing.
	WALDir string
	// Technique and Level select the replication technique and the safety
	// criterion, as in core.ReplicaConfig.
	Technique core.TechniqueID
	Level     core.SafetyLevel
	// Items is the database size.
	Items int
	// ExecTimeout bounds one client transaction (default 10s).
	ExecTimeout time.Duration
	// HeartbeatInterval and SuspectTimeout tune the heartbeat failure
	// detector (defaults in fd.Config).  The detector is always on in a
	// server process: it feeds both the broadcaster's suspicion mechanism
	// and the membership views.
	HeartbeatInterval time.Duration
	SuspectTimeout    time.Duration
	// ResyncInterval is how often a stalled replica re-pulls a peer snapshot
	// to close gaps left by messages sent while it was down (default 1s).
	ResyncInterval time.Duration
	// BatchSize, BatchDelay and ApplyWorkers are the pipeline tuning knobs
	// (see internal/tuning).  BatchAdaptive selects the adaptive co-traveller
	// window (BatchDelay is then ignored; BatchDelayCap bounds the wait);
	// PipelinedSequencer and RotateSequencerEvery enable the sequencer
	// hot-path modes.
	BatchSize            int
	BatchDelay           time.Duration
	BatchAdaptive        bool
	BatchDelayCap        time.Duration
	PipelinedSequencer   bool
	RotateSequencerEvery int
	ApplyWorkers         int
	// Logf receives operational log lines (default os.Stderr via fmt).
	Logf func(format string, args ...interface{})
}

func (c *Config) applyDefaults() error {
	if c.ID == "" || len(c.Members) == 0 {
		return errors.New("server: ID and Members are required")
	}
	if c.ClientAddr == "" {
		return errors.New("server: ClientAddr is required")
	}
	if c.WALDir == "" {
		return errors.New("server: WALDir is required")
	}
	if c.ExecTimeout <= 0 {
		c.ExecTimeout = 10 * time.Second
	}
	if c.ResyncInterval <= 0 {
		c.ResyncInterval = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return nil
}

// pipeline assembles the replica's tuning knob set from the flat config.
func (c *Config) pipeline() tuning.Pipeline {
	p := tuning.Pipe(c.BatchSize, c.BatchDelay, c.ApplyWorkers)
	if c.BatchAdaptive {
		p.Mode = tuning.Adaptive
		p.DelayCap = c.BatchDelayCap
		p.BatchDelay = 0
	}
	p.Pipelined = c.PipelinedSequencer
	p.RotateEvery = c.RotateSequencerEvery
	return p
}

// Server is one running replica process.
type Server struct {
	cfg     Config
	node    *transport.TCPNode
	replica *core.Replica
	views   *membership.Manager
	dbLog   *wal.FileLog
	msgLog  *wal.FileLog

	clientLn net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup // client handlers + accept loop + resync loop
}

// Start builds and runs a server process: it opens (replaying) the WALs,
// binds the peer and client listeners, starts the replica engine with a fresh
// incarnation, replays logged end-to-end messages, pulls a state snapshot
// from its peers and begins serving.
func Start(cfg Config) (*Server, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: create WAL dir: %w", err)
	}
	incarnation, err := bumpIncarnation(filepath.Join(cfg.WALDir, "incarnation"))
	if err != nil {
		return nil, err
	}

	s := &Server{
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
		stop:  make(chan struct{}),
	}

	s.node = transport.NewTCPNode(transport.TCPConfig{Logf: cfg.Logf})
	if _, err := s.node.Listen(cfg.ID); err != nil {
		return nil, fmt.Errorf("server: peer listener: %w", err)
	}

	s.dbLog, err = wal.OpenFileLog(filepath.Join(cfg.WALDir, "db.wal"))
	if err != nil {
		s.node.Close()
		return nil, fmt.Errorf("server: open database WAL: %w", err)
	}
	var msgLog wal.Log
	if cfg.Level.RequiresEndToEnd() {
		s.msgLog, err = wal.OpenFileLog(filepath.Join(cfg.WALDir, "msg.wal"))
		if err != nil {
			s.teardown()
			return nil, fmt.Errorf("server: open message WAL: %w", err)
		}
		msgLog = s.msgLog
	}

	s.views, err = membership.New(cfg.ID, cfg.Members)
	if err != nil {
		s.teardown()
		return nil, err
	}

	s.replica, err = core.NewReplica(core.ReplicaConfig{
		ID:              cfg.ID,
		Members:         cfg.Members,
		Items:           cfg.Items,
		Level:           cfg.Level,
		Technique:       cfg.Technique,
		Network:         s.node,
		DBLog:           s.dbLog,
		MsgLog:          msgLog,
		IncarnationBase: incarnation << 20,
		ExecTimeout:     cfg.ExecTimeout,
		StartDetector:   true,
		Detector:        fd.Config{Interval: cfg.HeartbeatInterval, Timeout: cfg.SuspectTimeout},
		OnDetectorEvent: s.onDetectorEvent,
		Pipeline:        cfg.pipeline(),
	})
	if err != nil {
		s.teardown()
		return nil, err
	}

	// State transfer rides the replica's own router/endpoint, so it shares
	// the peer transport's reconnect machinery.
	router := s.replica.Router()
	router.Handle(msgPull, s.onPull)
	router.Handle(msgSnap, s.onSnap)

	if n, err := s.replica.ReplayLoggedMessages(); err != nil {
		s.cfg.Logf("server %s: end-to-end replay failed: %v", cfg.ID, err)
	} else if n > 0 {
		s.cfg.Logf("server %s: replayed %d logged broadcast messages", cfg.ID, n)
	}

	s.clientLn, err = net.Listen("tcp", cfg.ClientAddr)
	if err != nil {
		s.replica.Close()
		s.teardown()
		return nil, fmt.Errorf("server: client listener: %w", err)
	}

	// Ask every peer for a snapshot now that our endpoint is listening: a
	// rejoining replica catches up on everything it missed while dead (the
	// sequencer does not retransmit old ORDERs).  Responses install
	// monotonically, so answers from several peers are all safe.
	s.pullFromPeers()

	s.wg.Add(2)
	go s.acceptLoop()
	go s.resyncLoop()

	s.cfg.Logf("server %s: serving clients on %s (incarnation %d, technique %s, level %s)",
		cfg.ID, s.ClientAddr(), incarnation, cfg.Technique, cfg.Level)
	return s, nil
}

// ClientAddr returns the bound client listener address (with port 0
// resolved).
func (s *Server) ClientAddr() string {
	if s.clientLn == nil {
		return s.cfg.ClientAddr
	}
	return s.clientLn.Addr().String()
}

// PeerAddr returns this replica's peer address.
func (s *Server) PeerAddr() string { return s.cfg.ID }

// View returns the current membership view.
func (s *Server) View() membership.View { return s.views.View() }

// Replica exposes the underlying replica engine (tests).
func (s *Server) Replica() *core.Replica { return s.replica }

// onDetectorEvent converts failure detector transitions into membership view
// changes: a suspected peer leaves the view, a heartbeat from it re-admits
// it.  The broadcaster was already informed by the replica's own wiring.
func (s *Server) onDetectorEvent(ev fd.Event) {
	if ev.Suspected {
		if v, changed := s.views.Leave(ev.Peer); changed {
			s.cfg.Logf("server %s: suspect %s -> installed %s", s.cfg.ID, ev.Peer, v)
		}
		return
	}
	if v, _, err := s.views.Join(ev.Peer); err == nil && v.Contains(ev.Peer) {
		s.cfg.Logf("server %s: peer %s alive -> %s", s.cfg.ID, ev.Peer, v)
	}
}

// onPull answers a peer's state transfer request with our snapshot.
func (s *Server) onPull(m transport.Message) {
	snap := s.replica.Snapshot()
	router := s.replica.Router()
	if router == nil {
		return
	}
	if err := router.Send(m.From, transport.Message{Type: msgSnap, Payload: appendSnapshot(nil, snap)}); err != nil {
		s.cfg.Logf("server %s: snapshot to %s failed: %v", s.cfg.ID, m.From, err)
	}
}

// onSnap merges a received snapshot.  The replica is live (it may be
// applying deliveries right now), so this must use the concurrent-safe
// per-item newest-version merge — MergeSnapshot — not InstallSnapshot, whose
// read-merge-restore would revert any install racing with it.  Stale or
// duplicate snapshots are no-ops.
func (s *Server) onSnap(m transport.Message) {
	snap, err := decodeSnapshot(m.Payload)
	if err != nil {
		s.cfg.Logf("server %s: bad snapshot from %s: %v", s.cfg.ID, m.From, err)
		return
	}
	before := s.replica.LastAppliedSeq()
	merged := s.replica.MergeSnapshot(snap)
	if after := s.replica.LastAppliedSeq(); merged > 0 || after > before {
		s.cfg.Logf("server %s: merged snapshot from %s (%d items, seq %d -> %d)",
			s.cfg.ID, m.From, merged, before, after)
	}
}

// pullFromPeers broadcasts a state transfer request to every peer.
func (s *Server) pullFromPeers() {
	router := s.replica.Router()
	if router == nil {
		return
	}
	for _, peer := range s.cfg.Members {
		if peer == s.cfg.ID {
			continue
		}
		router.Send(peer, transport.Message{Type: msgPull})
	}
}

// resyncLoop re-pulls peer snapshots whenever the replica's applied sequence
// stalls: a replica that was dead while ORDER messages flowed has a delivery
// gap the sequencer will never refill, and only a snapshot can close it.
// Pulling on stall rather than on a detected gap is deliberately coarse —
// installs are monotone merges, so a spurious pull costs one message pair.
func (s *Server) resyncLoop() {
	defer s.wg.Done()
	last := s.replica.LastAppliedSeq()
	ticker := time.NewTicker(s.cfg.ResyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			now := s.replica.LastAppliedSeq()
			if now == last {
				s.pullFromPeers()
			}
			last = now
		}
	}
}

// Close shuts the server down gracefully: stop accepting clients, let
// in-flight transactions finish, force the WALs, then tear the replica and
// transports down.  Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	close(s.stop)
	if s.clientLn != nil {
		s.clientLn.Close()
	}
	// Drain: client handlers exit on their own (their reads fail once the
	// peer closes, their Executes are bounded by ExecTimeout) — but nudge
	// them by closing the connections, then wait.
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()

	// Force everything appended so far; the replica teardown below closes
	// the logs.
	if s.dbLog != nil {
		s.dbLog.Sync()
	}
	if s.msgLog != nil {
		s.msgLog.Sync()
	}
	var err error
	if s.replica != nil {
		err = s.replica.Close()
	}
	s.teardown()
	s.cfg.Logf("server %s: shut down", s.cfg.ID)
	return err
}

// teardown releases listeners and logs (idempotent; Close order matters: the
// replica owns the db log's lifetime via db.Close).
func (s *Server) teardown() {
	if s.msgLog != nil {
		if err := s.msgLog.Close(); err != nil && !errors.Is(err, wal.ErrClosed) {
			s.cfg.Logf("server %s: close message WAL: %v", s.cfg.ID, err)
		}
	}
	s.node.Close()
}

// bumpIncarnation reads, increments and durably rewrites the process
// incarnation counter.  Every process start gets a fresh abcast incarnation
// namespace; without it the sequencer would treat the restarted replica's
// messages as duplicates of its previous life and silently discard them.
func bumpIncarnation(path string) (uint64, error) {
	var n uint64
	if b, err := os.ReadFile(path); err == nil {
		v, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 32)
		if perr != nil {
			return 0, fmt.Errorf("server: corrupt incarnation file %s: %q", path, b)
		}
		n = v
	} else if !os.IsNotExist(err) {
		return 0, fmt.Errorf("server: read incarnation file: %w", err)
	}
	n++
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(n, 10)), 0o644); err != nil {
		return 0, fmt.Errorf("server: write incarnation file: %w", err)
	}
	f, err := os.Open(tmp)
	if err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("server: install incarnation file: %w", err)
	}
	return n, nil
}

// ctxForRequest derives the per-request context: bounded by ExecTimeout and
// cancelled by server shutdown.
func (s *Server) ctxForRequest() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ExecTimeout)
	go func() {
		select {
		case <-s.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}
