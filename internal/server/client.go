package server

import (
	"bufio"
	"net"
	"sync"
	"time"

	"groupsafe/internal/netproto"
)

// This file is the client-facing half of the server: the accept loop and the
// per-connection protocol handlers for gsdb.Dial clients.  One connection
// multiplexes concurrent requests by correlation ID; each request runs in its
// own goroutine so a slow very-safe commit never blocks a local read.

const clientHandshakeTimeout = 5 * time.Second

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.clientLn.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return
			default:
			}
			s.cfg.Logf("server %s: accept: %v", s.cfg.ID, err)
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveClient(conn)
	}
}

func (s *Server) serveClient(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	conn.SetDeadline(time.Now().Add(clientHandshakeTimeout))
	br := bufio.NewReader(conn)
	if err := netproto.ReadHandshake(br); err != nil {
		s.cfg.Logf("server %s: client %s: %v", s.cfg.ID, conn.RemoteAddr(), err)
		return
	}
	if err := netproto.WriteHandshake(conn); err != nil {
		return
	}
	conn.SetDeadline(time.Time{})

	var wmu sync.Mutex // one writer lock per connection: responses interleave
	reply := func(f netproto.Frame) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := netproto.WriteFrame(conn, f); err != nil {
			conn.Close() // the read loop will notice and unwind
		}
	}

	for {
		f, err := netproto.ReadFrame(br)
		if err != nil {
			return // client went away (or shutdown closed the conn)
		}
		go s.handleFrame(f, reply)
	}
}

func (s *Server) handleFrame(f netproto.Frame, reply func(netproto.Frame)) {
	switch f.Type {
	case netproto.MsgExec:
		req, err := netproto.DecodeRequest(f.Payload)
		if err != nil {
			reply(netproto.Frame{CorrID: f.CorrID, Type: netproto.MsgError, Payload: netproto.AppendError(nil, err)})
			return
		}
		ctx, cancel := s.ctxForRequest()
		res, err := s.replica.Execute(ctx, req)
		cancel()
		if err != nil {
			reply(netproto.Frame{CorrID: f.CorrID, Type: netproto.MsgError, Payload: netproto.AppendError(nil, err)})
			return
		}
		reply(netproto.Frame{CorrID: f.CorrID, Type: netproto.MsgResult, Payload: netproto.AppendResult(nil, res)})

	case netproto.MsgInfo:
		reply(netproto.Frame{CorrID: f.CorrID, Type: netproto.MsgInfoResult, Payload: netproto.AppendInfo(nil, s.info())})

	default:
		reply(netproto.Frame{CorrID: f.CorrID, Type: netproto.MsgError,
			Payload: []byte{netproto.CodeGeneric, 0}})
	}
}

// info assembles the server status report.
func (s *Server) info() netproto.ServerInfo {
	view := s.views.View()
	items := s.replica.StoreItems()
	out := netproto.ServerInfo{
		ID:             s.cfg.ID,
		Primary:        s.replica.IsPrimary(),
		Crashed:        s.replica.Crashed(),
		ViewID:         view.ID,
		ViewMembers:    view.Members,
		LastAppliedSeq: s.replica.LastAppliedSeq(),
		DurableLSN:     s.replica.DurableLSN(),
		Items:          make([]netproto.ItemState, len(items)),
	}
	for i, it := range items {
		out.Items[i] = netproto.ItemState{Value: it.Value, Version: it.Version}
	}
	return out
}
