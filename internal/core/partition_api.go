package core

import (
	"context"
	"fmt"
	"time"
)

// This file is the per-partition API consumed by the partition router
// (internal/partition): snapshot reads with versions for the router-side read
// phase, and the submit primitives of the ordered two-phase commit.  Each
// method runs on ONE partition's replica; the router composes them across
// partitions.  Single-partition deployments never call anything here.

// submitGate is the crash-check prologue shared by the router-facing submit
// methods (Execute's prologue, minus request validation).
func (r *Replica) submitGate() (chan struct{}, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.crashed {
		return nil, ErrCrashed
	}
	return r.crashCh, nil
}

// ResolveLevel resolves the externalisation safety level for a per-request
// override against this replica's technique and machinery (see
// effectiveLevel); nil means the cluster's configured level.
func (r *Replica) ResolveLevel(override *SafetyLevel) (SafetyLevel, error) {
	return r.effectiveLevel(Request{Safety: override})
}

// SnapshotReads reads the given items from one MVCC snapshot of this replica,
// returning the values, the observed versions (the certification read set of
// the router-side read phase), and the freshness token sampled before the
// snapshot.  minFreshness imposes the usual floor; maxStaleness imposes the
// bounded-staleness lease (ErrTooStale when this partition replica cannot
// prove it is within the bound).  countQuery selects whether the read is
// accounted as a served query (the read-only fan-out path) or as the
// invisible read phase of an update transaction.
func (r *Replica) SnapshotReads(ctx context.Context, items []int, minFreshness uint64, maxStaleness time.Duration, countQuery bool) (values map[int]int64, versions map[int]uint64, token uint64, err error) {
	crashCh, err := r.submitGate()
	if err != nil {
		return nil, nil, 0, err
	}
	ctx, cancel := r.withDefaultTimeout(ctx)
	defer cancel()
	if maxStaleness > 0 {
		if !r.cfg.Level.UsesGroupCommunication() {
			return nil, nil, 0, r.errNoFreshnessSequence()
		}
		if floor := r.stalenessFloor(maxStaleness); r.fresh.appliedSeq() < floor {
			return nil, nil, 0, fmt.Errorf("%w: applied %d, need %d for %v",
				ErrTooStale, r.fresh.appliedSeq(), floor, maxStaleness)
		}
	}
	if minFreshness > 0 {
		if !r.cfg.Level.UsesGroupCommunication() {
			return nil, nil, 0, r.errNoFreshnessSequence()
		}
		if err := r.waitFreshness(ctx, minFreshness, crashCh); err != nil {
			return nil, nil, 0, err
		}
	}
	token = r.LastAppliedSeq()
	rt, err := r.dbase.BeginRead()
	if err != nil {
		return nil, nil, 0, ErrCrashed
	}
	defer rt.Close()
	values = make(map[int]int64, len(items))
	versions = make(map[int]uint64, len(items))
	for _, it := range items {
		v, ver, err := rt.ReadVersioned(it)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("core: read item %d: %w", it, err)
		}
		values[it] = v
		if _, seen := versions[it]; !seen {
			versions[it] = ver
		}
	}
	if countQuery {
		r.mu.Lock()
		r.stats.Queries++
		r.stats.Committed++
		r.mu.Unlock()
	}
	return values, versions, token, nil
}

// SubmitCertified broadcasts one already-executed sub-transaction (read
// versions plus write set, as produced by the router's read phase) through
// this partition's total order and waits for its certification outcome at the
// given safety level.  It is the single-participant fast path of a decomposed
// transaction: the payload is the normal certification payload, so the
// partition treats it exactly like a locally delegated update.
func (r *Replica) SubmitCertified(ctx context.Context, gid uint64, level SafetyLevel, readVers map[int]uint64, writes map[int]int64) (Outcome, uint64, uint64, error) {
	crashCh, err := r.submitGate()
	if err != nil {
		return OutcomePending, 0, 0, err
	}
	r.mu.Lock()
	r.stats.Executed++
	r.mu.Unlock()
	payload := encodeTxnPayload(gid, r.cfg.ID, level, readVers, writes)
	out, err := r.submitAndWait(ctx, gid, payload, level, crashCh)
	if err != nil {
		return OutcomePending, 0, 0, err
	}
	return out.outcome, uint64(out.lsn), out.seq, nil
}

// SubmitPrepare broadcasts the prepare of one cross-partition sub-transaction
// through this partition's total order and waits for the partition's vote:
// OutcomeCommitted means certified and staged in-doubt (vote yes),
// OutcomeAborted means the certification failed (vote no).  coord names the
// coordinator partition whose decide record will resolve the transaction.
func (r *Replica) SubmitPrepare(ctx context.Context, gid uint64, level SafetyLevel, coord int, readVers map[int]uint64, writes map[int]int64) (Outcome, uint64, error) {
	crashCh, err := r.submitGate()
	if err != nil {
		return OutcomePending, 0, err
	}
	r.mu.Lock()
	r.stats.Executed++
	r.mu.Unlock()
	payload := encode2PCPayload(phasePrepare, gid, r.cfg.ID, level, coord, readVers, writes)
	out, err := r.submitAndWait(ctx, gid, payload, level, crashCh)
	if err != nil {
		return OutcomePending, 0, err
	}
	return out.outcome, out.seq, nil
}

// SubmitDecide broadcasts the decision for a prepared cross-partition
// transaction through this partition's total order and waits until it is
// processed.  The returned outcome is the decision actually recorded — the
// first decision for a gid wins, so a caller racing the presumed-abort
// resolver learns the authoritative outcome from the return value and must
// propagate THAT to the remaining participants.  For commit decisions, writes
// carries this partition's share of the write set so a participant replica
// without a local prepare still installs it.
func (r *Replica) SubmitDecide(ctx context.Context, gid uint64, level SafetyLevel, commit bool, writes map[int]int64) (Outcome, uint64, uint64, error) {
	crashCh, err := r.submitGate()
	if err != nil {
		return OutcomePending, 0, 0, err
	}
	phase := byte(phaseDecideAbort)
	if commit {
		phase = phaseDecideCommit
	}
	payload := encode2PCPayload(phase, gid, r.cfg.ID, level, 0, nil, writes)
	out, err := r.submitAndWait(ctx, gid, payload, level, crashCh)
	if err != nil {
		return OutcomePending, 0, 0, err
	}
	return out.outcome, uint64(out.lsn), out.seq, nil
}
