package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"groupsafe/internal/workload"
)

// waitConsistent is the test shorthand for WaitConsistent under a timeout;
// it reports whether the replicas converged.
func waitConsistent(c *Cluster, d time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return c.WaitConsistent(ctx) == nil
}

func newTestCluster(t *testing.T, level SafetyLevel, replicas int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Replicas:    replicas,
		Items:       256,
		Level:       level,
		ExecTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func writeReq(id uint64, item int, value int64) Request {
	return Request{ID: id, Ops: []workload.Op{{Item: item, Write: true, Value: value}}}
}

func readReq(items ...int) Request {
	ops := make([]workload.Op, len(items))
	for i, it := range items {
		ops[i] = workload.Op{Item: it}
	}
	return Request{Ops: ops}
}

func TestGroupSafeCommitPropagatesToAllReplicas(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	res, err := c.Execute(context.Background(), 0, writeReq(0, 7, 77))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
	if !waitConsistent(c, 2*time.Second) {
		t.Fatal("replicas did not converge")
	}
	for i := 0; i < c.Size(); i++ {
		v, err := c.Value(i, 7)
		if err != nil || v != 77 {
			t.Fatalf("replica %d: item 7 = %d, %v", i, v, err)
		}
	}
}

func TestEveryLevelCommitsAndConverges(t *testing.T) {
	for _, level := range AllLevels() {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			c := newTestCluster(t, level, 3)
			res, err := c.Execute(context.Background(), 1, writeReq(0, 3, 33))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Committed() {
				t.Fatalf("transaction did not commit under %v", level)
			}
			if res.Delegate != "s2" || res.Level != level {
				t.Fatalf("result metadata = %+v", res)
			}
			if !waitConsistent(c, 3*time.Second) {
				t.Fatalf("replicas did not converge under %v", level)
			}
			v, _ := c.Value(2, 3)
			if v != 33 {
				t.Fatalf("replica 3 did not apply the write under %v: %d", level, v)
			}
		})
	}
}

func TestReadYourOwnClusterWrites(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	if _, err := c.Execute(context.Background(), 0, writeReq(0, 5, 50)); err != nil {
		t.Fatal(err)
	}
	waitConsistent(c, 2*time.Second)
	res, err := c.Execute(context.Background(), 2, readReq(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadValues[5] != 50 {
		t.Fatalf("read = %v", res.ReadValues)
	}
}

func TestReadOnlyTransactionsDoNotBroadcast(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	before := c.Replica(0).Stats().Delivered
	res, err := c.Execute(context.Background(), 0, readReq(1, 2, 3))
	if err != nil || !res.Committed() {
		t.Fatalf("read-only txn failed: %+v, %v", res, err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := c.Replica(0).Stats().Delivered; got != before {
		t.Fatalf("read-only transaction was broadcast (%d deliveries)", got-before)
	}
}

func TestCertificationAbortsConflictingTransaction(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	// Seed item 10.
	if _, err := c.Execute(context.Background(), 0, writeReq(0, 10, 1)); err != nil {
		t.Fatal(err)
	}
	waitConsistent(c, 2*time.Second)

	// Build a request whose read version is captured now...
	_, ver10, _ := c.Replica(1).DB().ReadVersioned(10)
	readVers := map[int]uint64{10: ver10}
	_ = readVers
	// ...by issuing two read-modify-write transactions that both read item 10
	// before either delivery: we emulate this by running the first write
	// through replica 0 and then submitting a stale-read transaction manually.
	stale := Request{ID: 0, Ops: []workload.Op{
		{Item: 10, Write: false},
		{Item: 10, Write: true, Value: 99},
	}}
	// Delegate 1 reads version v, then delegate 0 updates item 10 (bumping the
	// version) before delegate 1's broadcast is delivered.  To make the race
	// deterministic we pre-read on replica 1, then commit on replica 0, then
	// submit replica 1's transaction with the stale read version via the
	// payload path: the public API races, so instead we run both concurrently
	// many times and require at least one certification abort.
	aborts := 0
	for i := 0; i < 30 && aborts == 0; i++ {
		done := make(chan Result, 2)
		go func() {
			r, err := c.Execute(context.Background(), 0, Request{Ops: []workload.Op{{Item: 10, Write: false}, {Item: 10, Write: true, Value: int64(i)}}})
			if err == nil {
				done <- r
			} else {
				done <- Result{}
			}
		}()
		go func() {
			r, err := c.Execute(context.Background(), 1, stale)
			if err == nil {
				done <- r
			} else {
				done <- Result{}
			}
		}()
		a, b := <-done, <-done
		if a.Outcome == OutcomeAborted || b.Outcome == OutcomeAborted {
			aborts++
		}
		stale.ID = 0
	}
	if aborts == 0 {
		t.Skip("no conflicting interleaving observed; certification abort covered by unit test")
	}
	if !waitConsistent(c, 2*time.Second) {
		t.Fatal("replicas diverged despite certification")
	}
}

func TestWorkloadRunConsistency(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	gen := workload.NewGenerator(workload.Config{Items: 256, MinOps: 3, MaxOps: 6, WriteProb: 0.5}, 42)
	clients := make([]*Client, c.Size())
	for i := range clients {
		clients[i] = NewClient(c, i)
	}
	done := make(chan error, len(clients))
	for _, cl := range clients {
		cl := cl
		go func() { done <- cl.RunWorkload(context.Background(), gen, 15) }()
	}
	for range clients {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if !waitConsistent(c, 5*time.Second) {
		t.Fatal("replicas diverged under concurrent workload")
	}
	total := c.TotalStats()
	if total.Executed == 0 || total.Committed == 0 {
		t.Fatalf("stats = %+v", total)
	}
	commits, aborts := clients[0].Counts()
	if commits+aborts == 0 {
		t.Fatal("client recorded no transactions")
	}
	if len(clients[0].ResponseTimes()) != commits+aborts {
		t.Fatal("response times not recorded")
	}
}

func TestLazyReplicationCanDivergeOnConflicts(t *testing.T) {
	// Section 7: in an update-everywhere setting, lazy replication can
	// violate one-copy semantics even without failures.  Two replicas commit
	// conflicting writes locally; after lazy propagation the final value
	// depends on apply order, and lost updates are possible.  We only verify
	// the mechanism works and that both writes were accepted locally without
	// any coordination.
	c := newTestCluster(t, Safety1Lazy, 3)
	resA, err := c.Execute(context.Background(), 0, writeReq(0, 20, 200))
	if err != nil {
		t.Fatal(err)
	}
	resB, err := c.Execute(context.Background(), 1, writeReq(0, 20, 300))
	if err != nil {
		t.Fatal(err)
	}
	if !resA.Committed() || !resB.Committed() {
		t.Fatal("lazy replication should accept both conflicting transactions")
	}
	// Both commits were acknowledged before any inter-replica coordination:
	// that is exactly the 1-safe guarantee (and its weakness).
	time.Sleep(200 * time.Millisecond)
	v0, _ := c.Value(0, 20)
	v2, _ := c.Value(2, 20)
	if v0 == 0 || v2 == 0 {
		t.Fatalf("lazy propagation did not reach replicas: %d, %d", v0, v2)
	}
}

func TestVerySafeBlocksWhileAServerIsDown(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Replicas:    3,
		Items:       64,
		Level:       VerySafe,
		ExecTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// All servers up: commits fine.
	if res, err := c.Execute(context.Background(), 0, writeReq(0, 1, 1)); err != nil || !res.Committed() {
		t.Fatalf("very-safe commit with all servers up failed: %+v %v", res, err)
	}
	// One server down: the very-safe level cannot terminate (it needs an
	// acknowledgement from every server), so the request times out.
	c.Crash(2)
	_, err = c.Execute(context.Background(), 0, writeReq(0, 2, 2))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("very-safe with a crashed server should time out, got %v", err)
	}
}

func TestGroupSafeToleratesMinorityCrash(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	if _, err := c.Execute(context.Background(), 0, writeReq(0, 1, 10)); err != nil {
		t.Fatal(err)
	}
	waitConsistent(c, 2*time.Second)

	// Crash one replica (a minority); the group continues.
	c.Crash(2)
	for _, r := range c.Replicas()[:2] {
		r.Suspect("s3")
	}
	res, err := c.Execute(context.Background(), 1, writeReq(0, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed() {
		t.Fatalf("commit with a minority crashed failed: %+v", res)
	}
	if c.LiveCount() != 2 {
		t.Fatalf("LiveCount = %d", c.LiveCount())
	}
	// Let the surviving replicas drain their delivery queues so the state
	// transfer donor is up to date (checkpoint-based recovery cannot replay
	// messages the recovering replica missed).
	if !waitConsistent(c, 2*time.Second) {
		t.Fatal("survivors did not converge before recovery")
	}

	// The crashed replica recovers via state transfer and catches up.
	if _, err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	if !waitConsistent(c, 3*time.Second) {
		t.Fatal("recovered replica did not catch up")
	}
	v, _ := c.Value(2, 2)
	if v != 20 {
		t.Fatalf("recovered replica missing transfered state: item2=%d", v)
	}
}

func TestExecuteOnCrashedReplicaFails(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	c.Crash(0)
	if _, err := c.Execute(context.Background(), 0, writeReq(0, 1, 1)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("execute on crashed replica: %v", err)
	}
	if _, err := c.Execute(context.Background(), 99, writeReq(0, 1, 1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("execute on unknown replica: %v", err)
	}
	// Crashing twice is a no-op; recovering a non-crashed replica errors.
	c.Crash(0)
	if _, err := c.Recover(1); err == nil {
		t.Fatal("recovering a live replica should fail")
	}
	if _, err := c.Recover(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("recover unknown replica: %v", err)
	}
}

func TestClusterAccessors(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	if c.Size() != 3 || c.Level() != GroupSafe {
		t.Fatal("accessors wrong")
	}
	if c.Replica(-1) != nil || c.Replica(3) != nil {
		t.Fatal("out-of-range replica should be nil")
	}
	if c.Replica(0).ID() != "s1" || c.Replica(0).Level() != GroupSafe {
		t.Fatal("replica accessors wrong")
	}
	if c.Network() == nil {
		t.Fatal("network accessor nil")
	}
	if _, err := c.Value(99, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Value on unknown replica: %v", err)
	}
	if !c.Consistent() {
		t.Fatal("fresh cluster should be consistent")
	}
}

func TestReplicaConfigValidation(t *testing.T) {
	if _, err := NewReplica(ReplicaConfig{}); err == nil {
		t.Fatal("empty config should fail")
	}
	if _, err := NewReplica(ReplicaConfig{ID: "x"}); err == nil {
		t.Fatal("missing members should fail")
	}
	c := newTestCluster(t, GroupSafe, 3)
	if _, err := NewReplica(ReplicaConfig{ID: "zz", Members: []string{"a"}, Network: c.Network()}); err == nil {
		t.Fatal("self not in members should fail")
	}
}
