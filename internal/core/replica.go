package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"groupsafe/internal/db"
	"groupsafe/internal/gcs"
	"groupsafe/internal/gcs/abcast"
	"groupsafe/internal/gcs/e2e"
	"groupsafe/internal/gcs/fd"
	"groupsafe/internal/gcs/transport"
	"groupsafe/internal/storage"
	"groupsafe/internal/tuning"
	"groupsafe/internal/wal"
)

// Message types used by the replication layer on top of the shared router.
const (
	msgLazy = "rep.lazy"
	msgAck  = "rep.ack"
)

// Errors returned by replicas.
var (
	ErrCrashed  = errors.New("core: replica is crashed")
	ErrTimeout  = errors.New("core: timed out waiting for the transaction outcome")
	ErrNotFound = errors.New("core: replica not found")
	// ErrNotPrimary is returned by the lazy primary-copy technique when an
	// update transaction is submitted to a non-primary replica.
	ErrNotPrimary = errors.New("core: lazy primary-copy: update transactions must execute at the primary")
	// ErrComputeNotReplicable is returned by active replication for requests
	// with a Compute hook: a Go closure cannot be broadcast, and active
	// replication replays the full operation list at every replica.
	ErrComputeNotReplicable = errors.New("core: active replication cannot ship Compute closures; use static operation lists")
	// ErrSafetyUnavailable is returned when a per-transaction safety override
	// (Request.Safety) asks for a level the cluster's technique or machinery
	// cannot provide — e.g. 2-safe on a cluster built without the end-to-end
	// message log, or any group-communication level on a lazy cluster.
	ErrSafetyUnavailable = errors.New("core: requested per-transaction safety level is unavailable on this cluster")
	// ErrTooStale is returned by a read-only execution carrying a
	// Request.MaxStaleness bound when the serving replica cannot prove its
	// snapshot is within the bound: it lags the freshest advertised sequence
	// by more than the bound's worth of deliveries at the estimated delivery
	// rate.  The client should redirect the query to a fresher replica
	// instead of waiting here.
	ErrTooStale = errors.New("core: replica lags beyond the requested staleness bound")
	// ErrSnapshotTooOld is returned by a read whose MVCC snapshot was evicted
	// by the pin-age cap (ReplicaConfig.MaxPinAge): the snapshot trailed the
	// apply watermark too far and its version history has been reclaimed.
	// Retry on a fresh snapshot.
	ErrSnapshotTooOld = storage.ErrSnapshotTooOld
)

// ReplicaConfig configures one replica server.
type ReplicaConfig struct {
	// ID is the replica's address on the network (must appear in Members).
	ID string
	// Members is the static list of all replica addresses.
	Members []string
	// Items is the database size.
	Items int
	// Level is the safety criterion enforced when answering clients.
	Level SafetyLevel
	// Technique selects the replication technique (certification-based
	// database state machine, active replication, or lazy primary-copy).
	// The technique may constrain or canonicalise Level: active replication
	// needs a group-communication level (the zero level is promoted to
	// group-safe), lazy primary-copy is inherently 1-safe.
	Technique TechniqueID
	// Network attaches the replica to its peers: the shared in-memory
	// network in simulated clusters, a transport.TCPNode in one-process-per-
	// replica deployments.
	Network transport.Network
	// DBLog overrides the database component's write-ahead log.  Nil selects
	// an in-memory log with DiskSyncDelay (the simulated-cluster default);
	// server processes pass a file-backed wal.FileLog so committed state
	// survives a real process kill.
	DBLog wal.Log
	// MsgLog overrides the end-to-end broadcast's message log the same way.
	// Only consulted when Level.RequiresEndToEnd().
	MsgLog wal.Log
	// IncarnationBase offsets the abcast incarnation numbers AND the
	// transaction-id counter of this process.  The in-process crash model
	// bumps incarnations within one Replica value; a restarted OS process
	// constructs a brand-new Replica whose counters restart at 1, so a
	// server persists a monotone base across restarts — otherwise the
	// sequencer would silently ignore the reborn replica's messages as
	// duplicates of its previous life, and (worse) a reborn delegate would
	// reuse transaction ids from its previous life, which every replica's
	// applied set already contains: the reissued transaction would certify,
	// acknowledge, and then be skipped at install everywhere as a presumed
	// re-delivery — silent loss of an acknowledged transaction.  The base
	// leaves 2^20 ids per incarnation before the next life's range begins.
	IncarnationBase uint64
	// DiskSyncDelay emulates the latency of forcing a log to disk.
	DiskSyncDelay time.Duration
	// ExecTimeout bounds how long Execute waits for an outcome (default 10s).
	ExecTimeout time.Duration
	// LazyPropagationDelay postpones the asynchronous write-set propagation
	// of the 0-safe, lazy and lazy primary-copy modes, widening the window
	// in which a delegate crash loses the transaction (used by the Table 2
	// experiments).
	LazyPropagationDelay time.Duration
	// RecordApplied keeps an in-memory log of every transaction this replica
	// externalises, in apply order (see AppliedLog).  Off by default; the
	// scenario fuzzer turns it on to reconstruct the committed history for
	// its invariant checks.  The log is a harness-side observer: it survives
	// the simulated crash of the replica (unlike volatile state) and may
	// contain duplicate sequence numbers after an end-to-end replay.
	RecordApplied bool
	// StartDetector runs a heartbeat failure detector wired to the atomic
	// broadcast's Suspect mechanism.
	StartDetector bool
	// Detector tunes the failure detector when StartDetector is set.
	Detector fd.Config
	// OnDetectorEvent, when set with StartDetector, additionally receives
	// every failure detector transition (after the broadcaster has been
	// informed).  The server layer uses it to drive membership view changes.
	OnDetectorEvent func(fd.Event)
	// MaxPinAge bounds how many apply sequences a read-only MVCC snapshot may
	// trail the visible watermark before it is evicted and its reads return
	// ErrSnapshotTooOld (0: unlimited).  It caps the version history one slow
	// analytic scan can retain under a write storm.
	MaxPinAge uint64
	// Pipeline carries the shared tuning knobs (BatchSize, BatchDelay,
	// ApplyWorkers); see the tuning package for their semantics.
	tuning.Pipeline
}

// applyDefaults validates the configuration, resolves the technique and lets
// it canonicalise the safety level.
func (c *ReplicaConfig) applyDefaults() (Technique, error) {
	if c.ID == "" {
		return nil, fmt.Errorf("core: replica ID is required")
	}
	if len(c.Members) == 0 {
		return nil, fmt.Errorf("core: member list is required")
	}
	if c.Network == nil {
		return nil, fmt.Errorf("core: network is required")
	}
	if c.Items <= 0 {
		c.Items = 1024
	}
	if c.ExecTimeout <= 0 {
		c.ExecTimeout = 10 * time.Second
	}
	tech, err := techniqueFor(c.Technique)
	if err != nil {
		return nil, err
	}
	level, err := tech.checkLevel(c.Level)
	if err != nil {
		return nil, err
	}
	c.Level = level
	return tech, nil
}

// ReplicaStats are cumulative counters of one replica.
type ReplicaStats struct {
	Executed  uint64
	Committed uint64
	Aborted   uint64
	Delivered uint64
	LazyApply uint64
	// Queries counts read-only transactions served locally from an MVCC
	// snapshot — no group communication, no locks, no aborts.  Queries also
	// count into Executed and Committed; Delivered never includes them
	// (nothing is broadcast).
	Queries uint64
	// AcksSent counts the very-safe per-replica acknowledgement messages this
	// replica sent to remote delegates (its own local ack is not counted).
	// The per-transaction safety tests use it to assert, by message count,
	// that a very-safe transaction really waited for remote acknowledgements.
	AcksSent uint64
}

// Replica is one server of the replicated database: a local database
// component plus a group communication component, combined by the pluggable
// replication technique.
type Replica struct {
	cfg   ReplicaConfig
	index int
	tech  Technique

	// lifeMu serialises incarnation transitions (the teardown of Crash/Close
	// and the rebuild of Recover): a crash triggered from inside the apply
	// loop's deliver hook must not interleave with a concurrent Recover.
	lifeMu sync.Mutex

	// applyMu is the apply barrier: held for the duration of every delivered
	// batch (and every lazy write-set install), and by Snapshot.  A state
	// snapshot taken mid-batch would be poisoned — deferred staging marks a
	// transaction applied before its writes reach the store, so a snapshot
	// cut between the two ships an applied id without its writes, and the
	// receiver then skips its own delivery of that transaction and loses the
	// writes for good.  Snapshot therefore waits for the in-flight batch and
	// captures between batches.
	applyMu sync.Mutex

	mu          sync.Mutex
	dbase       *db.DB
	dbLog       wal.Log
	msgLog      wal.Log
	router      *gcs.Router
	ab          *abcast.Broadcaster
	e2eb        *e2e.Broadcaster
	detector    *fd.Detector
	pending     map[uint64]chan txnOutcome
	veryAcks    map[uint64]map[string]bool
	veryDone    map[uint64]chan struct{}
	crashed     bool
	crashCh     chan struct{}
	incarnation int
	applierStop chan struct{}
	nextTxn     uint64
	deliverHook func(txnID uint64)
	stats       ReplicaStats
	appliedLog  []AppliedRecord

	// fresh is the freshness gate: the applied-sequence watermark, the
	// ordered wakeup heap for floored sessions, and the delivery-rate
	// estimate backing bounded-staleness leases (freshgate.go).
	fresh freshGate
	// peerApplied caches the applied sequence each peer last advertised
	// (piggybacked on abcast ACK/ORDER traffic and on heartbeats).  The map
	// is created once from Members and never mutated, so reads are lock-free.
	peerApplied map[string]*atomic.Uint64

	// Ordered asynchronous write-set propagation of the lazy modes
	// (technique_lazy.go).
	lazyQueue    []*lazyItem
	lazyDraining bool
}

// NewReplica creates and starts a replica.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	tech, err := cfg.applyDefaults()
	if err != nil {
		return nil, err
	}
	index := -1
	for i, m := range cfg.Members {
		if m == cfg.ID {
			index = i
			break
		}
	}
	if index < 0 {
		return nil, fmt.Errorf("core: replica %q not in member list %v", cfg.ID, cfg.Members)
	}
	r := &Replica{
		cfg:         cfg,
		index:       index,
		tech:        tech,
		pending:     make(map[uint64]chan txnOutcome),
		veryAcks:    make(map[uint64]map[string]bool),
		veryDone:    make(map[uint64]chan struct{}),
		crashCh:     make(chan struct{}),
		nextTxn:     cfg.IncarnationBase,
		peerApplied: make(map[string]*atomic.Uint64, len(cfg.Members)),
	}
	for _, m := range cfg.Members {
		r.peerApplied[m] = new(atomic.Uint64)
	}

	r.dbLog = cfg.DBLog
	if r.dbLog == nil {
		r.dbLog = wal.NewMemLogWithDelay(cfg.DiskSyncDelay)
	}
	r.msgLog = cfg.MsgLog
	policy := db.AsyncCommit
	if cfg.Level.SyncOnCommit() {
		policy = db.SyncOnCommit
	}
	dbase, err := db.Open(db.Config{Items: cfg.Items, Policy: policy, Log: r.dbLog, MaxPinAge: cfg.MaxPinAge})
	if err != nil {
		return nil, fmt.Errorf("core: open database: %w", err)
	}
	r.dbase = dbase

	if err := r.startGroupCommunication(); err != nil {
		return nil, err
	}
	return r, nil
}

// ID returns the replica's address.
func (r *Replica) ID() string { return r.cfg.ID }

// Level returns the replica's (canonicalised) safety level.
func (r *Replica) Level() SafetyLevel { return r.cfg.Level }

// Technique returns the replication technique the replica runs.
func (r *Replica) Technique() TechniqueID { return r.tech.ID() }

// IsPrimary reports whether this replica is the primary (the first member).
// Only the lazy primary-copy technique distinguishes the primary.
func (r *Replica) IsPrimary() bool { return r.index == 0 }

// DB exposes the local database component (used by consistency checks).
func (r *Replica) DB() *db.DB { return r.dbase }

// Crashed reports whether the replica is currently crashed.
func (r *Replica) Crashed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashed
}

// Stats returns a snapshot of the replica counters.
func (r *Replica) Stats() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// BroadcastStats returns the atomic broadcast counters of this replica (zero
// when the technique/safety level does not use group communication).  The
// benchmarks use it to measure the per-transaction message count of the
// batched pipeline.
func (r *Replica) BroadcastStats() abcast.Stats {
	r.mu.Lock()
	ab := r.ab
	r.mu.Unlock()
	if ab == nil {
		return abcast.Stats{}
	}
	return ab.Stats()
}

// LastAppliedSeq returns the highest atomic broadcast sequence number applied
// to the database.  The read is lock-free: it runs on the query hot path (one
// sample per read-only transaction) and inside the broadcast ACK path (the
// advertised-freshness piggyback).
func (r *Replica) LastAppliedSeq() uint64 { return r.fresh.appliedSeq() }

// notePeerApplied records the applied sequence a peer advertised (monotonic;
// stale adverts are ignored).  It is invoked from the abcast ACK/ORDER
// receive path and from heartbeat annotations, so it must stay lock-free.
func (r *Replica) notePeerApplied(peer string, seq uint64) {
	c, ok := r.peerApplied[peer]
	if !ok {
		return
	}
	for {
		cur := c.Load()
		if seq <= cur || c.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// PeerAppliedSeq returns the last applied sequence advertised by a peer (zero
// when none was heard yet); for the local replica it returns the live value.
func (r *Replica) PeerAppliedSeq(peer string) uint64 {
	if peer == r.cfg.ID {
		return r.fresh.appliedSeq()
	}
	if c, ok := r.peerApplied[peer]; ok {
		return c.Load()
	}
	return 0
}

// maxKnownSeq returns the highest applied sequence known anywhere in the
// group: the local watermark or the freshest peer advert.
func (r *Replica) maxKnownSeq() uint64 {
	m := r.fresh.appliedSeq()
	for peer, c := range r.peerApplied {
		if peer == r.cfg.ID {
			continue
		}
		if v := c.Load(); v > m {
			m = v
		}
	}
	return m
}

// DeliveryRate returns the replica's estimated apply rate in broadcast
// sequences per second (an EWMA sampled per externalised batch; zero before
// the first sample).  It is the estimate backing bounded-staleness leases.
func (r *Replica) DeliveryRate() float64 { return r.fresh.rate() }

// FreshnessWakeups returns the cumulative number of freshness-waiter wakeups
// (observability for the O(1)-wakeups-per-delivery property).
func (r *Replica) FreshnessWakeups() uint64 { return r.fresh.wakeCount() }

// SetDeliverHook installs a test hook invoked after a message is delivered by
// the group communication component but before the database processes it —
// the window in which the crash of Fig. 5 happens.
func (r *Replica) SetDeliverHook(fn func(txnID uint64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deliverHook = fn
}

// Suspect informs the replica's broadcaster that a peer is believed crashed
// (used by scenario drivers when no failure detector is running).
func (r *Replica) Suspect(peer string) {
	r.mu.Lock()
	ab := r.ab
	r.mu.Unlock()
	if ab != nil {
		ab.Suspect(peer)
	}
}

// Unsuspect reverses a Suspect: the peer is believed alive again (used by
// scenario drivers when a crashed replica recovers).
func (r *Replica) Unsuspect(peer string) {
	r.mu.Lock()
	ab := r.ab
	r.mu.Unlock()
	if ab != nil {
		ab.Unsuspect(peer)
	}
}

// nextTxnID assigns a globally unique transaction identifier: the replica
// index occupies the high bits, a local counter the low bits.  The counter
// starts at IncarnationBase, not zero: transaction ids must be unique across
// process restarts too, because every replica's applied-transaction set
// treats a familiar id as an idempotent re-delivery and silently skips the
// install — a reborn delegate reusing an id from its previous life would get
// its transaction certified and acknowledged but never applied anywhere.
func (r *Replica) nextTxnID() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextTxn++
	return uint64(r.index+1)<<40 | r.nextTxn
}

// Execute runs one client transaction with this replica as the delegate and
// returns when the notification condition of the transaction's safety level
// (the cluster's, or the Request.Safety override) holds.  Cancellation and
// deadlines are first-class: when ctx expires mid-flight the call returns
// promptly with a ctx.Err()-wrapped error (ErrTimeout for deadlines) and the
// transaction's waiter is deregistered; the transaction itself may still
// commit group-wide — only the notification is abandoned.  A context without
// a deadline gets the configured ExecTimeout as a default.
//
// Requests that cannot write (no write ops, no Compute hook) never reach the
// replication technique at all: they execute on a local MVCC snapshot with no
// group communication (executeReadOnly).  A request declared ReadOnly that
// nevertheless carries a write fails with ErrReadOnlyWrites.
func (r *Replica) Execute(ctx context.Context, req Request) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, ctxWaitError(ctx, req.ID, "before submission")
	}
	if req.ReadOnly && requestMayWrite(req) {
		return Result{}, fmt.Errorf("%w: txn %d", ErrReadOnlyWrites, req.ID)
	}
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return Result{}, ErrCrashed
	}
	crashCh := r.crashCh
	r.mu.Unlock()

	if req.ID == 0 {
		req.ID = r.nextTxnID()
	}
	r.mu.Lock()
	r.stats.Executed++
	r.mu.Unlock()

	if !requestMayWrite(req) {
		return r.executeReadOnly(ctx, req, crashCh)
	}
	return r.tech.execute(ctx, r, req, crashCh)
}

// WaitDurable blocks until the replica's local database log is durable up to
// lsn (as reported by Result.CommitLSN), forcing it on demand, or until ctx
// is done.  For safety levels that force on commit the call returns
// immediately; for the asynchronous-durability levels (group-safe) it is the
// explicit way to close the response-vs-durability gap for one transaction.
func (r *Replica) WaitDurable(ctx context.Context, lsn uint64) error {
	if lsn == 0 {
		return nil
	}
	done := make(chan error, 1)
	go func() { done <- r.dbase.ForceTo(wal.LSN(lsn)) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}
