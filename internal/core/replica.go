package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"groupsafe/internal/apply"
	"groupsafe/internal/db"
	"groupsafe/internal/gcs"
	"groupsafe/internal/gcs/abcast"
	"groupsafe/internal/gcs/e2e"
	"groupsafe/internal/gcs/fd"
	"groupsafe/internal/gcs/transport"
	"groupsafe/internal/storage"
	"groupsafe/internal/wal"
	"groupsafe/internal/workload"
)

// Message types used by the replication layer on top of the shared router.
const (
	msgLazy = "rep.lazy"
	msgAck  = "rep.ack"
)

// Errors returned by replicas.
var (
	ErrCrashed  = errors.New("core: replica is crashed")
	ErrTimeout  = errors.New("core: timed out waiting for the transaction outcome")
	ErrNotFound = errors.New("core: replica not found")
)

// ReplicaConfig configures one replica server.
type ReplicaConfig struct {
	// ID is the replica's address on the network (must appear in Members).
	ID string
	// Members is the static list of all replica addresses.
	Members []string
	// Items is the database size.
	Items int
	// Level is the safety criterion enforced when answering clients.
	Level SafetyLevel
	// Network is the shared in-memory network.
	Network *transport.MemNetwork
	// DiskSyncDelay emulates the latency of forcing a log to disk.
	DiskSyncDelay time.Duration
	// ExecTimeout bounds how long Execute waits for an outcome (default 10s).
	ExecTimeout time.Duration
	// LazyPropagationDelay postpones the asynchronous write-set propagation of
	// the 0-safe and lazy levels, widening the window in which a delegate
	// crash loses the transaction (used by the Table 2 experiments).
	LazyPropagationDelay time.Duration
	// StartDetector runs a heartbeat failure detector wired to the atomic
	// broadcast's Suspect mechanism.
	StartDetector bool
	// Detector tunes the failure detector when StartDetector is set.
	Detector fd.Config
	// BatchSize is the maximum number of concurrent A-broadcast payloads the
	// atomic broadcast coalesces into one DATA message (<= 1 disables
	// sender-side batching).  Independent of this knob, the apply loop always
	// drains delivered batches and forces the log once per drained batch.
	BatchSize int
	// BatchDelay bounds how long a payload waits for co-travellers before a
	// partial batch is flushed.
	BatchDelay time.Duration
	// ApplyWorkers bounds how many certified write sets of one drained batch
	// are installed concurrently.  Certification always stays serial in
	// delivery order; with ApplyWorkers > 1 the committed write sets are
	// partitioned by their item-conflict graph and independent write sets
	// install in parallel, conflicting ones chained in delivery order —
	// observationally identical to serial apply.  <= 1 keeps the serial
	// apply loop.
	ApplyWorkers int
}

func (c *ReplicaConfig) applyDefaults() error {
	if c.ID == "" {
		return fmt.Errorf("core: replica ID is required")
	}
	if len(c.Members) == 0 {
		return fmt.Errorf("core: member list is required")
	}
	if c.Network == nil {
		return fmt.Errorf("core: network is required")
	}
	if c.Items <= 0 {
		c.Items = 1024
	}
	if c.ExecTimeout <= 0 {
		c.ExecTimeout = 10 * time.Second
	}
	return nil
}

// ReplicaStats are cumulative counters of one replica.
type ReplicaStats struct {
	Executed  uint64
	Committed uint64
	Aborted   uint64
	Delivered uint64
	LazyApply uint64
}

// Replica is one server of the replicated database: a local database
// component plus a group communication component, combined by the replication
// protocol.
type Replica struct {
	cfg   ReplicaConfig
	index int

	// lifeMu serialises incarnation transitions (the teardown of Crash/Close
	// and the rebuild of Recover): a crash triggered from inside the apply
	// loop's deliver hook must not interleave with a concurrent Recover.
	lifeMu sync.Mutex

	mu             sync.Mutex
	dbase          *db.DB
	dbLog          *wal.MemLog
	msgLog         *wal.MemLog
	router         *gcs.Router
	ab             *abcast.Broadcaster
	e2eb           *e2e.Broadcaster
	detector       *fd.Detector
	pending        map[uint64]chan Outcome
	veryAcks       map[uint64]map[string]bool
	veryDone       map[uint64]chan struct{}
	crashed        bool
	crashCh        chan struct{}
	incarnation    int
	applierStop    chan struct{}
	lastAppliedSeq uint64
	nextTxn        uint64
	deliverHook    func(txnID uint64)
	stats          ReplicaStats
}

// applyState is the apply-pipeline state of ONE incarnation's apply
// goroutine: the conflict-graph scheduler and the reusable batch arenas that
// make the steady-state apply path allocation-free.  It is owned by that
// goroutine alone — a recovered replica gets a fresh applyState, so a
// straggling pre-crash apply loop can never share arenas with its successor.
type applyState struct {
	sched     *apply.Scheduler
	batchRecs []txnRecord       // decode arena, one slot per batch position
	batchOK   []bool            // per-slot decode success
	staged    []stagedTxn       // certified outcomes of the current batch
	tasks     [][]storage.Write // committed write sets handed to the scheduler
	certBumps map[int]uint64    // per-item version bumps staged by this batch
}

func newApplyState(workers int) *applyState {
	return &applyState{
		sched:     apply.New(workers),
		certBumps: make(map[int]uint64),
	}
}

// stagedTxn is one certified-and-staged delivery of the current batch.
type stagedTxn struct {
	item    applyItem
	rec     *txnRecord
	outcome Outcome
}

// NewReplica creates and starts a replica.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	index := -1
	for i, m := range cfg.Members {
		if m == cfg.ID {
			index = i
			break
		}
	}
	if index < 0 {
		return nil, fmt.Errorf("core: replica %q not in member list %v", cfg.ID, cfg.Members)
	}
	r := &Replica{
		cfg:      cfg,
		index:    index,
		pending:  make(map[uint64]chan Outcome),
		veryAcks: make(map[uint64]map[string]bool),
		veryDone: make(map[uint64]chan struct{}),
		crashCh:  make(chan struct{}),
	}

	r.dbLog = wal.NewMemLogWithDelay(cfg.DiskSyncDelay)
	policy := db.AsyncCommit
	if cfg.Level.SyncOnCommit() {
		policy = db.SyncOnCommit
	}
	dbase, err := db.Open(db.Config{Items: cfg.Items, Policy: policy, Log: r.dbLog})
	if err != nil {
		return nil, fmt.Errorf("core: open database: %w", err)
	}
	r.dbase = dbase

	if err := r.startGroupCommunication(); err != nil {
		return nil, err
	}
	return r, nil
}

// startGroupCommunication builds (or rebuilds, after recovery) the router,
// the broadcaster and the applier for the current incarnation.  Callers
// serialise it against stopGroupCommunication with lifeMu (NewReplica runs
// before any concurrency exists).
func (r *Replica) startGroupCommunication() error {
	ep := r.cfg.Network.Endpoint(r.cfg.ID)
	router := gcs.NewRouter(ep)
	router.Handle(msgLazy, r.onLazy)
	router.Handle(msgAck, r.onVerySafeAck)

	r.incarnation++
	stop := make(chan struct{})
	var (
		ab   *abcast.Broadcaster
		e2eb *e2e.Broadcaster
		det  *fd.Detector
	)

	if r.cfg.Level.UsesGroupCommunication() {
		var err error
		ab, err = abcast.New(abcast.Config{
			Self:        r.cfg.ID,
			Members:     r.cfg.Members,
			BatchSize:   r.cfg.BatchSize,
			BatchDelay:  r.cfg.BatchDelay,
			Incarnation: uint64(r.incarnation),
		}, router)
		if err != nil {
			return err
		}
		if r.cfg.Level.RequiresEndToEnd() {
			if r.msgLog == nil {
				r.msgLog = wal.NewMemLogWithDelay(r.cfg.DiskSyncDelay)
			}
			e2eb, err = e2e.Wrap(ab, e2e.Config{Log: r.msgLog})
			if err != nil {
				return err
			}
		}
		if r.cfg.StartDetector {
			det = fd.New(r.cfg.ID, r.cfg.Members, router, r.cfg.Detector)
			router.Handle(fd.MsgHeartbeat, det.OnMessage)
			det.OnEvent(func(ev fd.Event) {
				if ev.Suspected {
					ab.Suspect(ev.Peer)
				} else {
					ab.Unsuspect(ev.Peer)
				}
			})
		}
	}

	// Publish the new incarnation's stack under mu: concurrent readers
	// (broadcast, Suspect, BroadcastStats, the apply gate) see either the
	// old stack or the new one, never a half-built mix.
	r.mu.Lock()
	r.router = router
	r.ab = ab
	r.e2eb = e2eb
	r.detector = det
	r.applierStop = stop
	r.mu.Unlock()

	router.Start()
	if det != nil {
		det.Start()
	}
	st := newApplyState(r.cfg.ApplyWorkers)
	if e2eb != nil {
		e2eb.Start()
		go r.applyLoopE2E(st, e2eb, stop)
	} else if ab != nil {
		go r.applyLoopClassical(st, ab, stop)
	}
	return nil
}

// stopGroupCommunication tears down the current incarnation's group
// communication stack (used by Crash and Close, under lifeMu).
func (r *Replica) stopGroupCommunication() {
	r.mu.Lock()
	stop := r.applierStop
	r.applierStop = nil
	det := r.detector
	r.detector = nil
	e2eb, ab, router := r.e2eb, r.ab, r.router
	r.mu.Unlock()

	if stop != nil {
		close(stop)
	}
	if det != nil {
		det.Stop()
	}
	if e2eb != nil {
		e2eb.Close()
	}
	if ab != nil {
		ab.Close()
	}
	if router != nil {
		router.Stop()
	}
}

// ID returns the replica's address.
func (r *Replica) ID() string { return r.cfg.ID }

// Level returns the replica's safety level.
func (r *Replica) Level() SafetyLevel { return r.cfg.Level }

// DB exposes the local database component (used by consistency checks).
func (r *Replica) DB() *db.DB { return r.dbase }

// Crashed reports whether the replica is currently crashed.
func (r *Replica) Crashed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashed
}

// Stats returns a snapshot of the replica counters.
func (r *Replica) Stats() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// BroadcastStats returns the atomic broadcast counters of this replica (zero
// when the safety level does not use group communication).  The benchmarks
// use it to measure the per-transaction message count of the batched
// pipeline.
func (r *Replica) BroadcastStats() abcast.Stats {
	r.mu.Lock()
	ab := r.ab
	r.mu.Unlock()
	if ab == nil {
		return abcast.Stats{}
	}
	return ab.Stats()
}

// LastAppliedSeq returns the highest atomic broadcast sequence number applied
// to the database.
func (r *Replica) LastAppliedSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastAppliedSeq
}

// SetDeliverHook installs a test hook invoked after a message is delivered by
// the group communication component but before the database processes it —
// the window in which the crash of Fig. 5 happens.
func (r *Replica) SetDeliverHook(fn func(txnID uint64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deliverHook = fn
}

// Suspect informs the replica's broadcaster that a peer is believed crashed
// (used by scenario drivers when no failure detector is running).
func (r *Replica) Suspect(peer string) {
	r.mu.Lock()
	ab := r.ab
	r.mu.Unlock()
	if ab != nil {
		ab.Suspect(peer)
	}
}

// nextTxnID assigns a globally unique transaction identifier: the replica
// index occupies the high bits, a local counter the low bits.
func (r *Replica) nextTxnID() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextTxn++
	return uint64(r.index+1)<<40 | r.nextTxn
}

// Execute runs one client transaction with this replica as the delegate and
// returns when the safety level's notification condition holds.
func (r *Replica) Execute(req Request) (Result, error) {
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return Result{}, ErrCrashed
	}
	crashCh := r.crashCh
	r.mu.Unlock()

	if req.ID == 0 {
		req.ID = r.nextTxnID()
	}
	r.mu.Lock()
	r.stats.Executed++
	r.mu.Unlock()

	switch r.cfg.Level {
	case Safety0, Safety1Lazy:
		return r.executeLocal(req)
	default:
		return r.executeReplicated(req, crashCh)
	}
}

// executeLocal implements the 0-safe and lazy (1-safe) baselines: the
// transaction runs entirely at the delegate under strict 2PL; the write set
// is pushed to the other replicas asynchronously, after the client response.
func (r *Replica) executeLocal(req Request) (Result, error) {
	txn, err := r.dbase.Begin(req.ID)
	if err != nil {
		return Result{}, fmt.Errorf("core: begin: %w", err)
	}
	readVals := make(map[int]int64)
	runOps := func(ops []workload.Op) error {
		for _, op := range ops {
			if op.Write {
				if err := txn.Write(op.Item, op.Value); err != nil {
					return err
				}
				continue
			}
			v, err := txn.Read(op.Item)
			if err != nil {
				return err
			}
			readVals[op.Item] = v
		}
		return nil
	}
	err = runOps(req.Ops)
	if err == nil && req.Compute != nil {
		err = runOps(req.Compute(readVals))
	}
	if err != nil {
		_ = txn.Abort()
		r.countOutcome(OutcomeAborted)
		return Result{TxnID: req.ID, Outcome: OutcomeAborted, Delegate: r.cfg.ID, Level: r.cfg.Level}, nil
	}
	ws := txn.WriteSet()
	if err := txn.Commit(); err != nil {
		return Result{}, fmt.Errorf("core: commit: %w", err)
	}
	r.countOutcome(OutcomeCommitted)

	// Lazy propagation happens outside the transaction boundary.
	if len(ws) > 0 {
		payload := encodePayload(lazyPayload{TxnID: req.ID, Delegate: r.cfg.ID, Writes: ws})
		delay := r.cfg.LazyPropagationDelay
		go func() {
			if delay > 0 {
				time.Sleep(delay)
			}
			r.mu.Lock()
			router, crashed := r.router, r.crashed
			r.mu.Unlock()
			if crashed || router == nil {
				return
			}
			for _, m := range r.cfg.Members {
				if m == r.cfg.ID {
					continue
				}
				_ = router.Send(m, transport.Message{Type: msgLazy, Payload: payload})
			}
		}()
	}
	return Result{TxnID: req.ID, Outcome: OutcomeCommitted, ReadValues: readVals, Delegate: r.cfg.ID, Level: r.cfg.Level}, nil
}

// executeReplicated implements the group-communication based levels
// (group-safe, group-1-safe, 2-safe, very-safe): optimistic execution at the
// delegate, atomic broadcast of the read versions and write set, deterministic
// certification at every replica.
func (r *Replica) executeReplicated(req Request, crashCh chan struct{}) (Result, error) {
	readVals := make(map[int]int64)
	readVers := make(map[int]uint64)
	writes := make(map[int]int64)
	runOps := func(ops []workload.Op) error {
		for _, op := range ops {
			if op.Write {
				writes[op.Item] = op.Value
				continue
			}
			v, ver, err := r.dbase.ReadCommitted(op.Item)
			if err != nil {
				return fmt.Errorf("core: read item %d: %w", op.Item, err)
			}
			readVals[op.Item] = v
			if _, seen := readVers[op.Item]; !seen {
				readVers[op.Item] = ver
			}
		}
		return nil
	}
	if err := runOps(req.Ops); err != nil {
		return Result{}, err
	}
	if req.Compute != nil {
		if err := runOps(req.Compute(readVals)); err != nil {
			return Result{}, err
		}
	}

	// Read-only transactions execute entirely at the delegate (Fig. 2/8:
	// only transactions with writes are broadcast).
	if len(writes) == 0 {
		r.countOutcome(OutcomeCommitted)
		return Result{TxnID: req.ID, Outcome: OutcomeCommitted, ReadValues: readVals, Delegate: r.cfg.ID, Level: r.cfg.Level}, nil
	}

	outcomeCh := make(chan Outcome, 1)
	var veryDone chan struct{}
	r.mu.Lock()
	r.pending[req.ID] = outcomeCh
	if r.cfg.Level == VerySafe {
		veryDone = make(chan struct{})
		r.veryDone[req.ID] = veryDone
		r.veryAcks[req.ID] = make(map[string]bool)
	}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.pending, req.ID)
		delete(r.veryDone, req.ID)
		delete(r.veryAcks, req.ID)
		r.mu.Unlock()
	}()

	payload := encodeTxnPayload(req.ID, r.cfg.ID, readVers, writes)
	if err := r.broadcast(payload); err != nil {
		return Result{}, fmt.Errorf("core: broadcast: %w", err)
	}

	timeout := time.NewTimer(r.cfg.ExecTimeout)
	defer timeout.Stop()
	var outcome Outcome
	select {
	case outcome = <-outcomeCh:
	case <-crashCh:
		return Result{}, ErrCrashed
	case <-timeout.C:
		return Result{}, fmt.Errorf("%w: txn %d", ErrTimeout, req.ID)
	}

	// Very-safe: additionally wait until every server (not just the available
	// ones) has acknowledged the transaction.
	if r.cfg.Level == VerySafe && outcome == OutcomeCommitted {
		select {
		case <-veryDone:
		case <-crashCh:
			return Result{}, ErrCrashed
		case <-timeout.C:
			return Result{}, fmt.Errorf("%w: txn %d waiting for very-safe acks", ErrTimeout, req.ID)
		}
	}
	return Result{TxnID: req.ID, Outcome: outcome, ReadValues: readVals, Delegate: r.cfg.ID, Level: r.cfg.Level}, nil
}

func (r *Replica) broadcast(payload []byte) error {
	r.mu.Lock()
	e2eb, ab := r.e2eb, r.ab
	r.mu.Unlock()
	if e2eb != nil {
		_, err := e2eb.Broadcast(payload)
		return err
	}
	if ab != nil {
		_, err := ab.Broadcast(payload)
		return err
	}
	return fmt.Errorf("core: safety level %v does not use group communication", r.cfg.Level)
}

func (r *Replica) countOutcome(o Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if o == OutcomeCommitted {
		r.stats.Committed++
	} else if o == OutcomeAborted {
		r.stats.Aborted++
	}
}

// applyItem is one totally-ordered delivery handed to the batched apply loop.
// ack is non-nil for end-to-end deliveries and signals successful delivery.
type applyItem struct {
	seq     uint64
	payload []byte
	ack     func()
}

// maxApplyBatch bounds how many deliveries are applied under one force.
const maxApplyBatch = 256

// drainUpTo collects first plus every value already queued on ch, up to max
// elements, without blocking.
func drainUpTo[T any](ch <-chan T, first T, max int) []T {
	batch := []T{first}
	for len(batch) < max {
		select {
		case v := <-ch:
			batch = append(batch, v)
		default:
			return batch
		}
	}
	return batch
}

// applyLoopClassical consumes deliveries from the classical atomic broadcast,
// draining every delivery already queued so the whole batch is applied with a
// single log force and one bookkeeping lock round.
//
// When the stop signal races a pending delivery, the queued suffix is
// deliberately DISCARDED, never applied (one-by-one or otherwise): stop is
// only ever closed by a crash-model teardown (Crash/Close mark the replica
// crashed first), and a crashed process losing its delivered-but-unprocessed
// messages is exactly the paper's Fig. 5 window — classical levels recover
// them by state transfer, end-to-end levels replay them from the message
// log.  Applying them here would externalise work a crashed process cannot
// have done.  A batch already inside applyBatch when the race happens is
// likewise abandoned at the next applierCurrent gate.
func (r *Replica) applyLoopClassical(st *applyState, ab *abcast.Broadcaster, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case d := <-ab.Deliveries():
			ds := drainUpTo(ab.Deliveries(), d, maxApplyBatch)
			batch := make([]applyItem, len(ds))
			for i, dd := range ds {
				batch[i] = applyItem{seq: dd.Seq, payload: dd.Payload}
			}
			r.applyBatch(st, stop, batch)
		}
	}
}

// applyLoopE2E consumes deliveries from the end-to-end atomic broadcast and
// acknowledges each one after the database has processed it (successful
// delivery, Sect. 4.2).  Like the classical loop it applies drained batches;
// acknowledgements are issued only after the batch force, so a crash mid-batch
// replays the whole unacknowledged suffix (apply is idempotent).  Like the
// classical loop, deliveries that race the stop signal are discarded, not
// applied — they are logged and unacknowledged, so recovery replays them.
func (r *Replica) applyLoopE2E(st *applyState, b *e2e.Broadcaster, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case d := <-b.Deliveries():
			ds := drainUpTo(b.Deliveries(), d, maxApplyBatch)
			batch := make([]applyItem, len(ds))
			for i, dd := range ds {
				batch[i] = r.e2eItem(b, dd)
			}
			r.applyBatch(st, stop, batch)
		}
	}
}

func (r *Replica) e2eItem(b *e2e.Broadcaster, d e2e.Delivery) applyItem {
	seq := d.Seq
	return applyItem{seq: seq, payload: d.Payload, ack: func() { _ = b.Ack(seq) }}
}

// applyBatch certifies and applies a batch of totally-ordered transactions:
// every write set is installed with its log records appended but not forced,
// then one force covers all commit records of the batch, and only then are
// delegates notified and end-to-end acknowledgements issued.  For a batch of
// B transactions the levels that force on commit (group-1-safe, 2-safe,
// very-safe) pay one disk force instead of B.
//
// Crash semantics: a crash mid-batch (the Fig. 5 window) abandons the whole
// batch — commit records already appended for earlier batch members sit in
// the unsynced log tail and are lost with it, like a real group-commit
// system dying before its force.  That is safe under every criterion because
// no outcome has been externalised: delegates are notified and e2e messages
// acknowledged strictly after the batch force, so an unforced transaction
// was never reported committed; end-to-end levels replay the whole
// unacknowledged suffix from the message log, and classical levels recover
// missed messages by state transfer, exactly as for a single lost delivery.
// applyBatch runs the apply pipeline on one drained batch of totally-ordered
// deliveries:
//
//  1. decode every payload (concurrently when ApplyWorkers > 1 — payloads are
//     independent);
//  2. certify and stage serially in strict delivery order: certification uses
//     a version overlay (store versions plus the bumps staged earlier in this
//     batch), the write sets and commit records are appended to the log in
//     delivery order but not yet forced or installed;
//  3. one group-committed force covers every commit record of the batch,
//     overlapped with step 4 (neither depends on the other);
//  4. the committed write sets are installed by the conflict-graph scheduler:
//     disjoint write sets in parallel on the worker pool, conflicting ones
//     chained in delivery order — byte-identical to a serial install;
//  5. only then are delegates notified and end-to-end deliveries
//     acknowledged.
//
// For a batch of B transactions the levels that force on commit pay one disk
// force instead of B, and the installs use up to ApplyWorkers cores.
//
// Crash semantics are unchanged from the serial loop: a crash mid-batch (the
// Fig. 5 window) abandons the whole batch — no outcome has been externalised,
// because delegates are notified and e2e messages acknowledged strictly after
// the batch force, so an unforced transaction was never reported committed;
// end-to-end levels replay the whole unacknowledged suffix from the message
// log, and classical levels recover missed messages by state transfer.
func (r *Replica) applyBatch(st *applyState, stop chan struct{}, batch []applyItem) {
	if !r.applierCurrent(stop) {
		return
	}

	// Phase 1: decode into the reusable arena, in parallel for large batches.
	n := len(batch)
	if cap(st.batchRecs) < n {
		st.batchRecs = make([]txnRecord, n)
		st.batchOK = make([]bool, n)
	}
	recs := st.batchRecs[:n]
	oks := st.batchOK[:n]
	decodeOne := func(i int) {
		oks[i] = decodeTxnRecord(batch[i].payload, &recs[i]) == nil
	}
	if workers := st.sched.EffectiveWorkers(); workers > 1 && n >= 4 {
		if workers > n {
			workers = n
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					decodeOne(i)
				}
			}(w)
		}
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			decodeOne(i)
		}
	}

	// Phase 2: serial certification and staging in delivery order.
	staged := st.staged[:0]
	tasks := st.tasks[:0]
	clear(st.certBumps)
	numItems := r.dbase.Store().NumItems()
	var maxLSN wal.LSN
	for i := range batch {
		r.mu.Lock()
		current := !r.crashed && r.applierStop == stop
		hook := r.deliverHook
		r.mu.Unlock()
		if !current {
			return
		}

		if !oks[i] {
			continue
		}
		rec := &recs[i]

		// The crash window of Fig. 5: the group communication component has
		// delivered the message, the database has not yet processed it.
		if hook != nil {
			hook(rec.TxnID)
			if !r.applierCurrent(stop) {
				return
			}
		}

		outcome := r.certify(st, rec)
		if outcome == OutcomeCommitted {
			if !writesInRange(rec.Writes, numItems) {
				continue
			}
			fresh, lsn, err := r.dbase.StageWrites(rec.TxnID, rec.Writes)
			if err != nil {
				continue
			}
			if fresh {
				if lsn > maxLSN {
					maxLSN = lsn
				}
				for _, w := range rec.Writes {
					st.certBumps[w.Item]++
				}
				tasks = append(tasks, rec.Writes)
			}
		} else {
			_ = r.dbase.RecordAbort(rec.TxnID)
		}
		staged = append(staged, stagedTxn{item: batch[i], rec: rec, outcome: outcome})
	}
	st.staged, st.tasks = staged, tasks

	// Phases 3+4: the batch force and the conflict-scheduled installs run
	// concurrently; both must finish before any outcome is externalised.
	forceErr := make(chan error, 1)
	if maxLSN > 0 && r.cfg.Level.SyncOnCommit() {
		go func() { forceErr <- r.dbase.ForceTo(maxLSN) }()
	} else {
		forceErr <- nil
	}
	// InstallWrites cannot fail for staged write sets (ranges are validated
	// by writesInRange before staging and the store size is fixed); if it
	// ever does, the batch is abandoned before anything is externalised and
	// the WAL stays the source of truth — crash recovery reinstalls the
	// logged commits.
	installErr := st.sched.Run(tasks, func(t int) error {
		return r.dbase.InstallWrites(tasks[t])
	})
	if <-forceErr != nil || installErr != nil {
		return
	}

	// Phase 5: bookkeeping for the whole batch under a single lock
	// acquisition, then notifications and acknowledgements.  The router is
	// snapshotted under the same lock: incarnation swaps publish a new
	// router under mu, so an unlocked read would race a concurrent Recover.
	r.mu.Lock()
	router := r.router
	notifyCh := make([]chan Outcome, len(staged))
	for i, a := range staged {
		r.stats.Delivered++
		if a.item.seq > r.lastAppliedSeq {
			r.lastAppliedSeq = a.item.seq
		}
		if ch, ok := r.pending[a.rec.TxnID]; ok {
			notifyCh[i] = ch
		}
	}
	r.mu.Unlock()

	for i, a := range staged {
		if ch := notifyCh[i]; ch != nil {
			select {
			case ch <- a.outcome:
			default:
			}
			r.countOutcome(a.outcome)
			if r.cfg.Level == VerySafe && a.outcome == OutcomeCommitted {
				r.recordVerySafeAck(a.rec.TxnID, r.cfg.ID)
			}
		} else if r.cfg.Level == VerySafe && a.outcome == OutcomeCommitted {
			// Very-safe: every replica confirms to the delegate that the
			// transaction is logged locally (and, batched, durably forced).
			ackBytes := encodePayload(ackPayload{TxnID: a.rec.TxnID, Replica: r.cfg.ID})
			_ = router.Send(a.rec.Delegate, transport.Message{Type: msgAck, Payload: ackBytes})
		}
		if a.item.ack != nil {
			a.item.ack()
		}
	}
}

// writesInRange reports whether every written item exists, so staging never
// logs a write set the store would refuse to install.
func writesInRange(writes []storage.Write, numItems int) bool {
	for _, w := range writes {
		if w.Item < 0 || w.Item >= numItems {
			return false
		}
	}
	return true
}

// certify runs the deterministic certification test (first-updater-wins): the
// transaction aborts if any item it read has been overwritten by a
// transaction delivered before it.  Writes staged earlier in the current
// batch are not yet installed in the store, so their version bumps are
// overlaid from certBumps — the outcome is exactly the one the serial loop
// computed by installing before certifying the next transaction.
func (r *Replica) certify(st *applyState, rec *txnRecord) Outcome {
	for _, rv := range rec.Reads {
		if r.dbase.Version(rv.Item)+st.certBumps[rv.Item] > rv.Ver {
			return OutcomeAborted
		}
	}
	return OutcomeCommitted
}

// applierCurrent reports whether the apply loop identified by stop still
// belongs to the live incarnation: the replica is not crashed and no newer
// incarnation has been started.  A straggling pre-crash loop (e.g. one whose
// deliver hook crashed the replica mid-batch) fails this gate and abandons
// its work instead of racing the recovered incarnation.
func (r *Replica) applierCurrent(stop chan struct{}) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.crashed && r.applierStop == stop
}

// onLazy applies a lazily-propagated write set (1-safe replication): no
// certification, last writer wins — the source of the inconsistencies the
// paper attributes to lazy replication.
func (r *Replica) onLazy(m transport.Message) {
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	var p lazyPayload
	if err := decodePayload(m.Payload, &p); err != nil {
		return
	}
	if _, err := r.dbase.ApplyWriteSet(p.TxnID, writeSetOf(p.Writes)); err != nil {
		return
	}
	r.mu.Lock()
	r.stats.LazyApply++
	r.mu.Unlock()
}

// onVerySafeAck records a per-replica acknowledgement at the delegate.
func (r *Replica) onVerySafeAck(m transport.Message) {
	var p ackPayload
	if err := decodePayload(m.Payload, &p); err != nil {
		return
	}
	r.recordVerySafeAck(p.TxnID, p.Replica)
}

func (r *Replica) recordVerySafeAck(txnID uint64, replica string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	acks, ok := r.veryAcks[txnID]
	if !ok {
		return
	}
	acks[replica] = true
	if len(acks) == len(r.cfg.Members) {
		if done, ok := r.veryDone[txnID]; ok {
			select {
			case <-done:
			default:
				close(done)
			}
		}
	}
}

// Crash simulates a full server crash: the replica stops processing, its
// network endpoint goes silent, and every piece of volatile state (database
// buffers, unsynced logs, the group communication component's in-memory
// state) is lost.
func (r *Replica) Crash() {
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return
	}
	r.crashed = true
	close(r.crashCh)
	r.mu.Unlock()

	r.lifeMu.Lock()
	defer r.lifeMu.Unlock()
	r.cfg.Network.Crash(r.cfg.ID)
	r.stopGroupCommunication()
}

// StateSnapshot is the checkpoint shipped during state transfer.
type StateSnapshot struct {
	Items          []storage.Item
	AppliedTxns    []uint64
	LastAppliedSeq uint64
}

// Snapshot produces a state-transfer checkpoint of this replica.
func (r *Replica) Snapshot() StateSnapshot {
	return StateSnapshot{
		Items:          r.dbase.SnapshotState(),
		AppliedTxns:    r.dbase.AppliedTxns(),
		LastAppliedSeq: r.LastAppliedSeq(),
	}
}

// Recover restarts a crashed replica.  If snapshot is non-nil it is installed
// first (checkpoint-based state transfer of the dynamic crash no-recovery
// model); with end-to-end atomic broadcast, logged-but-unacknowledged
// messages are then replayed (log-based recovery).  It returns the number of
// replayed messages.
func (r *Replica) Recover(snapshot *StateSnapshot) (int, error) {
	r.mu.Lock()
	if !r.crashed {
		r.mu.Unlock()
		return 0, fmt.Errorf("core: replica %s is not crashed", r.cfg.ID)
	}
	r.mu.Unlock()

	// Serialise against a Crash/Close teardown still in flight (e.g. one
	// triggered from inside the old incarnation's deliver hook).
	r.lifeMu.Lock()
	defer r.lifeMu.Unlock()

	// Volatile state of the database component is lost; rebuild from the
	// durable prefix of its write-ahead log.
	if err := r.dbase.CrashAndRecover(); err != nil {
		return 0, fmt.Errorf("core: database recovery: %w", err)
	}
	// The group communication message log also loses its unsynced tail.
	if r.msgLog != nil {
		r.msgLog.Crash()
	}

	r.cfg.Network.Recover(r.cfg.ID)

	r.mu.Lock()
	r.pending = make(map[uint64]chan Outcome)
	r.veryAcks = make(map[uint64]map[string]bool)
	r.veryDone = make(map[uint64]chan struct{})
	r.crashed = false
	r.crashCh = make(chan struct{})
	r.lastAppliedSeq = 0
	r.mu.Unlock()

	if err := r.startGroupCommunication(); err != nil {
		return 0, err
	}

	if snapshot != nil {
		r.installSnapshot(*snapshot)
	}

	replayed := 0
	if r.e2eb != nil {
		n, err := r.e2eb.Recover()
		if err != nil {
			return 0, fmt.Errorf("core: end-to-end recovery: %w", err)
		}
		replayed = n
	}
	return replayed, nil
}

func (r *Replica) installSnapshot(s StateSnapshot) {
	r.dbase.RestoreState(s.Items, s.AppliedTxns)
	r.mu.Lock()
	r.lastAppliedSeq = s.LastAppliedSeq
	ab := r.ab
	r.mu.Unlock()
	if ab != nil {
		ab.SkipTo(s.LastAppliedSeq + 1)
	}
}

// Close shuts the replica down.
func (r *Replica) Close() error {
	r.mu.Lock()
	if !r.crashed {
		r.crashed = true
		close(r.crashCh)
	}
	r.mu.Unlock()
	r.lifeMu.Lock()
	r.stopGroupCommunication()
	r.lifeMu.Unlock()
	return r.dbase.Close()
}

// Execute a request built from a workload transaction.
func RequestFromWorkload(t workload.Transaction) Request {
	return Request{ID: 0, Ops: t.Ops}
}
