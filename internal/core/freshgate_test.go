package core

import (
	"fmt"
	"testing"
)

// drained reports whether the waiter channel has been closed.
func drained(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// TestFreshGateWakesOnlySatisfiedWaiters: one delivery wakes exactly the
// waiters whose floor it satisfies, leaving the rest parked.
func TestFreshGateWakesOnlySatisfiedWaiters(t *testing.T) {
	var g freshGate
	chs := make(map[int]chan struct{})
	for f := 1; f <= 10; f++ {
		ch, ready := g.subscribe(uint64(f))
		if ready {
			t.Fatalf("floor %d reported satisfied on an empty gate", f)
		}
		chs[f] = ch
	}
	g.advance(5)
	for f := 1; f <= 5; f++ {
		if !drained(chs[f]) {
			t.Fatalf("floor %d not woken by advance(5)", f)
		}
	}
	for f := 6; f <= 10; f++ {
		if drained(chs[f]) {
			t.Fatalf("floor %d woken by advance(5)", f)
		}
	}
	if w, parked := g.wakeCount(), g.waiting(); w != 5 || parked != 5 {
		t.Fatalf("wakeups %d parked %d after advance(5), want 5 and 5", w, parked)
	}
	// A floor already at or below the watermark never parks.
	if _, ready := g.subscribe(5); !ready {
		t.Fatal("satisfied floor parked instead of proceeding")
	}
	g.advance(10)
	for f := 6; f <= 10; f++ {
		if !drained(chs[f]) {
			t.Fatalf("floor %d not woken by advance(10)", f)
		}
	}
	if w, parked := g.wakeCount(), g.waiting(); w != 10 || parked != 0 {
		t.Fatalf("wakeups %d parked %d after advance(10), want 10 and 0", w, parked)
	}
}

// TestFreshGateAdvanceIsMonotonic: a stale advance neither regresses the
// watermark nor wakes anyone.
func TestFreshGateAdvanceIsMonotonic(t *testing.T) {
	var g freshGate
	g.advance(7)
	ch, ready := g.subscribe(9)
	if ready {
		t.Fatal("floor 9 satisfied at watermark 7")
	}
	g.advance(3)
	if got := g.appliedSeq(); got != 7 {
		t.Fatalf("watermark regressed to %d", got)
	}
	if drained(ch) {
		t.Fatal("stale advance woke a parked waiter")
	}
	g.advance(9)
	if !drained(ch) {
		t.Fatal("floor 9 not woken by advance(9)")
	}
}

// TestFreshGateResetWakesEveryWaiter: crash/recovery zeroes the watermark and
// releases every parked waiter so none sleeps on a dead incarnation.
func TestFreshGateResetWakesEveryWaiter(t *testing.T) {
	var g freshGate
	g.advance(4)
	var chs []chan struct{}
	for f := 5; f <= 8; f++ {
		ch, _ := g.subscribe(uint64(f))
		chs = append(chs, ch)
	}
	g.reset()
	if got := g.appliedSeq(); got != 0 {
		t.Fatalf("watermark %d after reset, want 0", got)
	}
	for i, ch := range chs {
		if !drained(ch) {
			t.Fatalf("waiter %d still parked after reset", i)
		}
	}
	if parked := g.waiting(); parked != 0 {
		t.Fatalf("%d waiters parked after reset, want 0", parked)
	}
}

// TestFreshGateOneWakeupPerWaiterEver is the thundering-herd contract: with N
// parked sessions and N single-sequence deliveries, the total wakeup count is
// exactly N — each waiter is woken once, ever, by the first delivery that
// satisfies it.  The old close-and-remake broadcast channel woke every parked
// waiter on every delivery (O(N²) here).
func TestFreshGateOneWakeupPerWaiterEver(t *testing.T) {
	var g freshGate
	const n = 1000
	for f := 1; f <= n; f++ {
		if _, ready := g.subscribe(uint64(f)); ready {
			t.Fatalf("floor %d satisfied on an empty gate", f)
		}
	}
	for seq := 1; seq <= n; seq++ {
		g.advance(uint64(seq))
	}
	if w := g.wakeCount(); w != n {
		t.Fatalf("%d wakeups for %d deliveries over %d waiters, want exactly %d (one per waiter)", w, n, n, n)
	}
}

// BenchmarkFreshGateAdvance measures one delivery's cost with many parked
// floored sessions none of which it satisfies: the gate only peeks the heap
// minimum, so the per-delivery cost must stay flat as the parked count grows
// (the old broadcast channel made it O(parked) closes per delivery).
func BenchmarkFreshGateAdvance(b *testing.B) {
	for _, parked := range []int{0, 100, 10_000} {
		b.Run(fmt.Sprintf("parked=%d", parked), func(b *testing.B) {
			var g freshGate
			const far = uint64(1) << 60
			for i := 0; i < parked; i++ {
				g.subscribe(far + uint64(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.advance(uint64(i + 1))
			}
			if w := g.wakeCount(); w != 0 {
				b.Fatalf("far-floored waiters woke %d times", w)
			}
		})
	}
}

// BenchmarkFreshGateWakeupsPerDelivery drives deliveries through a herd of
// sessions with floors spread uniformly over the delivery range and reports
// the measured wakeups-per-delivery ratio: amortised O(1) — every waiter
// wakes exactly once no matter how many are parked.
func BenchmarkFreshGateWakeupsPerDelivery(b *testing.B) {
	for _, sessions := range []int{100, 10_000} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			var g freshGate
			for i := 0; i < sessions; i++ {
				// Floors spread over [1, b.N] so every delivery satisfies
				// about sessions/b.N waiters.
				floor := uint64(i)*uint64(b.N)/uint64(sessions) + 1
				g.subscribe(floor)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.advance(uint64(i + 1))
			}
			b.StopTimer()
			b.ReportMetric(float64(g.wakeCount())/float64(b.N), "wakeups/delivery")
		})
	}
}
