package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"groupsafe/internal/gcs/abcast"
	"groupsafe/internal/workload"
)

// broadcastTotals sums the atomic-broadcast counters across the cluster.
func broadcastTotals(c *Cluster) abcast.Stats {
	var total abcast.Stats
	for _, r := range c.Replicas() {
		s := r.BroadcastStats()
		total.Broadcast += s.Broadcast
		total.Delivered += s.Delivered
		total.Ordered += s.Ordered
		total.MsgsSent += s.MsgsSent
		total.DataBatches += s.DataBatches
	}
	return total
}

// settleBroadcast waits until the cluster's wire counters stop moving (acks
// of prior updates can trail the Execute responses).
func settleBroadcast(t *testing.T, c *Cluster) abcast.Stats {
	t.Helper()
	prev := broadcastTotals(c)
	prevNet, _ := c.Network().Stats()
	for i := 0; i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
		cur := broadcastTotals(c)
		curNet, _ := c.Network().Stats()
		if cur == prev && curNet == prevNet {
			return cur
		}
		prev, prevNet = cur, curNet
	}
	t.Fatal("broadcast counters never settled")
	return prev
}

// TestReadOnlyTxnsGenerateZeroBroadcastMessages is the acceptance-criterion
// message-count proof: read-only transactions on the certification and active
// techniques produce zero DATA/ORDER/ACK traffic — not a single protocol
// message or point-to-point send happens on their behalf.
func TestReadOnlyTxnsGenerateZeroBroadcastMessages(t *testing.T) {
	for _, tech := range []TechniqueID{TechCertification, TechActive} {
		t.Run(tech.String(), func(t *testing.T) {
			c, err := NewCluster(ClusterConfig{
				Replicas:    3,
				Items:       256,
				Level:       GroupSafe,
				Technique:   tech,
				ExecTimeout: 5 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			// Warm the cluster with real update traffic so the wire counters
			// are demonstrably live.
			for i := 0; i < 10; i++ {
				if _, err := c.Execute(context.Background(), i%3, writeReq(0, i, int64(i))); err != nil {
					t.Fatal(err)
				}
			}
			if !waitConsistent(c, 2*time.Second) {
				t.Fatal("replicas did not converge")
			}
			before := settleBroadcast(t, c)
			beforeNet, _ := c.Network().Stats()
			if before.MsgsSent == 0 {
				t.Fatal("update warm-up sent no protocol messages; the counter is dead")
			}

			// A storm of queries across every replica.
			for i := 0; i < 60; i++ {
				res, err := c.Execute(context.Background(), i%3, Request{
					ReadOnly: true,
					Ops:      []workload.Op{{Item: i % 10}, {Item: (i + 1) % 10}},
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Committed() {
					t.Fatalf("query %d not committed: %+v", i, res)
				}
				if res.Freshness == 0 {
					t.Fatalf("query %d carries no freshness token", i)
				}
				if res.Stale {
					t.Fatalf("query %d flagged stale on a totally-ordered technique", i)
				}
			}

			after := broadcastTotals(c)
			afterNet, _ := c.Network().Stats()
			if after != before {
				t.Fatalf("read-only transactions generated broadcast traffic:\n before %+v\n after  %+v", before, after)
			}
			if afterNet != beforeNet {
				t.Fatalf("read-only transactions sent %d point-to-point messages", afterNet-beforeNet)
			}
			if q := c.TotalStats().Queries; q != 60 {
				t.Fatalf("Queries counter = %d, want 60", q)
			}
		})
	}
}

// TestReadYourWritesAcrossReplicas exercises the monotonic-session-read
// contract: an update's Freshness token, passed as MinFreshness of a read at
// ANOTHER replica, guarantees the read observes the update.
func TestReadYourWritesAcrossReplicas(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	for i := 0; i < 20; i++ {
		res, err := c.Execute(context.Background(), 0, writeReq(0, 42, int64(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Committed() {
			continue
		}
		if res.Freshness == 0 {
			t.Fatal("committed update carries no freshness token")
		}
		for delegate := 1; delegate < 3; delegate++ {
			read, err := c.Execute(context.Background(), delegate, Request{
				ReadOnly:     true,
				MinFreshness: res.Freshness,
				Ops:          []workload.Op{{Item: 42}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := read.ReadValues[42]; got != int64(1000+i) {
				t.Fatalf("replica %d with freshness %d read %d, want %d", delegate, res.Freshness, got, 1000+i)
			}
			if read.Freshness < res.Freshness {
				t.Fatalf("read freshness %d < floor %d", read.Freshness, res.Freshness)
			}
		}
	}
}

// TestFreshnessWaitHonoursContext: a freshness floor beyond anything applied
// must block until the deadline, not spin or return stale data.
func TestFreshnessWaitHonoursContext(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	if _, err := c.Execute(context.Background(), 0, writeReq(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := c.Execute(ctx, 1, Request{ReadOnly: true, MinFreshness: 1 << 40, Ops: []workload.Op{{Item: 1}}})
	if !errors.Is(err, ErrTimeout) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unreachable freshness floor returned %v, want deadline error", err)
	}
}

// TestLazyPrimaryReadsFlagStaleness: under lazy primary-copy, queries run at
// any replica; secondaries flag their results stale, the primary does not,
// and freshness floors are rejected (no comparable sequence exists).
func TestLazyPrimaryReadsFlagStaleness(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Replicas:    3,
		Items:       64,
		Technique:   TechLazyPrimary,
		ExecTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(context.Background(), 0, writeReq(0, 3, 33)); err != nil {
		t.Fatal(err)
	}
	if !waitConsistent(c, 2*time.Second) {
		t.Fatal("secondaries did not catch up")
	}

	primary, err := c.Execute(context.Background(), 0, Request{ReadOnly: true, Ops: []workload.Op{{Item: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if primary.Stale {
		t.Fatal("primary read flagged stale")
	}
	secondary, err := c.Execute(context.Background(), 1, Request{ReadOnly: true, Ops: []workload.Op{{Item: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if !secondary.Stale {
		t.Fatal("secondary read not flagged stale")
	}
	if secondary.ReadValues[3] != 33 {
		t.Fatalf("secondary read %d, want 33", secondary.ReadValues[3])
	}
	if _, err := c.Execute(context.Background(), 1, Request{ReadOnly: true, MinFreshness: 1, Ops: []workload.Op{{Item: 3}}}); !errors.Is(err, ErrSafetyUnavailable) {
		t.Fatalf("freshness floor on lazy cluster returned %v, want ErrSafetyUnavailable", err)
	}
}

// TestReadOnlyRejectsWrites: the ReadOnly declaration fails loudly when the
// request could write.
func TestReadOnlyRejectsWrites(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	_, err := c.Execute(context.Background(), 0, Request{ReadOnly: true, Ops: []workload.Op{{Item: 1, Write: true, Value: 9}}})
	if !errors.Is(err, ErrReadOnlyWrites) {
		t.Fatalf("write in read-only txn returned %v", err)
	}
	_, err = c.Execute(context.Background(), 0, Request{ReadOnly: true, Compute: func(map[int]int64) []workload.Op { return nil }})
	if !errors.Is(err, ErrReadOnlyWrites) {
		t.Fatalf("compute hook in read-only txn returned %v", err)
	}
}

// TestReadOnlyNeverAbortsUnderWriteStorm: queries interleaved with a
// conflicting update storm across the cluster never abort and always return a
// consistent snapshot (both items written by the same update transaction).
func TestReadOnlyNeverAbortsUnderWriteStorm(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Write the pair (i, i) so any consistent snapshot shows equal values.
			_, err := c.Execute(context.Background(), i%3, Request{Ops: []workload.Op{
				{Item: 5, Write: true, Value: int64(i)},
				{Item: 6, Write: true, Value: int64(i)},
			}})
			if err != nil {
				select {
				case errCh <- err:
				default:
				}
				return
			}
		}
	}()
	for i := 0; i < 100; i++ {
		res, err := c.Execute(context.Background(), i%3, Request{ReadOnly: true, Ops: []workload.Op{{Item: 5}, {Item: 6}}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OutcomeCommitted {
			t.Fatalf("query aborted: %+v", res)
		}
		if res.ReadValues[5] != res.ReadValues[6] {
			t.Fatalf("torn snapshot: item5=%d item6=%d", res.ReadValues[5], res.ReadValues[6])
		}
	}
	close(stop)
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// stateHash fingerprints a replica's committed state (values and versions).
func stateHash(r *Replica) uint64 {
	var h uint64 = 1469598103934665603
	for _, it := range r.DB().SnapshotState() {
		h = (h ^ uint64(it.Value)) * 1099511628211
		h = (h ^ it.Version) * 1099511628211
	}
	return h
}

// TestReadMixDeterminismAcrossApplyWorkers: mixing snapshot queries into the
// update stream must not perturb the applied state at any parallel-apply
// setting.  Two properties per worker count:
//
//   - one-copy equivalence under concurrent mixed clients (replicas converge
//     byte-identical; WaitConsistent compares values AND versions), and
//   - exact cross-worker determinism of the final state for a serial
//     single-delegate stream, where certification outcomes cannot depend on
//     replica lag — workers 1, 4 and 16 must produce identical bytes.
func TestReadMixDeterminismAcrossApplyWorkers(t *testing.T) {
	var reference uint64
	var refCount uint64
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			cfg := ClusterConfig{Replicas: 3, Items: 128, Level: GroupSafe, ExecTimeout: 5 * time.Second}
			cfg.ApplyWorkers = workers
			c, err := NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			// Concurrent mixed clients: queries interleave with conflicting
			// updates on every replica.
			var wg sync.WaitGroup
			errCh := make(chan error, 3)
			for cl := 0; cl < 3; cl++ {
				wg.Add(1)
				go func(cl int) {
					defer wg.Done()
					gen := workload.NewGenerator(workload.Config{
						Items: 128, MinOps: 2, MaxOps: 4, WriteProb: 0.5,
						ReadFraction: 0.5, QueryMinOps: 1, QueryMaxOps: 3,
					}, int64(cl+1))
					for i := 0; i < 40; i++ {
						if _, err := c.Execute(context.Background(), cl, RequestFromWorkload(gen.Next(0, cl))); err != nil {
							errCh <- err
							return
						}
					}
				}(cl)
			}
			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatal(err)
			default:
			}
			if !waitConsistent(c, 5*time.Second) {
				t.Fatal("replicas did not converge under the read mix")
			}

			// Serial single-delegate stream on a fresh cluster: the exact
			// final state must match across worker counts.
			c2, err := NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			gen := workload.NewGenerator(workload.Config{
				Items: 128, MinOps: 2, MaxOps: 4, WriteProb: 0.5,
				ReadFraction: 0.5, QueryMinOps: 1, QueryMaxOps: 3,
			}, 7)
			for i := 0; i < 120; i++ {
				if _, err := c2.Execute(context.Background(), 0, RequestFromWorkload(gen.Next(0, 0))); err != nil {
					t.Fatal(err)
				}
			}
			if !waitConsistent(c2, 5*time.Second) {
				t.Fatal("replicas did not converge on the serial stream")
			}
			h := stateHash(c2.Replica(0))
			n := c2.Replica(0).DB().CommittedWriteCount()
			if reference == 0 && refCount == 0 {
				reference, refCount = h, n
			} else if reference != h || refCount != n {
				t.Fatalf("state diverged across ApplyWorkers settings: hash %d/%d writes %d/%d", reference, h, refCount, n)
			}
		})
	}
}

// TestComputeQueryHonoursFreshness: a Compute-bearing request bypasses the
// read-only fast path (the hook could write), but a freshness floor must
// still gate its read phase, and the token must describe the snapshot the
// values came from.
func TestComputeQueryHonoursFreshness(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	for i := 0; i < 10; i++ {
		res, err := c.Execute(context.Background(), 0, writeReq(0, 9, int64(500+i)))
		if err != nil || !res.Committed() {
			t.Fatalf("update %d: %+v, %v", i, res, err)
		}
		read, err := c.Execute(context.Background(), 1+i%2, Request{
			MinFreshness: res.Freshness,
			Ops:          []workload.Op{{Item: 9}},
			Compute:      func(map[int]int64) []workload.Op { return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := read.ReadValues[9]; got != int64(500+i) {
			t.Fatalf("compute read with floor %d saw %d, want %d", res.Freshness, got, 500+i)
		}
		if read.Freshness < res.Freshness {
			t.Fatalf("compute read token %d below floor %d", read.Freshness, res.Freshness)
		}
	}
	// On a local-level cluster the floor is rejected on the Compute path too.
	lc := newTestCluster(t, Safety1Lazy, 3)
	_, err := lc.Execute(context.Background(), 0, Request{
		MinFreshness: 1,
		Ops:          []workload.Op{{Item: 9}},
		Compute:      func(map[int]int64) []workload.Op { return nil },
	})
	if !errors.Is(err, ErrSafetyUnavailable) {
		t.Fatalf("freshness floor on local level returned %v", err)
	}
}
