package core

import (
	"fmt"

	"groupsafe/internal/db"
	"groupsafe/internal/gcs"
	"groupsafe/internal/gcs/abcast"
	"groupsafe/internal/gcs/e2e"
	"groupsafe/internal/gcs/fd"
	"groupsafe/internal/storage"
	"groupsafe/internal/wal"
)

// This file is the replica's incarnation lifecycle: building and tearing
// down the group communication stack, the crash model (Crash loses volatile
// state, a recovered process is a new process), checkpoint-based state
// transfer and end-to-end message replay.  It is technique-independent: the
// technique only decides whether a broadcaster and apply loop exist at all
// (Technique.usesGroupComm) and what the apply loop does with deliveries.

// startGroupCommunication builds (or rebuilds, after recovery) the router,
// the broadcaster and the applier for the current incarnation.  Callers
// serialise it against stopGroupCommunication with lifeMu (NewReplica runs
// before any concurrency exists).
func (r *Replica) startGroupCommunication() error {
	ep := r.cfg.Network.Endpoint(r.cfg.ID)
	router := gcs.NewRouter(ep)
	router.Handle(msgLazy, r.onLazy)
	router.Handle(msgAck, r.onVerySafeAck)

	r.incarnation++
	stop := make(chan struct{})
	var (
		ab   *abcast.Broadcaster
		e2eb *e2e.Broadcaster
		det  *fd.Detector
	)

	if r.tech.usesGroupComm(r.cfg.Level) {
		var err error
		ab, err = abcast.New(abcast.Config{
			Self:        r.cfg.ID,
			Members:     r.cfg.Members,
			Batching:    r.cfg.Batching,
			Sequencer:   r.cfg.Sequencer,
			Incarnation: r.cfg.IncarnationBase + uint64(r.incarnation),
			// Advertised freshness rides the existing ACK/ORDER traffic:
			// every broadcast-layer message stamps the sender's applied
			// watermark, and received stamps feed the peer-advert cache
			// backing freshness-aware routing and staleness leases.
			AdvertiseSeq: r.LastAppliedSeq,
			OnPeerAdvert: r.notePeerApplied,
		}, router)
		if err != nil {
			return err
		}
		if r.cfg.Level.RequiresEndToEnd() {
			if r.msgLog == nil {
				r.msgLog = wal.NewMemLogWithDelay(r.cfg.DiskSyncDelay)
			}
			e2eb, err = e2e.Wrap(ab, e2e.Config{Log: r.msgLog})
			if err != nil {
				return err
			}
		}
		if r.cfg.StartDetector {
			detCfg := r.cfg.Detector
			// Heartbeats double as freshness adverts (the membership path
			// for the server build, where ACK traffic pauses under an idle
			// or partitioned workload).
			detCfg.Annotate = r.LastAppliedSeq
			detCfg.OnAnnotation = r.notePeerApplied
			det = fd.New(r.cfg.ID, r.cfg.Members, router, detCfg)
			router.Handle(fd.MsgHeartbeat, det.OnMessage)
			onEvent := r.cfg.OnDetectorEvent
			det.OnEvent(func(ev fd.Event) {
				if ev.Suspected {
					ab.Suspect(ev.Peer)
				} else {
					ab.Unsuspect(ev.Peer)
				}
				if onEvent != nil {
					onEvent(ev)
				}
			})
		}
	}

	// Publish the new incarnation's stack under mu: concurrent readers
	// (broadcast, Suspect, BroadcastStats, the apply gate) see either the
	// old stack or the new one, never a half-built mix.
	r.mu.Lock()
	r.router = router
	r.ab = ab
	r.e2eb = e2eb
	r.detector = det
	r.applierStop = stop
	r.mu.Unlock()

	router.Start()
	if det != nil {
		det.Start()
	}
	st := newApplyState(r.cfg.ApplyWorkers)
	if e2eb != nil {
		e2eb.Start()
		go r.applyLoopE2E(st, e2eb, stop)
	} else if ab != nil {
		go r.applyLoopClassical(st, ab, stop)
	}
	return nil
}

// stopGroupCommunication tears down the current incarnation's group
// communication stack (used by Crash and Close, under lifeMu).
func (r *Replica) stopGroupCommunication() {
	r.mu.Lock()
	stop := r.applierStop
	r.applierStop = nil
	det := r.detector
	r.detector = nil
	e2eb, ab, router := r.e2eb, r.ab, r.router
	r.mu.Unlock()

	if stop != nil {
		close(stop)
	}
	if det != nil {
		det.Stop()
	}
	if e2eb != nil {
		e2eb.Close()
	}
	if ab != nil {
		ab.Close()
	}
	if router != nil {
		router.Stop()
	}
}

// Crash simulates a full server crash: the replica stops processing, its
// network endpoint goes silent, and every piece of volatile state (database
// buffers, unsynced logs, the group communication component's in-memory
// state) is lost.
func (r *Replica) Crash() {
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return
	}
	r.crashed = true
	close(r.crashCh)
	// The propagation queue is volatile state: acknowledged-but-unshipped
	// lazy write sets die with the process (the 1-safe loss window).
	r.lazyQueue = nil
	r.mu.Unlock()

	r.lifeMu.Lock()
	defer r.lifeMu.Unlock()
	r.cfg.Network.Crash(r.cfg.ID)
	r.stopGroupCommunication()
}

// StateSnapshot is the checkpoint shipped during state transfer.
type StateSnapshot struct {
	Items          []storage.Item
	AppliedTxns    []uint64
	LastAppliedSeq uint64
	// Prepared and AbortedGIDs carry the cross-partition two-phase-commit
	// bookkeeping: in-doubt prepared sub-transactions (with their
	// certification locks) and the gids decided abort.  Without them a
	// recovered replica would certify conflicting transactions differently
	// from the rest of its partition.  Empty on unpartitioned clusters.
	Prepared    []db.PreparedTxn
	AbortedGIDs []uint64
}

// Snapshot produces a state-transfer checkpoint of this replica.  It takes
// the apply barrier so the capture sits between delivered batches: items,
// applied-transaction set and applied sequence form a consistent cut even on
// a live, loaded donor.  (Without the barrier a snapshot could ship a
// transaction id marked applied by deferred staging whose writes had not yet
// been installed — the receiver would then skip its own delivery of that
// transaction and permanently miss its writes.)
func (r *Replica) Snapshot() StateSnapshot {
	r.applyMu.Lock()
	defer r.applyMu.Unlock()
	prepared, aborted := r.dbase.PreparedSnapshot()
	return StateSnapshot{
		Items:          r.dbase.SnapshotState(),
		AppliedTxns:    r.dbase.AppliedTxns(),
		LastAppliedSeq: r.LastAppliedSeq(),
		Prepared:       prepared,
		AbortedGIDs:    aborted,
	}
}

// Recover restarts a crashed replica.  If snapshot is non-nil it is installed
// first (checkpoint-based state transfer of the dynamic crash no-recovery
// model); with end-to-end atomic broadcast, logged-but-unacknowledged
// messages are then replayed (log-based recovery).  It returns the number of
// replayed messages.
func (r *Replica) Recover(snapshot *StateSnapshot) (int, error) {
	r.mu.Lock()
	if !r.crashed {
		r.mu.Unlock()
		return 0, fmt.Errorf("core: replica %s is not crashed", r.cfg.ID)
	}
	r.mu.Unlock()

	// Serialise against a Crash/Close teardown still in flight (e.g. one
	// triggered from inside the old incarnation's deliver hook).
	r.lifeMu.Lock()
	defer r.lifeMu.Unlock()

	// Volatile state of the database component is lost; rebuild from the
	// durable prefix of its write-ahead log.
	if err := r.dbase.CrashAndRecover(); err != nil {
		return 0, fmt.Errorf("core: database recovery: %w", err)
	}
	// The group communication message log also loses its unsynced tail (the
	// in-process crash model only exists for in-memory logs; a file-backed
	// log's process dies for real and is reopened by a fresh Replica).
	if mem, ok := r.msgLog.(*wal.MemLog); ok {
		mem.Crash()
	}

	r.cfg.Network.Recover(r.cfg.ID)

	r.mu.Lock()
	r.pending = make(map[uint64]chan txnOutcome)
	r.veryAcks = make(map[uint64]map[string]bool)
	r.veryDone = make(map[uint64]chan struct{})
	r.crashed = false
	r.crashCh = make(chan struct{})
	r.mu.Unlock()
	// The new incarnation re-applies from its durable prefix: zero the
	// freshness gate and wake any straggling floored waiters of the old life.
	r.fresh.reset()

	if err := r.startGroupCommunication(); err != nil {
		return 0, err
	}

	if snapshot != nil {
		r.installSnapshot(*snapshot)
	}

	replayed := 0
	if r.e2eb != nil {
		n, err := r.e2eb.Recover()
		if err != nil {
			return 0, fmt.Errorf("core: end-to-end recovery: %w", err)
		}
		replayed = n
	}
	return replayed, nil
}

func (r *Replica) installSnapshot(s StateSnapshot) {
	// State transfer must never regress the recovering replica below what its
	// own durable log already rebuilt.  The donor is only the most advanced
	// LIVE replica: after a total failure it can itself be behind this
	// replica's durable prefix (it crashed earlier, or recovered first from a
	// shorter log).  Every replica applies prefixes of the same total order
	// and an item's version counts its committed writes, so taking the
	// higher-versioned copy of each item yields exactly the union of the two
	// prefixes; on equal versions the donor's copy is kept (the behaviour of
	// plain replacement, which matters only for the lazy modes where
	// conflicting same-version values can exist and converging on the donor
	// is the point of the transfer).  Re-deliveries past the merged frontier
	// are idempotent: the applied-transaction set rides along.
	items := s.Items
	if own := r.dbase.SnapshotState(); len(own) == len(items) {
		merged := make([]storage.Item, len(items))
		for i := range items {
			if own[i].Version > items[i].Version {
				merged[i] = own[i]
			} else {
				merged[i] = items[i]
			}
		}
		items = merged
	}
	r.dbase.RestoreState(items, s.AppliedTxns)
	_ = r.dbase.InstallPrepared(s.Prepared, s.AbortedGIDs)
	r.advanceAppliedSeq(s.LastAppliedSeq)
	r.mu.Lock()
	ab := r.ab
	r.mu.Unlock()
	if ab != nil {
		ab.SkipTo(s.LastAppliedSeq + 1)
	}
}

// MergeSnapshot merges a state-transfer checkpoint into a LIVE replica,
// concurrently with the apply pipeline: items are taken per-item only where
// the snapshot is strictly newer-versioned (an atomic conditional append in
// the store, so a racing local install can never be reverted), the applied
// transaction set is unioned, and the applied sequence and the broadcaster's
// delivery cursor only ever advance.  The server layer calls this from its
// periodic resync, where snapshots routinely arrive stale or concurrently
// with fresh deliveries.  Returns the number of items taken.
func (r *Replica) MergeSnapshot(s StateSnapshot) int {
	merged := r.dbase.MergeNewerState(s.Items, s.AppliedTxns)
	_ = r.dbase.InstallPrepared(s.Prepared, s.AbortedGIDs)
	r.advanceAppliedSeq(s.LastAppliedSeq)
	r.mu.Lock()
	ab := r.ab
	r.mu.Unlock()
	if ab != nil {
		ab.SkipTo(s.LastAppliedSeq + 1)
	}
	return merged
}

// Router exposes the replica's message router so embedding layers (the
// server process) can register additional message types — state transfer
// requests, for example — on the same transport endpoint and incarnation the
// replication stack uses.  The router changes on recovery; callers must
// re-fetch it after Recover.
func (r *Replica) Router() *gcs.Router {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.router
}

// ReplayLoggedMessages re-delivers every logged-but-unacknowledged end-to-end
// broadcast message to the apply loop, returning the number replayed.  A
// restarting server process calls it once after constructing the replica over
// its surviving file-backed message log; clusters without the end-to-end
// layer replay nothing.
func (r *Replica) ReplayLoggedMessages() (int, error) {
	r.mu.Lock()
	e2eb := r.e2eb
	r.mu.Unlock()
	if e2eb == nil {
		return 0, nil
	}
	return e2eb.Recover()
}

// Close shuts the replica down.
func (r *Replica) Close() error {
	r.mu.Lock()
	if !r.crashed {
		r.crashed = true
		close(r.crashCh)
	}
	r.mu.Unlock()
	r.lifeMu.Lock()
	r.stopGroupCommunication()
	r.lifeMu.Unlock()
	return r.dbase.Close()
}
