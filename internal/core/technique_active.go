package core

import (
	"context"
	"fmt"
	"sort"

	"groupsafe/internal/storage"
	"groupsafe/internal/wal"
)

// activeTechnique is active replication (state machine replication proper),
// the first of the total-order-broadcast techniques in Wiesmann & Schiper's
// comparison line: the delegate does not execute anything up front — it
// atomically broadcasts the whole deterministic operation list, and EVERY
// replica executes the transaction in delivery order.  There is no
// certification step and therefore no aborts: determinism plus total order
// already yields one-copy serialisability.  The price is processing power —
// reads and writes run n times instead of once — which is why the paper's
// companion work finds it attractive only for short transactions or small
// groups.
//
// Because a Go closure cannot travel in a broadcast, requests carrying a
// Compute hook are rejected (ErrComputeNotReplicable): active replication
// requires the transaction to be a static, deterministic operation list.
type activeTechnique struct{}

// ID implements Technique.
func (activeTechnique) ID() TechniqueID { return TechActive }

// usesGroupComm: the technique IS total order broadcast; every level runs on
// top of it (the incompatible levels are rejected by checkLevel).
func (activeTechnique) usesGroupComm(SafetyLevel) bool { return true }

func (activeTechnique) checkLevel(level SafetyLevel) (SafetyLevel, error) {
	switch level {
	case Safety0:
		// The zero value means "unset": active replication's natural point
		// in the design space is group-safety (the decision is known as
		// soon as the message is delivered — there is nothing to vote on).
		return GroupSafe, nil
	case Safety1Lazy:
		return 0, fmt.Errorf("core: active replication broadcasts every update transaction; the lazy level %v is incompatible", level)
	default:
		return level, nil
	}
}

func (activeTechnique) execute(ctx context.Context, r *Replica, req Request, crashCh chan struct{}) (Result, error) {
	// Pure queries never reach the technique — the engine serves them from a
	// local MVCC snapshot with no broadcast (executeReadOnly, the standard
	// active-replication read optimisation; Fig. 2/8 of the paper).
	if req.Compute != nil {
		return Result{}, ErrComputeNotReplicable
	}
	level, err := r.effectiveLevel(req)
	if err != nil {
		return Result{}, err
	}

	payload := encodeOpsPayload(req.ID, r.cfg.ID, level, req.Ops)
	out, err := r.submitAndWait(ctx, req.ID, payload, level, crashCh)
	if err != nil {
		return Result{}, err
	}
	// The read values were produced by this replica's own apply goroutine
	// when it executed the transaction at its delivery position — i.e. they
	// are the reads of the serialisation point, not of an optimistic
	// pre-execution.
	return Result{TxnID: req.ID, Outcome: out.outcome, ReadValues: out.reads, Delegate: r.cfg.ID, Level: level, CommitLSN: uint64(out.lsn), Freshness: out.seq}, nil
}

// applyBatch executes one drained batch of totally-ordered transactions.
// Execution is strictly serial in delivery order — that is the essence of
// active replication (the state machine executes one command at a time), so
// the conflict-graph scheduler is bypassed; ApplyWorkers only affects the
// other techniques.  Durability batching is kept: each transaction's records
// are staged without a force, its writes are installed immediately (later
// transactions of the batch must read them), and one group-committed force
// covers the whole batch before any outcome is externalised.
//
// Crash semantics are identical to the certification pipeline: nothing is
// externalised before the batch force, a crash mid-batch abandons the batch,
// end-to-end levels replay the unacknowledged suffix (StageWrites's
// exactly-once check makes the replay idempotent), classical levels recover
// by state transfer.
func (activeTechnique) applyBatch(r *Replica, st *applyState, stop chan struct{}, batch []applyItem) {
	if !r.applierCurrent(stop) {
		return
	}
	staged := st.staged[:0]
	numItems := r.dbase.Store().NumItems()
	var maxLSN wal.LSN
	needSync := false

	for i := range batch {
		hook, current := r.deliveryGate(stop)
		if !current {
			return
		}
		rec := &st.opsRec
		if err := decodeOpsRecord(batch[i].payload, rec); err != nil {
			continue
		}

		// The crash window of Fig. 5: delivered, not yet processed.
		if hook != nil {
			hook(rec.TxnID)
			if !r.applierCurrent(stop) {
				return
			}
		}

		// Deterministic execution: every replica runs the full operation
		// list.  Reads see the committed store overlaid with the
		// transaction's own earlier writes (read-your-writes); only the
		// delegate keeps the values to answer its client.
		isDelegate := rec.Delegate == r.cfg.ID
		var reads map[int]int64
		if isDelegate {
			reads = make(map[int]int64, len(rec.Ops))
		}
		clear(st.writeVals)
		ok := true
		for _, op := range rec.Ops {
			if op.Item < 0 || op.Item >= numItems {
				ok = false
				break
			}
			if op.Write {
				st.writeVals[op.Item] = op.Value
				continue
			}
			v, seen := st.writeVals[op.Item]
			if !seen {
				var err error
				if v, _, err = r.dbase.ReadVersioned(op.Item); err != nil {
					ok = false
					break
				}
			}
			if isDelegate {
				reads[op.Item] = v
			}
		}
		if !ok {
			// A malformed transaction is dropped deterministically at every
			// replica (same payload, same check), so the copies stay equal.
			continue
		}

		ws := st.writeBuf[:0]
		for item, value := range st.writeVals {
			ws = append(ws, storage.Write{Item: item, Value: value})
		}
		sort.Slice(ws, func(a, b int) bool { return ws[a].Item < ws[b].Item })
		st.writeBuf = ws

		fresh, lsn, err := r.dbase.StageWrites(rec.TxnID, ws)
		if err != nil {
			continue
		}
		var commitLSN wal.LSN
		if fresh {
			commitLSN = lsn
			if lsn > maxLSN {
				maxLSN = lsn
			}
			if rec.Level.SyncOnCommit() {
				needSync = true
			}
			// Install immediately (serial): the next transaction of the
			// batch may read these items at its serialisation point.
			if err := r.dbase.InstallWrites(ws); err != nil {
				return
			}
		}
		staged = append(staged, stagedTxn{item: batch[i], txnID: rec.TxnID, delegate: rec.Delegate, level: rec.Level, outcome: OutcomeCommitted, lsn: commitLSN, reads: reads})
	}
	st.staged = staged

	// One force covers every commit record of the batch when any of its
	// transactions runs at a force-on-commit level (the cluster's, or a
	// per-transaction override); nothing was externalised before it.
	if maxLSN > 0 && needSync {
		if err := r.dbase.ForceTo(maxLSN); err != nil {
			return
		}
	}
	r.externalize(staged)
}
