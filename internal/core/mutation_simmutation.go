//go:build simmutation

package core

// Building with -tags simmutation plants a deliberate safety bug: 2-safe
// transactions no longer force the local database log before the client is
// acknowledged (the batch force in the certification apply path skips them).
// The end-to-end message log still runs, so the cluster LOOKS healthy — the
// bug only surfaces when a total failure destroys every volatile buffer and
// recovery must rebuild committed state from what was actually forced.
//
// This exists to prove the scenario fuzzer has teeth: the mutation self-test
// (internal/sim/fuzz, TestMutationSelfTest) asserts the invariant suite
// catches the lost acknowledged transaction within a bounded seed sweep.
// Never build production binaries with this tag.
const mutationSkip2SafeForce = true
