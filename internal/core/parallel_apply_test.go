package core

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"groupsafe/internal/tuning"
	"groupsafe/internal/workload"
)

// TestTxnPayloadRoundTrip checks the binary transaction-payload codec against
// randomized read sets and write sets, including slice reuse across decodes.
func TestTxnPayloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var rec txnRecord // reused across iterations, like the apply loop's arena
	for trial := 0; trial < 200; trial++ {
		readVers := make(map[int]uint64)
		writes := make(map[int]int64)
		for i := rng.Intn(12); i > 0; i-- {
			readVers[rng.Intn(10000)] = uint64(rng.Int63())
		}
		for i := rng.Intn(12); i > 0; i-- {
			writes[rng.Intn(10000)] = rng.Int63() - rng.Int63()
		}
		id := uint64(rng.Int63())
		level := AllLevels()[rng.Intn(len(AllLevels()))]
		payload := encodeTxnPayload(id, "s1", level, readVers, writes)

		if err := decodeTxnRecord(payload, &rec); err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if rec.TxnID != id || rec.Delegate != "s1" || rec.Level != level {
			t.Fatalf("trial %d: header mismatch: %+v", trial, rec)
		}
		if len(rec.Reads) != len(readVers) || len(rec.Writes) != len(writes) {
			t.Fatalf("trial %d: length mismatch", trial)
		}
		for i, rv := range rec.Reads {
			if readVers[rv.Item] != rv.Ver {
				t.Fatalf("trial %d: read %d mismatch: %+v", trial, i, rv)
			}
			if i > 0 && rec.Reads[i-1].Item >= rv.Item {
				t.Fatalf("trial %d: reads not sorted", trial)
			}
		}
		for i, w := range rec.Writes {
			if writes[w.Item] != w.Value {
				t.Fatalf("trial %d: write %d mismatch: %+v", trial, i, w)
			}
			if i > 0 && rec.Writes[i-1].Item >= w.Item {
				t.Fatalf("trial %d: writes not sorted", trial)
			}
		}
	}
}

// TestTxnPayloadDecodeRejectsGarbage checks that truncated or corrupt
// payloads fail to decode instead of producing a bogus record.
func TestTxnPayloadDecodeRejectsGarbage(t *testing.T) {
	payload := encodeTxnPayload(42, "s1", Group1Safe, map[int]uint64{1: 2}, map[int]int64{3: 4})
	var rec txnRecord
	for cut := 0; cut < len(payload); cut++ {
		if err := decodeTxnRecord(payload[:cut], &rec); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	bad := append([]byte{}, payload...)
	bad[0] = 0x00
	if err := decodeTxnRecord(bad, &rec); err == nil {
		t.Fatal("bad magic byte decoded successfully")
	}
}

// runParallelApplyWorkload drives a cluster at one ApplyWorkers setting with
// a conflicting concurrent workload and returns the per-replica committed
// counts after the cluster converged.
func runParallelApplyWorkload(t *testing.T, workers int) {
	t.Helper()
	// The scheduler clamps its pool to GOMAXPROCS; raise it so the parallel
	// install path really runs concurrently even on single-core runners.
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	cluster, err := NewCluster(ClusterConfig{
		Replicas: 3,
		Items:    96, // small database: plenty of intra-batch conflicts
		Level:    GroupSafe,
		Pipeline: tuning.Pipe(8, 200*time.Microsecond, workers),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	const clients, txnsPerClient = 8, 40
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := workload.NewGenerator(workload.Config{
				Items: 96, MinOps: 2, MaxOps: 6, WriteProb: 0.6,
			}, int64(c+1))
			delegate := c % cluster.Size()
			for i := 0; i < txnsPerClient; i++ {
				if _, err := cluster.Execute(context.Background(), delegate, RequestFromWorkload(gen.Next(0, delegate))); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// One-copy equivalence: every replica certified and installed the same
	// totally-ordered prefix, so after the queues drain the three stores
	// must be byte-identical (values AND versions) — with parallel install,
	// any scheduling nondeterminism would break this.
	if !waitConsistent(cluster, 5*time.Second) {
		t.Fatalf("workers=%d: replicas did not converge to identical state", workers)
	}
}

// TestParallelApplyOneCopyEquivalence runs a conflicting workload at worker
// counts 1, 4 and 16: all replicas must converge to identical store bytes at
// every setting.  Under -race this doubles as the concurrent-install data
// race check.
func TestParallelApplyOneCopyEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		t.Run(itoa(workers), func(t *testing.T) {
			runParallelApplyWorkload(t, workers)
		})
	}
}

// TestParallelApplyConcurrentRecovery crashes and recovers a replica while
// concurrent clients keep the parallel apply pipeline busy on the survivors
// — the race-detector test for concurrent install + recovery (state
// transfer, store restore, scheduler teardown/rebuild).
func TestParallelApplyConcurrentRecovery(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	cluster, err := NewCluster(ClusterConfig{
		Replicas: 3,
		Items:    128,
		Level:    GroupSafe,
		Pipeline: tuning.Pipe(8, 200*time.Microsecond, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := workload.NewGenerator(workload.Config{
				Items: 128, MinOps: 2, MaxOps: 5, WriteProb: 0.6,
			}, int64(100+c))
			// Delegates 0 and 1 stay up; replica 2 is the crash victim.
			delegate := c % 2
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = cluster.Execute(context.Background(), delegate, RequestFromWorkload(gen.Next(0, delegate)))
			}
		}(c)
	}

	for round := 0; round < 3; round++ {
		time.Sleep(20 * time.Millisecond)
		cluster.Crash(2)
		time.Sleep(20 * time.Millisecond)
		if _, err := cluster.Recover(2); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("round %d: recover: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()

	// Under continuous traffic a classical-abcast recovery can permanently
	// miss sequences ordered inside the recovery window (the very gap the
	// paper's end-to-end broadcast closes), so the convergence assertion uses
	// a final quiesced state transfer: crash the victim, let the survivors
	// drain and agree, then hand the victim a snapshot of the settled state.
	cluster.Crash(2)
	if !waitConsistent(cluster, 5*time.Second) {
		t.Fatal("surviving replicas did not converge after crash/recovery rounds")
	}
	if _, err := cluster.Recover(2); err != nil {
		t.Fatalf("final recover: %v", err)
	}
	if !waitConsistent(cluster, 5*time.Second) {
		t.Fatal("recovered replica did not converge to the settled state")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
