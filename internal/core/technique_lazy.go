package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"groupsafe/internal/gcs/transport"
	"groupsafe/internal/workload"
)

// lazyPrimaryTechnique is lazy primary-copy replication, the classical
// 1-safe scheme the paper argues against (Sect. 3, Table 1): update
// transactions execute only at the primary (the first member of the group),
// which runs them under strict 2PL, forces its log, answers the client, and
// only then ships the write set to the secondaries — asynchronously, off the
// response path.  Because a single site orders all updates there are no
// multi-master conflicts (unlike the Safety1Lazy update-everywhere
// baseline), but a primary crash after the acknowledgement and before the
// propagation loses the transaction: the 1-safe window group-safety closes.
//
// Read-only transactions may execute at any replica, against possibly-stale
// committed state.
type lazyPrimaryTechnique struct{}

// lazyItem is one queued asynchronous write-set propagation.  ready is
// closed once the local commit outcome is known; skip is set (before the
// close) when the commit failed, so the drainer must not ship the payload.
type lazyItem struct {
	payload []byte
	due     time.Time
	ready   chan struct{}
	skip    bool
}

// ID implements Technique.
func (lazyPrimaryTechnique) ID() TechniqueID { return TechLazyPrimary }

func (lazyPrimaryTechnique) usesGroupComm(SafetyLevel) bool { return false }

func (lazyPrimaryTechnique) checkLevel(level SafetyLevel) (SafetyLevel, error) {
	if level.UsesGroupCommunication() {
		return 0, fmt.Errorf("core: lazy primary-copy does not use group communication; safety level %v is incompatible (the technique is 1-safe)", level)
	}
	// The technique is inherently 1-safe: the primary forces its commit
	// record before answering the client.  The 0-safe zero value is
	// canonicalised rather than kept, so Result.Level reports the guarantee
	// actually provided.
	return Safety1Lazy, nil
}

func (t lazyPrimaryTechnique) execute(ctx context.Context, r *Replica, req Request, _ chan struct{}) (Result, error) {
	if !r.IsPrimary() && requestMayWrite(req) {
		return Result{}, fmt.Errorf("%w (primary is %s)", ErrNotPrimary, r.cfg.Members[0])
	}
	return r.executeLocal(ctx, req)
}

// applyBatch is never reached: the technique does not use group
// communication, so no apply loop is started.
func (lazyPrimaryTechnique) applyBatch(*Replica, *applyState, chan struct{}, []applyItem) {}

// executeLocal implements purely local execution with asynchronous write-set
// propagation: the 0-safe and lazy (1-safe) baselines of the certification
// technique, and the whole of lazy primary-copy.  The transaction runs
// entirely at this replica under strict 2PL; the write set is pushed to the
// other replicas asynchronously, after the client response.  The local path
// has a single response point, so a per-request safety override must resolve
// to the cluster's own level (effectiveLevel rejects anything else).
//
// The caller's context (or the ExecTimeout default) bounds the whole local
// execution, 2PL lock waits included: a watcher goroutine externally aborts
// the transaction's lock acquisition when ctx expires, so an Execute stuck
// behind a conflicting lock returns promptly with the context error.  The
// watcher and the commit path arbitrate through one atomic gate — Abort
// revokes every held lock, which must never happen once Commit has started
// appending records, so whichever side wins the CAS excludes the other.
// Once the commit sequence has begun, the disk force runs to completion
// regardless of ctx.
func (r *Replica) executeLocal(ctx context.Context, req Request) (Result, error) {
	level, err := r.effectiveLevel(req)
	if err != nil {
		return Result{}, err
	}
	// No totally-ordered sequence exists on the local paths, so a freshness
	// floor cannot be honoured (same rule as executeReadOnly).
	if req.MinFreshness > 0 {
		return Result{}, r.errNoFreshnessSequence()
	}
	ctx, cancel := r.withDefaultTimeout(ctx)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return Result{}, ctxWaitError(ctx, req.ID, "before local execution")
	}
	dbase := r.dbase
	txn, err := dbase.Begin(req.ID)
	if err != nil {
		return Result{}, fmt.Errorf("core: begin: %w", err)
	}

	const (
		gateRunning    int32 = 0
		gateCommitting int32 = 1
		gateCtxAborted int32 = 2
	)
	var gate atomic.Int32
	watchDone := make(chan struct{})
	watcherExit := make(chan struct{})
	defer close(watchDone)
	go func() {
		defer close(watcherExit)
		select {
		case <-ctx.Done():
			if gate.CompareAndSwap(gateRunning, gateCtxAborted) {
				dbase.AbortWaiting(req.ID)
			}
		case <-watchDone:
		}
	}()
	readVals := make(map[int]int64)
	runOps := func(ops []workload.Op) error {
		for _, op := range ops {
			if op.Write {
				if err := txn.Write(op.Item, op.Value); err != nil {
					return err
				}
				continue
			}
			v, err := txn.Read(op.Item)
			if err != nil {
				return err
			}
			readVals[op.Item] = v
		}
		return nil
	}
	err = runOps(req.Ops)
	if err == nil && req.Compute != nil {
		err = runOps(req.Compute(readVals))
	}
	if err != nil {
		_ = txn.Abort()
		if !gate.CompareAndSwap(gateRunning, gateCommitting) {
			// The watcher externally aborted us (the error is the lock
			// manager's ErrAborted, or a genuine abort that raced the
			// expiry): report the context error, not an abort outcome.
			// Wait for the watcher first — ForgetTxn must run after its
			// AbortWaiting, or the lock manager's aborted mark leaks.
			<-watcherExit
			dbase.ForgetTxn(req.ID)
			return Result{}, ctxWaitError(ctx, req.ID, "during local execution")
		}
		r.countOutcome(OutcomeAborted)
		return Result{TxnID: req.ID, Outcome: OutcomeAborted, Delegate: r.cfg.ID, Level: level}, nil
	}
	ws := txn.WriteSet()

	// Claim the gate before the commit sequence: from here on the watcher
	// can no longer revoke the 2PL locks.
	if !gate.CompareAndSwap(gateRunning, gateCommitting) {
		_ = txn.Abort()
		<-watcherExit // ForgetTxn strictly after the watcher's AbortWaiting
		dbase.ForgetTxn(req.ID)
		return Result{}, ctxWaitError(ctx, req.ID, "before local commit")
	}

	// Reserve the propagation slot BEFORE Commit releases the 2PL locks: a
	// conflicting transaction is still blocked in its Write call at this
	// point, so conflicting write sets enqueue in commit order and the
	// single drainer ships them in that order — secondaries converge to the
	// delegate's state instead of racing per-transaction goroutines
	// (last-writer-wins on the wire would otherwise let a stale write set
	// overtake a newer one and diverge permanently).  Disjoint write sets
	// may enqueue in either order; they commute.  The payload only becomes
	// send-ready once Commit has succeeded — the drainer must never ship a
	// write set the delegate did not durably commit.
	var it *lazyItem
	if len(ws) > 0 {
		it = r.enqueueLazy(encodePayload(lazyPayload{TxnID: req.ID, Delegate: r.cfg.ID, Writes: ws}))
	}
	if err := txn.Commit(); err != nil {
		if it != nil {
			it.skip = true
			close(it.ready)
		}
		return Result{}, fmt.Errorf("core: commit: %w", err)
	}
	if it != nil {
		close(it.ready)
	}
	r.countOutcome(OutcomeCommitted)
	return Result{TxnID: req.ID, Outcome: OutcomeCommitted, ReadValues: readVals, Delegate: r.cfg.ID, Level: level, CommitLSN: uint64(txn.CommitLSN())}, nil
}

// enqueueLazy appends a write-set payload to the replica's ordered
// propagation queue and makes sure a drainer goroutine is running.  The
// queue is volatile: a crash drops it (Crash clears the queue and the
// drainer exits), which is exactly the 1-safe window — acknowledged
// transactions whose propagation had not left the delegate are lost.
func (r *Replica) enqueueLazy(payload []byte) *lazyItem {
	it := &lazyItem{
		payload: payload,
		due:     time.Now().Add(r.cfg.LazyPropagationDelay),
		ready:   make(chan struct{}),
	}
	r.mu.Lock()
	r.lazyQueue = append(r.lazyQueue, it)
	start := !r.lazyDraining
	if start {
		r.lazyDraining = true
	}
	r.mu.Unlock()
	if start {
		go r.drainLazy()
	}
	return it
}

// drainLazy ships queued write sets to every other member, strictly in
// enqueue order, honouring each item's propagation-delay deadline.  It runs
// off the client response path (the lazy point) and exits when the queue is
// empty or the replica crashed.
func (r *Replica) drainLazy() {
	for {
		r.mu.Lock()
		if r.crashed || len(r.lazyQueue) == 0 {
			r.lazyDraining = false
			r.mu.Unlock()
			return
		}
		it := r.lazyQueue[0]
		r.lazyQueue = r.lazyQueue[1:]
		router := r.router
		r.mu.Unlock()

		// Wait until the local commit outcome is known (ready is always
		// closed, by the commit and the abort path alike).
		<-it.ready
		if it.skip {
			continue
		}
		if wait := time.Until(it.due); wait > 0 {
			time.Sleep(wait)
		}
		// Re-check the incarnation after the waits: the popped item is
		// volatile pre-crash state, and a crash+recover completed while we
		// slept swaps the router — shipping then would leak state across
		// the crash.  Comparing the router identity is the incarnation
		// check (startGroupCommunication publishes a fresh router under mu).
		r.mu.Lock()
		stale := r.crashed || r.router != router
		r.mu.Unlock()
		if stale || router == nil {
			continue
		}
		for _, m := range r.cfg.Members {
			if m == r.cfg.ID {
				continue
			}
			_ = router.Send(m, transport.Message{Type: msgLazy, Payload: it.payload})
		}
	}
}

// onLazy applies a lazily-propagated write set: no certification, last
// writer wins.  Under update-everywhere lazy replication (Safety1Lazy) this
// is the source of the inconsistencies the paper attributes to lazy
// replication; under primary-copy a single site orders all updates, so the
// secondaries converge to the primary's state.
func (r *Replica) onLazy(m transport.Message) {
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	var p lazyPayload
	if err := decodePayload(m.Payload, &p); err != nil {
		return
	}
	r.applyMu.Lock()
	_, err := r.dbase.ApplyWriteSet(p.TxnID, writeSetOf(p.Writes))
	r.applyMu.Unlock()
	if err != nil {
		return
	}
	r.mu.Lock()
	r.stats.LazyApply++
	r.mu.Unlock()
}
