package core

import "testing"

func TestSafetyLevelStrings(t *testing.T) {
	want := map[SafetyLevel]string{
		Safety0:        "0-safe",
		Safety1Lazy:    "1-safe-lazy",
		GroupSafe:      "group-safe",
		Group1Safe:     "group-1-safe",
		Safety2:        "2-safe",
		VerySafe:       "very-safe",
		SafetyLevel(9): "safety(9)",
	}
	for level, s := range want {
		if level.String() != s {
			t.Errorf("%d.String() = %q, want %q", level, level.String(), s)
		}
	}
}

func TestSafetyLevelClassification(t *testing.T) {
	// Table 1 of the paper: delivered × logged guarantees at notification.
	cases := []struct {
		level     SafetyLevel
		delivered string
		logged    string
	}{
		{Safety0, "1", "none"},
		{Safety1Lazy, "1", "1"},
		{GroupSafe, "all", "none"},
		{Group1Safe, "all", "1"},
		{Safety2, "all", "all"},
		{VerySafe, "all", "all"},
	}
	for _, tc := range cases {
		if got := tc.level.GuaranteedDelivered(); got != tc.delivered {
			t.Errorf("%v delivered = %q, want %q", tc.level, got, tc.delivered)
		}
		if got := tc.level.GuaranteedLogged(); got != tc.logged {
			t.Errorf("%v logged = %q, want %q", tc.level, got, tc.logged)
		}
	}
}

func TestToleratedCrashesTable2(t *testing.T) {
	// Table 2 of the paper: 0-safe/1-safe tolerate 0 crashes, group-safe and
	// group-1-safe tolerate fewer than n, 2-safe tolerates n.
	const n = 9
	cases := map[SafetyLevel]int{
		Safety0:     0,
		Safety1Lazy: 0,
		GroupSafe:   n - 1,
		Group1Safe:  n - 1,
		Safety2:     n,
		VerySafe:    n,
	}
	for level, want := range cases {
		if got := level.ToleratedCrashes(n); got != want {
			t.Errorf("%v tolerates %d crashes, want %d", level, got, want)
		}
	}
	if GroupSafe.ToleratedCrashes(0) != 0 || SafetyLevel(42).ToleratedCrashes(5) != 0 {
		t.Error("degenerate inputs should tolerate 0 crashes")
	}
}

func TestLevelPredicates(t *testing.T) {
	for _, level := range []SafetyLevel{GroupSafe, Group1Safe, Safety2, VerySafe} {
		if !level.UsesGroupCommunication() {
			t.Errorf("%v should use group communication", level)
		}
	}
	for _, level := range []SafetyLevel{Safety0, Safety1Lazy} {
		if level.UsesGroupCommunication() {
			t.Errorf("%v should not use group communication", level)
		}
	}
	if !Safety2.RequiresEndToEnd() || !VerySafe.RequiresEndToEnd() {
		t.Error("2-safe and very-safe need end-to-end atomic broadcast")
	}
	if GroupSafe.RequiresEndToEnd() || Group1Safe.RequiresEndToEnd() {
		t.Error("group-safe levels must work on classical atomic broadcast")
	}
	for _, level := range []SafetyLevel{Safety1Lazy, Group1Safe, Safety2, VerySafe} {
		if !level.SyncOnCommit() {
			t.Errorf("%v must force the log before answering", level)
		}
	}
	for _, level := range []SafetyLevel{Safety0, GroupSafe} {
		if level.SyncOnCommit() {
			t.Errorf("%v must not force the log before answering", level)
		}
	}
	if len(AllLevels()) != 6 {
		t.Errorf("AllLevels = %v", AllLevels())
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomePending.String() != "pending" || OutcomeCommitted.String() != "committed" ||
		OutcomeAborted.String() != "aborted" || Outcome(7).String() != "outcome(7)" {
		t.Fatal("outcome strings wrong")
	}
	if (Result{Outcome: OutcomeCommitted}).Committed() != true {
		t.Fatal("Committed() wrong")
	}
	if (Result{Outcome: OutcomeAborted}).Committed() {
		t.Fatal("aborted result reported as committed")
	}
}
