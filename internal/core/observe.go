package core

import (
	"groupsafe/internal/storage"
	"groupsafe/internal/wal"
)

// This file holds the observability hooks the deterministic fault-injection
// fuzzer (internal/sim/fuzz) uses to extract the committed history and the
// durability frontier of a replica.  Everything here is read-only with
// respect to the replication protocol: the hooks observe, they never steer.

// AppliedRecord is one externalised transaction as seen by one replica's
// apply loop: its position in the total order, its identifier, and the
// certification outcome.  Recorded only when ReplicaConfig.RecordApplied is
// set.
type AppliedRecord struct {
	// Seq is the atomic broadcast sequence number of the delivery.
	Seq uint64
	// TxnID is the transaction identifier assigned by the delegate.
	TxnID uint64
	// Outcome is the commit/abort decision every replica reached.
	Outcome Outcome
	// Level is the safety level the transaction was externalised at.
	Level SafetyLevel
	// Vote marks a cross-partition PREPARE entry: Outcome is this
	// partition's certification vote, not a final transaction outcome (the
	// later decide entry, same TxnID, carries that).  Always false outside
	// partitioned 2PC.
	Vote bool
}

// AppliedLog returns a copy of the replica's applied-transaction log, in
// apply order.  Empty unless the replica was configured with RecordApplied.
// The log is an observer owned by the harness: it deliberately survives
// simulated crashes (a real invariant checker sits outside the crash model),
// so after a crash-recovery it may contain the same sequence number twice —
// once from the pre-crash incarnation and once from the end-to-end replay.
func (r *Replica) AppliedLog() []AppliedRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]AppliedRecord, len(r.appliedLog))
	copy(out, r.appliedLog)
	return out
}

// DurableLSN returns the local database log's durable frontier: the LSN of
// the last record that would survive a crash at this instant.  The fuzzer
// samples it just before injecting a crash to decide which acknowledged
// transactions a group-safe cluster was still allowed to lose.  Logs that do
// not track an explicit sync frontier (wal.FileLog appends are on disk as
// soon as the write syscall returns; only the OS cache is at risk) report
// their last appended LSN.
func (r *Replica) DurableLSN() uint64 {
	if l, ok := r.dbLog.(interface{ DurableLSN() wal.LSN }); ok {
		return uint64(l.DurableLSN())
	}
	return uint64(r.dbLog.LastLSN())
}

// StoreItems returns a copy of the replica's committed store contents
// (value and version per item), the same snapshot the cluster-wide
// consistency check compares.
func (r *Replica) StoreItems() []storage.Item {
	return r.dbase.Store().Snapshot()
}
