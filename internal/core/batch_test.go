package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"groupsafe/internal/tuning"
	"groupsafe/internal/workload"
)

// runConcurrent fires clients goroutines, each executing txns transactions
// against the given delegate, and reports commits and aborts.
func runConcurrent(t *testing.T, c *Cluster, delegate, clients, txns, items int) (commits, aborts int) {
	t.Helper()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := workload.NewGenerator(workload.Config{Items: items, MinOps: 2, MaxOps: 4, WriteProb: 0.5}, int64(g+1))
			for i := 0; i < txns; i++ {
				res, err := c.Execute(context.Background(), delegate, RequestFromWorkload(gen.Next(0, delegate)))
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if res.Committed() {
					commits++
				} else {
					aborts++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return commits, aborts
}

// TestClusterBatchedConvergence runs concurrent clients against a batched
// group-safe cluster and checks that every replica converges to identical
// state — batching must not reorder or drop write sets.
func TestClusterBatchedConvergence(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Replicas: 3,
		Items:    512,
		Level:    GroupSafe,
		Pipeline: tuning.Pipe(8, 500*time.Microsecond, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	commits, aborts := runConcurrent(t, c, 0, 8, 25, 512)
	if commits == 0 {
		t.Fatal("no transaction committed")
	}
	if commits+aborts != 8*25 {
		t.Fatalf("accounted %d outcomes, want %d", commits+aborts, 8*25)
	}
	if !waitConsistent(c, 5*time.Second) {
		t.Fatal("replicas did not converge under batched delivery")
	}
	// Batching must actually have happened: the delegate sent fewer DATA
	// messages than broadcasts.
	st := c.Replica(0).BroadcastStats()
	if st.DataBatches >= st.Broadcast {
		t.Fatalf("no coalescing observed: %d broadcasts in %d DATA messages", st.Broadcast, st.DataBatches)
	}
	t.Logf("delegate: %d broadcasts in %d DATA batches (mean batch %.1f)",
		st.Broadcast, st.DataBatches, float64(st.Broadcast)/float64(st.DataBatches))
}

// TestClusterBatched2Safe exercises the end-to-end (2-safe) pipeline under
// batching: the message log force and the commit force both amortise over
// batches, and the cluster must stay consistent.
func TestClusterBatched2Safe(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Replicas: 3,
		Items:    256,
		Level:    Safety2,
		Pipeline: tuning.Pipe(4, 500*time.Microsecond, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	commits, _ := runConcurrent(t, c, 1, 4, 15, 256)
	if commits == 0 {
		t.Fatal("no transaction committed")
	}
	if !waitConsistent(c, 5*time.Second) {
		t.Fatal("2-safe replicas did not converge under batched delivery")
	}
}

// TestRecoveredDelegateCanCommit is the regression test for the incarnation
// bug: a recovered replica restarts its broadcast message-id counter, and
// without incarnation-namespaced ids its first post-recovery broadcast
// collides with a pre-crash message id, is never ordered, and times out.
func TestRecoveredDelegateCanCommit(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Replicas: 3, Items: 128, Level: GroupSafe, ExecTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	gen := workload.NewGenerator(workload.Config{Items: 128, MinOps: 2, MaxOps: 4, WriteProb: 1}, 7)
	// The future victim delegates a few broadcasts, so its pre-crash message
	// ids exist group-wide.
	for i := 0; i < 5; i++ {
		if _, err := c.Execute(context.Background(), 2, RequestFromWorkload(gen.Next(0, 2))); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash(2)
	for _, r := range c.Replicas()[:2] {
		r.Suspect("s3")
	}
	if _, err := c.Execute(context.Background(), 0, RequestFromWorkload(gen.Next(0, 0))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	// The recovered replica must be able to get fresh transactions ordered.
	res, err := c.Execute(context.Background(), 2, RequestFromWorkload(gen.Next(0, 2)))
	if err != nil {
		t.Fatalf("post-recovery execute: %v", err)
	}
	if !res.Committed() {
		t.Fatalf("post-recovery txn aborted: %+v", res)
	}
	if !waitConsistent(c, 5*time.Second) {
		t.Fatal("replicas diverged after recovery")
	}
}

// TestClusterBatchedFailover crashes the sequencer replica while batched
// traffic is in flight and checks that the survivors keep committing and
// converge (uniform agreement across a sequencer failover with batches in
// the pipe).
func TestClusterBatchedFailover(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Replicas: 5,
		Items:    512,
		Level:    Group1Safe,
		Pipeline: tuning.Pipe(8, 500*time.Microsecond, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Warm traffic through the epoch-0 sequencer (replica 0 = s1).
	commits, _ := runConcurrent(t, c, 1, 4, 10, 512)
	if commits == 0 {
		t.Fatal("no transaction committed before the crash")
	}

	// Crash the sequencer; the survivors suspect it and fail over.
	c.Crash(0)
	for _, r := range c.Replicas()[1:] {
		r.Suspect("s1")
	}

	// Post-failover batched traffic must still commit.
	commits2, _ := runConcurrent(t, c, 2, 4, 10, 512)
	if commits2 == 0 {
		t.Fatal("no transaction committed after sequencer failover")
	}
	if !waitConsistent(c, 10*time.Second) {
		t.Fatal("survivors did not converge after a batched failover")
	}
}
