//go:build !simmutation

package core

// mutationSkip2SafeForce is the off switch of the fuzzer's mutation
// self-test (see mutation_simmutation.go).  In normal builds it is a
// compile-time false, so the guard it appears in folds away entirely.
const mutationSkip2SafeForce = false
