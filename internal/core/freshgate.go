package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the freshness gate of the read scale-out layer: the replica's
// applied-sequence watermark, the ordered wakeup structure for
// freshness-floored sessions, and the delivery-rate estimate that converts a
// wall-clock staleness bound into a sequence floor.
//
// The gate replaces the old close-and-remake broadcast channel, which woke
// EVERY floored waiter on every applied sequence (a thundering herd under
// many concurrent sessions).  Waiters now sit in a min-heap ordered by their
// floor; each delivery pops only the waiters it satisfies, so a waiter is
// woken exactly once, ever — O(1) amortised wakeups per delivery regardless
// of how many sessions are parked.

// freshWaiter is one parked freshness-floored session.
type freshWaiter struct {
	floor uint64
	ch    chan struct{}
}

// freshGate tracks the replica's applied broadcast sequence and wakes parked
// waiters in floor order.
type freshGate struct {
	// applied is the highest applied sequence; reads are lock-free (the
	// query hot path samples it for every freshness token).
	applied atomic.Uint64

	// mu guards the waiter heap (min-heap by floor) and the wake counter.
	mu    sync.Mutex
	heap  []freshWaiter
	wakes uint64

	// Delivery-rate estimate: an EWMA of applied sequences per second,
	// sampled once per externalised batch (not per transaction, to keep
	// time.Now off the apply hot path).  rateMu guards the sample state;
	// the estimate feeds the bounded-staleness lease check.
	rateMu     sync.Mutex
	rateEWMA   float64
	lastSample time.Time
	lastSeq    uint64
}

// appliedSeq returns the current applied sequence, lock-free.
func (g *freshGate) appliedSeq() uint64 { return g.applied.Load() }

// advance raises the applied sequence (monotonic; stale values are ignored)
// and wakes exactly the parked waiters whose floor is now satisfied.
func (g *freshGate) advance(seq uint64) {
	for {
		cur := g.applied.Load()
		if seq <= cur {
			return
		}
		if g.applied.CompareAndSwap(cur, seq) {
			break
		}
	}
	g.mu.Lock()
	for len(g.heap) > 0 && g.heap[0].floor <= seq {
		close(g.heap[0].ch)
		g.popLocked()
		g.wakes++
	}
	g.mu.Unlock()
}

// subscribe registers a waiter for the given floor.  When the floor is
// already satisfied it returns (nil, true) and the caller proceeds without
// blocking; otherwise the returned channel is closed by the advance() that
// first satisfies the floor.  A waiter abandoned by its caller (context
// expiry, crash) stays in the heap until some advance satisfies it — closing
// a channel nobody reads is free, and reset() clears the heap on recovery.
func (g *freshGate) subscribe(floor uint64) (chan struct{}, bool) {
	if g.applied.Load() >= floor {
		return nil, true
	}
	g.mu.Lock()
	// Re-check under mu: an advance that stored a satisfying sequence before
	// we acquired mu would otherwise never see this waiter.
	if g.applied.Load() >= floor {
		g.mu.Unlock()
		return nil, true
	}
	ch := make(chan struct{})
	g.pushLocked(freshWaiter{floor: floor, ch: ch})
	g.mu.Unlock()
	return ch, false
}

// reset zeroes the applied sequence (crash/recovery: the new incarnation
// re-applies from its durable prefix) and wakes every parked waiter so none
// sleeps on a watermark that no longer exists; woken waiters re-check and
// either re-subscribe or exit via their crash channel.
func (g *freshGate) reset() {
	g.applied.Store(0)
	g.mu.Lock()
	for _, w := range g.heap {
		close(w.ch)
		g.wakes++
	}
	g.heap = g.heap[:0]
	g.mu.Unlock()
}

// wakeCount returns the cumulative number of waiter wakeups (observability
// for the O(1)-wakeups-per-delivery benchmark).
func (g *freshGate) wakeCount() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.wakes
}

// waiting returns the number of parked waiters.
func (g *freshGate) waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.heap)
}

// pushLocked inserts a waiter into the min-heap (mu held).
func (g *freshGate) pushLocked(w freshWaiter) {
	g.heap = append(g.heap, w)
	i := len(g.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if g.heap[parent].floor <= g.heap[i].floor {
			break
		}
		g.heap[parent], g.heap[i] = g.heap[i], g.heap[parent]
		i = parent
	}
}

// popLocked removes the minimum-floor waiter (mu held, heap non-empty).
func (g *freshGate) popLocked() {
	n := len(g.heap) - 1
	g.heap[0] = g.heap[n]
	g.heap[n] = freshWaiter{}
	g.heap = g.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && g.heap[l].floor < g.heap[min].floor {
			min = l
		}
		if r < n && g.heap[r].floor < g.heap[min].floor {
			min = r
		}
		if min == i {
			return
		}
		g.heap[i], g.heap[min] = g.heap[min], g.heap[i]
		i = min
	}
}

// sampleRate feeds one externalised batch into the delivery-rate EWMA.  The
// caller passes the batch's final applied sequence; samples closer together
// than 100µs are folded into the next one to keep the instantaneous rate
// numerically sane.
func (g *freshGate) sampleRate(seq uint64) {
	now := time.Now()
	g.rateMu.Lock()
	defer g.rateMu.Unlock()
	if g.lastSample.IsZero() || seq < g.lastSeq {
		g.lastSample, g.lastSeq = now, seq
		return
	}
	dt := now.Sub(g.lastSample)
	if dt < 100*time.Microsecond {
		return
	}
	inst := float64(seq-g.lastSeq) / dt.Seconds()
	if g.rateEWMA == 0 {
		g.rateEWMA = inst
	} else {
		g.rateEWMA = 0.2*inst + 0.8*g.rateEWMA
	}
	g.lastSample, g.lastSeq = now, seq
}

// rate returns the estimated delivery rate in sequences per second, decayed
// by the time since the last sample: a replica that stopped applying (stalled
// or partitioned) must not keep claiming its historical catch-up speed, so
// the estimate halves for every second of silence beyond the first.
func (g *freshGate) rate() float64 {
	g.rateMu.Lock()
	ewma := g.rateEWMA
	last := g.lastSample
	g.rateMu.Unlock()
	if ewma == 0 || last.IsZero() {
		return 0
	}
	if idle := time.Since(last); idle > time.Second {
		ewma /= idle.Seconds()
	}
	return ewma
}
