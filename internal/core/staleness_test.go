package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"groupsafe/internal/workload"
)

// TestBoundedStalenessLease pins the lease semantics of Request.MaxStaleness:
// a replica that IS the freshest state it knows about answers under any
// bound, while a replica that has learnt (via a peer advert) of state far
// ahead of its own rejects with ErrTooStale IMMEDIATELY — the lease never
// waits; redirecting is the client's job.
func TestBoundedStalenessLease(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Replicas:    3,
		Items:       64,
		Level:       GroupSafe,
		Technique:   TechCertification,
		ExecTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	res, err := c.Execute(ctx, 0, Request{Ops: []workload.Op{{Item: 1, Write: true, Value: 11}}})
	if err != nil || res.Outcome != OutcomeCommitted {
		t.Fatalf("%+v, %v", res, err)
	}
	r := c.Replica(1)
	for deadline := time.Now().Add(3 * time.Second); r.LastAppliedSeq() < res.Freshness; {
		if time.Now().After(deadline) {
			t.Fatalf("replica 1 never applied seq %d", res.Freshness)
		}
		time.Sleep(time.Millisecond)
	}

	q := Request{ReadOnly: true, MaxStaleness: time.Nanosecond, Ops: []workload.Op{{Item: 1}}}

	// Replica 1 knows of nothing fresher than itself: within bound, answers.
	out, err := c.Execute(ctx, 1, q)
	if err != nil {
		t.Fatalf("freshest-known replica rejected its own lease: %v", err)
	}
	if out.ReadValues[1] != 11 {
		t.Fatalf("leased read = %d, want 11", out.ReadValues[1])
	}

	// Teach replica 1 of a far-ahead peer (advertising as replica 2, a real
	// member — adverts from unknown peers are ignored): its own snapshot is
	// now provably outside any tight bound, and the lease must fail fast,
	// not park.
	r.notePeerApplied(c.Replica(2).ID(), r.LastAppliedSeq()+1_000_000)
	start := time.Now()
	if _, err := c.Execute(ctx, 1, q); !errors.Is(err, ErrTooStale) {
		t.Fatalf("stale replica served a leased read: %v", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("lease rejection took %v: it must reject, never wait", waited)
	}

	// Replica 2 never saw the ghost advert and still answers.
	if _, err := c.Execute(ctx, 2, q); err != nil {
		t.Fatalf("unaffected replica rejected: %v", err)
	}

	// Without MaxStaleness the poisoned replica still serves plain and
	// freshness-floored reads as before: the lease is opt-in per query.
	if _, err := c.Execute(ctx, 1, Request{ReadOnly: true, Ops: []workload.Op{{Item: 1}}}); err != nil {
		t.Fatalf("plain read on advert-rich replica: %v", err)
	}
}

// TestStalenessLeaseNeedsComparableSequence: on a technique without a
// totally-ordered cross-replica sequence (lazy primary-copy) the lease is
// meaningless and rejected like a freshness floor.
func TestStalenessLeaseNeedsComparableSequence(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Replicas:    3,
		Items:       64,
		Level:       Safety1Lazy,
		Technique:   TechLazyPrimary,
		ExecTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := Request{ReadOnly: true, MaxStaleness: time.Second, Ops: []workload.Op{{Item: 1}}}
	if _, err := c.Execute(context.Background(), 1, q); !errors.Is(err, ErrSafetyUnavailable) {
		t.Fatalf("lazy lease returned %v, want ErrSafetyUnavailable", err)
	}
}

// TestPeerAdvertsFlowOverOrderTraffic: committing updates is enough for every
// replica to learn the others' applied sequences — the adverts piggyback on
// the ORDER/ACK messages the updates already generate, costing zero extra
// messages.
func TestPeerAdvertsFlowOverOrderTraffic(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Replicas:    3,
		Items:       64,
		Level:       GroupSafe,
		Technique:   TechCertification,
		ExecTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	var last Result
	for i := 0; i < 5; i++ {
		res, err := c.Execute(ctx, 0, Request{Ops: []workload.Op{{Item: i, Write: true, Value: int64(i)}}})
		if err != nil || res.Outcome != OutcomeCommitted {
			t.Fatalf("%+v, %v", res, err)
		}
		last = res
	}
	// Every replica must shortly know SOME peer state at least as fresh as
	// the second-to-last commit (the final sequence's acks may still be in
	// flight, but earlier adverts have long since ridden the wire).
	want := last.Freshness - 1
	for i := 0; i < 3; i++ {
		r := c.Replica(i)
		ok := false
		for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline); {
			if r.maxKnownSeq() >= want {
				ok = true
				break
			}
			time.Sleep(time.Millisecond)
		}
		if !ok {
			t.Fatalf("replica %d max known seq %d, want >= %d: adverts not flowing", i, r.maxKnownSeq(), want)
		}
	}
}
