package core

import (
	"context"
	"fmt"
)

// TechniqueID selects the replication technique a replica runs.  The paper's
// companion line of work (Wiesmann & Schiper, "Comparison of database
// replication techniques based on total order broadcast") compares these
// head to head; the engine in this package runs any of them behind the same
// client API, safety levels and crash model.
type TechniqueID int

const (
	// TechCertification is the certification-based database state machine
	// (the paper's own protocol, Sects. 2, 4, 5): optimistic execution at
	// the delegate, atomic broadcast of read versions + write set,
	// deterministic first-updater-wins certification at every replica.
	// Conflicting concurrent transactions abort.
	TechCertification TechniqueID = iota
	// TechActive is active replication (state machine replication proper):
	// the delegate broadcasts the whole deterministic operation list and
	// every replica executes it in total order.  No certification and zero
	// aborts, at the price of executing every transaction's reads and
	// writes on every replica (higher CPU).
	TechActive
	// TechLazyPrimary is lazy primary-copy replication (1-safe): update
	// transactions execute only at the primary (the first member), which
	// commits and answers the client after forcing its own log, then ships
	// the write set asynchronously off the response path.  Read-only
	// transactions may run at any replica against possibly-stale state.
	// A primary crash can lose acknowledged transactions — the 1-safe
	// window the paper's group-safety closes.
	TechLazyPrimary
)

// String implements fmt.Stringer.
func (t TechniqueID) String() string {
	switch t {
	case TechCertification:
		return "certification"
	case TechActive:
		return "active"
	case TechLazyPrimary:
		return "lazy-primary"
	default:
		return fmt.Sprintf("technique(%d)", int(t))
	}
}

// AllTechniques lists every replication technique.
func AllTechniques() []TechniqueID {
	return []TechniqueID{TechCertification, TechActive, TechLazyPrimary}
}

// ParseTechnique resolves a technique name (as printed by String).
func ParseTechnique(s string) (TechniqueID, error) {
	for _, t := range AllTechniques() {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("core: unknown replication technique %q", s)
}

// Technique is the replication technique plugged into the replica engine.
// The engine owns everything technique-independent — lifecycle and crash
// model, the group communication stack, the ordered-delivery drain loops,
// durability forcing, and client notification plumbing — while the technique
// decides what is broadcast, how a delivered message commits, and where the
// client is notified.
//
// The interface is sealed (unexported methods): the three implementations in
// technique_cert.go, technique_active.go and technique_lazy.go are selected
// by TechniqueID, and every future technique (weak voting, sharded groups,
// ...) lands as another file beside them.
type Technique interface {
	// ID returns the technique's identifier.
	ID() TechniqueID

	// usesGroupComm reports whether the technique submits client
	// transactions through the atomic broadcast at the given safety level
	// (deciding whether the engine builds a broadcaster and apply loop).
	usesGroupComm(level SafetyLevel) bool

	// checkLevel validates (and may canonicalise) the configured safety
	// level for this technique; called once from ReplicaConfig defaulting.
	checkLevel(level SafetyLevel) (SafetyLevel, error)

	// execute runs one client transaction with r as the delegate and
	// returns when the notification condition of the transaction's
	// effective safety level holds, or when ctx is done.  crashCh is the
	// delegate's crash channel snapshot taken at submission.
	execute(ctx context.Context, r *Replica, req Request, crashCh chan struct{}) (Result, error)

	// applyBatch processes one drained batch of totally-ordered deliveries
	// on the apply goroutine: decode, commit/abort decision, WAL staging,
	// store install and the single batch force, then externalisation via
	// r.externalize.  Only called when usesGroupComm is true.
	applyBatch(r *Replica, st *applyState, stop chan struct{}, batch []applyItem)
}

// CanonicalLevel validates a safety level against a technique and returns
// the level the technique actually runs: certification accepts every level
// unchanged; active replication promotes the zero level to group-safe and
// rejects the lazy level; lazy primary-copy is pinned to 1-safe-lazy and
// rejects the group-communication levels.  ReplicaConfig defaulting applies
// this internally; external drivers (the simulator, cmd tools) call it so
// their rules can never drift from the real stack's.
func CanonicalLevel(tech TechniqueID, level SafetyLevel) (SafetyLevel, error) {
	t, err := techniqueFor(tech)
	if err != nil {
		return 0, err
	}
	return t.checkLevel(level)
}

// techniqueFor returns the implementation of the given technique.
// Implementations are stateless (all state lives in the Replica and the
// apply goroutine's applyState), so the shared instances are safe to reuse.
func techniqueFor(id TechniqueID) (Technique, error) {
	switch id {
	case TechCertification:
		return certTechnique{}, nil
	case TechActive:
		return activeTechnique{}, nil
	case TechLazyPrimary:
		return lazyPrimaryTechnique{}, nil
	default:
		return nil, fmt.Errorf("core: unknown replication technique %d", int(id))
	}
}
