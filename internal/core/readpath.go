package core

import (
	"errors"
	"fmt"
	"time"

	"context"
)

// This file is the replica's query fast path: read-only transactions execute
// entirely at one replica on a local MVCC snapshot — no 2PL locks, no atomic
// broadcast, no certification, no aborts (the paper's split between ordered
// update transactions and local queries; Fig. 2/8 broadcast only transactions
// with writes).  Every replica is therefore a query server, and query
// throughput scales with the number of replicas while update throughput stays
// bounded by the total order.
//
// Staleness is handled per technique: under certification and active
// replication every replica applies the same total order, so a read carries a
// freshness token (the last applied broadcast sequence) that clients feed
// back via Request.MinFreshness for monotonic session reads.  Under lazy
// primary-copy only the primary is authoritative; secondaries serve reads
// flagged Stale.

// ErrReadOnlyWrites is returned when a request declared ReadOnly contains a
// write operation or a Compute hook (which could emit one).
var ErrReadOnlyWrites = errors.New("core: read-only transaction contains write operations")

// executeReadOnly serves one query at this replica from an MVCC snapshot.
// The caller has already verified the request cannot write.
func (r *Replica) executeReadOnly(ctx context.Context, req Request, crashCh chan struct{}) (Result, error) {
	level, err := r.effectiveLevel(req)
	if err != nil {
		return Result{}, err
	}
	ctx, cancel := r.withDefaultTimeout(ctx)
	defer cancel()

	if req.MaxStaleness > 0 {
		if !r.cfg.Level.UsesGroupCommunication() {
			return Result{}, r.errNoFreshnessSequence()
		}
		// Bounded-staleness lease: answer only when the snapshot is provably
		// within the bound; never wait — the client redirects on ErrTooStale.
		if floor := r.stalenessFloor(req.MaxStaleness); r.fresh.appliedSeq() < floor {
			return Result{}, fmt.Errorf("%w: applied %d, need %d for %v (max known %d, rate %.0f seq/s)",
				ErrTooStale, r.fresh.appliedSeq(), floor, req.MaxStaleness, r.maxKnownSeq(), r.fresh.rate())
		}
	}
	if req.MinFreshness > 0 {
		if !r.cfg.Level.UsesGroupCommunication() {
			return Result{}, r.errNoFreshnessSequence()
		}
		if err := r.waitFreshness(ctx, req.MinFreshness, crashCh); err != nil {
			return Result{}, err
		}
	}

	// The token is sampled BEFORE the snapshot: lastAppliedSeq only advances
	// after a delivery's installs are visible, so the snapshot is guaranteed
	// to contain every transaction the token claims.
	token := r.LastAppliedSeq()
	rt, err := r.dbase.BeginRead()
	if err != nil {
		return Result{}, ErrCrashed
	}
	defer rt.Close()

	readVals := make(map[int]int64, len(req.Ops))
	for _, op := range req.Ops {
		v, err := rt.Read(op.Item)
		if err != nil {
			return Result{}, fmt.Errorf("core: read item %d: %w", op.Item, err)
		}
		readVals[op.Item] = v
	}

	r.mu.Lock()
	r.stats.Queries++
	r.stats.Committed++ // queries always commit
	r.mu.Unlock()
	return Result{
		TxnID:      req.ID,
		Outcome:    OutcomeCommitted,
		ReadValues: readVals,
		Delegate:   r.cfg.ID,
		Level:      level,
		Freshness:  token,
		Stale:      r.tech.ID() == TechLazyPrimary && !r.IsPrimary(),
	}, nil
}

// errNoFreshnessSequence is the shared rejection for freshness floors on
// paths without a totally-ordered, cross-replica-comparable sequence.
func (r *Replica) errNoFreshnessSequence() error {
	return fmt.Errorf("%w: freshness floors need a totally-ordered technique; %v at %v has no comparable sequence", ErrSafetyUnavailable, r.tech.ID(), r.cfg.Level)
}

// waitFreshness blocks until the replica has applied broadcast sequence min,
// or until ctx/crash ends the wait.  The wait parks on the freshness gate's
// ordered min-heap: the delivery that first satisfies the floor closes this
// waiter's channel and nobody else's (no thundering herd — see freshgate.go).
// A reset (crash recovery) also closes the channel; the loop then re-checks
// and either re-subscribes or exits through crashCh.
func (r *Replica) waitFreshness(ctx context.Context, min uint64, crashCh chan struct{}) error {
	for {
		ch, ok := r.fresh.subscribe(min)
		if ok {
			return nil
		}
		select {
		case <-ch:
		case <-crashCh:
			return ErrCrashed
		case <-ctx.Done():
			return ctxWaitError(ctx, 0, fmt.Sprintf("waiting for freshness %d (applied %d)", min, r.fresh.appliedSeq()))
		}
	}
}

// advanceAppliedSeq raises the applied watermark and wakes exactly the
// freshness waiters the new sequence satisfies.  Safe with or without r.mu
// held (the gate has its own leaf lock).
func (r *Replica) advanceAppliedSeq(seq uint64) { r.fresh.advance(seq) }

// stalenessFloor maps a wall-clock staleness bound to a sequence floor: the
// oldest applied sequence that is still provably within d of the freshest
// advertised state, assuming deliveries continue at the estimated rate.  With
// no rate estimate yet the floor degrades to "be as fresh as the freshest
// known replica" — conservative, never wrong.
func (r *Replica) stalenessFloor(d time.Duration) uint64 {
	maxKnown := r.maxKnownSeq()
	allowed := uint64(r.fresh.rate() * d.Seconds())
	if allowed >= maxKnown {
		return 0
	}
	return maxKnown - allowed
}
