package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"groupsafe/internal/storage"
	"groupsafe/internal/workload"
)

// Request is a client transaction submitted to a delegate replica.
type Request struct {
	// ID identifies the transaction; zero lets the delegate assign one.
	ID uint64
	// Ops is the ordered list of read and write operations.
	Ops []workload.Op
	// Compute, when non-nil, is invoked at the delegate after the read
	// operations of Ops have executed; it receives the values read and
	// returns additional operations (typically writes computed from the
	// reads, e.g. "balance - amount").  The returned operations become part
	// of the same transaction, so the certification step protects the
	// read-compute-write cycle against concurrent conflicting updates.
	Compute func(reads map[int]int64) []workload.Op
	// Safety, when non-nil, overrides the replica's configured safety level
	// for this transaction alone: the requested level rides in the broadcast
	// payload and every replica externalises the transaction at that level's
	// force/ack/delivery point, so mixed-safety workloads share one cluster.
	// Levels weaker than the technique's floor are canonicalised up (see
	// CanonicalLevel); levels needing machinery the cluster was not built
	// with (e.g. 2-safe on a classical-broadcast cluster) are rejected with
	// ErrSafetyUnavailable.  Nil means "use the cluster's configured level".
	Safety *SafetyLevel
	// ReadOnly declares the transaction a query: it executes on a local MVCC
	// snapshot of the delegate replica — no locks, no group communication, no
	// aborts.  A ReadOnly request whose Ops contain a write (or that carries a
	// Compute hook, which could emit one) is rejected with ErrReadOnlyWrites.
	// Requests without writes take the same snapshot fast path even when the
	// flag is unset; the flag exists to make the intent explicit and fail
	// loudly when a write sneaks into a query.
	ReadOnly bool
	// MinFreshness, meaningful for read-only execution on the totally-ordered
	// techniques, makes the serving replica wait until it has applied at
	// least this broadcast sequence before taking its snapshot.  Passing the
	// Freshness token of an earlier Result yields monotonic session reads
	// ("read your writes" across replicas).  Zero imposes no floor.
	MinFreshness uint64
	// MinFreshnessVec is the partitioned form of MinFreshness: entry p floors
	// partition p's applied sequence.  It is consumed by the partition router
	// (which forwards each entry to the owning partition) and ignored by a
	// single core replica; feeding back Result.FreshnessVec gives monotonic
	// session reads on a partitioned cluster.  A scalar MinFreshness on a
	// partitioned cluster floors every touched partition instead.  Nil or a
	// short vector imposes no floor on the missing entries.
	MinFreshnessVec []uint64
	// MaxStaleness, meaningful for read-only execution on the totally-ordered
	// techniques, is a bounded-staleness lease: the serving replica answers
	// immediately when it can prove its snapshot is at most this much
	// wall-clock time behind the freshest advertised state (sequence lag
	// divided by the estimated delivery rate), and rejects with ErrTooStale —
	// never waits — when it cannot, so the client redirects to a fresher
	// replica.  Zero imposes no bound.
	MaxStaleness time.Duration
}

// Outcome is the terminal state of a replicated transaction.
type Outcome int

const (
	// OutcomePending means the transaction has not reached a decision yet.
	OutcomePending Outcome = iota
	// OutcomeCommitted means the transaction committed.
	OutcomeCommitted
	// OutcomeAborted means certification aborted the transaction.
	OutcomeAborted
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomePending:
		return "pending"
	case OutcomeCommitted:
		return "committed"
	case OutcomeAborted:
		return "aborted"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Result is returned to the client when the safety level's notification
// condition is met.
type Result struct {
	TxnID      uint64
	Outcome    Outcome
	ReadValues map[int]int64
	Delegate   string
	// Level is the safety level the transaction was actually externalised at
	// (the cluster level, or the canonicalised per-request override).
	Level SafetyLevel
	// CommitLSN is the position of the transaction's commit record in the
	// delegate's local write-ahead log, or zero when nothing was logged there
	// (read-only or aborted transactions).  At response time the record is
	// durable only if Level forces on commit; Replica.WaitDurable(ctx, lsn)
	// forces the gap on demand — the paper's response-vs-durability window.
	CommitLSN uint64
	// Freshness is the transaction's position in the cluster's total order:
	// for a committed update, its own broadcast sequence; for a read-only
	// transaction, the last sequence the serving replica had applied when the
	// snapshot was taken.  Feeding the largest Freshness seen back into
	// Request.MinFreshness gives monotonic session reads across replicas.
	// Zero on techniques/levels without group communication.
	Freshness uint64
	// Stale marks a read-only result served from possibly-stale state with no
	// freshness token to reason about it: a secondary replica of the lazy
	// primary-copy technique (the paper's 1-safe query trade-off).
	Stale bool
	// CommitPartition is the partition whose replica write-ahead log holds
	// CommitLSN on a partitioned cluster — the owning partition for a
	// single-partition transaction, the coordinator partition for a
	// cross-partition one.  Always zero on unpartitioned clusters (the only
	// partition).  Set by the partition router; a core replica leaves it zero.
	CommitPartition int
	// FreshnessVec is the per-partition freshness vector of a partitioned
	// cluster: entry p is the transaction's position in partition p's total
	// order (zero for partitions it did not touch).  Populated by the
	// partition router when the cluster runs more than one partition; nil
	// otherwise.  Freshness is then the vector's maximum, so scalar session
	// code keeps working unchanged.
	FreshnessVec []uint64
}

// Committed reports whether the transaction committed.
func (r Result) Committed() bool { return r.Outcome == OutcomeCommitted }

// readVer is one (item, observed version) pair of a certification read set.
type readVer struct {
	Item int
	Ver  uint64
}

// txnRecord is the decoded form of the message broadcast to the group for
// one update transaction: the versions observed by the delegate's reads (for
// certification), the write set to install, and the safety level the
// transaction must be externalised at (per-transaction overrides ride in the
// payload so every replica forces and acknowledges consistently).  Reads and
// Writes are sorted by item; the slices are reused across deliveries by the
// apply loop's decode arena, so they must not be retained past the batch
// that decoded them.
type txnRecord struct {
	TxnID    uint64
	Delegate string
	Level    SafetyLevel
	Reads    []readVer
	Writes   []storage.Write
	// Phase distinguishes a cross-partition two-phase-commit message from a
	// normal one-shot transaction (phaseNone).  Prepares carry the full read
	// and write sets for certification and staging; decides carry the write
	// set so a replica without a local prepare still installs the commit.
	Phase byte
	// Coord is the coordinator partition id (prepare messages only).
	Coord int
}

// Two-phase-commit message phases (txnRecord.Phase).
const (
	phaseNone byte = iota
	phasePrepare
	phaseDecideCommit
	phaseDecideAbort
)

// lazyPayload is the write set propagated asynchronously by the lazy (1-safe)
// technique.
type lazyPayload struct {
	TxnID    uint64
	Delegate string
	Writes   map[int]int64
}

// ackPayload is the per-replica acknowledgement used by the very-safe level.
type ackPayload struct {
	TxnID   uint64
	Replica string
}

func encodePayload(v interface{}) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("core: encode payload: %v", err))
	}
	return buf.Bytes()
}

func decodePayload(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// writeSetOf converts a payload write map into a storage.WriteSet.
func writeSetOf(writes map[int]int64) storage.WriteSet {
	ws := make(storage.WriteSet, len(writes))
	for k, v := range writes {
		ws[k] = v
	}
	return ws
}

// --- binary transaction payload codec (replicated hot path) ---
//
// The lazy and very-safe control payloads above stay gob-encoded (they are
// off the hot path), but the transaction payload travels once per update
// transaction through the atomic broadcast, so it uses a compact varint
// encoding with pooled scratch buffers: exactly one allocation per encode
// (the wire slice itself) instead of gob's encoder, type descriptors and map
// churn.

// txnMagic versions the binary transaction payload format.
const txnMagic = 0xA7

// payloadScratch is the pooled encode scratch: a sort buffer for the map keys
// and an append buffer for the varint stream.
type payloadScratch struct {
	items []int
	buf   []byte
}

var payloadPool = sync.Pool{New: func() interface{} { return new(payloadScratch) }}

// encodeTxnPayload encodes one update transaction for broadcast.  Reads and
// writes are emitted sorted by item, so the apply side decodes directly into
// the sorted-slice form the scheduler and the WAL staging path need.
func encodeTxnPayload(txnID uint64, delegate string, level SafetyLevel, readVers map[int]uint64, writes map[int]int64) []byte {
	s := payloadPool.Get().(*payloadScratch)
	buf := append(s.buf[:0], txnMagic)
	buf = binary.AppendUvarint(buf, txnID)
	buf = binary.AppendUvarint(buf, uint64(len(delegate)))
	buf = append(buf, delegate...)
	buf = binary.AppendUvarint(buf, uint64(level))

	items := s.items[:0]
	for it := range readVers {
		items = append(items, it)
	}
	sort.Ints(items)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = binary.AppendUvarint(buf, uint64(it))
		buf = binary.AppendUvarint(buf, readVers[it])
	}

	items = items[:0]
	for it := range writes {
		items = append(items, it)
	}
	sort.Ints(items)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = binary.AppendUvarint(buf, uint64(it))
		buf = binary.AppendVarint(buf, writes[it])
	}

	out := make([]byte, len(buf))
	copy(out, buf)
	s.buf = buf
	s.items = items
	payloadPool.Put(s)
	return out
}

// twoPCMagic versions the binary cross-partition (two-phase-commit) payload:
// the txnMagic layout with a phase byte and a coordinator partition id after
// the level.  A separate magic keeps the single-partition fast path's payload
// byte-identical to before partitioning existed.
const twoPCMagic = 0xA9

// encode2PCPayload encodes one cross-partition sub-transaction message
// (prepare or decide) for broadcast through a partition's total order.
func encode2PCPayload(phase byte, gid uint64, delegate string, level SafetyLevel, coord int, readVers map[int]uint64, writes map[int]int64) []byte {
	s := payloadPool.Get().(*payloadScratch)
	buf := append(s.buf[:0], twoPCMagic, phase)
	buf = binary.AppendUvarint(buf, gid)
	buf = binary.AppendUvarint(buf, uint64(len(delegate)))
	buf = append(buf, delegate...)
	buf = binary.AppendUvarint(buf, uint64(level))
	buf = binary.AppendUvarint(buf, uint64(coord))

	items := s.items[:0]
	for it := range readVers {
		items = append(items, it)
	}
	sort.Ints(items)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = binary.AppendUvarint(buf, uint64(it))
		buf = binary.AppendUvarint(buf, readVers[it])
	}

	items = items[:0]
	for it := range writes {
		items = append(items, it)
	}
	sort.Ints(items)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = binary.AppendUvarint(buf, uint64(it))
		buf = binary.AppendVarint(buf, writes[it])
	}

	out := make([]byte, len(buf))
	copy(out, buf)
	s.buf = buf
	s.items = items
	payloadPool.Put(s)
	return out
}

// --- binary operation-list payload codec (active replication hot path) ---

// opsMagic versions the binary operation-list payload of active replication.
const opsMagic = 0xA8

// opsRecord is the decoded form of the message broadcast by active
// replication: the full deterministic operation list, executed by every
// replica in delivery order.  Ops is reused across deliveries by the apply
// loop's decode arena, so it must not be retained past the delivery that
// decoded it.
type opsRecord struct {
	TxnID    uint64
	Delegate string
	Level    SafetyLevel
	Ops      []workload.Op
}

// encodeOpsPayload encodes one update transaction's operation list for
// active replication, using the same pooled-scratch varint style as
// encodeTxnPayload: one allocation per encode.
func encodeOpsPayload(txnID uint64, delegate string, level SafetyLevel, ops []workload.Op) []byte {
	s := payloadPool.Get().(*payloadScratch)
	buf := append(s.buf[:0], opsMagic)
	buf = binary.AppendUvarint(buf, txnID)
	buf = binary.AppendUvarint(buf, uint64(len(delegate)))
	buf = append(buf, delegate...)
	buf = binary.AppendUvarint(buf, uint64(level))
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, op := range ops {
		flag := byte(0)
		if op.Write {
			flag = 1
		}
		buf = append(buf, flag)
		buf = binary.AppendUvarint(buf, uint64(op.Item))
		if op.Write {
			buf = binary.AppendVarint(buf, op.Value)
		}
	}
	out := make([]byte, len(buf))
	copy(out, buf)
	s.buf = buf
	payloadPool.Put(s)
	return out
}

// decodeOpsRecord decodes a binary operation-list payload into rec, reusing
// rec's Ops slice (the apply loop's decode arena).
func decodeOpsRecord(data []byte, rec *opsRecord) error {
	if len(data) == 0 || data[0] != opsMagic {
		return errBadTxnPayload
	}
	pos := 1
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	id, ok := next()
	if !ok {
		return errBadTxnPayload
	}
	rec.TxnID = id
	dlen, ok := next()
	if !ok || dlen > uint64(len(data)-pos) {
		return errBadTxnPayload
	}
	rec.Delegate = string(data[pos : pos+int(dlen)])
	pos += int(dlen)
	lvl, ok := next()
	if !ok {
		return errBadTxnPayload
	}
	rec.Level = SafetyLevel(lvl)

	nOps, ok := next()
	if !ok || nOps > uint64(len(data)-pos) {
		return errBadTxnPayload
	}
	rec.Ops = rec.Ops[:0]
	for i := uint64(0); i < nOps; i++ {
		if pos >= len(data) {
			return errBadTxnPayload
		}
		write := data[pos] == 1
		pos++
		item, ok := next()
		if !ok {
			return errBadTxnPayload
		}
		op := workload.Op{Item: int(item), Write: write}
		if write {
			v, n := binary.Varint(data[pos:])
			if n <= 0 {
				return errBadTxnPayload
			}
			pos += n
			op.Value = v
		}
		rec.Ops = append(rec.Ops, op)
	}
	return nil
}

var errBadTxnPayload = errors.New("core: malformed transaction payload")

// decodeTxnRecord decodes a binary transaction payload (txnMagic or
// twoPCMagic) into rec, reusing rec's slices (the apply loop's decode arena).
func decodeTxnRecord(data []byte, rec *txnRecord) error {
	if len(data) == 0 || (data[0] != txnMagic && data[0] != twoPCMagic) {
		return errBadTxnPayload
	}
	twoPC := data[0] == twoPCMagic
	pos := 1
	rec.Phase = phaseNone
	rec.Coord = 0
	if twoPC {
		if len(data) < 2 || data[1] == phaseNone || data[1] > phaseDecideAbort {
			return errBadTxnPayload
		}
		rec.Phase = data[1]
		pos = 2
	}
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	id, ok := next()
	if !ok {
		return errBadTxnPayload
	}
	rec.TxnID = id
	dlen, ok := next()
	if !ok || dlen > uint64(len(data)-pos) {
		return errBadTxnPayload
	}
	rec.Delegate = string(data[pos : pos+int(dlen)])
	pos += int(dlen)
	lvl, ok := next()
	if !ok {
		return errBadTxnPayload
	}
	rec.Level = SafetyLevel(lvl)
	if twoPC {
		coord, ok := next()
		if !ok {
			return errBadTxnPayload
		}
		rec.Coord = int(coord)
	}

	nReads, ok := next()
	if !ok || nReads > uint64(len(data)-pos) {
		return errBadTxnPayload
	}
	rec.Reads = rec.Reads[:0]
	for i := uint64(0); i < nReads; i++ {
		item, ok1 := next()
		ver, ok2 := next()
		if !ok1 || !ok2 {
			return errBadTxnPayload
		}
		rec.Reads = append(rec.Reads, readVer{Item: int(item), Ver: ver})
	}

	nWrites, ok := next()
	if !ok || nWrites > uint64(len(data)-pos) {
		return errBadTxnPayload
	}
	rec.Writes = rec.Writes[:0]
	for i := uint64(0); i < nWrites; i++ {
		item, ok1 := next()
		val, n := binary.Varint(data[pos:])
		if n <= 0 {
			ok1 = false
		} else {
			pos += n
		}
		if !ok1 {
			return errBadTxnPayload
		}
		rec.Writes = append(rec.Writes, storage.Write{Item: int(item), Value: val})
	}
	return nil
}
