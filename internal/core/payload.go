package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"groupsafe/internal/storage"
	"groupsafe/internal/workload"
)

// Request is a client transaction submitted to a delegate replica.
type Request struct {
	// ID identifies the transaction; zero lets the delegate assign one.
	ID uint64
	// Ops is the ordered list of read and write operations.
	Ops []workload.Op
	// Compute, when non-nil, is invoked at the delegate after the read
	// operations of Ops have executed; it receives the values read and
	// returns additional operations (typically writes computed from the
	// reads, e.g. "balance - amount").  The returned operations become part
	// of the same transaction, so the certification step protects the
	// read-compute-write cycle against concurrent conflicting updates.
	Compute func(reads map[int]int64) []workload.Op
}

// Outcome is the terminal state of a replicated transaction.
type Outcome int

const (
	// OutcomePending means the transaction has not reached a decision yet.
	OutcomePending Outcome = iota
	// OutcomeCommitted means the transaction committed.
	OutcomeCommitted
	// OutcomeAborted means certification aborted the transaction.
	OutcomeAborted
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomePending:
		return "pending"
	case OutcomeCommitted:
		return "committed"
	case OutcomeAborted:
		return "aborted"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Result is returned to the client when the safety level's notification
// condition is met.
type Result struct {
	TxnID      uint64
	Outcome    Outcome
	ReadValues map[int]int64
	Delegate   string
	Level      SafetyLevel
}

// Committed reports whether the transaction committed.
func (r Result) Committed() bool { return r.Outcome == OutcomeCommitted }

// txnPayload is the message broadcast to the group for one update
// transaction: the versions observed by the delegate's reads (for
// certification) and the write set to install.
type txnPayload struct {
	TxnID    uint64
	Delegate string
	ReadVers map[int]uint64
	Writes   map[int]int64
}

// lazyPayload is the write set propagated asynchronously by the lazy (1-safe)
// technique.
type lazyPayload struct {
	TxnID    uint64
	Delegate string
	Writes   map[int]int64
}

// ackPayload is the per-replica acknowledgement used by the very-safe level.
type ackPayload struct {
	TxnID   uint64
	Replica string
}

func encodePayload(v interface{}) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("core: encode payload: %v", err))
	}
	return buf.Bytes()
}

func decodePayload(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// writeSetOf converts a payload write map into a storage.WriteSet.
func writeSetOf(writes map[int]int64) storage.WriteSet {
	ws := make(storage.WriteSet, len(writes))
	for k, v := range writes {
		ws[k] = v
	}
	return ws
}
