package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"groupsafe/internal/workload"
)

func lazyCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{Replicas: 3, Items: 64, Technique: TechLazyPrimary, ExecTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestLazyFreshnessFloorRejected: the lazy paths have no totally-ordered,
// cross-replica-comparable sequence, so a freshness floor cannot be honoured
// — it must be rejected loudly with ErrSafetyUnavailable, on the primary and
// on secondaries alike, rather than silently served stale.  The same applies
// to the certification technique's lazy levels.
func TestLazyFreshnessFloorRejected(t *testing.T) {
	ctx := context.Background()
	c := lazyCluster(t)
	for i := 0; i < c.Size(); i++ {
		_, err := c.Execute(ctx, i, Request{
			Ops:          []workload.Op{{Item: 1}},
			ReadOnly:     true,
			MinFreshness: 1,
		})
		if !errors.Is(err, ErrSafetyUnavailable) {
			t.Errorf("replica %d: floored query on lazy primary-copy: err=%v, want ErrSafetyUnavailable", i, err)
		}
	}

	cl, err := NewCluster(ClusterConfig{Replicas: 3, Items: 64, Technique: TechCertification, Level: Safety1Lazy, ExecTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Execute(ctx, 1, Request{Ops: []workload.Op{{Item: 1}}, ReadOnly: true, MinFreshness: 1}); !errors.Is(err, ErrSafetyUnavailable) {
		t.Errorf("certification at 1-safe-lazy: floored query err=%v, want ErrSafetyUnavailable", err)
	}
	// An update with a floor takes the local execution path and must be
	// rejected the same way.
	if _, err := cl.Execute(ctx, 1, Request{Ops: []workload.Op{{Item: 1, Write: true, Value: 7}}, MinFreshness: 1}); !errors.Is(err, ErrSafetyUnavailable) {
		t.Errorf("certification at 1-safe-lazy: floored update err=%v, want ErrSafetyUnavailable", err)
	}
}

// TestLazyStaleFlagAcrossPrimaryCrash walks the Stale flag through the
// primary's crash and recovery: secondaries always mark their reads Stale
// (there is no token to reason about), the primary never does, updates are
// refused while the primary is down, and the flags keep their meaning after
// recovery.
func TestLazyStaleFlagAcrossPrimaryCrash(t *testing.T) {
	ctx := context.Background()
	c := lazyCluster(t)

	res, err := c.Execute(ctx, 1, Request{Ops: []workload.Op{{Item: 3, Write: true, Value: 42}}})
	if err != nil || !res.Committed() {
		t.Fatalf("update via secondary: res=%+v err=%v", res, err)
	}
	if res.Delegate != "s1" {
		t.Fatalf("update served by %s, want routing to the primary s1", res.Delegate)
	}
	if res.Stale {
		t.Fatal("update result marked Stale")
	}

	// Let the asynchronous propagation reach the secondaries.
	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	err = c.WaitConsistent(wctx)
	cancel()
	if err != nil {
		t.Fatalf("propagation did not drain: %v", err)
	}

	query := Request{Ops: []workload.Op{{Item: 3}}, ReadOnly: true}
	res, err = c.Execute(ctx, 0, query)
	if err != nil || res.Stale {
		t.Fatalf("primary read: stale=%t err=%v, want fresh", res.Stale, err)
	}
	res, err = c.Execute(ctx, 2, query)
	if err != nil || !res.Stale {
		t.Fatalf("secondary read: stale=%t err=%v, want Stale", res.Stale, err)
	}
	if res.ReadValues[3] != 42 {
		t.Fatalf("secondary read value %d, want 42", res.ReadValues[3])
	}

	// Primary down: queries keep working on secondaries (flagged Stale, the
	// 1-safe trade-off), updates have nowhere authoritative to go.
	c.Crash(0)
	res, err = c.Execute(ctx, 2, query)
	if err != nil || !res.Stale || res.ReadValues[3] != 42 {
		t.Fatalf("secondary read with primary down: res=%+v err=%v", res, err)
	}
	if _, err := c.Execute(ctx, 2, Request{Ops: []workload.Op{{Item: 4, Write: true, Value: 1}}}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("update with primary down: err=%v, want ErrCrashed", err)
	}

	// Recovery restores the split: the primary serves fresh reads and
	// updates again, secondaries stay Stale.
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	res, err = c.Execute(ctx, 0, query)
	if err != nil || res.Stale || res.ReadValues[3] != 42 {
		t.Fatalf("primary read after recovery: res=%+v err=%v", res, err)
	}
	res, err = c.Execute(ctx, 1, Request{Ops: []workload.Op{{Item: 5, Write: true, Value: 9}}})
	if err != nil || !res.Committed() || res.Delegate != "s1" {
		t.Fatalf("update after recovery: res=%+v err=%v", res, err)
	}
	wctx, cancel = context.WithTimeout(ctx, 5*time.Second)
	err = c.WaitConsistent(wctx)
	cancel()
	if err != nil {
		t.Fatalf("propagation after recovery did not drain: %v", err)
	}
	res, err = c.Execute(ctx, 1, Request{Ops: []workload.Op{{Item: 5}}, ReadOnly: true})
	if err != nil || !res.Stale || res.ReadValues[5] != 9 {
		t.Fatalf("secondary read after recovery: res=%+v err=%v", res, err)
	}
}
