package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"groupsafe/internal/wal"
)

// waiterCounts returns the sizes of the replica's pending-outcome and
// very-safe bookkeeping maps (white-box: the deregistration satellite).
func waiterCounts(r *Replica) (pending, veryAcks, veryDone int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending), len(r.veryAcks), len(r.veryDone)
}

func assertNoWaiters(t *testing.T, r *Replica) {
	t.Helper()
	if p, a, d := waiterCounts(r); p != 0 || a != 0 || d != 0 {
		t.Fatalf("leaked waiter state: pending=%d veryAcks=%d veryDone=%d", p, a, d)
	}
}

// TestExecuteCancelledBeforeBroadcast: a context cancelled before submission
// returns promptly with a context.Canceled-wrapped error, registers no
// waiter, and leaves the cluster fully operational.
func TestExecuteCancelledBeforeBroadcast(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Execute(ctx, 0, writeReq(0, 1, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled execute: %v", err)
	}
	assertNoWaiters(t, c.Replica(0))

	res, err := c.Execute(context.Background(), 0, writeReq(0, 1, 2))
	if err != nil || !res.Committed() {
		t.Fatalf("cluster did not make progress after a cancelled submission: %+v, %v", res, err)
	}
}

// TestExecuteCancelledAfterBroadcast cancels the context in the
// delivered-but-unprocessed window (the deliver hook): the Execute call must
// return promptly with the cancellation, deregister its waiter, and the
// transaction itself still commits group-wide — only the notification was
// abandoned.
func TestExecuteCancelledAfterBroadcast(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	ctx, cancel := context.WithCancel(context.Background())
	delegate := c.Replica(0)
	delegate.SetDeliverHook(func(uint64) {
		cancel()
		time.Sleep(50 * time.Millisecond) // let the waiter observe ctx first
	})
	start := time.Now()
	_, err := c.Execute(ctx, 0, writeReq(0, 2, 22))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled execute: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled execute was not prompt: %v", elapsed)
	}
	assertNoWaiters(t, delegate)
	delegate.SetDeliverHook(nil)

	// The broadcast had already left: the write must still be applied
	// everywhere (poll — the abandoned notification tells us nothing about
	// when the installs land), and the cluster keeps serving.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if v, _ := c.Value(1, 2); v == 22 {
			break
		}
		if time.Now().After(deadline) {
			v, _ := c.Value(1, 2)
			t.Fatalf("abandoned transaction was lost: item2=%d", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !waitConsistent(c, 3*time.Second) {
		t.Fatal("replicas did not converge after the abandoned notification")
	}
	res, err := c.Execute(context.Background(), 0, writeReq(0, 3, 33))
	if err != nil || !res.Committed() {
		t.Fatalf("cluster did not make progress: %+v, %v", res, err)
	}
}

// TestExecuteCancelledDuringLocalLockWait: the purely local execution paths
// (0-safe, 1-safe lazy, lazy primary-copy) honour the context too — an
// Execute blocked in a 2PL lock wait behind a conflicting transaction is
// externally aborted and returns promptly with the deadline error, and the
// cluster keeps working once the blocker finishes.
func TestExecuteCancelledDuringLocalLockWait(t *testing.T) {
	c := newTestCluster(t, Safety1Lazy, 3)
	r := c.Replica(0)

	blocker, err := r.DB().Begin(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := blocker.Write(7, 1); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Execute(ctx, 0, writeReq(0, 7, 2))
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked local execute: %v", err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("cancelled local execute took %v", e)
	}

	if err := blocker.Abort(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(context.Background(), 0, writeReq(0, 7, 3))
	if err != nil || !res.Committed() {
		t.Fatalf("cluster did not make progress after the cancelled local txn: %+v, %v", res, err)
	}
	if v, _ := c.Value(0, 7); v != 3 {
		t.Fatalf("item 7 = %d, want 3", v)
	}
}

// TestExecuteCancelledDuringVerySafeAckWait cancels while the delegate waits
// for the unreachable server's acknowledgement: prompt return, waiter and
// very-safe bookkeeping deregistered, no goroutine leak.
func TestExecuteCancelledDuringVerySafeAckWait(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Replicas:    3,
		Items:       64,
		Level:       VerySafe,
		ExecTimeout: 30 * time.Second, // the context, not the default, must end the wait
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Warm up, then take a server down so the ack set can never complete.
	if res, err := c.Execute(context.Background(), 0, writeReq(0, 1, 1)); err != nil || !res.Committed() {
		t.Fatalf("warm-up: %+v, %v", res, err)
	}
	before := runtime.NumGoroutine()
	c.Crash(2)
	c.Replica(0).Suspect("s3")
	c.Replica(1).Suspect("s3")

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Execute(ctx, 0, writeReq(0, 2, 2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled very-safe execute: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation during the ack wait was not prompt: %v", elapsed)
	}
	assertNoWaiters(t, c.Replica(0))

	// No goroutine may be stuck waiting on behalf of the cancelled call.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestExecuteDeadlineWrapsErrTimeout: a context deadline expiry matches BOTH
// the engine's ErrTimeout and context.DeadlineExceeded.
func TestExecuteDeadlineWrapsErrTimeout(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Replicas: 3, Items: 64, Level: VerySafe, ExecTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Crash(2)
	c.Replica(0).Suspect("s3")
	c.Replica(1).Suspect("s3")

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, err = c.Execute(ctx, 0, writeReq(0, 1, 1))
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline expiry should match ErrTimeout and DeadlineExceeded: %v", err)
	}
	assertNoWaiters(t, c.Replica(0))
}

// TestPerTxnForceCounts asserts, by log-force count rather than timing, that
// a group-safe transaction pays no force on the response path while a
// group-1-safe override on the same cluster forces the delegate's log before
// the response.
func TestPerTxnForceCounts(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	syncs := func(i int) uint64 { return c.Replica(i).DB().Log().(*wal.MemLog).Syncs() }

	res, err := c.Execute(context.Background(), 0, writeReq(0, 1, 1))
	if err != nil || !res.Committed() {
		t.Fatalf("group-safe txn: %+v, %v", res, err)
	}
	if got := syncs(0); got != 0 {
		t.Fatalf("group-safe txn forced the delegate log %d times; durability must stay off the response path", got)
	}
	if res.Level != GroupSafe {
		t.Fatalf("level = %v", res.Level)
	}

	lvl := Group1Safe
	req := writeReq(0, 2, 2)
	req.Safety = &lvl
	res, err = c.Execute(context.Background(), 0, req)
	if err != nil || !res.Committed() {
		t.Fatalf("group-1-safe override: %+v, %v", res, err)
	}
	if res.Level != Group1Safe {
		t.Fatalf("level = %v, want group-1-safe", res.Level)
	}
	if got := syncs(0); got == 0 {
		t.Fatal("group-1-safe override did not force the delegate log before the response")
	}
}

// TestPerTxnVerySafeOverrideAckCounts is the acceptance check: a
// WithSafety(VerySafe)-style transaction on a plain group-safe cluster
// provably waits for the remote acknowledgements (replicas-1 ack messages on
// the wire, counted — not timed), while surrounding group-safe transactions
// generate none; and with a server down the override cannot terminate while
// plain transactions still commit.
func TestPerTxnVerySafeOverrideAckCounts(t *testing.T) {
	c := newTestCluster(t, GroupSafe, 3)
	acksSent := func() uint64 { return c.TotalStats().AcksSent }

	if _, err := c.Execute(context.Background(), 0, writeReq(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := acksSent(); got != 0 {
		t.Fatalf("plain group-safe txn produced %d very-safe acks", got)
	}

	lvl := VerySafe
	req := writeReq(0, 2, 2)
	req.Safety = &lvl
	res, err := c.Execute(context.Background(), 0, req)
	if err != nil || !res.Committed() {
		t.Fatalf("very-safe override: %+v, %v", res, err)
	}
	if res.Level != VerySafe {
		t.Fatalf("level = %v, want very-safe", res.Level)
	}
	// The response cannot have been produced before both remote replicas
	// acknowledged: the delegate's veryDone gate needs all member acks, so
	// by return time exactly replicas-1 ack messages were sent.
	if got := acksSent(); got != uint64(c.Size()-1) {
		t.Fatalf("acks on the wire = %d, want %d", got, c.Size()-1)
	}

	// Mixed workload: a following group-safe transaction adds no acks.
	if _, err := c.Execute(context.Background(), 1, writeReq(0, 3, 3)); err != nil {
		t.Fatal(err)
	}
	if got := acksSent(); got != uint64(c.Size()-1) {
		t.Fatalf("group-safe txn after the override produced acks: %d", got)
	}

	// One server down: the very-safe override cannot terminate...
	c.Crash(2)
	c.Replica(0).Suspect("s3")
	c.Replica(1).Suspect("s3")
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	req = writeReq(0, 4, 4)
	req.Safety = &lvl
	if _, err := c.Execute(ctx, 0, req); !errors.Is(err, ErrTimeout) {
		t.Fatalf("very-safe override with a crashed server: %v", err)
	}
	// ...while the cluster's own level keeps committing.
	res, err = c.Execute(context.Background(), 0, writeReq(0, 5, 5))
	if err != nil || !res.Committed() {
		t.Fatalf("group-safe txn with a crashed server: %+v, %v", res, err)
	}
}

// TestPerTxnSafetyResolution covers the override lattice: unavailable
// machinery is rejected with ErrSafetyUnavailable, weaker-than-floor
// requests are canonicalised up, stronger clusters honour downgrades.
func TestPerTxnSafetyResolution(t *testing.T) {
	bg := context.Background()

	// 2-safe needs the end-to-end message log the group-safe cluster lacks.
	c := newTestCluster(t, GroupSafe, 3)
	lvl := Safety2
	req := writeReq(0, 1, 1)
	req.Safety = &lvl
	if _, err := c.Execute(bg, 0, req); !errors.Is(err, ErrSafetyUnavailable) {
		t.Fatalf("2-safe override on a classical cluster: %v", err)
	}

	// Weaker-than-floor requests ride the broadcast anyway: canonicalised up.
	weak := Safety0
	req = writeReq(0, 2, 2)
	req.Safety = &weak
	res, err := c.Execute(bg, 0, req)
	if err != nil || res.Level != GroupSafe {
		t.Fatalf("0-safe override on a group cluster: %+v, %v (want canonicalised to group-safe)", res, err)
	}

	// A 2-safe cluster honours both a downgrade and a very-safe upgrade.
	c2 := newTestCluster(t, Safety2, 3)
	down := GroupSafe
	req = writeReq(0, 3, 3)
	req.Safety = &down
	if res, err := c2.Execute(bg, 0, req); err != nil || res.Level != GroupSafe || !res.Committed() {
		t.Fatalf("group-safe downgrade on a 2-safe cluster: %+v, %v", res, err)
	}
	up := VerySafe
	req = writeReq(0, 4, 4)
	req.Safety = &up
	if res, err := c2.Execute(bg, 0, req); err != nil || res.Level != VerySafe || !res.Committed() {
		t.Fatalf("very-safe upgrade on a 2-safe cluster: %+v, %v", res, err)
	}

	// Lazy primary-copy has a single response point: group levels error out.
	lp, err := NewCluster(ClusterConfig{Replicas: 3, Items: 64, Technique: TechLazyPrimary, ExecTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer lp.Close()
	grp := GroupSafe
	req = writeReq(0, 5, 5)
	req.Safety = &grp
	if _, err := lp.Execute(bg, 0, req); !errors.Is(err, ErrSafetyUnavailable) {
		t.Fatalf("group-safe override on a lazy cluster: %v", err)
	}
	// The cluster's own level is accepted as an explicit override.
	own := Safety1Lazy
	req = writeReq(0, 6, 6)
	req.Safety = &own
	if res, err := lp.Execute(bg, 0, req); err != nil || !res.Committed() || res.Level != Safety1Lazy {
		t.Fatalf("own-level override on a lazy cluster: %+v, %v", res, err)
	}
}

// TestCommitLSNDurabilityGap checks Result.CommitLSN and WaitDurable: under
// group-safe the commit record is NOT durable at response time and a
// WaitDurable forces it; under group-1-safe it already is.
func TestCommitLSNDurabilityGap(t *testing.T) {
	bg := context.Background()
	c := newTestCluster(t, GroupSafe, 3)
	res, err := c.Execute(bg, 0, writeReq(0, 1, 1))
	if err != nil || !res.Committed() {
		t.Fatalf("%+v, %v", res, err)
	}
	if res.CommitLSN == 0 {
		t.Fatal("committed update transaction reported no CommitLSN")
	}
	log := c.Replica(0).DB().Log().(*wal.MemLog)
	if durable := log.DurableLen(); durable >= int(res.CommitLSN) {
		t.Fatalf("group-safe commit already durable at response time (durable=%d, lsn=%d)", durable, res.CommitLSN)
	}
	if err := c.Replica(0).WaitDurable(bg, res.CommitLSN); err != nil {
		t.Fatal(err)
	}
	if durable := log.DurableLen(); durable < int(res.CommitLSN) {
		t.Fatalf("WaitDurable did not force the log (durable=%d, lsn=%d)", durable, res.CommitLSN)
	}

	c2 := newTestCluster(t, Group1Safe, 3)
	res, err = c2.Execute(bg, 0, writeReq(0, 1, 1))
	if err != nil || !res.Committed() || res.CommitLSN == 0 {
		t.Fatalf("%+v, %v", res, err)
	}
	log2 := c2.Replica(0).DB().Log().(*wal.MemLog)
	if durable := log2.DurableLen(); durable < int(res.CommitLSN) {
		t.Fatalf("group-1-safe commit not durable at response time (durable=%d, lsn=%d)", durable, res.CommitLSN)
	}

	// Read-only transactions log nothing.
	res, err = c2.Execute(bg, 0, readReq(1))
	if err != nil || res.CommitLSN != 0 {
		t.Fatalf("read-only CommitLSN = %d, %v", res.CommitLSN, err)
	}
}

// TestWaitConsistentReportsDivergence drives two conflicting lazy commits
// and asserts the redesigned WaitConsistent names the diverging item instead
// of returning a bare false.
func TestWaitConsistentReportsDivergence(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Replicas:    2,
		Items:       64,
		Level:       Safety1Lazy,
		ExecTimeout: 5 * time.Second,
		// Delay the propagations so the two conflicting write sets provably
		// cross on the wire: each replica commits its own value first, then
		// applies the other's — opposite orders, permanent divergence.
		LazyPropagationDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.Execute(context.Background(), 0, writeReq(0, 7, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(context.Background(), 1, writeReq(0, 7, 200)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // let both lazy write sets cross

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	err = c.WaitConsistent(ctx)
	if err == nil {
		t.Skip("lazy propagation happened to converge; divergence not observable this run")
	}
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("WaitConsistent error is not a DivergenceError: %v", err)
	}
	if div.Item != 7 {
		t.Fatalf("diverging item = %d, want 7 (%v)", div.Item, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("divergence error must wrap the context error: %v", err)
	}
}
