// Package core implements the replicated database layer of the paper as a
// technique-independent engine plus a pluggable replication Technique
// (Sects. 2, 4 and 5; the companion comparison papers for the alternative
// techniques).
//
// The engine owns the client session (Execute), the group communication
// stack and its lifecycle (crash, state transfer, recovery), the ordered
// delivery drain loops, durability forcing and client notification.  The
// Technique decides what is broadcast, how a delivered message commits, and
// where the client is notified.  Three techniques ship:
//
//   - certification (TechCertification): the paper's own protocol — the
//     database state machine.  Update transactions execute optimistically at
//     their delegate, are atomically broadcast with their read versions and
//     write set, and every replica certifies them in delivery order
//     (first-updater-wins).  SafetyLevel parameterises the client response
//     point: 0-safe, 1-safe (lazy), group-safe, group-1-safe, 2-safe,
//     very-safe.
//   - active (TechActive): active replication — the full deterministic
//     operation list is broadcast and executed by every replica in total
//     order.  No certification, zero aborts, higher CPU.
//   - lazy-primary (TechLazyPrimary): lazy primary-copy, the 1-safe
//     baseline — updates execute only at the primary, which replies after
//     its forced local commit and ships write sets asynchronously (FIFO in
//     commit order) to the secondaries.
//
// A Cluster wires one Replica per server onto a shared in-memory network
// with failure injection.  The replication pipeline is batched end to end:
// the atomic broadcast coalesces concurrent payloads into multi-payload DATA
// messages, and the apply loops drain delivered bursts, installing every
// write set of a batch with a single group-committed log force before any
// delegate is notified (knobs shared via the tuning package).  See
// docs/ARCHITECTURE.md for the layering diagram and BENCH.md for measured
// effects.
package core
