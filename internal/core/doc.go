// Package core implements the replicated database component of the paper:
// update-everywhere, non-voting, certification-based replication (the
// database state machine approach) built on group communication, with the
// client response point parameterised by the safety criterion — 0-safe,
// 1-safe (lazy), group-safe, group-1-safe, 2-safe and very-safe (Sects. 2, 4
// and 5 of the paper).
//
// A Cluster wires one Replica per server onto a shared in-memory network
// with failure injection.  Each replica combines a local database component
// (internal/db) with a group communication component (internal/gcs): update
// transactions execute optimistically at their delegate, are atomically
// broadcast with their read versions and write set, and every replica
// certifies and applies them in delivery order (first-updater-wins).
//
// The replication pipeline is batched end to end: the atomic broadcast
// coalesces concurrent payloads into multi-payload DATA messages
// (ClusterConfig.BatchSize / BatchDelay), and the apply loop drains delivered
// bursts, installing every write set of a batch with a single group-committed
// log force before any delegate is notified.  See docs/ARCHITECTURE.md for
// the dataflow and BENCH.md for the measured effect.
package core
