package core

import (
	"context"
	"errors"
	"fmt"

	"groupsafe/internal/apply"
	"groupsafe/internal/gcs/abcast"
	"groupsafe/internal/gcs/e2e"
	"groupsafe/internal/gcs/transport"
	"groupsafe/internal/storage"
	"groupsafe/internal/wal"
	"groupsafe/internal/workload"
)

// This file is the technique-independent half of the replica: the ordered
// delivery drain loops, the submit/notify plumbing between a delegate's
// Execute call and the apply goroutine, and the externalisation step that
// reports outcomes to clients and issues end-to-end acknowledgements.  The
// technique-specific half (what is broadcast, how a delivery commits) lives
// behind the Technique interface (technique.go).

// applyItem is one totally-ordered delivery handed to the batched apply loop.
// ack is non-nil for end-to-end deliveries and signals successful delivery.
type applyItem struct {
	seq     uint64
	payload []byte
	ack     func()
}

// maxApplyBatch bounds how many deliveries are applied under one force.
const maxApplyBatch = 256

// drainUpTo collects first plus every value already queued on ch, up to max
// elements, without blocking.
func drainUpTo[T any](ch <-chan T, first T, max int) []T {
	batch := []T{first}
	for len(batch) < max {
		select {
		case v := <-ch:
			batch = append(batch, v)
		default:
			return batch
		}
	}
	return batch
}

// applyState is the apply-pipeline state of ONE incarnation's apply
// goroutine: the conflict-graph scheduler and the reusable batch arenas that
// make the steady-state apply path allocation-free.  It is owned by that
// goroutine alone — a recovered replica gets a fresh applyState, so a
// straggling pre-crash apply loop can never share arenas with its successor.
// The certification and active techniques use disjoint subsets of the
// fields; both go through staged and the scheduler.
type applyState struct {
	sched  *apply.Scheduler
	staged []stagedTxn // outcomes of the current batch, delivery order

	// Certification-technique arenas (technique_cert.go).
	batchRecs []txnRecord       // decode arena, one slot per batch position
	batchOK   []bool            // per-slot decode success
	tasks     [][]storage.Write // committed write sets handed to the scheduler
	certBumps map[int]uint64    // per-item version bumps staged by this batch
	readItems []int             // scratch for prepared-lock conflict checks

	// Active-technique arenas (technique_active.go).
	opsRec    opsRecord       // decode arena (one delivery at a time, serial)
	writeVals map[int]int64   // last-write-wins write buffer of one execution
	writeBuf  []storage.Write // sorted write set handed to stage+install
}

func newApplyState(workers int) *applyState {
	return &applyState{
		sched:     apply.New(workers),
		certBumps: make(map[int]uint64),
		writeVals: make(map[int]int64),
	}
}

// stagedTxn is one processed delivery of the current batch, ready to be
// externalised once the batch force and installs complete.  level is the
// transaction's own externalisation level (decoded from the payload), lsn
// the local WAL position of its commit record (zero when nothing was staged).
type stagedTxn struct {
	item     applyItem
	txnID    uint64
	delegate string
	level    SafetyLevel
	outcome  Outcome
	vote     bool // a 2PC prepare vote, not a final transaction outcome
	lsn      wal.LSN
	reads    map[int]int64 // delegate read results (active technique only)
}

// txnOutcome is what the apply goroutine hands back to a waiting Execute
// call: the certified outcome, the local commit-record LSN, the delivery
// sequence (the transaction's own position in the total order, reported to
// clients as the Result.Freshness token), and, for techniques that execute
// reads at delivery time (active replication), the values read.
type txnOutcome struct {
	outcome Outcome
	lsn     wal.LSN
	seq     uint64
	reads   map[int]int64
}

// applyLoopClassical consumes deliveries from the classical atomic broadcast,
// draining every delivery already queued so the whole batch is applied with a
// single log force and one bookkeeping lock round.
//
// When the stop signal races a pending delivery, the queued suffix is
// deliberately DISCARDED, never applied (one-by-one or otherwise): stop is
// only ever closed by a crash-model teardown (Crash/Close mark the replica
// crashed first), and a crashed process losing its delivered-but-unprocessed
// messages is exactly the paper's Fig. 5 window — classical levels recover
// them by state transfer, end-to-end levels replay them from the message
// log.  Applying them here would externalise work a crashed process cannot
// have done.  A batch already inside applyBatch when the race happens is
// likewise abandoned at the next applierCurrent gate.
func (r *Replica) applyLoopClassical(st *applyState, ab *abcast.Broadcaster, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case d := <-ab.Deliveries():
			ds := drainUpTo(ab.Deliveries(), d, maxApplyBatch)
			batch := make([]applyItem, len(ds))
			for i, dd := range ds {
				batch[i] = applyItem{seq: dd.Seq, payload: dd.Payload}
			}
			r.applyMu.Lock()
			r.tech.applyBatch(r, st, stop, batch)
			r.applyMu.Unlock()
		}
	}
}

// applyLoopE2E consumes deliveries from the end-to-end atomic broadcast and
// acknowledges each one after the database has processed it (successful
// delivery, Sect. 4.2).  Like the classical loop it applies drained batches;
// acknowledgements are issued only after the batch force, so a crash mid-batch
// replays the whole unacknowledged suffix (apply is idempotent).  Like the
// classical loop, deliveries that race the stop signal are discarded, not
// applied — they are logged and unacknowledged, so recovery replays them.
func (r *Replica) applyLoopE2E(st *applyState, b *e2e.Broadcaster, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case d := <-b.Deliveries():
			ds := drainUpTo(b.Deliveries(), d, maxApplyBatch)
			batch := make([]applyItem, len(ds))
			for i, dd := range ds {
				batch[i] = r.e2eItem(b, dd)
			}
			r.applyMu.Lock()
			r.tech.applyBatch(r, st, stop, batch)
			r.applyMu.Unlock()
		}
	}
}

func (r *Replica) e2eItem(b *e2e.Broadcaster, d e2e.Delivery) applyItem {
	seq := d.Seq
	return applyItem{seq: seq, payload: d.Payload, ack: func() { _ = b.Ack(seq) }}
}

// applierCurrent reports whether the apply loop identified by stop still
// belongs to the live incarnation: the replica is not crashed and no newer
// incarnation has been started.  A straggling pre-crash loop (e.g. one whose
// deliver hook crashed the replica mid-batch) fails this gate and abandons
// its work instead of racing the recovered incarnation.
func (r *Replica) applierCurrent(stop chan struct{}) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.crashed && r.applierStop == stop
}

// deliveryGate is the per-delivery variant of applierCurrent used inside a
// batch: it additionally snapshots the test deliver hook under the same lock.
func (r *Replica) deliveryGate(stop chan struct{}) (hook func(txnID uint64), current bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deliverHook, !r.crashed && r.applierStop == stop
}

func (r *Replica) broadcast(payload []byte) error {
	r.mu.Lock()
	e2eb, ab := r.e2eb, r.ab
	r.mu.Unlock()
	if e2eb != nil {
		_, err := e2eb.Broadcast(payload)
		return err
	}
	if ab != nil {
		_, err := ab.Broadcast(payload)
		return err
	}
	return fmt.Errorf("core: technique %v at level %v does not use group communication", r.tech.ID(), r.cfg.Level)
}

func (r *Replica) countOutcome(o Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if o == OutcomeCommitted {
		r.stats.Committed++
	} else if o == OutcomeAborted {
		r.stats.Aborted++
	}
}

// effectiveLevel resolves the safety level one transaction is externalised
// at: the cluster's configured level, or the request's per-transaction
// override.  An override is first canonicalised against the technique's
// floor (CanonicalLevel: active promotes the zero level to group-safe, lazy
// primary-copy pins to 1-safe-lazy), then checked against the machinery this
// cluster was actually built with:
//
//   - on a group-communication cluster every transaction rides the broadcast,
//     so levels weaker than group-safe are canonicalised up to it;
//   - 2-safe needs the end-to-end message log, which only exists when the
//     cluster itself was opened 2-safe or very-safe;
//   - very-safe is honoured on ANY group-communication cluster: its
//     every-server-logged guarantee is enforced by explicit per-replica
//     acknowledgements, which are transport-independent.  Liveness caveat:
//     the wait ends only when every member acked.  On an end-to-end cluster
//     (2-safe/very-safe) a recovering replica replays logged deliveries and
//     acks then; on a classical-broadcast cluster a replica that crashed
//     before delivery recovers by state transfer WITHOUT replay, so its ack
//     never arrives and the waiter ends in ErrTimeout even though the
//     transaction committed cluster-wide — the paper's very-safe blocks
//     while any site is down, and this implementation inherits that;
//   - on a non-group cluster (0-safe, lazy) no alternative response point
//     exists, so only the cluster's own level is accepted.
func (r *Replica) effectiveLevel(req Request) (SafetyLevel, error) {
	base := r.cfg.Level
	if req.Safety == nil {
		return base, nil
	}
	lvl, err := CanonicalLevel(r.tech.ID(), *req.Safety)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrSafetyUnavailable, err)
	}
	if !base.UsesGroupCommunication() {
		if lvl != base {
			return 0, fmt.Errorf("%w: cluster runs %v without group communication; cannot honour per-transaction %v", ErrSafetyUnavailable, base, lvl)
		}
		return base, nil
	}
	if !lvl.UsesGroupCommunication() {
		lvl = GroupSafe
	}
	if lvl == Safety2 && !base.RequiresEndToEnd() {
		return 0, fmt.Errorf("%w: 2-safe needs the end-to-end message log; open the cluster at 2-safe or very-safe", ErrSafetyUnavailable)
	}
	return lvl, nil
}

// ctxWaitError translates a context expiry into the engine's error taxonomy:
// a deadline becomes an ErrTimeout that still wraps ctx.Err(), a cancellation
// surfaces context.Canceled directly — both remain errors.Is-able.
func ctxWaitError(ctx context.Context, txnID uint64, phase string) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("%w: txn %d %s: %w", ErrTimeout, txnID, phase, ctx.Err())
	}
	return fmt.Errorf("core: txn %d %s: %w", txnID, phase, ctx.Err())
}

// withDefaultTimeout applies the replica's ExecTimeout as a default deadline
// when the caller's context does not carry one.  ExecTimeout is only a
// default: a context deadline or cancellation always wins.
func (r *Replica) withDefaultTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, r.cfg.ExecTimeout)
}

// submitAndWait registers the transaction's notification channel, broadcasts
// the payload through the group communication stack, and blocks until the
// apply goroutine reports the outcome — plus, when the transaction's level is
// very-safe, until every server (available or not) has acknowledged it.  It
// is the shared submit path of every broadcast-based technique.
//
// The waiter is deregistered on EVERY exit path (the deferred cleanup),
// including context cancellation and deadline expiry: a cancelled Execute
// must not leak its pending-outcome entry until some later delivery happens
// to garbage-collect it.  A delivery racing the deregistration is harmless —
// externalize sends non-blocking into the buffered channel and treats a
// missing entry as "no local waiter".
func (r *Replica) submitAndWait(ctx context.Context, txnID uint64, payload []byte, level SafetyLevel, crashCh chan struct{}) (txnOutcome, error) {
	ctx, cancel := r.withDefaultTimeout(ctx)
	defer cancel()

	outcomeCh := make(chan txnOutcome, 1)
	var veryDone chan struct{}
	r.mu.Lock()
	r.pending[txnID] = outcomeCh
	if level == VerySafe {
		veryDone = make(chan struct{})
		r.veryDone[txnID] = veryDone
		r.veryAcks[txnID] = make(map[string]bool)
	}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.pending, txnID)
		delete(r.veryDone, txnID)
		delete(r.veryAcks, txnID)
		r.mu.Unlock()
	}()

	// A context cancelled before the broadcast aborts the submission outright:
	// nothing has left this replica yet.
	if err := ctx.Err(); err != nil {
		return txnOutcome{}, ctxWaitError(ctx, txnID, "before broadcast")
	}
	if err := r.broadcast(payload); err != nil {
		return txnOutcome{}, fmt.Errorf("core: broadcast: %w", err)
	}

	var out txnOutcome
	select {
	case out = <-outcomeCh:
	case <-crashCh:
		return txnOutcome{}, ErrCrashed
	case <-ctx.Done():
		return txnOutcome{}, ctxWaitError(ctx, txnID, "waiting for the outcome")
	}

	// Very-safe: additionally wait until every server (not just the available
	// ones) has acknowledged the transaction.
	if level == VerySafe && out.outcome == OutcomeCommitted {
		select {
		case <-veryDone:
		case <-crashCh:
			return txnOutcome{}, ErrCrashed
		case <-ctx.Done():
			return txnOutcome{}, ctxWaitError(ctx, txnID, "waiting for very-safe acks")
		}
	}
	return out, nil
}

// externalize is the final phase of every technique's applyBatch: it runs
// strictly after the batch force and every install, so nothing here can be
// observed for a transaction that is not durable according to the safety
// level.  Bookkeeping for the whole batch happens under a single lock
// acquisition, then delegates are notified, very-safe acknowledgements are
// recorded or sent, and end-to-end deliveries are acknowledged.  The router
// is snapshotted under the same lock: incarnation swaps publish a new router
// under mu, so an unlocked read would race a concurrent Recover.
func (r *Replica) externalize(staged []stagedTxn) {
	r.mu.Lock()
	router := r.router
	notifyCh := make([]chan txnOutcome, len(staged))
	for i, a := range staged {
		r.stats.Delivered++
		r.advanceAppliedSeq(a.item.seq)
		if r.cfg.RecordApplied {
			r.appliedLog = append(r.appliedLog, AppliedRecord{
				Seq: a.item.seq, TxnID: a.txnID, Outcome: a.outcome, Level: a.level, Vote: a.vote,
			})
		}
		if ch, ok := r.pending[a.txnID]; ok {
			notifyCh[i] = ch
		}
	}
	r.mu.Unlock()
	// One delivery-rate sample per externalised batch (not per transaction)
	// keeps time.Now off the apply hot path; the estimate backs the
	// bounded-staleness lease check of the read path.
	r.fresh.sampleRate(r.fresh.appliedSeq())

	for i, a := range staged {
		if ch := notifyCh[i]; ch != nil {
			select {
			case ch <- txnOutcome{outcome: a.outcome, lsn: a.lsn, seq: a.item.seq, reads: a.reads}:
			default:
			}
			r.countOutcome(a.outcome)
			if a.level == VerySafe && a.outcome == OutcomeCommitted {
				r.recordVerySafeAck(a.txnID, r.cfg.ID)
			}
		} else if a.level == VerySafe && a.outcome == OutcomeCommitted {
			// Very-safe (the transaction's own level, which may be a
			// per-request override): every replica confirms to the delegate
			// that the transaction is logged locally (and, batched, durably
			// forced — the batch force ran before externalize).
			ackBytes := encodePayload(ackPayload{TxnID: a.txnID, Replica: r.cfg.ID})
			if router.Send(a.delegate, transport.Message{Type: msgAck, Payload: ackBytes}) == nil {
				r.mu.Lock()
				r.stats.AcksSent++
				r.mu.Unlock()
			}
		}
		if a.item.ack != nil {
			a.item.ack()
		}
	}
}

// writesInRange reports whether every written item exists, so staging never
// logs a write set the store would refuse to install.
func writesInRange(writes []storage.Write, numItems int) bool {
	for _, w := range writes {
		if w.Item < 0 || w.Item >= numItems {
			return false
		}
	}
	return true
}

// requestMayWrite reports whether the request can update the database: it
// contains a write operation, or a Compute hook that could emit one.
func requestMayWrite(req Request) bool {
	if req.Compute != nil {
		return true
	}
	for _, op := range req.Ops {
		if op.Write {
			return true
		}
	}
	return false
}

// onVerySafeAck records a per-replica acknowledgement at the delegate.
func (r *Replica) onVerySafeAck(m transport.Message) {
	var p ackPayload
	if err := decodePayload(m.Payload, &p); err != nil {
		return
	}
	r.recordVerySafeAck(p.TxnID, p.Replica)
}

func (r *Replica) recordVerySafeAck(txnID uint64, replica string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	acks, ok := r.veryAcks[txnID]
	if !ok {
		return
	}
	acks[replica] = true
	if len(acks) == len(r.cfg.Members) {
		if done, ok := r.veryDone[txnID]; ok {
			select {
			case <-done:
			default:
				close(done)
			}
		}
	}
}

// Execute a request built from a workload transaction.  Transactions without
// writes are declared ReadOnly, so they take the snapshot fast path and fail
// loudly if a write ever sneaks into a generated query.
func RequestFromWorkload(t workload.Transaction) Request {
	return Request{ID: 0, Ops: t.Ops, ReadOnly: t.ReadOnly()}
}
