package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"groupsafe/internal/gcs/fd"
	"groupsafe/internal/gcs/transport"
	"groupsafe/internal/storage"
	"groupsafe/internal/tuning"
	"groupsafe/internal/workload"
)

// ClusterConfig configures an in-process replicated database cluster (one
// replica per server, all connected by an in-memory network with failure
// injection).
type ClusterConfig struct {
	// Replicas is the number of servers (the paper assumes n >= 3; Table 4
	// uses 9).
	Replicas int
	// Items is the database size.
	Items int
	// Level is the safety criterion of every replica.
	Level SafetyLevel
	// Technique is the replication technique every replica runs
	// (certification-based by default; see TechniqueID).
	Technique TechniqueID
	// DiskSyncDelay emulates the cost of forcing a log to disk.
	DiskSyncDelay time.Duration
	// NetworkLatency and NetworkJitter emulate the LAN.
	NetworkLatency time.Duration
	NetworkJitter  time.Duration
	// ExecTimeout bounds Execute calls.
	ExecTimeout time.Duration
	// LazyPropagationDelay postpones lazy write-set propagation (failure
	// injection experiments).
	LazyPropagationDelay time.Duration
	// RecordApplied turns on the per-replica applied-transaction log (see
	// ReplicaConfig.RecordApplied and Replica.AppliedLog).
	RecordApplied bool
	// StartDetectors runs heartbeat failure detectors on every replica.
	StartDetectors bool
	// Detector tunes the failure detectors.
	Detector fd.Config
	// Seed seeds the network randomness.
	Seed int64
	// Partitions is the number of keyspace partitions.  The core cluster
	// itself is always one partition (one total order); the field is read by
	// the partition router layered on top (internal/partition, gsdb), which
	// builds one core cluster per partition.  Zero or one means unpartitioned.
	Partitions int
	// MaxPinAge caps how far (in applied broadcast sequences) a pinned MVCC
	// snapshot may lag the visible watermark before it is evicted and its
	// reader fails with ErrSnapshotTooOld; 0 means pins never expire.
	MaxPinAge uint64
	// Network, when non-nil, attaches the replicas to the given transport
	// instead of building a private in-memory network.  The partition layer
	// uses it to share one simulated wire across per-partition clusters.
	// When set, NetworkLatency/NetworkJitter/Seed are ignored here (the owner
	// of the base network configures them) and Cluster.Network returns nil.
	Network transport.Network
	// Pipeline carries the shared tuning knobs (BatchSize, BatchDelay,
	// ApplyWorkers) applied to every replica; see the tuning package.
	tuning.Pipeline
}

func (c *ClusterConfig) applyDefaults() {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Items <= 0 {
		c.Items = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Cluster is a set of replicas sharing one in-memory network.
type Cluster struct {
	cfg      ClusterConfig
	network  *transport.MemNetwork
	replicas []*Replica
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg.applyDefaults()
	var memnet *transport.MemNetwork
	network := cfg.Network
	if network == nil {
		netOpts := []transport.MemOption{transport.WithSeed(cfg.Seed)}
		if cfg.NetworkLatency > 0 {
			netOpts = append(netOpts, transport.WithLatency(cfg.NetworkLatency))
		}
		if cfg.NetworkJitter > 0 {
			netOpts = append(netOpts, transport.WithJitter(cfg.NetworkJitter))
		}
		memnet = transport.NewMemNetwork(netOpts...)
		network = memnet
	}

	members := make([]string, cfg.Replicas)
	for i := range members {
		members[i] = fmt.Sprintf("s%d", i+1)
	}
	c := &Cluster{cfg: cfg, network: memnet}
	for i, id := range members {
		r, err := NewReplica(ReplicaConfig{
			ID:                   id,
			Members:              members,
			Items:                cfg.Items,
			Level:                cfg.Level,
			Technique:            cfg.Technique,
			Network:              network,
			DiskSyncDelay:        cfg.DiskSyncDelay,
			ExecTimeout:          cfg.ExecTimeout,
			LazyPropagationDelay: cfg.LazyPropagationDelay,
			RecordApplied:        cfg.RecordApplied,
			StartDetector:        cfg.StartDetectors,
			Detector:             cfg.Detector,
			MaxPinAge:            cfg.MaxPinAge,
			Pipeline:             cfg.Pipeline,
		})
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("core: start replica %d: %w", i, err)
		}
		c.replicas = append(c.replicas, r)
	}
	// Reflect the technique's level canonicalisation (e.g. active promoting
	// the zero level to group-safe) so Cluster.Level agrees with what the
	// replicas actually run.
	c.cfg.Level = c.replicas[0].Level()
	return c, nil
}

// Network exposes the underlying in-memory network (for partition injection).
// It is nil when the cluster was attached to an injected transport via
// ClusterConfig.Network — fault injection then goes through the owner of that
// transport.
func (c *Cluster) Network() *transport.MemNetwork { return c.network }

// Size returns the number of replicas.
func (c *Cluster) Size() int { return len(c.replicas) }

// Level returns the cluster's safety level.
func (c *Cluster) Level() SafetyLevel { return c.cfg.Level }

// Technique returns the cluster's replication technique.
func (c *Cluster) Technique() TechniqueID { return c.cfg.Technique }

// Replica returns the i-th replica (0-based).
func (c *Cluster) Replica(i int) *Replica {
	if i < 0 || i >= len(c.replicas) {
		return nil
	}
	return c.replicas[i]
}

// Replicas returns all replicas.
func (c *Cluster) Replicas() []*Replica {
	out := make([]*Replica, len(c.replicas))
	copy(out, c.replicas)
	return out
}

// Execute runs a request with replica i as the delegate; ctx bounds the call
// (a context without a deadline gets the configured ExecTimeout as a
// default).  Under the lazy primary-copy technique, update transactions are
// transparently routed to the primary (replica 0) — the cluster plays the
// role of the client-side driver that knows where the primary copy lives.
func (c *Cluster) Execute(ctx context.Context, i int, req Request) (Result, error) {
	r := c.Replica(i)
	if r == nil {
		return Result{}, fmt.Errorf("%w: index %d", ErrNotFound, i)
	}
	if c.cfg.Technique == TechLazyPrimary && !r.IsPrimary() && requestMayWrite(req) {
		r = c.Replica(0)
	}
	return r.Execute(ctx, req)
}

// ReplicaByID returns the replica with the given network address, or nil.
func (c *Cluster) ReplicaByID(id string) *Replica {
	for _, r := range c.replicas {
		if r.cfg.ID == id {
			return r
		}
	}
	return nil
}

// Crash crashes replica i.
func (c *Cluster) Crash(i int) {
	if r := c.Replica(i); r != nil {
		r.Crash()
	}
}

// CrashAll crashes every replica (the total-failure scenario of Fig. 5).
func (c *Cluster) CrashAll() {
	for _, r := range c.replicas {
		r.Crash()
	}
}

// Recover restarts replica i.  For the dynamic crash no-recovery model a
// state transfer is performed from a live replica, if any is available (the
// paper's checkpoint-based recovery); with end-to-end atomic broadcast the
// replica additionally replays its logged-but-unacknowledged messages.
// It returns the number of replayed messages.
func (c *Cluster) Recover(i int) (int, error) {
	r := c.Replica(i)
	if r == nil {
		return 0, fmt.Errorf("%w: index %d", ErrNotFound, i)
	}
	var snapshot *StateSnapshot
	if donor := c.liveDonor(i); donor != nil {
		s := donor.Snapshot()
		snapshot = &s
	}
	return r.Recover(snapshot)
}

// liveDonor returns the non-crashed replica (other than the one at index i)
// with the most advanced committed state, or nil when none is available.
// Using the most advanced donor minimises the window of messages the
// recovering replica can no longer obtain from the group (checkpoint-based
// recovery has no message replay; that is exactly the limitation the paper's
// end-to-end atomic broadcast removes).  Advancement is measured by the
// total committed write count, not LastAppliedSeq: the broadcast sequence is
// volatile bookkeeping that restarts on recovery, so after a crash storm a
// fully recovered replica can carry the longest state at a near-zero
// sequence number.  LastAppliedSeq breaks ties.
func (c *Cluster) liveDonor(i int) *Replica {
	var donor *Replica
	var donorWrites uint64
	for j, r := range c.replicas {
		if j == i || r.Crashed() {
			continue
		}
		w := r.DB().CommittedWriteCount()
		if donor == nil || w > donorWrites ||
			(w == donorWrites && r.LastAppliedSeq() > donor.LastAppliedSeq()) {
			donor = r
			donorWrites = w
		}
	}
	return donor
}

// LiveCount returns the number of non-crashed replicas.
func (c *Cluster) LiveCount() int {
	n := 0
	for _, r := range c.replicas {
		if !r.Crashed() {
			n++
		}
	}
	return n
}

// Value returns the committed value of item at replica i.
func (c *Cluster) Value(i, item int) (int64, error) {
	r := c.Replica(i)
	if r == nil {
		return 0, fmt.Errorf("%w: index %d", ErrNotFound, i)
	}
	v, _, err := r.DB().ReadVersioned(item)
	return v, err
}

// DivergenceError reports why a WaitConsistent call gave up: the first item
// observed to differ between two live replicas.  It wraps the context error
// that ended the wait, so errors.Is(err, context.DeadlineExceeded) (or
// Canceled) still works on it.
type DivergenceError struct {
	// ReplicaA and ReplicaB are the two disagreeing replicas.
	ReplicaA, ReplicaB string
	// Item is the first diverging item index.
	Item int
	// ValueA/VersionA and ValueB/VersionB are the item's committed state on
	// the respective replicas at the time of the final check.
	ValueA, ValueB     int64
	VersionA, VersionB uint64
	cause              error
}

// Error implements error.
func (e *DivergenceError) Error() string {
	return fmt.Sprintf("core: replicas %s and %s diverged at item %d (%s: value=%d version=%d, %s: value=%d version=%d): %v",
		e.ReplicaA, e.ReplicaB, e.Item, e.ReplicaA, e.ValueA, e.VersionA, e.ReplicaB, e.ValueB, e.VersionB, e.cause)
}

// Unwrap exposes the context error that ended the wait.
func (e *DivergenceError) Unwrap() error { return e.cause }

// WaitConsistent blocks until every live replica converged to the same store
// contents, or until ctx is done.  On success it returns nil; when the
// context expires first it returns a *DivergenceError naming the first
// replica pair and item that still disagreed (wrapping ctx.Err()), or nil
// in the degenerate case where the stores converged between the expiry and
// the final check — the wait's goal was reached, so it is not reported as a
// failure.  (Group-communication-based levels converge as soon as
// their delivery queues drain; lazy replication may never converge when
// conflicting transactions were accepted.)
func (c *Cluster) WaitConsistent(ctx context.Context) error {
	for {
		if c.consistentNow() {
			return nil
		}
		select {
		case <-ctx.Done():
			if d := c.firstDivergence(); d != nil {
				d.cause = ctx.Err()
				return d
			}
			return nil // converged between the poll and the final check
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// consistentNow is firstDivergence's boolean form, so the convergence poll
// and the failure report can never apply different comparisons.
func (c *Cluster) consistentNow() bool {
	return c.firstDivergence() == nil
}

// firstDivergence scans the live replicas pairwise against the first live
// one and returns the first differing item, or nil when all agree.
func (c *Cluster) firstDivergence() *DivergenceError {
	var reference *Replica
	var refItems []storage.Item
	for _, r := range c.replicas {
		if r.Crashed() {
			continue
		}
		if reference == nil {
			reference = r
			refItems = r.DB().Store().Snapshot()
			continue
		}
		items := r.DB().Store().Snapshot()
		n := len(refItems)
		if len(items) < n {
			n = len(items)
		}
		for i := 0; i < n; i++ {
			if refItems[i] != items[i] {
				return &DivergenceError{
					ReplicaA: reference.ID(), ReplicaB: r.ID(),
					Item:   i,
					ValueA: refItems[i].Value, ValueB: items[i].Value,
					VersionA: refItems[i].Version, VersionB: items[i].Version,
				}
			}
		}
		if len(refItems) != len(items) {
			return &DivergenceError{ReplicaA: reference.ID(), ReplicaB: r.ID(), Item: n}
		}
	}
	return nil
}

// Consistent reports whether every live replica currently has identical
// committed state.
func (c *Cluster) Consistent() bool { return c.consistentNow() }

// TotalStats aggregates the replica counters.
func (c *Cluster) TotalStats() ReplicaStats {
	var total ReplicaStats
	for _, r := range c.replicas {
		s := r.Stats()
		total.Executed += s.Executed
		total.Committed += s.Committed
		total.Aborted += s.Aborted
		total.Delivered += s.Delivered
		total.LazyApply += s.LazyApply
		total.Queries += s.Queries
		total.AcksSent += s.AcksSent
	}
	return total
}

// Close shuts every replica down.
func (c *Cluster) Close() {
	for _, r := range c.replicas {
		_ = r.Close()
	}
}

// Client is a convenience wrapper that submits transactions to a fixed
// delegate replica and measures response times.
type Client struct {
	cluster  *Cluster
	delegate int

	mu        sync.Mutex
	responses []time.Duration
	commits   int
	aborts    int
}

// NewClient creates a client bound to the given delegate replica index.
func NewClient(cluster *Cluster, delegate int) *Client {
	return &Client{cluster: cluster, delegate: delegate}
}

// Run executes one request and records its response time.
func (cl *Client) Run(ctx context.Context, req Request) (Result, error) {
	start := time.Now()
	res, err := cl.cluster.Execute(ctx, cl.delegate, req)
	elapsed := time.Since(start)
	if err != nil {
		return res, err
	}
	cl.mu.Lock()
	cl.responses = append(cl.responses, elapsed)
	if res.Committed() {
		cl.commits++
	} else {
		cl.aborts++
	}
	cl.mu.Unlock()
	return res, nil
}

// RunWorkload executes n transactions drawn from the generator.
func (cl *Client) RunWorkload(ctx context.Context, gen *workload.Generator, n int) error {
	for i := 0; i < n; i++ {
		txn := gen.Next(0, cl.delegate)
		if _, err := cl.Run(ctx, RequestFromWorkload(txn)); err != nil {
			return err
		}
	}
	return nil
}

// ResponseTimes returns the recorded response times.
func (cl *Client) ResponseTimes() []time.Duration {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make([]time.Duration, len(cl.responses))
	copy(out, cl.responses)
	return out
}

// Counts returns the number of committed and aborted transactions observed.
func (cl *Client) Counts() (commits, aborts int) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.commits, cl.aborts
}
