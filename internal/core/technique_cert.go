package core

import (
	"context"
	"fmt"
	"sync"

	"groupsafe/internal/storage"
	"groupsafe/internal/wal"
	"groupsafe/internal/workload"
)

// certTechnique is the certification-based database state machine — the
// paper's own replication protocol (Sects. 2, 4, 5).  Update transactions
// execute optimistically at their delegate under no locks, the read versions
// and the write set are atomically broadcast, and every replica runs the
// same deterministic first-updater-wins certification test in delivery
// order.  Conflicting concurrent transactions abort; disjoint ones commit
// with one broadcast and zero remote execution.
//
// At the Safety0 and Safety1Lazy levels the technique degrades to the
// paper's baselines: purely local execution with asynchronous (lazy)
// write-set propagation — see executeLocal in technique_lazy.go.
type certTechnique struct{}

// ID implements Technique.
func (certTechnique) ID() TechniqueID { return TechCertification }

func (certTechnique) usesGroupComm(level SafetyLevel) bool {
	return level.UsesGroupCommunication()
}

func (certTechnique) checkLevel(level SafetyLevel) (SafetyLevel, error) {
	return level, nil // every safety level is meaningful for certification
}

func (certTechnique) execute(ctx context.Context, r *Replica, req Request, crashCh chan struct{}) (Result, error) {
	switch r.cfg.Level {
	case Safety0, Safety1Lazy:
		return r.executeLocal(ctx, req)
	default:
		return certExecuteReplicated(ctx, r, req, crashCh)
	}
}

// certExecuteReplicated implements the group-communication based levels
// (group-safe, group-1-safe, 2-safe, very-safe): optimistic execution at the
// delegate, atomic broadcast of the read versions and write set, deterministic
// certification at every replica.  Pure queries never reach this function —
// the engine serves them from an MVCC snapshot without any broadcast
// (executeReadOnly); a request routed here has writes (or a Compute hook that
// may emit some), and only its read phase runs on a snapshot.
func certExecuteReplicated(ctx context.Context, r *Replica, req Request, crashCh chan struct{}) (Result, error) {
	level, err := r.effectiveLevel(req)
	if err != nil {
		return Result{}, err
	}
	// A freshness floor applies to the read phase regardless of whether the
	// transaction turns out to write (Compute-bearing requests land here
	// even when their hook emits nothing).  The default ExecTimeout must
	// bound this wait too — submitAndWait installs it only later, and a
	// floor the replica never reaches would otherwise hang a deadline-less
	// caller forever.
	if req.MinFreshness > 0 {
		boundedCtx, cancel := r.withDefaultTimeout(ctx)
		err := r.waitFreshness(boundedCtx, req.MinFreshness, crashCh)
		cancel()
		if err != nil {
			return Result{}, err
		}
	}
	// The freshness token is sampled BEFORE the snapshot (see
	// executeReadOnly): the snapshot then contains everything it claims.
	token := r.LastAppliedSeq()
	// The optimistic read phase runs on one MVCC snapshot: the read values
	// form a consistent cut, and each recorded (item, version) pair comes
	// from a single atomic versioned read — the certification read set can
	// never pair a new value with an old version.
	rt, err := r.dbase.BeginRead()
	if err != nil {
		return Result{}, ErrCrashed
	}
	defer rt.Close()
	readVals := make(map[int]int64)
	readVers := make(map[int]uint64)
	writes := make(map[int]int64)
	run := func(ops []workload.Op) error {
		for _, op := range ops {
			if op.Write {
				writes[op.Item] = op.Value
				continue
			}
			v, ver, err := rt.ReadVersioned(op.Item)
			if err != nil {
				return fmt.Errorf("core: read item %d: %w", op.Item, err)
			}
			readVals[op.Item] = v
			if _, seen := readVers[op.Item]; !seen {
				readVers[op.Item] = ver
			}
		}
		return nil
	}
	if err := run(req.Ops); err != nil {
		return Result{}, err
	}
	if req.Compute != nil {
		if err := run(req.Compute(readVals)); err != nil {
			return Result{}, err
		}
	}

	// A Compute hook may turn out not to write after all; answer it from the
	// snapshot like any other query (Fig. 2/8: only transactions with writes
	// are broadcast).
	if len(writes) == 0 {
		r.countOutcome(OutcomeCommitted)
		return Result{TxnID: req.ID, Outcome: OutcomeCommitted, ReadValues: readVals, Delegate: r.cfg.ID, Level: level, Freshness: token}, nil
	}

	payload := encodeTxnPayload(req.ID, r.cfg.ID, level, readVers, writes)
	out, err := r.submitAndWait(ctx, req.ID, payload, level, crashCh)
	if err != nil {
		return Result{}, err
	}
	return Result{TxnID: req.ID, Outcome: out.outcome, ReadValues: readVals, Delegate: r.cfg.ID, Level: level, CommitLSN: uint64(out.lsn), Freshness: out.seq}, nil
}

// applyBatch runs the certification apply pipeline on one drained batch of
// totally-ordered deliveries:
//
//  1. decode every payload (concurrently when ApplyWorkers > 1 — payloads are
//     independent);
//  2. certify and stage serially in strict delivery order: certification uses
//     a version overlay (store versions plus the bumps staged earlier in this
//     batch), the write sets and commit records are appended to the log in
//     delivery order but not yet forced or installed;
//  3. one group-committed force covers every commit record of the batch,
//     overlapped with step 4 (neither depends on the other);
//  4. the committed write sets are installed by the conflict-graph scheduler:
//     disjoint write sets in parallel on the worker pool, conflicting ones
//     chained in delivery order — byte-identical to a serial install;
//  5. only then are delegates notified and end-to-end deliveries
//     acknowledged (r.externalize).
//
// For a batch of B transactions the levels that force on commit pay one disk
// force instead of B, and the installs use up to ApplyWorkers cores.
//
// Crash semantics: a crash mid-batch (the Fig. 5 window) abandons the whole
// batch — commit records already appended for earlier batch members sit in
// the unsynced log tail and are lost with it, like a real group-commit
// system dying before its force.  That is safe under every criterion because
// no outcome has been externalised: delegates are notified and e2e messages
// acknowledged strictly after the batch force, so an unforced transaction
// was never reported committed; end-to-end levels replay the whole
// unacknowledged suffix from the message log, and classical levels recover
// missed messages by state transfer, exactly as for a single lost delivery.
func (certTechnique) applyBatch(r *Replica, st *applyState, stop chan struct{}, batch []applyItem) {
	if !r.applierCurrent(stop) {
		return
	}

	// Phase 1: decode into the reusable arena, in parallel for large batches.
	n := len(batch)
	if cap(st.batchRecs) < n {
		st.batchRecs = make([]txnRecord, n)
		st.batchOK = make([]bool, n)
	}
	recs := st.batchRecs[:n]
	oks := st.batchOK[:n]
	decodeOne := func(i int) {
		oks[i] = decodeTxnRecord(batch[i].payload, &recs[i]) == nil
	}
	if workers := st.sched.EffectiveWorkers(); workers > 1 && n >= 4 {
		if workers > n {
			workers = n
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					decodeOne(i)
				}
			}(w)
		}
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			decodeOne(i)
		}
	}

	// Phase 2: serial certification and staging in delivery order.
	staged := st.staged[:0]
	tasks := st.tasks[:0]
	clear(st.certBumps)
	numItems := r.dbase.Store().NumItems()
	var maxLSN wal.LSN
	needSync := false
	for i := range batch {
		hook, current := r.deliveryGate(stop)
		if !current {
			return
		}

		if !oks[i] {
			continue
		}
		rec := &recs[i]

		// The crash window of Fig. 5: the group communication component has
		// delivered the message, the database has not yet processed it.
		if hook != nil {
			hook(rec.TxnID)
			if !r.applierCurrent(stop) {
				return
			}
		}

		var outcome Outcome
		var commitLSN wal.LSN
		switch rec.Phase {
		case phaseNone:
			outcome = certify(r, st, rec)
			// A transaction conflicting with a prepared-but-undecided
			// cross-partition transaction must abort: the prepared one was
			// certified at its prepare and its outcome may not be invalidated
			// by later deliveries.  The atomic HasPrepared gate keeps the
			// unpartitioned hot path free of the check.
			if outcome == OutcomeCommitted && r.dbase.HasPrepared() && preparedConflict(r, st, rec) {
				outcome = OutcomeAborted
			}
			if outcome == OutcomeCommitted {
				if !writesInRange(rec.Writes, numItems) {
					continue
				}
				fresh, lsn, err := r.dbase.StageWrites(rec.TxnID, rec.Writes)
				if err != nil {
					continue
				}
				if fresh {
					commitLSN = lsn
					if lsn > maxLSN {
						maxLSN = lsn
					}
					if rec.Level.SyncOnCommit() && !(mutationSkip2SafeForce && rec.Level == Safety2) {
						needSync = true
					}
					for _, w := range rec.Writes {
						st.certBumps[w.Item]++
					}
					tasks = append(tasks, rec.Writes)
				}
			} else {
				_ = r.dbase.RecordAbort(rec.TxnID)
			}

		case phasePrepare:
			// Prepare of a cross-partition sub-transaction: certify exactly
			// like a one-shot transaction (version check plus prepared-lock
			// conflicts), then stage the write set with a KindPrepare record
			// instead of a commit.  The reported outcome is this partition's
			// vote; nothing becomes visible until a decide.  A vote-no leaves
			// no trace — the coordinator's abort decision is what gets logged.
			outcome = certify(r, st, rec)
			if outcome == OutcomeCommitted && !writesInRange(rec.Writes, numItems) {
				outcome = OutcomeAborted
			}
			if outcome == OutcomeCommitted && preparedConflict(r, st, rec) {
				outcome = OutcomeAborted
			}
			if outcome == OutcomeCommitted {
				// The decode arena reuses rec's slices across batches, while
				// the prepared-transaction table retains them until the
				// decision: copy.
				readItems := make([]int, len(rec.Reads))
				for j, rv := range rec.Reads {
					readItems[j] = rv.Item
				}
				writes := make([]storage.Write, len(rec.Writes))
				copy(writes, rec.Writes)
				fresh, lsn, err := r.dbase.StagePrepare(rec.TxnID, rec.Coord, readItems, writes)
				if err != nil {
					continue
				}
				if fresh {
					commitLSN = lsn
					if lsn > maxLSN {
						maxLSN = lsn
					}
					// The prepare record is this partition's vote; levels that
					// force on commit force the vote before it is reported.
					if rec.Level.SyncOnCommit() && !(mutationSkip2SafeForce && rec.Level == Safety2) {
						needSync = true
					}
				}
			}

		case phaseDecideCommit, phaseDecideAbort:
			// Decision for a prepared transaction: first decision wins,
			// replays and late deliveries return the recorded outcome.  The
			// decide payload carries the write set, so a replica that lost
			// its prepare (recovered from a checkpoint) still installs the
			// commit.
			commit := rec.Phase == phaseDecideCommit
			if commit && !writesInRange(rec.Writes, numItems) {
				continue
			}
			committed, install, fresh, lsn, err := r.dbase.DecidePrepared(rec.TxnID, commit, rec.Writes)
			if err != nil {
				continue
			}
			outcome = OutcomeAborted
			if committed {
				outcome = OutcomeCommitted
			}
			if fresh && committed {
				commitLSN = lsn
				if lsn > maxLSN {
					maxLSN = lsn
				}
				if rec.Level.SyncOnCommit() && !(mutationSkip2SafeForce && rec.Level == Safety2) {
					needSync = true
				}
				for _, w := range install {
					st.certBumps[w.Item]++
				}
				tasks = append(tasks, install)
			}

		default:
			continue
		}
		staged = append(staged, stagedTxn{item: batch[i], txnID: rec.TxnID, delegate: rec.Delegate, level: rec.Level, outcome: outcome, vote: rec.Phase == phasePrepare, lsn: commitLSN})
	}
	st.staged, st.tasks = staged, tasks

	// Phases 3+4: the batch force and the conflict-scheduled installs run
	// concurrently; both must finish before any outcome is externalised.
	// The force decision is per-batch: one group-committed force covers the
	// batch when ANY of its transactions runs at a force-on-commit level (the
	// cluster's own level, or a per-transaction override riding the payload).
	// Pure group-safe batches skip the force — durability stays delegated to
	// the group.
	forceErr := make(chan error, 1)
	if maxLSN > 0 && needSync {
		go func() { forceErr <- r.dbase.ForceTo(maxLSN) }()
	} else {
		forceErr <- nil
	}
	// InstallWrites cannot fail for staged write sets (ranges are validated
	// by writesInRange before staging and the store size is fixed); if it
	// ever does, the batch is abandoned before anything is externalised and
	// the WAL stays the source of truth — crash recovery reinstalls the
	// logged commits.
	installErr := st.sched.Run(tasks, func(t int) error {
		return r.dbase.InstallWrites(tasks[t])
	})
	if <-forceErr != nil || installErr != nil {
		return
	}

	// Phase 5.
	r.externalize(staged)
}

// certify runs the deterministic certification test (first-updater-wins): the
// transaction aborts if any item it read has been overwritten by a
// transaction delivered before it.  Writes staged earlier in the current
// batch are not yet installed in the store, so their version bumps are
// overlaid from certBumps — the outcome is exactly the one the serial loop
// computed by installing before certifying the next transaction.
func certify(r *Replica, st *applyState, rec *txnRecord) Outcome {
	for _, rv := range rec.Reads {
		if _, ver, _ := r.dbase.ReadVersioned(rv.Item); ver+st.certBumps[rv.Item] > rv.Ver {
			return OutcomeAborted
		}
	}
	return OutcomeCommitted
}

// preparedConflict reports whether rec conflicts with any in-doubt prepared
// cross-partition transaction (shared/exclusive rule; see DB.PreparedConflict).
// The read-item scratch slice lives in the apply state so the check allocates
// nothing in steady state.
func preparedConflict(r *Replica, st *applyState, rec *txnRecord) bool {
	items := st.readItems[:0]
	for _, rv := range rec.Reads {
		items = append(items, rv.Item)
	}
	st.readItems = items
	return r.dbase.PreparedConflict(items, rec.Writes)
}
