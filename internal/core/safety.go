package core

import "fmt"

// SafetyLevel is the safety criterion enforced by a replica (Table 1 and
// Table 2 of the paper).
type SafetyLevel int

const (
	// Safety0 (0-safe): the client is notified as soon as the transaction has
	// been executed at the delegate, before it is delivered to the group or
	// logged anywhere.  A single crash can lose the transaction.
	Safety0 SafetyLevel = iota
	// Safety1Lazy (1-safe, lazy replication): the client is notified once the
	// transaction is logged and committed at the delegate only; write sets are
	// propagated to the other replicas lazily, outside the transaction
	// boundary.  The crash of the delegate can lose the transaction, and
	// concurrent conflicting transactions can violate one-copy
	// serialisability even without failures.
	Safety1Lazy
	// GroupSafe (group-safe): the client is notified once the message
	// carrying the transaction is guaranteed to be delivered at all available
	// servers (uniform atomic broadcast) and the commit/abort decision is
	// known; disk writes happen asynchronously.  Durability is delegated to
	// the group: the transaction survives unless too many servers crash.
	GroupSafe
	// Group1Safe (group-safe and 1-safe): like GroupSafe, but the client is
	// notified only after the delegate has also forced the transaction to its
	// own stable storage.
	Group1Safe
	// Safety2 (2-safe): built on end-to-end atomic broadcast; when the client
	// is notified, the transaction is on stable storage at every available
	// server (via the group-communication message log) and will eventually
	// commit everywhere, even if all servers crash.
	Safety2
	// VerySafe (very safe): the client is notified only after every server —
	// available or not — has logged the transaction; a single unreachable
	// server blocks termination, which is why the paper considers the
	// criterion impractical.
	VerySafe
)

// String implements fmt.Stringer.
func (l SafetyLevel) String() string {
	switch l {
	case Safety0:
		return "0-safe"
	case Safety1Lazy:
		return "1-safe-lazy"
	case GroupSafe:
		return "group-safe"
	case Group1Safe:
		return "group-1-safe"
	case Safety2:
		return "2-safe"
	case VerySafe:
		return "very-safe"
	default:
		return fmt.Sprintf("safety(%d)", int(l))
	}
}

// UsesGroupCommunication reports whether the level relies on atomic broadcast
// (all levels except the lazy and 0-safe baselines).
func (l SafetyLevel) UsesGroupCommunication() bool {
	switch l {
	case GroupSafe, Group1Safe, Safety2, VerySafe:
		return true
	default:
		return false
	}
}

// RequiresEndToEnd reports whether the level needs the end-to-end atomic
// broadcast primitive of Sect. 4 (classical atomic broadcast is insufficient).
func (l SafetyLevel) RequiresEndToEnd() bool {
	return l == Safety2 || l == VerySafe
}

// SyncOnCommit reports whether the delegate must force its log before
// answering the client.
func (l SafetyLevel) SyncOnCommit() bool {
	switch l {
	case Safety1Lazy, Group1Safe, Safety2, VerySafe:
		return true
	default:
		return false
	}
}

// ToleratedCrashes returns the number of simultaneous server crashes (out of
// n) the level tolerates without ever losing an acknowledged transaction
// (Table 2 of the paper).
func (l SafetyLevel) ToleratedCrashes(n int) int {
	switch l {
	case Safety0, Safety1Lazy:
		return 0
	case GroupSafe, Group1Safe:
		if n <= 0 {
			return 0
		}
		return n - 1
	case Safety2, VerySafe:
		return n
	default:
		return 0
	}
}

// GuaranteedDelivered returns, per Table 1, on how many replicas the message
// carrying the transaction is guaranteed to be delivered when the client is
// notified ("1" or "all").
func (l SafetyLevel) GuaranteedDelivered() string {
	switch l {
	case Safety0, Safety1Lazy:
		return "1"
	default:
		return "all"
	}
}

// GuaranteedLogged returns, per Table 1, on how many replicas the transaction
// is guaranteed to be logged when the client is notified ("none", "1" or
// "all").
func (l SafetyLevel) GuaranteedLogged() string {
	switch l {
	case Safety0, GroupSafe:
		return "none"
	case Safety1Lazy, Group1Safe:
		return "1"
	case Safety2, VerySafe:
		return "all"
	default:
		return "none"
	}
}

// AllLevels lists every safety level, in increasing order of guarantees.
func AllLevels() []SafetyLevel {
	return []SafetyLevel{Safety0, Safety1Lazy, GroupSafe, Group1Safe, Safety2, VerySafe}
}

// ParseLevel resolves a safety level name (as printed by String).
func ParseLevel(s string) (SafetyLevel, error) {
	for _, l := range AllLevels() {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("core: unknown safety level %q", s)
}
