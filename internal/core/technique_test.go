package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"groupsafe/internal/tuning"
	"groupsafe/internal/workload"
)

// techniquesUnderTest returns the techniques the heavy property tests should
// exercise.  CI sets GSDB_TECHNIQUE (comma-separated names) to run the
// race-enabled suite once per technique; locally the default covers all of
// them in one run.
func techniquesUnderTest(t *testing.T) []TechniqueID {
	env := os.Getenv("GSDB_TECHNIQUE")
	if env == "" {
		return AllTechniques()
	}
	var out []TechniqueID
	for _, tok := range strings.Split(env, ",") {
		id, err := ParseTechnique(strings.TrimSpace(tok))
		if err != nil {
			t.Fatalf("GSDB_TECHNIQUE: %v", err)
		}
		out = append(out, id)
	}
	return out
}

func TestTechniqueParseRoundTrip(t *testing.T) {
	for _, id := range AllTechniques() {
		got, err := ParseTechnique(id.String())
		if err != nil || got != id {
			t.Fatalf("round trip %v: got %v, %v", id, got, err)
		}
	}
	if _, err := ParseTechnique("weak-voting"); err == nil {
		t.Fatal("unknown technique should not parse")
	}
}

func TestTechniqueLevelCanonicalisation(t *testing.T) {
	// Active replication promotes the zero level to group-safe and rejects
	// the lazy level; lazy primary-copy is pinned to 1-safe-lazy and rejects
	// the group-communication levels.
	c, err := NewCluster(ClusterConfig{Replicas: 3, Items: 64, Technique: TechActive})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Replica(0).Level(); got != GroupSafe {
		t.Fatalf("active + zero level = %v, want group-safe", got)
	}
	if _, err := NewCluster(ClusterConfig{Replicas: 3, Items: 64, Technique: TechActive, Level: Safety1Lazy}); err == nil {
		t.Fatal("active + 1-safe-lazy should be rejected")
	}

	lp, err := NewCluster(ClusterConfig{Replicas: 3, Items: 64, Technique: TechLazyPrimary})
	if err != nil {
		t.Fatal(err)
	}
	defer lp.Close()
	if got := lp.Replica(0).Level(); got != Safety1Lazy {
		t.Fatalf("lazy-primary level = %v, want 1-safe-lazy", got)
	}
	if _, err := NewCluster(ClusterConfig{Replicas: 3, Items: 64, Technique: TechLazyPrimary, Level: GroupSafe}); err == nil {
		t.Fatal("lazy-primary + group-safe should be rejected")
	}
}

func TestOpsPayloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var rec opsRecord // reused like the apply loop's arena
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(16)
		ops := make([]workload.Op, n)
		for i := range ops {
			ops[i] = workload.Op{Item: rng.Intn(10000), Write: rng.Intn(2) == 0}
			if ops[i].Write {
				ops[i].Value = rng.Int63() - rng.Int63()
			}
		}
		id := uint64(rng.Int63())
		level := AllLevels()[rng.Intn(len(AllLevels()))]
		payload := encodeOpsPayload(id, "s2", level, ops)
		if err := decodeOpsRecord(payload, &rec); err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if rec.TxnID != id || rec.Delegate != "s2" || rec.Level != level || len(rec.Ops) != n {
			t.Fatalf("trial %d: header mismatch: %+v", trial, rec)
		}
		for i, op := range rec.Ops {
			if op != ops[i] {
				t.Fatalf("trial %d: op %d = %+v, want %+v", trial, i, op, ops[i])
			}
		}
		// Truncations must fail, not decode garbage.
		for cut := 0; cut < len(payload); cut++ {
			if err := decodeOpsRecord(payload[:cut], &rec); err == nil {
				t.Fatalf("trial %d: truncation at %d decoded", trial, cut)
			}
		}
	}
}

func TestActiveReplicationCommitsWithoutAborts(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Replicas:    3,
		Items:       128,
		Technique:   TechActive,
		ExecTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Heavily conflicting concurrent workload: certification would abort
	// some of these; active replication must commit every single one.
	commits, aborts := runConcurrent(t, c, 0, 6, 20, 16)
	if aborts != 0 {
		t.Fatalf("active replication aborted %d transactions", aborts)
	}
	if commits != 6*20 {
		t.Fatalf("committed %d, want %d", commits, 6*20)
	}
	if !waitConsistent(c, 5*time.Second) {
		t.Fatal("active replicas did not converge")
	}
}

func TestActiveReplicationReadsAtSerialisationPoint(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Replicas: 3, Items: 64, Technique: TechActive, ExecTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Execute(context.Background(), 0, writeReq(0, 9, 90)); err != nil {
		t.Fatal(err)
	}
	// A read-then-write transaction must observe the committed value at its
	// delivery position (read-your-writes included).
	res, err := c.Execute(context.Background(), 1, Request{Ops: []workload.Op{
		{Item: 9},
		{Item: 10, Write: true, Value: 100},
		{Item: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed() || res.ReadValues[9] != 90 || res.ReadValues[10] != 100 {
		t.Fatalf("result = %+v", res)
	}

	// Compute hooks cannot travel in a broadcast.
	_, err = c.Execute(context.Background(), 0, Request{
		Ops:     []workload.Op{{Item: 9}},
		Compute: func(map[int]int64) []workload.Op { return nil },
	})
	if !errors.Is(err, ErrComputeNotReplicable) {
		t.Fatalf("compute under active replication: %v", err)
	}
}

func TestLazyPrimaryRoutesUpdatesToPrimary(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Replicas: 3, Items: 64, Technique: TechLazyPrimary, ExecTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Direct submission of an update to a secondary is refused...
	if _, err := c.Replica(1).Execute(context.Background(), writeReq(0, 3, 33)); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("update at secondary: %v", err)
	}
	// ...but the cluster driver transparently routes it to the primary.
	res, err := c.Execute(context.Background(), 1, writeReq(0, 3, 33))
	if err != nil || !res.Committed() {
		t.Fatalf("routed update failed: %+v, %v", res, err)
	}
	if res.Delegate != "s1" {
		t.Fatalf("update executed at %s, want primary s1", res.Delegate)
	}
	// Read-only transactions stay at their delegate.
	if !waitConsistent(c, 5*time.Second) {
		t.Fatal("secondaries did not receive the lazy write set")
	}
	rres, err := c.Replica(2).Execute(context.Background(), readReq(3))
	if err != nil || rres.ReadValues[3] != 33 {
		t.Fatalf("secondary read = %+v, %v", rres, err)
	}
	if rres.Delegate != "s3" {
		t.Fatalf("read-only executed at %s, want s3", rres.Delegate)
	}
}

// conflictFreeWorkload builds per-client transaction streams over disjoint
// item partitions: no two clients touch the same item, so certification
// commits everything and the final store state is independent of the
// interleaving — the precondition for comparing techniques byte for byte.
func conflictFreeWorkload(clients, txnsPerClient, itemsPerClient int, seed int64) [][]Request {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]Request, clients)
	for cl := 0; cl < clients; cl++ {
		base := cl * itemsPerClient
		reqs := make([]Request, txnsPerClient)
		for i := range reqs {
			nOps := 2 + rng.Intn(4)
			ops := make([]workload.Op, nOps)
			for j := range ops {
				item := base + rng.Intn(itemsPerClient)
				if rng.Intn(2) == 0 {
					ops[j] = workload.Op{Item: item, Write: true, Value: rng.Int63n(1 << 30)}
				} else {
					ops[j] = workload.Op{Item: item}
				}
			}
			// At least one write so the transaction is broadcast.
			ops[0].Write = true
			ops[0].Value = rng.Int63n(1 << 30)
			reqs[i] = Request{Ops: ops}
		}
		out[cl] = reqs
	}
	return out
}

// runRequests drives the per-client request streams concurrently, each
// client bound to a delegate round-robin.
func runRequests(t *testing.T, c *Cluster, streams [][]Request) {
	t.Helper()
	var wg sync.WaitGroup
	errCh := make(chan error, len(streams))
	for cl, reqs := range streams {
		cl, reqs := cl, reqs
		wg.Add(1)
		go func() {
			defer wg.Done()
			delegate := cl % c.Size()
			for _, req := range reqs {
				res, err := c.Execute(context.Background(), delegate, req)
				if err != nil {
					errCh <- err
					return
				}
				if !res.Committed() {
					errCh <- fmt.Errorf("conflict-free transaction aborted under %v", c.Technique())
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestCertAndActiveReachSameStateOnConflictFreeWorkload is the
// cross-technique equivalence property: on a workload without inter-client
// conflicts, the certification-based and active techniques must drive every
// replica of their clusters to the same committed store state (values AND
// versions), because both reduce to "apply each client's writes in client
// order".
func TestCertAndActiveReachSameStateOnConflictFreeWorkload(t *testing.T) {
	const clients, txns, itemsPer = 4, 15, 16
	items := clients * itemsPer
	streams := conflictFreeWorkload(clients, txns, itemsPer, 11)

	build := func(tech TechniqueID) *Cluster {
		c, err := NewCluster(ClusterConfig{
			Replicas:    3,
			Items:       items,
			Level:       GroupSafe,
			Technique:   tech,
			ExecTimeout: 10 * time.Second,
			Pipeline:    tuning.Pipe(4, 200*time.Microsecond, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	cert := build(TechCertification)
	active := build(TechActive)
	runRequests(t, cert, streams)
	runRequests(t, active, streams)
	if !waitConsistent(cert, 5*time.Second) || !waitConsistent(active, 5*time.Second) {
		t.Fatal("clusters did not converge internally")
	}
	if !cert.Replica(0).DB().Store().Equal(active.Replica(0).DB().Store()) {
		t.Fatal("certification and active replication diverged on a conflict-free workload")
	}
}

// TestTechniquesDeterministicAcrossApplyWorkers runs every technique under
// ApplyWorkers 1, 4 and 16 with a concurrent conflicting workload and
// requires all replicas of each cluster to converge to identical state —
// worker-pool size must never be observable in the committed data.
func TestTechniquesDeterministicAcrossApplyWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	for _, tech := range techniquesUnderTest(t) {
		tech := tech
		for _, workers := range []int{1, 4, 16} {
			workers := workers
			t.Run(fmt.Sprintf("%v/workers=%d", tech, workers), func(t *testing.T) {
				level := GroupSafe
				if tech == TechLazyPrimary {
					level = Safety1Lazy
				}
				c, err := NewCluster(ClusterConfig{
					Replicas:    3,
					Items:       96,
					Level:       level,
					Technique:   tech,
					ExecTimeout: 10 * time.Second,
					Pipeline:    tuning.Pipe(8, 200*time.Microsecond, workers),
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				commits, _ := runConcurrent(t, c, 0, 6, 25, 96)
				if commits == 0 {
					t.Fatal("no transaction committed")
				}
				if !waitConsistent(c, 5*time.Second) {
					t.Fatalf("%v with %d workers: replicas diverged", tech, workers)
				}
			})
		}
	}
}
