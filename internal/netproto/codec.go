package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/workload"
)

var errTruncated = errors.New("netproto: truncated payload")

// --- Request ---

const (
	reqFlagReadOnly     = 1 << 0
	reqFlagHasSafety    = 1 << 1
	reqFlagHasStaleness = 1 << 2
)

// AppendRequest encodes a client transaction.  Compute hooks cannot cross the
// wire; callers must reject them before encoding (the closure is silently
// dropped here).
func AppendRequest(buf []byte, req core.Request) []byte {
	buf = binary.AppendUvarint(buf, req.ID)
	var flags uint64
	if req.ReadOnly {
		flags |= reqFlagReadOnly
	}
	if req.Safety != nil {
		flags |= reqFlagHasSafety
	}
	if req.MaxStaleness > 0 {
		flags |= reqFlagHasStaleness
	}
	buf = binary.AppendUvarint(buf, flags)
	if req.Safety != nil {
		buf = binary.AppendUvarint(buf, uint64(*req.Safety))
	}
	if req.MaxStaleness > 0 {
		buf = binary.AppendUvarint(buf, uint64(req.MaxStaleness))
	}
	buf = binary.AppendUvarint(buf, req.MinFreshness)
	buf = binary.AppendUvarint(buf, uint64(len(req.Ops)))
	for _, op := range req.Ops {
		b := byte(0)
		if op.Write {
			b = 1
		}
		buf = append(buf, b)
		buf = binary.AppendUvarint(buf, uint64(op.Item))
		if op.Write {
			buf = binary.AppendVarint(buf, op.Value)
		}
	}
	return buf
}

// DecodeRequest decodes a client transaction.
func DecodeRequest(data []byte) (core.Request, error) {
	d := decoder{data: data}
	var req core.Request
	req.ID = d.uvarint()
	flags := d.uvarint()
	req.ReadOnly = flags&reqFlagReadOnly != 0
	if flags&reqFlagHasSafety != 0 {
		lvl := core.SafetyLevel(d.uvarint())
		req.Safety = &lvl
	}
	if flags&reqFlagHasStaleness != 0 {
		req.MaxStaleness = time.Duration(d.uvarint())
	}
	req.MinFreshness = d.uvarint()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(data)) {
		return core.Request{}, errTruncated
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		var op workload.Op
		op.Write = d.byte() == 1
		op.Item = int(d.uvarint())
		if op.Write {
			op.Value = d.varint()
		}
		req.Ops = append(req.Ops, op)
	}
	return req, d.err
}

// --- Result ---

const resFlagStale = 1 << 0

// AppendResult encodes a transaction outcome.
func AppendResult(buf []byte, res core.Result) []byte {
	buf = binary.AppendUvarint(buf, res.TxnID)
	buf = append(buf, byte(res.Outcome))
	buf = binary.AppendUvarint(buf, uint64(res.Level))
	buf = binary.AppendUvarint(buf, res.CommitLSN)
	buf = binary.AppendUvarint(buf, res.Freshness)
	var flags byte
	if res.Stale {
		flags |= resFlagStale
	}
	buf = append(buf, flags)
	buf = appendString(buf, res.Delegate)
	items := make([]int, 0, len(res.ReadValues))
	for it := range res.ReadValues {
		items = append(items, it)
	}
	sort.Ints(items)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = binary.AppendUvarint(buf, uint64(it))
		buf = binary.AppendVarint(buf, res.ReadValues[it])
	}
	return buf
}

// DecodeResult decodes a transaction outcome.
func DecodeResult(data []byte) (core.Result, error) {
	d := decoder{data: data}
	var res core.Result
	res.TxnID = d.uvarint()
	res.Outcome = core.Outcome(d.byte())
	res.Level = core.SafetyLevel(d.uvarint())
	res.CommitLSN = d.uvarint()
	res.Freshness = d.uvarint()
	res.Stale = d.byte()&resFlagStale != 0
	res.Delegate = d.string()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(data)) {
		return core.Result{}, errTruncated
	}
	if n > 0 && d.err == nil {
		res.ReadValues = make(map[int]int64, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			it := int(d.uvarint())
			res.ReadValues[it] = d.varint()
		}
	}
	return res, d.err
}

// --- ServerInfo ---

// ItemState is one database item's committed value and version, shipped by
// the status RPC so external checkers (the chaos harness) can compare replica
// states without access to the process memory.
type ItemState struct {
	Value   int64
	Version uint64
}

// ServerInfo is the server status returned by MsgInfo: identity, current
// membership view, replication progress and the committed store fingerprint.
type ServerInfo struct {
	ID             string
	Primary        bool
	Crashed        bool
	ViewID         uint64
	ViewMembers    []string
	LastAppliedSeq uint64
	DurableLSN     uint64
	Items          []ItemState
}

// AppendInfo encodes a server status report.
func AppendInfo(buf []byte, info ServerInfo) []byte {
	buf = appendString(buf, info.ID)
	var flags byte
	if info.Primary {
		flags |= 1
	}
	if info.Crashed {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, info.ViewID)
	buf = binary.AppendUvarint(buf, uint64(len(info.ViewMembers)))
	for _, m := range info.ViewMembers {
		buf = appendString(buf, m)
	}
	buf = binary.AppendUvarint(buf, info.LastAppliedSeq)
	buf = binary.AppendUvarint(buf, info.DurableLSN)
	buf = binary.AppendUvarint(buf, uint64(len(info.Items)))
	for _, it := range info.Items {
		buf = binary.AppendVarint(buf, it.Value)
		buf = binary.AppendUvarint(buf, it.Version)
	}
	return buf
}

// DecodeInfo decodes a server status report.
func DecodeInfo(data []byte) (ServerInfo, error) {
	d := decoder{data: data}
	var info ServerInfo
	info.ID = d.string()
	flags := d.byte()
	info.Primary = flags&1 != 0
	info.Crashed = flags&2 != 0
	info.ViewID = d.uvarint()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(data)) {
		return ServerInfo{}, errTruncated
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		info.ViewMembers = append(info.ViewMembers, d.string())
	}
	info.LastAppliedSeq = d.uvarint()
	info.DurableLSN = d.uvarint()
	n = d.uvarint()
	if d.err == nil && n > uint64(len(data)) {
		return ServerInfo{}, errTruncated
	}
	if n > 0 && d.err == nil {
		info.Items = make([]ItemState, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			var it ItemState
			it.Value = d.varint()
			it.Version = d.uvarint()
			info.Items = append(info.Items, it)
		}
	}
	return info, d.err
}

// --- Errors ---

// Error codes carried by MsgError frames.  Known codes map back to the
// engine's sentinel errors on the client, so errors.Is works across the
// network exactly as it does in-process.
const (
	CodeGeneric           byte = 0
	CodeCrashed           byte = 1
	CodeTimeout           byte = 2
	CodeNotPrimary        byte = 3
	CodeSafetyUnavailable byte = 4
	CodeComputeNotRepl    byte = 5
	CodeReadOnlyWrites    byte = 6
	CodeNotFound          byte = 7
	CodeTooStale          byte = 8
	CodeSnapshotTooOld    byte = 9
)

var codeToSentinel = map[byte]error{
	CodeCrashed:           core.ErrCrashed,
	CodeTimeout:           core.ErrTimeout,
	CodeNotPrimary:        core.ErrNotPrimary,
	CodeSafetyUnavailable: core.ErrSafetyUnavailable,
	CodeComputeNotRepl:    core.ErrComputeNotReplicable,
	CodeReadOnlyWrites:    core.ErrReadOnlyWrites,
	CodeNotFound:          core.ErrNotFound,
	CodeTooStale:          core.ErrTooStale,
	CodeSnapshotTooOld:    core.ErrSnapshotTooOld,
}

var sentinelToCode = []struct {
	err  error
	code byte
}{
	{core.ErrCrashed, CodeCrashed},
	{core.ErrTimeout, CodeTimeout},
	{core.ErrNotPrimary, CodeNotPrimary},
	{core.ErrSafetyUnavailable, CodeSafetyUnavailable},
	{core.ErrComputeNotReplicable, CodeComputeNotRepl},
	{core.ErrReadOnlyWrites, CodeReadOnlyWrites},
	{core.ErrNotFound, CodeNotFound},
	{core.ErrTooStale, CodeTooStale},
	{core.ErrSnapshotTooOld, CodeSnapshotTooOld},
}

// CodeFor maps an engine error to its wire code (CodeGeneric if unknown).
func CodeFor(err error) byte {
	for _, s := range sentinelToCode {
		if errors.Is(err, s.err) {
			return s.code
		}
	}
	return CodeGeneric
}

// AppendError encodes an error as a MsgError payload.
func AppendError(buf []byte, err error) []byte {
	buf = append(buf, CodeFor(err))
	return appendString(buf, err.Error())
}

// RemoteError is an error reported by the server, carrying the original
// message text; Unwrap exposes the matching engine sentinel so errors.Is
// holds across the wire.
type RemoteError struct {
	Code byte
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string { return "remote: " + e.Msg }

// Unwrap returns the engine sentinel for known codes (nil for CodeGeneric).
func (e *RemoteError) Unwrap() error { return codeToSentinel[e.Code] }

// DecodeError decodes a MsgError payload.
func DecodeError(data []byte) error {
	d := decoder{data: data}
	code := d.byte()
	msg := d.string()
	if d.err != nil {
		return fmt.Errorf("netproto: malformed error frame: %w", d.err)
	}
	return &RemoteError{Code: code, Msg: msg}
}

// --- decoding primitives ---

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.err = errTruncated
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.err = errTruncated
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.err = errTruncated
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.data)-d.pos) {
		d.err = errTruncated
		return ""
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}
