// Package netproto is the client↔server wire protocol of the networked
// database: the framing and binary codecs spoken between gsdb.Dial clients
// and gsdb-server processes.  It deliberately mirrors the replica-to-replica
// transport's style — a fixed magic+version handshake that fails fast on
// mismatched binaries, then varint length-prefixed frames — but uses a
// different magic, so a client dialled at a peer port (or vice versa) is
// rejected at the first four bytes instead of misinterpreting frames.
//
// Every frame carries a correlation ID assigned by the client, so one
// connection multiplexes any number of in-flight requests and responses may
// arrive out of order (read-only transactions overtake slow 2-safe commits).
package netproto

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Handshake constants.  Bump Version when the frame or payload encodings
// change incompatibly.
const (
	Magic   = "GSCL"
	Version = 1
)

// maxFrame bounds a frame body; larger frames indicate a corrupt or hostile
// stream.
const maxFrame = 16 << 20

// Frame types.
const (
	// MsgExec carries an encoded Request (client → server).
	MsgExec byte = 1
	// MsgResult carries an encoded Result (server → client).
	MsgResult byte = 2
	// MsgError carries an error code and message (server → client).
	MsgError byte = 3
	// MsgInfo requests the server's status (client → server, empty payload).
	MsgInfo byte = 4
	// MsgInfoResult carries an encoded ServerInfo (server → client).
	MsgInfoResult byte = 5
)

// ErrBadHandshake is returned when the peer does not speak this protocol.
var ErrBadHandshake = errors.New("netproto: bad protocol handshake")

// WriteHandshake sends the protocol preamble.
func WriteHandshake(w io.Writer) error {
	_, err := w.Write([]byte{Magic[0], Magic[1], Magic[2], Magic[3], Version})
	return err
}

// ReadHandshake consumes and validates the peer's preamble.
func ReadHandshake(r io.Reader) error {
	var buf [5]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if string(buf[:4]) != Magic {
		return fmt.Errorf("%w: magic %q", ErrBadHandshake, buf[:4])
	}
	if buf[4] != Version {
		return fmt.Errorf("%w: peer speaks version %d, this binary speaks %d", ErrBadHandshake, buf[4], Version)
	}
	return nil
}

// Frame is one protocol message.
type Frame struct {
	CorrID  uint64
	Type    byte
	Payload []byte
}

// AppendFrame appends the encoded frame to buf and returns the extended
// slice.
func AppendFrame(buf []byte, f Frame) []byte {
	body := binary.AppendUvarint(nil, f.CorrID)
	body = append(body, f.Type)
	body = append(body, f.Payload...)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...)
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, f Frame) error {
	_, err := w.Write(AppendFrame(nil, f))
	return err
}

// ReadFrame reads one frame.  The returned payload is freshly allocated.
func ReadFrame(r *bufio.Reader) (Frame, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return Frame{}, err
	}
	if n > maxFrame {
		return Frame{}, fmt.Errorf("netproto: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, fmt.Errorf("netproto: short frame: %w", err)
	}
	corr, c := binary.Uvarint(body)
	if c <= 0 || c >= len(body) {
		return Frame{}, errors.New("netproto: malformed frame header")
	}
	return Frame{CorrID: corr, Type: body[c], Payload: body[c+1:]}, nil
}
