package netproto

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/workload"
)

func TestRequestRoundTrip(t *testing.T) {
	lvl := core.VerySafe
	cases := []core.Request{
		{},
		{ID: 42, ReadOnly: true, MinFreshness: 7, Ops: []workload.Op{{Item: 1}, {Item: 2}}},
		{ID: 43, ReadOnly: true, MaxStaleness: 250 * time.Millisecond, Ops: []workload.Op{{Item: 5}}},
		{ID: 44, ReadOnly: true, MinFreshness: 3, MaxStaleness: time.Second, Ops: []workload.Op{{Item: 6}}},
		{ID: 9, Safety: &lvl, Ops: []workload.Op{
			{Item: 3, Write: true, Value: -5},
			{Item: 0, Write: true, Value: 1 << 40},
			{Item: 7},
		}},
	}
	for i, want := range cases {
		got, err := DecodeRequest(AppendRequest(nil, want))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	want := core.Result{
		TxnID:      77,
		Outcome:    core.OutcomeCommitted,
		ReadValues: map[int]int64{1: -9, 4: 12},
		Delegate:   "127.0.0.1:9001",
		Level:      core.Safety2,
		CommitLSN:  5,
		Freshness:  31,
		Stale:      true,
	}
	got, err := DecodeResult(AppendResult(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestInfoRoundTrip(t *testing.T) {
	want := ServerInfo{
		ID:             "r1",
		Primary:        true,
		ViewID:         3,
		ViewMembers:    []string{"r1", "r3"},
		LastAppliedSeq: 88,
		DurableLSN:     41,
		Items:          []ItemState{{Value: -1, Version: 2}, {Value: 100, Version: 0}},
	}
	got, err := DecodeInfo(AppendInfo(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestErrorCodesPreserveSentinels(t *testing.T) {
	for _, sentinel := range []error{
		core.ErrCrashed, core.ErrTimeout, core.ErrNotPrimary,
		core.ErrSafetyUnavailable, core.ErrComputeNotReplicable,
		core.ErrReadOnlyWrites, core.ErrNotFound,
		core.ErrTooStale, core.ErrSnapshotTooOld,
	} {
		wrapped := fmt.Errorf("context: %w", sentinel)
		back := DecodeError(AppendError(nil, wrapped))
		if !errors.Is(back, sentinel) {
			t.Errorf("sentinel %v did not survive the wire: %v", sentinel, back)
		}
	}
	generic := DecodeError(AppendError(nil, errors.New("disk on fire")))
	var re *RemoteError
	if !errors.As(generic, &re) || re.Code != CodeGeneric {
		t.Fatalf("generic error = %#v", generic)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{CorrID: 1, Type: MsgExec, Payload: []byte("abc")},
		{CorrID: 1 << 50, Type: MsgInfo},
		{CorrID: 2, Type: MsgResult, Payload: make([]byte, 100000)},
	}
	var buf bytes.Buffer
	if err := WriteHandshake(&buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	if err := ReadHandshake(r); err != nil {
		t.Fatal(err)
	}
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.CorrID != want.CorrID || got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestHandshakeRejectsForeignProtocols(t *testing.T) {
	if err := ReadHandshake(bytes.NewReader([]byte("GSTP\x01"))); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("peer-transport magic accepted: %v", err)
	}
	if err := ReadHandshake(bytes.NewReader([]byte("GSCL\x63"))); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("wrong version accepted: %v", err)
	}
}
