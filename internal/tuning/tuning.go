// Package tuning holds the pipeline tuning knobs shared by every layer of
// the stack.  BatchSize/BatchDelay/ApplyWorkers used to be copy-pasted across
// abcast.Config, core.ReplicaConfig, core.ClusterConfig and simrep.Config;
// each of those now embeds one of the structs below, so a knob is documented
// once and promoted field access (cfg.BatchSize) keeps working everywhere.
package tuning

import "time"

// BatchMode selects how the sender-side co-traveller window is chosen.
type BatchMode int

const (
	// FixedDelay is the classical knob: a partial batch waits exactly
	// BatchDelay for co-travellers.  Right at exactly one load point, wrong
	// everywhere else (an idle sender stalls the full delay for nothing; a
	// saturated one never needs it).
	FixedDelay BatchMode = iota
	// Adaptive clocks the co-traveller wait off the sender's own deliveries:
	// a payload arriving while the sender has nothing in flight is sent
	// immediately (zero added latency when idle), while payloads arriving
	// behind an in-flight batch buffer and flush when that batch's delivery
	// drains the pipe — group-commit discipline.  An EWMA of inter-arrival
	// gaps only backstops the deadline; DelayCap bounds the worst-case added
	// latency (the p99 budget).  BatchDelay is ignored in this mode.
	Adaptive
)

// String returns the mode name for logs and flag round-trips.
func (m BatchMode) String() string {
	if m == Adaptive {
		return "adaptive"
	}
	return "fixed"
}

// DefaultDelayCap bounds the adaptive co-traveller wait when the caller does
// not set one: no payload is ever held back more than this for batching.
const DefaultDelayCap = time.Millisecond

// Batching tunes the sender-side coalescing of the atomic broadcast (and the
// simulator's model of it).
type Batching struct {
	// BatchSize is the maximum number of concurrent payloads coalesced into
	// one DATA message / dissemination round.  Values <= 1 disable
	// sender-side batching: every broadcast pays its own round, as in the
	// unbatched protocol.  Independent of this knob, the apply loops always
	// drain delivered bursts and force the log once per drained batch.
	BatchSize int
	// BatchDelay bounds how long a payload waits for co-travellers before a
	// partial batch is flushed, in FixedDelay mode.  With BatchSize > 1 a
	// zero BatchDelay now selects the Adaptive mode (idle-flush) instead of
	// the historical silent 1 ms stall.
	BatchDelay time.Duration
	// Mode selects fixed-delay or adaptive co-traveller windows.
	Mode BatchMode
	// DelayCap bounds the adaptive co-traveller wait (default
	// DefaultDelayCap).  Ignored in FixedDelay mode.
	DelayCap time.Duration
}

// Sequencer tunes the ordering hot path of the atomic broadcast.
type Sequencer struct {
	// Pipelined overlaps ORDER assignment with DATA reception: the sequencer
	// queues decoded batches for a dedicated ordering goroutine (coalescing
	// several DATA batches into one contiguous ORDER range) instead of
	// assigning synchronously on the router thread, and members range-merge
	// contiguous ACKs within a short window into one acknowledgement.
	Pipelined bool
	// AckWindow bounds how long a member may hold an ACK waiting for a
	// mergeable neighbour when Pipelined is on (default 100µs; the window
	// adapts below the cap exactly like the sender-side batching window).
	AckWindow time.Duration
	// RotateEvery, when > 0, rotates the sequencer role to the next member
	// after that many sequence assignments: a planned, gather-free epoch
	// handoff so ordering load is not pinned to one member.  0 keeps the
	// fixed sequencer.
	RotateEvery int
	// OrderDelay emulates the ordering site's per-payload service cost: the
	// sequencer spends OrderDelay per message it assigns a sequence number
	// to, serialised with every other assignment.  Zero (the default)
	// disables the emulation.  It is the ordering-path sibling of the
	// replica's DiskSyncDelay: where DiskSyncDelay gives the simulated
	// cluster a disk whose forces cost something, OrderDelay gives it a
	// sequencer whose total order costs something — the serial resource a
	// partitioned deployment splits into independent per-partition orders.
	OrderDelay time.Duration
}

// Pipeline is the full replica-pipeline knob set: broadcast batching, the
// sequencer hot path, and the parallel apply stage.
type Pipeline struct {
	Batching
	Sequencer
	// ApplyWorkers bounds how many certified write sets of one drained batch
	// are installed concurrently.  Certification always stays serial in
	// delivery order; with ApplyWorkers > 1 the committed write sets are
	// partitioned by their item-conflict graph and independent write sets
	// install in parallel, conflicting ones chained in delivery order —
	// observationally identical to serial apply.  <= 1 keeps the serial
	// apply loop.  (The simulator reads 0 as its historical default of one
	// install slot per disk.)
	ApplyWorkers int
}

// Pipe is a literal-friendly constructor: embedding hides the promoted
// fields from composite literals, so call sites use Pipe(8, time.Millisecond, 4)
// instead of nesting Pipeline{Batching{...}}.
func Pipe(batchSize int, batchDelay time.Duration, applyWorkers int) Pipeline {
	return Pipeline{Batching: Batching{BatchSize: batchSize, BatchDelay: batchDelay}, ApplyWorkers: applyWorkers}
}

// AdaptivePipe is Pipe for the adaptive batching mode: payloads flush
// immediately when the sender is idle and wait up to delayCap under load.
func AdaptivePipe(batchSize int, delayCap time.Duration, applyWorkers int) Pipeline {
	return Pipeline{
		Batching:     Batching{BatchSize: batchSize, Mode: Adaptive, DelayCap: delayCap},
		ApplyWorkers: applyWorkers,
	}
}
