// Package tuning holds the pipeline tuning knobs shared by every layer of
// the stack.  BatchSize/BatchDelay/ApplyWorkers used to be copy-pasted across
// abcast.Config, core.ReplicaConfig, core.ClusterConfig and simrep.Config;
// each of those now embeds one of the structs below, so a knob is documented
// once and promoted field access (cfg.BatchSize) keeps working everywhere.
package tuning

import "time"

// Batching tunes the sender-side coalescing of the atomic broadcast (and the
// simulator's model of it).
type Batching struct {
	// BatchSize is the maximum number of concurrent payloads coalesced into
	// one DATA message / dissemination round.  Values <= 1 disable
	// sender-side batching: every broadcast pays its own round, as in the
	// unbatched protocol.  Independent of this knob, the apply loops always
	// drain delivered bursts and force the log once per drained batch.
	BatchSize int
	// BatchDelay bounds how long a payload waits for co-travellers before a
	// partial batch is flushed (default 1ms when BatchSize > 1).
	BatchDelay time.Duration
}

// Pipeline is the full replica-pipeline knob set: broadcast batching plus the
// parallel apply stage.
type Pipeline struct {
	Batching
	// ApplyWorkers bounds how many certified write sets of one drained batch
	// are installed concurrently.  Certification always stays serial in
	// delivery order; with ApplyWorkers > 1 the committed write sets are
	// partitioned by their item-conflict graph and independent write sets
	// install in parallel, conflicting ones chained in delivery order —
	// observationally identical to serial apply.  <= 1 keeps the serial
	// apply loop.  (The simulator reads 0 as its historical default of one
	// install slot per disk.)
	ApplyWorkers int
}

// Pipe is a literal-friendly constructor: embedding hides the promoted
// fields from composite literals, so call sites use Pipe(8, time.Millisecond, 4)
// instead of nesting Pipeline{Batching{...}}.
func Pipe(batchSize int, batchDelay time.Duration, applyWorkers int) Pipeline {
	return Pipeline{Batching: Batching{BatchSize: batchSize, BatchDelay: batchDelay}, ApplyWorkers: applyWorkers}
}
