package tuning

import (
	"testing"
	"time"
)

func TestPipeBuildsNestedLiteral(t *testing.T) {
	p := Pipe(8, 2*time.Millisecond, 4)
	if p.BatchSize != 8 || p.BatchDelay != 2*time.Millisecond || p.ApplyWorkers != 4 {
		t.Fatalf("Pipe produced %+v", p)
	}
	// Promotion must expose the batching fields directly.
	var b Batching = p.Batching
	if b.BatchSize != 8 {
		t.Fatalf("embedded batching = %+v", b)
	}
}
