package tuning

import (
	"testing"
	"time"
)

func TestPipeBuildsNestedLiteral(t *testing.T) {
	p := Pipe(8, 2*time.Millisecond, 4)
	if p.BatchSize != 8 || p.BatchDelay != 2*time.Millisecond || p.ApplyWorkers != 4 {
		t.Fatalf("Pipe produced %+v", p)
	}
	// Promotion must expose the batching fields directly.
	var b Batching = p.Batching
	if b.BatchSize != 8 {
		t.Fatalf("embedded batching = %+v", b)
	}
}

func TestAdaptivePipe(t *testing.T) {
	p := AdaptivePipe(32, 500*time.Microsecond, 2)
	if p.Mode != Adaptive || p.BatchSize != 32 || p.DelayCap != 500*time.Microsecond || p.ApplyWorkers != 2 {
		t.Fatalf("AdaptivePipe produced %+v", p)
	}
	if p.BatchDelay != 0 {
		t.Fatalf("AdaptivePipe must leave BatchDelay zero, got %v", p.BatchDelay)
	}
}

func TestBatchModeString(t *testing.T) {
	if FixedDelay.String() != "fixed" || Adaptive.String() != "adaptive" {
		t.Fatalf("mode strings: %q / %q", FixedDelay.String(), Adaptive.String())
	}
}
