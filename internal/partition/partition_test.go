package partition

import (
	"context"
	"errors"
	"testing"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/workload"
)

func TestMapArithmetic(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 4, 7} {
		m := NewMap(100, parts)
		counted := 0
		for p := 0; p < parts; p++ {
			counted += m.Size(p)
		}
		if counted != 100 {
			t.Fatalf("parts=%d: sizes sum to %d, want 100", parts, counted)
		}
		for g := 0; g < 100; g++ {
			p, l := m.Owner(g), m.Local(g)
			if p < 0 || p >= parts {
				t.Fatalf("parts=%d: owner(%d) = %d", parts, g, p)
			}
			if l < 0 || l >= m.Size(p) {
				t.Fatalf("parts=%d: local(%d) = %d outside partition %d (size %d)", parts, g, l, p, m.Size(p))
			}
			if m.Global(p, l) != g {
				t.Fatalf("parts=%d: roundtrip %d -> (%d,%d) -> %d", parts, g, p, l, m.Global(p, l))
			}
		}
	}
}

func newTestCluster(t *testing.T, partitions int) *Cluster {
	t.Helper()
	c, err := New(core.ClusterConfig{
		Replicas:    3,
		Items:       64,
		Level:       core.GroupSafe,
		Partitions:  partitions,
		ExecTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func waitConsistent(t *testing.T, c *Cluster) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitConsistent(ctx); err != nil {
		t.Fatalf("replicas did not converge: %v", err)
	}
}

func write(item int, value int64) workload.Op {
	return workload.Op{Item: item, Write: true, Value: value}
}
func read(item int) workload.Op { return workload.Op{Item: item} }

// expectValues asserts the committed value of each (item, value) pair on every
// server.
func expectValues(t *testing.T, c *Cluster, want map[int]int64) {
	t.Helper()
	for i := 0; i < c.Size(); i++ {
		if c.ReplicaCrashed(i) {
			continue
		}
		for item, value := range want {
			got, err := c.Value(i, item)
			if err != nil {
				t.Fatalf("server %d item %d: %v", i, item, err)
			}
			if got != value {
				t.Fatalf("server %d item %d = %d, want %d", i, item, got, value)
			}
		}
	}
}

func TestUnpartitionedPassThrough(t *testing.T) {
	c := newTestCluster(t, 1)
	if c.NumPartitions() != 1 {
		t.Fatalf("NumPartitions = %d", c.NumPartitions())
	}
	res, err := c.Execute(context.Background(), 0, core.Request{Ops: []workload.Op{write(7, 77)}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed() || res.FreshnessVec != nil {
		t.Fatalf("pass-through result = %+v (freshness vector must stay nil on one partition)", res)
	}
	waitConsistent(t, c)
	expectValues(t, c, map[int]int64{7: 77})
}

func TestRejectsPartitioningWithoutGroupCommunication(t *testing.T) {
	if _, err := New(core.ClusterConfig{Replicas: 3, Items: 64, Level: core.Safety1Lazy, Partitions: 2}); err == nil {
		t.Fatal("expected an error for a lazy partitioned cluster")
	}
	if _, err := New(core.ClusterConfig{Replicas: 3, Items: 64, Level: core.GroupSafe, Technique: core.TechActive, Partitions: 2}); err == nil {
		t.Fatal("expected an error for an active-replication partitioned cluster")
	}
}

func TestSinglePartitionFastPath(t *testing.T) {
	c := newTestCluster(t, 4)
	// Items 1, 5, 9 all live on partition 1 (mod 4): the request is forwarded
	// whole, no 2PC.
	res, err := c.Execute(context.Background(), 0, core.Request{Ops: []workload.Op{write(1, 10), write(5, 50), read(9)}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
	if res.CommitPartition != 1 {
		t.Fatalf("CommitPartition = %d, want 1", res.CommitPartition)
	}
	if v, ok := res.ReadValues[9]; !ok || v != 0 {
		t.Fatalf("ReadValues = %v, want global item 9 = 0", res.ReadValues)
	}
	if len(res.FreshnessVec) != 4 || res.FreshnessVec[1] == 0 {
		t.Fatalf("FreshnessVec = %v, want entry 1 set", res.FreshnessVec)
	}
	waitConsistent(t, c)
	expectValues(t, c, map[int]int64{1: 10, 5: 50})
}

func TestCrossPartitionCommit(t *testing.T) {
	c := newTestCluster(t, 4)
	// Items 0..3 cover all four partitions.
	res, err := c.Execute(context.Background(), 1, core.Request{Ops: []workload.Op{
		write(0, 100), write(1, 101), write(2, 102), write(3, 103), read(4),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
	for p := 0; p < 4; p++ {
		if res.FreshnessVec[p] == 0 {
			t.Fatalf("FreshnessVec = %v, want every participant entry set", res.FreshnessVec)
		}
	}
	waitConsistent(t, c)
	expectValues(t, c, map[int]int64{0: 100, 1: 101, 2: 102, 3: 103})
}

func TestCrossPartitionCertificationAbort(t *testing.T) {
	c := newTestCluster(t, 2)
	ctx := context.Background()

	// T1 reads item 0 (partition 0) before writing item 1 (partition 1); a
	// conflicting update to item 0 commits between T1's read phase and its
	// prepare, so partition 0's certification must vote no and the whole
	// transaction — including the partition-1 write — must abort.
	gate := make(chan struct{})
	done := make(chan struct{})
	var res core.Result
	var err error
	go func() {
		defer close(done)
		res, err = c.Execute(ctx, 0, core.Request{
			Ops: []workload.Op{read(0)},
			Compute: func(reads map[int]int64) []workload.Op {
				<-gate
				return []workload.Op{write(1, reads[0]+1)}
			},
		})
	}()

	if _, err := c.Execute(ctx, 1, core.Request{Ops: []workload.Op{write(0, 555)}}); err != nil {
		t.Fatal(err)
	}
	close(gate)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed() {
		t.Fatalf("stale cross-partition read committed: %+v", res)
	}
	waitConsistent(t, c)
	// The aborted transaction must not have installed its partition-1 write.
	expectValues(t, c, map[int]int64{0: 555, 1: 0})
}

func TestFreshnessVectorReadYourWrites(t *testing.T) {
	c := newTestCluster(t, 2)
	ctx := context.Background()
	res, err := c.Execute(ctx, 0, core.Request{Ops: []workload.Op{write(0, 7), write(1, 8)}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed() {
		t.Fatalf("update = %+v", res)
	}
	// Read both items from a different server with the returned vector as the
	// floor: both partitions must serve at least the update's sequences.
	q, err := c.Execute(ctx, 2, core.Request{
		Ops:             []workload.Op{read(0), read(1)},
		MinFreshnessVec: res.FreshnessVec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.ReadValues[0] != 7 || q.ReadValues[1] != 8 {
		t.Fatalf("floored read = %v, want own writes {0:7 1:8}", q.ReadValues)
	}
	if len(q.FreshnessVec) != 2 {
		t.Fatalf("query FreshnessVec = %v", q.FreshnessVec)
	}
	for p := 0; p < 2; p++ {
		if q.FreshnessVec[p] < res.FreshnessVec[p] {
			t.Fatalf("query vector %v below floor %v", q.FreshnessVec, res.FreshnessVec)
		}
	}
}

// prepareDirect stages an in-doubt sub-transaction on partition p by
// submitting its prepare without ever deciding, simulating a router that died
// between the two phases.
func prepareDirect(t *testing.T, c *Cluster, p int, gid uint64, coord int, writes map[int]int64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r := c.liveReplica(p, 0)
	outcome, _, err := r.SubmitPrepare(ctx, gid, c.Level(), coord, nil, writes)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != core.OutcomeCommitted {
		t.Fatalf("prepare vote = %v, want yes", outcome)
	}
}

func TestPreparedLocksBlockConflictingTransactions(t *testing.T) {
	c := newTestCluster(t, 2)
	ctx := context.Background()
	gid := c.newGID()

	// An in-doubt prepare holds an exclusive lock on partition 0's local item
	// 0 (global item 0).
	prepareDirect(t, c, 0, gid, 0, map[int]int64{0: 42})

	// A conflicting one-shot write must abort while the prepare is undecided.
	res, err := c.Execute(ctx, 0, core.Request{Ops: []workload.Op{write(0, 9)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed() {
		t.Fatal("write conflicting with an in-doubt prepare committed")
	}

	// A write to an unrelated item is unaffected.
	res, err = c.Execute(ctx, 0, core.Request{Ops: []workload.Op{write(2, 11)}})
	if err != nil || !res.Committed() {
		t.Fatalf("disjoint write = %+v, err %v", res, err)
	}

	// Resolution (presumed abort: no decision exists) releases the lock.
	n, err := c.ResolveInDoubt(ctx)
	if err != nil || n != 1 {
		t.Fatalf("ResolveInDoubt = %d, %v; want 1 settled", n, err)
	}
	res, err = c.Execute(ctx, 0, core.Request{Ops: []workload.Op{write(0, 9)}})
	if err != nil || !res.Committed() {
		t.Fatalf("post-resolution write = %+v, err %v", res, err)
	}
	waitConsistent(t, c)
	expectValues(t, c, map[int]int64{0: 9, 2: 11})
}

func TestResolveInDoubtHonoursRecordedCommit(t *testing.T) {
	c := newTestCluster(t, 2)
	ctx := context.Background()
	gid := c.newGID()

	// Both participants prepared; the coordinator (partition 0) already
	// recorded COMMIT, but the decide never reached partition 1 — the router
	// died mid-propagation.
	prepareDirect(t, c, 0, gid, 0, map[int]int64{0: 21}) // global item 0
	prepareDirect(t, c, 1, gid, 0, map[int]int64{0: 22}) // global item 1
	r := c.liveReplica(0, 0)
	outcome, _, _, err := r.SubmitDecide(ctx, gid, c.Level(), true, map[int]int64{0: 21})
	if err != nil || outcome != core.OutcomeCommitted {
		t.Fatalf("coordinator decide = %v, %v", outcome, err)
	}

	// The resolver must learn the commit from the coordinator and finish the
	// partition-1 half — never presume abort over a recorded decision.
	if _, err := c.ResolveInDoubt(ctx); err != nil {
		t.Fatal(err)
	}
	waitConsistent(t, c)
	expectValues(t, c, map[int]int64{0: 21, 1: 22})
}

func TestInDoubtSurvivesCrashRecovery(t *testing.T) {
	c := newTestCluster(t, 2)
	ctx := context.Background()
	gid := c.newGID()
	prepareDirect(t, c, 1, gid, 0, map[int]int64{0: 33}) // global item 1 in-doubt

	// Crash and recover a server: state transfer must carry the in-doubt
	// prepare (certification locks included) to the recovered replica.
	c.Crash(2)
	if _, err := c.Recover(2); err != nil {
		t.Fatal(err)
	}

	// The lock still blocks conflicting writes cluster-wide.
	res, err := c.Execute(ctx, 2, core.Request{Ops: []workload.Op{write(1, 5)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed() {
		t.Fatal("write conflicting with a recovered in-doubt prepare committed")
	}

	// Presumed abort settles it; afterwards the write goes through.
	if n, err := c.ResolveInDoubt(ctx); err != nil || n != 1 {
		t.Fatalf("ResolveInDoubt = %d, %v", n, err)
	}
	res, err = c.Execute(ctx, 2, core.Request{Ops: []workload.Op{write(1, 5)}})
	if err != nil || !res.Committed() {
		t.Fatalf("post-resolution write = %+v, err %v", res, err)
	}
	waitConsistent(t, c)
	expectValues(t, c, map[int]int64{1: 5})
}

func TestCrossPartitionAtomicityUnderServerCrash(t *testing.T) {
	c := newTestCluster(t, 2)
	ctx := context.Background()

	// Commit a cross-partition update, then crash-and-recover every server
	// one at a time: both halves must survive everywhere, never one.
	res, err := c.Execute(ctx, 0, core.Request{Ops: []workload.Op{write(0, 1000), write(1, 1001)}})
	if err != nil || !res.Committed() {
		t.Fatalf("update = %+v, err %v", res, err)
	}
	waitConsistent(t, c)
	for i := 0; i < c.Size(); i++ {
		c.Crash(i)
		if _, err := c.Recover(i); err != nil {
			t.Fatalf("recover server %d: %v", i, err)
		}
	}
	waitConsistent(t, c)
	expectValues(t, c, map[int]int64{0: 1000, 1: 1001})
}

func TestReadOnlyFanout(t *testing.T) {
	c := newTestCluster(t, 3)
	ctx := context.Background()
	for item, v := range map[int]int64{0: 5, 1: 6, 2: 7} {
		if res, err := c.Execute(ctx, 0, core.Request{Ops: []workload.Op{write(item, v)}}); err != nil || !res.Committed() {
			t.Fatalf("seed write item %d: %+v, err %v", item, res, err)
		}
	}
	waitConsistent(t, c)
	res, err := c.Execute(ctx, 1, core.Request{Ops: []workload.Op{read(0), read(1), read(2)}, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadValues[0] != 5 || res.ReadValues[1] != 6 || res.ReadValues[2] != 7 {
		t.Fatalf("fan-out read = %v", res.ReadValues)
	}
	if len(res.FreshnessVec) != 3 {
		t.Fatalf("FreshnessVec = %v", res.FreshnessVec)
	}
}

func TestValueAndErrNotFound(t *testing.T) {
	c := newTestCluster(t, 4)
	if _, err := c.Value(0, 64); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("out-of-range Value error = %v", err)
	}
	if _, err := c.Execute(context.Background(), 0, core.Request{Ops: []workload.Op{write(64, 1), write(0, 1)}}); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("out-of-range Execute error = %v", err)
	}
}
