package partition

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/gcs/transport"
)

// gidBase namespaces router-assigned transaction ids away from replica-local
// ids ((index+1)<<40 | n) and the fuzzer's ids (0xF5<<40 | n), so a decomposed
// transaction can never collide with a locally delegated one in any
// partition's applied set.
const gidBase = uint64(0xD0) << 40

// Cluster is a partitioned replicated database: P independent core clusters
// (one replica group and total order per partition) sharing one simulated
// wire, plus the router state for cross-partition transactions.  Server i
// hosts replica i of every partition, so crashes and recoveries are
// whole-server events applied to all partitions together.
//
// With one partition the Cluster is a transparent pass-through around a
// single core.Cluster built from the unmodified configuration: no mux, no
// transaction decomposition, no freshness vectors — the exact code paths of
// an unpartitioned deployment.
type Cluster struct {
	pmap  Map
	parts []*core.Cluster
	base  *transport.MemNetwork // nil when P == 1
	mux   *transport.Mux        // nil when P == 1
	gids  atomic.Uint64
	// execTimeout mirrors the config's Execute bound; it also bounds the
	// router's orphaned-decide grace window (see decideContext).
	execTimeout time.Duration
}

// New builds and starts a partitioned cluster from the core configuration
// (cfg.Partitions selects the partition count; zero or one means
// unpartitioned).  Partitioned operation requires the certification technique
// and a group-communication safety level: the router's ordered two-phase
// commit and the freshness vector both live in the partitions' total orders.
func New(cfg core.ClusterConfig) (*Cluster, error) {
	p := cfg.Partitions
	if p < 1 {
		p = 1
	}
	et := cfg.ExecTimeout
	if et <= 0 {
		et = 10 * time.Second // core's own Execute default
	}
	if p == 1 {
		single, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		return &Cluster{pmap: NewMap(itemsOf(cfg), 1), parts: []*core.Cluster{single}, execTimeout: et}, nil
	}

	if cfg.Technique != core.TechCertification {
		return nil, fmt.Errorf("partition: %d partitions require the certification technique (got %v)", p, cfg.Technique)
	}
	if !cfg.Level.UsesGroupCommunication() {
		return nil, fmt.Errorf("partition: %d partitions require a group-communication safety level (got %v)", p, cfg.Level)
	}
	items := itemsOf(cfg)
	if p > items {
		return nil, fmt.Errorf("partition: %d partitions exceed the %d-item keyspace", p, items)
	}

	// One simulated wire for the whole server set; each partition's replica
	// stack runs on its own namespaced virtual network over it, so base-level
	// fault injection (latency, loss, partitions, crashes) hits every
	// partition at once like a shared NIC.
	netOpts := []transport.MemOption{transport.WithSeed(cfg.Seed)}
	if cfg.NetworkLatency > 0 {
		netOpts = append(netOpts, transport.WithLatency(cfg.NetworkLatency))
	}
	if cfg.NetworkJitter > 0 {
		netOpts = append(netOpts, transport.WithJitter(cfg.NetworkJitter))
	}
	base := transport.NewMemNetwork(netOpts...)
	mux := transport.NewMux(base)

	c := &Cluster{pmap: NewMap(items, p), base: base, mux: mux, execTimeout: et}
	for i := 0; i < p; i++ {
		sub := cfg
		sub.Partitions = 1
		sub.Items = c.pmap.Size(i)
		sub.Network = mux.Instance(fmt.Sprintf("p%d", i))
		part, err := core.NewCluster(sub)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("partition: start partition %d: %w", i, err)
		}
		c.parts = append(c.parts, part)
	}
	return c, nil
}

// itemsOf mirrors core's Items default so the map agrees with the cluster.
func itemsOf(cfg core.ClusterConfig) int {
	if cfg.Items <= 0 {
		return 1024
	}
	return cfg.Items
}

// Map returns the partition map.
func (c *Cluster) Map() Map { return c.pmap }

// NumPartitions returns the number of partitions.
func (c *Cluster) NumPartitions() int { return len(c.parts) }

// Part returns partition p's core cluster (nil when out of range); tests and
// the fuzzer use it for direct per-partition access.
func (c *Cluster) Part(p int) *core.Cluster {
	if p < 0 || p >= len(c.parts) {
		return nil
	}
	return c.parts[p]
}

// BaseNetwork returns the network carrying every partition's traffic, for
// fault injection: the shared base wire when partitioned, the single
// partition's own network otherwise.
func (c *Cluster) BaseNetwork() *transport.MemNetwork {
	if c.base != nil {
		return c.base
	}
	return c.parts[0].Network()
}

// Size returns the number of replica servers (per partition — every server
// hosts one replica of each partition).
func (c *Cluster) Size() int { return c.parts[0].Size() }

// Level returns the configured (canonicalised) safety level.
func (c *Cluster) Level() core.SafetyLevel { return c.parts[0].Level() }

// Technique returns the replication technique.
func (c *Cluster) Technique() core.TechniqueID { return c.parts[0].Technique() }

// LiveCount returns the number of non-crashed servers.
func (c *Cluster) LiveCount() int { return c.parts[0].LiveCount() }

// ReplicaID returns the network address of server i ("" when out of range).
func (c *Cluster) ReplicaID(i int) string {
	if r := c.parts[0].Replica(i); r != nil {
		return r.ID()
	}
	return ""
}

// ReplicaCrashed reports whether server i is crashed (false out of range).
func (c *Cluster) ReplicaCrashed(i int) bool {
	if r := c.parts[0].Replica(i); r != nil {
		return r.Crashed()
	}
	return false
}

// Crash crash-stops server i: replica i of every partition goes down together
// (a server crash takes all co-located partition replicas with it).
func (c *Cluster) Crash(i int) {
	for _, part := range c.parts {
		part.Crash(i)
	}
}

// Recover restarts server i in every partition, each partition performing its
// own state transfer from its most advanced live replica.  It returns the
// total number of replayed end-to-end messages; the first error wins but
// every partition is still attempted (a partially recovered server is better
// than a stranded one).
func (c *Cluster) Recover(i int) (int, error) {
	total := 0
	var firstErr error
	for _, part := range c.parts {
		n, err := part.Recover(i)
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// Suspect tells server observer's replicas to treat server suspect as crashed,
// in every partition.
func (c *Cluster) Suspect(observer, suspect int) {
	for _, part := range c.parts {
		obs := part.Replica(observer)
		sus := part.Replica(suspect)
		if obs == nil || sus == nil {
			continue
		}
		obs.Suspect(sus.ID())
	}
}

// Unsuspect reverses Suspect in every partition (a recovered server is taken
// back by the survivors' broadcast layers).
func (c *Cluster) Unsuspect(observer, suspect int) {
	for _, part := range c.parts {
		obs := part.Replica(observer)
		sus := part.Replica(suspect)
		if obs == nil || sus == nil {
			continue
		}
		obs.Unsuspect(sus.ID())
	}
}

// AppliedSeq returns the applied broadcast sequence of server i's replica of
// partition p (0 when either index is out of range).  It is a lock-free
// atomic read, cheap enough for per-request routing decisions.
func (c *Cluster) AppliedSeq(i, p int) uint64 {
	if p < 0 || p >= len(c.parts) {
		return 0
	}
	if r := c.parts[p].Replica(i); r != nil {
		return r.LastAppliedSeq()
	}
	return 0
}

// DurableLSN sums server i's per-partition database-log durable frontiers: a
// coarse "how much of this server survives a crash" measure used by the fuzz
// harness to pick recovery donors (per-partition LSNs are not comparable
// across partitions, but the sum orders servers well enough for a heuristic).
func (c *Cluster) DurableLSN(i int) uint64 {
	var total uint64
	for _, part := range c.parts {
		if r := part.Replica(i); r != nil {
			total += r.DurableLSN()
		}
	}
	return total
}

// Value returns the committed value of global item at server i, routed to the
// owning partition.
func (c *Cluster) Value(i, item int) (int64, error) {
	if item < 0 || item >= c.pmap.Items() {
		return 0, fmt.Errorf("%w: item %d", core.ErrNotFound, item)
	}
	return c.parts[c.pmap.Owner(item)].Value(i, c.pmap.Local(item))
}

// WaitConsistent blocks until every live replica of every partition converged,
// or until ctx is done (see core.Cluster.WaitConsistent).
func (c *Cluster) WaitConsistent(ctx context.Context) error {
	for _, part := range c.parts {
		if err := part.WaitConsistent(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Consistent reports whether every partition's live replicas currently agree.
func (c *Cluster) Consistent() bool {
	for _, part := range c.parts {
		if !part.Consistent() {
			return false
		}
	}
	return true
}

// TotalStats aggregates the replica counters across every partition.
func (c *Cluster) TotalStats() core.ReplicaStats {
	var total core.ReplicaStats
	for _, part := range c.parts {
		s := part.TotalStats()
		total.Executed += s.Executed
		total.Committed += s.Committed
		total.Aborted += s.Aborted
		total.Delivered += s.Delivered
		total.LazyApply += s.LazyApply
		total.Queries += s.Queries
		total.AcksSent += s.AcksSent
	}
	return total
}

// Close shuts every partition down and stops the shared-wire mux.
func (c *Cluster) Close() {
	for _, part := range c.parts {
		part.Close()
	}
	if c.mux != nil {
		c.mux.Close()
	}
}

// WaitDurable blocks until the commit record named by res is durable in the
// log that holds it (res.Delegate's replica of res.CommitPartition), forcing
// it on demand; see core.Replica.WaitDurable.
func (c *Cluster) WaitDurable(ctx context.Context, res core.Result) error {
	p := res.CommitPartition
	if p < 0 || p >= len(c.parts) {
		return fmt.Errorf("%w: partition %d", core.ErrNotFound, p)
	}
	r := c.parts[p].ReplicaByID(res.Delegate)
	if r == nil {
		return fmt.Errorf("%w: delegate %s", core.ErrNotFound, res.Delegate)
	}
	return r.WaitDurable(ctx, res.CommitLSN)
}

// newGID assigns a router transaction id in the router's namespace.
func (c *Cluster) newGID() uint64 { return gidBase | c.gids.Add(1) }

// liveReplica returns a non-crashed replica of partition p, preferring the
// given server index, or nil when the whole partition is down.
func (c *Cluster) liveReplica(p, prefer int) *core.Replica {
	part := c.parts[p]
	n := part.Size()
	for k := 0; k < n; k++ {
		i := (prefer + k) % n
		if r := part.Replica(i); r != nil && !r.Crashed() {
			return r
		}
	}
	return nil
}
