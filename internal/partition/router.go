package partition

import (
	"context"
	"fmt"
	"sync"

	"groupsafe/internal/core"
	"groupsafe/internal/workload"
)

// This file is the router: the layer between the public API and the
// per-partition core clusters.  It classifies each request, translates global
// item indices into the owning partitions' local spaces, and composes the
// per-partition primitives (core.Replica.SnapshotReads / SubmitCertified /
// SubmitPrepare / SubmitDecide) into one client-visible transaction.
//
// Paths, in increasing cost:
//
//   - unpartitioned (P == 1): pass-through to the single core cluster — the
//     exact unchanged code path of an unpartitioned deployment;
//   - single-partition (all statically known items in one partition, no
//     Compute hook): the request is forwarded whole to the owning partition,
//     which executes it like any local transaction — one broadcast, no 2PC;
//   - read-only multi-partition: snapshot reads fan out to every touched
//     partition, each reporting its own freshness token (the vector);
//   - cross-partition update: the router runs the read phase itself, invokes
//     Compute, decomposes the write set, and drives the ordered two-phase
//     commit — prepares through every participant's total order, the
//     coordinator partition's decide record as the commit point, presumed
//     abort everywhere else.
type routed struct {
	level    core.SafetyLevel
	reads    map[int][]int          // partition -> local read items (deduped)
	writes   map[int]map[int]int64  // partition -> local write set
	readVals map[int]int64          // global item -> value (router read phase)
	readVers map[int]map[int]uint64 // partition -> local item -> version
	tokens   map[int]uint64         // partition -> freshness token observed
}

// Execute routes one client transaction; delegate is the preferred server
// index (the same replica slot is preferred in every touched partition).
func (c *Cluster) Execute(ctx context.Context, delegate int, req core.Request) (core.Result, error) {
	if len(c.parts) == 1 {
		// Unpartitioned pass-through.  A vector floor degenerates to the
		// scalar (entry 0 IS the only total order); core ignores the vector.
		if len(req.MinFreshnessVec) > 0 && req.MinFreshnessVec[0] > req.MinFreshness {
			req.MinFreshness = req.MinFreshnessVec[0]
		}
		return c.parts[0].Execute(ctx, delegate, req)
	}

	if req.ReadOnly && requestMayWrite(req) {
		return core.Result{}, fmt.Errorf("%w: txn %d", core.ErrReadOnlyWrites, req.ID)
	}
	for _, op := range req.Ops {
		if op.Item < 0 || op.Item >= c.pmap.Items() {
			return core.Result{}, fmt.Errorf("%w: item %d out of range", core.ErrNotFound, op.Item)
		}
	}
	if req.ID == 0 {
		req.ID = c.newGID()
	}

	touched := c.touchedPartitions(req.Ops)
	if req.Compute == nil {
		switch len(touched) {
		case 0:
			// No operations at all: any partition can answer (core returns an
			// empty committed result with that partition's freshness token).
			return c.forwardSingle(ctx, delegate, req, 0)
		case 1:
			return c.forwardSingle(ctx, delegate, req, touched[0])
		}
	}
	if !requestMayWrite(req) {
		return c.executeReadOnlyFanout(ctx, delegate, req, touched)
	}
	return c.executeUpdate(ctx, delegate, req, touched)
}

// requestMayWrite mirrors core's classification: the request can update the
// database if it contains a write operation or a Compute hook (which could
// emit one).
func requestMayWrite(req core.Request) bool {
	if req.Compute != nil {
		return true
	}
	for _, op := range req.Ops {
		if op.Write {
			return true
		}
	}
	return false
}

// touchedPartitions returns the sorted set of partitions owning any item in
// ops.
func (c *Cluster) touchedPartitions(ops []workload.Op) []int {
	seen := make([]bool, len(c.parts))
	for _, op := range ops {
		seen[c.pmap.Owner(op.Item)] = true
	}
	out := make([]int, 0, 2)
	for p, s := range seen {
		if s {
			out = append(out, p)
		}
	}
	return out
}

// floorFor resolves the freshness floor for partition p: the scalar floor
// applies to every touched partition, a vector entry strengthens its own.
func floorFor(req *core.Request, p int) uint64 {
	floor := req.MinFreshness
	if p < len(req.MinFreshnessVec) && req.MinFreshnessVec[p] > floor {
		floor = req.MinFreshnessVec[p]
	}
	return floor
}

// forwardSingle sends the whole request to the one partition owning every
// item it names: the partition executes it exactly like a local transaction
// (snapshot reads, or one certified broadcast).  Only the item indices are
// rewritten on the way in and the read values on the way out.
func (c *Cluster) forwardSingle(ctx context.Context, delegate int, req core.Request, p int) (core.Result, error) {
	sub := req
	sub.MinFreshness = floorFor(&req, p)
	sub.MinFreshnessVec = nil
	if len(req.Ops) > 0 {
		ops := make([]workload.Op, len(req.Ops))
		for i, op := range req.Ops {
			op.Item = c.pmap.Local(op.Item)
			ops[i] = op
		}
		sub.Ops = ops
	}
	res, err := c.parts[p].Execute(ctx, delegate, sub)
	if err != nil {
		return res, err
	}
	if len(res.ReadValues) > 0 {
		global := make(map[int]int64, len(res.ReadValues))
		for local, v := range res.ReadValues {
			global[c.pmap.Global(p, local)] = v
		}
		res.ReadValues = global
	}
	res.CommitPartition = p
	vec := make([]uint64, len(c.parts))
	vec[p] = res.Freshness
	res.FreshnessVec = vec
	return res, nil
}

// executeReadOnlyFanout serves a multi-partition query: each touched
// partition reads its items from one local MVCC snapshot (with the resolved
// freshness floor) and reports its own token.  The per-partition reads are
// individually consistent cuts; the transaction-wide guarantee is exactly the
// freshness vector — there is no cross-partition snapshot.
func (c *Cluster) executeReadOnlyFanout(ctx context.Context, delegate int, req core.Request, touched []int) (core.Result, error) {
	level, err := c.resolveLevel(delegate, req.Safety)
	if err != nil {
		return core.Result{}, err
	}
	items := make(map[int][]int, len(touched))
	for _, op := range req.Ops {
		p := c.pmap.Owner(op.Item)
		items[p] = appendUnique(items[p], c.pmap.Local(op.Item))
	}

	var mu sync.Mutex
	readVals := make(map[int]int64, len(req.Ops))
	vec := make([]uint64, len(c.parts))
	var wg sync.WaitGroup
	var firstErr error
	for _, p := range touched {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := c.liveReplica(p, delegate)
			if r == nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("partition %d: %w", p, core.ErrCrashed)
				}
				mu.Unlock()
				return
			}
			vals, _, token, err := r.SnapshotReads(ctx, items[p], floorFor(&req, p), req.MaxStaleness, true)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for local, v := range vals {
				readVals[c.pmap.Global(p, local)] = v
			}
			vec[p] = token
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return core.Result{}, firstErr
	}
	return core.Result{
		TxnID:        req.ID,
		Outcome:      core.OutcomeCommitted,
		ReadValues:   readVals,
		Delegate:     c.ReplicaID(delegate),
		Level:        level,
		Freshness:    maxVec(vec),
		FreshnessVec: vec,
	}, nil
}

// executeUpdate is the cross-partition update path: router-side read phase,
// Compute, decomposition, and — when more than one partition participates —
// the ordered two-phase commit.
func (c *Cluster) executeUpdate(ctx context.Context, delegate int, req core.Request, touched []int) (core.Result, error) {
	level, err := c.resolveLevel(delegate, req.Safety)
	if err != nil {
		return core.Result{}, err
	}
	rt := &routed{
		level:    level,
		reads:    make(map[int][]int),
		writes:   make(map[int]map[int]int64),
		readVals: make(map[int]int64),
		readVers: make(map[int]map[int]uint64),
		tokens:   make(map[int]uint64),
	}
	c.classifyOps(rt, req.Ops)

	// Round 1: snapshot-read every partition with read operations.  Each
	// partition's (item, version) pairs come from one atomic snapshot; the
	// versions are what its certification will validate at prepare time.
	if err := c.readPhase(ctx, delegate, &req, rt); err != nil {
		return core.Result{}, err
	}

	// Compute runs at the router over the merged reads; extra reads it emits
	// (rare) trigger one more fan-out round, extra writes join the write set.
	if req.Compute != nil {
		extra := req.Compute(rt.readVals)
		for _, op := range extra {
			if op.Item < 0 || op.Item >= c.pmap.Items() {
				return core.Result{}, fmt.Errorf("%w: item %d out of range", core.ErrNotFound, op.Item)
			}
		}
		rt.reads = make(map[int][]int)
		c.classifyOps(rt, extra)
		for p, items := range rt.reads {
			fresh := items[:0]
			for _, it := range items {
				if _, seen := rt.readVers[p][it]; !seen {
					fresh = append(fresh, it)
				}
			}
			if len(fresh) == 0 {
				delete(rt.reads, p)
			} else {
				rt.reads[p] = fresh
			}
		}
		if len(rt.reads) > 0 {
			if err := c.readPhase(ctx, delegate, &req, rt); err != nil {
				return core.Result{}, err
			}
		}
	}

	// A Compute hook that emitted nothing: answer from the snapshots.
	if len(rt.writes) == 0 {
		vec := make([]uint64, len(c.parts))
		for p, tok := range rt.tokens {
			vec[p] = tok
		}
		return core.Result{
			TxnID:        req.ID,
			Outcome:      core.OutcomeCommitted,
			ReadValues:   rt.readVals,
			Delegate:     c.ReplicaID(delegate),
			Level:        level,
			Freshness:    maxVec(vec),
			FreshnessVec: vec,
		}, nil
	}

	participants := c.participants(rt)
	if len(participants) == 1 {
		return c.commitSingle(ctx, delegate, req.ID, rt, participants[0])
	}
	return c.commit2PC(ctx, delegate, req.ID, rt, participants)
}

// classifyOps merges ops into the routed read/write sets (local indices).
func (c *Cluster) classifyOps(rt *routed, ops []workload.Op) {
	for _, op := range ops {
		p := c.pmap.Owner(op.Item)
		local := c.pmap.Local(op.Item)
		if op.Write {
			w := rt.writes[p]
			if w == nil {
				w = make(map[int]int64)
				rt.writes[p] = w
			}
			w[local] = op.Value
		} else {
			rt.reads[p] = appendUnique(rt.reads[p], local)
		}
	}
}

// readPhase fans the pending rt.reads out to their partitions, merging values
// (global keys), versions (local keys, first observation wins) and tokens.
func (c *Cluster) readPhase(ctx context.Context, delegate int, req *core.Request, rt *routed) error {
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for p, items := range rt.reads {
		wg.Add(1)
		go func(p int, items []int) {
			defer wg.Done()
			r := c.liveReplica(p, delegate)
			if r == nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("partition %d: %w", p, core.ErrCrashed)
				}
				mu.Unlock()
				return
			}
			// The read phase of an update is invisible to the client, so a
			// staleness lease (query semantics) never applies here.
			vals, vers, token, err := r.SnapshotReads(ctx, items, floorFor(req, p), 0, false)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			pv := rt.readVers[p]
			if pv == nil {
				pv = make(map[int]uint64, len(vers))
				rt.readVers[p] = pv
			}
			for local, v := range vals {
				rt.readVals[c.pmap.Global(p, local)] = v
			}
			for local, ver := range vers {
				if _, seen := pv[local]; !seen {
					pv[local] = ver
				}
			}
			if token > rt.tokens[p] {
				rt.tokens[p] = token
			}
		}(p, items)
	}
	wg.Wait()
	return firstErr
}

// participants returns the sorted partitions taking part in the commit: every
// partition with writes, plus every partition whose reads must be validated
// (certification is what makes the cross-partition history serializable, so
// read-only participants vote too).
func (c *Cluster) participants(rt *routed) []int {
	out := make([]int, 0, len(rt.writes)+len(rt.readVers))
	for p := range c.parts {
		if _, ok := rt.writes[p]; ok {
			out = append(out, p)
			continue
		}
		if len(rt.readVers[p]) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// commitSingle finishes a router-executed transaction whose reads and writes
// all live in one partition: a single certified broadcast, no 2PC.
func (c *Cluster) commitSingle(ctx context.Context, delegate int, gid uint64, rt *routed, p int) (core.Result, error) {
	r := c.liveReplica(p, delegate)
	if r == nil {
		return core.Result{}, fmt.Errorf("partition %d: %w", p, core.ErrCrashed)
	}
	outcome, lsn, seq, err := r.SubmitCertified(ctx, gid, rt.level, rt.readVers[p], rt.writes[p])
	if err != nil {
		return core.Result{}, err
	}
	vec := make([]uint64, len(c.parts))
	for q, tok := range rt.tokens {
		vec[q] = tok
	}
	vec[p] = seq
	return core.Result{
		TxnID:           gid,
		Outcome:         outcome,
		ReadValues:      rt.readVals,
		Delegate:        r.ID(),
		Level:           rt.level,
		CommitLSN:       lsn,
		CommitPartition: p,
		Freshness:       maxVec(vec),
		FreshnessVec:    vec,
	}, nil
}

// commit2PC drives the ordered two-phase commit across the participants:
//
//  1. every participant's prepare rides its own total order; each partition
//     certifies deterministically and stages the sub-transaction in-doubt
//     (a forced KindPrepare record at the transaction's safety level), so
//     the vote survives any minority of replica crashes;
//  2. the decide is submitted to the COORDINATOR partition first (the lowest
//     participant id).  Its recorded decision — first decision wins against
//     the presumed-abort resolver — is the transaction's commit point and
//     the authoritative outcome;
//  3. the authoritative outcome is propagated to the remaining participants.
//     Propagation is retried across live replicas; a participant that stays
//     unreachable keeps its sub-transaction in-doubt (its certification
//     locks block conflicting transactions) until ResolveInDoubt or a later
//     propagation settles it — never a unilateral guess.
//
// Abort decisions are recorded at the coordinator too: presumed abort only
// presumes when no decision exists, and recording it closes the race with a
// prepare still in flight.
func (c *Cluster) commit2PC(ctx context.Context, delegate int, gid uint64, rt *routed, participants []int) (core.Result, error) {
	coord := participants[0]
	var mu sync.Mutex
	var wg sync.WaitGroup
	voteYes := true
	var prepErr error
	prepSeq := make(map[int]uint64, len(participants))
	for _, p := range participants {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := c.liveReplica(p, delegate)
			var outcome core.Outcome
			var seq uint64
			var err error
			if r == nil {
				err = fmt.Errorf("partition %d: %w", p, core.ErrCrashed)
			} else {
				outcome, seq, err = r.SubmitPrepare(ctx, gid, rt.level, coord, rt.readVers[p], rt.writes[p])
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				voteYes = false
				if prepErr == nil {
					prepErr = err
				}
				return
			}
			if outcome != core.OutcomeCommitted {
				voteYes = false
			}
			prepSeq[p] = seq
		}(p)
	}
	wg.Wait()

	// The coordinator's decide is the commit point.  When the caller's
	// context has already died (a prepare timed out), the decision still must
	// be recorded — otherwise every yes-voting participant stays locked until
	// the in-doubt resolver happens by — so the decide gets its own bounded
	// context.
	decideCtx, cancel := c.decideContext(ctx)
	defer cancel()
	committed, coordLSN, coordSeq, coordID, decErr := c.decideAt(decideCtx, coord, delegate, gid, rt.level, voteYes, rt.writes[coord])
	if decErr != nil {
		if voteYes {
			// In-doubt: the decision did not record.  Surface the error; the
			// participants' locks are settled by ResolveInDoubt.
			return core.Result{}, fmt.Errorf("partition: txn %d in-doubt at coordinator %d: %w", gid, coord, decErr)
		}
		return core.Result{}, prepErr
	}

	// Propagate the authoritative outcome to the other participants.
	var pwg sync.WaitGroup
	for _, p := range participants {
		if p == coord {
			continue
		}
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			_, _, seq, _, err := c.decideAt(decideCtx, p, delegate, gid, rt.level, committed, rt.writes[p])
			if err == nil {
				mu.Lock()
				prepSeq[p] = seq
				mu.Unlock()
			}
		}(p)
	}
	pwg.Wait()

	outcome := core.OutcomeAborted
	if committed {
		outcome = core.OutcomeCommitted
	}
	if !committed && prepErr != nil {
		return core.Result{}, prepErr
	}
	vec := make([]uint64, len(c.parts))
	for q, tok := range rt.tokens {
		vec[q] = tok
	}
	for p, seq := range prepSeq {
		if seq > vec[p] {
			vec[p] = seq
		}
	}
	vec[coord] = coordSeq
	return core.Result{
		TxnID:           gid,
		Outcome:         outcome,
		ReadValues:      rt.readVals,
		Delegate:        coordID,
		Level:           rt.level,
		CommitLSN:       coordLSN,
		CommitPartition: coord,
		Freshness:       maxVec(vec),
		FreshnessVec:    vec,
	}, nil
}

// decideAt submits the decision for gid through partition p's total order,
// retrying across p's live replicas, and returns the outcome actually
// recorded there (true = committed).
func (c *Cluster) decideAt(ctx context.Context, p, prefer int, gid uint64, level core.SafetyLevel, commit bool, writes map[int]int64) (bool, uint64, uint64, string, error) {
	n := c.parts[p].Size()
	var lastErr error
	for k := 0; k < n; k++ {
		i := (prefer + k) % n
		r := c.parts[p].Replica(i)
		if r == nil || r.Crashed() {
			continue
		}
		outcome, lsn, seq, err := r.SubmitDecide(ctx, gid, level, commit, writes)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		return outcome == core.OutcomeCommitted, lsn, seq, r.ID(), nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("partition %d: %w", p, core.ErrCrashed)
	}
	return false, 0, 0, "", lastErr
}

// decideContext derives the context bounding the decide round: the caller's
// context when it is still alive, a fresh one bounded by the cluster's
// Execute timeout when it already died mid-prepare (the decision must still
// be recorded to release the participants' certification locks, but a
// partition that stays unreachable is the in-doubt resolver's business, not
// an unbounded wait here).
func (c *Cluster) decideContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx.Err() == nil {
		return ctx, func() {}
	}
	return context.WithTimeout(context.Background(), c.execTimeout)
}

// resolveLevel resolves a per-request safety override against any live
// replica (every partition runs the identical technique and level machinery).
func (c *Cluster) resolveLevel(delegate int, override *core.SafetyLevel) (core.SafetyLevel, error) {
	for p := range c.parts {
		if r := c.liveReplica(p, delegate); r != nil {
			return r.ResolveLevel(override)
		}
	}
	return 0, core.ErrCrashed
}

// ResolveInDoubt runs the presumed-abort resolver once: it scans every
// partition for prepared-but-undecided transactions, asks each transaction's
// coordinator partition for the authoritative decision (submitting an abort
// decide — which records an abort only if no decision exists yet, and
// otherwise returns the decision already made), and propagates that decision
// to the partition holding the in-doubt prepare.  It returns the number of
// in-doubt transactions settled.
//
// The resolver is safe to run at any time, concurrently with live traffic and
// with a crashed coordinator's own client-side decide: the coordinator
// partition's total order serialises both, and whichever decision lands first
// wins.  A partition that is entirely down is skipped and retried on the next
// run.
func (c *Cluster) ResolveInDoubt(ctx context.Context) (int, error) {
	if len(c.parts) == 1 {
		return 0, nil
	}
	level := c.Level()
	resolved := 0
	var firstErr error
	for p := range c.parts {
		r := c.liveReplica(p, 0)
		if r == nil {
			continue
		}
		for _, gid := range r.DB().PreparedGIDs() {
			info, ok := r.DB().PreparedInfo(gid)
			if !ok {
				continue
			}
			// Ask the coordinator: presumed abort means "abort unless a
			// decision is already recorded"; the recorded decision comes back
			// as the authoritative outcome either way.
			committed, _, _, _, err := c.decideAt(ctx, info.Coord, 0, gid, level, false, nil)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			writes := make(map[int]int64, len(info.Writes))
			for _, w := range info.Writes {
				writes[w.Item] = w.Value
			}
			if _, _, _, _, err := c.decideAt(ctx, p, 0, gid, level, committed, writes); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			resolved++
		}
	}
	return resolved, firstErr
}

// appendUnique appends v to s unless already present (read sets are tiny;
// linear scan beats a map).
func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// maxVec returns the largest entry of the freshness vector.
func maxVec(vec []uint64) uint64 {
	var m uint64
	for _, v := range vec {
		if v > m {
			m = v
		}
	}
	return m
}
