// Package partition implements the partitioned keyspace on top of the core
// replicated engine: a static hash partition map, one core.Cluster (its own
// replica group, total order and write-ahead logs) per partition sharing a
// single simulated wire, and a router that decomposes client transactions
// into per-partition sub-transactions.
//
// Single-partition transactions take the unchanged core fast path (one atomic
// broadcast, deterministic certification).  Cross-partition updates run an
// ordered two-phase commit whose prepare and decide records ride each
// participant's own total order; the coordinator partition's decide record is
// the commit point, and recovery is presumed-abort (see ResolveInDoubt).
// Read-only transactions fan out to per-partition MVCC snapshots and report a
// per-partition freshness vector.
package partition

// Map is the static partition map: it assigns every global item to exactly
// one partition by hash (modulo), and gives each partition a dense local item
// space so a partition's core cluster stores only the items it owns.
//
// Global item g lives on partition g mod P at local index g div P; partition
// p therefore owns the arithmetic sequence p, p+P, p+2P, ...  The map is pure
// arithmetic — no state, no lookups — so routing a transaction costs nothing
// and every layer (router, fuzzer, tools) derives identical placement.
type Map struct {
	items int
	parts int
}

// NewMap builds the partition map for a database of items global items split
// into parts partitions.  parts < 1 is treated as 1 (unpartitioned).
func NewMap(items, parts int) Map {
	if parts < 1 {
		parts = 1
	}
	return Map{items: items, parts: parts}
}

// Items returns the global database size.
func (m Map) Items() int { return m.items }

// NumPartitions returns the number of partitions.
func (m Map) NumPartitions() int { return m.parts }

// Owner returns the partition that owns global item g.  The caller must have
// validated 0 <= g < Items.
func (m Map) Owner(g int) int { return g % m.parts }

// Local translates global item g into the owning partition's local index.
func (m Map) Local(g int) int { return g / m.parts }

// Global translates a (partition, local index) pair back to the global item.
func (m Map) Global(part, local int) int { return local*m.parts + part }

// Size returns the number of items partition part owns: the count of g in
// [0, Items) with g mod P == part.
func (m Map) Size(part int) int {
	if part < 0 || part >= m.parts {
		return 0
	}
	return (m.items - part + m.parts - 1) / m.parts
}
