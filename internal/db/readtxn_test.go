package db

import (
	"sync"
	"testing"
	"time"

	"groupsafe/internal/storage"
)

func TestReadTxnNoDirtyReads(t *testing.T) {
	d, err := Open(Config{Items: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	seed, err := d.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Write(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	// An uncommitted writer's buffered update must be invisible.
	w, err := d.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(1, 99); err != nil {
		t.Fatal(err)
	}
	rt, err := d.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rt.Read(1); v != 10 {
		t.Fatalf("dirty read: %d", v)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// Repeatable: the same snapshot still sees the pre-commit value.
	if v, _ := rt.Read(1); v != 10 {
		t.Fatalf("snapshot read not repeatable after concurrent commit: %d", v)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh snapshot sees the committed update.
	rt2, err := d.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if v, _ := rt2.Read(1); v != 99 {
		t.Fatalf("fresh snapshot = %d, want 99", v)
	}
	if got := d.Stats().ReadTxns; got != 2 {
		t.Fatalf("ReadTxns counter = %d, want 2", got)
	}
}

func TestReadTxnNeverBlocksBehindExclusiveLock(t *testing.T) {
	d, err := Open(Config{Items: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	w, err := d.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	// The writer holds the exclusive 2PL lock on item 0 for the whole test.
	if err := w.Write(0, 7); err != nil {
		t.Fatal(err)
	}

	done := make(chan int64, 1)
	go func() {
		rt, err := d.BeginRead()
		if err != nil {
			done <- -1
			return
		}
		defer rt.Close()
		v, _ := rt.Read(0)
		done <- v
	}()
	select {
	case v := <-done:
		if v != 0 {
			t.Fatalf("read = %d, want pre-write 0", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read-only transaction blocked behind an exclusive lock")
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestReadTxnWriteStormNeverAborts(t *testing.T) {
	d, err := Open(Config{Items: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for wk := 0; wk < 4; wk++ {
		writers.Add(1)
		go func(wk int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				txn, err := d.Begin(0)
				if err != nil {
					return
				}
				_ = txn.Write((wk*7+i)%32, int64(i))
				_ = txn.Write((wk*7+i+1)%32, int64(i))
				_ = txn.Commit()
			}
		}(wk)
	}

	var readers sync.WaitGroup
	for rk := 0; rk < 4; rk++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for n := 0; n < 100; n++ {
				rt, err := d.BeginRead()
				if err != nil {
					t.Errorf("BeginRead: %v", err)
					return
				}
				for i := 0; i < 32; i++ {
					v1, ver1, err1 := rt.ReadVersioned(i)
					v2, ver2, err2 := rt.ReadVersioned(i)
					if err1 != nil || err2 != nil || v1 != v2 || ver1 != ver2 {
						t.Errorf("non-repeatable read under storm: item %d", i)
						rt.Close()
						return
					}
				}
				rt.Close()
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	if d.Store().LiveSnaps() != 0 {
		t.Fatal("read transactions leaked snapshots")
	}
}

func TestReadTxnGCKeepsLiveSnapshotAcrossCrashRecover(t *testing.T) {
	d, err := Open(Config{Items: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.ApplyWriteSet(1, storage.WriteSet{0: 11}); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}

	// A snapshot taken after recovery pins the recovered version through an
	// overwrite storm and explicit GC sweeps.
	rt, err := d.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 100; i++ {
		if _, err := d.ApplyWriteSet(uint64(i), storage.WriteSet{0: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	d.Store().GC()
	if v, _ := rt.Read(0); v != 11 {
		t.Fatalf("GC pruned a version visible to a live post-recovery snapshot: %d", v)
	}
	rt.Close()
	d.Store().GC()
	if n := d.Store().ChainLen(0); n != 1 {
		t.Fatalf("chain length after release = %d, want 1", n)
	}
	if v, _, _ := d.ReadVersioned(0); v != 100 {
		t.Fatalf("latest = %d, want 100", v)
	}
}
