package db

import (
	"sync/atomic"
	"testing"

	"groupsafe/internal/storage"
	"groupsafe/internal/wal"
)

// countingLog wraps a wal.Log and counts Sync calls.
type countingLog struct {
	wal.Log
	syncs int32
}

func (c *countingLog) Sync() error {
	atomic.AddInt32(&c.syncs, 1)
	return c.Log.Sync()
}

// TestBatchApplyForcesOnce installs a batch of certified write sets through
// the deferred-sync path and checks that the whole batch becomes durable with
// a single group-committed force, instead of one per transaction as
// ApplyWriteSet would issue under SyncOnCommit.
func TestBatchApplyForcesOnce(t *testing.T) {
	log := &countingLog{Log: wal.NewMemLog()}
	d, err := Open(Config{Items: 64, Policy: SyncOnCommit, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const batch = 8
	var last wal.LSN
	for i := 1; i <= batch; i++ {
		applied, lsn, err := d.ApplyWriteSetDeferred(uint64(i), storage.WriteSet{i: int64(100 + i)})
		if err != nil || !applied {
			t.Fatalf("deferred apply %d = (%v, %v)", i, applied, err)
		}
		if lsn <= last {
			t.Fatalf("LSNs must advance: txn %d got %d after %d", i, lsn, last)
		}
		last = lsn
	}
	if got := atomic.LoadInt32(&log.syncs); got != 0 {
		t.Fatalf("deferred applies issued %d forces, want 0", got)
	}
	if err := d.ForceTo(last); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&log.syncs); got != 1 {
		t.Fatalf("batch force issued %d syncs, want 1", got)
	}

	// A second force over the same prefix is a no-op (group committer).
	if err := d.ForceTo(last); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&log.syncs); got != 1 {
		t.Fatalf("re-forcing a durable prefix synced again (%d syncs)", got)
	}
}

// TestBatchApplyDurableAfterCrash checks that a batch forced once recovers
// completely: every transaction of the batch is present after the crash.
func TestBatchApplyDurableAfterCrash(t *testing.T) {
	mem := wal.NewMemLog()
	d, err := Open(Config{Items: 16, Policy: SyncOnCommit, Log: mem})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 4
	var last wal.LSN
	for i := 1; i <= batch; i++ {
		_, lsn, err := d.ApplyWriteSetDeferred(uint64(i), storage.WriteSet{i: int64(10 * i)})
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	if err := d.ForceTo(last); err != nil {
		t.Fatal(err)
	}
	if err := d.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= batch; i++ {
		if !d.Applied(uint64(i)) {
			t.Fatalf("txn %d lost after crash despite the batch force", i)
		}
		v, _, err := d.ReadVersioned(i)
		if err != nil || v != int64(10*i) {
			t.Fatalf("item %d = (%d, %v), want %d", i, v, err, 10*i)
		}
	}
}

// TestApplyWriteSetStillForcesPerTxn pins the unbatched contract: the plain
// ApplyWriteSet forces on every call under SyncOnCommit.
func TestApplyWriteSetStillForcesPerTxn(t *testing.T) {
	log := &countingLog{Log: wal.NewMemLog()}
	d, err := Open(Config{Items: 16, Policy: SyncOnCommit, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 1; i <= 3; i++ {
		if _, err := d.ApplyWriteSet(uint64(i), storage.WriteSet{i: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt32(&log.syncs); got != 3 {
		t.Fatalf("ApplyWriteSet issued %d forces for 3 txns, want 3", got)
	}
}
