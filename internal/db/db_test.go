package db

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"groupsafe/internal/storage"
	"groupsafe/internal/wal"
)

func openTestDB(t *testing.T, policy SyncPolicy) *DB {
	t.Helper()
	d, err := Open(Config{Items: 100, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestPolicyString(t *testing.T) {
	if SyncOnCommit.String() != "sync-on-commit" || AsyncCommit.String() != "async-commit" {
		t.Fatal("policy strings wrong")
	}
	if SyncPolicy(9).String() != "policy(9)" {
		t.Fatal("unknown policy string wrong")
	}
}

func TestBasicCommit(t *testing.T) {
	d := openTestDB(t, SyncOnCommit)
	txn, err := d.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if txn.ID() == 0 {
		t.Fatal("auto-assigned ID should not be zero")
	}
	if v, err := txn.Read(5); err != nil || v != 0 {
		t.Fatalf("read = %d, %v", v, err)
	}
	if err := txn.Write(5, 42); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes.
	if v, _ := txn.Read(5); v != 42 {
		t.Fatalf("read-your-writes = %d", v)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := d.ReadVersioned(5); v != 42 {
		t.Fatalf("committed value = %d", v)
	}
	if !d.Applied(txn.ID()) {
		t.Fatal("committed transaction not marked applied")
	}
	if d.Stats().Commits != 1 {
		t.Fatalf("commits = %d", d.Stats().Commits)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	d := openTestDB(t, SyncOnCommit)
	txn, _ := d.Begin(0)
	txn.Write(7, 99)
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := d.ReadVersioned(7); v != 0 {
		t.Fatalf("aborted write visible: %d", v)
	}
	if d.Stats().Aborts != 1 {
		t.Fatalf("aborts = %d", d.Stats().Aborts)
	}
	// Operations after termination fail.
	if _, err := txn.Read(7); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("read after abort: %v", err)
	}
	if err := txn.Write(7, 1); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("write after abort: %v", err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("commit after abort: %v", err)
	}
	if err := txn.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double abort: %v", err)
	}
}

func TestReadVersionsAndWriteSet(t *testing.T) {
	d := openTestDB(t, SyncOnCommit)
	seed, _ := d.Begin(0)
	seed.Write(1, 10)
	seed.Commit()

	txn, _ := d.Begin(0)
	txn.Read(1)
	txn.Read(2)
	txn.Write(3, 30)
	rv := txn.ReadVersions()
	if rv[1] != 1 || rv[2] != 0 {
		t.Fatalf("read versions = %v", rv)
	}
	ws := txn.WriteSet()
	if len(ws) != 1 || ws[3] != 30 {
		t.Fatalf("write set = %v", ws)
	}
	// Mutating the returned copies must not affect the transaction.
	rv[1] = 99
	ws[3] = 99
	if txn.ReadVersions()[1] != 1 || txn.WriteSet()[3] != 30 {
		t.Fatal("accessors returned aliased maps")
	}
	txn.Abort()
}

func TestBeginDuplicateID(t *testing.T) {
	d := openTestDB(t, SyncOnCommit)
	txn, _ := d.Begin(77)
	txn.Write(1, 1)
	txn.Commit()
	if _, err := d.Begin(77); !errors.Is(err, ErrAlreadyApplied) {
		t.Fatalf("Begin with applied id: %v", err)
	}
	// Fresh IDs skip past explicitly used ones.
	txn2, _ := d.Begin(0)
	if txn2.ID() <= 77 {
		t.Fatalf("auto id %d should be after explicit 77", txn2.ID())
	}
	txn2.Abort()
}

func TestApplyWriteSetExactlyOnce(t *testing.T) {
	d := openTestDB(t, SyncOnCommit)
	ws := storage.WriteSet{1: 11, 2: 22}
	applied, err := d.ApplyWriteSet(500, ws)
	if err != nil || !applied {
		t.Fatalf("first apply = %v, %v", applied, err)
	}
	// Re-applying the same transaction (a replayed delivery) is a no-op.
	applied, err = d.ApplyWriteSet(500, ws)
	if err != nil || applied {
		t.Fatalf("second apply = %v, %v; want skipped", applied, err)
	}
	if versionOf(d, 1) != 1 || versionOf(d, 2) != 1 {
		t.Fatal("duplicate apply bumped versions twice")
	}
	st := d.Stats()
	if st.AppliedRemote != 1 || st.SkippedDup != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRecordAbort(t *testing.T) {
	d := openTestDB(t, SyncOnCommit)
	if err := d.RecordAbort(9); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Aborts != 1 {
		t.Fatal("abort not counted")
	}
	// Aborting an already-applied transaction is a no-op.
	d.ApplyWriteSet(10, storage.WriteSet{1: 1})
	if err := d.RecordAbort(10); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Aborts != 1 {
		t.Fatal("abort of applied transaction should be ignored")
	}
}

func TestCrashLosesUnsyncedCommits(t *testing.T) {
	// With AsyncCommit, a commit acknowledged before the log is forced is
	// lost by a crash — exactly the 1-safe / group-safe durability gap the
	// paper discusses.
	d := openTestDB(t, AsyncCommit)
	txn, _ := d.Begin(0)
	txn.Write(3, 33)
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := d.ReadVersioned(3); v != 0 {
		t.Fatalf("unsynced commit survived crash: %d", v)
	}
	if d.Applied(txn.ID()) {
		t.Fatal("lost transaction still marked applied")
	}
}

func TestCrashKeepsSyncedCommits(t *testing.T) {
	d := openTestDB(t, SyncOnCommit)
	txn, _ := d.Begin(0)
	txn.Write(3, 33)
	txn.Commit()

	txn2, _ := d.Begin(0)
	txn2.Write(4, 44)
	txn2.Commit()

	if err := d.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := d.ReadVersioned(3); v != 33 {
		t.Fatalf("synced commit lost: item3=%d", v)
	}
	if v, _, _ := d.ReadVersioned(4); v != 44 {
		t.Fatalf("synced commit lost: item4=%d", v)
	}
	if !d.Applied(txn.ID()) || !d.Applied(txn2.ID()) {
		t.Fatal("applied set not recovered")
	}
	// Versions are rebuilt deterministically.
	if versionOf(d, 3) != 1 || versionOf(d, 4) != 1 {
		t.Fatalf("versions after recovery = %d/%d", versionOf(d, 3), versionOf(d, 4))
	}
}

func TestAsyncCommitFlushMakesDurable(t *testing.T) {
	d := openTestDB(t, AsyncCommit)
	txn, _ := d.Begin(0)
	txn.Write(9, 90)
	txn.Commit()
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := d.ReadVersioned(9); v != 90 {
		t.Fatal("flushed commit lost by crash")
	}
}

func TestCrashAndRecoverRequiresMemLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	fl, err := wal.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(Config{Items: 10, Policy: SyncOnCommit, Log: fl})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.CrashAndRecover(); err == nil {
		t.Fatal("CrashAndRecover should refuse file-backed logs")
	}
}

func TestFileBackedDurabilityAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	fl, err := wal.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(Config{Items: 10, Policy: SyncOnCommit, Log: fl})
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := d.Begin(0)
	txn.Write(1, 111)
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	fl2, err := wal.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Open(Config{Items: 10, Policy: SyncOnCommit, Log: fl2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if v, _, _ := d2.ReadVersioned(1); v != 111 {
		t.Fatalf("value after reopen = %d", v)
	}
	if !d2.Applied(txn.ID()) {
		t.Fatal("applied set not rebuilt from file log")
	}
}

func TestStateTransferHelpers(t *testing.T) {
	src := openTestDB(t, SyncOnCommit)
	src.ApplyWriteSet(1, storage.WriteSet{1: 10})
	src.ApplyWriteSet(2, storage.WriteSet{2: 20})

	dst := openTestDB(t, SyncOnCommit)
	dst.RestoreState(src.SnapshotState(), src.AppliedTxns())
	if v, _, _ := dst.ReadVersioned(1); v != 10 {
		t.Fatal("state transfer did not copy values")
	}
	if !dst.Applied(1) || !dst.Applied(2) {
		t.Fatal("state transfer did not copy applied set")
	}
	// The receiver must not re-apply transferred transactions.
	applied, _ := dst.ApplyWriteSet(2, storage.WriteSet{2: 999})
	if applied {
		t.Fatal("transferred transaction re-applied")
	}
	if src.CommittedWriteCount() != dst.CommittedWriteCount() {
		t.Fatal("state fingerprints differ after transfer")
	}
	// Fresh local transactions get ids beyond the transferred ones.
	txn, _ := dst.Begin(0)
	if txn.ID() <= 2 {
		t.Fatalf("post-transfer id = %d", txn.ID())
	}
	txn.Abort()
}

func TestConcurrentLocalTransactions(t *testing.T) {
	d := openTestDB(t, SyncOnCommit)
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	var committed sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				txn, err := d.Begin(0)
				if err != nil {
					t.Errorf("begin: %v", err)
					return
				}
				item := (w + i) % 10
				v, err := txn.Read(item)
				if err != nil {
					txn.Abort()
					continue
				}
				if err := txn.Write(item, v+1); err != nil {
					txn.Abort()
					continue
				}
				if err := txn.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				committed.Store(txn.ID(), true)
			}
		}(w)
	}
	wg.Wait()
	// Because every transaction reads x and writes x+1 under strict 2PL, the
	// sum of final values equals the number of committed increments.
	var sum int64
	for i := 0; i < 10; i++ {
		v, _, _ := d.ReadVersioned(i)
		sum += v
	}
	var n int64
	committed.Range(func(_, _ interface{}) bool { n++; return true })
	if sum != n {
		t.Fatalf("lost updates: sum=%d committed=%d", sum, n)
	}
}

func TestClosedDatabase(t *testing.T) {
	d, _ := Open(Config{Items: 10})
	d.Close()
	if _, err := d.Begin(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin on closed db: %v", err)
	}
	if _, err := d.ApplyWriteSet(1, storage.WriteSet{1: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ApplyWriteSet on closed db: %v", err)
	}
	if err := d.RecordAbort(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("RecordAbort on closed db: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestSetPolicy(t *testing.T) {
	d := openTestDB(t, SyncOnCommit)
	if d.Policy() != SyncOnCommit {
		t.Fatal("initial policy wrong")
	}
	d.SetPolicy(AsyncCommit)
	if d.Policy() != AsyncCommit {
		t.Fatal("SetPolicy did not stick")
	}
}

func TestQuickRecoveryPreservesCommitted(t *testing.T) {
	// Property: after any sequence of committed write sets followed by a
	// crash, recovery rebuilds exactly the committed values (SyncOnCommit).
	f := func(ops []struct {
		Item  uint8
		Value int64
	}) bool {
		d, err := Open(Config{Items: 32, Policy: SyncOnCommit})
		if err != nil {
			return false
		}
		defer d.Close()
		want := make(map[int]int64)
		for i, op := range ops {
			item := int(op.Item % 32)
			ws := storage.WriteSet{item: op.Value}
			if _, err := d.ApplyWriteSet(uint64(i+1), ws); err != nil {
				return false
			}
			want[item] = op.Value
		}
		if err := d.CrashAndRecover(); err != nil {
			return false
		}
		for item, value := range want {
			got, _, err := d.ReadVersioned(item)
			if err != nil || got != value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// versionOf reads the committed certification version of an item through the
// atomic versioned-read API.
func versionOf(d *DB, item int) uint64 {
	_, ver, _ := d.ReadVersioned(item)
	return ver
}
