// Package db implements the local database component of the paper's model
// (Sect. 2.2): it stores a full copy of the database, executes local
// transactions under strict two-phase locking, enforces durability through a
// write-ahead log, recovers committed state after a crash, and provides the
// "testable transactions" facility (a transaction is applied at most once even
// if it is submitted multiple times) that the replication layer relies on.
package db

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"groupsafe/internal/lock"
	"groupsafe/internal/storage"
	"groupsafe/internal/wal"
)

// SyncPolicy controls when the write-ahead log is forced to stable storage.
type SyncPolicy int

const (
	// SyncOnCommit forces the log before a commit is acknowledged (the
	// behaviour needed by 1-safe, group-1-safe and 2-safe replication).
	SyncOnCommit SyncPolicy = iota
	// AsyncCommit lets commits be acknowledged before the log is forced; the
	// log is forced lazily by Flush (the behaviour exploited by group-safe
	// replication, which delegates durability to the group).
	AsyncCommit
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncOnCommit:
		return "sync-on-commit"
	case AsyncCommit:
		return "async-commit"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Errors returned by the database component.
var (
	ErrTxnDone        = errors.New("db: transaction already committed or aborted")
	ErrAlreadyApplied = errors.New("db: transaction already applied")
	ErrClosed         = errors.New("db: database closed")
)

// Config configures a database instance.
type Config struct {
	// Items is the database size (Table 4: 10'000 items).
	Items int
	// Policy selects the commit durability behaviour.
	Policy SyncPolicy
	// Log is the stable-storage log.  When nil an in-memory log is created.
	Log wal.Log
	// MaxPinAge bounds how many apply sequences a read-only snapshot may
	// trail the visible watermark before its pin is evicted and its reads
	// return storage.ErrSnapshotTooOld (0: unlimited).  It caps the version
	// history one slow analytic scan can retain under a write storm.
	MaxPinAge uint64
}

// Stats are cumulative counters maintained by the database.
type Stats struct {
	Commits       uint64
	Aborts        uint64
	Deadlocks     uint64
	AppliedRemote uint64
	SkippedDup    uint64
	// ReadTxns counts read-only snapshot transactions (BeginRead); they take
	// no locks and never abort, so they appear in no other counter.
	ReadTxns uint64
}

// DB is a single-node transactional database over integer items.
type DB struct {
	store *storage.Store
	locks *lock.Manager
	log   wal.Log
	gc    *wal.GroupCommitter

	mu      sync.Mutex
	policy  SyncPolicy
	applied map[uint64]bool
	nextID  uint64
	closed  bool
	stats   Stats

	// Cross-partition two-phase commit state (see prepare.go): in-doubt
	// prepared transactions, their shared/exclusive item lock counts, and the
	// gids decided abort (presumed-abort bookkeeping so a late prepare or a
	// replayed decide is a no-op).  preparedCount mirrors len(prepared) so the
	// apply hot path can skip conflict checks without taking mu.
	prepared       map[uint64]*PreparedTxn
	preparedShared map[int]int
	preparedExcl   map[int]int
	decidedAbort   map[uint64]bool
	preparedCount  atomic.Int64

	// closedFlag mirrors closed for the lock-free read-transaction hot path;
	// readTxns counts BeginRead calls without taking mu.
	closedFlag atomic.Bool
	readTxns   atomic.Uint64
}

// Open creates a database from cfg and recovers committed state from its log.
func Open(cfg Config) (*DB, error) {
	if cfg.Items <= 0 {
		cfg.Items = 1
	}
	logStore := cfg.Log
	if logStore == nil {
		logStore = wal.NewMemLog()
	}
	store := storage.NewStore(cfg.Items)
	store.SetMaxPinAge(cfg.MaxPinAge)
	d := &DB{
		store:   store,
		locks:   lock.NewManager(),
		log:     logStore,
		gc:      wal.NewGroupCommitter(logStore),
		policy:  cfg.Policy,
		applied: make(map[uint64]bool),
		nextID:  1,
	}
	if err := d.recoverLocked(); err != nil {
		return nil, err
	}
	return d, nil
}

// recoverLocked rebuilds the committed state by redoing the write-ahead log.
// Updates belonging to transactions without a commit record are discarded.
func (d *DB) recoverLocked() error {
	pending := make(map[uint64]storage.WriteSet)
	err := d.log.Replay(func(r wal.Record) error {
		switch r.Kind {
		case wal.KindUpdate:
			ws, ok := pending[r.TxnID]
			if !ok {
				ws = make(storage.WriteSet)
				pending[r.TxnID] = ws
			}
			ws[int(r.Item)] = r.Value
		case wal.KindCommit:
			if ws, ok := pending[r.TxnID]; ok {
				if err := d.store.ApplyWriteSet(ws); err != nil {
					return fmt.Errorf("db: redo txn %d: %w", r.TxnID, err)
				}
				delete(pending, r.TxnID)
			}
			d.dropPreparedLocked(r.TxnID)
			d.applied[r.TxnID] = true
			if r.TxnID >= d.nextID {
				d.nextID = r.TxnID + 1
			}
		case wal.KindAbort:
			delete(pending, r.TxnID)
			if d.dropPreparedLocked(r.TxnID) != nil {
				if d.decidedAbort == nil {
					d.decidedAbort = make(map[uint64]bool)
				}
				d.decidedAbort[r.TxnID] = true
			}
		case wal.KindPrepare:
			coord, readItems, err := decodePrepareData(r.Data)
			if err != nil {
				return fmt.Errorf("db: redo prepare %d: %w", r.TxnID, err)
			}
			// The prepare's own update records precede it in the log;
			// snapshot them as the sub-transaction's in-doubt write set.
			// The writes stay in pending too: a decision record later in the
			// log resolves them like any other transaction.
			ws := pending[r.TxnID]
			writes := make([]storage.Write, 0, len(ws))
			for it, v := range ws {
				writes = append(writes, storage.Write{Item: it, Value: v})
			}
			sort.Slice(writes, func(i, j int) bool { return writes[i].Item < writes[j].Item })
			d.registerPreparedLocked(&PreparedTxn{
				GID: r.TxnID, Coord: coord, ReadItems: readItems, Writes: writes,
			})
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("db: recovery: %w", err)
	}
	return nil
}

// Store exposes the underlying versioned store (used by the replication layer
// for certification and by tests for consistency checks).
func (d *DB) Store() *storage.Store { return d.store }

// Log exposes the underlying write-ahead log.
func (d *DB) Log() wal.Log { return d.log }

// Policy returns the current sync policy.
func (d *DB) Policy() SyncPolicy {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.policy
}

// SetPolicy changes the durability policy (the paper notes that an
// implementation can switch between group-safe and group-1-safe at runtime;
// this is the corresponding knob).
func (d *DB) SetPolicy(p SyncPolicy) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.policy = p
}

// Stats returns a snapshot of the database counters.
func (d *DB) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.Deadlocks = d.locks.Deadlocks()
	s.ReadTxns = d.readTxns.Load()
	return s
}

// Applied reports whether the transaction with the given id has already been
// applied (committed locally or installed through ApplyWriteSet).  This is
// the "testable transaction" interface of Sect. 2.2.
func (d *DB) Applied(txnID uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applied[txnID]
}

// ReadVersioned returns the newest committed value and version of an item as
// one atomic observation (both fields come from the same version-chain entry,
// so the pair can never mix a new value with an old version).  No locks are
// acquired; it is the optimistic read primitive of the certification
// protocol's delegate phase and of active replication's delivery-time
// execution.  For a multi-item consistent cut use Snapshot or BeginRead.
func (d *DB) ReadVersioned(item int) (int64, uint64, error) {
	return d.store.Read(item)
}

// Flush forces the write-ahead log to stable storage.
func (d *DB) Flush() error { return d.log.Sync() }

// Close closes the database and its log.
func (d *DB) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.closedFlag.Store(true)
	d.mu.Unlock()
	return d.log.Close()
}

// Begin starts a locally-executed transaction.  If id is zero a fresh
// identifier is assigned.
func (d *DB) Begin(id uint64) (*Txn, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	if id == 0 {
		id = d.nextID
		d.nextID++
	} else if id >= d.nextID {
		d.nextID = id + 1
	}
	if d.applied[id] {
		return nil, fmt.Errorf("%w: txn %d", ErrAlreadyApplied, id)
	}
	return &Txn{
		db:       d,
		id:       id,
		writes:   make(storage.WriteSet),
		readVers: make(map[int]uint64),
	}, nil
}

// ApplyWriteSet installs the write set of a remotely-certified transaction
// exactly once.  The first return value reports whether the write set was
// applied (false when the transaction had already been applied, e.g. a
// replayed end-to-end atomic broadcast message).  Under SyncOnCommit the
// commit record is forced before the writes become visible in the store.
func (d *DB) ApplyWriteSet(txnID uint64, ws storage.WriteSet) (bool, error) {
	sync := d.Policy() == SyncOnCommit
	applied, _, err := d.applyWriteSet(txnID, ws, sync)
	return applied, err
}

// AbortWaiting externally aborts txnID's lock acquisition: any Acquire
// blocked on its behalf returns lock.ErrAborted and every lock it holds is
// released.  It is the cancellation hook for a caller whose context expired
// while the transaction may be blocked in 2PL — never call it once the
// transaction's Commit has started, and call ForgetTxn after the
// transaction has fully terminated.
func (d *DB) AbortWaiting(txnID uint64) { d.locks.Abort(txnID) }

// ForgetTxn clears residual lock-manager bookkeeping for an externally
// aborted transaction (see AbortWaiting).
func (d *DB) ForgetTxn(txnID uint64) { d.locks.Forget(txnID) }

// ForceTo blocks until every log record with an LSN <= lsn is durable,
// sharing forces with concurrent callers through the group committer.  The
// batched replica apply loop uses it to force a whole batch of deferred
// write-set installations with a single Sync.
func (d *DB) ForceTo(lsn wal.LSN) error { return d.gc.WaitDurable(lsn) }

// ApplyWriteSetDeferred is ApplyWriteSet without the commit force: the
// write set is logged and installed, but durability is the caller's business
// (typically one ForceTo covering a whole batch of transactions).  It returns
// the LSN of the commit record so the caller knows how far to force.  Unlike
// ApplyWriteSet, the writes are visible in the store before they are durable
// — required so later transactions of the same batch certify against them;
// the caller must not externalise outcomes before its batch force.
func (d *DB) ApplyWriteSetDeferred(txnID uint64, ws storage.WriteSet) (bool, wal.LSN, error) {
	return d.applyWriteSet(txnID, ws, false)
}

// applyWriteSet logs and installs one write set, forcing the commit record
// before the store install when forceBeforeInstall is set.
func (d *DB) applyWriteSet(txnID uint64, ws storage.WriteSet, forceBeforeInstall bool) (bool, wal.LSN, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return false, 0, ErrClosed
	}
	if d.applied[txnID] {
		d.stats.SkippedDup++
		d.mu.Unlock()
		return false, 0, nil
	}
	d.mu.Unlock()

	// Lock the written items (sorted to avoid deadlocks between appliers).
	items := make([]int, 0, len(ws))
	for it := range ws {
		items = append(items, it)
	}
	sort.Ints(items)
	for _, it := range items {
		if err := d.locks.Acquire(txnID, it, lock.Exclusive); err != nil {
			d.locks.ReleaseAll(txnID)
			return false, 0, fmt.Errorf("db: apply writeset of txn %d: %w", txnID, err)
		}
	}
	defer d.locks.ReleaseAll(txnID)

	var lastLSN wal.LSN
	for _, it := range items {
		lsn, err := d.log.Append(wal.Record{Kind: wal.KindUpdate, TxnID: txnID, Item: int64(it), Value: ws[it]})
		if err != nil {
			return false, 0, fmt.Errorf("db: log update: %w", err)
		}
		lastLSN = lsn
	}
	lsn, err := d.log.Append(wal.Record{Kind: wal.KindCommit, TxnID: txnID})
	if err != nil {
		return false, 0, fmt.Errorf("db: log commit: %w", err)
	}
	lastLSN = lsn
	if forceBeforeInstall {
		if err := d.gc.WaitDurable(lastLSN); err != nil {
			return false, 0, fmt.Errorf("db: force log: %w", err)
		}
	}
	if err := d.store.ApplyWriteSet(ws); err != nil {
		return false, 0, fmt.Errorf("db: install writeset: %w", err)
	}
	d.mu.Lock()
	d.applied[txnID] = true
	d.stats.AppliedRemote++
	d.stats.Commits++
	d.mu.Unlock()
	return true, lastLSN, nil
}

// StageWrites is the serial half of the parallel apply pipeline: it performs
// the exactly-once check, appends the update and commit records of a
// certified remote transaction to the log in delivery order, and marks the
// transaction applied — without forcing the log and without installing the
// writes into the store.  It returns false when the transaction had already
// been applied (a replayed delivery), and otherwise the LSN of the commit
// record so the caller knows how far a batch force must reach.  writes must
// be sorted by item and duplicate-free.
//
// The caller is responsible for (a) eventually installing the staged writes
// with InstallWrites, before processing any later delivery of the same
// transaction's items outside the current batch, and (b) not externalising
// the outcome before its batch force.
func (d *DB) StageWrites(txnID uint64, writes []storage.Write) (bool, wal.LSN, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return false, 0, ErrClosed
	}
	if d.applied[txnID] {
		d.stats.SkippedDup++
		d.mu.Unlock()
		return false, 0, nil
	}
	d.mu.Unlock()

	var lastLSN wal.LSN
	for _, w := range writes {
		lsn, err := d.log.Append(wal.Record{Kind: wal.KindUpdate, TxnID: txnID, Item: int64(w.Item), Value: w.Value})
		if err != nil {
			return false, 0, fmt.Errorf("db: log update: %w", err)
		}
		lastLSN = lsn
	}
	lsn, err := d.log.Append(wal.Record{Kind: wal.KindCommit, TxnID: txnID})
	if err != nil {
		return false, 0, fmt.Errorf("db: log commit: %w", err)
	}
	lastLSN = lsn

	// Mark applied only after the commit record is in the log: a failed
	// append must leave the transaction re-deliverable, not silently skipped
	// by the dup check forever.  (Staging is serial per replica, so the
	// check-then-mark pair cannot race another stage of the same txn.)
	d.mu.Lock()
	d.applied[txnID] = true
	d.stats.AppliedRemote++
	d.stats.Commits++
	d.mu.Unlock()
	return true, lastLSN, nil
}

// InstallWrites is the parallel half of the apply pipeline: it makes a staged
// write set visible in the store.  Unlike ApplyWriteSet it does not go
// through the lock manager — the caller must guarantee that no conflicting
// write set (one sharing an item) is installed concurrently; the apply
// scheduler's conflict graph provides exactly that guarantee, and the store's
// lock stripes serialise installs against concurrent readers.
func (d *DB) InstallWrites(writes []storage.Write) error {
	if err := d.store.ApplyWrites(writes); err != nil {
		return fmt.Errorf("db: install writeset: %w", err)
	}
	return nil
}

// RecordAbort records that a transaction was certified-aborted so that a
// replayed delivery does not try to apply it again.
func (d *DB) RecordAbort(txnID uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.applied[txnID] {
		return nil
	}
	if _, err := d.log.Append(wal.Record{Kind: wal.KindAbort, TxnID: txnID}); err != nil {
		return fmt.Errorf("db: log abort: %w", err)
	}
	d.stats.Aborts++
	return nil
}

// Txn is a locally executed transaction under strict two-phase locking.
type Txn struct {
	db        *DB
	id        uint64
	writes    storage.WriteSet
	readVers  map[int]uint64
	commitLSN wal.LSN
	done      bool
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// CommitLSN returns the log position of the transaction's commit record, or
// zero before Commit ran (or when the transaction wrote nothing and aborted).
// Under AsyncCommit the record is not necessarily durable yet; ForceTo closes
// the gap on demand.
func (t *Txn) CommitLSN() wal.LSN { return t.commitLSN }

// Read returns the value of item as seen by the transaction (its own writes
// first, then the committed state), acquiring a shared lock.
func (t *Txn) Read(item int) (int64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	if v, ok := t.writes[item]; ok {
		return v, nil
	}
	if err := t.db.locks.Acquire(t.id, item, lock.Shared); err != nil {
		return 0, err
	}
	v, ver, err := t.db.store.Read(item)
	if err != nil {
		return 0, err
	}
	if _, seen := t.readVers[item]; !seen {
		t.readVers[item] = ver
	}
	return v, nil
}

// Write buffers a new value for item, acquiring an exclusive lock.
func (t *Txn) Write(item int, value int64) error {
	if t.done {
		return ErrTxnDone
	}
	if err := t.db.locks.Acquire(t.id, item, lock.Exclusive); err != nil {
		return err
	}
	if _, _, err := t.db.store.Read(item); err != nil {
		return err
	}
	t.writes[item] = value
	return nil
}

// ReadVersions returns the versions observed by the transaction's reads,
// used by the replication layer to build the certification read set.
func (t *Txn) ReadVersions() map[int]uint64 {
	out := make(map[int]uint64, len(t.readVers))
	for k, v := range t.readVers {
		out[k] = v
	}
	return out
}

// WriteSet returns a copy of the transaction's buffered writes.
func (t *Txn) WriteSet() storage.WriteSet {
	out := make(storage.WriteSet, len(t.writes))
	for k, v := range t.writes {
		out[k] = v
	}
	return out
}

// Commit makes the transaction durable according to the database sync policy
// and installs its writes.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	defer t.db.locks.ReleaseAll(t.id)

	var lastLSN wal.LSN
	for item, value := range t.writes {
		lsn, err := t.db.log.Append(wal.Record{Kind: wal.KindUpdate, TxnID: t.id, Item: int64(item), Value: value})
		if err != nil {
			return fmt.Errorf("db: log update: %w", err)
		}
		lastLSN = lsn
	}
	lsn, err := t.db.log.Append(wal.Record{Kind: wal.KindCommit, TxnID: t.id})
	if err != nil {
		return fmt.Errorf("db: log commit: %w", err)
	}
	lastLSN = lsn
	t.commitLSN = lastLSN
	if t.db.Policy() == SyncOnCommit {
		if err := t.db.gc.WaitDurable(lastLSN); err != nil {
			return fmt.Errorf("db: force log: %w", err)
		}
	}
	if len(t.writes) > 0 {
		if err := t.db.store.ApplyWriteSet(t.writes); err != nil {
			return fmt.Errorf("db: install writes: %w", err)
		}
	}
	t.db.mu.Lock()
	t.db.applied[t.id] = true
	t.db.stats.Commits++
	t.db.mu.Unlock()
	return nil
}

// Abort drops the transaction's buffered writes and releases its locks.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	t.db.locks.ReleaseAll(t.id)
	t.db.mu.Lock()
	t.db.stats.Aborts++
	t.db.mu.Unlock()
	if _, err := t.db.log.Append(wal.Record{Kind: wal.KindAbort, TxnID: t.id}); err != nil {
		return fmt.Errorf("db: log abort: %w", err)
	}
	return nil
}
