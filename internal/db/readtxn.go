package db

import (
	"fmt"

	"groupsafe/internal/storage"
)

// This file is the read-only fast path of the database component: snapshot
// transactions that bypass the lock manager entirely.  A ReadTxn reads the
// newest committed version of each item at or below its snapshot sequence,
// so it observes a consistent prefix of the replica's apply order — no dirty
// reads (half-installed transactions are below the visible watermark), and
// repeatable reads for free (the sequence is fixed at Begin).  Because it
// takes no locks it can never block behind a writer, never deadlock, and
// never aborts; concurrent update transactions proceed untouched.  The MVCC
// store keeps every version a live ReadTxn can see until the transaction is
// closed (watermark-driven GC), so long-running queries cost memory, not
// concurrency.

// Snapshot returns a point-in-time, lock-free read handle on the committed
// state (the raw storage-level snapshot; most callers want BeginRead).  The
// caller must Release it to unpin its versions from the garbage collector.
func (d *DB) Snapshot() (*storage.Snap, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	d.mu.Unlock()
	return d.store.AcquireSnap(), nil
}

// ReadTxn is a read-only snapshot transaction: it acquires no locks, sees the
// committed state as of its snapshot sequence, and never blocks or aborts.
type ReadTxn struct {
	db   *DB
	snap storage.Snap
	done bool
}

// BeginRead starts a read-only snapshot transaction.
func (d *DB) BeginRead() (*ReadTxn, error) {
	// The closed check is deliberately lock-free (queries are the hot path);
	// a read transaction racing Close still reads consistent in-memory state
	// — only the log is closed.
	if d.closedFlag.Load() {
		return nil, ErrClosed
	}
	d.readTxns.Add(1)
	return &ReadTxn{db: d, snap: d.store.AcquireSnapVal()}, nil
}

// Seq returns the transaction's snapshot sequence (the replica-local apply
// sequence of the newest transaction it can see).
func (t *ReadTxn) Seq() uint64 { return t.snap.Seq() }

// Read returns the value of item as of the snapshot.
func (t *ReadTxn) Read(item int) (int64, error) {
	v, _, err := t.ReadVersioned(item)
	return v, err
}

// ReadVersioned returns the value and certification version of item as of
// the snapshot, as one atomic observation.
func (t *ReadTxn) ReadVersioned(item int) (int64, uint64, error) {
	if t.done {
		return 0, 0, ErrTxnDone
	}
	return t.snap.Read(item)
}

// Close ends the transaction and unpins its versions from the garbage
// collector.  Read-only transactions always "commit"; Close is idempotent.
func (t *ReadTxn) Close() error {
	if t.done {
		return nil
	}
	t.done = true
	t.snap.Release()
	return nil
}

// VisibleSeq returns the database's current snapshot sequence: every
// transaction applied at or below it is readable by a new ReadTxn.  It is
// the freshness token the replication layer hands to clients for
// monotonic-session reads.
func (d *DB) VisibleSeq() uint64 { return d.store.VisibleSeq() }

// ReadAt returns the value and version of item as of a past snapshot
// sequence.  The versions are only guaranteed to still exist for sequences
// held live by a ReadTxn or Snap; it exists for tests and diagnostics.
func (d *DB) ReadAt(item int, seq uint64) (int64, uint64, error) {
	v, ver, err := d.store.ReadAt(item, seq)
	if err != nil {
		return 0, 0, fmt.Errorf("db: read at %d: %w", seq, err)
	}
	return v, ver, nil
}
