package db

import (
	"fmt"

	"groupsafe/internal/lock"
	"groupsafe/internal/storage"
	"groupsafe/internal/wal"
)

// CrashAndRecover simulates a server crash followed by a restart of the
// database component: everything that was not forced to stable storage is
// lost, and the committed state is rebuilt from the durable prefix of the
// write-ahead log.  It only works for databases backed by an in-memory log
// (the failure-injection experiments of Figs. 5 and 7); file-backed databases
// are crash-tested by closing and reopening them.
func (d *DB) CrashAndRecover() error {
	mem, ok := d.log.(*wal.MemLog)
	if !ok {
		return fmt.Errorf("db: CrashAndRecover requires an in-memory log, have %T", d.log)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	mem.Crash()
	d.store.Reset()
	d.locks = lock.NewManager()
	d.gc = wal.NewGroupCommitter(mem)
	d.applied = make(map[uint64]bool)
	d.nextID = 1
	d.closed = false
	d.closedFlag.Store(false)
	return d.recoverLocked()
}

// CommittedWriteCount returns the total number of version bumps across all
// items, a cheap fingerprint used by tests to compare replica states.
func (d *DB) CommittedWriteCount() uint64 {
	var total uint64
	snap := d.store.Snapshot()
	for _, it := range snap {
		total += it.Version
	}
	return total
}

// SnapshotState returns a deep copy of the committed item state, used for the
// checkpoint-based state transfer of the dynamic crash no-recovery model.
func (d *DB) SnapshotState() []storage.Item { return d.store.Snapshot() }

// RestoreState installs a state snapshot received through state transfer and
// marks the given transactions as applied.
func (d *DB) RestoreState(snapshot []storage.Item, appliedTxns []uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.store.Restore(snapshot)
	for _, id := range appliedTxns {
		d.applied[id] = true
		if id >= d.nextID {
			d.nextID = id + 1
		}
	}
}

// MergeNewerState merges a state-transfer snapshot into a running database:
// items are taken per-item only where the snapshot's version is strictly
// newer (storage.Store.MergeNewer), and the given transactions are added to
// the applied set.  Unlike RestoreState this is safe while transactions are
// being applied concurrently — it can only add missing state, never revert a
// concurrent install.  Returns the number of items taken.
func (d *DB) MergeNewerState(snapshot []storage.Item, appliedTxns []uint64) int {
	d.mu.Lock()
	for _, id := range appliedTxns {
		d.applied[id] = true
		if id >= d.nextID {
			d.nextID = id + 1
		}
	}
	d.mu.Unlock()
	return d.store.MergeNewer(snapshot)
}

// AppliedTxns returns the identifiers of every transaction applied so far
// (sorted order is not guaranteed); it is shipped along with state snapshots
// so that the receiving replica can keep enforcing exactly-once application.
func (d *DB) AppliedTxns() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]uint64, 0, len(d.applied))
	for id := range d.applied {
		out = append(out, id)
	}
	return out
}
