package db

import (
	"encoding/binary"
	"fmt"
	"sort"

	"groupsafe/internal/storage"
	"groupsafe/internal/wal"
)

// Cross-partition two-phase commit support: a transaction that spans several
// keyspace partitions is decomposed by the partition router into per-partition
// sub-transactions.  Each partition delivers the sub-transaction through its
// own total order and *prepares* it — certifies, logs the write set plus a
// KindPrepare record, and holds certification-level locks on the touched
// items — then a later decide record (commit or abort), also delivered
// through the partition's total order, resolves it.  Recovery keeps prepared
// transactions in-doubt (presumed abort: a prepare with no decision is
// resolved by asking the coordinator partition, whose WAL holds the decision
// record if one was ever made).

// PreparedTxn is one in-doubt cross-partition sub-transaction.
type PreparedTxn struct {
	// GID is the global transaction id assigned by the partition router.
	GID uint64
	// Coord is the coordinator partition id whose WAL holds the decision.
	Coord int
	// ReadItems are the items the sub-transaction read (shared locks).
	ReadItems []int
	// Writes is this partition's share of the write set (exclusive locks),
	// sorted by item.
	Writes []storage.Write
}

// encodePrepareData packs the coordinator partition id and the read items
// into the Data field of a KindPrepare record.
func encodePrepareData(coord int, readItems []int) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64*(2+len(readItems)))
	buf = binary.AppendUvarint(buf, uint64(coord))
	buf = binary.AppendUvarint(buf, uint64(len(readItems)))
	for _, it := range readItems {
		buf = binary.AppendUvarint(buf, uint64(it))
	}
	return buf
}

func decodePrepareData(data []byte) (coord int, readItems []int, err error) {
	c, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("db: bad prepare record data")
	}
	data = data[n:]
	cnt, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("db: bad prepare record data")
	}
	data = data[n:]
	items := make([]int, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		it, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, nil, fmt.Errorf("db: bad prepare record data")
		}
		data = data[n:]
		items = append(items, int(it))
	}
	return int(c), items, nil
}

// registerPreparedLocked indexes one prepared transaction; caller holds d.mu.
func (d *DB) registerPreparedLocked(p *PreparedTxn) {
	if d.prepared == nil {
		d.prepared = make(map[uint64]*PreparedTxn)
		d.preparedShared = make(map[int]int)
		d.preparedExcl = make(map[int]int)
	}
	d.prepared[p.GID] = p
	for _, it := range p.ReadItems {
		d.preparedShared[it]++
	}
	for _, w := range p.Writes {
		d.preparedExcl[w.Item]++
	}
	d.preparedCount.Add(1)
}

// dropPreparedLocked removes one prepared transaction; caller holds d.mu.
func (d *DB) dropPreparedLocked(gid uint64) *PreparedTxn {
	p, ok := d.prepared[gid]
	if !ok {
		return nil
	}
	delete(d.prepared, gid)
	for _, it := range p.ReadItems {
		if d.preparedShared[it]--; d.preparedShared[it] <= 0 {
			delete(d.preparedShared, it)
		}
	}
	for _, w := range p.Writes {
		if d.preparedExcl[w.Item]--; d.preparedExcl[w.Item] <= 0 {
			delete(d.preparedExcl, w.Item)
		}
	}
	d.preparedCount.Add(-1)
	return p
}

// HasPrepared reports whether any transaction is currently prepared, without
// taking the database mutex — the apply loop uses it to keep the normal
// (non-partitioned) certification path free of prepared-lock checks.
func (d *DB) HasPrepared() bool { return d.preparedCount.Load() > 0 }

// PreparedConflict reports whether a transaction reading readItems and
// writing writes conflicts with any currently prepared transaction under the
// usual shared/exclusive rule: its writes conflict with prepared reads or
// writes, and its reads conflict with prepared writes.  Certification aborts
// such transactions — a prepared-but-undecided transaction's outcome must not
// be invalidated by later deliveries.
func (d *DB) PreparedConflict(readItems []int, writes []storage.Write) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.prepared) == 0 {
		return false
	}
	for _, w := range writes {
		if d.preparedExcl[w.Item] > 0 || d.preparedShared[w.Item] > 0 {
			return true
		}
	}
	for _, it := range readItems {
		if d.preparedExcl[it] > 0 {
			return true
		}
	}
	return false
}

// StagePrepare logs a cross-partition sub-transaction as prepared: its update
// records plus a KindPrepare record are appended (not forced — the caller
// forces at the transaction's safety level), and its items become locked
// against conflicting certifications until a decision arrives.  It returns
// false when the transaction is already decided or prepared (a replayed
// delivery, or a prepare arriving after a presumed-abort resolution) — the
// prepare is then a no-op, which is exactly the presumed-abort contract.
// writes must be sorted by item and duplicate-free.
func (d *DB) StagePrepare(gid uint64, coord int, readItems []int, writes []storage.Write) (bool, wal.LSN, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return false, 0, ErrClosed
	}
	if d.applied[gid] || d.decidedAbort[gid] || d.prepared[gid] != nil {
		d.stats.SkippedDup++
		d.mu.Unlock()
		return false, 0, nil
	}
	d.mu.Unlock()

	var lastLSN wal.LSN
	for _, w := range writes {
		lsn, err := d.log.Append(wal.Record{Kind: wal.KindUpdate, TxnID: gid, Item: int64(w.Item), Value: w.Value})
		if err != nil {
			return false, 0, fmt.Errorf("db: log update: %w", err)
		}
		lastLSN = lsn
	}
	lsn, err := d.log.Append(wal.Record{
		Kind: wal.KindPrepare, TxnID: gid, Data: encodePrepareData(coord, readItems),
	})
	if err != nil {
		return false, 0, fmt.Errorf("db: log prepare: %w", err)
	}
	lastLSN = lsn

	d.mu.Lock()
	d.registerPreparedLocked(&PreparedTxn{GID: gid, Coord: coord, ReadItems: readItems, Writes: writes})
	d.mu.Unlock()
	return true, lastLSN, nil
}

// DecidePrepared resolves a cross-partition transaction: the first decision
// delivered for a gid wins and every later one (including replays) returns
// the recorded outcome without touching the log.  On a fresh commit decision
// it appends the KindCommit record (plus update records when no local prepare
// staged them — a replica that recovered past its prepare still installs the
// full write set carried by the decide payload), marks the transaction
// applied, and returns the writes the caller must install into the store.
// On a fresh abort decision it appends KindAbort and releases the prepared
// locks.  payloadWrites must be sorted by item and duplicate-free.
func (d *DB) DecidePrepared(gid uint64, commit bool, payloadWrites []storage.Write) (committed bool, install []storage.Write, fresh bool, lsn wal.LSN, err error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return false, nil, false, 0, ErrClosed
	}
	if d.applied[gid] {
		d.stats.SkippedDup++
		d.mu.Unlock()
		return true, nil, false, 0, nil
	}
	if d.decidedAbort[gid] {
		d.stats.SkippedDup++
		d.mu.Unlock()
		return false, nil, false, 0, nil
	}
	prep := d.dropPreparedLocked(gid)
	d.mu.Unlock()

	if !commit {
		var alsn wal.LSN
		if alsn, err = d.log.Append(wal.Record{Kind: wal.KindAbort, TxnID: gid}); err != nil {
			return false, nil, false, 0, fmt.Errorf("db: log abort: %w", err)
		}
		d.mu.Lock()
		if d.decidedAbort == nil {
			d.decidedAbort = make(map[uint64]bool)
		}
		d.decidedAbort[gid] = true
		d.stats.Aborts++
		d.mu.Unlock()
		return false, nil, true, alsn, nil
	}

	writes := payloadWrites
	if prep != nil {
		// The prepare already logged this partition's update records; its
		// write set is authoritative.
		writes = prep.Writes
	} else {
		for _, w := range writes {
			wlsn, werr := d.log.Append(wal.Record{Kind: wal.KindUpdate, TxnID: gid, Item: int64(w.Item), Value: w.Value})
			if werr != nil {
				return false, nil, false, 0, fmt.Errorf("db: log update: %w", werr)
			}
			lsn = wlsn
		}
	}
	clsn, cerr := d.log.Append(wal.Record{Kind: wal.KindCommit, TxnID: gid})
	if cerr != nil {
		return false, nil, false, 0, fmt.Errorf("db: log commit: %w", cerr)
	}
	d.mu.Lock()
	d.applied[gid] = true
	d.stats.AppliedRemote++
	d.stats.Commits++
	d.mu.Unlock()
	return true, writes, true, clsn, nil
}

// PreparedGIDs returns the global ids of all in-doubt prepared transactions,
// sorted; the partition router's recovery pass resolves each against its
// coordinator partition.
func (d *DB) PreparedGIDs() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]uint64, 0, len(d.prepared))
	for gid := range d.prepared {
		out = append(out, gid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PreparedInfo returns a copy of one prepared transaction's bookkeeping.
func (d *DB) PreparedInfo(gid uint64) (PreparedTxn, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.prepared[gid]
	if !ok {
		return PreparedTxn{}, false
	}
	cp := PreparedTxn{GID: p.GID, Coord: p.Coord}
	cp.ReadItems = append(cp.ReadItems, p.ReadItems...)
	cp.Writes = append(cp.Writes, p.Writes...)
	return cp, true
}

// PreparedSnapshot returns a copy of every prepared transaction (for state
// transfer to a recovering replica) plus the gids decided abort, so the
// receiver reconstructs the same certification-lock state as the donor.
func (d *DB) PreparedSnapshot() (prepared []PreparedTxn, aborted []uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range d.prepared {
		cp := PreparedTxn{GID: p.GID, Coord: p.Coord}
		cp.ReadItems = append(cp.ReadItems, p.ReadItems...)
		cp.Writes = append(cp.Writes, p.Writes...)
		prepared = append(prepared, cp)
	}
	sort.Slice(prepared, func(i, j int) bool { return prepared[i].GID < prepared[j].GID })
	for gid := range d.decidedAbort {
		aborted = append(aborted, gid)
	}
	sort.Slice(aborted, func(i, j int) bool { return aborted[i] < aborted[j] })
	return prepared, aborted
}

// InstallPrepared merges prepared transactions and abort decisions received
// via state transfer: entries already decided locally are skipped (the local
// WAL is authoritative), fresh ones are logged exactly like a locally staged
// prepare so a later crash still recovers them.
func (d *DB) InstallPrepared(prepared []PreparedTxn, aborted []uint64) error {
	for _, gid := range aborted {
		d.mu.Lock()
		known := d.applied[gid] || d.decidedAbort[gid]
		if !known {
			d.dropPreparedLocked(gid)
			if d.decidedAbort == nil {
				d.decidedAbort = make(map[uint64]bool)
			}
			d.decidedAbort[gid] = true
		}
		d.mu.Unlock()
		if !known {
			if _, err := d.log.Append(wal.Record{Kind: wal.KindAbort, TxnID: gid}); err != nil {
				return fmt.Errorf("db: log abort: %w", err)
			}
		}
	}
	for i := range prepared {
		p := prepared[i]
		if _, _, err := d.StagePrepare(p.GID, p.Coord, p.ReadItems, p.Writes); err != nil {
			return err
		}
	}
	return nil
}
