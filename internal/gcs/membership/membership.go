// Package membership implements the group membership abstraction of the
// dynamic crash no-recovery model (Sect. 2.3 of the paper): the history of
// the group is a sequence of views v0, v1, ...; a new view is installed when
// a process is suspected (leave) or (re)joins, and a joining process receives
// a state transfer checkpoint from a current member.
//
// The view manager is deliberately local-deterministic: every replica feeds
// it the same ordered stream of membership events (in the replicated database
// these events are themselves disseminated through the atomic broadcast, so
// all replicas install the same views in the same order).
package membership

import (
	"fmt"
	"sort"
	"sync"
)

// View is one group view: a monotonically increasing identifier plus the
// sorted list of member addresses.
type View struct {
	ID      uint64
	Members []string
}

// Contains reports whether addr is a member of the view.
func (v View) Contains(addr string) bool {
	for _, m := range v.Members {
		if m == addr {
			return true
		}
	}
	return false
}

// Size returns the number of members.
func (v View) Size() int { return len(v.Members) }

// Quorum returns the majority size of the view.
func (v View) Quorum() int { return len(v.Members)/2 + 1 }

// String implements fmt.Stringer.
func (v View) String() string {
	return fmt.Sprintf("view(%d, %v)", v.ID, v.Members)
}

// Event is a view change notification.
type Event struct {
	Old View
	New View
	// Joined and Left list the membership delta.
	Joined []string
	Left   []string
}

// StateProvider produces a checkpoint for state transfer to a joining member
// (typically backed by db.SnapshotState).
type StateProvider func() []byte

// StateInstaller installs a received checkpoint at a joining member.
type StateInstaller func([]byte) error

// Manager tracks the current view of one process.
type Manager struct {
	self string

	mu        sync.Mutex
	view      View
	listeners []func(Event)
	provider  StateProvider
	installer StateInstaller
	history   []View
}

// New creates a manager whose initial view v0 contains the given members.
func New(self string, members []string) (*Manager, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("membership: initial member list is empty")
	}
	found := false
	for _, m := range members {
		if m == self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("membership: self %q not in initial members %v", self, members)
	}
	sorted := append([]string{}, members...)
	sort.Strings(sorted)
	m := &Manager{self: self, view: View{ID: 0, Members: sorted}}
	m.history = append(m.history, m.view)
	return m, nil
}

// Self returns this process's address.
func (m *Manager) Self() string { return m.self }

// View returns the current view.
func (m *Manager) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.copyView(m.view)
}

// History returns every installed view, oldest first.
func (m *Manager) History() []View {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]View, len(m.history))
	for i, v := range m.history {
		out[i] = m.copyView(v)
	}
	return out
}

func (m *Manager) copyView(v View) View {
	members := make([]string, len(v.Members))
	copy(members, v.Members)
	return View{ID: v.ID, Members: members}
}

// OnViewChange registers a callback invoked after every view installation.
func (m *Manager) OnViewChange(fn func(Event)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listeners = append(m.listeners, fn)
}

// SetStateProvider registers the checkpoint source used when another process
// joins.
func (m *Manager) SetStateProvider(p StateProvider) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.provider = p
}

// SetStateInstaller registers the checkpoint sink used when this process
// joins an existing group.
func (m *Manager) SetStateInstaller(i StateInstaller) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.installer = i
}

// Leave installs a new view without the given member (a crash suspicion).  It
// is a no-op if the member is not in the current view.
func (m *Manager) Leave(addr string) (View, bool) {
	m.mu.Lock()
	if !m.view.Contains(addr) {
		v := m.copyView(m.view)
		m.mu.Unlock()
		return v, false
	}
	old := m.copyView(m.view)
	members := make([]string, 0, len(m.view.Members)-1)
	for _, member := range m.view.Members {
		if member != addr {
			members = append(members, member)
		}
	}
	ev := m.installLocked(members, nil, []string{addr}, old)
	m.mu.Unlock()
	m.notify(ev)
	return ev.New, true
}

// Join installs a new view containing addr.  When this manager belongs to an
// existing member and a state provider is registered, the returned checkpoint
// is what should be shipped to the joining process; the joining process
// passes it to Install on its own manager.
func (m *Manager) Join(addr string) (View, []byte, error) {
	m.mu.Lock()
	if m.view.Contains(addr) {
		v := m.copyView(m.view)
		m.mu.Unlock()
		return v, nil, nil
	}
	old := m.copyView(m.view)
	members := append([]string{}, m.view.Members...)
	members = append(members, addr)
	sort.Strings(members)
	ev := m.installLocked(members, []string{addr}, nil, old)
	provider := m.provider
	m.mu.Unlock()
	m.notify(ev)

	var checkpoint []byte
	if provider != nil && addr != m.self {
		checkpoint = provider()
	}
	return ev.New, checkpoint, nil
}

// Install applies a state-transfer checkpoint received while joining.
func (m *Manager) Install(checkpoint []byte) error {
	m.mu.Lock()
	installer := m.installer
	m.mu.Unlock()
	if installer == nil {
		return fmt.Errorf("membership: no state installer registered")
	}
	if checkpoint == nil {
		return nil
	}
	return installer(checkpoint)
}

func (m *Manager) installLocked(members, joined, left []string, old View) Event {
	m.view = View{ID: m.view.ID + 1, Members: members}
	m.history = append(m.history, m.copyView(m.view))
	return Event{Old: old, New: m.copyView(m.view), Joined: joined, Left: left}
}

func (m *Manager) notify(ev Event) {
	m.mu.Lock()
	listeners := append([]func(Event){}, m.listeners...)
	m.mu.Unlock()
	for _, fn := range listeners {
		fn(ev)
	}
}

// CanTolerateCrash reports whether the current view can lose one more member
// and still hold a quorum of the initial group size n (the group-safety
// condition: the group "does not fail" while a majority survives).
func (m *Manager) CanTolerateCrash(initialSize int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view.Size()-1 >= initialSize/2+1
}
