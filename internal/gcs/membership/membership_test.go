package membership

import (
	"testing"
	"testing/quick"
)

func newTestManager(t *testing.T) *Manager {
	t.Helper()
	m, err := New("s1", []string{"s3", "s1", "s2"})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil); err == nil {
		t.Fatal("empty member list should be rejected")
	}
	if _, err := New("x", []string{"a", "b"}); err == nil {
		t.Fatal("self missing from members should be rejected")
	}
	m := newTestManager(t)
	if m.Self() != "s1" {
		t.Fatalf("Self = %q", m.Self())
	}
	v := m.View()
	if v.ID != 0 || v.Size() != 3 || v.Quorum() != 2 {
		t.Fatalf("initial view = %+v", v)
	}
	// Members are sorted for determinism.
	if v.Members[0] != "s1" || v.Members[2] != "s3" {
		t.Fatalf("members not sorted: %v", v.Members)
	}
	if !v.Contains("s2") || v.Contains("ghost") {
		t.Fatal("Contains wrong")
	}
	if v.String() == "" {
		t.Fatal("String empty")
	}
}

func TestLeaveInstallsNewView(t *testing.T) {
	m := newTestManager(t)
	var events []Event
	m.OnViewChange(func(ev Event) { events = append(events, ev) })

	v, changed := m.Leave("s3")
	if !changed || v.ID != 1 || v.Size() != 2 || v.Contains("s3") {
		t.Fatalf("view after leave = %+v changed=%v", v, changed)
	}
	if len(events) != 1 || len(events[0].Left) != 1 || events[0].Left[0] != "s3" {
		t.Fatalf("events = %+v", events)
	}
	// Leaving an unknown member is a no-op.
	v, changed = m.Leave("ghost")
	if changed || v.ID != 1 {
		t.Fatalf("no-op leave changed the view: %+v", v)
	}
	if len(m.History()) != 2 {
		t.Fatalf("history = %v", m.History())
	}
}

func TestJoinWithStateTransfer(t *testing.T) {
	m := newTestManager(t)
	m.Leave("s3")
	m.SetStateProvider(func() []byte { return []byte("checkpoint-v2") })

	v, checkpoint, err := m.Join("s3")
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 2 || !v.Contains("s3") {
		t.Fatalf("view after join = %+v", v)
	}
	if string(checkpoint) != "checkpoint-v2" {
		t.Fatalf("checkpoint = %q", checkpoint)
	}
	// Joining an existing member is a no-op.
	v2, cp, err := m.Join("s3")
	if err != nil || cp != nil || v2.ID != 2 {
		t.Fatalf("re-join = %+v %q %v", v2, cp, err)
	}

	// The joining side installs the checkpoint.
	joiner, err := New("s3", []string{"s3"})
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.Install([]byte("x")); err == nil {
		t.Fatal("install without an installer should fail")
	}
	var installed []byte
	joiner.SetStateInstaller(func(b []byte) error { installed = b; return nil })
	if err := joiner.Install(checkpoint); err != nil {
		t.Fatal(err)
	}
	if string(installed) != "checkpoint-v2" {
		t.Fatalf("installed = %q", installed)
	}
	if err := joiner.Install(nil); err != nil {
		t.Fatalf("nil checkpoint should be a no-op: %v", err)
	}
}

func TestCanTolerateCrash(t *testing.T) {
	m, err := New("s1", []string{"s1", "s2", "s3", "s4", "s5"})
	if err != nil {
		t.Fatal(err)
	}
	if !m.CanTolerateCrash(5) {
		t.Fatal("a 5-member view tolerates another crash")
	}
	m.Leave("s5")
	m.Leave("s4")
	// 3 members left out of 5: losing one more would leave 2 < quorum(5)=3.
	if m.CanTolerateCrash(5) {
		t.Fatal("the group would fail after one more crash")
	}
}

func TestQuickViewIDsMonotonic(t *testing.T) {
	// Property: view identifiers strictly increase across any sequence of
	// joins and leaves, and the view never contains duplicates.
	f := func(ops []struct {
		Addr byte
		Join bool
	}) bool {
		m, err := New("s1", []string{"s1", "s2", "s3"})
		if err != nil {
			return false
		}
		last := m.View().ID
		for _, op := range ops {
			addr := string('a' + rune(op.Addr%6))
			if op.Join {
				m.Join(addr)
			} else if addr != "s1" {
				m.Leave(addr)
			}
			v := m.View()
			if v.ID < last {
				return false
			}
			last = v.ID
			seen := map[string]bool{}
			for _, member := range v.Members {
				if seen[member] {
					return false
				}
				seen[member] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
