package transport

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// MemNetwork is an in-memory network connecting endpoints by address.  It
// supports failure injection: per-message latency, message loss, network
// partitions, one-way link blocking, and endpoint crashes (a crashed endpoint
// loses every message sent to it and cannot send).  Latency, jitter and loss
// can be changed at runtime — the scenario fuzzer flips them mid-run — without
// ever violating the FIFO-per-channel delivery contract.
type MemNetwork struct {
	// mu guards the endpoint table, the partition map and the blocked-link
	// set.  The hot send path only takes it in read mode, and only when a
	// partition or link block is actually installed.
	mu        sync.RWMutex
	endpoints map[string]*memEndpoint
	// latency/jitter are duration nanoseconds and loss is math.Float64bits;
	// all three are atomics so SetLatency/SetJitter/SetLoss can retune a
	// running network without stalling senders.
	latency atomic.Int64
	jitter  atomic.Int64
	loss    atomic.Uint64
	// rngMu guards rng; it is only touched when loss or jitter is configured,
	// so a plain send on a perfect network takes no random-source lock.
	rngMu sync.Mutex
	rng   *rand.Rand
	// partition maps an address to its partition id; addresses in different
	// partitions cannot communicate.  An empty map means no partition.
	partition   map[string]int
	partitioned atomic.Bool
	// blocked holds one-way blocked links (finer-grained than a partition:
	// from→to drops while to→from still flows).
	blocked    map[chainKey]bool
	anyBlocked atomic.Bool

	// chains serialises delayed deliveries per (from, to) channel: each entry
	// is the completion marker of the channel's most recently scheduled
	// delivery, and the next delivery waits on it before touching the inbox.
	// Without this, two AfterFunc timers with near-equal deadlines race for
	// the destination mutex and can reorder a sender's messages — real LANs
	// (and the TCP transport) are FIFO per channel, and the lazy-propagation
	// protocol relies on that.  Jitter varies WHEN a channel's messages
	// arrive, not their relative order; cross-channel interleaving stays
	// unordered either way.
	chainMu sync.Mutex
	chains  map[chainKey]chan struct{}
	// chained latches true once any delivery has gone through the chain.
	// From then on every send chains, even with the delay knobs back at
	// zero: a fresh synchronous delivery must not overtake an async one
	// still sitting in a timer for the same channel.
	chained atomic.Bool

	// Hot counters: every Send touches these, so they are atomics rather
	// than fields under the network mutex.
	sent    atomic.Uint64
	dropped atomic.Uint64
}

// MemOption configures a MemNetwork.
type MemOption func(*MemNetwork)

// WithLatency sets the one-way message latency (default 0: synchronous,
// order-preserving delivery).
func WithLatency(d time.Duration) MemOption {
	return func(n *MemNetwork) { n.latency.Store(int64(d)) }
}

// WithJitter adds a uniform random component in [0, d] to the latency.
func WithJitter(d time.Duration) MemOption {
	return func(n *MemNetwork) { n.jitter.Store(int64(d)) }
}

// WithLoss sets the probability that any message is silently dropped.
func WithLoss(p float64) MemOption {
	return func(n *MemNetwork) { n.loss.Store(math.Float64bits(p)) }
}

// WithSeed seeds the network's random source (loss and jitter decisions).
func WithSeed(seed int64) MemOption {
	return func(n *MemNetwork) { n.rng = rand.New(rand.NewSource(seed)) }
}

// NewMemNetwork creates an in-memory network.
func NewMemNetwork(opts ...MemOption) *MemNetwork {
	n := &MemNetwork{
		endpoints: make(map[string]*memEndpoint),
		partition: make(map[string]int),
		blocked:   make(map[chainKey]bool),
		rng:       rand.New(rand.NewSource(1)),
		chains:    make(map[chainKey]chan struct{}),
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// chainKey identifies one directed sender→receiver channel.
type chainKey struct {
	from, to string
}

// memEndpoint is an endpoint attached to a MemNetwork.
type memEndpoint struct {
	net  *MemNetwork
	addr string

	mu      sync.Mutex
	inbox   chan Message
	crashed bool
	closed  bool
}

const memInboxSize = 4096

// Endpoint attaches (or re-attaches) an endpoint with the given address.  If
// an endpoint with this address already exists it is returned.
func (n *MemNetwork) Endpoint(addr string) Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[addr]; ok {
		return ep
	}
	ep := &memEndpoint{net: n, addr: addr, inbox: make(chan Message, memInboxSize)}
	n.endpoints[addr] = ep
	return ep
}

// Crash simulates the crash of the node at addr: its endpoint stops receiving
// and sending, and messages already queued for it are discarded.
func (n *MemNetwork) Crash(addr string) {
	n.mu.Lock()
	ep, ok := n.endpoints[addr]
	n.mu.Unlock()
	if !ok {
		return
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.crashed {
		return
	}
	ep.crashed = true
	// Drain anything already queued: a crashed process loses its volatile
	// state, including undelivered messages.
	for {
		select {
		case <-ep.inbox:
		default:
			return
		}
	}
}

// Recover reverses a Crash: the endpoint starts with an empty inbox, like a
// process that rebooted.
func (n *MemNetwork) Recover(addr string) {
	n.mu.Lock()
	ep, ok := n.endpoints[addr]
	n.mu.Unlock()
	if !ok {
		return
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.crashed = false
}

// Crashed reports whether the endpoint at addr is currently crashed.
func (n *MemNetwork) Crashed(addr string) bool {
	n.mu.Lock()
	ep, ok := n.endpoints[addr]
	n.mu.Unlock()
	if !ok {
		return false
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.crashed
}

// Partition splits the network: each group of addresses can only talk within
// itself.  Addresses not mentioned keep partition id 0.
func (n *MemNetwork) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[string]int)
	for i, group := range groups {
		for _, addr := range group {
			n.partition[addr] = i + 1
		}
	}
	n.partitioned.Store(len(n.partition) > 0)
}

// Heal removes any partition.
func (n *MemNetwork) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[string]int)
	n.partitioned.Store(false)
}

// SetLatency changes the one-way message latency at runtime.  In-flight
// messages keep the delay they drew; the FIFO-per-channel contract holds
// across the change.
func (n *MemNetwork) SetLatency(d time.Duration) { n.latency.Store(int64(d)) }

// SetJitter changes the uniform random latency component at runtime.
func (n *MemNetwork) SetJitter(d time.Duration) { n.jitter.Store(int64(d)) }

// SetLoss changes the message-loss probability at runtime.
func (n *MemNetwork) SetLoss(p float64) { n.loss.Store(math.Float64bits(p)) }

// BlockLink blocks the one-way link from→to: messages sent over it are
// dropped while the reverse direction keeps flowing.  Idempotent.
func (n *MemNetwork) BlockLink(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[chainKey{from: from, to: to}] = true
	n.anyBlocked.Store(true)
}

// UnblockLink reverses one BlockLink.
func (n *MemNetwork) UnblockLink(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, chainKey{from: from, to: to})
	n.anyBlocked.Store(len(n.blocked) > 0)
}

// UnblockAllLinks removes every one-way link block.
func (n *MemNetwork) UnblockAllLinks() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[chainKey]bool)
	n.anyBlocked.Store(false)
}

// Stats returns the number of messages sent and dropped (loss, partitions,
// blocked links and crashed destinations all count as drops).  The counters
// are atomics, so a concurrent Stats never stalls senders.
func (n *MemNetwork) Stats() (sent, dropped uint64) {
	return n.sent.Load(), n.dropped.Load()
}

func (n *MemNetwork) reachable(from, to string) bool {
	if n.anyBlocked.Load() {
		n.mu.RLock()
		b := n.blocked[chainKey{from: from, to: to}]
		n.mu.RUnlock()
		if b {
			return false
		}
	}
	if !n.partitioned.Load() {
		return true
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.partition[from] == n.partition[to]
}

// Addr implements Endpoint.
func (ep *memEndpoint) Addr() string { return ep.addr }

// Recv implements Endpoint.
func (ep *memEndpoint) Recv() <-chan Message { return ep.inbox }

// Close implements Endpoint.
func (ep *memEndpoint) Close() error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return nil
	}
	ep.closed = true
	ep.crashed = true
	return nil
}

// Send implements Endpoint.
func (ep *memEndpoint) Send(to string, m Message) error {
	ep.mu.Lock()
	if ep.closed || ep.crashed {
		ep.mu.Unlock()
		return ErrClosed
	}
	ep.mu.Unlock()

	m.From = ep.addr
	m.To = to

	n := ep.net
	n.sent.Add(1)
	n.mu.RLock()
	dst, ok := n.endpoints[to]
	n.mu.RUnlock()
	delay := time.Duration(n.latency.Load())
	jitter := time.Duration(n.jitter.Load())
	lossProb := math.Float64frombits(n.loss.Load())
	var loss bool
	if lossProb > 0 || jitter > 0 {
		n.rngMu.Lock()
		loss = lossProb > 0 && n.rng.Float64() < lossProb
		if jitter > 0 {
			delay += time.Duration(n.rng.Int63n(int64(jitter) + 1))
		}
		n.rngMu.Unlock()
	}
	if !ok || loss {
		n.dropped.Add(1)
		return nil
	}

	if !n.reachable(ep.addr, to) {
		n.dropped.Add(1)
		return nil
	}

	deliver := func() {
		dst.mu.Lock()
		defer dst.mu.Unlock()
		if dst.crashed || dst.closed {
			n.dropped.Add(1)
			return
		}
		select {
		case dst.inbox <- m:
		default:
			// Inbox overflow models an overloaded receiver dropping traffic.
			n.dropped.Add(1)
		}
	}
	if delay <= 0 && jitter <= 0 && !n.chained.Load() {
		// Synchronous delivery in the caller's goroutine is trivially FIFO
		// per channel.  The branch keys on the current knobs, not just the
		// drawn delay: on a jitter-only network a zero draw must still go
		// through the chain below, or it would overtake an earlier message
		// of the same channel that drew a longer delay.  And once ANY
		// delivery has chained (n.chained), every later send chains too —
		// a sender's zero-delay message issued right after SetLatency(0)
		// must queue behind its own still-delayed traffic.
		deliver()
		return nil
	}
	// Chain this delivery behind the channel's previous one: timers firing
	// out of order must not reorder a sender's messages to one destination.
	n.chained.Store(true)
	key := chainKey{from: ep.addr, to: to}
	n.chainMu.Lock()
	prev := n.chains[key]
	done := make(chan struct{})
	n.chains[key] = done
	n.chainMu.Unlock()
	time.AfterFunc(delay, func() {
		defer close(done)
		if prev != nil {
			<-prev
		}
		deliver()
	})
	return nil
}
