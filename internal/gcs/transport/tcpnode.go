package transport

import (
	"fmt"
	"sync"
)

// TCPNode adapts TCP endpoints to the Network interface, so a replica built
// for the in-memory network runs unchanged as one OS process per replica.
// Unlike MemNetwork — which owns every endpoint of a whole simulated cluster
// — a TCPNode lives inside a single process and typically carries exactly
// one listening endpoint (this replica's); peers are ordinary remote
// addresses reached by the endpoint's outbound connections.
type TCPNode struct {
	cfg TCPConfig

	mu        sync.Mutex
	endpoints map[string]*TCPEndpoint
}

// NewTCPNode creates a node whose endpoints share the given tuning.
func NewTCPNode(cfg TCPConfig) *TCPNode {
	return &TCPNode{cfg: cfg, endpoints: make(map[string]*TCPEndpoint)}
}

// Listen pre-creates the endpoint for addr, surfacing bind errors to the
// caller (the Network interface's Endpoint cannot).  The returned endpoint's
// Addr resolves port 0 to the actual port.
func (n *TCPNode) Listen(addr string) (*TCPEndpoint, error) {
	ep, err := ListenTCPConfig(addr, n.cfg)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.endpoints[ep.Addr()] = ep
	if addr != ep.Addr() {
		n.endpoints[addr] = ep
	}
	n.mu.Unlock()
	return ep, nil
}

// Endpoint implements Network.  The endpoint must have been created with
// Listen first (bind errors need a place to go); asking for an address this
// node never listened on is a wiring bug.
func (n *TCPNode) Endpoint(addr string) Endpoint {
	n.mu.Lock()
	ep, ok := n.endpoints[addr]
	n.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("transport: TCPNode.Endpoint(%q) before Listen", addr))
	}
	return ep
}

// Crash implements Network by closing the endpoint (a real process's crash
// is the process dying; this exists for completeness and tests).
func (n *TCPNode) Crash(addr string) {
	n.mu.Lock()
	ep, ok := n.endpoints[addr]
	n.mu.Unlock()
	if ok {
		ep.Close()
	}
}

// Recover implements Network as a no-op: a recovered process re-runs Listen.
func (n *TCPNode) Recover(addr string) {}

// Close closes every endpoint the node created.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	eps := make(map[*TCPEndpoint]bool, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps[ep] = true
	}
	n.endpoints = make(map[string]*TCPEndpoint)
	n.mu.Unlock()
	var first error
	for ep := range eps {
		if err := ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
