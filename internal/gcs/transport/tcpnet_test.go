package transport

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// These tests mirror the MemNetwork contract suite over real sockets: the
// replication protocols above the transport (lazy FIFO propagation, abcast,
// the fuzzer's adversary schedules) rely on per-link FIFO with at-most-once
// delivery, and those guarantees must hold across connection loss, peer
// death and reconnection — not only on the in-memory network.

// collect drains ep until either want messages arrived or the deadline
// passed, returning the payload sequence numbers in arrival order.
func collectSeqs(ep Endpoint, want int, d time.Duration) []int {
	var got []int
	deadline := time.After(d)
	for len(got) < want {
		select {
		case m, ok := <-ep.Recv():
			if !ok {
				return got
			}
			got = append(got, int(m.Payload[0])|int(m.Payload[1])<<8)
		case <-deadline:
			return got
		}
	}
	return got
}

func seqMsg(i int) Message {
	return Message{Type: "seq", Payload: []byte{byte(i), byte(i >> 8)}}
}

// TestTCPChannelFIFO is the TCP twin of TestMemNetworkChannelFIFO: a burst of
// messages over one link must arrive in send order.
func TestTCPChannelFIFO(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const msgs = 500
	for i := 0; i < msgs; i++ {
		if err := a.Send(b.Addr(), seqMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := collectSeqs(b, msgs, 5*time.Second)
	if len(got) != msgs {
		t.Fatalf("received %d of %d messages", len(got), msgs)
	}
	for i, s := range got {
		if s != i {
			t.Fatalf("delivery %d carried sequence %d: link reordered", i, s)
		}
	}
}

// TestTCPFIFOAcrossPeerRestart kills the receiving endpoint mid-stream
// (partition), restarts it on the same address (heal), and asserts the
// delivered sequence is an in-order subsequence with no duplicates: messages
// may be lost while the peer is down (at-most-once), but what arrives — on
// either side of the outage — must respect send order.
func TestTCPFIFOAcrossPeerRestart(t *testing.T) {
	a, err := ListenTCPConfig("127.0.0.1:0", TCPConfig{ReconnectMin: 5 * time.Millisecond, WriteTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()

	const phase = 100
	for i := 0; i < phase; i++ {
		if err := a.Send(addr, seqMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	first := collectSeqs(b, phase, 5*time.Second)
	if len(first) != phase {
		t.Fatalf("phase 1: received %d of %d", len(first), phase)
	}

	// Partition: the peer endpoint dies.
	b.Close()
	for i := phase; i < 2*phase; i++ {
		// Sends while the peer is down queue (or drop on overflow) — they
		// must never error in a way that loses later messages' positions.
		if err := a.Send(addr, seqMsg(i)); err != nil && !errors.Is(err, ErrSendQueueFull) {
			t.Fatalf("send while peer down: %v", err)
		}
	}

	// Heal: a new process takes over the same address.
	b2, err := ListenTCP(addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	defer b2.Close()
	for i := 2 * phase; i < 3*phase; i++ {
		if err := a.Send(addr, seqMsg(i)); err != nil {
			t.Fatal(err)
		}
	}

	// The post-restart endpoint must see an in-order, duplicate-free
	// subsequence that includes every post-heal message.
	got := collectSeqs(b2, 2*phase, 3*time.Second)
	last := -1
	for _, s := range got {
		if s <= last {
			t.Fatalf("sequence %d arrived after %d: reordered or duplicated across reconnect", s, last)
		}
		last = s
	}
	if last != 3*phase-1 {
		t.Fatalf("last delivered sequence = %d, want %d (post-heal tail lost)", last, 3*phase-1)
	}
}

// TestTCPDeadPeerBackpressure pins the satellite contract: a peer that stays
// down fills the bounded send queue, after which Send fails fast with a
// typed, retryable error that names the peer — never a silent drop, never an
// unbounded block.
func TestTCPDeadPeerBackpressure(t *testing.T) {
	a, err := ListenTCPConfig("127.0.0.1:0", TCPConfig{
		SendQueue:    8,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// A TCP listener that never accepts still completes connections (kernel
	// backlog), so use a port nothing listens on.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	var overflow error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := a.Send(dead, Message{Type: "x"}); err != nil {
			overflow = err
			break
		}
	}
	if overflow == nil {
		t.Fatal("send queue to a dead peer never filled")
	}
	if !errors.Is(overflow, ErrSendQueueFull) {
		t.Fatalf("overflow error = %v, want ErrSendQueueFull", overflow)
	}
	var pe *PeerError
	if !errors.As(overflow, &pe) || pe.Peer != dead {
		t.Fatalf("overflow error = %#v, want *PeerError naming %s", overflow, dead)
	}
	if s := a.Stats(); s.Dropped == 0 {
		t.Fatalf("overflow not counted: stats = %+v", s)
	}
}

// TestTCPHandshakeMismatch: a stream that does not open with the exact
// magic+version header is rejected before any frame is decoded, and the
// failure is counted — mismatched binaries fail fast and visibly.
func TestTCPHandshakeMismatch(t *testing.T) {
	var logMu sync.Mutex // Logf is called from concurrent per-stream readLoops
	var logged []string
	ep, err := ListenTCPConfig("127.0.0.1:0", TCPConfig{
		Logf: func(format string, args ...interface{}) {
			logMu.Lock()
			logged = append(logged, format)
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	// Wrong magic.
	conn, err := net.Dial("tcp", ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("HTTP/1.1 GET /\r\n"))
	conn.Close()

	// Right magic, wrong version.
	conn2, err := net.Dial("tcp", ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn2.Write([]byte(tcpMagic))
	conn2.Write([]byte{tcpVersion + 1})
	conn2.Close()

	deadline := time.Now().Add(2 * time.Second)
	for ep.Stats().BadHandshakes < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := ep.Stats().BadHandshakes; n < 2 {
		t.Fatalf("BadHandshakes = %d, want 2", n)
	}
	select {
	case m := <-ep.Recv():
		t.Fatalf("garbage stream delivered a message: %+v", m)
	default:
	}
}

// TestTCPHandshakeVersionError checks the decode side reports a clear,
// actionable error for a version skew.
func TestTCPHandshakeVersionError(t *testing.T) {
	err := readHandshake(strings.NewReader(tcpMagic + "\x7f"))
	if !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("err = %v, want ErrBadHandshake", err)
	}
	if !strings.Contains(err.Error(), "version 127") {
		t.Fatalf("error should name the peer version: %v", err)
	}
}

// TestTCPFrameRoundTrip exercises the varint frame codec directly, including
// empty fields and payload reuse.
func TestTCPFrameRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: "ab.data", From: "127.0.0.1:1", To: "127.0.0.1:2", Payload: []byte("hello")},
		{Type: "", From: "", To: "", Payload: nil},
		{Type: "fd.heartbeat", From: "x", To: "y", Payload: make([]byte, 70000)},
	}
	var buf []byte
	for _, m := range msgs {
		buf = appendFrame(buf, m)
	}
	r := bufio.NewReader(bytes.NewReader(buf))
	var scratch []byte
	for i, want := range msgs {
		var got Message
		var err error
		got, scratch, err = readFrame(r, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.From != want.From || got.To != want.To || string(got.Payload) != string(want.Payload) {
			t.Fatalf("frame %d round-trip mismatch", i)
		}
	}
}

// TestTCPInboxOverflowDropsAndCounts: the bounded inbox sheds load instead
// of blocking the socket, and the drops are observable.
func TestTCPInboxOverflowDropsAndCounts(t *testing.T) {
	b, err := ListenTCPConfig("127.0.0.1:0", TCPConfig{Inbox: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const burst = 64
	for i := 0; i < burst; i++ {
		if err := a.Send(b.Addr(), seqMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for a.Stats().Sent < burst && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	// Nothing is reading b's inbox, so at most Inbox messages are buffered
	// and the rest must be counted as dropped — not block the read loop.
	deadline = time.Now().Add(3 * time.Second)
	for b.Stats().InboxDropped == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d := b.Stats().InboxDropped; d == 0 {
		t.Fatal("inbox overflow was not counted")
	}
}
