package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary wire format of the TCP transport.
//
// Every connection starts with a fixed 5-byte header exchanged by BOTH ends
// (magic + protocol version), so two processes built from incompatible
// binaries fail the very first read with a clear error instead of silently
// mis-decoding each other's traffic.  After the handshake the stream is a
// sequence of length-prefixed frames in the same varint style as the abcast
// and transaction payload codecs (PR 2): no gob type descriptors, one buffer
// per message.
//
//	handshake: "GSTP" <version byte>
//	frame:     uvarint(bodyLen) body
//	body:      str(Type) str(From) str(To) str(Payload)
//	str:       uvarint(len) bytes

const (
	tcpMagic   = "GSTP"
	tcpVersion = 1

	// maxFrameSize bounds one frame; a peer announcing more is treated as
	// corrupt and disconnected (fail fast instead of allocating unbounded).
	maxFrameSize = 16 << 20
)

// Wire-format errors.  ErrBadHandshake is surfaced when a connection's first
// bytes are not the expected magic/version — typically two incompatible
// binaries trying to talk to each other.
var (
	ErrBadHandshake  = errors.New("transport: handshake mismatch (incompatible peer binary or wrong port)")
	errFrameTooLarge = errors.New("transport: frame exceeds size limit")
	errBadFrame      = errors.New("transport: malformed frame")
)

// writeHandshake emits this end's magic+version header.
func writeHandshake(w io.Writer) error {
	var hdr [len(tcpMagic) + 1]byte
	copy(hdr[:], tcpMagic)
	hdr[len(tcpMagic)] = tcpVersion
	_, err := w.Write(hdr[:])
	return err
}

// readHandshake validates the peer's header.  A wrong magic or version is
// reported as ErrBadHandshake with the offending bytes, so operators can tell
// a version skew from a stray client hitting the peer port.
func readHandshake(r io.Reader) error {
	var hdr [len(tcpMagic) + 1]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if string(hdr[:len(tcpMagic)]) != tcpMagic {
		return fmt.Errorf("%w: magic %q", ErrBadHandshake, hdr[:len(tcpMagic)])
	}
	if hdr[len(tcpMagic)] != tcpVersion {
		return fmt.Errorf("%w: peer speaks version %d, this binary speaks %d", ErrBadHandshake, hdr[len(tcpMagic)], tcpVersion)
	}
	return nil
}

// appendFrame encodes one message as a length-prefixed frame into buf.
func appendFrame(buf []byte, m Message) []byte {
	body := uvarintLen(uint64(len(m.Type))) + len(m.Type) +
		uvarintLen(uint64(len(m.From))) + len(m.From) +
		uvarintLen(uint64(len(m.To))) + len(m.To) +
		uvarintLen(uint64(len(m.Payload))) + len(m.Payload)
	buf = binary.AppendUvarint(buf, uint64(body))
	buf = appendWireString(buf, m.Type)
	buf = appendWireString(buf, m.From)
	buf = appendWireString(buf, m.To)
	buf = binary.AppendUvarint(buf, uint64(len(m.Payload)))
	buf = append(buf, m.Payload...)
	return buf
}

func appendWireString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// readFrame reads one frame from r into a fresh Message.  The payload is
// copied out of the read buffer, so the message may outlive the next read.
func readFrame(r *bufio.Reader, scratch []byte) (Message, []byte, error) {
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return Message{}, scratch, err
	}
	if size > maxFrameSize {
		return Message{}, scratch, errFrameTooLarge
	}
	if cap(scratch) < int(size) {
		scratch = make([]byte, size)
	}
	body := scratch[:size]
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, scratch, err
	}
	var m Message
	pos := 0
	next := func() (string, bool) {
		l, n := binary.Uvarint(body[pos:])
		if n <= 0 || l > uint64(len(body)-pos-n) {
			return "", false
		}
		pos += n
		s := string(body[pos : pos+int(l)])
		pos += int(l)
		return s, true
	}
	var ok bool
	if m.Type, ok = next(); !ok {
		return Message{}, scratch, errBadFrame
	}
	if m.From, ok = next(); !ok {
		return Message{}, scratch, errBadFrame
	}
	if m.To, ok = next(); !ok {
		return Message{}, scratch, errBadFrame
	}
	plen, n := binary.Uvarint(body[pos:])
	if n <= 0 || plen != uint64(len(body)-pos-n) {
		return Message{}, scratch, errBadFrame
	}
	pos += n
	if plen > 0 {
		m.Payload = make([]byte, plen)
		copy(m.Payload, body[pos:])
	}
	return m, scratch, nil
}
