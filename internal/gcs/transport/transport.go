// Package transport provides the message transports used by the group
// communication component: an in-memory network with failure injection
// (latency, loss, partitions, crashes) for tests and simulated clusters, and
// a TCP transport for real deployments.
package transport

import "errors"

// Message is a point-to-point message between group communication endpoints.
// Type is used by the router to dispatch messages to protocol handlers;
// Payload is an opaque, protocol-defined encoding.
type Message struct {
	From    string
	To      string
	Type    string
	Payload []byte
}

// Endpoint is one node's attachment to a network.
type Endpoint interface {
	// Addr returns the endpoint's stable address.
	Addr() string
	// Send transmits a message to the endpoint with address to.  Sending is
	// best-effort: a dropped, partitioned or crashed destination is not an
	// error (the failure detector and protocol time-outs handle it).
	Send(to string, m Message) error
	// Recv returns the channel of inbound messages.  The channel is closed
	// when the endpoint is closed or crashes.
	Recv() <-chan Message
	// Close detaches the endpoint from the network.
	Close() error
}

// ErrClosed is returned when sending through a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// Network abstracts how a replica attaches to its peers, so the same replica
// engine runs over the in-memory failure-injection network (tests, simulated
// clusters, the fuzzer) and over real TCP sockets (one process per replica;
// see TCPNode).  Crash and Recover exist for the simulated crash model; for
// a real process the operating system plays that role (kill -9 the process),
// so TCPNode implements them as endpoint teardown/no-op.
type Network interface {
	// Endpoint attaches (or re-attaches) the endpoint with the given
	// address.
	Endpoint(addr string) Endpoint
	// Crash silences the endpoint at addr (simulated process crash).
	Crash(addr string)
	// Recover reverses a Crash.
	Recover(addr string)
}
