package transport

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPEndpoint is an Endpoint backed by real TCP connections, hardened for
// production multi-process clusters:
//
//   - messages are varint-framed (see wire.go) behind a magic/version
//     handshake, so mismatched binaries fail fast instead of mis-decoding;
//   - each peer has a dedicated sender goroutine draining a bounded FIFO
//     queue over one persistent connection, so the per-link FIFO contract of
//     MemNetwork (which the replication protocols rely on) holds across
//     reconnects: a broken connection is re-dialled with exponential backoff
//     plus jitter while queued messages wait in order;
//   - writes carry a deadline, so a silently dead connection (power loss,
//     partition — no RST) is detected promptly instead of blocking the link;
//   - sending to an unreachable peer is not an error until the queue fills;
//     then Send surfaces a typed, retryable *PeerError wrapping
//     ErrSendQueueFull rather than silently dropping the message;
//   - the inbox is bounded with an explicit drop policy (count and discard,
//     like an overloaded receiver on a lossy LAN) and inbound reads carry an
//     idle deadline so leaked connections do not accumulate.
//
// Like MemNetwork, delivery is at-most-once: a message in flight on a
// connection that breaks may be lost (it is counted as dropped, never
// retransmitted, so no duplicates and no reordering).
type TCPEndpoint struct {
	cfg      TCPConfig
	addr     string
	listener net.Listener
	inbox    chan Message

	mu      sync.Mutex
	peers   map[string]*tcpPeer
	inConns map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup // accept loop and read loops

	sent         atomic.Uint64
	dropped      atomic.Uint64
	inboxDropped atomic.Uint64
	reconnects   atomic.Uint64
	badHandshake atomic.Uint64
}

// TCPConfig tunes a TCPEndpoint.  The zero value gives LAN-appropriate
// defaults; see docs/OPERATIONS.md for WAN guidance.
type TCPConfig struct {
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// WriteTimeout is the per-message write deadline; a write that cannot
	// complete within it declares the connection dead (default 3s).
	WriteTimeout time.Duration
	// ReadIdleTimeout closes an inbound connection that has been silent for
	// this long (default 5 minutes; clusters running a failure detector
	// heartbeat far more often).  Negative disables the idle deadline.
	ReadIdleTimeout time.Duration
	// ReconnectMin/ReconnectMax bound the exponential redial backoff
	// (defaults 20ms and 1s); actual sleeps are jittered ±50%.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// SendQueue is the per-peer outbound queue capacity (default 4096).
	// When a peer is down, up to SendQueue messages wait in FIFO order;
	// beyond that Send fails fast with ErrSendQueueFull.
	SendQueue int
	// Inbox is the inbound delivery channel capacity (default 4096).
	Inbox int
	// Logf, when set, receives diagnostic messages (reconnects, handshake
	// failures, dropped frames).  Nil silences them.
	Logf func(format string, args ...interface{})
}

func (c *TCPConfig) applyDefaults() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 3 * time.Second
	}
	if c.ReadIdleTimeout == 0 {
		c.ReadIdleTimeout = 5 * time.Minute
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = 20 * time.Millisecond
	}
	if c.ReconnectMax < c.ReconnectMin {
		c.ReconnectMax = time.Second
	}
	if c.SendQueue <= 0 {
		c.SendQueue = 4096
	}
	if c.Inbox <= 0 {
		c.Inbox = 4096
	}
}

func (c *TCPConfig) logf(format string, args ...interface{}) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// ErrSendQueueFull is wrapped by the *PeerError a Send returns when a peer's
// bounded outbound queue is exhausted (the peer is down or too slow).  The
// condition is transient: accepted messages keep their FIFO positions and the
// caller may retry once the queue drains.
var ErrSendQueueFull = errors.New("transport: peer send queue full")

// PeerError is the typed, retryable error of the TCP send path: it names the
// peer and wraps the underlying condition, so callers can errors.Is against
// ErrSendQueueFull (backpressure) or ErrBadHandshake (incompatible peer).
type PeerError struct {
	Peer string
	Err  error
}

// Error implements error.
func (e *PeerError) Error() string {
	return fmt.Sprintf("transport: peer %s: %v", e.Peer, e.Err)
}

// Unwrap exposes the underlying condition to errors.Is/errors.As.
func (e *PeerError) Unwrap() error { return e.Err }

// TCPStats are cumulative counters of one endpoint.
type TCPStats struct {
	// Sent counts frames successfully written to a connection.
	Sent uint64
	// Dropped counts messages lost on the send path: queue overflow and
	// frames that failed mid-write on a breaking connection.
	Dropped uint64
	// InboxDropped counts inbound frames discarded because the inbox was
	// full (receiver overload).
	InboxDropped uint64
	// Reconnects counts outbound connections re-established after a failure.
	Reconnects uint64
	// BadHandshakes counts connections rejected for magic/version mismatch.
	BadHandshakes uint64
}

// ListenTCP creates an endpoint listening on addr (e.g. "127.0.0.1:7001")
// with default tuning.  The endpoint's address is the listener's actual
// address, which allows addr to use port 0 for tests.
func ListenTCP(addr string) (*TCPEndpoint, error) {
	return ListenTCPConfig(addr, TCPConfig{})
}

// ListenTCPConfig creates an endpoint with explicit tuning.
func ListenTCPConfig(addr string, cfg TCPConfig) (*TCPEndpoint, error) {
	cfg.applyDefaults()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ep := &TCPEndpoint{
		cfg:      cfg,
		addr:     l.Addr().String(),
		listener: l,
		inbox:    make(chan Message, cfg.Inbox),
		peers:    make(map[string]*tcpPeer),
		inConns:  make(map[net.Conn]struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

func (ep *TCPEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.listener.Accept()
		if err != nil {
			return
		}
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			conn.Close()
			return
		}
		ep.inConns[conn] = struct{}{}
		ep.mu.Unlock()
		ep.wg.Add(1)
		go ep.readLoop(conn)
	}
}

func (ep *TCPEndpoint) readLoop(conn net.Conn) {
	defer ep.wg.Done()
	defer func() {
		conn.Close()
		ep.mu.Lock()
		delete(ep.inConns, conn)
		ep.mu.Unlock()
	}()

	// Bidirectional handshake: announce ourselves, then validate the peer
	// before decoding anything.  A mismatch is logged and the connection
	// dropped — fail fast beats mis-decoding.
	conn.SetDeadline(time.Now().Add(ep.cfg.WriteTimeout + ep.cfg.DialTimeout))
	if err := writeHandshake(conn); err != nil {
		return
	}
	if err := readHandshake(conn); err != nil {
		ep.badHandshake.Add(1)
		ep.cfg.logf("transport %s: rejected inbound connection from %s: %v", ep.addr, conn.RemoteAddr(), err)
		return
	}
	conn.SetDeadline(time.Time{})

	r := bufio.NewReaderSize(conn, 64<<10)
	var scratch []byte
	for {
		if ep.cfg.ReadIdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(ep.cfg.ReadIdleTimeout))
		}
		var m Message
		var err error
		m, scratch, err = readFrame(r, scratch)
		if err != nil {
			if errors.Is(err, errFrameTooLarge) || errors.Is(err, errBadFrame) {
				ep.cfg.logf("transport %s: closing connection from %s: %v", ep.addr, conn.RemoteAddr(), err)
			}
			return
		}
		ep.mu.Lock()
		closed := ep.closed
		ep.mu.Unlock()
		if closed {
			return
		}
		select {
		case ep.inbox <- m:
		default:
			// Bounded inbox, explicit drop policy: an overloaded receiver
			// sheds load like a lossy network; protocols already tolerate
			// loss (retransmission/majority logic above the transport).
			ep.inboxDropped.Add(1)
		}
	}
}

// Addr implements Endpoint.
func (ep *TCPEndpoint) Addr() string { return ep.addr }

// Recv implements Endpoint.
func (ep *TCPEndpoint) Recv() <-chan Message { return ep.inbox }

// Stats returns a snapshot of the endpoint's counters.
func (ep *TCPEndpoint) Stats() TCPStats {
	return TCPStats{
		Sent:          ep.sent.Load(),
		Dropped:       ep.dropped.Load(),
		InboxDropped:  ep.inboxDropped.Load(),
		Reconnects:    ep.reconnects.Load(),
		BadHandshakes: ep.badHandshake.Load(),
	}
}

// Send implements Endpoint.  The message is appended to the peer's FIFO
// queue and written by the peer's sender goroutine; Send itself never blocks
// on the network.  A full queue (peer down past the buffering horizon, or
// severely backlogged) fails fast with a *PeerError wrapping
// ErrSendQueueFull — typed and retryable, never a silent drop.
func (ep *TCPEndpoint) Send(to string, m Message) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return ErrClosed
	}
	p, ok := ep.peers[to]
	if !ok {
		p = &tcpPeer{
			ep:    ep,
			addr:  to,
			queue: make(chan Message, ep.cfg.SendQueue),
			stop:  make(chan struct{}),
			done:  make(chan struct{}),
		}
		ep.peers[to] = p
		go p.loop()
	}
	ep.mu.Unlock()

	m.From = ep.addr
	m.To = to
	select {
	case p.queue <- m:
		return nil
	default:
		ep.dropped.Add(1)
		return &PeerError{Peer: to, Err: ErrSendQueueFull}
	}
}

// Close implements Endpoint.
func (ep *TCPEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	peers := make([]*tcpPeer, 0, len(ep.peers))
	for _, p := range ep.peers {
		peers = append(peers, p)
	}
	ep.peers = make(map[string]*tcpPeer)
	for conn := range ep.inConns {
		conn.Close()
	}
	ep.mu.Unlock()

	for _, p := range peers {
		close(p.stop)
	}
	for _, p := range peers {
		<-p.done
	}
	err := ep.listener.Close()
	ep.wg.Wait()
	close(ep.inbox)
	return err
}

// tcpPeer is the outbound half of one link: a bounded FIFO queue drained by
// a single goroutine over one persistent connection.
type tcpPeer struct {
	ep    *TCPEndpoint
	addr  string
	queue chan Message
	stop  chan struct{}
	done  chan struct{}
}

func (p *tcpPeer) loop() {
	defer close(p.done)
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := p.ep.cfg.ReconnectMin
	var buf []byte
	for {
		select {
		case <-p.stop:
			return
		case m := <-p.queue:
			if conn == nil {
				conn = p.dial(&backoff)
				if conn == nil {
					return // stopped while backing off
				}
			}
			buf = appendFrame(buf[:0], m)
			conn.SetWriteDeadline(time.Now().Add(p.ep.cfg.WriteTimeout))
			if _, err := conn.Write(buf); err != nil {
				// The frame may have partially reached the peer: treat it as
				// lost (at-most-once — no retransmission, so no duplicates
				// and no reordering) and re-dial for the rest of the queue.
				conn.Close()
				conn = nil
				p.ep.dropped.Add(1)
				p.ep.reconnects.Add(1)
				p.ep.cfg.logf("transport %s: connection to %s broke (%v); reconnecting", p.ep.addr, p.addr, err)
				continue
			}
			p.ep.sent.Add(1)
		}
	}
}

// dial establishes a handshaken connection, retrying with jittered
// exponential backoff until it succeeds or the endpoint stops.  Returns nil
// only when stopped.
func (p *tcpPeer) dial(backoff *time.Duration) net.Conn {
	cfg := &p.ep.cfg
	for {
		conn, err := net.DialTimeout("tcp", p.addr, cfg.DialTimeout)
		if err == nil {
			conn.SetDeadline(time.Now().Add(cfg.WriteTimeout + cfg.DialTimeout))
			hsErr := writeHandshake(conn)
			if hsErr == nil {
				hsErr = readHandshake(conn)
			}
			if hsErr == nil {
				conn.SetDeadline(time.Time{})
				*backoff = cfg.ReconnectMin
				return conn
			}
			conn.Close()
			if errors.Is(hsErr, ErrBadHandshake) {
				p.ep.badHandshake.Add(1)
			}
			cfg.logf("transport %s: handshake with %s failed: %v", p.ep.addr, p.addr, hsErr)
		} else {
			cfg.logf("transport %s: dial %s: %v (retrying in ~%v)", p.ep.addr, p.addr, err, *backoff)
		}
		// Jittered exponential backoff: sleep backoff ±50%, then double.
		sleep := *backoff/2 + time.Duration(rand.Int63n(int64(*backoff)))
		*backoff *= 2
		if *backoff > cfg.ReconnectMax {
			*backoff = cfg.ReconnectMax
		}
		select {
		case <-p.stop:
			return nil
		case <-time.After(sleep):
		}
	}
}
