package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// TCPEndpoint is an Endpoint backed by real TCP connections.  Messages are
// gob-encoded on persistent, lazily-established connections.  It is used by
// the cmd/gsdb-cluster binary; the in-memory network is preferred for tests.
type TCPEndpoint struct {
	addr     string
	listener net.Listener
	inbox    chan Message

	mu      sync.Mutex
	conns   map[string]*outConn
	inConns map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

type outConn struct {
	conn net.Conn
	enc  *gob.Encoder
}

const tcpInboxSize = 4096

// ListenTCP creates an endpoint listening on addr (e.g. "127.0.0.1:7001").
// The endpoint's address is the listener's actual address, which allows
// addr to use port 0 for tests.
func ListenTCP(addr string) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ep := &TCPEndpoint{
		addr:     l.Addr().String(),
		listener: l,
		inbox:    make(chan Message, tcpInboxSize),
		conns:    make(map[string]*outConn),
		inConns:  make(map[net.Conn]struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

func (ep *TCPEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.listener.Accept()
		if err != nil {
			return
		}
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			conn.Close()
			return
		}
		ep.inConns[conn] = struct{}{}
		ep.mu.Unlock()
		ep.wg.Add(1)
		go ep.readLoop(conn)
	}
}

func (ep *TCPEndpoint) readLoop(conn net.Conn) {
	defer ep.wg.Done()
	defer func() {
		conn.Close()
		ep.mu.Lock()
		delete(ep.inConns, conn)
		ep.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		ep.mu.Lock()
		closed := ep.closed
		ep.mu.Unlock()
		if closed {
			return
		}
		select {
		case ep.inbox <- m:
		default:
			// Receiver overloaded; drop, as a lossy network would.
		}
	}
}

// Addr implements Endpoint.
func (ep *TCPEndpoint) Addr() string { return ep.addr }

// Recv implements Endpoint.
func (ep *TCPEndpoint) Recv() <-chan Message { return ep.inbox }

// Send implements Endpoint.  Connection failures are reported but also leave
// the cached connection cleared, so a later retry re-dials.
func (ep *TCPEndpoint) Send(to string, m Message) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return ErrClosed
	}
	m.From = ep.addr
	m.To = to
	oc, ok := ep.conns[to]
	ep.mu.Unlock()

	if !ok {
		conn, err := net.Dial("tcp", to)
		if err != nil {
			return fmt.Errorf("transport: dial %s: %w", to, err)
		}
		oc = &outConn{conn: conn, enc: gob.NewEncoder(conn)}
		ep.mu.Lock()
		if existing, raced := ep.conns[to]; raced {
			conn.Close()
			oc = existing
		} else {
			ep.conns[to] = oc
		}
		ep.mu.Unlock()
	}

	ep.mu.Lock()
	err := oc.enc.Encode(m)
	if err != nil {
		oc.conn.Close()
		delete(ep.conns, to)
	}
	ep.mu.Unlock()
	if err != nil {
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	return nil
}

// Close implements Endpoint.
func (ep *TCPEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	for _, oc := range ep.conns {
		oc.conn.Close()
	}
	ep.conns = make(map[string]*outConn)
	for conn := range ep.inConns {
		conn.Close()
	}
	ep.mu.Unlock()
	err := ep.listener.Close()
	ep.wg.Wait()
	close(ep.inbox)
	return err
}
