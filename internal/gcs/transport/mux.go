package transport

import (
	"strings"
	"sync"
)

// Mux multiplexes several independent virtual networks ("instances") onto one
// base Network.  Each instance sees the full Network interface — endpoints,
// crashes, recoveries — while sharing the base network's physical links, so
// failure injection applied to the base (latency, loss, partitions, blocked
// links, crashes) affects every instance's traffic at once, exactly like
// co-located processes sharing one NIC.
//
// The partitioned cluster uses one instance per keyspace partition: every
// partition runs its own abcast/router stack over the same simulated wire.
// Messages are namespaced on the wire by prefixing Message.Type with
// "<instance>!"; the receiving side's pump strips the prefix and routes to
// the matching instance's endpoint, so protocol handlers never see the
// namespace.
type Mux struct {
	base Network

	mu     sync.Mutex
	insts  map[string]*muxNet
	eps    map[string]Endpoint // base endpoints, one per address
	pumped map[string]bool     // addresses with a running pump goroutine
	stop   chan struct{}
	closed bool
}

// muxSep separates the instance namespace from the payload message type on
// the wire.  No protocol type contains it.
const muxSep = "!"

// NewMux wraps base so independent protocol stacks can share it.
func NewMux(base Network) *Mux {
	return &Mux{
		base:   base,
		insts:  make(map[string]*muxNet),
		eps:    make(map[string]Endpoint),
		pumped: make(map[string]bool),
		stop:   make(chan struct{}),
	}
}

// Instance returns the virtual network for the given namespace, creating it
// on first use.  Namespaces must not contain the "!" separator.
func (x *Mux) Instance(ns string) Network {
	x.mu.Lock()
	defer x.mu.Unlock()
	if inst, ok := x.insts[ns]; ok {
		return inst
	}
	inst := &muxNet{mux: x, ns: ns, eps: make(map[string]*muxEndpoint)}
	x.insts[ns] = inst
	return inst
}

// Close stops the per-address pump goroutines.  Virtual endpoints become
// inert; the base network is left untouched.
func (x *Mux) Close() {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return
	}
	x.closed = true
	close(x.stop)
}

// baseEndpoint returns (attaching if needed) the base endpoint for addr and
// ensures its pump goroutine is running.  One pump per address serves every
// instance: it reads the base endpoint's inbound channel and routes each
// message to the owning instance by namespace prefix.
func (x *Mux) baseEndpoint(addr string) Endpoint {
	x.mu.Lock()
	defer x.mu.Unlock()
	ep, ok := x.eps[addr]
	if !ok {
		ep = x.base.Endpoint(addr)
		x.eps[addr] = ep
	}
	if !x.pumped[addr] && !x.closed {
		x.pumped[addr] = true
		go x.pump(ep)
	}
	return ep
}

func (x *Mux) pump(ep Endpoint) {
	for {
		select {
		case m, ok := <-ep.Recv():
			if !ok {
				return
			}
			x.route(m)
		case <-x.stop:
			return
		}
	}
}

// route delivers one inbound base message to the matching instance endpoint.
// Messages with no namespace prefix, an unknown instance, or no attached
// endpoint are dropped (same best-effort contract as the base network).
func (x *Mux) route(m Message) {
	i := strings.Index(m.Type, muxSep)
	if i < 0 {
		return
	}
	ns := m.Type[:i]
	m.Type = m.Type[i+1:]
	x.mu.Lock()
	inst, ok := x.insts[ns]
	x.mu.Unlock()
	if !ok {
		return
	}
	inst.mu.Lock()
	vep, ok := inst.eps[m.To]
	inst.mu.Unlock()
	if !ok {
		return
	}
	vep.deliver(m)
}

// muxNet is one instance's view of the shared network.
type muxNet struct {
	mux *Mux
	ns  string

	mu  sync.Mutex
	eps map[string]*muxEndpoint
}

// Endpoint implements Network.  Like MemNetwork, the same endpoint is
// returned across re-attachments of one address.
func (n *muxNet) Endpoint(addr string) Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.eps[addr]; ok {
		return ep
	}
	ep := &muxEndpoint{
		net:   n,
		addr:  addr,
		base:  n.mux.baseEndpoint(addr),
		inbox: make(chan Message, memInboxSize),
	}
	n.eps[addr] = ep
	return ep
}

// Crash implements Network.  A crash is a whole-server event: it silences the
// base endpoint (so every instance at addr stops sending and receiving) and
// drops this instance's queued inbound messages.  The partition layer crashes
// every instance of a server together, so each instance drains its own inbox.
func (n *muxNet) Crash(addr string) {
	n.mux.base.Crash(addr)
	n.mu.Lock()
	ep, ok := n.eps[addr]
	n.mu.Unlock()
	if !ok {
		return
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.crashed = true
	for {
		select {
		case <-ep.inbox:
		default:
			return
		}
	}
}

// Recover implements Network.
func (n *muxNet) Recover(addr string) {
	n.mux.base.Recover(addr)
	n.mu.Lock()
	ep, ok := n.eps[addr]
	n.mu.Unlock()
	if !ok {
		return
	}
	ep.mu.Lock()
	ep.crashed = false
	ep.mu.Unlock()
}

// muxEndpoint is one instance's attachment at one address.
type muxEndpoint struct {
	net  *muxNet
	addr string
	base Endpoint

	mu      sync.Mutex
	inbox   chan Message
	crashed bool
	closed  bool
}

// Addr implements Endpoint.
func (ep *muxEndpoint) Addr() string { return ep.addr }

// Recv implements Endpoint.
func (ep *muxEndpoint) Recv() <-chan Message { return ep.inbox }

// Close implements Endpoint.
func (ep *muxEndpoint) Close() error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.closed = true
	ep.crashed = true
	return nil
}

// Send implements Endpoint: the message rides the base network with its type
// prefixed by the instance namespace.
func (ep *muxEndpoint) Send(to string, m Message) error {
	ep.mu.Lock()
	if ep.closed || ep.crashed {
		ep.mu.Unlock()
		return ErrClosed
	}
	ep.mu.Unlock()
	m.Type = ep.net.ns + muxSep + m.Type
	return ep.base.Send(to, m)
}

// deliver places an inbound (already de-namespaced) message in the
// endpoint's inbox, dropping on overflow like the base network.
func (ep *muxEndpoint) deliver(m Message) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.crashed || ep.closed {
		return
	}
	select {
	case ep.inbox <- m:
	default:
	}
}
