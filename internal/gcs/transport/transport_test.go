package transport

import (
	"errors"
	"testing"
	"time"
)

func recvWithTimeout(t *testing.T, ep Endpoint, d time.Duration) (Message, bool) {
	t.Helper()
	select {
	case m := <-ep.Recv():
		return m, true
	case <-time.After(d):
		return Message{}, false
	}
}

func TestMemNetworkBasicDelivery(t *testing.T) {
	n := NewMemNetwork()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	if a.Addr() != "a" {
		t.Fatalf("Addr = %q", a.Addr())
	}
	if err := a.Send("b", Message{Type: "ping", Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	m, ok := recvWithTimeout(t, b, time.Second)
	if !ok {
		t.Fatal("message not delivered")
	}
	if m.From != "a" || m.To != "b" || m.Type != "ping" || string(m.Payload) != "hi" {
		t.Fatalf("message = %+v", m)
	}
	sent, dropped := n.Stats()
	if sent != 1 || dropped != 0 {
		t.Fatalf("stats = %d sent, %d dropped", sent, dropped)
	}
}

func TestMemNetworkEndpointReuse(t *testing.T) {
	n := NewMemNetwork()
	a1 := n.Endpoint("a")
	a2 := n.Endpoint("a")
	if a1 != a2 {
		t.Fatal("same address should return the same endpoint")
	}
}

func TestMemNetworkZeroLatencyPreservesOrder(t *testing.T) {
	n := NewMemNetwork()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	for i := 0; i < 100; i++ {
		a.Send("b", Message{Type: "seq", Payload: []byte{byte(i)}})
	}
	for i := 0; i < 100; i++ {
		m, ok := recvWithTimeout(t, b, time.Second)
		if !ok {
			t.Fatalf("message %d missing", i)
		}
		if m.Payload[0] != byte(i) {
			t.Fatalf("out of order: got %d want %d", m.Payload[0], i)
		}
	}
}

func TestMemNetworkUnknownDestination(t *testing.T) {
	n := NewMemNetwork()
	a := n.Endpoint("a")
	if err := a.Send("ghost", Message{Type: "x"}); err != nil {
		t.Fatalf("send to unknown destination should not error: %v", err)
	}
	_, dropped := n.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestMemNetworkLoss(t *testing.T) {
	n := NewMemNetwork(WithLoss(1.0), WithSeed(7))
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	for i := 0; i < 10; i++ {
		a.Send("b", Message{Type: "x"})
	}
	if _, ok := recvWithTimeout(t, b, 50*time.Millisecond); ok {
		t.Fatal("message delivered despite 100% loss")
	}
	_, dropped := n.Stats()
	if dropped != 10 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestMemNetworkLatency(t *testing.T) {
	n := NewMemNetwork(WithLatency(30*time.Millisecond), WithJitter(5*time.Millisecond))
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	start := time.Now()
	a.Send("b", Message{Type: "x"})
	if _, ok := recvWithTimeout(t, b, time.Second); !ok {
		t.Fatal("message not delivered")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivered after %v, expected >= ~30ms", elapsed)
	}
}

// TestMemNetworkChannelFIFO: delayed deliveries must preserve per-channel
// send order even when jitter gives later messages shorter delays — the
// in-memory LAN models FIFO links (like the TCP transport), and the lazy
// write-set propagation relies on it (an overtaking older write set would
// silently diverge a secondary under last-writer-wins).
// The jitter-only configuration (zero base latency) is the adversarial case:
// a zero jitter draw takes a zero total delay, which must still queue behind
// earlier draws of the same channel rather than delivering synchronously.
func TestMemNetworkChannelFIFO(t *testing.T) {
	n := NewMemNetwork(WithJitter(2*time.Millisecond), WithSeed(42))
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	const msgs = 200
	for i := 0; i < msgs; i++ {
		if err := a.Send("b", Message{Type: "seq", Payload: []byte{byte(i), byte(i >> 8)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		m, ok := recvWithTimeout(t, b, 2*time.Second)
		if !ok {
			t.Fatalf("message %d not delivered", i)
		}
		if got := int(m.Payload[0]) | int(m.Payload[1])<<8; got != i {
			t.Fatalf("delivery %d carried sequence %d: channel reordered", i, got)
		}
	}
}

func TestMemNetworkCrashAndRecover(t *testing.T) {
	n := NewMemNetwork()
	a := n.Endpoint("a")
	b := n.Endpoint("b")

	// Queue a message, then crash the destination before it reads it.
	a.Send("b", Message{Type: "lost"})
	n.Crash("b")
	if !n.Crashed("b") {
		t.Fatal("Crashed should report true")
	}
	// Messages to a crashed endpoint are dropped.
	a.Send("b", Message{Type: "also-lost"})
	// A crashed endpoint cannot send.
	if err := b.Send("a", Message{Type: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send from crashed endpoint: %v", err)
	}

	n.Recover("b")
	if n.Crashed("b") {
		t.Fatal("Crashed should report false after recovery")
	}
	// The queued and in-crash messages are gone; new messages flow again.
	a.Send("b", Message{Type: "fresh"})
	m, ok := recvWithTimeout(t, b, time.Second)
	if !ok || m.Type != "fresh" {
		t.Fatalf("message after recovery = %+v, ok=%v", m, ok)
	}
	// Crash/recover of unknown addresses are no-ops.
	n.Crash("ghost")
	n.Recover("ghost")
	if n.Crashed("ghost") {
		t.Fatal("unknown endpoint cannot be crashed")
	}
}

func TestMemNetworkPartition(t *testing.T) {
	n := NewMemNetwork()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	c := n.Endpoint("c")
	n.Partition([]string{"a"}, []string{"b", "c"})

	a.Send("b", Message{Type: "blocked"})
	if _, ok := recvWithTimeout(t, b, 50*time.Millisecond); ok {
		t.Fatal("message crossed a partition")
	}
	// Within a partition, traffic flows.
	b.Send("c", Message{Type: "ok"})
	if _, ok := recvWithTimeout(t, c, time.Second); !ok {
		t.Fatal("intra-partition message lost")
	}
	n.Heal()
	a.Send("b", Message{Type: "healed"})
	if m, ok := recvWithTimeout(t, b, time.Second); !ok || m.Type != "healed" {
		t.Fatal("message lost after heal")
	}
}

func TestMemEndpointClose(t *testing.T) {
	n := NewMemNetwork()
	a := n.Endpoint("a")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send(b.Addr(), Message{Type: "hello", Payload: []byte("world")}); err != nil {
		t.Fatal(err)
	}
	m, ok := recvWithTimeout(t, b, 2*time.Second)
	if !ok {
		t.Fatal("TCP message not delivered")
	}
	if m.Type != "hello" || string(m.Payload) != "world" || m.From != a.Addr() {
		t.Fatalf("message = %+v", m)
	}

	// Reply over the reverse direction (separate connection).
	if err := b.Send(a.Addr(), Message{Type: "re"}); err != nil {
		t.Fatal(err)
	}
	if m, ok := recvWithTimeout(t, a, 2*time.Second); !ok || m.Type != "re" {
		t.Fatalf("reply = %+v ok=%v", m, ok)
	}
}

func TestTCPManyMessagesReuseConnection(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send(b.Addr(), Message{Type: "seq", Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		m, ok := recvWithTimeout(t, b, 2*time.Second)
		if !ok {
			t.Fatalf("message %d not delivered", i)
		}
		if m.Payload[0] != byte(i) {
			t.Fatalf("out of order at %d: %d", i, m.Payload[0])
		}
	}
}

func TestTCPSendErrors(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Sending to a dead address is not an immediate error: the message is
	// queued FIFO while the dialer backs off (see TestTCPDeadPeerBackpressure
	// for the typed overflow error once the queue fills).
	if err := a.Send("127.0.0.1:1", Message{Type: "x"}); err != nil {
		t.Fatalf("send to dead address should queue, got %v", err)
	}
	a.Close()
	if err := a.Send("127.0.0.1:1", Message{Type: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
