package transport

import (
	"testing"
	"time"
)

func recvOne(t *testing.T, ep Endpoint) Message {
	t.Helper()
	select {
	case m := <-ep.Recv():
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for message")
		return Message{}
	}
}

func TestMuxIsolatesInstances(t *testing.T) {
	base := NewMemNetwork()
	mux := NewMux(base)
	defer mux.Close()

	a := mux.Instance("p0")
	b := mux.Instance("p1")
	a1, a2 := a.Endpoint("s1"), a.Endpoint("s2")
	b2 := b.Endpoint("s2")

	if err := a1.Send("s2", Message{Type: "ab.data", Payload: []byte("x")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	m := recvOne(t, a2)
	if m.Type != "ab.data" || m.From != "s1" || m.To != "s2" || string(m.Payload) != "x" {
		t.Fatalf("instance p0 got %+v", m)
	}
	select {
	case m := <-b2.Recv():
		t.Fatalf("instance p1 leaked message %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMuxEndpointStable(t *testing.T) {
	mux := NewMux(NewMemNetwork())
	defer mux.Close()
	inst := mux.Instance("p0")
	if inst.Endpoint("s1") != inst.Endpoint("s1") {
		t.Fatal("Endpoint not stable across re-attachment")
	}
	if mux.Instance("p0") != inst {
		t.Fatal("Instance not stable")
	}
}

func TestMuxCrashIsWholeServer(t *testing.T) {
	base := NewMemNetwork()
	mux := NewMux(base)
	defer mux.Close()

	a := mux.Instance("p0")
	b := mux.Instance("p1")
	a1, a2 := a.Endpoint("s1"), a.Endpoint("s2")
	b1, b2 := b.Endpoint("s1"), b.Endpoint("s2")

	// Crash s2 through one instance: both instances' traffic to s2 dies, and
	// s2 cannot send on either instance.
	a.Crash("s2")
	b.Crash("s2")
	if err := a1.Send("s2", Message{Type: "t"}); err != nil {
		t.Fatalf("send to crashed: %v", err)
	}
	if err := b1.Send("s2", Message{Type: "t"}); err != nil {
		t.Fatalf("send to crashed: %v", err)
	}
	select {
	case m := <-a2.Recv():
		t.Fatalf("crashed endpoint received %+v", m)
	case m := <-b2.Recv():
		t.Fatalf("crashed endpoint received %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
	if err := b2.Send("s1", Message{Type: "t"}); err == nil {
		t.Fatal("crashed endpoint could send")
	}

	// Recover on both instances: traffic flows again.
	a.Recover("s2")
	b.Recover("s2")
	if err := a1.Send("s2", Message{Type: "after"}); err != nil {
		t.Fatalf("send after recover: %v", err)
	}
	if m := recvOne(t, a2); m.Type != "after" {
		t.Fatalf("got %+v", m)
	}
	if err := b2.Send("s1", Message{Type: "back"}); err != nil {
		t.Fatalf("send after recover: %v", err)
	}
	if m := recvOne(t, b1); m.Type != "back" {
		t.Fatalf("got %+v", m)
	}
}

func TestMuxBaseFaultInjectionApplies(t *testing.T) {
	base := NewMemNetwork()
	mux := NewMux(base)
	defer mux.Close()
	inst := mux.Instance("p0")
	e1, e2 := inst.Endpoint("s1"), inst.Endpoint("s2")

	base.BlockLink("s1", "s2")
	if err := e1.Send("s2", Message{Type: "t"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case m := <-e2.Recv():
		t.Fatalf("blocked link delivered %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
	base.UnblockAllLinks()
	if err := e1.Send("s2", Message{Type: "t2"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if m := recvOne(t, e2); m.Type != "t2" {
		t.Fatalf("got %+v", m)
	}
}
