package gcs

import (
	"sync"
	"testing"
	"time"

	"groupsafe/internal/gcs/transport"
)

func TestRouterDispatchByPrefix(t *testing.T) {
	net := transport.NewMemNetwork()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	r := NewRouter(b)

	var mu sync.Mutex
	got := map[string]int{}
	record := func(key string) Handler {
		return func(m transport.Message) {
			mu.Lock()
			got[key]++
			mu.Unlock()
		}
	}
	r.Handle("ab.", record("ab"))
	r.Handle("ab.data", record("ab.data"))
	r.Handle("fd.", record("fd"))
	r.HandleFallback(record("other"))
	r.Start()
	defer r.Stop()

	a.Send("b", transport.Message{Type: "ab.data"})
	a.Send("b", transport.Message{Type: "ab.order"})
	a.Send("b", transport.Message{Type: "fd.heartbeat"})
	a.Send("b", transport.Message{Type: "unknown"})

	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := got["ab.data"] == 1 && got["ab"] == 1 && got["fd"] == 1 && got["other"] == 1
		mu.Unlock()
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	t.Fatalf("dispatch counts = %v", got)
}

func TestRouterLongestPrefixWins(t *testing.T) {
	net := transport.NewMemNetwork()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	r := NewRouter(b)
	hits := make(chan string, 4)
	r.Handle("x.", func(m transport.Message) { hits <- "short" })
	r.Handle("x.long.", func(m transport.Message) { hits <- "long" })
	r.Start()
	defer r.Stop()

	a.Send("b", transport.Message{Type: "x.long.msg"})
	select {
	case h := <-hits:
		if h != "long" {
			t.Fatalf("dispatched to %q, want longest prefix", h)
		}
	case <-time.After(time.Second):
		t.Fatal("message not dispatched")
	}
}

func TestRouterSendAndEndpoint(t *testing.T) {
	net := transport.NewMemNetwork()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	r := NewRouter(a)
	if r.Endpoint() != a {
		t.Fatal("Endpoint accessor wrong")
	}
	if err := r.Send("b", transport.Message{Type: "hi"}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-b.Recv():
		if m.Type != "hi" {
			t.Fatalf("message = %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestRouterStopBeforeStart(t *testing.T) {
	net := transport.NewMemNetwork()
	r := NewRouter(net.Endpoint("a"))
	r.Stop() // must not hang or panic
	r.Start()
	r.Stop()
	r.Stop() // idempotent
}

func TestRouterDoubleStart(t *testing.T) {
	net := transport.NewMemNetwork()
	r := NewRouter(net.Endpoint("a"))
	r.Start()
	r.Start()
	r.Stop()
}

func TestRouterUnhandledMessageIgnored(t *testing.T) {
	net := transport.NewMemNetwork()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	r := NewRouter(b)
	r.Start()
	defer r.Stop()
	// No handlers registered: the message is dropped without panicking.
	a.Send("b", transport.Message{Type: "whatever"})
	time.Sleep(20 * time.Millisecond)
}
