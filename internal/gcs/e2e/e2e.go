// Package e2e implements the paper's new group communication primitive:
// end-to-end atomic broadcast (Sect. 4.2).
//
// A classical atomic broadcast guarantees that messages are *delivered* to
// the application, but a crash between delivery and processing loses the
// message: this is why group-communication-based replication cannot be 2-safe
// (Sect. 3, Fig. 5).  End-to-end atomic broadcast closes the gap:
//
//   - every delivered message is first written to stable storage by the group
//     communication component (log-based recovery instead of state transfer);
//   - the application signals *successful delivery* by acknowledging the
//     message (Ack);
//   - after a crash, every logged-but-unacknowledged message is delivered
//     again (Recover), so a non-red process eventually successfully delivers
//     every message (End-to-End property);
//   - a message may be delivered several times but is successfully delivered
//     at most once (refined Uniform Integrity): deliveries for already
//     acknowledged sequence numbers are suppressed, and the application's
//     testable-transaction mechanism makes reprocessing idempotent.
package e2e

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"

	"groupsafe/internal/gcs/abcast"
	"groupsafe/internal/wal"
)

// Delivery is a message delivered to the application.  Replayed is true when
// the delivery is a post-recovery replay of a logged, unacknowledged message.
type Delivery struct {
	Seq      uint64
	MsgID    string
	Payload  []byte
	Replayed bool
}

// Underlying is the classical atomic broadcast being wrapped.
type Underlying interface {
	Broadcast(payload []byte) (string, error)
	Deliveries() <-chan abcast.Delivery
	Close()
}

// Config configures the end-to-end layer.
type Config struct {
	// Log is the stable message log (required).
	Log wal.Log
	// Buffer is the delivery channel capacity (default 65536).
	Buffer int
	// SyncEveryMessage forces the log before each delivery (default true;
	// turning it off trades recovery completeness for latency and is used by
	// the ablation benchmarks).
	SyncEveryMessage bool
	// NoSyncEveryMessage disables the per-message force explicitly (Config is
	// zero-value friendly: the default remains "force each message").
	NoSyncEveryMessage bool
}

// ErrClosed is returned by operations on a closed broadcaster.
var ErrClosed = errors.New("e2e: broadcaster closed")

type logged struct {
	MsgID   string
	Payload []byte
}

// Broadcaster is an end-to-end atomic broadcast endpoint.
type Broadcaster struct {
	under Underlying
	log   wal.Log
	sync  bool

	mu        sync.Mutex
	delivered map[uint64]logged // logged deliveries (durable intent)
	acked     map[uint64]bool   // successfully delivered
	closed    bool
	started   bool
	stop      chan struct{}
	done      chan struct{}

	deliveries chan Delivery

	stats Stats
}

// Stats are cumulative counters of the end-to-end layer.
type Stats struct {
	Logged     uint64
	Acked      uint64
	Replayed   uint64
	Suppressed uint64
	// Forces counts log Syncs issued by the delivery pump.  The pump drains
	// the underlying broadcast opportunistically and forces once per drained
	// batch, so under load Forces grows much slower than Logged.
	Forces uint64
}

// Wrap builds an end-to-end broadcaster over an underlying atomic broadcast
// and a stable log.  Call Recover (optionally) and Start afterwards.
func Wrap(under Underlying, cfg Config) (*Broadcaster, error) {
	if cfg.Log == nil {
		return nil, fmt.Errorf("e2e: a stable log is required")
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 65536
	}
	syncEach := true
	if cfg.NoSyncEveryMessage {
		syncEach = false
	}
	if cfg.SyncEveryMessage {
		syncEach = true
	}
	b := &Broadcaster{
		under:      under,
		log:        cfg.Log,
		sync:       syncEach,
		delivered:  make(map[uint64]logged),
		acked:      make(map[uint64]bool),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		deliveries: make(chan Delivery, cfg.Buffer),
	}
	if err := b.loadLog(); err != nil {
		return nil, err
	}
	return b, nil
}

// loadLog rebuilds the delivered/acked maps from the durable log.
func (b *Broadcaster) loadLog() error {
	return b.log.Replay(func(r wal.Record) error {
		switch r.Kind {
		case wal.KindMessage:
			var l logged
			if err := decode(r.Data, &l); err != nil {
				return fmt.Errorf("e2e: corrupt message record %d: %w", r.LSN, err)
			}
			b.delivered[r.TxnID] = l
		case wal.KindAck:
			b.acked[r.TxnID] = true
		}
		return nil
	})
}

// Recover re-delivers, in sequence order, every logged message that was never
// acknowledged (the replay step of log-based recovery, Fig. 7).  It returns
// the number of replayed messages.
func (b *Broadcaster) Recover() (int, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, ErrClosed
	}
	var seqs []uint64
	for seq := range b.delivered {
		if !b.acked[seq] {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	replay := make([]Delivery, 0, len(seqs))
	for _, seq := range seqs {
		l := b.delivered[seq]
		replay = append(replay, Delivery{Seq: seq, MsgID: l.MsgID, Payload: l.Payload, Replayed: true})
	}
	b.stats.Replayed += uint64(len(replay))
	ch := b.deliveries
	b.mu.Unlock()
	for _, d := range replay {
		ch <- d
	}
	return len(replay), nil
}

// Start launches the pump that logs and forwards underlying deliveries.
func (b *Broadcaster) Start() {
	b.mu.Lock()
	if b.started || b.closed {
		b.mu.Unlock()
		return
	}
	b.started = true
	b.mu.Unlock()
	go b.pump()
}

// maxPumpBatch bounds how many underlying deliveries the pump drains into one
// log force.
const maxPumpBatch = 256

func (b *Broadcaster) pump() {
	defer close(b.done)
	for {
		select {
		case <-b.stop:
			return
		case d, ok := <-b.under.Deliveries():
			if !ok {
				return
			}
			// Drain whatever else is already queued: the whole batch is
			// logged with a single force instead of one per message.
			batch := []abcast.Delivery{d}
		drain:
			for len(batch) < maxPumpBatch {
				select {
				case d2, ok := <-b.under.Deliveries():
					if !ok {
						break drain
					}
					batch = append(batch, d2)
				default:
					break drain
				}
			}
			b.handleBatch(batch)
		}
	}
}

// handleBatch logs every new message of the batch, forces the log once, and
// forwards the deliveries in order.
func (b *Broadcaster) handleBatch(batch []abcast.Delivery) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	forward := batch[:0]
	var toLog []abcast.Delivery
	for _, d := range batch {
		if b.acked[d.Seq] {
			// Already successfully delivered in a previous incarnation:
			// refined uniform integrity suppresses the duplicate.
			b.stats.Suppressed++
			continue
		}
		if _, alreadyLogged := b.delivered[d.Seq]; !alreadyLogged {
			toLog = append(toLog, d)
		}
		forward = append(forward, d)
	}
	b.mu.Unlock()

	if len(toLog) > 0 {
		for _, d := range toLog {
			rec := wal.Record{
				Kind:  wal.KindMessage,
				TxnID: d.Seq,
				Data:  encode(logged{MsgID: d.MsgID, Payload: d.Payload}),
			}
			if _, err := b.log.Append(rec); err != nil {
				return
			}
		}
		if b.sync {
			if err := b.log.Sync(); err != nil {
				return
			}
		}
		b.mu.Lock()
		for _, d := range toLog {
			b.delivered[d.Seq] = logged{MsgID: d.MsgID, Payload: d.Payload}
			b.stats.Logged++
		}
		if b.sync {
			b.stats.Forces++
		}
		b.mu.Unlock()
	}

	b.mu.Lock()
	closed := b.closed
	ch := b.deliveries
	b.mu.Unlock()
	if closed {
		return
	}
	for _, d := range forward {
		ch <- Delivery{Seq: d.Seq, MsgID: d.MsgID, Payload: d.Payload}
	}
}

// Broadcast A-broadcasts a payload through the underlying broadcast.
func (b *Broadcaster) Broadcast(payload []byte) (string, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return "", ErrClosed
	}
	b.mu.Unlock()
	return b.under.Broadcast(payload)
}

// Deliveries returns the channel of deliveries (initial and replayed).
func (b *Broadcaster) Deliveries() <-chan Delivery { return b.deliveries }

// Ack records the successful delivery of the message with the given sequence
// number: it will never be replayed again.
func (b *Broadcaster) Ack(seq uint64) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	if b.acked[seq] {
		b.mu.Unlock()
		return nil
	}
	b.acked[seq] = true
	b.stats.Acked++
	b.mu.Unlock()
	if _, err := b.log.Append(wal.Record{Kind: wal.KindAck, TxnID: seq}); err != nil {
		return fmt.Errorf("e2e: log ack: %w", err)
	}
	// Acknowledgements may be forced lazily: losing one only causes an extra
	// replay, which the application tolerates (testable transactions).
	return nil
}

// Acked reports whether seq has been successfully delivered.
func (b *Broadcaster) Acked(seq uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.acked[seq]
}

// Unacked returns the sequence numbers delivered but not yet acknowledged.
func (b *Broadcaster) Unacked() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []uint64
	for seq := range b.delivered {
		if !b.acked[seq] {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns a snapshot of the counters.
func (b *Broadcaster) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Close stops the pump; it does not close the underlying broadcaster or the
// stable log (their lifetime belongs to the caller).
func (b *Broadcaster) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	started := b.started
	b.mu.Unlock()
	close(b.stop)
	if started {
		<-b.done
	}
}

func encode(v interface{}) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("e2e: encode: %v", err))
	}
	return buf.Bytes()
}

func decode(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
