package e2e

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"groupsafe/internal/gcs/abcast"
	"groupsafe/internal/wal"
)

// fakeUnder is a scripted underlying atomic broadcast for unit tests.
type fakeUnder struct {
	ch     chan abcast.Delivery
	sent   []string
	closed bool
	seq    uint64
}

func newFakeUnder() *fakeUnder {
	return &fakeUnder{ch: make(chan abcast.Delivery, 128)}
}

func (f *fakeUnder) Broadcast(payload []byte) (string, error) {
	f.seq++
	id := fmt.Sprintf("fake/%d", f.seq)
	f.sent = append(f.sent, string(payload))
	return id, nil
}

func (f *fakeUnder) Deliveries() <-chan abcast.Delivery { return f.ch }
func (f *fakeUnder) Close()                             { f.closed = true }

func (f *fakeUnder) deliver(seq uint64, payload string) {
	f.ch <- abcast.Delivery{Seq: seq, MsgID: fmt.Sprintf("m%d", seq), Payload: []byte(payload)}
}

func recvDelivery(t *testing.T, b *Broadcaster, timeout time.Duration) Delivery {
	t.Helper()
	select {
	case d := <-b.Deliveries():
		return d
	case <-time.After(timeout):
		t.Fatal("no delivery before timeout")
		return Delivery{}
	}
}

func TestWrapRequiresLog(t *testing.T) {
	if _, err := Wrap(newFakeUnder(), Config{}); err == nil {
		t.Fatal("Wrap without a log should fail")
	}
}

func TestDeliveryIsLoggedBeforeHandoff(t *testing.T) {
	log := wal.NewMemLog()
	under := newFakeUnder()
	b, err := Wrap(under, Config{Log: log})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()

	under.deliver(1, "t1")
	d := recvDelivery(t, b, time.Second)
	if d.Seq != 1 || string(d.Payload) != "t1" || d.Replayed {
		t.Fatalf("delivery = %+v", d)
	}
	// The message is on stable storage (synced) before the application saw it.
	if log.DurableLen() == 0 {
		t.Fatal("message was not forced to the stable log before delivery")
	}
	st := b.Stats()
	if st.Logged != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAckStopsReplay(t *testing.T) {
	log := wal.NewMemLog()
	under := newFakeUnder()
	b, _ := Wrap(under, Config{Log: log})
	b.Start()
	under.deliver(1, "t1")
	under.deliver(2, "t2")
	recvDelivery(t, b, time.Second)
	recvDelivery(t, b, time.Second)

	if err := b.Ack(1); err != nil {
		t.Fatal(err)
	}
	if !b.Acked(1) || b.Acked(2) {
		t.Fatal("ack bookkeeping wrong")
	}
	if got := b.Unacked(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Unacked = %v", got)
	}
	// Re-acking is idempotent.
	if err := b.Ack(1); err != nil {
		t.Fatal(err)
	}
	b.Close()

	// Simulate a crash-recovery of the same process: the log survives, the
	// end-to-end layer is rebuilt from it, and only the unacked message is
	// replayed.
	log.Sync()
	b2, err := Wrap(newFakeUnder(), Config{Log: log})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	n, err := b2.Recover()
	if err != nil || n != 1 {
		t.Fatalf("Recover = %d, %v; want 1 replayed", n, err)
	}
	d := recvDelivery(t, b2, time.Second)
	if d.Seq != 2 || !d.Replayed || string(d.Payload) != "t2" {
		t.Fatalf("replayed delivery = %+v", d)
	}
}

func TestEndToEndPropertyAcrossCrash(t *testing.T) {
	// The scenario of Fig. 5 / Fig. 7 at the level of the primitive: a message
	// is delivered but the process crashes before processing it.  With the
	// end-to-end broadcast, after recovery the message is delivered again,
	// and after the application finally acks, it is never replayed again.
	log := wal.NewMemLog()
	under := newFakeUnder()
	b, _ := Wrap(under, Config{Log: log})
	b.Start()
	under.deliver(1, "t1")
	recvDelivery(t, b, time.Second)
	// Crash before ack: volatile state is lost but the synced log survives
	// (per-message sync is the default).
	b.Close()
	log.Crash()

	b2, _ := Wrap(newFakeUnder(), Config{Log: log})
	defer b2.Close()
	if n, _ := b2.Recover(); n != 1 {
		t.Fatalf("first recovery replayed %d messages, want 1", n)
	}
	d := recvDelivery(t, b2, time.Second)
	if !d.Replayed || d.Seq != 1 {
		t.Fatalf("replay = %+v", d)
	}
	if err := b2.Ack(1); err != nil {
		t.Fatal(err)
	}
	log.Sync()

	b3, _ := Wrap(newFakeUnder(), Config{Log: log})
	defer b3.Close()
	if n, _ := b3.Recover(); n != 0 {
		t.Fatalf("after successful delivery, recovery replayed %d messages, want 0", n)
	}
}

func TestRefinedUniformIntegritySuppressesAckedRedelivery(t *testing.T) {
	log := wal.NewMemLog()
	under := newFakeUnder()
	b, _ := Wrap(under, Config{Log: log})
	defer b.Close()
	b.Start()
	under.deliver(1, "t1")
	recvDelivery(t, b, time.Second)
	b.Ack(1)
	// The underlying layer redelivers seq 1 (e.g. a re-announced order after
	// sequencer failover): the end-to-end layer suppresses it.
	under.deliver(1, "t1")
	select {
	case d := <-b.Deliveries():
		t.Fatalf("acked message redelivered: %+v", d)
	case <-time.After(100 * time.Millisecond):
	}
	if b.Stats().Suppressed != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestUnackedRedeliveryPassesThrough(t *testing.T) {
	// A message delivered but not acked may legitimately be delivered again
	// (refined uniform integrity allows it); it must not be logged twice.
	log := wal.NewMemLog()
	under := newFakeUnder()
	b, _ := Wrap(under, Config{Log: log})
	defer b.Close()
	b.Start()
	under.deliver(1, "t1")
	recvDelivery(t, b, time.Second)
	under.deliver(1, "t1")
	d := recvDelivery(t, b, time.Second)
	if d.Seq != 1 {
		t.Fatalf("redelivery = %+v", d)
	}
	if b.Stats().Logged != 1 {
		t.Fatalf("message logged %d times, want 1", b.Stats().Logged)
	}
}

func TestBroadcastPassThrough(t *testing.T) {
	log := wal.NewMemLog()
	under := newFakeUnder()
	b, _ := Wrap(under, Config{Log: log})
	id, err := b.Broadcast([]byte("payload"))
	if err != nil || id == "" {
		t.Fatalf("broadcast = %q, %v", id, err)
	}
	if len(under.sent) != 1 || under.sent[0] != "payload" {
		t.Fatalf("underlying saw %v", under.sent)
	}
	b.Close()
	if _, err := b.Broadcast([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("broadcast after close: %v", err)
	}
	if err := b.Ack(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("ack after close: %v", err)
	}
	if _, err := b.Recover(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recover after close: %v", err)
	}
}

func TestRecoverOrdersReplaysBySeq(t *testing.T) {
	log := wal.NewMemLog()
	under := newFakeUnder()
	b, _ := Wrap(under, Config{Log: log})
	b.Start()
	for seq := uint64(5); seq >= 1; seq-- {
		under.deliver(seq, fmt.Sprintf("t%d", seq))
	}
	for i := 0; i < 5; i++ {
		recvDelivery(t, b, time.Second)
	}
	b.Ack(3)
	b.Close()
	log.Sync()

	b2, _ := Wrap(newFakeUnder(), Config{Log: log})
	defer b2.Close()
	n, _ := b2.Recover()
	if n != 4 {
		t.Fatalf("replayed %d, want 4", n)
	}
	var prev uint64
	for i := 0; i < 4; i++ {
		d := recvDelivery(t, b2, time.Second)
		if d.Seq <= prev {
			t.Fatalf("replay out of order: %d after %d", d.Seq, prev)
		}
		if d.Seq == 3 {
			t.Fatal("acked message replayed")
		}
		prev = d.Seq
	}
}

func TestNoSyncEveryMessageOption(t *testing.T) {
	log := wal.NewMemLog()
	under := newFakeUnder()
	b, _ := Wrap(under, Config{Log: log, NoSyncEveryMessage: true})
	defer b.Close()
	b.Start()
	under.deliver(1, "t1")
	recvDelivery(t, b, time.Second)
	if log.DurableLen() != 0 {
		t.Fatal("NoSyncEveryMessage should not force the log per message")
	}
	// With the lazy setting, an unsynced message does not survive a crash —
	// the durability/latency trade-off measured by the ablation benchmark.
	log.Crash()
	b2, _ := Wrap(newFakeUnder(), Config{Log: log})
	defer b2.Close()
	if n, _ := b2.Recover(); n != 0 {
		t.Fatalf("unsynced message replayed after crash: %d", n)
	}
}

func TestDoubleStartAndCloseAreIdempotent(t *testing.T) {
	log := wal.NewMemLog()
	b, _ := Wrap(newFakeUnder(), Config{Log: log})
	b.Start()
	b.Start()
	b.Close()
	b.Close()
}
