package e2e

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"groupsafe/internal/wal"
)

// countingLog wraps a wal.Log and counts Sync calls.
type countingLog struct {
	wal.Log
	syncs int32
}

func (c *countingLog) Sync() error {
	atomic.AddInt32(&c.syncs, 1)
	return c.Log.Sync()
}

// TestPumpForcesOncePerBatch pre-queues a burst of underlying deliveries and
// checks that the pump logs all of them with a single force instead of one
// per message.
func TestPumpForcesOncePerBatch(t *testing.T) {
	log := &countingLog{Log: wal.NewMemLog()}
	under := newFakeUnder()
	const burst = 8
	for i := 1; i <= burst; i++ {
		under.deliver(uint64(i), fmt.Sprintf("m%d", i))
	}
	b, err := Wrap(under, Config{Log: log})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()

	for i := 1; i <= burst; i++ {
		d := recvDelivery(t, b, 2*time.Second)
		if d.Seq != uint64(i) {
			t.Fatalf("delivery %d has seq %d", i, d.Seq)
		}
	}
	if got := atomic.LoadInt32(&log.syncs); got != 1 {
		t.Fatalf("pump issued %d forces for a %d-message burst, want 1", got, burst)
	}
	st := b.Stats()
	if st.Logged != burst || st.Forces != 1 {
		t.Fatalf("stats = %+v, want Logged=%d Forces=1", st, burst)
	}
}

// TestBatchedLogSurvivesCrash checks that a batch logged with one force is
// fully replayed: all messages of the batch are durable, none acknowledged,
// so Recover re-delivers every one in order.
func TestBatchedLogSurvivesCrash(t *testing.T) {
	mem := wal.NewMemLog()
	under := newFakeUnder()
	const burst = 5
	for i := 1; i <= burst; i++ {
		under.deliver(uint64(i), fmt.Sprintf("m%d", i))
	}
	b, err := Wrap(under, Config{Log: mem})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	for i := 0; i < burst; i++ {
		recvDelivery(t, b, 2*time.Second)
	}
	b.Close()

	// Crash: the unsynced tail is lost — but the batch was forced before the
	// deliveries were handed out, so every message survives.
	mem.Crash()
	b2, err := Wrap(newFakeUnder(), Config{Log: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if got := len(b2.Unacked()); got != burst {
		t.Fatalf("after crash %d unacked messages survived, want %d", got, burst)
	}
	n, err := b2.Recover()
	if err != nil || n != burst {
		t.Fatalf("Recover = (%d, %v), want (%d, nil)", n, err, burst)
	}
	for i := 1; i <= burst; i++ {
		d := recvDelivery(t, b2, 2*time.Second)
		if d.Seq != uint64(i) || !d.Replayed {
			t.Fatalf("replayed delivery %d = %+v", i, d)
		}
	}
}
