package e2e

import (
	"fmt"
	"testing"
	"time"

	"groupsafe/internal/gcs"
	"groupsafe/internal/gcs/abcast"
	"groupsafe/internal/gcs/transport"
	"groupsafe/internal/wal"
)

// TestTCPClusterEndToEndSmoke runs a small real-TCP cluster through the full
// group communication stack — TCPEndpoint → router → uniform atomic
// broadcast → end-to-end layer — and checks that concurrent broadcasts from
// several members are delivered in the same total order everywhere, logged
// before handoff, and acknowledgeable.  The TCP transport is otherwise only
// unit-tested; this is the end-to-end smoke test over real sockets.
func TestTCPClusterEndToEndSmoke(t *testing.T) {
	const n = 3
	type node struct {
		ep     *transport.TCPEndpoint
		router *gcs.Router
		bc     *Broadcaster
	}

	// Listen first: the member list is the set of real listener addresses.
	eps := make([]*transport.TCPEndpoint, n)
	members := make([]string, n)
	for i := range eps {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		members[i] = ep.Addr()
	}

	nodes := make([]*node, n)
	for i, ep := range eps {
		router := gcs.NewRouter(ep)
		under, err := abcast.New(abcast.Config{Self: ep.Addr(), Members: members}, router)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := Wrap(under, Config{Log: wal.NewMemLog()})
		if err != nil {
			t.Fatal(err)
		}
		router.Start()
		bc.Start()
		nodes[i] = &node{ep: ep, router: router, bc: bc}
	}
	defer func() {
		for _, nd := range nodes {
			nd.bc.Close()
			nd.router.Stop()
			_ = nd.ep.Close()
		}
	}()

	// Every member broadcasts a handful of payloads concurrently.
	const perNode = 5
	for i, nd := range nodes {
		i, nd := i, nd
		go func() {
			for k := 0; k < perNode; k++ {
				if _, err := nd.bc.Broadcast([]byte(fmt.Sprintf("n%d/%d", i, k))); err != nil {
					t.Errorf("node %d broadcast %d: %v", i, k, err)
					return
				}
			}
		}()
	}

	// Every member must deliver all n*perNode messages, in the same total
	// order, gap-free from sequence 1.
	total := n * perNode
	orders := make([][]string, n)
	for i, nd := range nodes {
		for len(orders[i]) < total {
			select {
			case d := <-nd.bc.Deliveries():
				if want := uint64(len(orders[i]) + 1); d.Seq != want {
					t.Fatalf("node %d: delivery seq %d, want %d", i, d.Seq, want)
				}
				orders[i] = append(orders[i], string(d.Payload))
				if err := nd.bc.Ack(d.Seq); err != nil {
					t.Fatalf("node %d: ack %d: %v", i, d.Seq, err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("node %d: delivered %d/%d before timeout", i, len(orders[i]), total)
			}
		}
	}
	for i := 1; i < n; i++ {
		for k := range orders[0] {
			if orders[i][k] != orders[0][k] {
				t.Fatalf("total order differs at position %d: node0=%q node%d=%q", k, orders[0][k], i, orders[i][k])
			}
		}
	}

	// Everything acknowledged: nothing would be replayed after a recovery.
	for i, nd := range nodes {
		if un := nd.bc.Unacked(); len(un) != 0 {
			t.Fatalf("node %d: unacked after full ack: %v", i, un)
		}
		st := nd.bc.Stats()
		if st.Logged != uint64(total) {
			t.Fatalf("node %d: logged %d messages, want %d", i, st.Logged, total)
		}
	}
}
