// Package fd implements a heartbeat-based eventually-perfect failure detector
// (class ◇P of Chandra & Toueg): every process periodically broadcasts
// heartbeats; a peer is suspected when no heartbeat has been received for a
// configurable timeout, and the suspicion is revoked when a heartbeat arrives
// again.
package fd

import (
	"encoding/binary"
	"sync"
	"time"

	"groupsafe/internal/gcs/transport"
)

// MsgHeartbeat is the message type used by the detector; route it to
// Detector.OnMessage.
const MsgHeartbeat = "fd.heartbeat"

// Event describes a suspicion change.
type Event struct {
	Peer      string
	Suspected bool
	At        time.Time
}

// Config tunes the failure detector.
type Config struct {
	// Interval between heartbeats (default 50 ms).
	Interval time.Duration
	// Timeout after which a silent peer is suspected (default 4 × Interval).
	Timeout time.Duration
	// Annotate, when set, is sampled on every outbound heartbeat and its
	// value piggybacked as the heartbeat payload.  Replicas use it to gossip
	// their applied-sequence watermark even when the ordering traffic is
	// quiet (an idle group sends no ORDER/ACK, but heartbeats never stop).
	// Must be cheap and lock-free — it runs once per Interval.
	Annotate func() uint64
	// OnAnnotation, when set, receives the annotation carried by each
	// inbound heartbeat.  Called without detector locks held; must not
	// block.  Heartbeats without a payload (annotation 0) are not reported.
	OnAnnotation func(peer string, value uint64)
}

func (c *Config) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 4 * c.Interval
	}
}

// Sender abstracts the outgoing half of an endpoint (satisfied by
// transport.Endpoint and gcs.Router).
type Sender interface {
	Send(to string, m transport.Message) error
}

// Detector monitors a fixed set of peers.
type Detector struct {
	self   string
	peers  []string
	sender Sender
	cfg    Config

	mu        sync.Mutex
	lastHeard map[string]time.Time
	suspected map[string]bool
	listeners []func(Event)
	stopped   chan struct{}
	started   bool
	wg        sync.WaitGroup
	now       func() time.Time
}

// New creates a detector for self monitoring peers (self is ignored if
// present in peers).
func New(self string, peers []string, sender Sender, cfg Config) *Detector {
	cfg.applyDefaults()
	d := &Detector{
		self:      self,
		sender:    sender,
		cfg:       cfg,
		lastHeard: make(map[string]time.Time),
		suspected: make(map[string]bool),
		stopped:   make(chan struct{}),
		now:       time.Now,
	}
	for _, p := range peers {
		if p == self {
			continue
		}
		d.peers = append(d.peers, p)
		d.lastHeard[p] = d.now()
	}
	return d
}

// OnEvent registers a callback invoked (from the detector's goroutine) when a
// peer becomes suspected or is rehabilitated.
func (d *Detector) OnEvent(fn func(Event)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.listeners = append(d.listeners, fn)
}

// Start launches the heartbeat and monitoring loops.
func (d *Detector) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	d.wg.Add(1)
	go d.loop()
}

// Stop terminates the detector.
func (d *Detector) Stop() {
	select {
	case <-d.stopped:
	default:
		close(d.stopped)
	}
	d.wg.Wait()
}

func (d *Detector) loop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.cfg.Interval)
	defer ticker.Stop()
	d.beat()
	for {
		select {
		case <-d.stopped:
			return
		case <-ticker.C:
			d.beat()
			d.check()
		}
	}
}

func (d *Detector) beat() {
	var payload []byte
	if d.cfg.Annotate != nil {
		if v := d.cfg.Annotate(); v != 0 {
			payload = binary.AppendUvarint(nil, v)
		}
	}
	for _, p := range d.peers {
		_ = d.sender.Send(p, transport.Message{Type: MsgHeartbeat, Payload: payload})
	}
}

func (d *Detector) check() {
	now := d.now()
	var events []Event
	d.mu.Lock()
	for _, p := range d.peers {
		silent := now.Sub(d.lastHeard[p]) > d.cfg.Timeout
		if silent && !d.suspected[p] {
			d.suspected[p] = true
			events = append(events, Event{Peer: p, Suspected: true, At: now})
		}
	}
	listeners := append([]func(Event){}, d.listeners...)
	d.mu.Unlock()
	for _, ev := range events {
		for _, fn := range listeners {
			fn(ev)
		}
	}
}

// OnMessage feeds an inbound heartbeat into the detector (wire it to a router
// with prefix MsgHeartbeat).
func (d *Detector) OnMessage(m transport.Message) {
	if m.Type != MsgHeartbeat {
		return
	}
	if d.cfg.OnAnnotation != nil && len(m.Payload) > 0 {
		if v, w := binary.Uvarint(m.Payload); w > 0 && v != 0 {
			d.cfg.OnAnnotation(m.From, v)
		}
	}
	now := d.now()
	var events []Event
	d.mu.Lock()
	d.lastHeard[m.From] = now
	if d.suspected[m.From] {
		d.suspected[m.From] = false
		events = append(events, Event{Peer: m.From, Suspected: false, At: now})
	}
	listeners := append([]func(Event){}, d.listeners...)
	d.mu.Unlock()
	for _, ev := range events {
		for _, fn := range listeners {
			fn(ev)
		}
	}
}

// Suspected reports whether peer is currently suspected.
func (d *Detector) Suspected(peer string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suspected[peer]
}

// Alive returns the peers not currently suspected, plus self.
func (d *Detector) Alive() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	alive := []string{d.self}
	for _, p := range d.peers {
		if !d.suspected[p] {
			alive = append(alive, p)
		}
	}
	return alive
}

// SuspectedPeers returns the currently suspected peers.
func (d *Detector) SuspectedPeers() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for _, p := range d.peers {
		if d.suspected[p] {
			out = append(out, p)
		}
	}
	return out
}
