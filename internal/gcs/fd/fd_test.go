package fd

import (
	"sync"
	"testing"
	"time"

	"groupsafe/internal/gcs"
	"groupsafe/internal/gcs/transport"
)

func newDetectorPair(t *testing.T, net *transport.MemNetwork, cfg Config) (*Detector, *Detector, func()) {
	t.Helper()
	peers := []string{"a", "b"}
	ra := gcs.NewRouter(net.Endpoint("a"))
	rb := gcs.NewRouter(net.Endpoint("b"))
	da := New("a", peers, ra, cfg)
	db := New("b", peers, rb, cfg)
	ra.Handle(MsgHeartbeat, da.OnMessage)
	rb.Handle(MsgHeartbeat, db.OnMessage)
	ra.Start()
	rb.Start()
	da.Start()
	db.Start()
	cleanup := func() {
		da.Stop()
		db.Stop()
		ra.Stop()
		rb.Stop()
	}
	return da, db, cleanup
}

func TestNoSuspicionWhileAlive(t *testing.T) {
	net := transport.NewMemNetwork()
	da, db, cleanup := newDetectorPair(t, net, Config{Interval: 10 * time.Millisecond})
	defer cleanup()
	time.Sleep(150 * time.Millisecond)
	if da.Suspected("b") || db.Suspected("a") {
		t.Fatal("live peers should not be suspected")
	}
	if len(da.Alive()) != 2 {
		t.Fatalf("Alive = %v", da.Alive())
	}
	if len(da.SuspectedPeers()) != 0 {
		t.Fatalf("SuspectedPeers = %v", da.SuspectedPeers())
	}
}

func TestCrashedPeerIsSuspected(t *testing.T) {
	net := transport.NewMemNetwork()
	da, _, cleanup := newDetectorPair(t, net, Config{Interval: 10 * time.Millisecond})
	defer cleanup()

	var mu sync.Mutex
	var events []Event
	da.OnEvent(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})

	time.Sleep(50 * time.Millisecond)
	net.Crash("b")

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !da.Suspected("b") {
		time.Sleep(10 * time.Millisecond)
	}
	if !da.Suspected("b") {
		t.Fatal("crashed peer not suspected")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 || !events[0].Suspected || events[0].Peer != "b" {
		t.Fatalf("events = %+v", events)
	}
	alive := da.Alive()
	if len(alive) != 1 || alive[0] != "a" {
		t.Fatalf("Alive = %v", alive)
	}
}

func TestRecoveredPeerIsRehabilitated(t *testing.T) {
	net := transport.NewMemNetwork()
	da, _, cleanup := newDetectorPair(t, net, Config{Interval: 10 * time.Millisecond})
	defer cleanup()

	net.Crash("b")
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !da.Suspected("b") {
		time.Sleep(10 * time.Millisecond)
	}
	if !da.Suspected("b") {
		t.Fatal("crashed peer not suspected")
	}

	rehabilitated := make(chan struct{}, 1)
	da.OnEvent(func(ev Event) {
		if !ev.Suspected && ev.Peer == "b" {
			select {
			case rehabilitated <- struct{}{}:
			default:
			}
		}
	})
	net.Recover("b")
	select {
	case <-rehabilitated:
	case <-time.After(2 * time.Second):
		t.Fatal("recovered peer not rehabilitated")
	}
	if da.Suspected("b") {
		t.Fatal("peer still suspected after heartbeat resumed")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.applyDefaults()
	if cfg.Interval != 50*time.Millisecond || cfg.Timeout != 200*time.Millisecond {
		t.Fatalf("defaults = %+v", cfg)
	}
	cfg = Config{Interval: 10 * time.Millisecond}
	cfg.applyDefaults()
	if cfg.Timeout != 40*time.Millisecond {
		t.Fatalf("timeout default = %v", cfg.Timeout)
	}
}

func TestSelfExcludedFromPeers(t *testing.T) {
	net := transport.NewMemNetwork()
	r := gcs.NewRouter(net.Endpoint("a"))
	d := New("a", []string{"a", "b", "c"}, r, Config{})
	if len(d.peers) != 2 {
		t.Fatalf("peers = %v", d.peers)
	}
	if got := len(d.Alive()); got != 3 {
		t.Fatalf("Alive (before any silence) = %d", got)
	}
}

func TestOnMessageIgnoresOtherTypes(t *testing.T) {
	net := transport.NewMemNetwork()
	r := gcs.NewRouter(net.Endpoint("a"))
	d := New("a", []string{"a", "b"}, r, Config{})
	d.OnMessage(transport.Message{Type: "not-a-heartbeat", From: "b"})
	// No state change, no panic.
	if d.Suspected("b") {
		t.Fatal("unexpected suspicion")
	}
}

func TestStartStopIdempotent(t *testing.T) {
	net := transport.NewMemNetwork()
	r := gcs.NewRouter(net.Endpoint("a"))
	d := New("a", []string{"a", "b"}, r, Config{Interval: 5 * time.Millisecond})
	d.Start()
	d.Start()
	d.Stop()
	d.Stop()
}
