// Package gcs contains the group communication component: message routing,
// failure detection (subpackage fd), group membership (subpackage
// membership), classical atomic broadcast (subpackage abcast) and the
// end-to-end atomic broadcast introduced by the paper (subpackage e2e).
package gcs

import (
	"strings"
	"sync"

	"groupsafe/internal/gcs/transport"
)

// Handler processes one inbound message.
type Handler func(transport.Message)

// Router demultiplexes the inbound message stream of an endpoint to protocol
// handlers registered by message-type prefix.  Several protocols (failure
// detector, atomic broadcast, membership, replication control traffic) share
// one endpoint per node.
type Router struct {
	ep transport.Endpoint

	mu       sync.Mutex
	handlers map[string]Handler
	fallback Handler
	stopped  chan struct{}
	done     chan struct{}
	started  bool
}

// NewRouter creates a router over the endpoint.  Handle registrations must
// happen before Start (or are picked up dynamically, both are safe).
func NewRouter(ep transport.Endpoint) *Router {
	return &Router{
		ep:       ep,
		handlers: make(map[string]Handler),
		stopped:  make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Endpoint returns the underlying endpoint.
func (r *Router) Endpoint() transport.Endpoint { return r.ep }

// Handle registers a handler for all messages whose Type starts with prefix.
// The longest matching prefix wins.
func (r *Router) Handle(prefix string, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers[prefix] = h
}

// HandleFallback registers a handler for messages that match no prefix.
func (r *Router) HandleFallback(h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fallback = h
}

// Send transmits a message through the underlying endpoint.
func (r *Router) Send(to string, m transport.Message) error {
	return r.ep.Send(to, m)
}

// Start launches the dispatch loop.
func (r *Router) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go r.loop()
}

func (r *Router) loop() {
	defer close(r.done)
	for {
		select {
		case <-r.stopped:
			return
		case m, ok := <-r.ep.Recv():
			if !ok {
				return
			}
			r.dispatch(m)
		}
	}
}

func (r *Router) dispatch(m transport.Message) {
	r.mu.Lock()
	var best Handler
	bestLen := -1
	for prefix, h := range r.handlers {
		if strings.HasPrefix(m.Type, prefix) && len(prefix) > bestLen {
			best = h
			bestLen = len(prefix)
		}
	}
	if best == nil {
		best = r.fallback
	}
	r.mu.Unlock()
	if best != nil {
		best(m)
	}
}

// Stop terminates the dispatch loop.  It does not close the endpoint.
func (r *Router) Stop() {
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	select {
	case <-r.stopped:
		return
	default:
		close(r.stopped)
	}
	if started {
		<-r.done
	}
}
