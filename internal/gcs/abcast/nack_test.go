package abcast

import (
	"fmt"
	"testing"
	"time"

	"groupsafe/internal/gcs"
	"groupsafe/internal/gcs/transport"
)

// makeGroupCfg is makeGroup with per-node config knobs (beyond Self/Members).
func makeGroupCfg(t *testing.T, net *transport.MemNetwork, addrs []string, tweak func(*Config)) []*node {
	t.Helper()
	nodes := make([]*node, 0, len(addrs))
	for _, addr := range addrs {
		ep := net.Endpoint(addr)
		router := gcs.NewRouter(ep)
		cfg := Config{Self: addr, Members: addrs}
		if tweak != nil {
			tweak(&cfg)
		}
		bc, err := New(cfg, router)
		if err != nil {
			t.Fatal(err)
		}
		router.Start()
		nodes = append(nodes, &node{addr: addr, router: router, bc: bc})
		t.Cleanup(func() {
			bc.Close()
			router.Stop()
		})
	}
	return nodes
}

// TestNackRecoversBlockedDataFanout is the regression test for the
// order-without-data stall: the original sender's DATA link to one member is
// cut mid-batch, so that member keeps receiving the sequencer's ORDER
// assignments for payloads it never got.  Before the NACK protocol this
// wedged the member's delivery cursor until a state transfer; now the member
// requests the payload by id after a bounded wait and any holder (here the
// sequencer, whose own copy arrived before the cut) re-sends it.
func TestNackRecoversBlockedDataFanout(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	nodes := makeGroupCfg(t, net, addrs, func(cfg *Config) {
		cfg.NackDelay = 2 * time.Millisecond
	})
	sender, victim := nodes[1], nodes[2] // s1 stays sequencer and holder

	// A healthy prefix first, so the cut lands mid-batch.
	const healthy, blocked = 3, 4
	for i := 0; i < healthy; i++ {
		if _, err := sender.bc.Broadcast([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, victim, healthy, 2*time.Second)

	// Cut the sender→victim link: the victim still sees ORDER (from the
	// sequencer s1) but never the sender's DATA fan-out, and the sender's
	// own retransmission answers are dropped too — only s1 can help.
	net.BlockLink(sender.addr, victim.addr)
	for i := 0; i < blocked; i++ {
		if _, err := sender.bc.Broadcast([]byte(fmt.Sprintf("cut-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	ds := collect(t, victim, blocked, 5*time.Second)
	for i, d := range ds {
		if want := fmt.Sprintf("cut-%d", i); string(d.Payload) != want {
			t.Fatalf("victim delivery %d = %q, want %q", i, d.Payload, want)
		}
	}

	if got := victim.bc.Stats().NacksSent; got == 0 {
		t.Fatal("victim delivered the blocked payloads without sending a NACK")
	}
	if got := nodes[0].bc.Stats().Retransmits; got == 0 {
		t.Fatal("holder (sequencer) answered no retransmission requests")
	}

	// The link heals and ordinary fan-out resumes without residual stalls.
	net.UnblockLink(sender.addr, victim.addr)
	if _, err := sender.bc.Broadcast([]byte("healed")); err != nil {
		t.Fatal(err)
	}
	if d := collect(t, victim, 1, 2*time.Second); string(d[0].Payload) != "healed" {
		t.Fatalf("post-heal delivery = %q", d[0].Payload)
	}
}

// TestNackClearsWithoutStallAfterRetransmit forces repeated
// order-without-data stalls with heals in between, proving the NACK timer's
// arm/disarm lifecycle survives many cycles without wedging the cursor.
func TestNackClearsWithoutStallAfterRetransmit(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	nodes := makeGroupCfg(t, net, addrs, func(cfg *Config) {
		cfg.NackDelay = 2 * time.Millisecond
	})
	sender, victim := nodes[1], nodes[2]

	// Repeated cut/heal cycles: each blocked payload recovers via NACK and
	// the cursor never sticks, proving the arm/disarm lifecycle re-arms
	// cleanly across stalls.
	for round := 0; round < 3; round++ {
		net.BlockLink(sender.addr, victim.addr)
		if _, err := sender.bc.Broadcast([]byte(fmt.Sprintf("round-%d", round))); err != nil {
			t.Fatal(err)
		}
		ds := collect(t, victim, 1, 5*time.Second)
		if want := fmt.Sprintf("round-%d", round); string(ds[0].Payload) != want {
			t.Fatalf("round %d delivered %q", round, ds[0].Payload)
		}
		net.UnblockLink(sender.addr, victim.addr)
	}
	if got := victim.bc.Stats().NacksSent; got == 0 {
		t.Fatal("no NACKs sent across three forced stalls")
	}
}
