package abcast

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"groupsafe/internal/gcs"
	"groupsafe/internal/gcs/transport"
	"groupsafe/internal/tuning"
)

// makeBatchedGroup is makeGroup with sender-side batching enabled.
func makeBatchedGroup(t *testing.T, net *transport.MemNetwork, addrs []string, batch int, delay time.Duration) []*node {
	t.Helper()
	nodes := make([]*node, 0, len(addrs))
	for _, addr := range addrs {
		ep := net.Endpoint(addr)
		router := gcs.NewRouter(ep)
		bc, err := New(Config{Self: addr, Members: addrs, Batching: tuning.Batching{BatchSize: batch, BatchDelay: delay}}, router)
		if err != nil {
			t.Fatal(err)
		}
		router.Start()
		nodes = append(nodes, &node{addr: addr, router: router, bc: bc})
		t.Cleanup(func() {
			bc.Close()
			router.Stop()
		})
	}
	return nodes
}

// TestBatchedTotalOrder checks that batching preserves uniform total order
// across batch boundaries: several senders batch concurrently, and every
// member must deliver the same message ids in the same gap-free sequence.
func TestBatchedTotalOrder(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3", "s4", "s5"}
	nodes := makeBatchedGroup(t, net, addrs, 4, 500*time.Microsecond)

	const perSender = 20
	var wg sync.WaitGroup
	for _, n := range nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if _, err := n.bc.Broadcast([]byte(fmt.Sprintf("%s-%d", n.addr, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	total := perSender * len(nodes)
	sequences := make([][]string, len(nodes))
	for i, n := range nodes {
		ds := collect(t, n, total, 10*time.Second)
		seq := make([]string, len(ds))
		for j, d := range ds {
			if d.Seq != uint64(j+1) {
				t.Fatalf("%s: delivery %d has seq %d (gap across a batch boundary)", n.addr, j, d.Seq)
			}
			seq[j] = d.MsgID
		}
		sequences[i] = seq
	}
	for i := 1; i < len(sequences); i++ {
		for j := range sequences[0] {
			if sequences[i][j] != sequences[0][j] {
				t.Fatalf("order mismatch between %s and %s at position %d", addrs[0], addrs[i], j)
			}
		}
	}
}

// TestBatchedFIFOPerSender checks that batching keeps one sender's payloads
// in submission order (they travel in the same DATA batches and the
// sequencer orders batch entries in order).
func TestBatchedFIFOPerSender(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	nodes := makeBatchedGroup(t, net, addrs, 8, time.Millisecond)

	const count = 32
	ids := make([]string, count)
	for i := 0; i < count; i++ {
		id, err := nodes[1].bc.Broadcast([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	ds := collect(t, nodes[0], count, 5*time.Second)
	for i, d := range ds {
		if d.MsgID != ids[i] {
			t.Fatalf("position %d delivered %s, want %s (sender FIFO broken)", i, d.MsgID, ids[i])
		}
	}
}

// TestBatchedMessageReduction verifies the point of the exercise: batching
// sends far fewer protocol messages per broadcast than the unbatched
// protocol.
func TestBatchedMessageReduction(t *testing.T) {
	run := func(batch int) float64 {
		net := transport.NewMemNetwork()
		addrs := []string{"s1", "s2", "s3", "s4", "s5"}
		nodes := makeBatchedGroup(t, net, addrs, batch, time.Millisecond)
		const count = 64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < count; i++ {
				if _, err := nodes[0].bc.Broadcast([]byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Wait()
		for _, n := range nodes {
			collect(t, n, count, 10*time.Second)
		}
		var sent uint64
		for _, n := range nodes {
			sent += n.bc.Stats().MsgsSent
		}
		return float64(sent) / count
	}

	unbatched := run(1)
	batched := run(16)
	if batched >= unbatched/2 {
		t.Fatalf("msgs/broadcast: unbatched %.1f, batched %.1f — batching should at least halve the message count", unbatched, batched)
	}
	t.Logf("msgs/broadcast: unbatched %.1f, batched %.1f", unbatched, batched)
}

// TestBatchFlushOnDelay checks that a partial batch is not held hostage: a
// single broadcast with a large BatchSize still gets delivered once
// BatchDelay expires.
func TestBatchFlushOnDelay(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	nodes := makeBatchedGroup(t, net, addrs, 64, 2*time.Millisecond)
	if _, err := nodes[1].bc.Broadcast([]byte("lonely")); err != nil {
		t.Fatal(err)
	}
	ds := collect(t, nodes[2], 1, 2*time.Second)
	if string(ds[0].Payload) != "lonely" {
		t.Fatalf("delivered %q", ds[0].Payload)
	}
}

// TestBatchedSequencerFailover crashes the sequencer between two batches and
// checks that numbering continues gap-free for the survivors.
func TestBatchedSequencerFailover(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3", "s4", "s5"}
	nodes := makeBatchedGroup(t, net, addrs, 4, 500*time.Microsecond)

	for i := 0; i < 4; i++ {
		if _, err := nodes[1].bc.Broadcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		collect(t, n, 4, 5*time.Second)
	}

	net.Crash("s1")
	for _, n := range nodes[1:] {
		n.bc.Suspect("s1")
	}
	waitFor(t, 2*time.Second, func() bool {
		for _, n := range nodes[1:] {
			if n.bc.Sequencer() != "s2" {
				return false
			}
		}
		return true
	})

	for i := 0; i < 4; i++ {
		if _, err := nodes[3].bc.Broadcast([]byte{byte(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes[1:] {
		ds := collect(t, n, 4, 5*time.Second)
		for j, d := range ds {
			if d.Seq != uint64(5+j) {
				t.Fatalf("%s: post-failover delivery %d has seq %d, want %d", n.addr, j, d.Seq, 5+j)
			}
		}
	}
}

// TestPartiallyAckedBatchSurvivesFailover drives the uniform-agreement
// corner white-box: a batch of three messages is ordered by the old
// sequencer, but only a minority acknowledged it before the crash, so no
// member delivered.  The new sequencer gathers state from a majority in
// which only ONE member knows the batch order; uniform agreement requires
// the adopted order to keep exactly the old (sequence, message id)
// assignment, and the batch must then be delivered in the original order.
func TestPartiallyAckedBatchSurvivesFailover(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3", "s4", "s5"}
	ep := net.Endpoint("s2")
	router := gcs.NewRouter(ep)
	b, err := New(Config{Self: "s2", Members: addrs, Batching: tuning.Batching{BatchSize: 4}}, router)
	if err != nil {
		t.Fatal(err)
	}
	// The router is never started: every protocol step is injected directly,
	// making the scenario fully deterministic.
	defer b.Close()

	entries := []dataEntry{
		{MsgID: "s3/1", Payload: []byte("a")},
		{MsgID: "s3/2", Payload: []byte("b")},
		{MsgID: "s3/3", Payload: []byte("c")},
	}
	// s2 has the payloads and the batch order of epoch 0, acked only by
	// itself and s3 (2 of 5 — a minority, nothing deliverable).
	b.handleData(dataMsg{Entries: entries})
	order := orderMsg{Epoch: 0, BaseSeq: 1, MsgIDs: []string{"s3/1", "s3/2", "s3/3"}}
	b.handleOrder(order)
	b.handleAck(ackMsg{Epoch: 0, BaseSeq: 1, MsgIDs: order.MsgIDs}, "s3")
	select {
	case d := <-b.Deliveries():
		t.Fatalf("minority-acked batch must not deliver, got %+v", d)
	default:
	}

	// The sequencer s1 crashes; s2 is next in line and starts gathering.
	b.Suspect("s1")
	if b.Sequencer() != "s2" || !b.gatheringNow() {
		t.Fatalf("s2 should be gathering as the epoch-1 sequencer")
	}

	// s4 and s5 never saw the batch order; their states complete the
	// majority.  The adopted orders must still carry the batch assignment
	// (s2's own state is part of the gather set).
	b.handleState(stateMsg{Epoch: 1}, "s4")
	b.handleState(stateMsg{Epoch: 1}, "s5")

	// The re-announced epoch-1 order is acked by a majority (the router is
	// not running, so s2's own loopback ack is injected by hand too).
	reann := orderMsg{Epoch: 1, BaseSeq: 1, MsgIDs: order.MsgIDs}
	b.handleOrder(reann)
	b.handleAck(ackMsg{Epoch: 1, BaseSeq: 1, MsgIDs: order.MsgIDs}, "s2")
	b.handleAck(ackMsg{Epoch: 1, BaseSeq: 1, MsgIDs: order.MsgIDs}, "s3")
	b.handleAck(ackMsg{Epoch: 1, BaseSeq: 1, MsgIDs: order.MsgIDs}, "s4")

	for i, want := range []string{"s3/1", "s3/2", "s3/3"} {
		select {
		case d := <-b.Deliveries():
			if d.Seq != uint64(i+1) || d.MsgID != want {
				t.Fatalf("delivery %d: got (seq %d, %s), want (seq %d, %s) — the partially-acked batch order was not preserved", i, d.Seq, d.MsgID, i+1, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("delivery %d never arrived after failover", i)
		}
	}
}

// gatheringNow exposes the gathering flag to the white-box failover test.
func (b *Broadcaster) gatheringNow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gathering
}
