package abcast

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"groupsafe/internal/gcs"
	"groupsafe/internal/gcs/transport"
	"groupsafe/internal/tuning"
)

// makeTunedGroup is makeGroup with full control over the batching and
// sequencer knobs.
func makeTunedGroup(t *testing.T, net *transport.MemNetwork, addrs []string, batching tuning.Batching, seq tuning.Sequencer) []*node {
	t.Helper()
	nodes := make([]*node, 0, len(addrs))
	for _, addr := range addrs {
		ep := net.Endpoint(addr)
		router := gcs.NewRouter(ep)
		bc, err := New(Config{Self: addr, Members: addrs, Batching: batching, Sequencer: seq}, router)
		if err != nil {
			t.Fatal(err)
		}
		router.Start()
		nodes = append(nodes, &node{addr: addr, router: router, bc: bc})
		t.Cleanup(func() {
			bc.Close()
			router.Stop()
		})
	}
	return nodes
}

// assertUniformTotalOrder drains total deliveries from every node and checks
// the uniform atomic broadcast contract: gap-free sequence numbers and the
// same message id at every position on every member, no duplicates.
func assertUniformTotalOrder(t *testing.T, nodes []*node, total int) {
	t.Helper()
	sequences := make([][]string, len(nodes))
	for i, n := range nodes {
		ds := collect(t, n, total, 15*time.Second)
		seq := make([]string, len(ds))
		seen := make(map[string]bool, len(ds))
		for j, d := range ds {
			if d.Seq != uint64(j+1) {
				t.Fatalf("%s: delivery %d has seq %d (gap)", n.addr, j, d.Seq)
			}
			if seen[d.MsgID] {
				t.Fatalf("%s: %s delivered twice", n.addr, d.MsgID)
			}
			seen[d.MsgID] = true
			seq[j] = d.MsgID
		}
		sequences[i] = seq
	}
	for i := 1; i < len(sequences); i++ {
		for j := range sequences[0] {
			if sequences[i][j] != sequences[0][j] {
				t.Fatalf("order mismatch between %s and %s at position %d", nodes[0].addr, nodes[i].addr, j)
			}
		}
	}
}

// broadcastConcurrently has every node broadcast perSender payloads from its
// own goroutine and returns once all Broadcast calls returned.
func broadcastConcurrently(t *testing.T, nodes []*node, perSender int) {
	t.Helper()
	var wg sync.WaitGroup
	for _, n := range nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if _, err := n.bc.Broadcast([]byte(fmt.Sprintf("%s-%d", n.addr, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestZeroBatchDelayDefaultsToAdaptive pins the config resolution that
// replaced the silent 1ms fallback: BatchSize > 1 with a zero BatchDelay now
// selects the Adaptive (idle-flush) mode instead of injecting a hidden stall,
// and the adaptive mode gets the default wait cap.  An explicit BatchDelay
// keeps the classical fixed-delay behaviour.
func TestZeroBatchDelayDefaultsToAdaptive(t *testing.T) {
	net := transport.NewMemNetwork()
	mk := func(batching tuning.Batching, seq tuning.Sequencer) *Broadcaster {
		t.Helper()
		router := gcs.NewRouter(net.Endpoint("a"))
		b, err := New(Config{Self: "a", Members: []string{"a"}, Batching: batching, Sequencer: seq}, router)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(b.Close)
		return b
	}

	b := mk(tuning.Batching{BatchSize: 8}, tuning.Sequencer{})
	if b.cfg.Mode != tuning.Adaptive {
		t.Fatalf("BatchSize 8 + zero BatchDelay resolved to mode %v, want Adaptive", b.cfg.Mode)
	}
	if b.cfg.DelayCap != tuning.DefaultDelayCap {
		t.Fatalf("adaptive default DelayCap = %v, want %v", b.cfg.DelayCap, tuning.DefaultDelayCap)
	}

	b = mk(tuning.Batching{BatchSize: 8, BatchDelay: 500 * time.Microsecond}, tuning.Sequencer{})
	if b.cfg.Mode != tuning.FixedDelay || b.cfg.BatchDelay != 500*time.Microsecond {
		t.Fatalf("explicit BatchDelay was not preserved: mode %v delay %v", b.cfg.Mode, b.cfg.BatchDelay)
	}

	b = mk(tuning.Batching{BatchSize: 8, Mode: tuning.Adaptive, DelayCap: 2 * time.Millisecond}, tuning.Sequencer{})
	if b.cfg.Mode != tuning.Adaptive || b.cfg.DelayCap != 2*time.Millisecond {
		t.Fatalf("explicit adaptive config was not preserved: mode %v cap %v", b.cfg.Mode, b.cfg.DelayCap)
	}

	// Rotation implies the pipelined assignment path.
	b = mk(tuning.Batching{}, tuning.Sequencer{RotateEvery: 8})
	if !b.cfg.Pipelined || b.cfg.AckWindow <= 0 {
		t.Fatalf("RotateEvery must imply Pipelined with an ACK window, got %+v", b.cfg.Sequencer)
	}
}

// TestAdaptiveIdleFlushNoStall checks the user-visible half of the same fix:
// a lone broadcast through a large adaptive batch is sent immediately (one
// DATA message carrying one payload), not parked behind a co-traveller wait.
func TestAdaptiveIdleFlushNoStall(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	nodes := makeTunedGroup(t, net, addrs, tuning.Batching{BatchSize: 64}, tuning.Sequencer{})
	if _, err := nodes[1].bc.Broadcast([]byte("lonely")); err != nil {
		t.Fatal(err)
	}
	ds := collect(t, nodes[2], 1, 2*time.Second)
	if string(ds[0].Payload) != "lonely" {
		t.Fatalf("delivered %q", ds[0].Payload)
	}
	if got := nodes[1].bc.Stats().DataBatches; got != 1 {
		t.Fatalf("idle sender sent %d DATA batches, want 1 (immediate send)", got)
	}
}

// TestAdaptiveTotalOrder runs concurrent senders through adaptive batching
// and checks the uniform total-order contract end to end.
func TestAdaptiveTotalOrder(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3", "s4", "s5"}
	nodes := makeTunedGroup(t, net, addrs,
		tuning.Batching{BatchSize: 8, Mode: tuning.Adaptive, DelayCap: time.Millisecond}, tuning.Sequencer{})
	const perSender = 20
	broadcastConcurrently(t, nodes, perSender)
	assertUniformTotalOrder(t, nodes, perSender*len(nodes))
}

// TestPipelinedTotalOrder runs concurrent senders against the pipelined
// sequencer (ORDER assignment off the router thread, coalesced ACKs) and
// checks the uniform total-order contract end to end.
func TestPipelinedTotalOrder(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3", "s4", "s5"}
	nodes := makeTunedGroup(t, net, addrs,
		tuning.Batching{BatchSize: 4, BatchDelay: 500 * time.Microsecond},
		tuning.Sequencer{Pipelined: true})
	const perSender = 20
	broadcastConcurrently(t, nodes, perSender)
	assertUniformTotalOrder(t, nodes, perSender*len(nodes))
}

// TestAckCoalescingReducesAckSends verifies the ACK fan-in win: under a
// stream of back-to-back ORDERs, the pipelined members merge contiguous
// ranges and emit far fewer ACK messages than the one-per-ORDER baseline.
func TestAckCoalescingReducesAckSends(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	// BatchSize 1 makes every broadcast its own DATA and ORDER: 100 ORDERs.
	// The generous AckWindow keeps scheduler hiccups from looking like idle
	// gaps, so the merge engages deterministically.
	nodes := makeTunedGroup(t, net, addrs, tuning.Batching{},
		tuning.Sequencer{Pipelined: true, AckWindow: 5 * time.Millisecond})
	const count = 100
	go func() {
		for i := 0; i < count; i++ {
			nodes[1].bc.Broadcast([]byte{byte(i)})
		}
	}()
	for _, n := range nodes {
		collect(t, n, count, 10*time.Second)
	}
	var ackSends, ordered uint64
	for _, n := range nodes {
		s := n.bc.Stats()
		ackSends += s.AckSends
		ordered += s.Ordered
	}
	// Without coalescing every member ACKs every ORDER: 3 members x 100
	// ORDERs = 300 sends.  Require at least a 2x reduction (in practice the
	// merge collapses it much further).
	if ackSends >= count*uint64(len(addrs))/2 {
		t.Fatalf("ACK coalescing sent %d ACK messages for %d orders across %d members (baseline %d)",
			ackSends, count, len(addrs), count*len(addrs))
	}
	t.Logf("ACK sends: %d for %d orders across %d members (baseline %d)", ackSends, count, len(addrs), count*len(addrs))
}

// TestPipelinedCrashBeforeOrderEscapes drives the new mid-pipeline failover
// window: the sequencer receives a DATA batch but crashes before any of its
// ORDER messages reach another member (all its outbound links are cut).  The
// payload must still be delivered exactly once by the survivors — it lives in
// their pendingData, and the takeover sequencer orders it fresh.
func TestPipelinedCrashBeforeOrderEscapes(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3", "s4", "s5"}
	nodes := makeTunedGroup(t, net, addrs, tuning.Batching{}, tuning.Sequencer{Pipelined: true})

	for _, to := range addrs[1:] {
		net.BlockLink("s1", to)
	}
	if _, err := nodes[2].bc.Broadcast([]byte("orphaned")); err != nil {
		t.Fatal(err)
	}
	// Give the pipelined sequencer time to receive the DATA and send its
	// (blackholed) ORDER: the crash lands after assignment, before escape.
	time.Sleep(20 * time.Millisecond)
	net.Crash("s1")
	for _, n := range nodes[1:] {
		n.bc.Suspect("s1")
	}

	for _, n := range nodes[1:] {
		ds := collect(t, n, 1, 5*time.Second)
		if string(ds[0].Payload) != "orphaned" || ds[0].Seq != 1 {
			t.Fatalf("%s delivered %+v", n.addr, ds[0])
		}
		select {
		case d := <-n.bc.Deliveries():
			t.Fatalf("%s delivered %s twice (seq %d)", n.addr, d.MsgID, d.Seq)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// TestPipelinedCrashMinorityOrderEscaped is the harder half of the same
// window: the dying sequencer's ORDER reached exactly one survivor (a
// minority — nothing deliverable), and that survivor happens to lead the next
// epoch.  Its gather set carries the assignment, so the message must keep its
// original sequence number and be delivered exactly once — neither lost nor
// double-ordered.
func TestPipelinedCrashMinorityOrderEscaped(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3", "s4", "s5"}
	nodes := makeTunedGroup(t, net, addrs, tuning.Batching{}, tuning.Sequencer{Pipelined: true})

	// ORDER (and everything else from s1) reaches only s2.
	for _, to := range addrs[2:] {
		net.BlockLink("s1", to)
	}
	if _, err := nodes[2].bc.Broadcast([]byte("half-ordered")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	net.Crash("s1")
	for _, n := range nodes[1:] {
		n.bc.Suspect("s1")
	}

	for _, n := range nodes[1:] {
		ds := collect(t, n, 1, 5*time.Second)
		if string(ds[0].Payload) != "half-ordered" || ds[0].Seq != 1 {
			t.Fatalf("%s delivered %+v", n.addr, ds[0])
		}
		select {
		case d := <-n.bc.Deliveries():
			t.Fatalf("%s delivered %s twice (seq %d)", n.addr, d.MsgID, d.Seq)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// TestRotatingSequencerTotalOrder runs concurrent senders with sequencer
// rotation enabled and checks that planned handoffs preserve the uniform
// total order: identical gap-free sequences everywhere, rotations observed,
// and no crash-takeover epochs consumed (rotation must not masquerade as
// failover).
func TestRotatingSequencerTotalOrder(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3", "s4", "s5"}
	nodes := makeTunedGroup(t, net, addrs, tuning.Batching{}, tuning.Sequencer{RotateEvery: 4})
	const perSender = 20
	broadcastConcurrently(t, nodes, perSender)
	assertUniformTotalOrder(t, nodes, perSender*len(nodes))

	var rotations uint64
	for _, n := range nodes {
		s := n.bc.Stats()
		rotations += s.Rotations
		if s.EpochJumps != 0 {
			t.Fatalf("%s counted %d crash-takeover epoch jumps during planned rotation", n.addr, s.EpochJumps)
		}
	}
	if rotations == 0 {
		t.Fatal("no rotations observed with RotateEvery = 4 and 100 broadcasts")
	}
}

// TestRotationHandoffThenCrash interleaves the two epoch-change paths: a
// planned rotation hands the sequencer role over, then the new sequencer
// crashes and the survivors run a gather takeover.  Numbering must continue
// gap-free across both transitions.
func TestRotationHandoffThenCrash(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	nodes := makeTunedGroup(t, net, addrs, tuning.Batching{}, tuning.Sequencer{RotateEvery: 2})

	for i := 0; i < 2; i++ {
		if _, err := nodes[0].bc.Broadcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		collect(t, n, 2, 5*time.Second)
	}
	// The quota (2) is filled: the rotation handoff is in flight.  Wait for
	// every member to adopt the new epoch.
	waitFor(t, 2*time.Second, func() bool {
		for _, n := range nodes {
			if n.bc.Epoch() == 0 {
				return false
			}
		}
		return true
	})

	// Crash whoever holds the sequencer role now.
	seqr := nodes[0].bc.Sequencer()
	var crashedIdx int
	for i, a := range addrs {
		if a == seqr {
			crashedIdx = i
		}
	}
	net.Crash(seqr)
	for i, n := range nodes {
		if i == crashedIdx {
			continue
		}
		n.bc.Suspect(seqr)
	}

	var sender *node
	for i, n := range nodes {
		if i != crashedIdx {
			sender = n
			break
		}
	}
	if _, err := sender.bc.Broadcast([]byte("after-both")); err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		if i == crashedIdx {
			continue
		}
		ds := collect(t, n, 1, 5*time.Second)
		if string(ds[0].Payload) != "after-both" || ds[0].Seq != 3 {
			t.Fatalf("%s delivered %+v, want seq 3 (gap-free across rotation + crash)", n.addr, ds[0])
		}
	}
}

// TestChainedRotationDuplicateSuppressed white-boxes the one anomaly planned
// rotation introduces: an ORDER from an earlier rotation epoch can still be
// in flight when a later sequencer sweeps the same (apparently unordered)
// payload into a fresh assignment, giving one message id two sequence
// numbers.  The delivery path must emit the lowest one and silently skip the
// other — on every member identically.
func TestChainedRotationDuplicateSuppressed(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	router := gcs.NewRouter(net.Endpoint("s2"))
	// s2 is a non-sequencer follower; the router is never started, every
	// protocol step is injected directly.
	b, err := New(Config{Self: "s2", Members: addrs}, router)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	b.handleData(dataMsg{Entries: []dataEntry{{MsgID: "s3/0/1", Payload: []byte("x")}}})
	b.handleOrder(orderMsg{Epoch: 0, BaseSeq: 1, MsgIDs: []string{"s3/0/1"}})
	b.handleAck(ackMsg{Epoch: 0, BaseSeq: 1, MsgIDs: []string{"s3/0/1"}}, "s1")
	b.handleAck(ackMsg{Epoch: 0, BaseSeq: 1, MsgIDs: []string{"s3/0/1"}}, "s2")
	select {
	case d := <-b.Deliveries():
		if d.Seq != 1 || d.MsgID != "s3/0/1" {
			t.Fatalf("first delivery %+v", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("first assignment never delivered")
	}

	// The epoch-1 rotation successor swept the same payload into seq 2 (its
	// handoff arrived before the epoch-0 ORDER above).  The duplicate reaches
	// stability: the cursor must pass it without a second emission.
	b.handleOrder(orderMsg{Epoch: 1, BaseSeq: 2, MsgIDs: []string{"s3/0/1"}})
	b.handleAck(ackMsg{Epoch: 1, BaseSeq: 2, MsgIDs: []string{"s3/0/1"}}, "s1")
	b.handleAck(ackMsg{Epoch: 1, BaseSeq: 2, MsgIDs: []string{"s3/0/1"}}, "s2")

	// A later message proves the cursor moved past the suppressed duplicate.
	b.handleData(dataMsg{Entries: []dataEntry{{MsgID: "s1/0/9", Payload: []byte("y")}}})
	b.handleOrder(orderMsg{Epoch: 1, BaseSeq: 3, MsgIDs: []string{"s1/0/9"}})
	b.handleAck(ackMsg{Epoch: 1, BaseSeq: 3, MsgIDs: []string{"s1/0/9"}}, "s1")
	b.handleAck(ackMsg{Epoch: 1, BaseSeq: 3, MsgIDs: []string{"s1/0/9"}}, "s2")

	select {
	case d := <-b.Deliveries():
		if d.Seq != 3 || d.MsgID != "s1/0/9" {
			t.Fatalf("got %+v, want seq 3 %q — the duplicate at seq 2 must be skipped silently", d, "s1/0/9")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delivery cursor stuck on the suppressed duplicate")
	}
	if got := b.Stats().Delivered; got != 2 {
		t.Fatalf("Delivered = %d, want 2 (the duplicate must not count)", got)
	}
}

// TestCrashTakeoverVoidsOlderOrders pins the minOrderEpoch floor: after a
// crash takeover, a straggler ORDER from the pre-crash epoch must be ignored
// even if it would otherwise reach ack-majority — the gather majority
// promised to forget it.
func TestCrashTakeoverVoidsOlderOrders(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	router := gcs.NewRouter(net.Endpoint("s2"))
	b, err := New(Config{Self: "s2", Members: addrs}, router)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	b.handleData(dataMsg{Entries: []dataEntry{{MsgID: "s3/0/1", Payload: []byte("x")}}})
	// s1 crashes; s2 takes over (epoch 1) and completes its gather from a
	// majority that never saw any epoch-0 ORDER.
	b.Suspect("s1")
	b.handleState(stateMsg{Epoch: 1}, "s3")
	if b.gatheringNow() {
		t.Fatal("gather should be complete with states from s2 and s3")
	}

	// The pre-crash sequencer's ORDER arrives late: it must be void.
	b.handleOrder(orderMsg{Epoch: 0, BaseSeq: 5, MsgIDs: []string{"s3/0/1"}})
	b.mu.Lock()
	_, adopted := b.orders[5]
	b.mu.Unlock()
	if adopted {
		t.Fatal("an epoch-0 ORDER was adopted after the epoch-1 crash takeover voided it")
	}
}

// TestOrderDelayTotalOrder pins the emulated ordering service cost: with a
// per-payload OrderDelay the broadcaster still satisfies the uniform total
// order contract on both the inline and the pipelined assignment paths, and
// the sequencer actually pays the cost (the run takes at least payloads ×
// OrderDelay of wall clock).  Zero OrderDelay stays the default everywhere
// else in the suite, so the knob cannot silently distort other timings.
func TestOrderDelayTotalOrder(t *testing.T) {
	const perSender = 6
	addrs := []string{"a", "b", "c"}
	for _, pipelined := range []bool{false, true} {
		name := "inline"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			net := transport.NewMemNetwork()
			delay := 2 * time.Millisecond
			nodes := makeTunedGroup(t, net, addrs,
				tuning.Batching{},
				tuning.Sequencer{Pipelined: pipelined, OrderDelay: delay})
			start := time.Now()
			broadcastConcurrently(t, nodes, perSender)
			assertUniformTotalOrder(t, nodes, len(addrs)*perSender)
			if min := time.Duration(len(addrs)*perSender) * delay; time.Since(start) < min {
				t.Fatalf("run finished in %v, below the %v floor the ordering cost imposes — OrderDelay was not paid", time.Since(start), min)
			}
		})
	}
}
