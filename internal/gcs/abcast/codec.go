package abcast

import (
	"encoding/binary"
	"errors"
)

// Binary wire codec for the hot-path protocol messages (DATA, ORDER, ACK).
//
// Every broadcast crosses the wire three times per member (dissemination,
// ordering, acknowledgement), so these three message types dominate the send
// path.  They are encoded with a compact varint format into a single
// exact-size allocation — replacing gob, whose per-message encoder, type
// descriptors and reflection used to dominate the allocation profile.  The
// cold takeover messages (NEWEPOCH, STATE) keep the gob encoding: they are
// exchanged a handful of times per sequencer failure.
//
// Decoding aliases payload bytes into the wire buffer instead of copying:
// wire buffers are never mutated after receipt (the in-memory transport hands
// the same read-only slice to every member, exactly like the sender-side
// sharing that already existed), and the delivery path treats payloads as
// immutable.

var errBadWire = errors.New("abcast: malformed wire message")

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// encodeData encodes a batched DATA message.
func encodeData(d dataMsg) []byte {
	size := uvarintLen(uint64(len(d.Entries)))
	for _, e := range d.Entries {
		size += uvarintLen(uint64(len(e.MsgID))) + len(e.MsgID)
		size += uvarintLen(uint64(len(e.Payload))) + len(e.Payload)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(d.Entries)))
	for _, e := range d.Entries {
		buf = binary.AppendUvarint(buf, uint64(len(e.MsgID)))
		buf = append(buf, e.MsgID...)
		buf = binary.AppendUvarint(buf, uint64(len(e.Payload)))
		buf = append(buf, e.Payload...)
	}
	return buf
}

// decodeData decodes a DATA message, aliasing entry payloads into data.
func decodeData(data []byte, d *dataMsg) error {
	pos := 0
	n, w := binary.Uvarint(data)
	if w <= 0 || n > uint64(len(data)) {
		return errBadWire
	}
	pos += w
	d.Entries = make([]dataEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		id, adv, err := readBytes(data, pos)
		if err != nil {
			return err
		}
		pos = adv
		payload, adv, err := readBytes(data, pos)
		if err != nil {
			return err
		}
		pos = adv
		d.Entries = append(d.Entries, dataEntry{MsgID: string(id), Payload: payload})
	}
	return nil
}

// encodeSeqRange encodes the shared shape of ORDER and ACK messages: an
// epoch, a base sequence number, the message ids of the covered range, and
// the sender's applied-sequence advertisement.  The advertisement rides as a
// trailing field so it costs one uvarint on messages the protocol sends
// anyway — replicas learn how fresh their peers are without any extra
// message type.
func encodeSeqRange(epoch, baseSeq uint64, ids []string, appliedSeq uint64) []byte {
	size := uvarintLen(epoch) + uvarintLen(baseSeq) + uvarintLen(uint64(len(ids))) + uvarintLen(appliedSeq)
	for _, id := range ids {
		size += uvarintLen(uint64(len(id))) + len(id)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, epoch)
	buf = binary.AppendUvarint(buf, baseSeq)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(len(id)))
		buf = append(buf, id...)
	}
	return binary.AppendUvarint(buf, appliedSeq)
}

// decodeSeqRange decodes the shared ORDER/ACK shape.
func decodeSeqRange(data []byte) (epoch, baseSeq uint64, ids []string, appliedSeq uint64, err error) {
	pos := 0
	epoch, w := binary.Uvarint(data)
	if w <= 0 {
		return 0, 0, nil, 0, errBadWire
	}
	pos += w
	baseSeq, w = binary.Uvarint(data[pos:])
	if w <= 0 {
		return 0, 0, nil, 0, errBadWire
	}
	pos += w
	n, w := binary.Uvarint(data[pos:])
	if w <= 0 || n > uint64(len(data)) {
		return 0, 0, nil, 0, errBadWire
	}
	pos += w
	ids = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		id, adv, err := readBytes(data, pos)
		if err != nil {
			return 0, 0, nil, 0, err
		}
		pos = adv
		ids = append(ids, string(id))
	}
	appliedSeq, w = binary.Uvarint(data[pos:])
	if w <= 0 {
		return 0, 0, nil, 0, errBadWire
	}
	return epoch, baseSeq, ids, appliedSeq, nil
}

// encodeOrder prepends the order-epoch floor (MinEpoch) to the shared
// seq-range shape: ORDER carries the floor so every receiver learns how far
// back in-flight assignments remain valid; ACK does not need it.
func encodeOrder(o orderMsg) []byte {
	size := uvarintLen(o.MinEpoch) + uvarintLen(o.Epoch) + uvarintLen(o.BaseSeq) + uvarintLen(uint64(len(o.MsgIDs))) + uvarintLen(o.AppliedSeq)
	for _, id := range o.MsgIDs {
		size += uvarintLen(uint64(len(id))) + len(id)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, o.MinEpoch)
	buf = binary.AppendUvarint(buf, o.Epoch)
	buf = binary.AppendUvarint(buf, o.BaseSeq)
	buf = binary.AppendUvarint(buf, uint64(len(o.MsgIDs)))
	for _, id := range o.MsgIDs {
		buf = binary.AppendUvarint(buf, uint64(len(id)))
		buf = append(buf, id...)
	}
	return binary.AppendUvarint(buf, o.AppliedSeq)
}

func decodeOrder(data []byte, o *orderMsg) error {
	minEpoch, w := binary.Uvarint(data)
	if w <= 0 {
		return errBadWire
	}
	o.MinEpoch = minEpoch
	var err error
	o.Epoch, o.BaseSeq, o.MsgIDs, o.AppliedSeq, err = decodeSeqRange(data[w:])
	return err
}

// encodeHandoff encodes the planned-rotation HANDOFF message.
func encodeHandoff(h handoffMsg) []byte {
	buf := make([]byte, 0, uvarintLen(h.Epoch)+uvarintLen(h.NextSeq)+uvarintLen(h.MinEpoch))
	buf = binary.AppendUvarint(buf, h.Epoch)
	buf = binary.AppendUvarint(buf, h.NextSeq)
	return binary.AppendUvarint(buf, h.MinEpoch)
}

func decodeHandoff(data []byte, h *handoffMsg) error {
	pos := 0
	var w int
	if h.Epoch, w = binary.Uvarint(data); w <= 0 {
		return errBadWire
	}
	pos += w
	if h.NextSeq, w = binary.Uvarint(data[pos:]); w <= 0 {
		return errBadWire
	}
	pos += w
	if h.MinEpoch, w = binary.Uvarint(data[pos:]); w <= 0 {
		return errBadWire
	}
	return nil
}

func encodeAck(a ackMsg) []byte {
	return encodeSeqRange(a.Epoch, a.BaseSeq, a.MsgIDs, a.AppliedSeq)
}

func decodeAck(data []byte, a *ackMsg) error {
	var err error
	a.Epoch, a.BaseSeq, a.MsgIDs, a.AppliedSeq, err = decodeSeqRange(data)
	return err
}

// readBytes reads a uvarint length followed by that many bytes, returning the
// (aliased) bytes and the position after them.
func readBytes(data []byte, pos int) ([]byte, int, error) {
	n, w := binary.Uvarint(data[pos:])
	if w <= 0 {
		return nil, 0, errBadWire
	}
	pos += w
	if n > uint64(len(data)-pos) {
		return nil, 0, errBadWire
	}
	return data[pos : pos+int(n)], pos + int(n), nil
}
