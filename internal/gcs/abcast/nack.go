package abcast

import (
	"time"

	"groupsafe/internal/gcs/transport"
)

// Retransmission (negative acknowledgement).  The protocol's only
// unrecoverable in-epoch stall is an assigned ORDER whose DATA payload never
// arrived: the delivery cursor sits on the sequence number, every later
// delivery queues behind it, and nothing in the positive-ack flow ever
// re-sends a payload.  A single dropped DATA message to one member (loss
// injection, an inbox overflow under burst, a sender crashing mid-fan-out
// after the sequencer already got its copy) would previously wedge that
// member until a state transfer happened by.
//
// The NACK closes the gap at the broadcast layer: when the delivery cursor
// stalls on order-without-data, the member waits a bounded NackDelay (the
// payload is usually just still in flight — DATA and ORDER race on
// independent links), then asks the whole group for the payload by id.  ANY
// member holding it in pendingData answers with a point-to-point re-send of
// the original DATA entry; handleData's idempotence makes duplicate answers
// harmless.  The request keeps re-arming while the stall lasts, so a lost
// NACK or a lost retransmission is retried, and it disarms the moment the
// cursor moves for any reason (payload arrived, state transfer, epoch
// change).

// nackMsg requests the retransmission of one payload by message id.  Seq is
// the stalled sequence number, carried for observability only — holders
// answer by MsgID.
type nackMsg struct {
	Seq   uint64
	MsgID string
}

// armNackLocked starts (or keeps) the bounded stall wait for sequence seq.
// Re-arming for the same sequence is a no-op: the timer from the first
// observation of the stall keeps running, so repeated tryDeliver passes do
// not push the NACK out indefinitely.
func (b *Broadcaster) armNackLocked(seq uint64, msgID string) {
	if b.nackArmed && b.nackSeq == seq {
		return
	}
	b.nackSeq = seq
	b.nackID = msgID
	b.nackArmed = true
	if b.nackTimer == nil {
		b.nackTimer = time.AfterFunc(b.cfg.NackDelay, b.fireNack)
	} else {
		b.nackTimer.Reset(b.cfg.NackDelay)
	}
}

// disarmNackLocked cancels the stall wait (the cursor moved or the stall is
// not an order-without-data one).
func (b *Broadcaster) disarmNackLocked() {
	if !b.nackArmed {
		return
	}
	b.nackArmed = false
	b.nackTimer.Stop()
}

// fireNack runs when the bounded wait expires: if the delivery cursor still
// sits on the same order-without-data stall, it broadcasts the NACK and
// re-arms for the next retry round.
func (b *Broadcaster) fireNack() {
	b.mu.Lock()
	if b.closed || !b.nackArmed {
		b.mu.Unlock()
		return
	}
	b.nackArmed = false
	seq, id := b.nackSeq, b.nackID
	rec, ordered := b.orders[seq]
	_, haveData := b.pendingData[id]
	if b.nextDeliver != seq || !ordered || rec.MsgID != id || haveData {
		// The stall cleared (or changed shape) between arming and firing;
		// the next tryDeliver pass re-arms if a new stall exists.
		b.mu.Unlock()
		return
	}
	b.stats.NacksSent++
	// Re-arm before releasing the lock: the stall persists until a
	// retransmission lands, and a lost NACK or a lost answer must be retried.
	b.nackArmed = true
	b.nackTimer.Reset(b.cfg.NackDelay)
	b.mu.Unlock()
	b.sendAll(transport.Message{Type: MsgNack, Payload: encode(nackMsg{Seq: seq, MsgID: id})})
}

// handleNack answers a retransmission request when this member holds the
// payload.  The answer is a normal DATA message with the single entry, sent
// point-to-point to the requester; receivers treat it exactly like the
// original fan-out (idempotent).
func (b *Broadcaster) handleNack(n nackMsg, from string) {
	if from == b.cfg.Self {
		return // our own fan-out looping back
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	payload, ok := b.pendingData[n.MsgID]
	if ok {
		b.stats.Retransmits++
	}
	b.mu.Unlock()
	if !ok {
		return
	}
	b.msgsSent.Add(1)
	_ = b.router.Send(from, transport.Message{
		Type:    MsgData,
		Payload: encodeData(dataMsg{Entries: []dataEntry{{MsgID: n.MsgID, Payload: payload}}}),
	})
}
