package abcast

import (
	"bytes"
	"math/rand"
	"testing"
)

func randEntries(rng *rand.Rand, n int) []dataEntry {
	entries := make([]dataEntry, n)
	for i := range entries {
		id := make([]byte, 1+rng.Intn(24))
		payload := make([]byte, rng.Intn(256))
		rng.Read(id)
		rng.Read(payload)
		entries[i] = dataEntry{MsgID: string(id), Payload: payload}
	}
	return entries
}

func TestDataCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		in := dataMsg{Entries: randEntries(rng, rng.Intn(32))}
		var out dataMsg
		if err := decodeData(encodeData(in), &out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(out.Entries) != len(in.Entries) {
			t.Fatalf("trial %d: entry count %d != %d", trial, len(out.Entries), len(in.Entries))
		}
		for i := range in.Entries {
			if out.Entries[i].MsgID != in.Entries[i].MsgID ||
				!bytes.Equal(out.Entries[i].Payload, in.Entries[i].Payload) {
				t.Fatalf("trial %d: entry %d mismatch", trial, i)
			}
		}
	}
}

func TestSeqRangeCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		ids := make([]string, rng.Intn(16))
		for i := range ids {
			b := make([]byte, 1+rng.Intn(24))
			rng.Read(b)
			ids[i] = string(b)
		}
		in := orderMsg{Epoch: rng.Uint64(), MinEpoch: rng.Uint64(), BaseSeq: rng.Uint64(), MsgIDs: ids, AppliedSeq: rng.Uint64()}
		var out orderMsg
		if err := decodeOrder(encodeOrder(in), &out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if out.Epoch != in.Epoch || out.MinEpoch != in.MinEpoch || out.BaseSeq != in.BaseSeq || out.AppliedSeq != in.AppliedSeq || len(out.MsgIDs) != len(in.MsgIDs) {
			t.Fatalf("trial %d: header mismatch: %+v vs %+v", trial, out, in)
		}
		for i := range ids {
			if out.MsgIDs[i] != ids[i] {
				t.Fatalf("trial %d: id %d mismatch", trial, i)
			}
		}
	}
}

func TestHandoffCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		in := handoffMsg{Epoch: rng.Uint64(), NextSeq: rng.Uint64(), MinEpoch: rng.Uint64()}
		var out handoffMsg
		if err := decodeHandoff(encodeHandoff(in), &out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if out != in {
			t.Fatalf("trial %d: %+v != %+v", trial, out, in)
		}
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	data := encodeData(dataMsg{Entries: []dataEntry{{MsgID: "a/1/2", Payload: []byte("hello")}}})
	var d dataMsg
	for cut := 0; cut < len(data); cut++ {
		if err := decodeData(data[:cut], &d); err == nil {
			t.Fatalf("truncated DATA at %d decoded", cut)
		}
	}
	order := encodeOrder(orderMsg{Epoch: 3, MinEpoch: 2, BaseSeq: 9, MsgIDs: []string{"a/1/2", "b/1/1"}})
	var o orderMsg
	for cut := 0; cut < len(order); cut++ {
		if err := decodeOrder(order[:cut], &o); err == nil {
			t.Fatalf("truncated ORDER at %d decoded", cut)
		}
	}
	handoff := encodeHandoff(handoffMsg{Epoch: 300, NextSeq: 1 << 40, MinEpoch: 299})
	var h handoffMsg
	for cut := 0; cut < len(handoff); cut++ {
		if err := decodeHandoff(handoff[:cut], &h); err == nil {
			t.Fatalf("truncated HANDOFF at %d decoded", cut)
		}
	}
}

// BenchmarkWireEncode pins the allocation count of the hot-path wire
// encoders: exactly one allocation (the exact-size wire buffer) per message,
// versus the gob encoder's dozens.
func BenchmarkWireEncode(b *testing.B) {
	entries := randEntries(rand.New(rand.NewSource(3)), 8)
	order := orderMsg{Epoch: 1, BaseSeq: 100, MsgIDs: make([]string, 8)}
	for i := range order.MsgIDs {
		order.MsgIDs[i] = entries[i].MsgID
	}
	b.Run("data-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			encodeData(dataMsg{Entries: entries})
		}
	})
	b.Run("order-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			encodeOrder(order)
		}
	})
	b.Run("gob-data-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			encode(dataMsg{Entries: entries})
		}
	})
}
