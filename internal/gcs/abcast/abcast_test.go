package abcast

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"groupsafe/internal/gcs"
	"groupsafe/internal/gcs/transport"
)

// node bundles a broadcaster with its router for tests.
type node struct {
	addr   string
	router *gcs.Router
	bc     *Broadcaster
}

func makeGroup(t *testing.T, net *transport.MemNetwork, addrs []string) []*node {
	t.Helper()
	nodes := make([]*node, 0, len(addrs))
	for _, addr := range addrs {
		ep := net.Endpoint(addr)
		router := gcs.NewRouter(ep)
		bc, err := New(Config{Self: addr, Members: addrs}, router)
		if err != nil {
			t.Fatal(err)
		}
		router.Start()
		nodes = append(nodes, &node{addr: addr, router: router, bc: bc})
		t.Cleanup(func() {
			bc.Close()
			router.Stop()
		})
	}
	return nodes
}

func collect(t *testing.T, n *node, count int, timeout time.Duration) []Delivery {
	t.Helper()
	var out []Delivery
	deadline := time.After(timeout)
	for len(out) < count {
		select {
		case d := <-n.bc.Deliveries():
			out = append(out, d)
		case <-deadline:
			t.Fatalf("%s: delivered %d of %d messages before timeout", n.addr, len(out), count)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	net := transport.NewMemNetwork()
	router := gcs.NewRouter(net.Endpoint("a"))
	if _, err := New(Config{Self: "a", Members: nil}, router); err == nil {
		t.Fatal("empty member list should be rejected")
	}
	if _, err := New(Config{Self: "a", Members: []string{"b", "c"}}, router); err == nil {
		t.Fatal("self missing from member list should be rejected")
	}
	bc, err := New(Config{Self: "a", Members: []string{"a", "b", "c"}}, router)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Self() != "a" || len(bc.Members()) != 3 {
		t.Fatal("accessors wrong")
	}
	if bc.Sequencer() != "a" || bc.Epoch() != 0 {
		t.Fatal("initial sequencer should be the first member at epoch 0")
	}
}

func TestBroadcastDeliversEverywhere(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	nodes := makeGroup(t, net, addrs)

	if _, err := nodes[1].bc.Broadcast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		ds := collect(t, n, 1, 2*time.Second)
		if string(ds[0].Payload) != "hello" || ds[0].Seq != 1 {
			t.Fatalf("%s delivered %+v", n.addr, ds[0])
		}
	}
	if nodes[0].bc.Stats().Delivered != 1 {
		t.Fatal("stats not updated")
	}
}

func TestTotalOrderAcrossSenders(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3", "s4", "s5"}
	nodes := makeGroup(t, net, addrs)

	const perSender = 10
	for i := 0; i < perSender; i++ {
		for _, n := range nodes {
			payload := []byte(fmt.Sprintf("%s-%d", n.addr, i))
			if _, err := n.bc.Broadcast(payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := perSender * len(nodes)
	sequences := make([][]string, len(nodes))
	for i, n := range nodes {
		ds := collect(t, n, total, 5*time.Second)
		seq := make([]string, len(ds))
		for j, d := range ds {
			if d.Seq != uint64(j+1) {
				t.Fatalf("%s: delivery %d has seq %d", n.addr, j, d.Seq)
			}
			seq[j] = d.MsgID
		}
		sequences[i] = seq
	}
	// Uniform total order: every node delivers the same message ids in the
	// same order.
	for i := 1; i < len(sequences); i++ {
		for j := range sequences[0] {
			if sequences[i][j] != sequences[0][j] {
				t.Fatalf("order mismatch between %s and %s at position %d", addrs[0], addrs[i], j)
			}
		}
	}
}

func TestUniformIntegrityNoDuplicates(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	nodes := makeGroup(t, net, addrs)
	for i := 0; i < 20; i++ {
		nodes[i%3].bc.Broadcast([]byte{byte(i)})
	}
	for _, n := range nodes {
		ds := collect(t, n, 20, 5*time.Second)
		seen := make(map[string]bool)
		for _, d := range ds {
			if seen[d.MsgID] {
				t.Fatalf("%s delivered %s twice", n.addr, d.MsgID)
			}
			seen[d.MsgID] = true
		}
	}
}

func TestValidityOnlyBroadcastMessagesDelivered(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	nodes := makeGroup(t, net, addrs)
	nodes[0].bc.Broadcast([]byte("real"))
	ds := collect(t, nodes[2], 1, 2*time.Second)
	if string(ds[0].Payload) != "real" {
		t.Fatalf("unexpected payload %q", ds[0].Payload)
	}
	select {
	case d := <-nodes[2].bc.Deliveries():
		t.Fatalf("spurious delivery %+v", d)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestDeliveryDespiteMinorityCrash(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3", "s4", "s5"}
	nodes := makeGroup(t, net, addrs)

	// Crash a non-sequencer minority (s4, s5).
	net.Crash("s4")
	net.Crash("s5")
	for _, n := range nodes[:3] {
		n.bc.Suspect("s4")
		n.bc.Suspect("s5")
	}
	nodes[1].bc.Broadcast([]byte("survives"))
	for _, n := range nodes[:3] {
		ds := collect(t, n, 1, 2*time.Second)
		if string(ds[0].Payload) != "survives" {
			t.Fatalf("%s delivered %q", n.addr, ds[0].Payload)
		}
	}
}

func TestSequencerFailover(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	nodes := makeGroup(t, net, addrs)

	// A first message establishes normal operation.
	nodes[0].bc.Broadcast([]byte("before"))
	for _, n := range nodes {
		collect(t, n, 1, 2*time.Second)
	}

	// Crash the sequencer (s1).
	net.Crash("s1")
	for _, n := range nodes[1:] {
		n.bc.Suspect("s1")
	}
	// The new sequencer is s2 (epoch 1).
	waitFor(t, 2*time.Second, func() bool {
		return nodes[1].bc.Sequencer() == "s2" && nodes[2].bc.Sequencer() == "s2"
	})

	// Broadcasts still get ordered and delivered by the survivors.
	nodes[2].bc.Broadcast([]byte("after-failover"))
	for _, n := range nodes[1:] {
		ds := collect(t, n, 1, 3*time.Second)
		if string(ds[0].Payload) != "after-failover" {
			t.Fatalf("%s delivered %q", n.addr, ds[0].Payload)
		}
		if ds[0].Seq != 2 {
			t.Fatalf("%s: seq = %d, want 2 (numbering continues)", n.addr, ds[0].Seq)
		}
	}
	if nodes[1].bc.Epoch() == 0 {
		t.Fatal("epoch did not advance after failover")
	}
}

func TestFailoverPreservesOrdersAcknowledgedBeforeCrash(t *testing.T) {
	// The pre-crash message was fully delivered by the survivors; after the
	// sequencer crashes, new messages must receive later sequence numbers
	// (the new sequencer learns the old orders from the majority).
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3", "s4", "s5"}
	nodes := makeGroup(t, net, addrs)

	for i := 0; i < 5; i++ {
		nodes[1].bc.Broadcast([]byte{byte(i)})
	}
	for _, n := range nodes {
		collect(t, n, 5, 3*time.Second)
	}
	net.Crash("s1")
	for _, n := range nodes[1:] {
		n.bc.Suspect("s1")
	}
	nodes[3].bc.Broadcast([]byte("post"))
	for _, n := range nodes[1:] {
		ds := collect(t, n, 1, 3*time.Second)
		if ds[0].Seq != 6 {
			t.Fatalf("%s: post-failover seq = %d, want 6", n.addr, ds[0].Seq)
		}
	}
}

func TestUnsuspectClearsSuspicion(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	nodes := makeGroup(t, net, addrs)
	nodes[1].bc.Suspect("s3")
	nodes[1].bc.Unsuspect("s3")
	// Suspecting a non-sequencer does not change the epoch.
	if nodes[1].bc.Epoch() != 0 || nodes[1].bc.Sequencer() != "s1" {
		t.Fatal("suspecting a non-sequencer must not change the epoch")
	}
}

func TestBroadcastAfterClose(t *testing.T) {
	net := transport.NewMemNetwork()
	nodes := makeGroup(t, net, []string{"s1", "s2", "s3"})
	nodes[0].bc.Close()
	if _, err := nodes[0].bc.Broadcast([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("broadcast after close: %v", err)
	}
}

func TestManyMessagesThroughput(t *testing.T) {
	net := transport.NewMemNetwork()
	addrs := []string{"s1", "s2", "s3"}
	nodes := makeGroup(t, net, addrs)
	const count = 200
	go func() {
		for i := 0; i < count; i++ {
			nodes[i%3].bc.Broadcast([]byte{byte(i)})
		}
	}()
	for _, n := range nodes {
		ds := collect(t, n, count, 10*time.Second)
		for j, d := range ds {
			if d.Seq != uint64(j+1) {
				t.Fatalf("%s: gap in sequence at %d", n.addr, j)
			}
		}
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached before timeout")
}
