// Package abcast implements a uniform atomic broadcast (total order
// broadcast) in the dynamic crash no-recovery model, the "classical" group
// communication primitive the paper builds on (Sect. 2.3).
//
// The protocol is a fixed-sequencer total order broadcast hardened for
// uniformity:
//
//  1. A-broadcast(m): the sender assigns m a unique message id and sends a
//     DATA message to every member.
//  2. The current sequencer assigns consecutive sequence numbers and sends an
//     ORDER message for each data message.
//  3. Every member acknowledges an ORDER to every member.  A message is
//     A-delivered at a member once the member has the payload, the order, a
//     majority of acknowledgements for that (sequence, message id) pair, and
//     every lower sequence number has been delivered.  The majority
//     requirement gives Uniform Agreement: if any process delivers m, a
//     majority stores its order, so every later sequencer learns it.
//  4. When the sequencer is suspected, the next member (round-robin by epoch)
//     takes over: it gathers the known orders and pending payloads from a
//     majority, adopts the highest-epoch order for every sequence number,
//     re-announces them under its own epoch and continues numbering.
//
// The protocol is batched: every wire message carries a *range* of protocol
// steps.  A DATA message holds up to Config.BatchSize payloads coalesced at
// the sender, the sequencer answers a multi-payload DATA with a single ORDER
// assigning a contiguous sequence range, and members acknowledge the whole
// range with one ACK.  For a batch of B messages in an n-member group this
// cuts the message count from 3·B·n (one round per message) to about 3·n per
// batch, without weakening any of the four properties: ordering,
// acknowledgement counting and delivery remain per (sequence, message id)
// pair internally, so partial batches interleave and fail over exactly like
// individual messages.
//
// How long a payload waits for co-travellers is governed by the batching
// mode (see the tuning package): FixedDelay holds a partial batch exactly
// BatchDelay; Adaptive clocks batching off the sender's own deliveries.  A
// payload arriving while none of the sender's previous payloads are between
// send and self-delivery goes out immediately (an idle sender pays zero added
// latency), while payloads arriving behind an in-flight batch buffer until
// that batch's delivery drains the pipe — the group-commit discipline:
// waiting is only ever done behind work that is already pending.  An EWMA of
// the sender's inter-arrival gaps backstops the drain clock with a deadline,
// never more than DelayCap.
//
// Two further opt-in hot-path modes (tuning.Sequencer):
//
//   - Pipelined: the sequencer moves ORDER assignment off the router thread
//     onto a dedicated ordering goroutine, so assignment of one batch
//     overlaps decoding of the next and back-to-back DATA batches coalesce
//     into one wider ORDER.  Members also range-merge contiguous ACKs within
//     an adaptive window, shrinking the all-to-all ACK fan-in.
//   - RotateEvery: planned sequencer rotation.  After a quota of
//     assignments the sequencer bumps the epoch and sends a HANDOFF carrying
//     its nextSeq — a gather-free handover (the outgoing sequencer is alive,
//     unlike a crash takeover).  Per-link FIFO guarantees the new sequencer
//     has seen every ORDER the old one sent before the HANDOFF arrives, so
//     sweeping its own unordered pending payloads into a fresh ORDER cannot
//     reuse a sequence number.  Because a planned handoff does not advance
//     the order-epoch floor (minOrderEpoch), in-flight ORDERs from earlier
//     rotation epochs stay acceptable; the delivery loop suppresses the rare
//     duplicate assignment a chained rotation can produce (see tryDeliver).
//
// The resulting primitive satisfies Validity, Uniform Agreement, Uniform
// Integrity and Uniform Total Order (Sect. 2.3 of the paper) as long as a
// majority of the members stay up — and, as Sect. 3 of the paper shows, that
// is precisely not enough for 2-safe database replication, because delivery
// says nothing about processing.  See the e2e package for the paper's fix.
package abcast

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"groupsafe/internal/gcs"
	"groupsafe/internal/gcs/transport"
	"groupsafe/internal/tuning"
)

// Message type identifiers on the wire.
const (
	MsgData     = "ab.data"
	MsgOrder    = "ab.order"
	MsgAck      = "ab.ack"
	MsgNack     = "ab.nack"
	MsgNewEpoch = "ab.newepoch"
	MsgState    = "ab.state"
	MsgHandoff  = "ab.handoff"
)

// Delivery is one totally-ordered message handed to the application.
type Delivery struct {
	Seq     uint64
	MsgID   string
	Payload []byte
}

// Config configures a broadcaster.
type Config struct {
	// Self is this member's address.
	Self string
	// Members is the static list of group members (must include Self).
	Members []string
	// DeliveryBuffer is the capacity of the delivery channel (default 65536).
	DeliveryBuffer int
	// Batching carries the shared sender-side coalescing knobs (BatchSize,
	// BatchDelay, Mode, DelayCap); see the tuning package.  Values <= 1
	// disable batching: every Broadcast sends its DATA message synchronously,
	// as in the unbatched protocol.  BatchSize > 1 with a zero BatchDelay
	// selects the Adaptive mode (idle-flush) rather than stalling.
	tuning.Batching
	// Sequencer carries the ordering hot-path knobs (Pipelined, AckWindow,
	// RotateEvery); see the tuning package.  The zero value keeps the
	// classical synchronous fixed-sequencer behaviour.
	tuning.Sequencer
	// NackDelay bounds how long a member waits on an order-without-data
	// stall (an assigned ORDER whose DATA payload has not arrived) before
	// asking the group to retransmit the payload (default 3ms — comfortably
	// above a LAN message but far below any client timeout).  The request
	// retries at the same cadence while the stall lasts.
	NackDelay time.Duration
	// Incarnation namespaces this member's message ids.  In the dynamic
	// crash no-recovery model a recovered process is a new process: if it
	// reuses its address, it MUST use a fresh incarnation, or its message
	// ids collide with its pre-crash broadcasts and the sequencer silently
	// refuses to order the new payloads.
	Incarnation uint64
	// AdvertiseSeq, when set, is sampled on every outbound ORDER and ACK to
	// piggyback the caller's applied-sequence watermark on traffic the
	// protocol sends anyway.  It runs on the ordering hot path and must be
	// cheap and lock-free (an atomic load).
	AdvertiseSeq func() uint64
	// OnPeerAdvert, when set, receives the applied-sequence watermark
	// piggybacked on inbound ORDER/ACK traffic from other members.  Called
	// from the receive path with no broadcaster locks held; must not block.
	OnPeerAdvert func(peer string, seq uint64)
}

// Stats are cumulative counters of the broadcaster.
type Stats struct {
	Broadcast  uint64
	Delivered  uint64
	Ordered    uint64
	EpochJumps uint64
	// MsgsSent counts point-to-point protocol messages handed to the router
	// (the denominator of the batching win: fewer sends per broadcast).
	MsgsSent uint64
	// DataBatches counts DATA messages sent by this member; with batching on,
	// Broadcast/DataBatches is the achieved mean batch size.
	DataBatches uint64
	// Rotations counts planned sequencer handoffs this member observed
	// (initiated or adopted) — epoch changes that did NOT go through the
	// suspicion/gather takeover, which EpochJumps keeps counting.
	Rotations uint64
	// AckSends counts ACK messages this member emitted (each fans out to all
	// members).  With ACK coalescing, Ordered/AckSends is the achieved mean
	// merge width.
	AckSends uint64
	// NacksSent counts retransmission requests this member emitted after an
	// order-without-data stall outlived the bounded NackDelay wait.
	NacksSent uint64
	// Retransmits counts payloads this member re-sent in answer to another
	// member's NACK.
	Retransmits uint64
}

// ErrClosed is returned by Broadcast after Close.
var ErrClosed = errors.New("abcast: broadcaster closed")

type orderRec struct {
	MsgID string
	Epoch uint64
}

// wire formats (gob encoded); DATA, ORDER and ACK are batched: one message
// covers a whole range of broadcasts.
type dataEntry struct {
	MsgID   string
	Payload []byte
}

type dataMsg struct {
	Entries []dataEntry
}

// orderMsg assigns the contiguous range [BaseSeq, BaseSeq+len(MsgIDs)) to the
// listed message ids: sequence BaseSeq+i carries MsgIDs[i].  MinEpoch is the
// sequencer's order-epoch floor: receivers must reject ORDERs from epochs
// below it (they predate a crash takeover whose gather majority promised to
// forget them) but keep accepting epochs in [MinEpoch, current] — the window
// planned rotations live in.
type orderMsg struct {
	Epoch    uint64
	MinEpoch uint64
	BaseSeq  uint64
	MsgIDs   []string
	// AppliedSeq advertises the sender's applied-sequence watermark (see
	// Config.AdvertiseSeq); 0 when the sender has no watermark to share.
	AppliedSeq uint64
}

// ackMsg acknowledges a whole order range at once.
type ackMsg struct {
	Epoch   uint64
	BaseSeq uint64
	MsgIDs  []string
	// AppliedSeq advertises the sender's applied-sequence watermark.
	AppliedSeq uint64
}

type newEpochMsg struct {
	Epoch uint64
}

// handoffMsg is the planned-rotation handover: the outgoing (live) sequencer
// of epoch-1 grants the Epoch sequencer its numbering state.  NextSeq is the
// first unassigned sequence number; MinEpoch carries the order-epoch floor
// forward unchanged (rotation, unlike crash takeover, must keep old-epoch
// ORDERs acceptable — they may still be in flight to some members).
type handoffMsg struct {
	Epoch    uint64
	NextSeq  uint64
	MinEpoch uint64
}

type stateMsg struct {
	Epoch   uint64
	Orders  map[uint64]orderRec
	Pending map[string][]byte
	MaxSeq  uint64
}

// Broadcaster implements uniform atomic broadcast for one group member.
type Broadcaster struct {
	cfg    Config
	router *gcs.Router

	mu            sync.Mutex
	epoch         uint64
	minOrderEpoch uint64 // ORDERs below this epoch are void (crash-takeover floor)
	epochAssigned int    // assignments since this member became sequencer (rotation quota)
	nextSeq       uint64 // next sequence number this sequencer will assign
	nextDeliver   uint64 // next sequence number to deliver (1-based)
	localCounter  uint64
	pendingData   map[string][]byte
	orders        map[uint64]orderRec
	orderedMsg    map[string]uint64
	deliveredID   map[string]bool // suppresses duplicate emission after chained rotations
	acks          map[uint64]map[string]map[string]bool
	suspected     map[string]bool
	gathering     bool
	gatherEpoch   uint64
	gatherFrom    map[string]stateMsg
	sendBuf       []dataEntry   // payloads awaiting batch flush
	flushTimer    *time.Timer   // single resettable timer, reused across batches
	flushArmed    bool          // the timer is set for the currently open batch
	sendGapEWMA   time.Duration // EWMA of Broadcast inter-arrival gaps (Adaptive mode)
	lastSendAt    time.Time     // previous Broadcast arrival (Adaptive mode)
	inFlight      int           // own payloads sent but not yet self-delivered (Adaptive mode)
	closed        bool
	stats         Stats
	idPrefix      string // "self/incarnation/", precomputed for message ids
	idBuf         []byte // scratch for message-id formatting (under mu)

	// Retransmission state (see nack.go): the bounded wait on the current
	// order-without-data stall of the delivery cursor.
	nackTimer *time.Timer
	nackArmed bool
	nackSeq   uint64
	nackID    string

	// Pipelined-sequencer state: DATA batches queue here and a dedicated
	// goroutine assigns ORDER ranges, overlapping with router-side decoding.
	orderQ    []dataEntry
	orderKick chan struct{} // cap 1, nudges orderLoop
	orderStop chan struct{} // closed by Close
	orderBusy bool          // orderLoop is assigning/sending a drained batch

	// ACK coalescing state (Pipelined mode): contiguous same-epoch ORDER
	// ranges merge into one pending ACK, flushed by adjacency break, size,
	// the adaptive window timer, or Close.
	ackPend      ackMsg
	ackPendValid bool
	ackTimer     *time.Timer
	ackArmed     bool
	orderGapEWMA time.Duration // EWMA of inbound ORDER inter-arrival gaps
	lastOrderAt  time.Time

	// Send-path counters are atomic so sendAll does not need to re-acquire
	// mu just to count (it is called on every protocol message).
	msgsSent    atomic.Uint64
	dataBatches atomic.Uint64
	ackSends    atomic.Uint64

	deliveries chan Delivery
}

// New creates a broadcaster and registers its message handlers on the router.
// The router must be started by the caller.
func New(cfg Config, router *gcs.Router) (*Broadcaster, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("abcast: empty member list")
	}
	found := false
	for _, m := range cfg.Members {
		if m == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("abcast: self %q not in member list", cfg.Self)
	}
	if cfg.DeliveryBuffer <= 0 {
		cfg.DeliveryBuffer = 65536
	}
	if cfg.BatchSize > 1 && cfg.Mode == tuning.FixedDelay && cfg.BatchDelay <= 0 {
		// Historically this injected a silent 1ms BatchDelay — a hidden stall
		// on every partial batch.  Zero now means "adaptive/idle-flush": a
		// lone payload goes out immediately, co-travellers are only awaited
		// when the sender's arrival rate says they are coming.
		cfg.Mode = tuning.Adaptive
	}
	if cfg.Mode == tuning.Adaptive && cfg.DelayCap <= 0 {
		cfg.DelayCap = tuning.DefaultDelayCap
	}
	if cfg.Pipelined && cfg.AckWindow <= 0 {
		cfg.AckWindow = 100 * time.Microsecond
	}
	if cfg.NackDelay <= 0 {
		cfg.NackDelay = 3 * time.Millisecond
	}
	if cfg.RotateEvery > 0 && !cfg.Pipelined {
		// Rotation reuses the pipelined assignment path so the handoff is
		// emitted off the router thread; enabling it implies pipelining.
		cfg.Pipelined = true
		if cfg.AckWindow <= 0 {
			cfg.AckWindow = 100 * time.Microsecond
		}
	}
	b := &Broadcaster{
		cfg:         cfg,
		router:      router,
		nextSeq:     1,
		nextDeliver: 1,
		pendingData: make(map[string][]byte),
		orders:      make(map[uint64]orderRec),
		orderedMsg:  make(map[string]uint64),
		deliveredID: make(map[string]bool),
		acks:        make(map[uint64]map[string]map[string]bool),
		suspected:   make(map[string]bool),
		gatherFrom:  make(map[string]stateMsg),
		deliveries:  make(chan Delivery, cfg.DeliveryBuffer),
		idPrefix:    cfg.Self + "/" + strconv.FormatUint(cfg.Incarnation, 10) + "/",
	}
	if cfg.Pipelined {
		b.orderKick = make(chan struct{}, 1)
		b.orderStop = make(chan struct{})
		go b.orderLoop()
	}
	router.Handle("ab.", b.onMessage)
	return b, nil
}

// Deliveries returns the channel of A-delivered messages in total order.
func (b *Broadcaster) Deliveries() <-chan Delivery { return b.deliveries }

// Members returns the static member list.
func (b *Broadcaster) Members() []string {
	out := make([]string, len(b.cfg.Members))
	copy(out, b.cfg.Members)
	return out
}

// Self returns this member's address.
func (b *Broadcaster) Self() string { return b.cfg.Self }

// Epoch returns the current sequencer epoch.
func (b *Broadcaster) Epoch() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch
}

// Sequencer returns the address of the sequencer for the current epoch.
func (b *Broadcaster) Sequencer() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sequencerFor(b.epoch)
}

// SkipTo positions the delivery cursor so that the next delivered message is
// the one with sequence number seq.  It is used after a checkpoint-based
// state transfer: the recovering process's database already reflects every
// message below seq, and the dynamic crash no-recovery model never redelivers
// them (which is exactly the gap exploited by the scenario of Fig. 5).
func (b *Broadcaster) SkipTo(seq uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if seq > b.nextDeliver {
		b.nextDeliver = seq
	}
}

// NextDeliver returns the sequence number of the next message to deliver.
func (b *Broadcaster) NextDeliver() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextDeliver
}

// Stats returns a snapshot of the broadcaster counters.
func (b *Broadcaster) Stats() Stats {
	b.mu.Lock()
	s := b.stats
	b.mu.Unlock()
	s.MsgsSent = b.msgsSent.Load()
	s.DataBatches = b.dataBatches.Load()
	s.AckSends = b.ackSends.Load()
	return s
}

// Close shuts the broadcaster down: later broadcasts fail and inbound
// messages are ignored.  A pending partial batch is flushed first, so every
// Broadcast that returned a message id has been handed to the network.
// Deliveries already queued remain readable; the delivery channel itself is
// not closed (consumers select with their own shutdown signal).
func (b *Broadcaster) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	batch := b.takeBatchLocked()
	ack, haveAck := b.takeAckLocked()
	b.closed = true
	if b.ackTimer != nil {
		b.ackTimer.Stop()
	}
	if b.nackTimer != nil {
		b.nackTimer.Stop()
	}
	b.mu.Unlock()
	if b.orderStop != nil {
		close(b.orderStop)
	}
	if len(batch) > 0 {
		b.sendAll(transport.Message{Type: MsgData, Payload: encodeData(dataMsg{Entries: batch})})
	}
	if haveAck {
		b.sendAck(ack)
	}
}

func (b *Broadcaster) majority() int { return len(b.cfg.Members)/2 + 1 }

func (b *Broadcaster) sequencerFor(epoch uint64) string {
	return b.cfg.Members[int(epoch)%len(b.cfg.Members)]
}

// minFlushWait floors the adaptive co-traveller window: below this, timer
// overhead exceeds the wait, and the size trigger closes hot batches anyway.
const minFlushWait = 20 * time.Microsecond

// Broadcast A-broadcasts a payload and returns the assigned message id.
// With batching enabled (Config.BatchSize > 1) the payload may travel in a
// multi-payload DATA message: it is sent once the batch fills, the sender's
// previous in-flight batch delivers (Adaptive mode's drain clock), or the
// co-traveller window (fixed BatchDelay, or the adaptive EWMA-derived
// deadline backstop) elapses, whichever comes first.  In Adaptive mode a
// sender with nothing in flight skips buffering entirely and the payload is
// sent immediately.
func (b *Broadcaster) Broadcast(payload []byte) (string, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return "", ErrClosed
	}
	b.localCounter++
	// One allocation (the string itself) instead of fmt.Sprintf's boxing.
	b.idBuf = strconv.AppendUint(append(b.idBuf[:0], b.idPrefix...), b.localCounter, 10)
	msgID := string(b.idBuf)
	b.stats.Broadcast++

	if b.cfg.BatchSize <= 1 {
		b.mu.Unlock()
		buf := encodeData(dataMsg{Entries: []dataEntry{{MsgID: msgID, Payload: payload}}})
		b.sendAll(transport.Message{Type: MsgData, Payload: buf})
		return msgID, nil
	}

	wait := b.cfg.BatchDelay
	if b.cfg.Mode == tuning.Adaptive {
		if b.inFlight == 0 && len(b.sendBuf) == 0 {
			// Delivery-clocked send: none of our payloads are between send
			// and self-delivery, so there is no later event for this one to
			// batch behind — any wait would be pure added latency (and in a
			// closed loop the wait would feed back into the measured arrival
			// gap, inflating the next wait).  Send the lone payload now;
			// arrivals while it is in flight ride behind it and flush when
			// its delivery drains the pipe.
			b.inFlight++
			b.mu.Unlock()
			buf := encodeData(dataMsg{Entries: []dataEntry{{MsgID: msgID, Payload: payload}}})
			b.sendAll(transport.Message{Type: MsgData, Payload: buf})
			return msgID, nil
		}
		// Only the buffering path samples the clock: the EWMA sets nothing
		// but the backstop deadline, so keeping time.Now off the immediate
		// path costs accuracy only where accuracy is not consumed.
		wait = b.adaptiveWaitLocked()
	}

	b.sendBuf = append(b.sendBuf, dataEntry{MsgID: msgID, Payload: payload})
	if len(b.sendBuf) >= b.cfg.BatchSize {
		batch := b.takeBatchLocked()
		if b.cfg.Mode == tuning.Adaptive {
			b.inFlight += len(batch)
		}
		b.mu.Unlock()
		b.sendAll(transport.Message{Type: MsgData, Payload: encodeData(dataMsg{Entries: batch})})
		return msgID, nil
	}
	if len(b.sendBuf) == 1 {
		// Deadline semantics: the window is armed once, when the batch
		// opens, so the first payload's added latency is bounded by it.
		if wait <= 0 {
			wait = minFlushWait
		}
		b.armFlushLocked(wait)
	}
	b.mu.Unlock()
	return msgID, nil
}

// adaptiveWaitLocked updates the sender's inter-arrival EWMA with the gap
// since the previous Broadcast and derives the deadline backstop for a
// buffered payload: the expected time for the remaining batch slots to fill,
// floored at minFlushWait and capped at DelayCap.  The backstop only matters
// when the drain clock stalls (our in-flight batch is stuck behind loss or a
// sequencer change); in the common case delivery flushes the buffer first.
// A gap EWMA at or above DelayCap (or no history yet) means the sender is
// idle: returns 0, which arms the minimum window.
func (b *Broadcaster) adaptiveWaitLocked() time.Duration {
	now := time.Now()
	if !b.lastSendAt.IsZero() {
		gap := now.Sub(b.lastSendAt)
		if gap > b.cfg.DelayCap {
			gap = b.cfg.DelayCap + 1 // one idle gap is enough to mean idle
		}
		if b.sendGapEWMA == 0 || gap >= b.sendGapEWMA {
			// Fast up: one long gap flips the sender back to idle-flush.
			b.sendGapEWMA = (b.sendGapEWMA + gap) / 2
		} else {
			// Faster down: a burst engages batching within a few arrivals.
			b.sendGapEWMA = gap + (b.sendGapEWMA-gap)/4
		}
	}
	b.lastSendAt = now
	if b.sendGapEWMA == 0 || b.sendGapEWMA >= b.cfg.DelayCap {
		return 0
	}
	wait := b.sendGapEWMA * time.Duration(b.cfg.BatchSize-len(b.sendBuf)-1)
	if wait < minFlushWait {
		wait = minFlushWait
	}
	if wait > b.cfg.DelayCap {
		wait = b.cfg.DelayCap
	}
	return wait
}

// armFlushLocked (re)arms the single flush timer for the batch that just
// opened.  The timer object is reused across batches (Reset instead of a
// fresh time.AfterFunc per first-payload), which removes the per-batch
// runtime timer allocation from the batched send path.
func (b *Broadcaster) armFlushLocked(d time.Duration) {
	b.flushArmed = true
	if b.flushTimer == nil {
		b.flushTimer = time.AfterFunc(d, b.flushBatch)
	} else {
		b.flushTimer.Reset(d)
	}
}

// takeBatchLocked detaches the pending batch and disarms the flush timer.
func (b *Broadcaster) takeBatchLocked() []dataEntry {
	batch := b.sendBuf
	b.sendBuf = nil
	if b.flushArmed {
		b.flushTimer.Stop()
		b.flushArmed = false
	}
	return batch
}

// flushBatch sends a partial batch whose co-traveller window expired.  (A
// stale fire — the timer lapsing just as the batch it was armed for closes
// and a new one opens — at worst flushes the new batch early, which is
// harmless.)
func (b *Broadcaster) flushBatch() {
	b.mu.Lock()
	if b.closed || !b.flushArmed {
		b.mu.Unlock()
		return
	}
	b.flushArmed = false
	batch := b.sendBuf
	b.sendBuf = nil
	if b.cfg.Mode == tuning.Adaptive {
		b.inFlight += len(batch)
	}
	b.mu.Unlock()
	if len(batch) > 0 {
		b.sendAll(transport.Message{Type: MsgData, Payload: encodeData(dataMsg{Entries: batch})})
	}
}

// Suspect informs the broadcaster that peer is believed crashed (typically
// wired to the failure detector).  If peer is the current sequencer, a new
// epoch is started.
func (b *Broadcaster) Suspect(peer string) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.suspected[peer] = true
	if b.sequencerFor(b.epoch) != peer {
		b.mu.Unlock()
		return
	}
	// Advance to the next epoch whose sequencer is not suspected.
	e := b.epoch + 1
	for i := 0; i < len(b.cfg.Members); i++ {
		if !b.suspected[b.sequencerFor(e)] {
			break
		}
		e++
	}
	b.stats.EpochJumps++
	b.epoch = e
	// Crash takeover voids every older-epoch ORDER still in flight: the
	// gather majority's replies promise exactly this (otherwise a stale
	// sequencer's assignment could still reach an ack-majority and split
	// delivery from the adopted order).  Planned rotations do NOT move this
	// floor.
	b.minOrderEpoch = e
	b.epochAssigned = 0
	iAmNewSequencer := b.sequencerFor(e) == b.cfg.Self
	var selfState stateMsg
	if iAmNewSequencer {
		b.gathering = true
		b.gatherEpoch = e
		b.gatherFrom = map[string]stateMsg{b.cfg.Self: b.snapshotStateLocked(e)}
		selfState = b.gatherFrom[b.cfg.Self]
	}
	b.mu.Unlock()

	if iAmNewSequencer {
		b.sendAll(transport.Message{Type: MsgNewEpoch, Payload: encode(newEpochMsg{Epoch: e})})
		// A single-member group gathers only from itself.
		b.mu.Lock()
		b.maybeFinishGatherLocked()
		b.mu.Unlock()
		_ = selfState
	}
}

// Unsuspect clears a suspicion (e.g. a false positive of the failure
// detector).
func (b *Broadcaster) Unsuspect(peer string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.suspected, peer)
}

func (b *Broadcaster) snapshotStateLocked(epoch uint64) stateMsg {
	orders := make(map[uint64]orderRec, len(b.orders))
	for s, o := range b.orders {
		orders[s] = o
	}
	pending := make(map[string][]byte, len(b.pendingData))
	for id, p := range b.pendingData {
		pending[id] = p
	}
	var maxSeq uint64
	for s := range b.orders {
		if s > maxSeq {
			maxSeq = s
		}
	}
	return stateMsg{Epoch: epoch, Orders: orders, Pending: pending, MaxSeq: maxSeq}
}

func (b *Broadcaster) sendAll(m transport.Message) {
	b.msgsSent.Add(uint64(len(b.cfg.Members)))
	if m.Type == MsgData {
		b.dataBatches.Add(1)
	}
	for _, member := range b.cfg.Members {
		_ = b.router.Send(member, m)
	}
}

// onMessage dispatches inbound protocol messages (registered on the router).
func (b *Broadcaster) onMessage(m transport.Message) {
	switch m.Type {
	case MsgData:
		var d dataMsg
		if err := decodeData(m.Payload, &d); err != nil {
			return
		}
		b.handleData(d)
	case MsgOrder:
		var o orderMsg
		if err := decodeOrder(m.Payload, &o); err != nil {
			return
		}
		b.noteAdvert(m.From, o.AppliedSeq)
		b.handleOrder(o)
	case MsgAck:
		var a ackMsg
		if err := decodeAck(m.Payload, &a); err != nil {
			return
		}
		b.noteAdvert(m.From, a.AppliedSeq)
		b.handleAck(a, m.From)
	case MsgNack:
		var n nackMsg
		if err := decode(m.Payload, &n); err != nil {
			return
		}
		b.handleNack(n, m.From)
	case MsgNewEpoch:
		var ne newEpochMsg
		if err := decode(m.Payload, &ne); err != nil {
			return
		}
		b.handleNewEpoch(ne, m.From)
	case MsgState:
		var st stateMsg
		if err := decode(m.Payload, &st); err != nil {
			return
		}
		b.handleState(st, m.From)
	case MsgHandoff:
		var h handoffMsg
		if err := decodeHandoff(m.Payload, &h); err != nil {
			return
		}
		b.handleHandoff(h)
	}
}

func (b *Broadcaster) handleData(d dataMsg) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	for _, e := range d.Entries {
		if _, seen := b.pendingData[e.MsgID]; !seen {
			b.pendingData[e.MsgID] = e.Payload
		}
	}
	isSequencer := b.sequencerFor(b.epoch) == b.cfg.Self && !b.gathering
	if isSequencer && b.cfg.Pipelined && (len(b.orderQ) > 0 || b.orderBusy) {
		// Pipelined: park the batch for the ordering goroutine and return to
		// decoding the next inbound message.  Assignment of this batch
		// overlaps reception of the next, and back-to-back batches coalesce
		// into one wider ORDER range when the loop drains them together.
		// With no backlog and the loop idle the batch falls through to the
		// inline path below instead (cut-through): the queue hand-off is a
		// scheduler hop that would be pure added latency on an idle pipeline.
		b.orderQ = append(b.orderQ, d.Entries...)
		b.mu.Unlock()
		select {
		case b.orderKick <- struct{}{}:
		default:
		}
		b.tryDeliver()
		return
	}
	var order orderMsg
	var handoff handoffMsg
	rotate := false
	if isSequencer {
		order, handoff, rotate = b.assignLocked(d.Entries)
	}
	b.mu.Unlock()
	if len(order.MsgIDs) > 0 {
		b.sendOrder(order)
	}
	if rotate {
		b.sendAll(transport.Message{Type: MsgHandoff, Payload: encodeHandoff(handoff)})
	}
	b.tryDeliver()
}

// assignLocked gives one contiguous sequence range to every not-yet-ordered
// payload (a single ORDER covers the whole slice) and, when the rotation
// quota fills, bumps the epoch and prepares the gather-free HANDOFF for the
// next sequencer.  The caller sends the ORDER before the HANDOFF: per-link
// FIFO then guarantees every member — the successor above all — sees this
// epoch's final assignments before the handover.
func (b *Broadcaster) assignLocked(entries []dataEntry) (order orderMsg, handoff handoffMsg, rotate bool) {
	for _, e := range entries {
		if _, done := b.orderedMsg[e.MsgID]; done {
			continue
		}
		if len(order.MsgIDs) == 0 {
			order.Epoch = b.epoch
			order.MinEpoch = b.minOrderEpoch
			order.BaseSeq = b.nextSeq
		}
		order.MsgIDs = append(order.MsgIDs, e.MsgID)
		b.nextSeq++
		b.stats.Ordered++
	}
	if b.cfg.OrderDelay > 0 && len(order.MsgIDs) > 0 {
		// Emulated ordering service cost, per assigned payload.  Slept under
		// mu on purpose: the ordering site is one serial resource, and while
		// it is busy the member's whole protocol engine is busy — exactly the
		// sequencer bottleneck the knob exists to model (cf. DiskSyncDelay,
		// which likewise serialises the forces of one simulated disk).
		time.Sleep(b.cfg.OrderDelay * time.Duration(len(order.MsgIDs)))
	}
	b.epochAssigned += len(order.MsgIDs)
	if b.cfg.RotateEvery > 0 && b.epochAssigned >= b.cfg.RotateEvery && !b.gathering {
		// Advance to the next epoch whose sequencer is alive (as far as the
		// local suspicions know).  If the rotation would land back on us —
		// every other member suspected — stay put and just reset the quota.
		e := b.epoch + 1
		for i := 0; i < len(b.cfg.Members); i++ {
			if !b.suspected[b.sequencerFor(e)] {
				break
			}
			e++
		}
		b.epochAssigned = 0
		if b.sequencerFor(e) != b.cfg.Self {
			b.epoch = e
			b.stats.Rotations++
			handoff = handoffMsg{Epoch: e, NextSeq: b.nextSeq, MinEpoch: b.minOrderEpoch}
			rotate = true
		}
	}
	return order, handoff, rotate
}

// orderLoop is the pipelined sequencer's assignment stage: it drains queued
// DATA batches, assigns their ORDER ranges and sends them, while the router
// thread keeps decoding inbound messages.
func (b *Broadcaster) orderLoop() {
	for {
		select {
		case <-b.orderStop:
			return
		case <-b.orderKick:
		}
		for {
			b.mu.Lock()
			if b.closed {
				b.mu.Unlock()
				return
			}
			if len(b.orderQ) == 0 {
				b.mu.Unlock()
				break
			}
			if b.gathering || b.sequencerFor(b.epoch) != b.cfg.Self {
				// Lost the sequencer role between enqueue and drain.  Drop
				// the queue: the payloads stay in pendingData everywhere, and
				// whoever ordering fell to picks them up — a crash takeover
				// sweeps them from the gather set, a planned successor sweeps
				// its own pendingData at handoff or orders them at receipt.
				b.orderQ = nil
				b.mu.Unlock()
				break
			}
			entries := b.orderQ
			b.orderQ = nil
			b.orderBusy = true
			order, handoff, rotate := b.assignLocked(entries)
			b.mu.Unlock()
			if len(order.MsgIDs) > 0 {
				b.sendOrder(order)
			}
			if rotate {
				b.sendAll(transport.Message{Type: MsgHandoff, Payload: encodeHandoff(handoff)})
			}
			b.mu.Lock()
			b.orderBusy = false
			b.mu.Unlock()
			b.tryDeliver()
		}
	}
}

// handleHandoff installs a planned sequencer rotation.  The successor adopts
// the handed-over numbering and immediately orders any payloads it holds
// that the outgoing sequencer never assigned: link FIFO guarantees it has
// already processed every ORDER the outgoing sequencer sent, so anything
// still unordered here was unordered, full stop — except for assignments by
// sequencers of *earlier* rotation epochs whose ORDERs are still in flight
// on other links.  Those can produce a duplicate assignment of the same
// message id at two sequence numbers; tryDeliver suppresses the second
// emission, identically at every member.
func (b *Broadcaster) handleHandoff(h handoffMsg) {
	b.mu.Lock()
	if b.closed || h.Epoch < b.epoch {
		b.mu.Unlock()
		return
	}
	if h.Epoch > b.epoch {
		b.epoch = h.Epoch
		b.gathering = false
		b.epochAssigned = 0
		b.stats.Rotations++
	}
	if h.MinEpoch > b.minOrderEpoch {
		b.minOrderEpoch = h.MinEpoch
	}
	var fresh orderMsg
	if b.sequencerFor(b.epoch) == b.cfg.Self && !b.gathering {
		if h.NextSeq > b.nextSeq {
			b.nextSeq = h.NextSeq
		}
		var unordered []string
		for id := range b.pendingData {
			if _, ordered := b.orderedMsg[id]; !ordered {
				unordered = append(unordered, id)
			}
		}
		if len(unordered) > 0 {
			sort.Strings(unordered)
			fresh = orderMsg{Epoch: b.epoch, MinEpoch: b.minOrderEpoch, BaseSeq: b.nextSeq}
			for _, id := range unordered {
				fresh.MsgIDs = append(fresh.MsgIDs, id)
				b.nextSeq++
				b.stats.Ordered++
			}
			b.epochAssigned += len(fresh.MsgIDs)
		}
	}
	b.mu.Unlock()
	if len(fresh.MsgIDs) > 0 {
		b.sendOrder(fresh)
	}
	b.tryDeliver()
}

func (b *Broadcaster) handleOrder(o orderMsg) {
	b.mu.Lock()
	if b.closed || len(o.MsgIDs) == 0 {
		b.mu.Unlock()
		return
	}
	if o.Epoch < b.minOrderEpoch {
		// Void: a crash takeover's gather majority has promised to forget
		// this sequencer's assignments.  Epochs in [minOrderEpoch, epoch)
		// stay acceptable — they are live planned-rotation history.
		b.mu.Unlock()
		return
	}
	if o.MinEpoch > b.minOrderEpoch {
		b.minOrderEpoch = o.MinEpoch
		if o.MinEpoch > o.Epoch {
			// Malformed (floor above the sender's own epoch); drop.
			b.mu.Unlock()
			return
		}
	}
	if o.Epoch > b.epoch {
		// A newer sequencer is active; follow it.
		b.epoch = o.Epoch
		b.gathering = false
		b.epochAssigned = 0
	}
	for i, id := range o.MsgIDs {
		seq := o.BaseSeq + uint64(i)
		existing, have := b.orders[seq]
		if !have || o.Epoch >= existing.Epoch {
			b.orders[seq] = orderRec{MsgID: id, Epoch: o.Epoch}
			b.orderedMsg[id] = seq
		}
	}
	// One ACK acknowledges the whole range.
	ack := ackMsg{Epoch: o.Epoch, BaseSeq: o.BaseSeq, MsgIDs: o.MsgIDs}
	if b.cfg.Pipelined {
		// Coalesce: contiguous same-epoch ranges merge into one pending ACK,
		// sent when the adaptive window lapses, adjacency breaks, the merge
		// grows past bound, or Close.  Under load this collapses the
		// sequencer's ACK fan-in to one inbound message per delivery window.
		flush, nFlush := b.mergeAckLocked(ack)
		b.mu.Unlock()
		for i := 0; i < nFlush; i++ {
			b.sendAck(flush[i])
		}
		b.tryDeliver()
		return
	}
	b.mu.Unlock()
	b.sendAck(ack)
	b.tryDeliver()
}

// ackMergeBound caps how many order acknowledgements one merged ACK may
// carry before it is flushed regardless of the window.
const ackMergeBound = 256

// mergeAckLocked folds ack into the pending merged ACK and returns the ACKs
// to send now (at most two: a displaced non-contiguous pend plus the merged
// one).  The merge flushes immediately unless more ORDERs are known to be
// imminent — some received payload still lacks an order — because only then
// does holding the ACK buy a wider merge; otherwise waiting would stall
// delivery by the window for nothing.  While holding, the adaptive window
// timer (from an EWMA of ORDER inter-arrival gaps) bounds the wait.
func (b *Broadcaster) mergeAckLocked(ack ackMsg) (flush [2]ackMsg, n int) {
	if b.ackPendValid {
		if b.ackPend.Epoch == ack.Epoch && b.ackPend.BaseSeq+uint64(len(b.ackPend.MsgIDs)) == ack.BaseSeq {
			b.ackPend.MsgIDs = append(b.ackPend.MsgIDs, ack.MsgIDs...)
		} else {
			if out, ok := b.takeAckLocked(); ok {
				flush[n] = out
				n++
			}
			b.ackPend = ack
			b.ackPendValid = true
		}
	} else {
		b.ackPend = ack
		b.ackPendValid = true
	}

	if len(b.orderedMsg) >= len(b.pendingData) || len(b.ackPend.MsgIDs) >= ackMergeBound {
		// Pending-work signal, O(1) and conservative: if every known payload
		// already has an order, no follow-up ORDER is imminent and holding
		// the ACK would stall delivery by the window for no merge gain.
		// Orphan orders (ORDER seen before its DATA) can tip the comparison
		// toward flushing early, which only costs a merge opportunity; a
		// hold is only ever taken when some payload is genuinely unordered.
		// This branch takes no clock sample, keeping time.Now off the
		// low-load hot path entirely.
		b.lastOrderAt = time.Time{}
		if out, ok := b.takeAckLocked(); ok {
			flush[n] = out
			n++
		}
		return flush, n
	}

	// Holding for a wider merge: sample the ORDER inter-arrival gap and arm
	// the window timer from its EWMA.  Sampling only on this path means the
	// EWMA describes exactly the busy stream the timer has to bound.
	now := time.Now()
	if !b.lastOrderAt.IsZero() {
		gap := now.Sub(b.lastOrderAt)
		if gap > b.cfg.AckWindow {
			gap = b.cfg.AckWindow + 1
		}
		if b.orderGapEWMA == 0 || gap >= b.orderGapEWMA {
			b.orderGapEWMA = (b.orderGapEWMA + gap) / 2
		} else {
			b.orderGapEWMA = gap + (b.orderGapEWMA-gap)/4
		}
	}
	b.lastOrderAt = now
	if !b.ackArmed {
		wait := 2 * b.orderGapEWMA
		if wait < minFlushWait {
			wait = minFlushWait
		}
		if wait > b.cfg.AckWindow {
			wait = b.cfg.AckWindow
		}
		b.armAckLocked(wait)
	}
	return flush, n
}

// takeAckLocked detaches the pending merged ACK and disarms its timer.
func (b *Broadcaster) takeAckLocked() (ackMsg, bool) {
	if !b.ackPendValid {
		return ackMsg{}, false
	}
	ack := b.ackPend
	b.ackPend = ackMsg{}
	b.ackPendValid = false
	if b.ackArmed {
		b.ackTimer.Stop()
		b.ackArmed = false
	}
	return ack, true
}

// armAckLocked (re)arms the single ACK window timer (reused, like the batch
// flush timer).
func (b *Broadcaster) armAckLocked(d time.Duration) {
	b.ackArmed = true
	if b.ackTimer == nil {
		b.ackTimer = time.AfterFunc(d, b.flushAck)
	} else {
		b.ackTimer.Reset(d)
	}
}

// flushAck sends the pending merged ACK when its window expires.
func (b *Broadcaster) flushAck() {
	b.mu.Lock()
	if b.closed || !b.ackArmed {
		b.mu.Unlock()
		return
	}
	b.ackArmed = false
	ack := b.ackPend
	have := b.ackPendValid
	b.ackPend = ackMsg{}
	b.ackPendValid = false
	b.mu.Unlock()
	if have && len(ack.MsgIDs) > 0 {
		b.sendAck(ack)
	}
}

// sendAck fans an ACK out to every member, counting it for the coalescing
// stats and stamping the applied-seq advertisement.
func (b *Broadcaster) sendAck(a ackMsg) {
	a.AppliedSeq = b.advertisedSeq()
	b.ackSends.Add(1)
	b.sendAll(transport.Message{Type: MsgAck, Payload: encodeAck(a)})
}

// sendOrder fans an ORDER out to every member, stamping the applied-seq
// advertisement.
func (b *Broadcaster) sendOrder(o orderMsg) {
	o.AppliedSeq = b.advertisedSeq()
	b.sendAll(transport.Message{Type: MsgOrder, Payload: encodeOrder(o)})
}

// advertisedSeq samples the applied-seq advertisement hook (an atomic load
// upstream, so safe from any goroutine, with or without b.mu held).
func (b *Broadcaster) advertisedSeq() uint64 {
	if b.cfg.AdvertiseSeq == nil {
		return 0
	}
	return b.cfg.AdvertiseSeq()
}

// noteAdvert forwards a piggybacked applied-seq advertisement to the
// configured hook, skipping our own loopback copies.
func (b *Broadcaster) noteAdvert(from string, seq uint64) {
	if seq == 0 || from == b.cfg.Self || b.cfg.OnPeerAdvert == nil {
		return
	}
	b.cfg.OnPeerAdvert(from, seq)
}

func (b *Broadcaster) handleAck(a ackMsg, from string) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	for i, id := range a.MsgIDs {
		seq := a.BaseSeq + uint64(i)
		bySeq, ok := b.acks[seq]
		if !ok {
			bySeq = make(map[string]map[string]bool)
			b.acks[seq] = bySeq
		}
		voters, ok := bySeq[id]
		if !ok {
			voters = make(map[string]bool)
			bySeq[id] = voters
		}
		voters[from] = true
	}
	b.mu.Unlock()
	b.tryDeliver()
}

func (b *Broadcaster) handleNewEpoch(ne newEpochMsg, from string) {
	if from == b.cfg.Self {
		// Our own take-over announcement looping back: the local state is
		// already part of the gather set.
		return
	}
	b.mu.Lock()
	if b.closed || ne.Epoch < b.epoch {
		b.mu.Unlock()
		return
	}
	if ne.Epoch > b.epoch {
		b.stats.EpochJumps++
	}
	b.epoch = ne.Epoch
	// Replying STATE is the promise that makes the gather binding: from here
	// on, ORDERs below the takeover epoch are void at this member.
	if ne.Epoch > b.minOrderEpoch {
		b.minOrderEpoch = ne.Epoch
	}
	b.epochAssigned = 0
	b.gathering = false
	reply := b.snapshotStateLocked(ne.Epoch)
	b.mu.Unlock()
	_ = b.router.Send(from, transport.Message{Type: MsgState, Payload: encode(reply)})
}

func (b *Broadcaster) handleState(st stateMsg, from string) {
	b.mu.Lock()
	if b.closed || !b.gathering || st.Epoch != b.gatherEpoch {
		b.mu.Unlock()
		return
	}
	b.gatherFrom[from] = st
	b.maybeFinishGatherLocked()
	b.mu.Unlock()
}

// maybeFinishGatherLocked completes sequencer takeover once a majority of
// state replies (including our own) has been collected.
func (b *Broadcaster) maybeFinishGatherLocked() {
	if !b.gathering || len(b.gatherFrom) < b.majority() {
		return
	}
	b.gathering = false

	// Adopt, for every sequence number, the order with the highest epoch.
	adopted := make(map[uint64]orderRec)
	var maxSeq uint64
	for _, st := range b.gatherFrom {
		for seq, rec := range st.Orders {
			if cur, ok := adopted[seq]; !ok || rec.Epoch > cur.Epoch {
				adopted[seq] = rec
			}
			if seq > maxSeq {
				maxSeq = seq
			}
		}
		for id, payload := range st.Pending {
			if _, seen := b.pendingData[id]; !seen {
				b.pendingData[id] = payload
			}
		}
	}
	for seq, rec := range adopted {
		b.orders[seq] = orderRec{MsgID: rec.MsgID, Epoch: b.epoch}
		b.orderedMsg[rec.MsgID] = seq
	}
	b.nextSeq = maxSeq + 1

	// Re-announce adopted orders under the new epoch, coalescing contiguous
	// sequence runs into batched ORDER messages, then order any pending
	// payloads that still lack a sequence number as one fresh batch.
	seqs := make([]uint64, 0, len(adopted))
	for seq := range adopted {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var reannounce []orderMsg
	for _, seq := range seqs {
		if n := len(reannounce); n > 0 && reannounce[n-1].BaseSeq+uint64(len(reannounce[n-1].MsgIDs)) == seq {
			reannounce[n-1].MsgIDs = append(reannounce[n-1].MsgIDs, adopted[seq].MsgID)
			continue
		}
		reannounce = append(reannounce, orderMsg{Epoch: b.epoch, MinEpoch: b.minOrderEpoch, BaseSeq: seq, MsgIDs: []string{adopted[seq].MsgID}})
	}
	var unordered []string
	for id := range b.pendingData {
		if _, ordered := b.orderedMsg[id]; !ordered {
			unordered = append(unordered, id)
		}
	}
	sort.Strings(unordered)
	fresh := orderMsg{Epoch: b.epoch, MinEpoch: b.minOrderEpoch, BaseSeq: b.nextSeq}
	for _, id := range unordered {
		b.orders[b.nextSeq] = orderRec{MsgID: id, Epoch: b.epoch}
		b.orderedMsg[id] = b.nextSeq
		fresh.MsgIDs = append(fresh.MsgIDs, id)
		b.nextSeq++
		b.stats.Ordered++
	}
	b.mu.Unlock()
	for _, o := range reannounce {
		b.sendOrder(o)
	}
	if len(fresh.MsgIDs) > 0 {
		b.sendOrder(fresh)
	}
	b.mu.Lock()
}

// tryDeliver delivers every message whose order is stable (majority-acked)
// and whose predecessors have all been delivered.
func (b *Broadcaster) tryDeliver() {
	for {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return
		}
		seq := b.nextDeliver
		rec, ordered := b.orders[seq]
		if !ordered {
			b.disarmNackLocked()
			b.mu.Unlock()
			return
		}
		payload, haveData := b.pendingData[rec.MsgID]
		if !haveData {
			// Order-without-data: the one stall the positive-ack flow can
			// never clear by itself.  Start (or keep) the bounded wait that
			// ends in a retransmission request — see nack.go.
			b.armNackLocked(seq, rec.MsgID)
			b.mu.Unlock()
			return
		}
		voters := b.acks[seq][rec.MsgID]
		if len(voters) < b.majority() {
			b.disarmNackLocked()
			b.mu.Unlock()
			return
		}
		b.disarmNackLocked()
		b.nextDeliver++
		if b.deliveredID[rec.MsgID] {
			// Chained planned rotations can assign one message id at two
			// sequence numbers (an earlier rotation epoch's ORDER still in
			// flight while a later successor sweeps the payload afresh).
			// The decision here uses exactly the delivery stability rule —
			// order known, payload held, majority acked — so every member
			// resolves the duplicate at the same sequence numbers: the
			// lowest one emits (the cursor reaches it first), later ones
			// advance the cursor silently.
			b.mu.Unlock()
			continue
		}
		b.deliveredID[rec.MsgID] = true
		b.stats.Delivered++
		var drained []dataEntry
		if b.cfg.Mode == tuning.Adaptive && b.cfg.BatchSize > 1 && strings.HasPrefix(rec.MsgID, b.idPrefix) {
			b.inFlight--
			if b.inFlight <= 0 {
				b.inFlight = 0
				if len(b.sendBuf) > 0 {
					// The pipe just drained with co-travellers buffered
					// behind it: flush them now — the delivery of our
					// previous batch is the adaptive clock tick, usually
					// well ahead of the window-timer backstop.
					drained = b.takeBatchLocked()
					b.inFlight = len(drained)
				}
			}
		}
		d := Delivery{Seq: seq, MsgID: rec.MsgID, Payload: payload}
		ch := b.deliveries
		b.mu.Unlock()
		if len(drained) > 0 {
			b.sendAll(transport.Message{Type: MsgData, Payload: encodeData(dataMsg{Entries: drained})})
		}
		ch <- d
	}
}

func encode(v interface{}) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		// Encoding in-memory structs cannot fail at runtime for the types
		// above; a failure indicates a programming error.
		panic(fmt.Sprintf("abcast: encode: %v", err))
	}
	return buf.Bytes()
}

func decode(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
