// Package abcast implements a uniform atomic broadcast (total order
// broadcast) in the dynamic crash no-recovery model, the "classical" group
// communication primitive the paper builds on (Sect. 2.3).
//
// The protocol is a fixed-sequencer total order broadcast hardened for
// uniformity:
//
//  1. A-broadcast(m): the sender assigns m a unique message id and sends a
//     DATA message to every member.
//  2. The current sequencer assigns consecutive sequence numbers and sends an
//     ORDER message for each data message.
//  3. Every member acknowledges an ORDER to every member.  A message is
//     A-delivered at a member once the member has the payload, the order, a
//     majority of acknowledgements for that (sequence, message id) pair, and
//     every lower sequence number has been delivered.  The majority
//     requirement gives Uniform Agreement: if any process delivers m, a
//     majority stores its order, so every later sequencer learns it.
//  4. When the sequencer is suspected, the next member (round-robin by epoch)
//     takes over: it gathers the known orders and pending payloads from a
//     majority, adopts the highest-epoch order for every sequence number,
//     re-announces them under its own epoch and continues numbering.
//
// The protocol is batched: every wire message carries a *range* of protocol
// steps.  A DATA message holds up to Config.BatchSize payloads coalesced at
// the sender (payloads wait at most Config.BatchDelay for co-travellers), the
// sequencer answers a multi-payload DATA with a single ORDER assigning a
// contiguous sequence range, and members acknowledge the whole range with one
// ACK.  For a batch of B messages in an n-member group this cuts the message
// count from 3·B·n (one round per message) to about 3·n per batch, without
// weakening any of the four properties: ordering, acknowledgement counting
// and delivery remain per (sequence, message id) pair internally, so partial
// batches interleave and fail over exactly like individual messages.
//
// The resulting primitive satisfies Validity, Uniform Agreement, Uniform
// Integrity and Uniform Total Order (Sect. 2.3 of the paper) as long as a
// majority of the members stay up — and, as Sect. 3 of the paper shows, that
// is precisely not enough for 2-safe database replication, because delivery
// says nothing about processing.  See the e2e package for the paper's fix.
package abcast

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"groupsafe/internal/gcs"
	"groupsafe/internal/gcs/transport"
	"groupsafe/internal/tuning"
)

// Message type identifiers on the wire.
const (
	MsgData     = "ab.data"
	MsgOrder    = "ab.order"
	MsgAck      = "ab.ack"
	MsgNewEpoch = "ab.newepoch"
	MsgState    = "ab.state"
)

// Delivery is one totally-ordered message handed to the application.
type Delivery struct {
	Seq     uint64
	MsgID   string
	Payload []byte
}

// Config configures a broadcaster.
type Config struct {
	// Self is this member's address.
	Self string
	// Members is the static list of group members (must include Self).
	Members []string
	// DeliveryBuffer is the capacity of the delivery channel (default 65536).
	DeliveryBuffer int
	// Batching carries the shared sender-side coalescing knobs (BatchSize,
	// BatchDelay); see the tuning package.  Values <= 1 disable batching:
	// every Broadcast sends its DATA message synchronously, as in the
	// unbatched protocol.
	tuning.Batching
	// Incarnation namespaces this member's message ids.  In the dynamic
	// crash no-recovery model a recovered process is a new process: if it
	// reuses its address, it MUST use a fresh incarnation, or its message
	// ids collide with its pre-crash broadcasts and the sequencer silently
	// refuses to order the new payloads.
	Incarnation uint64
}

// Stats are cumulative counters of the broadcaster.
type Stats struct {
	Broadcast  uint64
	Delivered  uint64
	Ordered    uint64
	EpochJumps uint64
	// MsgsSent counts point-to-point protocol messages handed to the router
	// (the denominator of the batching win: fewer sends per broadcast).
	MsgsSent uint64
	// DataBatches counts DATA messages sent by this member; with batching on,
	// Broadcast/DataBatches is the achieved mean batch size.
	DataBatches uint64
}

// ErrClosed is returned by Broadcast after Close.
var ErrClosed = errors.New("abcast: broadcaster closed")

type orderRec struct {
	MsgID string
	Epoch uint64
}

// wire formats (gob encoded); DATA, ORDER and ACK are batched: one message
// covers a whole range of broadcasts.
type dataEntry struct {
	MsgID   string
	Payload []byte
}

type dataMsg struct {
	Entries []dataEntry
}

// orderMsg assigns the contiguous range [BaseSeq, BaseSeq+len(MsgIDs)) to the
// listed message ids: sequence BaseSeq+i carries MsgIDs[i].
type orderMsg struct {
	Epoch   uint64
	BaseSeq uint64
	MsgIDs  []string
}

// ackMsg acknowledges a whole order range at once.
type ackMsg struct {
	Epoch   uint64
	BaseSeq uint64
	MsgIDs  []string
}

type newEpochMsg struct {
	Epoch uint64
}

type stateMsg struct {
	Epoch   uint64
	Orders  map[uint64]orderRec
	Pending map[string][]byte
	MaxSeq  uint64
}

// Broadcaster implements uniform atomic broadcast for one group member.
type Broadcaster struct {
	cfg    Config
	router *gcs.Router

	mu           sync.Mutex
	epoch        uint64
	nextSeq      uint64 // next sequence number this sequencer will assign
	nextDeliver  uint64 // next sequence number to deliver (1-based)
	localCounter uint64
	pendingData  map[string][]byte
	orders       map[uint64]orderRec
	orderedMsg   map[string]uint64
	acks         map[uint64]map[string]map[string]bool
	suspected    map[string]bool
	gathering    bool
	gatherEpoch  uint64
	gatherFrom   map[string]stateMsg
	sendBuf      []dataEntry // payloads awaiting batch flush
	flushTimer   *time.Timer
	closed       bool
	stats        Stats
	idPrefix     string // "self/incarnation/", precomputed for message ids
	idBuf        []byte // scratch for message-id formatting (under mu)

	// Send-path counters are atomic so sendAll does not need to re-acquire
	// mu just to count (it is called on every protocol message).
	msgsSent    atomic.Uint64
	dataBatches atomic.Uint64

	deliveries chan Delivery
}

// New creates a broadcaster and registers its message handlers on the router.
// The router must be started by the caller.
func New(cfg Config, router *gcs.Router) (*Broadcaster, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("abcast: empty member list")
	}
	found := false
	for _, m := range cfg.Members {
		if m == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("abcast: self %q not in member list", cfg.Self)
	}
	if cfg.DeliveryBuffer <= 0 {
		cfg.DeliveryBuffer = 65536
	}
	if cfg.BatchSize > 1 && cfg.BatchDelay <= 0 {
		cfg.BatchDelay = time.Millisecond
	}
	b := &Broadcaster{
		cfg:         cfg,
		router:      router,
		nextSeq:     1,
		nextDeliver: 1,
		pendingData: make(map[string][]byte),
		orders:      make(map[uint64]orderRec),
		orderedMsg:  make(map[string]uint64),
		acks:        make(map[uint64]map[string]map[string]bool),
		suspected:   make(map[string]bool),
		gatherFrom:  make(map[string]stateMsg),
		deliveries:  make(chan Delivery, cfg.DeliveryBuffer),
		idPrefix:    cfg.Self + "/" + strconv.FormatUint(cfg.Incarnation, 10) + "/",
	}
	router.Handle("ab.", b.onMessage)
	return b, nil
}

// Deliveries returns the channel of A-delivered messages in total order.
func (b *Broadcaster) Deliveries() <-chan Delivery { return b.deliveries }

// Members returns the static member list.
func (b *Broadcaster) Members() []string {
	out := make([]string, len(b.cfg.Members))
	copy(out, b.cfg.Members)
	return out
}

// Self returns this member's address.
func (b *Broadcaster) Self() string { return b.cfg.Self }

// Epoch returns the current sequencer epoch.
func (b *Broadcaster) Epoch() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch
}

// Sequencer returns the address of the sequencer for the current epoch.
func (b *Broadcaster) Sequencer() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sequencerFor(b.epoch)
}

// SkipTo positions the delivery cursor so that the next delivered message is
// the one with sequence number seq.  It is used after a checkpoint-based
// state transfer: the recovering process's database already reflects every
// message below seq, and the dynamic crash no-recovery model never redelivers
// them (which is exactly the gap exploited by the scenario of Fig. 5).
func (b *Broadcaster) SkipTo(seq uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if seq > b.nextDeliver {
		b.nextDeliver = seq
	}
}

// NextDeliver returns the sequence number of the next message to deliver.
func (b *Broadcaster) NextDeliver() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextDeliver
}

// Stats returns a snapshot of the broadcaster counters.
func (b *Broadcaster) Stats() Stats {
	b.mu.Lock()
	s := b.stats
	b.mu.Unlock()
	s.MsgsSent = b.msgsSent.Load()
	s.DataBatches = b.dataBatches.Load()
	return s
}

// Close shuts the broadcaster down: later broadcasts fail and inbound
// messages are ignored.  A pending partial batch is flushed first, so every
// Broadcast that returned a message id has been handed to the network.
// Deliveries already queued remain readable; the delivery channel itself is
// not closed (consumers select with their own shutdown signal).
func (b *Broadcaster) Close() {
	b.mu.Lock()
	batch := b.takeBatchLocked()
	b.closed = true
	b.mu.Unlock()
	if len(batch) > 0 {
		b.sendAll(transport.Message{Type: MsgData, Payload: encodeData(dataMsg{Entries: batch})})
	}
}

func (b *Broadcaster) majority() int { return len(b.cfg.Members)/2 + 1 }

func (b *Broadcaster) sequencerFor(epoch uint64) string {
	return b.cfg.Members[int(epoch)%len(b.cfg.Members)]
}

// Broadcast A-broadcasts a payload and returns the assigned message id.
// With batching enabled (Config.BatchSize > 1) the payload may travel in a
// multi-payload DATA message: it is sent once the batch fills or BatchDelay
// elapses, whichever comes first.
func (b *Broadcaster) Broadcast(payload []byte) (string, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return "", ErrClosed
	}
	b.localCounter++
	// One allocation (the string itself) instead of fmt.Sprintf's boxing.
	b.idBuf = strconv.AppendUint(append(b.idBuf[:0], b.idPrefix...), b.localCounter, 10)
	msgID := string(b.idBuf)
	b.stats.Broadcast++

	if b.cfg.BatchSize <= 1 {
		b.mu.Unlock()
		buf := encodeData(dataMsg{Entries: []dataEntry{{MsgID: msgID, Payload: payload}}})
		b.sendAll(transport.Message{Type: MsgData, Payload: buf})
		return msgID, nil
	}

	b.sendBuf = append(b.sendBuf, dataEntry{MsgID: msgID, Payload: payload})
	if len(b.sendBuf) >= b.cfg.BatchSize {
		batch := b.takeBatchLocked()
		b.mu.Unlock()
		b.sendAll(transport.Message{Type: MsgData, Payload: encodeData(dataMsg{Entries: batch})})
		return msgID, nil
	}
	if b.flushTimer == nil {
		b.flushTimer = time.AfterFunc(b.cfg.BatchDelay, b.flushBatch)
	}
	b.mu.Unlock()
	return msgID, nil
}

// takeBatchLocked detaches the pending batch and cancels the flush timer.
func (b *Broadcaster) takeBatchLocked() []dataEntry {
	batch := b.sendBuf
	b.sendBuf = nil
	if b.flushTimer != nil {
		b.flushTimer.Stop()
		b.flushTimer = nil
	}
	return batch
}

// flushBatch sends a partial batch whose BatchDelay expired.
func (b *Broadcaster) flushBatch() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	batch := b.takeBatchLocked()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.sendAll(transport.Message{Type: MsgData, Payload: encodeData(dataMsg{Entries: batch})})
	}
}

// Suspect informs the broadcaster that peer is believed crashed (typically
// wired to the failure detector).  If peer is the current sequencer, a new
// epoch is started.
func (b *Broadcaster) Suspect(peer string) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.suspected[peer] = true
	if b.sequencerFor(b.epoch) != peer {
		b.mu.Unlock()
		return
	}
	// Advance to the next epoch whose sequencer is not suspected.
	e := b.epoch + 1
	for i := 0; i < len(b.cfg.Members); i++ {
		if !b.suspected[b.sequencerFor(e)] {
			break
		}
		e++
	}
	b.stats.EpochJumps++
	b.epoch = e
	iAmNewSequencer := b.sequencerFor(e) == b.cfg.Self
	var selfState stateMsg
	if iAmNewSequencer {
		b.gathering = true
		b.gatherEpoch = e
		b.gatherFrom = map[string]stateMsg{b.cfg.Self: b.snapshotStateLocked(e)}
		selfState = b.gatherFrom[b.cfg.Self]
	}
	b.mu.Unlock()

	if iAmNewSequencer {
		b.sendAll(transport.Message{Type: MsgNewEpoch, Payload: encode(newEpochMsg{Epoch: e})})
		// A single-member group gathers only from itself.
		b.mu.Lock()
		b.maybeFinishGatherLocked()
		b.mu.Unlock()
		_ = selfState
	}
}

// Unsuspect clears a suspicion (e.g. a false positive of the failure
// detector).
func (b *Broadcaster) Unsuspect(peer string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.suspected, peer)
}

func (b *Broadcaster) snapshotStateLocked(epoch uint64) stateMsg {
	orders := make(map[uint64]orderRec, len(b.orders))
	for s, o := range b.orders {
		orders[s] = o
	}
	pending := make(map[string][]byte, len(b.pendingData))
	for id, p := range b.pendingData {
		pending[id] = p
	}
	var maxSeq uint64
	for s := range b.orders {
		if s > maxSeq {
			maxSeq = s
		}
	}
	return stateMsg{Epoch: epoch, Orders: orders, Pending: pending, MaxSeq: maxSeq}
}

func (b *Broadcaster) sendAll(m transport.Message) {
	b.msgsSent.Add(uint64(len(b.cfg.Members)))
	if m.Type == MsgData {
		b.dataBatches.Add(1)
	}
	for _, member := range b.cfg.Members {
		_ = b.router.Send(member, m)
	}
}

// onMessage dispatches inbound protocol messages (registered on the router).
func (b *Broadcaster) onMessage(m transport.Message) {
	switch m.Type {
	case MsgData:
		var d dataMsg
		if err := decodeData(m.Payload, &d); err != nil {
			return
		}
		b.handleData(d)
	case MsgOrder:
		var o orderMsg
		if err := decodeOrder(m.Payload, &o); err != nil {
			return
		}
		b.handleOrder(o)
	case MsgAck:
		var a ackMsg
		if err := decodeAck(m.Payload, &a); err != nil {
			return
		}
		b.handleAck(a, m.From)
	case MsgNewEpoch:
		var ne newEpochMsg
		if err := decode(m.Payload, &ne); err != nil {
			return
		}
		b.handleNewEpoch(ne, m.From)
	case MsgState:
		var st stateMsg
		if err := decode(m.Payload, &st); err != nil {
			return
		}
		b.handleState(st, m.From)
	}
}

func (b *Broadcaster) handleData(d dataMsg) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	for _, e := range d.Entries {
		if _, seen := b.pendingData[e.MsgID]; !seen {
			b.pendingData[e.MsgID] = e.Payload
		}
	}
	isSequencer := b.sequencerFor(b.epoch) == b.cfg.Self && !b.gathering
	var order orderMsg
	if isSequencer {
		// Assign one contiguous sequence range to every not-yet-ordered
		// payload of the batch: a single ORDER covers the whole DATA message.
		for _, e := range d.Entries {
			if _, done := b.orderedMsg[e.MsgID]; done {
				continue
			}
			if len(order.MsgIDs) == 0 {
				order.Epoch = b.epoch
				order.BaseSeq = b.nextSeq
			}
			order.MsgIDs = append(order.MsgIDs, e.MsgID)
			b.nextSeq++
			b.stats.Ordered++
		}
	}
	b.mu.Unlock()
	if len(order.MsgIDs) > 0 {
		b.sendAll(transport.Message{Type: MsgOrder, Payload: encodeOrder(order)})
	}
	b.tryDeliver()
}

func (b *Broadcaster) handleOrder(o orderMsg) {
	b.mu.Lock()
	if b.closed || len(o.MsgIDs) == 0 {
		b.mu.Unlock()
		return
	}
	if o.Epoch < b.epoch {
		b.mu.Unlock()
		return
	}
	if o.Epoch > b.epoch {
		// A newer sequencer is active; follow it.
		b.epoch = o.Epoch
		b.gathering = false
	}
	for i, id := range o.MsgIDs {
		seq := o.BaseSeq + uint64(i)
		existing, have := b.orders[seq]
		if !have || o.Epoch >= existing.Epoch {
			b.orders[seq] = orderRec{MsgID: id, Epoch: o.Epoch}
			b.orderedMsg[id] = seq
		}
	}
	// One ACK acknowledges the whole range.
	ack := ackMsg{Epoch: o.Epoch, BaseSeq: o.BaseSeq, MsgIDs: o.MsgIDs}
	b.mu.Unlock()
	b.sendAll(transport.Message{Type: MsgAck, Payload: encodeAck(ack)})
	b.tryDeliver()
}

func (b *Broadcaster) handleAck(a ackMsg, from string) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	for i, id := range a.MsgIDs {
		seq := a.BaseSeq + uint64(i)
		bySeq, ok := b.acks[seq]
		if !ok {
			bySeq = make(map[string]map[string]bool)
			b.acks[seq] = bySeq
		}
		voters, ok := bySeq[id]
		if !ok {
			voters = make(map[string]bool)
			bySeq[id] = voters
		}
		voters[from] = true
	}
	b.mu.Unlock()
	b.tryDeliver()
}

func (b *Broadcaster) handleNewEpoch(ne newEpochMsg, from string) {
	if from == b.cfg.Self {
		// Our own take-over announcement looping back: the local state is
		// already part of the gather set.
		return
	}
	b.mu.Lock()
	if b.closed || ne.Epoch < b.epoch {
		b.mu.Unlock()
		return
	}
	if ne.Epoch > b.epoch {
		b.stats.EpochJumps++
	}
	b.epoch = ne.Epoch
	b.gathering = false
	reply := b.snapshotStateLocked(ne.Epoch)
	b.mu.Unlock()
	_ = b.router.Send(from, transport.Message{Type: MsgState, Payload: encode(reply)})
}

func (b *Broadcaster) handleState(st stateMsg, from string) {
	b.mu.Lock()
	if b.closed || !b.gathering || st.Epoch != b.gatherEpoch {
		b.mu.Unlock()
		return
	}
	b.gatherFrom[from] = st
	b.maybeFinishGatherLocked()
	b.mu.Unlock()
}

// maybeFinishGatherLocked completes sequencer takeover once a majority of
// state replies (including our own) has been collected.
func (b *Broadcaster) maybeFinishGatherLocked() {
	if !b.gathering || len(b.gatherFrom) < b.majority() {
		return
	}
	b.gathering = false

	// Adopt, for every sequence number, the order with the highest epoch.
	adopted := make(map[uint64]orderRec)
	var maxSeq uint64
	for _, st := range b.gatherFrom {
		for seq, rec := range st.Orders {
			if cur, ok := adopted[seq]; !ok || rec.Epoch > cur.Epoch {
				adopted[seq] = rec
			}
			if seq > maxSeq {
				maxSeq = seq
			}
		}
		for id, payload := range st.Pending {
			if _, seen := b.pendingData[id]; !seen {
				b.pendingData[id] = payload
			}
		}
	}
	for seq, rec := range adopted {
		b.orders[seq] = orderRec{MsgID: rec.MsgID, Epoch: b.epoch}
		b.orderedMsg[rec.MsgID] = seq
	}
	b.nextSeq = maxSeq + 1

	// Re-announce adopted orders under the new epoch, coalescing contiguous
	// sequence runs into batched ORDER messages, then order any pending
	// payloads that still lack a sequence number as one fresh batch.
	seqs := make([]uint64, 0, len(adopted))
	for seq := range adopted {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var reannounce []orderMsg
	for _, seq := range seqs {
		if n := len(reannounce); n > 0 && reannounce[n-1].BaseSeq+uint64(len(reannounce[n-1].MsgIDs)) == seq {
			reannounce[n-1].MsgIDs = append(reannounce[n-1].MsgIDs, adopted[seq].MsgID)
			continue
		}
		reannounce = append(reannounce, orderMsg{Epoch: b.epoch, BaseSeq: seq, MsgIDs: []string{adopted[seq].MsgID}})
	}
	var unordered []string
	for id := range b.pendingData {
		if _, ordered := b.orderedMsg[id]; !ordered {
			unordered = append(unordered, id)
		}
	}
	sort.Strings(unordered)
	fresh := orderMsg{Epoch: b.epoch, BaseSeq: b.nextSeq}
	for _, id := range unordered {
		b.orders[b.nextSeq] = orderRec{MsgID: id, Epoch: b.epoch}
		b.orderedMsg[id] = b.nextSeq
		fresh.MsgIDs = append(fresh.MsgIDs, id)
		b.nextSeq++
		b.stats.Ordered++
	}
	b.mu.Unlock()
	for _, o := range reannounce {
		b.sendAll(transport.Message{Type: MsgOrder, Payload: encodeOrder(o)})
	}
	if len(fresh.MsgIDs) > 0 {
		b.sendAll(transport.Message{Type: MsgOrder, Payload: encodeOrder(fresh)})
	}
	b.mu.Lock()
}

// tryDeliver delivers every message whose order is stable (majority-acked)
// and whose predecessors have all been delivered.
func (b *Broadcaster) tryDeliver() {
	for {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return
		}
		seq := b.nextDeliver
		rec, ordered := b.orders[seq]
		if !ordered {
			b.mu.Unlock()
			return
		}
		payload, haveData := b.pendingData[rec.MsgID]
		voters := b.acks[seq][rec.MsgID]
		if !haveData || len(voters) < b.majority() {
			b.mu.Unlock()
			return
		}
		b.nextDeliver++
		b.stats.Delivered++
		d := Delivery{Seq: seq, MsgID: rec.MsgID, Payload: payload}
		ch := b.deliveries
		b.mu.Unlock()
		ch <- d
	}
}

func encode(v interface{}) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		// Encoding in-memory structs cannot fail at runtime for the types
		// above; a failure indicates a programming error.
		panic(fmt.Sprintf("abcast: encode: %v", err))
	}
	return buf.Bytes()
}

func decode(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
