package storage

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestStoreReadWrite(t *testing.T) {
	s := NewStore(10)
	if s.NumItems() != 10 {
		t.Fatalf("NumItems = %d", s.NumItems())
	}
	v, ver, err := s.Read(3)
	if err != nil || v != 0 || ver != 0 {
		t.Fatalf("initial read = %d,%d,%v", v, ver, err)
	}
	newVer, err := s.Write(3, 42)
	if err != nil || newVer != 1 {
		t.Fatalf("write returned %d,%v", newVer, err)
	}
	v, ver, err = s.Read(3)
	if err != nil || v != 42 || ver != 1 {
		t.Fatalf("read after write = %d,%d,%v", v, ver, err)
	}
	if s.Version(3) != 1 || s.Version(99) != 0 {
		t.Fatal("Version accessor wrong")
	}
}

func TestStoreOutOfRange(t *testing.T) {
	s := NewStore(5)
	if _, _, err := s.Read(5); !errors.Is(err, ErrItemOutOfRange) {
		t.Fatalf("Read(5) error = %v", err)
	}
	if _, _, err := s.Read(-1); !errors.Is(err, ErrItemOutOfRange) {
		t.Fatalf("Read(-1) error = %v", err)
	}
	if _, err := s.Write(7, 1); !errors.Is(err, ErrItemOutOfRange) {
		t.Fatalf("Write(7) error = %v", err)
	}
	if err := s.ApplyWriteSet(WriteSet{0: 1, 9: 2}); !errors.Is(err, ErrItemOutOfRange) {
		t.Fatalf("ApplyWriteSet with bad item error = %v", err)
	}
	// A failed write-set application must not partially apply.
	if s.Version(0) != 0 {
		t.Fatal("failed ApplyWriteSet partially applied")
	}
}

func TestStoreMinimumSize(t *testing.T) {
	s := NewStore(0)
	if s.NumItems() != 1 {
		t.Fatalf("NumItems = %d, want clamp to 1", s.NumItems())
	}
}

func TestApplyWriteSet(t *testing.T) {
	s := NewStore(10)
	ws := WriteSet{1: 11, 2: 22, 3: 33}
	if err := s.ApplyWriteSet(ws); err != nil {
		t.Fatal(err)
	}
	for item, want := range ws {
		v, ver, _ := s.Read(item)
		if v != want || ver != 1 {
			t.Fatalf("item %d = %d (v%d), want %d (v1)", item, v, ver, want)
		}
	}
	if err := s.ApplyWriteSet(WriteSet{1: 100}); err != nil {
		t.Fatal(err)
	}
	if s.Version(1) != 2 {
		t.Fatalf("version after second write = %d, want 2", s.Version(1))
	}
}

func TestSnapshotRestoreEqual(t *testing.T) {
	a := NewStore(20)
	b := NewStore(20)
	if !a.Equal(b) || !a.Equal(a) {
		t.Fatal("fresh stores should be equal")
	}
	_ = a.ApplyWriteSet(WriteSet{5: 50, 7: 70})
	if a.Equal(b) {
		t.Fatal("diverged stores reported equal")
	}
	b.Restore(a.Snapshot())
	if !a.Equal(b) {
		t.Fatal("restore from snapshot should make stores equal")
	}
	// Snapshot must be a deep copy.
	snap := a.Snapshot()
	snap[5].Value = 999
	if v, _, _ := a.Read(5); v != 50 {
		t.Fatal("mutating a snapshot affected the store")
	}
	a.Reset()
	if v, ver, _ := a.Read(5); v != 0 || ver != 0 {
		t.Fatal("Reset did not clear the store")
	}
	c := NewStore(5)
	if a.Equal(c) {
		t.Fatal("stores of different sizes reported equal")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				item := (w*31 + i) % 100
				if _, err := s.Write(item, int64(i)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, _, err := s.Read(item); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < 100; i++ {
		total += s.Version(i)
	}
	if total != 8*200 {
		t.Fatalf("total versions = %d, want %d (every write counted exactly once)", total, 8*200)
	}
}

func TestQuickVersionsMonotonic(t *testing.T) {
	// Property: versions never decrease, and each write bumps the version by
	// exactly one.
	f := func(writes []uint8) bool {
		s := NewStore(16)
		prev := make([]uint64, 16)
		for _, w := range writes {
			item := int(w) % 16
			ver, err := s.Write(item, int64(w))
			if err != nil {
				return false
			}
			if ver != prev[item]+1 {
				return false
			}
			prev[item] = ver
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
