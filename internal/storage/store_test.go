package storage

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestStoreReadWrite(t *testing.T) {
	s := NewStore(10)
	if s.NumItems() != 10 {
		t.Fatalf("NumItems = %d", s.NumItems())
	}
	v, ver, err := s.Read(3)
	if err != nil || v != 0 || ver != 0 {
		t.Fatalf("initial read = %d,%d,%v", v, ver, err)
	}
	newVer, err := s.Write(3, 42)
	if err != nil || newVer != 1 {
		t.Fatalf("write returned %d,%v", newVer, err)
	}
	v, ver, err = s.Read(3)
	if err != nil || v != 42 || ver != 1 {
		t.Fatalf("read after write = %d,%d,%v", v, ver, err)
	}
	if s.Version(3) != 1 || s.Version(99) != 0 {
		t.Fatal("Version accessor wrong")
	}
}

func TestStoreOutOfRange(t *testing.T) {
	s := NewStore(5)
	if _, _, err := s.Read(5); !errors.Is(err, ErrItemOutOfRange) {
		t.Fatalf("Read(5) error = %v", err)
	}
	if _, _, err := s.Read(-1); !errors.Is(err, ErrItemOutOfRange) {
		t.Fatalf("Read(-1) error = %v", err)
	}
	if _, err := s.Write(7, 1); !errors.Is(err, ErrItemOutOfRange) {
		t.Fatalf("Write(7) error = %v", err)
	}
	if err := s.ApplyWriteSet(WriteSet{0: 1, 9: 2}); !errors.Is(err, ErrItemOutOfRange) {
		t.Fatalf("ApplyWriteSet with bad item error = %v", err)
	}
	// A failed write-set application must not partially apply.
	if s.Version(0) != 0 {
		t.Fatal("failed ApplyWriteSet partially applied")
	}
}

func TestStoreMinimumSize(t *testing.T) {
	s := NewStore(0)
	if s.NumItems() != 1 {
		t.Fatalf("NumItems = %d, want clamp to 1", s.NumItems())
	}
}

func TestApplyWriteSet(t *testing.T) {
	s := NewStore(10)
	ws := WriteSet{1: 11, 2: 22, 3: 33}
	if err := s.ApplyWriteSet(ws); err != nil {
		t.Fatal(err)
	}
	for item, want := range ws {
		v, ver, _ := s.Read(item)
		if v != want || ver != 1 {
			t.Fatalf("item %d = %d (v%d), want %d (v1)", item, v, ver, want)
		}
	}
	if err := s.ApplyWriteSet(WriteSet{1: 100}); err != nil {
		t.Fatal(err)
	}
	if s.Version(1) != 2 {
		t.Fatalf("version after second write = %d, want 2", s.Version(1))
	}
}

func TestSnapshotRestoreEqual(t *testing.T) {
	a := NewStore(20)
	b := NewStore(20)
	if !a.Equal(b) || !a.Equal(a) {
		t.Fatal("fresh stores should be equal")
	}
	_ = a.ApplyWriteSet(WriteSet{5: 50, 7: 70})
	if a.Equal(b) {
		t.Fatal("diverged stores reported equal")
	}
	b.Restore(a.Snapshot())
	if !a.Equal(b) {
		t.Fatal("restore from snapshot should make stores equal")
	}
	// Snapshot must be a deep copy.
	snap := a.Snapshot()
	snap[5].Value = 999
	if v, _, _ := a.Read(5); v != 50 {
		t.Fatal("mutating a snapshot affected the store")
	}
	a.Reset()
	if v, ver, _ := a.Read(5); v != 0 || ver != 0 {
		t.Fatal("Reset did not clear the store")
	}
	c := NewStore(5)
	if a.Equal(c) {
		t.Fatal("stores of different sizes reported equal")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				item := (w*31 + i) % 100
				if _, err := s.Write(item, int64(i)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, _, err := s.Read(item); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < 100; i++ {
		total += s.Version(i)
	}
	if total != 8*200 {
		t.Fatalf("total versions = %d, want %d (every write counted exactly once)", total, 8*200)
	}
}

func TestQuickVersionsMonotonic(t *testing.T) {
	// Property: versions never decrease, and each write bumps the version by
	// exactly one.
	f := func(writes []uint8) bool {
		s := NewStore(16)
		prev := make([]uint64, 16)
		for _, w := range writes {
			item := int(w) % 16
			ver, err := s.Write(item, int64(w))
			if err != nil {
				return false
			}
			if ver != prev[item]+1 {
				return false
			}
			prev[item] = ver
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeNewerTakesOnlyStrictlyNewer(t *testing.T) {
	s := NewStore(4)
	s.Write(0, 10) // version 1
	s.Write(0, 11) // version 2
	s.Write(1, 20) // version 1

	merged := s.MergeNewer([]Item{
		{Value: 99, Version: 1}, // stale: local is at version 2
		{Value: 21, Version: 2}, // newer: taken
		{Value: 30, Version: 3}, // local untouched: taken
		{},                      // zero item: skipped
	})
	if merged != 2 {
		t.Fatalf("merged = %d, want 2", merged)
	}
	for i, want := range []Item{{11, 2}, {21, 2}, {30, 3}, {0, 0}} {
		v, ver, _ := s.Read(i)
		if v != want.Value || ver != want.Version {
			t.Fatalf("item %d = (%d, v%d), want (%d, v%d)", i, v, ver, want.Value, want.Version)
		}
	}
	// Equal versions keep the local copy.
	if n := s.MergeNewer([]Item{{Value: 99, Version: 2}}); n != 0 {
		t.Fatalf("equal-version merge took %d items, want 0", n)
	}
}

// TestMergeNewerNeverRegressesConcurrentWrites is the regression test for the
// live state-transfer race: a replica applying transactions while a (possibly
// stale) peer snapshot merges in must never lose an already-installed newer
// write — the bug that Restore-based installs had (capture, merge, restore
// reverts anything installed in between).
func TestMergeNewerNeverRegressesConcurrentWrites(t *testing.T) {
	s := NewStore(8)
	const writes = 500
	done := make(chan [8]uint64)
	go func() {
		var vers [8]uint64
		for v := int64(1); v <= writes; v++ {
			for i := 0; i < 8; i++ {
				ver, _ := s.Write(i, v)
				vers[i] = ver
			}
		}
		done <- vers
	}()
	// Merge snapshots of our own current state (always stale or equal by the
	// time they land) as fast as possible, racing the writer.
	for {
		select {
		case vers := <-done:
			for i := 0; i < 8; i++ {
				v, ver, _ := s.Read(i)
				if ver < vers[i] || v != writes {
					t.Fatalf("item %d regressed to (%d, v%d), writer finished at (%d, v%d)",
						i, v, ver, int64(writes), vers[i])
				}
			}
			return
		default:
			s.MergeNewer(s.Snapshot())
		}
	}
}
